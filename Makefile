GO ?= go

.PHONY: all build test vet race bench bench-diff qor-baseline qor-diff

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Run the key benchmarks and refresh the machine-readable trajectory
# point (BENCH_6.json). BENCH_TIME=200ms make bench for a quick pass.
bench:
	scripts/bench.sh

# Quick perf check against the latest committed trajectory point: runs
# the key benchmarks into a scratch file and prints the delta table
# without touching the committed BENCH_*.json history.
bench-diff:
	BENCH_TIME=$${BENCH_TIME:-200ms} scripts/bench.sh .bench-head.json

# Regenerate the committed QoR baseline from a fresh gate run.
qor-baseline:
	$(GO) run ./cmd/vpgaflow qor baseline -out qor/baseline.json

# Drift-gate the current tree against the committed baseline.
qor-diff:
	$(GO) run ./cmd/vpgaflow qor diff -v
