GO ?= go

.PHONY: all build test vet race bench qor-baseline qor-diff

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Run the key benchmarks and refresh the machine-readable trajectory
# point (BENCH_5.json). BENCH_TIME=200ms make bench for a quick pass.
bench:
	scripts/bench.sh

# Regenerate the committed QoR baseline from a fresh gate run.
qor-baseline:
	$(GO) run ./cmd/vpgaflow qor baseline -out qor/baseline.json

# Drift-gate the current tree against the committed baseline.
qor-diff:
	$(GO) run ./cmd/vpgaflow qor diff -v
