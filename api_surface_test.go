package vpga

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// apiSurface renders every exported declaration of the vpga package as
// one sorted line per symbol — the package's public API in diffable
// form.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse package: %v", err)
	}
	pkg, ok := pkgs["vpga"]
	if !ok {
		t.Fatalf("package vpga not found (got %v)", pkgs)
	}

	render := func(node any) string {
		var buf bytes.Buffer
		if err := (&printer.Config{Mode: printer.UseSpaces}).Fprint(&buf, fset, node); err != nil {
			t.Fatalf("render: %v", err)
		}
		// One line per symbol: collapse any multi-line rendering.
		return strings.Join(strings.Fields(buf.String()), " ")
	}

	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				sig := *d
				sig.Body, sig.Doc = nil, nil
				lines = append(lines, render(&sig))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() {
							cp := *sp
							cp.Doc, cp.Comment = nil, nil
							lines = append(lines, "type "+render(&cp))
						}
					case *ast.ValueSpec:
						cp := *sp
						cp.Doc, cp.Comment = nil, nil
						exported := false
						for _, n := range cp.Names {
							exported = exported || n.IsExported()
						}
						if exported {
							lines = append(lines, fmt.Sprintf("%s %s", d.Tok, render(&cp)))
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestAPISurface locks the exported API of package vpga against
// api.txt. An intentional API change regenerates the golden file with
//
//	VPGA_UPDATE_API=1 go test -run TestAPISurface .
//
// so the diff shows up in review; an accidental one fails here.
func TestAPISurface(t *testing.T) {
	got := apiSurface(t)
	const golden = "api.txt"
	if os.Getenv("VPGA_UPDATE_API") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d symbols)", golden, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with VPGA_UPDATE_API=1 go test -run TestAPISurface .)", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	in := func(list []string, s string) bool {
		i := sort.SearchStrings(list, s)
		return i < len(list) && list[i] == s
	}
	var diff []string
	for _, l := range wl {
		if l != "" && !in(gl, l) {
			diff = append(diff, "- "+l)
		}
	}
	for _, l := range gl {
		if l != "" && !in(wl, l) {
			diff = append(diff, "+ "+l)
		}
	}
	t.Fatalf("exported API surface drifted from %s:\n%s\n\nIf intentional: VPGA_UPDATE_API=1 go test -run TestAPISurface .",
		golden, strings.Join(diff, "\n"))
}
