// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section, plus micro-benchmarks for every
// substrate. Each experiment benchmark reports the headline figures of
// merit via b.ReportMetric, so `go test -bench=. -benchmem` regenerates
// the paper's results on the miniature suite; run `cmd/paper -scale
// paper` for the full-size designs (documented in EXPERIMENTS.md).
package vpga

import (
	"context"
	"runtime"
	"testing"
	"time"

	"vpga/internal/aig"
	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/core"
	"vpga/internal/flowmap"
	"vpga/internal/logic"
	"vpga/internal/place"
	"vpga/internal/route"
	"vpga/internal/rtl"
	"vpga/internal/sta"
	"vpga/internal/techmap"
)

// BenchmarkFig2FunctionClassification regenerates the Section 2.1 /
// Figure 2 analysis: the 256-function S3-feasibility classification.
func BenchmarkFig2FunctionClassification(b *testing.B) {
	var rep logic.Fig2Report
	for i := 0; i < b.N; i++ {
		rep = logic.AnalyzeFig2()
	}
	b.ReportMetric(float64(rep.PerSelectFeasible[0]), "S3-fixed-select-feasible")
	b.ReportMetric(float64(rep.Feasible), "S3-feasible")
	b.ReportMetric(float64(256-rep.Feasible), "S3-infeasible")
}

// BenchmarkFig3ModifiedS3Completeness checks the Figure 3 claim that
// the modified S3 cell implements all 256 3-input functions.
func BenchmarkFig3ModifiedS3Completeness(b *testing.B) {
	complete := false
	for i := 0; i < b.N; i++ {
		complete = logic.ModifiedS3Complete()
	}
	if !complete {
		b.Fatal("modified S3 incomplete")
	}
	b.ReportMetric(256, "functions-implemented")
}

// matrixOnce runs the Table 1/2 experiment once per benchmark
// iteration on the miniature suite, sequentially (Parallel: 1) so the
// trajectory of the experiment benchmarks stays comparable across
// machines; BenchmarkMatrixParallel tracks the parallel speedup.
func matrixOnce(b *testing.B) *core.Matrix {
	b.Helper()
	var m *core.Matrix
	for i := 0; i < b.N; i++ {
		var err error
		m, err = core.RunMatrix(context.Background(), bench.TestSuite(), core.MatrixOptions{Seed: 1, PlaceEffort: 3, Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkMatrixParallel runs the same matrix as the Table benchmarks
// on the bounded worker pool at full width. Reports are bit-identical
// to the sequential run; the ratio of this benchmark to
// BenchmarkTable1DieArea's ns/op is the parallel speedup.
func BenchmarkMatrixParallel(b *testing.B) {
	par := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if _, err := core.RunMatrix(context.Background(), bench.TestSuite(), core.MatrixOptions{Seed: 1, PlaceEffort: 3, Parallel: par}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(par), "workers")
}

// BenchmarkTable1DieArea regenerates Table 1 (die area, 4 designs × 2
// architectures × 2 flows) and reports the paper's headline claim: the
// average die-area reduction of the granular PLB on datapath designs.
func BenchmarkTable1DieArea(b *testing.B) {
	m := matrixOnce(b)
	claims := m.DeriveClaims()
	b.Logf("\n%s", m.Table1())
	b.ReportMetric(100*claims.AvgDatapathDieReduction, "%datapath-die-reduction(paper~32)")
	b.ReportMetric(100*claims.MaxDatapathDieReduction, "%max-die-reduction(paper~40)")
	b.ReportMetric(claims.FirewireAreaRatio, "firewire-area-ratio(paper>1)")
}

// BenchmarkTable2Slack regenerates Table 2 (average slack over the
// top-10 critical paths) and reports the slack-improvement claims.
func BenchmarkTable2Slack(b *testing.B) {
	m := matrixOnce(b)
	claims := m.DeriveClaims()
	b.Logf("\n%s", m.Table2())
	b.ReportMetric(100*claims.AvgSlackImprovement, "%slack-improvement(paper~18)")
	b.ReportMetric(100*claims.AvgPerfDegradationReduction, "%degradation-reduction(paper~68)")
}

// BenchmarkCompactionAreaReduction measures the regularity-driven
// compaction step (experiment E4; the paper reports ~15% average gate
// -area reduction on its DC-mapped netlists).
func BenchmarkCompactionAreaReduction(b *testing.B) {
	suite := bench.TestSuite()
	total := 0.0
	n := 0
	for i := 0; i < b.N; i++ {
		total, n = 0, 0
		for _, d := range suite.All() {
			for _, arch := range []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()} {
				rep, err := core.RunFlow(context.Background(), d, core.Config{Arch: arch, Flow: core.FlowA, Seed: 1, PlaceEffort: 2})
				if err != nil {
					b.Fatal(err)
				}
				total += rep.CompactionReduction
				n++
			}
		}
	}
	b.ReportMetric(100*total/float64(n), "%area-reduction(paper~15)")
}

// BenchmarkFullAdderPacking exercises experiment E3: full adders
// extracted and packed one-per-PLB on the granular architecture.
func BenchmarkFullAdderPacking(b *testing.B) {
	d := bench.ALU(8)
	fas := 0
	for i := 0; i < b.N; i++ {
		rep, err := core.RunFlow(context.Background(), d, core.Config{Arch: cells.GranularPLB(), Flow: core.FlowB, Seed: 2, PlaceEffort: 2})
		if err != nil {
			b.Fatal(err)
		}
		fas = rep.FullAdders
	}
	b.ReportMetric(float64(fas), "full-adders")
}

// BenchmarkGranularitySweep runs the E8 architecture sweep.
func BenchmarkGranularitySweep(b *testing.B) {
	d := bench.ALU(8)
	var pts []core.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = core.GranularitySweep(context.Background(), d, core.DefaultSweepArchs(), 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	best, bestSlack := "", -1e18
	for _, p := range pts {
		if p.AvgTopSlack > bestSlack {
			best, bestSlack = p.Arch, p.AvgTopSlack
		}
	}
	b.Logf("best-performing architecture: %s (avg slack %.1f)", best, bestSlack)
	b.ReportMetric(float64(len(pts)), "architectures")
}

// ---- substrate micro-benchmarks ----

func BenchmarkRTLElaborate(b *testing.B) {
	src := bench.ALU(16).RTL
	for i := 0; i < b.N; i++ {
		if _, err := rtl.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDesign(b *testing.B) *aig.Design {
	b.Helper()
	nl, err := rtl.Compile(bench.ALU(16).RTL)
	if err != nil {
		b.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkAIGOptimize(b *testing.B) {
	d := benchDesign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := &aig.Design{G: d.G, PINames: d.PINames, PONames: d.PONames, FFNames: d.FFNames}
		cp.Optimize(3)
	}
}

func BenchmarkTechnologyMapping(b *testing.B) {
	d := benchDesign(b)
	d.Optimize(3)
	arch := cells.GranularPLB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := techmap.Map(d, arch, techmap.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompaction(b *testing.B) {
	d := benchDesign(b)
	d.Optimize(3)
	arch := cells.GranularPLB()
	mapped, err := techmap.Map(d, arch, techmap.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compact.Run(mapped.Netlist, arch); err != nil {
			b.Fatal(err)
		}
	}
}

func placedProblem(b *testing.B) (*place.Problem, *cells.PLBArch, *aig.Design) {
	b.Helper()
	d := benchDesign(b)
	d.Optimize(3)
	arch := cells.GranularPLB()
	mapped, err := techmap.Map(d, arch, techmap.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cres, err := compact.Run(mapped.Netlist, arch)
	if err != nil {
		b.Fatal(err)
	}
	prob, err := place.Build(cres.Netlist, place.ArchArea(arch), place.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return prob, arch, d
}

func BenchmarkPlacementAnneal(b *testing.B) {
	prob, _, _ := placedProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prob.Anneal(place.Options{Seed: int64(i), MovesPerObj: 4})
	}
}

// BenchmarkAnnealMoves measures the annealer's move throughput — the
// figure of merit of the incremental bounding-box cost kernel. The
// moves/s metric is the one to watch in the bench trajectory.
func BenchmarkAnnealMoves(b *testing.B) {
	prob, _, _ := placedProblem(b)
	// Drop the garbage earlier benchmarks left behind so the measured
	// region sees this kernel's own GC behavior, not theirs.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prob.Anneal(place.Options{Seed: int64(i), MovesPerObj: 8})
	}
	st := prob.Stats()
	b.ReportMetric(float64(st.Proposed)/b.Elapsed().Seconds(), "moves/s")
	b.ReportMetric(100*float64(st.Accepted)/float64(st.Proposed), "%accepted")
}

func BenchmarkGlobalRouting(b *testing.B) {
	prob, _, _ := placedProblem(b)
	prob.Anneal(place.Options{Seed: 1, MovesPerObj: 4})
	// Iterations share one State pool, as matrix and sweep runs do;
	// pooled results are bit-identical to cold ones.
	pool := route.NewPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(prob, route.Options{Pool: pool}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTA(b *testing.B) {
	d := benchDesign(b)
	d.Optimize(3)
	arch := cells.GranularPLB()
	mapped, err := techmap.Map(d, arch, techmap.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cres, err := compact.Run(mapped.Netlist, arch)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(cres.Netlist, arch, nil, nil, sta.Options{ClockPeriod: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxFlowKCut(b *testing.B) {
	// Dinic-based 3-feasible cut search over a mid-size cone.
	const n = 400
	fanins := func(i int) []int {
		if i < 8 {
			return nil
		}
		return []int{i % 8, i - 3, i - 7}
	}
	isLeaf := func(i int) bool { return i < 8 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flowmap.FindKCut(n-1, 3, 64, fanins, isLeaf)
	}
}

func BenchmarkNPNCanon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logic.NPNCanon(logic.NewTT(3, uint64(i)&255))
	}
}

// BenchmarkRoutingArchitectureSweep runs the Sec. 4 routing-resource
// exploration: overflow and timing versus per-channel track capacity.
func BenchmarkRoutingArchitectureSweep(b *testing.B) {
	var pts []core.RoutingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = core.RoutingSweep(context.Background(), bench.ALU(8), cells.GranularPLB(), []int{4, 8, 16, 32}, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].Overflow), "overflow-at-4-tracks")
	b.ReportMetric(float64(pts[len(pts)-1].Overflow), "overflow-at-32-tracks")
}

// BenchmarkStageCachePrefixDepth measures experiment E17: wall time of
// a flow run as a function of the shared-prefix depth served by the
// stage-granular build cache. Depth 0 is a cold run (all five stages
// computed); a clock retarget restores the chain through placement
// (depth 3, the expensive anneal skipped); a routing-knob variant
// restores through packing (depth 4); an identical rerun restores the
// full chain (depth 5). Each iteration uses a fresh cache directory so
// the depths stay exact across b.N.
func BenchmarkStageCachePrefixDepth(b *testing.B) {
	ctx := context.Background()
	base := core.FlowRequest{Design: "alu", Arch: core.ArchSpec{Kind: "granular"},
		Flow: "b", Seed: 1, PlaceEffort: 3, ClockPeriod: 8000}
	retarget := base
	retarget.ClockPeriod = 9000

	restored := func(rep *core.Report) int {
		hits := 0
		for _, u := range rep.StageCache {
			if u.Hit {
				hits++
			}
		}
		return hits
	}
	var cold, depth3, depth4, depth5 time.Duration
	for i := 0; i < b.N; i++ {
		stages, err := OpenStageCache(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		timeReq := func(req core.FlowRequest, wantDepth int) time.Duration {
			start := time.Now()
			res, err := core.Run(ctx, req, core.ExecOptions{Stages: stages})
			elapsed := time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			if got := restored(res.Report); got != wantDepth {
				b.Fatalf("restored %d stages, want %d", got, wantDepth)
			}
			return elapsed
		}
		cold += timeReq(base, 0)
		depth3 += timeReq(retarget, 3)

		// Routing knobs live on Config (the repair ladder's widening
		// rungs), so the depth-4 point goes through RunFlow directly.
		d, cfg, err := base.Resolve()
		if err != nil {
			b.Fatal(err)
		}
		cfg.RouteCapacityScale = 1.25
		cfg.Stages = stages
		start := time.Now()
		rep, err := core.RunFlow(ctx, d, cfg)
		depth4 += time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if got := restored(rep); got != 4 {
			b.Fatalf("route-knob variant restored %d stages, want 4", got)
		}

		depth5 += timeReq(base, 5)
	}
	n := float64(b.N)
	ms := func(t time.Duration) float64 { return t.Seconds() * 1e3 / n }
	b.ReportMetric(ms(cold), "ms-cold")
	b.ReportMetric(ms(depth3), "ms-depth3(place)")
	b.ReportMetric(ms(depth4), "ms-depth4(pack)")
	b.ReportMetric(ms(depth5), "ms-depth5(full)")
	b.ReportMetric(cold.Seconds()/depth3.Seconds(), "x-speedup-depth3")
	b.ReportMetric(cold.Seconds()/depth5.Seconds(), "x-speedup-full")
}
