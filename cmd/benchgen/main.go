// Command benchgen emits the RTL of a benchmark design to stdout, for
// inspection or for feeding back through `vpgaflow -rtl`.
//
// Usage:
//
//	benchgen -design alu -width 16
//	benchgen -design fpu -mantissa 24
//	benchgen -design switch -ports 12 -width 32 -depth 4
//	benchgen -design firewire -regs 40
package main

import (
	"flag"
	"fmt"
	"os"

	"vpga/internal/bench"
)

func main() {
	design := flag.String("design", "alu", "alu, firewire, fpu or switch")
	width := flag.Int("width", 16, "data width (alu, switch)")
	mantissa := flag.Int("mantissa", 24, "mantissa bits (fpu)")
	ports := flag.Int("ports", 12, "port count (switch)")
	depth := flag.Int("depth", 4, "FIFO depth (switch)")
	regs := flag.Int("regs", 40, "register count (firewire)")
	flag.Parse()

	var d bench.Design
	switch *design {
	case "alu":
		d = bench.ALU(*width)
	case "fpu":
		d = bench.FPU(*mantissa)
	case "switch":
		d = bench.Switch(*ports, *width, *depth)
	case "firewire":
		d = bench.Firewire(*regs)
	default:
		fmt.Fprintf(os.Stderr, "benchgen: unknown design %q\n", *design)
		os.Exit(1)
	}
	fmt.Print(d.RTL)
}
