// Command funcclasses reproduces the Section 2.1 / Figure 2 analysis:
// it classifies all 256 3-input Boolean functions by S3-gate
// feasibility and verifies the modified-S3 completeness claim.
//
// Usage:
//
//	funcclasses [-list]
//
// With -list, every globally S3-infeasible function is printed with
// its Figure 2 category.
package main

import (
	"flag"
	"fmt"

	"vpga/internal/core"
	"vpga/internal/logic"
)

func main() {
	list := flag.Bool("list", false, "list every S3-infeasible function with its category")
	flag.Parse()

	fmt.Print(core.Fig2Text())
	if !*list {
		return
	}
	fmt.Println("\nGlobally S3-infeasible functions:")
	for bits := uint64(0); bits < 256; bits++ {
		f := logic.NewTT(3, bits)
		if logic.S3Feasible(f) {
			continue
		}
		cfg, ok := logic.ModifiedS3Implements(f)
		fmt.Printf("  %v  %-45s modified-S3: select=x%d invPath=%v ok=%v\n",
			f, logic.ClassifyFunction(f), cfg.Select, cfg.ND2FromInv, ok)
	}
}
