// Command paper regenerates every table and figure of the paper's
// evaluation section:
//
//	-fig2       Section 2.1 / Figure 2 function classification
//	-table 1    Table 1 (die-area comparison)
//	-table 2    Table 2 (top-10 path-slack comparison)
//	-claims     the derived Section 3.2 statistics
//	-compaction the ~15% compaction ablation (E4)
//	-sweep      the granularity sweep (E8)
//	-all        everything above
//
// Defect-aware fabric (robustness experiments):
//
//	-defect-rate R   run the yield sweep: R defects per fabric tile
//	-defect-maps N   number of defect maps in the sweep (default 50)
//	-defect-seed S   first defect-map seed
//	-keep-going      continue the matrix past failing cells (error ledger)
//	-timeout D       overall wall-clock budget (e.g. 30s); SIGINT also cancels
//
// Observability:
//
//	-trace F    write a Chrome trace-event JSON (load in chrome://tracing
//	            or ui.perfetto.dev) of every flow run — one row per
//	            worker, stage spans, solver counters, repair attempts —
//	            and print a per-stage wall-time summary on stderr
//
// Scale: -scale test (fast miniatures) or -scale paper (gate counts
// approximating the published designs; minutes of runtime).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/core"
	"vpga/internal/obs"
	"vpga/internal/qor"
)

// flushTrace, when tracing is on, writes the Chrome trace file and the
// stderr stage summary; fatalf calls it so a partial trace survives an
// aborted experiment.
var flushTrace = func() {}

func main() {
	table := flag.Int("table", 0, "regenerate table 1 or 2")
	fig2 := flag.Bool("fig2", false, "regenerate the Figure 2 analysis")
	claims := flag.Bool("claims", false, "derive the Section 3.2 statistics")
	compaction := flag.Bool("compaction", false, "run the compaction ablation (E4)")
	sweep := flag.Bool("sweep", false, "run the granularity sweep (E8)")
	domains := flag.Bool("domains", false, "run the application-domain exploration (Sec. 4 future work)")
	routing := flag.Bool("routing", false, "run the routing-architecture sweep (Sec. 4 future work)")
	all := flag.Bool("all", false, "run everything")
	scale := flag.String("scale", "test", "benchmark scale: test or paper")
	seed := flag.Int64("seed", 1, "random seed")
	seeds := flag.Int("seeds", 0, "run the claims over N seeds and report mean/min/max (stability study)")
	effort := flag.Int("effort", 0, "placement effort (0 = default)")
	placeWorkers := flag.Int("place-workers", 0, "annealer workers per flow run (0 or 1 = single-threaded; results are identical at any count)")
	parallel := flag.Int("parallel", 0, "max concurrent flow runs (0 = all cores, 1 = sequential; results are identical either way)")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget (0 = none); expiry cancels in-flight runs")
	defectRate := flag.Float64("defect-rate", 0, "defect rate per fabric tile; > 0 runs the yield sweep")
	defectSeed := flag.Int64("defect-seed", 100, "first defect-map seed of the yield sweep")
	defectMaps := flag.Int("defect-maps", 50, "number of defect maps in the yield sweep")
	keepGoing := flag.Bool("keep-going", false, "continue the matrix past failing cells; failures land in the error ledger")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of every flow run to this file and a per-stage summary to stderr")
	ledgerPath := flag.String("ledger", "", "append one QoR record per completed matrix cell to this JSONL run ledger")
	flag.Parse()

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
		path := *traceFile
		flushTrace = func() {
			if err := tracer.WriteChromeTraceFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "paper: trace: %v\n", err)
				return
			}
			fmt.Fprint(os.Stderr, tracer.SummaryTable())
			fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", path)
		}
		defer flushTrace()
	}

	// The process-wide context: cancelled by -timeout expiry or SIGINT,
	// draining every worker pool at the next iteration boundary.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	if *all {
		*fig2, *claims, *compaction, *sweep, *domains, *routing = true, true, true, true, true, true
		*table = 3 // both
	}
	if !*fig2 && !*claims && !*compaction && !*sweep && !*domains && !*routing &&
		*seeds == 0 && *table == 0 && *defectRate == 0 {
		flag.Usage()
		os.Exit(2)
	}

	suite := bench.TestSuite()
	if *scale == "paper" {
		suite = bench.PaperSuite()
	}

	if *fig2 {
		fmt.Println(core.Fig2Text())
	}

	if *seeds > 0 {
		var list []int64
		for i := 0; i < *seeds; i++ {
			list = append(list, *seed+int64(i))
		}
		st, err := core.RunStabilityStudy(ctx, suite, list, core.StabilityOptions{
			PlaceEffort: *effort, PlaceWorkers: *placeWorkers, Parallel: *parallel, Trace: tracer,
			Progress: func(line string) { fmt.Fprintln(os.Stderr, "  "+line) },
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(st)
	}

	var matrix *core.Matrix
	needMatrix := *claims || *table != 0
	if needMatrix {
		start := time.Now()
		var err error
		matrix, err = core.RunMatrix(ctx, suite, core.MatrixOptions{
			Seed: *seed, PlaceEffort: *effort, PlaceWorkers: *placeWorkers, Parallel: *parallel,
			ContinueOnError: *keepGoing, Trace: tracer,
			Progress: func(line string) { fmt.Fprintln(os.Stderr, "  "+line) },
		})
		if err != nil {
			printLedger(matrix)
			fatalf("%v", err)
		}
		printLedger(matrix)
		appendMatrixLedger(*ledgerPath, matrix, *seed)
		fmt.Fprintf(os.Stderr, "matrix completed in %s\n\n", time.Since(start).Round(time.Second))
	}
	complete := matrix == nil || len(matrix.Errors) == 0
	if *table == 1 || *table == 3 {
		if complete {
			fmt.Println(matrix.Table1())
		} else {
			fmt.Fprintln(os.Stderr, "paper: table 1 skipped: matrix incomplete (see error ledger)")
		}
	}
	if *table == 2 || *table == 3 {
		if complete {
			fmt.Println(matrix.Table2())
		} else {
			fmt.Fprintln(os.Stderr, "paper: table 2 skipped: matrix incomplete (see error ledger)")
		}
	}
	if *claims {
		if complete {
			fmt.Println(matrix.DeriveClaims())
		} else {
			fmt.Fprintln(os.Stderr, "paper: claims skipped: matrix incomplete (see error ledger)")
		}
	}

	if *compaction {
		fmt.Println("Compaction ablation (E4): gate-area reduction by design and architecture")
		for _, d := range suite.All() {
			for _, arch := range []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()} {
				cfg := core.Config{Arch: arch, Flow: core.FlowA, Seed: *seed, PlaceEffort: *effort,
					PlaceWorkers: *placeWorkers, Trace: tracer.NewRun(d.Name + "/" + arch.Name + "/compaction")}
				rep, err := core.RunFlow(ctx, d, cfg)
				cfg.Trace.Close()
				if err != nil {
					fatalf("%v", err)
				}
				fmt.Printf("  %-14s %-13s %6.1f%% reduction (gates %.0f, FA macros %d)\n",
					d.Name, arch.Name, 100*rep.CompactionReduction, rep.GateCount, rep.FullAdders)
			}
		}
		fmt.Println("  (paper reports ~15% average for its DC-mapped netlists)")
		fmt.Println()
	}

	if *domains {
		fir := bench.FIR(8, 8)
		if *scale == "paper" {
			fir = bench.FIR(32, 16)
		}
		results, err := core.RunDomainExplore(ctx,
			[]bench.Design{suite.ALU, suite.Firewire, fir},
			core.DefaultSweepArchs(),
			core.SweepOptions{Seed: *seed, Parallel: *parallel, PlaceWorkers: *placeWorkers, Trace: tracer})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(core.FormatDomains(results))
	}

	if *routing {
		pts, err := core.RunRoutingSweep(ctx, suite.ALU, cells.GranularPLB(), []int{4, 8, 16, 32, 64},
			core.SweepOptions{Seed: *seed, PlaceWorkers: *placeWorkers, Trace: tracer})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(core.FormatRoutingSweep(suite.ALU.Name, pts))
	}

	if *sweep {
		fmt.Println("Granularity sweep (E8): ALU across PLB architectures")
		pts, err := core.RunGranularitySweep(ctx, suite.ALU, core.DefaultSweepArchs(),
			core.SweepOptions{Seed: *seed, Parallel: *parallel, PlaceWorkers: *placeWorkers, Trace: tracer})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("  %-14s %-36s %8s %10s %10s\n", "arch", "slots", "PLB area", "die area", "avg slack")
		for _, p := range pts {
			fmt.Printf("  %-14s %-36s %8.1f %10.0f %10.1f\n", p.Arch, p.Slots, p.PLBArea, p.DieArea, p.AvgTopSlack)
		}
	}

	if *defectRate > 0 {
		fmt.Printf("Defect-yield sweep: ALU on granular-plb, %d maps at rate %.4f\n",
			*defectMaps, *defectRate)
		res, err := core.DefectYield(ctx, suite.ALU, cells.GranularPLB(), core.YieldOptions{
			Rate: *defectRate, Maps: *defectMaps, BaseSeed: *defectSeed,
			FlowSeed: *seed, Parallel: *parallel, Trace: tracer,
			Progress: func(line string) { fmt.Fprintln(os.Stderr, "  "+line) },
		})
		if err != nil {
			fatalf("yield sweep: %v", err)
		}
		fmt.Println(res.Table())
	}
}

// appendMatrixLedger appends one QoR record per populated matrix cell
// to the run ledger. Matrix cells are clock-pinned across flows, not
// request-shaped, so the records carry no cache key.
func appendMatrixLedger(path string, m *core.Matrix, seed int64) {
	if path == "" || m == nil {
		return
	}
	var recs []qor.Record
	for _, archs := range m.Reports {
		for _, flows := range archs {
			for _, rep := range flows {
				if rep != nil {
					recs = append(recs, qor.FromReport(rep, seed, ""))
				}
			}
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID() < recs[j].ID() })
	now := time.Now()
	rev := qor.GitRev(".")
	for i := range recs {
		recs[i].Stamp(now, rev)
	}
	if err := qor.Append(path, recs...); err != nil {
		fmt.Fprintf(os.Stderr, "paper: ledger: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "appended %d QoR record(s) to %s\n", len(recs), path)
}

// printLedger reports failed and skipped matrix cells on stderr.
func printLedger(m *core.Matrix) {
	if m == nil || len(m.Errors) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "error ledger (%d failed/skipped cells):\n", len(m.Errors))
	for _, fe := range m.Errors {
		fmt.Fprintf(os.Stderr, "  %s\n", fe)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "paper: "+format+"\n", args...)
	flushTrace()
	os.Exit(1)
}
