// Command vpgad serves the VPGA flow engine over HTTP/JSON: flow runs,
// the Table 1/2 matrix, and the exploration sweeps, all behind a
// content-addressed report cache (an identical request is answered from
// the cache with a byte-identical report, without re-running the flow).
//
// Endpoints:
//
//	POST /v1/runs               one flow run (core.FlowRequest JSON)
//	POST /v1/matrix             the Table 1/2 benchmark matrix
//	POST /v1/sweeps/granularity the PLB-granularity sweep
//	POST /v1/sweeps/routing     the routing-capacity sweep
//	GET  /v1/runs/{id}          job status / result
//	GET  /v1/runs/{id}/trace    Chrome trace-event JSON of the job
//	GET  /v1/runs/{id}/events   live SSE stream of the job's telemetry
//	GET  /healthz               liveness + queue stats
//	GET  /metrics               Prometheus text metrics + latency histograms
//
// -ledger appends one QoR record per completed run (and per matrix
// cell) to a JSONL run ledger — the same format `vpgaflow qor diff`
// gates against the committed baseline.
//
// -data makes the daemon crash-safe: it opens a durable job journal
// (journal.wal) and a persistent artifact store (artifacts/) under the
// directory. Accepted jobs survive a SIGKILL — on restart the journal
// replays and incomplete jobs re-enqueue under their original IDs —
// and completed results are served from the store across restarts.
//
// -faults arms the deterministic fault-injection harness (same spec
// as the VPGA_FAULTS environment variable; the flag wins), e.g.
// "seed=7,rate=0.02,kinds=errwrite+torn,points=journal.append".
//
// POST endpoints accept ?wait=1 to block until the job finishes;
// without it they return 202 with a job id to poll. A full queue
// answers 429 with Retry-After. SIGINT/SIGTERM drain gracefully:
// running jobs finish (up to -drain), new work is refused with 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vpga/internal/faultinject"
	"vpga/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	workers := flag.Int("workers", 0, "flow worker pool size (0 = all cores)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 2x workers); a full queue answers 429")
	cacheSize := flag.Int("cache", 256, "content-addressed report cache capacity (entries)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock budget (0 = none)")
	jobsKeep := flag.Int("jobs-keep", 64, "completed job records (and traces) retained for polling")
	ledger := flag.String("ledger", "", "append a QoR record per completed run/matrix cell to this JSONL ledger")
	drain := flag.Duration("drain", 2*time.Minute, "graceful-shutdown budget for in-flight jobs")
	dataDir := flag.String("data", "", "durable state directory (job journal + artifact store); empty = in-memory only")
	faults := flag.String("faults", "", "fault-injection spec (overrides "+faultinject.EnvVar+"), e.g. seed=7,rate=0.02,kinds=errwrite+torn")
	flag.Parse()

	if *faults != "" {
		inj, err := faultinject.ParseSpec(*faults)
		if err != nil {
			fatalf("-faults: %v", err)
		}
		faultinject.Enable(inj)
	} else if inj, err := faultinject.FromEnv(); err != nil {
		fatalf("%s: %v", faultinject.EnvVar, err)
	} else if inj != nil {
		faultinject.Enable(inj)
	}

	s, err := server.New(server.Options{
		Workers: *workers, QueueDepth: *queue, CacheSize: *cacheSize,
		JobTimeout: *jobTimeout, JobsKeep: *jobsKeep, LedgerPath: *ledger,
		DataDir: *dataDir,
	})
	if err != nil {
		fatalf("%v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vpgad: listening on http://%s\n", *addr)

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintf(os.Stderr, "vpgad: draining (budget %s)\n", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job queue first so /healthz reports draining while
	// in-flight flows finish, then close the HTTP listener.
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "vpgad: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "vpgad: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "vpgad: stopped")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vpgad: "+format+"\n", args...)
	os.Exit(1)
}
