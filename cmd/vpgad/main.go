// Command vpgad serves the VPGA flow engine over HTTP/JSON: flow runs,
// the Table 1/2 matrix, and the exploration sweeps, all behind a
// content-addressed report cache (an identical request is answered from
// the cache with a byte-identical report, without re-running the flow).
//
// Endpoints:
//
//	POST /v1/runs               one flow run (core.FlowRequest JSON)
//	POST /v1/matrix             the Table 1/2 benchmark matrix
//	POST /v1/sweeps/granularity the PLB-granularity sweep
//	POST /v1/sweeps/routing     the routing-capacity sweep
//	GET  /v1/runs/{id}          job status / result (alias: /v1/jobs/{id})
//	GET  /v1/runs/{id}/trace    Chrome trace-event JSON of the job
//	GET  /v1/runs/{id}/events   live SSE stream of the job's telemetry
//	GET  /v1/jobs/{id}/trace    on a coordinator: the merged cluster-wide trace
//	GET  /v1/cluster/status     on a coordinator: live per-node scheduling stats
//	GET  /healthz               liveness + queue stats
//	GET  /metrics               Prometheus text metrics + latency histograms
//
// -ledger appends one QoR record per completed run (and per matrix
// cell) to a JSONL run ledger — the same format `vpgaflow qor diff`
// gates against the committed baseline.
//
// -data makes the daemon crash-safe: it opens a durable job journal
// (journal.wal) and a persistent artifact store (artifacts/) under the
// directory. Accepted jobs survive a SIGKILL — on restart the journal
// replays and incomplete jobs re-enqueue under their original IDs —
// and completed results are served from the store across restarts.
// The store also backs the stage-granular build cache: every flow run
// persists its per-stage artifacts (mapped netlist, compacted netlist,
// placement, packed array, routing) content-addressed by stage key,
// and later runs sharing a key-chain prefix — a sweep re-routing one
// placement, a clock retarget, flow a after flow b — restore the
// prefix instead of recomputing it. /metrics exposes per-stage
// vpgad_stage_cache_{hits,misses}_total counters and job status JSON
// carries the request's stage_keys chain.
//
// -faults arms the deterministic fault-injection harness (same spec
// as the VPGA_FAULTS environment variable; the flag wins), e.g.
// "seed=7,rate=0.02,kinds=errwrite+torn,points=journal.append".
//
// -log-level and -log-format control structured logging (log/slog on
// stderr): every job lifecycle line carries job_id, kind, trace_id and
// — on workers given -node — the node, so one grep over the fleet's
// logs by trace ID reconstructs a distributed job. -debug-addr serves
// net/http/pprof on a separate opt-in listener for live profiling.
//
// POST endpoints accept ?wait=1 to block until the job finishes;
// without it they return 202 with a job id to poll. A full queue
// answers 429 with Retry-After. SIGINT/SIGTERM drain gracefully:
// running jobs finish (up to -drain), new work is refused with 503.
//
// Cluster mode: -coordinator turns the daemon into a coordinator over
// the worker nodes listed in -workers (comma-separated base URLs). The
// coordinator consistent-hashes content addresses across the fleet,
// splits matrices and granularity sweeps into per-cell tickets with
// work stealing, and serves POST /v1/batch with priorities and
// per-tenant fairness. Worker nodes given -node (their own base URL)
// and -peers (every node's base URL) add the peer-cache tier: a key
// owned by another node is looked up there once before computing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vpga/internal/faultinject"
	"vpga/internal/obs"
	"vpga/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	workers := flag.String("workers", "", "worker mode: flow worker pool size (0 = all cores); coordinator mode: comma-separated worker base URLs")
	coordinator := flag.Bool("coordinator", false, "serve as cluster coordinator over the -workers node list instead of running flows locally")
	node := flag.String("node", "", "this node's own base URL (with -peers, enables the worker peer-cache tier)")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster node (worker peer-cache ring)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 2x workers); a full queue answers 429")
	cacheSize := flag.Int("cache", 256, "content-addressed report cache capacity (entries)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock budget (0 = none)")
	jobsKeep := flag.Int("jobs-keep", 64, "completed job records (and traces) retained for polling")
	ledger := flag.String("ledger", "", "append a QoR record per completed run/matrix cell to this JSONL ledger")
	drain := flag.Duration("drain", 2*time.Minute, "graceful-shutdown budget for in-flight jobs")
	dataDir := flag.String("data", "", "durable state directory (job journal + artifact store); empty = in-memory only")
	faults := flag.String("faults", "", "fault-injection spec (overrides "+faultinject.EnvVar+"), e.g. seed=7,rate=0.02,kinds=errwrite+torn")
	logLevel := flag.String("log-level", "info", "structured-log threshold: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "structured-log encoding: text or json")
	debugAddr := flag.String("debug-addr", "", "opt-in live-profiling listener serving net/http/pprof (e.g. localhost:6060); empty = disabled")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatalf("%v", err)
	}

	if *faults != "" {
		inj, err := faultinject.ParseSpec(*faults)
		if err != nil {
			fatalf("-faults: %v", err)
		}
		faultinject.Enable(inj)
	} else if inj, err := faultinject.FromEnv(); err != nil {
		fatalf("%s: %v", faultinject.EnvVar, err)
	} else if inj != nil {
		faultinject.Enable(inj)
	}

	type drainable interface {
		http.Handler
		Shutdown(context.Context) error
	}
	var (
		s    drainable
		role = "worker"
	)
	if *coordinator {
		role = "coordinator"
		nodes := splitURLs(*workers)
		if len(nodes) == 0 {
			fatalf("-coordinator needs worker base URLs in -workers, e.g. -workers http://n1:8080,http://n2:8080")
		}
		s, err = server.NewCoordinator(server.CoordinatorOptions{
			Workers: nodes, CacheSize: *cacheSize, JobsKeep: *jobsKeep,
			Logger: logger,
		})
	} else {
		pool := 0
		if *workers != "" {
			if pool, err = strconv.Atoi(*workers); err != nil {
				fatalf("-workers: %q is not a pool size (coordinator mode takes the URL list)", *workers)
			}
		}
		opts := server.Options{
			Workers: pool, QueueDepth: *queue, CacheSize: *cacheSize,
			JobTimeout: *jobTimeout, JobsKeep: *jobsKeep, LedgerPath: *ledger,
			DataDir: *dataDir, Logger: logger, Node: *node,
		}
		if *node != "" && *peers != "" {
			opts.PeerLookup = server.NewPeerLookup(*node, splitURLs(*peers))
		}
		s, err = server.New(opts)
	}
	if err != nil {
		fatalf("%v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s}

	// Live profiling rides a separate opt-in listener, so pprof is never
	// reachable through the service port a cluster exposes.
	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vpgad: %s listening on http://%s\n", role, *addr)

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintf(os.Stderr, "vpgad: draining (budget %s)\n", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job queue first so /healthz reports draining while
	// in-flight flows finish, then close the HTTP listener.
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "vpgad: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "vpgad: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "vpgad: stopped")
}

// splitURLs parses a comma-separated URL list, dropping empty fields.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vpgad: "+format+"\n", args...)
	os.Exit(1)
}
