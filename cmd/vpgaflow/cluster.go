package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"
)

// clusterMain dispatches the `vpgaflow cluster` subcommand family —
// live cluster observability against a running coordinator:
//
//	vpgaflow cluster top    render GET /v1/cluster/status as a table
//
// `cluster top` prints one snapshot and exits; -watch re-renders every
// -interval until interrupted, like a minimal `top` for the fleet.
func clusterMain(args []string) {
	if len(args) == 0 {
		fatalf("cluster: want a subcommand: top")
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	switch args[0] {
	case "top":
		clusterTop(ctx, args[1:])
	default:
		fatalf("cluster: unknown subcommand %q (want top)", args[0])
	}
}

// clusterStatus mirrors the coordinator's GET /v1/cluster/status
// payload — only the fields the renderer consumes.
type clusterStatus struct {
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	NodesUp       int     `json:"nodes_up"`
	JobsTracked   int     `json:"jobs_tracked"`
	Nodes         []struct {
		Node             string `json:"node"`
		Up               bool   `json:"up"`
		TicketQueueDepth int    `json:"ticket_queue_depth"`
		InFlightTickets  int    `json:"in_flight_tickets"`
		WorkerQueueDepth int    `json:"worker_queue_depth"`
		WorkerJobs       int64  `json:"worker_jobs_running"`
		Dispatched       int64  `json:"dispatched"`
		Errors           int64  `json:"errors"`
		StageCache       map[string]struct {
			Hits     int64   `json:"hits"`
			Misses   int64   `json:"misses"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"stage_cache"`
	} `json:"nodes"`
	Cluster struct {
		Tickets         int64   `json:"tickets"`
		TicketRetries   int64   `json:"ticket_retries"`
		Steals          int64   `json:"steals"`
		Reshards        int64   `json:"reshards"`
		PeerHits        int64   `json:"peer_hits"`
		WorkerCacheHits int64   `json:"worker_cache_hits"`
		PeerHitRatio    float64 `json:"peer_hit_ratio"`
		JobsCompleted   int64   `json:"jobs_completed"`
		JobsFailed      int64   `json:"jobs_failed"`
	} `json:"cluster"`
}

// clusterTop serves `vpgaflow cluster top`.
func clusterTop(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("cluster top", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "coordinator base URL")
	watch := fs.Bool("watch", false, "re-render continuously until interrupted")
	interval := fs.Duration("interval", 2*time.Second, "refresh period with -watch")
	fs.Parse(args)

	base := strings.TrimRight(*addr, "/")
	for {
		st, err := fetchClusterStatus(ctx, base)
		if err != nil {
			fatalf("cluster top: %v", err)
		}
		if *watch {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		renderClusterStatus(os.Stdout, base, st)
		if !*watch {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(*interval):
		}
	}
}

func fetchClusterStatus(ctx context.Context, base string) (*clusterStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/v1/cluster/status: %s (is the address a coordinator?)", base, resp.Status)
	}
	var st clusterStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding cluster status: %w", err)
	}
	return &st, nil
}

// renderClusterStatus prints the snapshot as a fixed-width table plus
// a one-line cluster rollup.
func renderClusterStatus(w io.Writer, base string, st *clusterStatus) {
	fmt.Fprintf(w, "%s  up %s  nodes %d/%d up  jobs %d tracked / %d done / %d failed\n",
		base, (time.Duration(st.UptimeSeconds*float64(time.Second))).Round(time.Second),
		st.NodesUp, len(st.Nodes), st.JobsTracked, st.Cluster.JobsCompleted, st.Cluster.JobsFailed)
	fmt.Fprintf(w, "tickets %d (%d retries, %d steals, %d reshards)  cache hits: peer %d + worker %d (%.0f%%)\n\n",
		st.Cluster.Tickets, st.Cluster.TicketRetries, st.Cluster.Steals, st.Cluster.Reshards,
		st.Cluster.PeerHits, st.Cluster.WorkerCacheHits, 100*st.Cluster.PeerHitRatio)
	fmt.Fprintf(w, "%-28s %-5s %6s %9s %7s %8s %7s %6s  %s\n",
		"NODE", "UP", "QUEUE", "IN-FLIGHT", "WQUEUE", "RUNNING", "DISP", "ERRS", "STAGE CACHE (hit%)")
	for _, n := range st.Nodes {
		up := "yes"
		if !n.Up {
			up = "DOWN"
		}
		fmt.Fprintf(w, "%-28s %-5s %6d %9d %7d %8d %7d %6d  %s\n",
			n.Node, up, n.TicketQueueDepth, n.InFlightTickets,
			n.WorkerQueueDepth, n.WorkerJobs, n.Dispatched, n.Errors,
			renderStageCache(n.StageCache))
	}
}

// renderStageCache compresses the per-stage ratios into one cell:
// "place 80% route 50%" in stable stage order, "-" when the worker
// reported none.
func renderStageCache(stages map[string]struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}) string {
	if len(stages) == 0 {
		return "-"
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s %.0f%%", name, 100*stages[name].HitRatio))
	}
	return strings.Join(parts, " ")
}
