// Command vpgaflow runs one design through the complete VPGA
// implementation flow and prints the resulting report.
//
// Usage:
//
//	vpgaflow -design alu|firewire|fpu|switch -arch granular|lut -flow a|b
//	         [-scale test|paper] [-seed N] [-effort N] [-clock PS]
//	         [-verify] [-skip-compaction] [-trace out.json]
//	vpgaflow -rtl file.v -arch granular -flow b     # custom RTL input
//	vpgaflow -request run.json                      # serialized FlowRequest
//	vpgaflow -print-request [flags]                 # canonical JSON + cache key + stage keys
//	vpgaflow -stage-cache DIR [flags]               # stage-granular build cache
//	vpgaflow qor run|baseline|diff [flags]          # QoR regression observatory
//	vpgaflow cluster top [-addr URL] [-watch]       # live coordinator/fleet view
//
// The qor subcommands drive the regression observatory: `qor run`
// appends gate-matrix records to a JSONL ledger, `qor baseline`
// (re)writes the committed qor/baseline.json, and `qor diff` gates the
// current tree against it, exiting 1 on drift (VPGA_UPDATE_BASELINE=1
// refreshes the baseline instead).
//
// -request runs a core.FlowRequest from a JSON file ('-' for stdin) —
// the same document POST /v1/runs accepts, so a request can be
// developed locally and then submitted to vpgad unchanged.
// -print-request skips the run and prints the canonical (normalized)
// encoding of the request plus its content-address cache key and
// per-stage key chain; combined with the ordinary flags it converts a
// flag invocation into a service request.
//
// -stage-cache DIR opens (or creates) a stage-granular build cache at
// DIR: every stage boundary — mapped netlist, compacted netlist,
// placement, packed array, routing — is stored content-addressed, and
// later runs sharing a key-chain prefix restore it instead of
// recomputing. Reports are bit-identical with or without the cache.
//
// -trace writes a Chrome trace-event JSON of the run (stage spans,
// solver counters, repair attempts; open in chrome://tracing or
// ui.perfetto.dev) and prints a per-stage wall-time summary on stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"vpga/internal/artifact"
	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/core"
	"vpga/internal/defect"
	"vpga/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "qor" {
		qorMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "cluster" {
		clusterMain(os.Args[2:])
		return
	}
	design := flag.String("design", "alu", "benchmark: alu, firewire, fpu, switch")
	rtlFile := flag.String("rtl", "", "compile this RTL file instead of a benchmark")
	archName := flag.String("arch", "granular", "PLB architecture: granular or lut")
	flowName := flag.String("flow", "b", "flow a (ASIC, no packing) or b (full PLB array)")
	scale := flag.String("scale", "test", "benchmark scale: test or paper")
	seed := flag.Int64("seed", 1, "random seed")
	effort := flag.Int("effort", 6, "placement effort (moves per object per temperature)")
	clock := flag.Float64("clock", 0, "clock period in ps (0 = auto: 1.2x pre-layout arrival)")
	verify := flag.Bool("verify", false, "check implementation equivalence by random simulation")
	skipCompact := flag.Bool("skip-compaction", false, "disable regularity-driven compaction (ablation)")
	floorplan := flag.String("floorplan", "", "write the packed-array floorplan (flow b) to this file ('-' for stdout)")
	netlistOut := flag.String("netlist", "", "write the implementation as structural Verilog to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none)")
	defectRate := flag.Float64("defect-rate", 0, "inject a defect map at this rate per fabric tile (runs the repair ladder)")
	defectSeed := flag.Int64("defect-seed", 100, "defect-map seed")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file and a per-stage summary to stderr")
	requestFile := flag.String("request", "", "run a serialized core.FlowRequest from this JSON file ('-' for stdin) instead of the flow flags")
	printRequest := flag.Bool("print-request", false, "print the request's canonical JSON, cache key and stage keys instead of running it")
	stageDir := flag.String("stage-cache", "", "stage-granular build cache directory (created if absent); runs restore cached stage artifacts and store fresh ones")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var stages *core.StageCache
	if *stageDir != "" {
		store, err := artifact.Open(*stageDir)
		if err != nil {
			fatalf("stage cache: %v", err)
		}
		stages = core.NewStageCache(store)
	}

	if *requestFile != "" || *printRequest {
		var req core.FlowRequest
		if *requestFile != "" {
			req = readRequest(*requestFile)
		} else {
			// Convert the flag invocation into a service request.
			req = core.FlowRequest{
				Design: *design, Scale: *scale,
				Arch: core.ArchSpec{Kind: *archName}, Flow: *flowName,
				Seed: *seed, ClockPeriod: *clock, PlaceEffort: *effort,
				SkipCompaction: *skipCompact, Verify: *verify,
				DefectRate: *defectRate,
			}
			if *rtlFile != "" {
				src, err := os.ReadFile(*rtlFile)
				if err != nil {
					fatalf("%v", err)
				}
				req.Design = ""
				req.RTL, req.Name = string(src), *rtlFile
			}
			if *defectRate > 0 {
				req.DefectSeed = *defectSeed
			}
		}
		if *floorplan != "" || *netlistOut != "" {
			fatalf("-floorplan/-netlist are unavailable with -request/-print-request")
		}
		if *printRequest {
			key, err := req.CacheKey()
			if err != nil {
				fatalf("%v", err)
			}
			keys, err := req.StageKeys()
			if err != nil {
				fatalf("%v", err)
			}
			enc, err := json.MarshalIndent(req.Normalize(), "", "  ")
			if err != nil {
				fatalf("%v", err)
			}
			// Canonical JSON on stdout; derived keys on stderr, so the
			// stdout document stays a valid request body.
			fmt.Printf("%s\n", enc)
			fmt.Fprintf(os.Stderr, "cache key: %s\n", key)
			for _, sk := range keys {
				fmt.Fprintf(os.Stderr, "stage %-8s %s\n", sk.Stage, sk.Key)
			}
			return
		}
		runRequest(ctx, req, *traceFile, stages)
		return
	}

	var arch *cells.PLBArch
	switch *archName {
	case "granular":
		arch = cells.GranularPLB()
	case "lut":
		arch = cells.LUTPLB()
	default:
		fatalf("unknown arch %q (want granular or lut)", *archName)
	}
	var flow core.FlowKind
	switch *flowName {
	case "a":
		flow = core.FlowA
	case "b":
		flow = core.FlowB
	default:
		fatalf("unknown flow %q (want a or b)", *flowName)
	}

	var d bench.Design
	if *rtlFile != "" {
		src, err := os.ReadFile(*rtlFile)
		if err != nil {
			fatalf("%v", err)
		}
		d = bench.Design{Name: *rtlFile, RTL: string(src)}
	} else {
		suite := bench.TestSuite()
		if *scale == "paper" {
			suite = bench.PaperSuite()
		}
		switch *design {
		case "alu":
			d = suite.ALU
		case "firewire":
			d = suite.Firewire
		case "fpu":
			d = suite.FPU
		case "switch":
			d = suite.Switch
		default:
			fatalf("unknown design %q", *design)
		}
	}

	cfg := core.Config{
		Arch: arch, Flow: flow, ClockPeriod: *clock, Seed: *seed,
		PlaceEffort: *effort, Verify: *verify, SkipCompaction: *skipCompact,
		Stages: stages,
	}
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
		cfg.Trace = tracer.NewRun(d.Name + "/" + arch.Name + "/" + flow.String())
	}
	var rep *core.Report
	var art *core.Artifacts
	var err error
	if *defectRate > 0 {
		// Defective fabric: run through the repair ladder. The floorplan
		// and netlist outputs need artifacts, which the repair path does
		// not expose, so they are unavailable here.
		cfg.Defects = defect.New(*defectSeed, *defectRate)
		rep, err = core.RunFlowRepair(ctx, d, cfg)
		if err == nil && (*floorplan != "" || *netlistOut != "") {
			fatalf("-floorplan/-netlist are unavailable with -defect-rate")
		}
	} else {
		rep, art, err = core.RunFlowFull(ctx, d, cfg)
	}
	cfg.Trace.Close()
	if tracer != nil {
		if werr := tracer.WriteChromeTraceFile(*traceFile); werr != nil {
			fatalf("trace: %v", werr)
		}
		fmt.Fprint(os.Stderr, tracer.SummaryTable())
		fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceFile)
	}
	if err != nil {
		fatalf("%v", err)
	}
	printReport(rep)
	if *netlistOut != "" {
		f, err := os.Create(*netlistOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := art.Impl.WriteVerilog(f); err != nil {
			fatalf("%v", err)
		}
		f.Close()
	}
	if *floorplan != "" {
		out := os.Stdout
		if *floorplan != "-" {
			f, err := os.Create(*floorplan)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			out = f
		}
		if err := core.WriteFloorplan(out, rep, art); err != nil {
			fatalf("%v", err)
		}
	}
}

// readRequest loads a serialized FlowRequest ('-' = stdin), strictly:
// unknown fields are rejected, like the service endpoint does.
func readRequest(path string) core.FlowRequest {
	var src io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src = f
	}
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	var req core.FlowRequest
	if err := dec.Decode(&req); err != nil {
		fatalf("request %s: %v", path, err)
	}
	return req
}

// runRequest executes a FlowRequest exactly as vpgad would.
func runRequest(ctx context.Context, req core.FlowRequest, traceFile string, stages *core.StageCache) {
	var tracer *obs.Tracer
	var run *obs.Run
	if traceFile != "" {
		tracer = obs.NewTracer()
		n := req.Normalize()
		run = tracer.NewRun(n.Design + n.Name + "/" + n.Arch.Kind + "/flow " + n.Flow)
	}
	res, err := core.Run(ctx, req, core.ExecOptions{Trace: run, Stages: stages})
	run.Close()
	if tracer != nil {
		if werr := tracer.WriteChromeTraceFile(traceFile); werr != nil {
			fatalf("trace: %v", werr)
		}
		fmt.Fprint(os.Stderr, tracer.SummaryTable())
	}
	if err != nil {
		fatalf("%v", err)
	}
	printReport(res.Report)
}

func printReport(r *core.Report) {
	fmt.Printf("design:         %s\n", r.Design)
	fmt.Printf("architecture:   %s\n", r.Arch)
	fmt.Printf("flow:           %s\n", r.Flow)
	fmt.Printf("gate count:     %.0f NAND2 equivalents\n", r.GateCount)
	if r.DefectSummary != "" {
		fmt.Printf("defect map:     %s\n", r.DefectSummary)
		fmt.Printf("repair:         %d escalation(s) over %d attempt(s)\n", r.Escalations, len(r.Attempts))
		for _, a := range r.Attempts {
			status := "ok"
			if a.Err != "" {
				status = a.Err
			}
			fmt.Printf("  attempt %d (%s, seed %d): %s\n", a.Attempt, a.Action, a.Seed, status)
		}
	}
	if r.CompactionReduction > 0 {
		fmt.Printf("compaction:     %.1f%% gate-area reduction, %d full adders extracted\n",
			100*r.CompactionReduction, r.FullAdders)
	}
	fmt.Printf("die area:       %.0f\n", r.DieArea)
	if r.Rows > 0 {
		fmt.Printf("PLB array:      %d x %d (%.0f%% utilized, perturbation %.2f pitches)\n",
			r.Rows, r.Cols, 100*r.Utilization, r.Perturbation)
		fmt.Printf("vias:           %d populated (%d potential sites per PLB, %.1f%% of fabric sites)\n",
			r.PopulatedVias, r.ViaSitesPerPLB,
			100*float64(r.PopulatedVias)/float64(r.ViaSitesPerPLB*r.Rows*r.Cols))
	}
	fmt.Printf("wirelength:     %.0f (overflow %d)\n", r.Wirelength, r.Overflow)
	fmt.Printf("clock period:   %.0f ps\n", r.ClockPeriod)
	fmt.Printf("slack (top10):  %.1f ps avg, %.1f ps worst\n", r.AvgTopSlack, r.WorstSlack)
	fmt.Printf("max arrival:    %.1f ps\n", r.MaxArrival)
	fmt.Printf("power:          %.1f uW at this clock\n", r.PowerUW)
	if len(r.ConfigCounts) > 0 {
		fmt.Printf("configurations:")
		for _, k := range sortedKeys(r.ConfigCounts) {
			fmt.Printf(" %s=%d", k, r.ConfigCounts[k])
		}
		fmt.Println()
	}
	if len(r.StageCache) > 0 {
		fmt.Printf("stage cache:   ")
		for _, u := range r.StageCache {
			verdict := "miss"
			if u.Hit {
				verdict = "hit"
			}
			fmt.Printf(" %s=%s", u.Stage, verdict)
		}
		fmt.Println()
	}
	fmt.Printf("runtime:        %s\n", r.Runtime.Round(1000000))
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vpgaflow: "+format+"\n", args...)
	os.Exit(1)
}
