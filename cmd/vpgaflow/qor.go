package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"vpga/internal/obs"
	"vpga/internal/qor"
)

// qorMain dispatches the `vpgaflow qor` subcommand family — the QoR
// regression observatory:
//
//	vpgaflow qor run      run the gate matrix, append records to a ledger
//	vpgaflow qor baseline run the gate matrix, (re)write qor/baseline.json
//	vpgaflow qor diff     gate the current tree (or a ledger) against the baseline
//
// `qor diff` exits 1 on drift, so it slots directly into CI. Setting
// VPGA_UPDATE_BASELINE=1 makes an intentional QoR change a one-command
// refresh: the diff is still printed, but the baseline is rewritten
// from the current records and the exit status is 0.
func qorMain(args []string) {
	if len(args) == 0 {
		fatalf("qor: want a subcommand: run, baseline or diff")
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	switch args[0] {
	case "run":
		qorRun(ctx, args[1:])
	case "baseline":
		qorBaseline(ctx, args[1:])
	case "diff":
		qorDiff(ctx, args[1:])
	default:
		fatalf("qor: unknown subcommand %q (want run, baseline or diff)", args[0])
	}
}

// gateFlags registers the gate-matrix knobs shared by every qor
// subcommand.
func gateFlags(fs *flag.FlagSet) *qor.GateOptions {
	opts := &qor.GateOptions{}
	fs.StringVar(&opts.Scale, "scale", "test", "benchmark scale: test or paper")
	fs.Int64Var(&opts.Seed, "seed", 1, "flow seed for every gate cell")
	fs.IntVar(&opts.PlaceEffort, "effort", 3, "placement effort for every gate cell")
	fs.IntVar(&opts.Parallel, "parallel", 0, "concurrent gate cells (0 = all cores)")
	return opts
}

// runGate executes the gate matrix with provenance stamped and an
// optional Chrome trace written.
func runGate(ctx context.Context, opts qor.GateOptions, traceFile string) []qor.Record {
	var tracer *obs.Tracer
	if traceFile != "" {
		tracer = obs.NewTracer()
		opts.Trace = tracer
	}
	opts.Now = time.Now()
	opts.GitRev = qor.GitRev(".")
	recs, err := qor.RunGate(ctx, opts)
	if tracer != nil {
		if werr := tracer.WriteChromeTraceFile(traceFile); werr != nil {
			fatalf("%v", werr)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", traceFile)
	}
	if err != nil {
		fatalf("%v", err)
	}
	return recs
}

// qorRun serves `vpgaflow qor run`: gate matrix -> ledger records.
func qorRun(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("qor run", flag.ExitOnError)
	opts := gateFlags(fs)
	out := fs.String("out", "", "append records to this JSONL ledger (default: stdout)")
	traceFile := fs.String("trace", "", "write a Chrome trace-event JSON of the gate run")
	fs.Parse(args)

	recs := runGate(ctx, *opts, *traceFile)
	if *out == "" {
		if err := qor.Write(os.Stdout, recs...); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if err := qor.Append(*out, recs...); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "qor: appended %d record(s) to %s\n", len(recs), *out)
}

// qorBaseline serves `vpgaflow qor baseline`: gate matrix -> committed
// baseline file.
func qorBaseline(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("qor baseline", flag.ExitOnError)
	opts := gateFlags(fs)
	out := fs.String("out", "qor/baseline.json", "baseline file to write")
	traceFile := fs.String("trace", "", "write a Chrome trace-event JSON of the gate run")
	fs.Parse(args)

	recs := runGate(ctx, *opts, *traceFile)
	writeBaseline(*out, *opts, recs)
}

func writeBaseline(path string, opts qor.GateOptions, recs []qor.Record) {
	rev := ""
	gen := ""
	if len(recs) > 0 {
		rev, gen = recs[0].GitRev, recs[0].Time
	}
	b := &qor.Baseline{
		Generated: gen, GitRev: rev,
		Scale: opts.Scale, Seed: opts.Seed, PlaceEffort: opts.PlaceEffort,
		Tolerance: qor.DefaultTolerance(),
		Records:   recs,
	}
	if b.Scale == "" {
		b.Scale = "test"
	}
	if b.PlaceEffort == 0 {
		b.PlaceEffort = 3
	}
	if err := qor.WriteBaseline(path, b); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "qor: baseline written to %s (%d record(s))\n", path, len(b.Records))
}

// qorDiff serves `vpgaflow qor diff`: drift-gate the current tree (a
// fresh gate run replaying the baseline's parameters) or an existing
// ledger against the committed baseline. Exits 1 on drift.
func qorDiff(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("qor diff", flag.ExitOnError)
	baselinePath := fs.String("baseline", "qor/baseline.json", "committed baseline to gate against")
	ledgerPath := fs.String("ledger", "", "gate this JSONL ledger instead of running the gate matrix")
	jsonOut := fs.String("json", "", "also write the machine-readable verdict JSON to this file ('-' for stdout)")
	traceFile := fs.String("trace", "", "write a Chrome trace-event JSON of the gate run")
	parallel := fs.Int("parallel", 0, "concurrent gate cells (0 = all cores)")
	verbose := fs.Bool("v", false, "print every metric row, not only the findings")
	fs.Parse(args)

	base, err := qor.ReadBaseline(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	var cur []qor.Record
	opts := qor.GateOptions{
		Scale: base.Scale, Seed: base.Seed, PlaceEffort: base.PlaceEffort,
		Parallel: *parallel,
	}
	if *ledgerPath != "" {
		// A torn trailing line (daemon killed mid-append) is tolerated:
		// the intact records still gate, with a warning.
		recs, st, err := qor.ReadStatsFile(*ledgerPath)
		if err != nil {
			fatalf("%v", err)
		}
		if st.TornTail {
			fmt.Fprintf(os.Stderr, "qor: warning: %s: discarded torn trailing line %d (%s)\n",
				*ledgerPath, st.TornLine, st.TornErr)
		}
		cur = recs
	} else {
		// Replay exactly the configuration the baseline records, so the
		// diff is apples-to-apples without any flag coordination.
		cur = runGate(ctx, opts, *traceFile)
	}
	v := qor.Diff(base.Records, cur, base.Tolerance)
	fmt.Print(v.Table(*verbose))
	if *jsonOut != "" {
		enc, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		enc = append(enc, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if os.Getenv("VPGA_UPDATE_BASELINE") == "1" {
		writeBaseline(*baselinePath, opts, cur)
		return
	}
	if !v.Pass {
		os.Exit(1)
	}
}
