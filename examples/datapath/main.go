// Datapath comparison: run the ALU benchmark through both PLB
// architectures and both flows, reproducing one row of the paper's
// Tables 1 and 2.
//
//	go run ./examples/datapath [-width N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"vpga"
)

func main() {
	width := flag.Int("width", 16, "ALU data width")
	flag.Parse()

	design := vpga.ALU(*width)
	fmt.Printf("=== %s (%d-bit) through both architectures ===\n\n", design.Name, *width)

	type key struct{ arch, flow string }
	reports := map[key]*vpga.Report{}
	clock := 0.0
	for _, arch := range []*vpga.PLBArch{vpga.GranularPLB(), vpga.LUTPLB()} {
		for _, flow := range []vpga.FlowKind{vpga.FlowA, vpga.FlowB} {
			rep, err := vpga.Run(context.Background(), design, vpga.Config{
				Arch: arch, Flow: flow, ClockPeriod: clock, Seed: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			if clock == 0 {
				clock = rep.ClockPeriod // one cycle time for all four runs
			}
			reports[key{arch.Name, rep.Flow}] = rep
			fmt.Printf("  %-13s %-7s gates=%6.0f die=%7.0f slack=%8.1f ps",
				arch.Name, rep.Flow, rep.GateCount, rep.DieArea, rep.AvgTopSlack)
			if rep.Rows > 0 {
				fmt.Printf("  array=%dx%d (%.0f%% used)", rep.Rows, rep.Cols, 100*rep.Utilization)
			}
			fmt.Println()
		}
	}

	g := reports[key{"granular-plb", "flow b"}]
	l := reports[key{"lut-plb", "flow b"}]
	fmt.Println()
	fmt.Printf("granular vs LUT on the full flow (paper Sec. 3.2 directions):\n")
	fmt.Printf("  die area:  %.0f vs %.0f  (%.1f%% reduction; paper: ~32%% avg on datapath)\n",
		g.DieArea, l.DieArea, 100*(1-g.DieArea/l.DieArea))
	fmt.Printf("  avg slack: %.1f vs %.1f ps at a %.0f ps clock (paper: ~18%% improvement)\n",
		g.AvgTopSlack, l.AvgTopSlack, clock)
	ga := reports[key{"granular-plb", "flow a"}]
	la := reports[key{"lut-plb", "flow a"}]
	fmt.Printf("  packing overhead (flow b / flow a): granular %.2fx, LUT %.2fx\n",
		g.DieArea/ga.DieArea, l.DieArea/la.DieArea)
}
