// Full adder in a single PLB (Section 2.2 of the paper): the granular
// PLB computes both the sum (XOA + MUX through the programmable
// inverter) and the carry (third MUX + ND3WI generate term) of a full
// adder in one block, which the LUT-based PLB cannot.
//
//	go run ./examples/fulladder
package main

import (
	"context"
	"fmt"
	"log"

	"vpga"
)

// An 8-bit ripple-carry adder: eight full adders chained.
const adderSrc = `
module rca8(input clk, input [7:0] a, input [7:0] b, input cin,
            output [8:0] s);
  reg [7:0] ra;
  reg [7:0] rb;
  reg rc;
  always ra <= a;
  always rb <= b;
  always rc <= cin;
  wire [8:0] sum = {1'b0, ra} + {1'b0, rb} + {8'b0, rc};
  reg [8:0] rs;
  always rs <= sum;
  assign s = rs;
endmodule`

func main() {
	design := vpga.Design{Name: "rca8", RTL: adderSrc, Datapath: true}

	fmt.Println("=== Section 2.2: the full adder and PLB granularity ===")
	fmt.Println()

	// Architecture-level fact first: one granular PLB hosts a full
	// adder, one LUT-based PLB does not (checked by the slot matcher).
	gran, lut := vpga.GranularPLB(), vpga.LUTPLB()
	fmt.Printf("granular PLB (%s)\n", gran.SlotSummary())
	fmt.Printf("LUT PLB      (%s)\n", lut.SlotSummary())
	fa := gran.Config("FA")
	fmt.Printf("FA macro hosted by granular PLB: %v\n", gran.CanPack([]*vpga.PLBConfig{fa}))
	fmt.Printf("FA macro hosted by LUT PLB:      %v\n", lut.CanPack([]*vpga.PLBConfig{fa}))
	fmt.Println()

	// Now the flow: the compactor should find the chained full adders
	// and pack each into a single PLB. One clock period is shared so
	// the slacks are comparable.
	clock := 0.0
	for _, arch := range []*vpga.PLBArch{gran, lut} {
		rep, err := vpga.Run(context.Background(), design, vpga.Config{Arch: arch, Flow: vpga.FlowB, ClockPeriod: clock, Seed: 2, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		if clock == 0 {
			clock = rep.ClockPeriod
		}
		fmt.Printf("%-13s full adders extracted: %d, die area %.0f, PLB array %dx%d, avg slack %.1f ps\n",
			arch.Name+":", rep.FullAdders, rep.DieArea, rep.Rows, rep.Cols, rep.AvgTopSlack)
	}
	fmt.Println()
	fmt.Println("The granular architecture packs sum+carry pairs into FA macros; the")
	fmt.Println("LUT architecture spends a 3-LUT per sum bit and cannot merge the pair.")
	fmt.Println("(On a design this small the flip-flops dominate both arrays, so the")
	fmt.Println("granular PLB's larger tile can still cost die area — the same effect")
	fmt.Println("the paper reports on the sequential-dominated Firewire benchmark.)")
}
