// Granularity exploration (the paper's title question): sweep a design
// across PLB architectures of increasing logic-block granularity and
// watch the area/performance trade-off, including the FF-rich variant
// the conclusion proposes for sequential-dominated applications.
//
//	go run ./examples/granularity [-design alu|firewire]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"vpga"
)

func main() {
	which := flag.String("design", "alu", "design to sweep: alu or firewire")
	flag.Parse()

	var design vpga.Design
	switch *which {
	case "alu":
		design = vpga.ALU(12)
	case "firewire":
		design = vpga.Firewire(10)
	default:
		log.Fatalf("unknown design %q", *which)
	}

	fmt.Printf("=== Logic block granularity sweep on %s ===\n\n", design.Name)
	points, err := vpga.RunGranularitySweep(context.Background(), design, vpga.DefaultSweepArchs(), vpga.SweepOptions{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-36s %9s %10s %11s %9s\n",
		"architecture", "slots", "PLB area", "die area", "avg slack", "PLBs")
	for _, p := range points {
		fmt.Printf("%-14s %-36s %9.1f %10.0f %11.1f %9d\n",
			p.Arch, p.Slots, p.PLBArea, p.DieArea, p.AvgTopSlack, p.UsedPLBs)
	}
	fmt.Println()
	fmt.Println("Reading the sweep (paper Sec. 4): finer granularity buys speed on")
	fmt.Println("datapath logic; the FF-rich block is the fix for designs like the")
	fmt.Println("Firewire controller, whose area is dominated by sequential elements.")
}
