// Implementation artifacts: run a design through flow b and export
// everything a downstream consumer needs — the structural Verilog of
// the implementation, the PLB-array floorplan with per-instance via
// programs, and the headline report.
//
//	go run ./examples/implementation [-out DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vpga"
)

func main() {
	out := flag.String("out", ".", "output directory for fir.v and fir.floorplan")
	flag.Parse()

	design := vpga.FIR(8, 8)
	rep, art, err := vpga.RunFull(context.Background(), design, vpga.Config{
		Arch: vpga.GranularPLB(), Flow: vpga.FlowB, Seed: 7, Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: %dx%d PLB array, die %.0f, %d full adders, %d vias, %.1f µW\n",
		rep.Design, rep.Arch, rep.Rows, rep.Cols, rep.DieArea, rep.FullAdders,
		rep.PopulatedVias, rep.PowerUW)

	vPath := filepath.Join(*out, "fir.v")
	vf, err := os.Create(vPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := art.Impl.WriteVerilog(vf); err != nil {
		log.Fatal(err)
	}
	vf.Close()
	fmt.Println("wrote", vPath)

	fPath := filepath.Join(*out, "fir.floorplan")
	ff, err := os.Create(fPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := vpga.WriteFloorplan(ff, rep, art); err != nil {
		log.Fatal(err)
	}
	ff.Close()
	fmt.Println("wrote", fPath)
}
