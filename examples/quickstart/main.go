// Quickstart: compile a small piece of RTL and push it through the
// complete VPGA flow on the granular PLB architecture.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"vpga"
)

const src = `
// A tiny accumulating datapath: y accumulates a+b or a&b by sel.
module quick(input clk, input [7:0] a, input [7:0] b, input sel,
             output [7:0] y, output carryish);
  wire [7:0] sum = a + b;
  wire [7:0] msk = a & b;
  reg [7:0] acc;
  always acc <= acc + (sel ? sum : msk);
  assign y = acc;
  assign carryish = ^acc;
endmodule`

func main() {
	// The RTL front end alone: elaborate and inspect.
	nl, err := vpga.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("elaborated:", nl)

	// Full implementation flow onto the granular PLB array (flow b).
	design := vpga.Design{Name: "quick", RTL: src, Datapath: true}
	rep, err := vpga.Run(context.Background(), design, vpga.Config{
		Arch:   vpga.GranularPLB(),
		Flow:   vpga.FlowB,
		Seed:   1,
		Verify: true, // random-simulation equivalence vs the RTL
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gate count:   %.0f NAND2 equivalents\n", rep.GateCount)
	fmt.Printf("compaction:   %.1f%% area reduction, %d full adders extracted\n",
		100*rep.CompactionReduction, rep.FullAdders)
	fmt.Printf("PLB array:    %dx%d (%.0f%% utilized)\n", rep.Rows, rep.Cols, 100*rep.Utilization)
	fmt.Printf("die area:     %.0f\n", rep.DieArea)
	fmt.Printf("clock:        %.0f ps, worst slack %.1f ps\n", rep.ClockPeriod, rep.WorstSlack)
	fmt.Printf("wirelength:   %.0f (overflow %d)\n", rep.Wirelength, rep.Overflow)
	fmt.Println("implementation verified against the RTL by random simulation")
}
