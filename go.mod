module vpga

go 1.22
