// Package aig implements an And-Inverter Graph with structural
// hashing, the logic-optimization core of the flow's synthesis stage
// (standing in for the commercial logic optimizer in the paper's
// Figure 6). Sequential designs are handled by extracting the
// combinational core: flip-flop outputs become AIG inputs and flip-flop
// data pins become AIG outputs.
package aig

import (
	"fmt"

	"vpga/internal/logic"
)

// Lit is a literal: a node index shifted left once, with the low bit
// set when the edge is complemented. Lit 0 is constant false, Lit 1
// constant true.
type Lit uint32

// ConstFalse and ConstTrue are the constant literals.
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// MkLit builds a literal from a node index and complement flag.
func MkLit(node int, neg bool) Lit {
	l := Lit(node) << 1
	if neg {
		l |= 1
	}
	return l
}

// Node returns the node index of the literal.
func (l Lit) Node() int { return int(l >> 1) }

// Neg reports whether the edge is complemented.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not complements the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

type node struct {
	f0, f1 Lit // fanins; f0 == f1 == 0 and index > 0 marks a PI
	isPI   bool
	level  int32
	refs   int32 // structural fanout count (maintained lazily)
}

// AIG is an and-inverter graph. Node 0 is the constant-false node.
type AIG struct {
	nodes  []node
	pis    []int // node indexes of primary inputs
	pos    []Lit
	strash map[uint64]int
}

// New creates an empty AIG containing only the constant node.
func New() *AIG {
	return &AIG{nodes: []node{{}}, strash: map[uint64]int{}}
}

// NumNodes returns the node count including the constant node.
func (g *AIG) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes.
func (g *AIG) NumAnds() int { return len(g.nodes) - 1 - len(g.pis) }

// NumPIs returns the number of primary inputs.
func (g *AIG) NumPIs() int { return len(g.pis) }

// NumPOs returns the number of primary outputs.
func (g *AIG) NumPOs() int { return len(g.pos) }

// AddPI appends a primary input and returns its (positive) literal.
func (g *AIG) AddPI() Lit {
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{isPI: true})
	g.pis = append(g.pis, idx)
	return MkLit(idx, false)
}

// AddPO registers l as the next primary output.
func (g *AIG) AddPO(l Lit) int {
	g.pos = append(g.pos, l)
	return len(g.pos) - 1
}

// PO returns output i's literal.
func (g *AIG) PO(i int) Lit { return g.pos[i] }

// SetPO replaces output i's literal.
func (g *AIG) SetPO(i int, l Lit) { g.pos[i] = l }

// PIs returns the PI node indexes in creation order.
func (g *AIG) PIs() []int { return g.pis }

// IsPI reports whether n is an input node.
func (g *AIG) IsPI(n int) bool { return g.nodes[n].isPI }

// IsAnd reports whether n is an AND node.
func (g *AIG) IsAnd(n int) bool { return n > 0 && !g.nodes[n].isPI }

// Fanins returns the fanin literals of AND node n.
func (g *AIG) Fanins(n int) (Lit, Lit) { return g.nodes[n].f0, g.nodes[n].f1 }

func strashKey(a, b Lit) uint64 { return uint64(a)<<32 | uint64(b) }

// And returns a literal for a·b, applying constant folding, trivial
// rules and structural hashing.
func (g *AIG) And(a, b Lit) Lit {
	// Normalize order.
	if a > b {
		a, b = b, a
	}
	switch {
	case a == ConstFalse:
		return ConstFalse
	case a == ConstTrue:
		return b
	case a == b:
		return a
	case a == b.Not():
		return ConstFalse
	}
	if idx, ok := g.strash[strashKey(a, b)]; ok {
		return MkLit(idx, false)
	}
	idx := len(g.nodes)
	lv := g.nodes[a.Node()].level
	if l1 := g.nodes[b.Node()].level; l1 > lv {
		lv = l1
	}
	g.nodes = append(g.nodes, node{f0: a, f1: b, level: lv + 1})
	g.strash[strashKey(a, b)] = idx
	return MkLit(idx, false)
}

// Or returns a+b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a⊕b.
func (g *AIG) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns s'·d0 + s·d1.
func (g *AIG) Mux(s, d0, d1 Lit) Lit {
	return g.Or(g.And(s.Not(), d0), g.And(s, d1))
}

// FromTT synthesizes fn over the given input literals by recursive
// Shannon decomposition (with structural hashing deduplicating shared
// cofactors).
func (g *AIG) FromTT(fn logic.TT, inputs []Lit) Lit {
	if len(inputs) != fn.N {
		panic(fmt.Sprintf("aig: FromTT arity %d with %d inputs", fn.N, len(inputs)))
	}
	if fn.IsConst(false) {
		return ConstFalse
	}
	if fn.IsConst(true) {
		return ConstTrue
	}
	// Pick the last dependent variable as the decomposition top.
	top := -1
	for i := fn.N - 1; i >= 0; i-- {
		if fn.DependsOn(i) {
			top = i
			break
		}
	}
	if top < 0 {
		panic("aig: non-constant table with empty support")
	}
	g0, g1 := fn.Cofactor(top, false), fn.Cofactor(top, true)
	rest := make([]Lit, 0, fn.N-1)
	rest = append(rest, inputs[:top]...)
	rest = append(rest, inputs[top+1:]...)
	l0 := g.FromTT(g0, rest)
	l1 := g.FromTT(g1, rest)
	return g.Mux(inputs[top], l0, l1)
}

// Level returns the AND-depth of literal l's node.
func (g *AIG) Level(l Lit) int { return int(g.nodes[l.Node()].level) }

// MaxLevel returns the largest PO level.
func (g *AIG) MaxLevel() int {
	max := 0
	for _, po := range g.pos {
		if lv := g.Level(po); lv > max {
			max = lv
		}
	}
	return max
}

// Eval computes all node values under the given PI assignment
// (piVals[i] drives the i-th created PI) and returns each PO's value.
func (g *AIG) Eval(piVals []bool) []bool {
	if len(piVals) != len(g.pis) {
		panic(fmt.Sprintf("aig: Eval got %d values for %d PIs", len(piVals), len(g.pis)))
	}
	val := make([]bool, len(g.nodes))
	for i, idx := range g.pis {
		val[idx] = piVals[i]
	}
	for idx := 1; idx < len(g.nodes); idx++ {
		nd := &g.nodes[idx]
		if nd.isPI {
			continue
		}
		a := val[nd.f0.Node()] != nd.f0.Neg()
		b := val[nd.f1.Node()] != nd.f1.Neg()
		val[idx] = a && b
	}
	out := make([]bool, len(g.pos))
	for i, po := range g.pos {
		out[i] = val[po.Node()] != po.Neg()
	}
	return out
}

// CountLive returns the number of AND nodes reachable from the POs.
func (g *AIG) CountLive() int {
	mark := make([]bool, len(g.nodes))
	var visit func(n int)
	visit = func(n int) {
		if mark[n] || !g.IsAnd(n) {
			return
		}
		mark[n] = true
		visit(g.nodes[n].f0.Node())
		visit(g.nodes[n].f1.Node())
	}
	for _, po := range g.pos {
		visit(po.Node())
	}
	live := 0
	for n := range mark {
		if mark[n] {
			live++
		}
	}
	return live
}

// Compacted returns a new AIG containing only nodes reachable from the
// POs, preserving PI order and PO order. The second return maps old
// literals to new ones.
func (g *AIG) Compacted() (*AIG, func(Lit) Lit) {
	ng := New()
	remap := make([]Lit, len(g.nodes))
	for i := range remap {
		remap[i] = Lit(^uint32(0))
	}
	remap[0] = ConstFalse
	for range g.pis {
		// Recreate all PIs to preserve the interface.
		ng.AddPI()
	}
	for i, idx := range g.pis {
		remap[idx] = MkLit(1+i, false) // PIs occupy nodes 1..NumPIs in ng
	}
	var rebuild func(n int) Lit
	rebuild = func(n int) Lit {
		if remap[n] != Lit(^uint32(0)) {
			return remap[n]
		}
		nd := g.nodes[n]
		a := rebuild(nd.f0.Node()).NotIf(nd.f0.Neg())
		b := rebuild(nd.f1.Node()).NotIf(nd.f1.Neg())
		l := ng.And(a, b)
		remap[n] = l
		return l
	}
	for _, po := range g.pos {
		ng.AddPO(rebuild(po.Node()).NotIf(po.Neg()))
	}
	mapLit := func(l Lit) Lit {
		r := remap[l.Node()]
		if r == Lit(^uint32(0)) {
			return r
		}
		return r.NotIf(l.Neg())
	}
	return ng, mapLit
}

// Fanouts builds the AND-node fanout lists (PO references are not
// included; use PORefs).
func (g *AIG) Fanouts() [][]int {
	out := make([][]int, len(g.nodes))
	for idx := 1; idx < len(g.nodes); idx++ {
		nd := &g.nodes[idx]
		if nd.isPI {
			continue
		}
		out[nd.f0.Node()] = append(out[nd.f0.Node()], idx)
		out[nd.f1.Node()] = append(out[nd.f1.Node()], idx)
	}
	return out
}

// PORefs counts how many POs reference each node.
func (g *AIG) PORefs() []int {
	refs := make([]int, len(g.nodes))
	for _, po := range g.pos {
		refs[po.Node()]++
	}
	return refs
}

// String summarizes the graph.
func (g *AIG) String() string {
	return fmt.Sprintf("aig: %d PIs, %d POs, %d ANDs, depth %d",
		len(g.pis), len(g.pos), g.NumAnds(), g.MaxLevel())
}
