package aig

import (
	"math/rand"
	"testing"

	"vpga/internal/logic"
	"vpga/internal/netlist"
	"vpga/internal/rtl"
)

func TestAndFolding(t *testing.T) {
	g := New()
	a, b := g.AddPI(), g.AddPI()
	if g.And(ConstFalse, a) != ConstFalse {
		t.Error("0·a != 0")
	}
	if g.And(ConstTrue, a) != a {
		t.Error("1·a != a")
	}
	if g.And(a, a) != a {
		t.Error("a·a != a")
	}
	if g.And(a, a.Not()) != ConstFalse {
		t.Error("a·a' != 0")
	}
	x := g.And(a, b)
	if y := g.And(b, a); y != x {
		t.Error("structural hashing missed commuted AND")
	}
	if g.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", g.NumAnds())
	}
}

func TestLitOps(t *testing.T) {
	l := MkLit(5, true)
	if l.Node() != 5 || !l.Neg() {
		t.Fatal("MkLit broken")
	}
	if l.Not().Neg() || l.NotIf(false) != l || l.NotIf(true) != l.Not() {
		t.Fatal("Not/NotIf broken")
	}
}

func TestEvalGates(t *testing.T) {
	g := New()
	a, b := g.AddPI(), g.AddPI()
	g.AddPO(g.And(a, b))
	g.AddPO(g.Or(a, b))
	g.AddPO(g.Xor(a, b))
	g.AddPO(g.Mux(a, b, b.Not()))
	for v := 0; v < 4; v++ {
		av, bv := v&1 == 1, v>>1&1 == 1
		out := g.Eval([]bool{av, bv})
		if out[0] != (av && bv) || out[1] != (av || bv) || out[2] != (av != bv) {
			t.Fatalf("v=%d: %v", v, out)
		}
		want := bv
		if av {
			want = !bv
		}
		if out[3] != want {
			t.Fatalf("mux wrong at v=%d", v)
		}
	}
}

func TestFromTTExhaustive3(t *testing.T) {
	// Every 3-input function must synthesize correctly.
	for bits := uint64(0); bits < 256; bits++ {
		fn := logic.NewTT(3, bits)
		g := New()
		ins := []Lit{g.AddPI(), g.AddPI(), g.AddPI()}
		g.AddPO(g.FromTT(fn, ins))
		for row := uint(0); row < 8; row++ {
			vals := []bool{row&1 == 1, row>>1&1 == 1, row>>2&1 == 1}
			if g.Eval(vals)[0] != fn.Eval(row) {
				t.Fatalf("FromTT wrong for %v at row %d", fn, row)
			}
		}
	}
}

func TestFromTTRandom5(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		fn := logic.NewTT(5, rng.Uint64())
		g := New()
		var ins []Lit
		for i := 0; i < 5; i++ {
			ins = append(ins, g.AddPI())
		}
		g.AddPO(g.FromTT(fn, ins))
		for row := uint(0); row < 32; row++ {
			vals := make([]bool, 5)
			for i := range vals {
				vals[i] = row>>uint(i)&1 == 1
			}
			if g.Eval(vals)[0] != fn.Eval(row) {
				t.Fatalf("FromTT wrong for %v at row %d", fn, row)
			}
		}
	}
}

func roundTrip(t *testing.T, src string) (*netlist.Netlist, *Design) {
	t.Helper()
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	return nl, d
}

const adderSrc = `
module add6(input clk, input [5:0] a, input [5:0] b, output [5:0] s, output [5:0] r);
  reg [5:0] acc;
  always acc <= acc + a;
  assign s = a + b;
  assign r = acc;
endmodule`

func TestNetlistRoundTrip(t *testing.T) {
	nl, d := roundTrip(t, adderSrc)
	back := d.ToNetlist()
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped netlist invalid: %v", err)
	}
	if err := netlist.Equivalent(nl, back, 12, 6, 99); err != nil {
		t.Fatalf("AIG round trip not equivalent: %v", err)
	}
}

func TestOptimizePreservesFunction(t *testing.T) {
	nl, d := roundTrip(t, adderSrc)
	d.Optimize(4)
	back := d.ToNetlist()
	if err := netlist.Equivalent(nl, back, 12, 6, 123); err != nil {
		t.Fatalf("optimize broke equivalence: %v", err)
	}
}

func TestBalanceReducesDepthOfChain(t *testing.T) {
	// A long AND chain must balance to logarithmic depth.
	g := New()
	var ins []Lit
	for i := 0; i < 16; i++ {
		ins = append(ins, g.AddPI())
	}
	acc := ins[0]
	for _, l := range ins[1:] {
		acc = g.And(acc, l)
	}
	g.AddPO(acc)
	d := &Design{G: g, Name: "chain"}
	if got := d.G.MaxLevel(); got != 15 {
		t.Fatalf("chain depth = %d, want 15", got)
	}
	d.Balance()
	if got := d.G.MaxLevel(); got != 4 {
		t.Fatalf("balanced depth = %d, want 4", got)
	}
	// Function preserved: AND of all inputs.
	vals := make([]bool, 16)
	for i := range vals {
		vals[i] = true
	}
	if !d.G.Eval(vals)[0] {
		t.Fatal("balanced chain lost its function")
	}
	vals[7] = false
	if d.G.Eval(vals)[0] {
		t.Fatal("balanced chain lost its function")
	}
}

func TestBalancePreservesRandomLogic(t *testing.T) {
	_, d := roundTrip(t, adderSrc)
	ref := d.G
	refVals := func(g *AIG, seed int64) [][]bool {
		rng := rand.New(rand.NewSource(seed))
		var out [][]bool
		for v := 0; v < 32; v++ {
			in := make([]bool, g.NumPIs())
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			out = append(out, g.Eval(in))
		}
		return out
	}
	before := refVals(ref, 5)
	d.Balance()
	after := refVals(d.G, 5)
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("balance changed PO %d on vector %d", j, i)
			}
		}
	}
}

func TestCompactedDropsDeadNodes(t *testing.T) {
	g := New()
	a, b := g.AddPI(), g.AddPI()
	g.And(a, b.Not()) // dead
	keep := g.And(a, b)
	g.AddPO(keep)
	if g.NumAnds() != 2 {
		t.Fatalf("setup: %d ANDs", g.NumAnds())
	}
	ng, mapLit := g.Compacted()
	if ng.NumAnds() != 1 {
		t.Fatalf("compacted has %d ANDs, want 1", ng.NumAnds())
	}
	if got := mapLit(keep); got.Node() == 0 {
		t.Fatal("live literal mapped to constant")
	}
	if ng.NumPIs() != 2 || ng.NumPOs() != 1 {
		t.Fatal("interface changed")
	}
}

func TestCountLive(t *testing.T) {
	g := New()
	a, b := g.AddPI(), g.AddPI()
	g.And(a, b.Not())
	g.AddPO(g.And(a, b))
	if got := g.CountLive(); got != 1 {
		t.Fatalf("CountLive = %d, want 1", got)
	}
}

func TestDesignShellBookkeeping(t *testing.T) {
	_, d := roundTrip(t, adderSrc)
	if d.NumFFs() != 6 {
		t.Fatalf("FFs = %d, want 6", d.NumFFs())
	}
	if len(d.PINames) != 13 { // clk + 2×6
		t.Fatalf("PIs = %d, want 13", len(d.PINames))
	}
	if len(d.PONames) != 12 {
		t.Fatalf("POs = %d, want 12", len(d.PONames))
	}
	if d.G.NumPIs() != len(d.PINames)+d.NumFFs() {
		t.Fatal("AIG PI count mismatch")
	}
	if d.G.NumPOs() != len(d.PONames)+d.NumFFs() {
		t.Fatal("AIG PO count mismatch")
	}
}

func TestXorDepthViaBalance(t *testing.T) {
	// XOR tree from RTL reduction should balance to reasonable depth.
	src := `
module par(input [15:0] a, output p);
  assign p = ^a;
endmodule`
	_, d := roundTrip(t, src)
	d.Optimize(3)
	if lv := d.G.MaxLevel(); lv > 12 {
		t.Errorf("parity depth %d too large", lv)
	}
}
