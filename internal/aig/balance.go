package aig

import "sort"

// Balance rebuilds the design's AND trees to minimize depth: every
// maximal single-fanout conjunction is flattened into a multi-input
// AND and re-built greedily from the shallowest operands up (the
// classic ABC-style balance pass). Shared nodes (fanout > 1) are tree
// roots and are never duplicated.
func (d *Design) Balance() {
	g := d.G
	refs := make([]int, g.NumNodes())
	for idx := 1; idx < g.NumNodes(); idx++ {
		if !g.IsAnd(idx) {
			continue
		}
		f0, f1 := g.Fanins(idx)
		refs[f0.Node()]++
		refs[f1.Node()]++
	}
	for i, r := range g.PORefs() {
		refs[i] += r
	}

	ng := New()
	for range g.PIs() {
		ng.AddPI()
	}
	newLit := make([]Lit, g.NumNodes())
	for i := range newLit {
		newLit[i] = Lit(^uint32(0))
	}
	newLit[0] = ConstFalse
	for i, idx := range g.PIs() {
		newLit[idx] = MkLit(1+i, false)
	}

	var rebuild func(n int) Lit
	var gather func(l Lit, leaves *[]Lit)
	gather = func(l Lit, leaves *[]Lit) {
		n := l.Node()
		if !l.Neg() && g.IsAnd(n) && refs[n] <= 1 {
			f0, f1 := g.Fanins(n)
			gather(f0, leaves)
			gather(f1, leaves)
			return
		}
		*leaves = append(*leaves, rebuild(n).NotIf(l.Neg()))
	}
	rebuild = func(n int) Lit {
		if newLit[n] != Lit(^uint32(0)) {
			return newLit[n]
		}
		var leaves []Lit
		f0, f1 := g.Fanins(n)
		gather(f0, &leaves)
		gather(f1, &leaves)
		// Combine shallow operands first. Re-sorting after each merge is
		// O(k² log k) worst case but conjunction widths are small.
		for len(leaves) > 1 {
			sort.Slice(leaves, func(i, j int) bool {
				return ng.Level(leaves[i]) > ng.Level(leaves[j])
			})
			a := leaves[len(leaves)-1]
			b := leaves[len(leaves)-2]
			leaves = leaves[:len(leaves)-2]
			leaves = append(leaves, ng.And(a, b))
		}
		newLit[n] = leaves[0]
		return leaves[0]
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		ng.AddPO(rebuild(po.Node()).NotIf(po.Neg()))
	}
	d.G = ng
}
