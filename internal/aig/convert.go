package aig

import (
	"fmt"

	"vpga/internal/logic"
	"vpga/internal/netlist"
)

// Design couples an AIG with the sequential shell of the original
// netlist: the AIG's inputs are the design PIs followed by the
// flip-flop Q outputs, and its outputs are the design POs followed by
// the flip-flop D inputs.
type Design struct {
	G       *AIG
	PINames []string
	PONames []string
	FFNames []string
	Name    string
}

// NumFFs returns the flip-flop count.
func (d *Design) NumFFs() int { return len(d.FFNames) }

// FromNetlist extracts the combinational core of nl into an AIG.
func FromNetlist(nl *netlist.Netlist) (*Design, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	d := &Design{G: New(), Name: nl.Name}
	lit := make([]Lit, nl.NumNodes())
	for i := range lit {
		lit[i] = Lit(^uint32(0))
	}
	// Inputs: design PIs, then FF Qs.
	for _, id := range nl.PIs() {
		lit[id] = d.G.AddPI()
		d.PINames = append(d.PINames, nl.Node(id).Name)
	}
	var ffs []netlist.NodeID
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindDFF {
			lit[n.ID] = d.G.AddPI()
			d.FFNames = append(d.FFNames, n.Name)
			ffs = append(ffs, n.ID)
		}
	}
	for _, id := range order {
		n := nl.Node(id)
		switch n.Kind {
		case netlist.KindConst:
			lit[id] = ConstFalse.NotIf(n.ConstVal)
		case netlist.KindGate:
			ins := make([]Lit, len(n.Fanins))
			for i, f := range n.Fanins {
				if lit[f] == Lit(^uint32(0)) {
					return nil, fmt.Errorf("aig: gate %d reads unconverted node %d", id, f)
				}
				ins[i] = lit[f]
			}
			lit[id] = d.G.FromTT(n.Func, ins)
		case netlist.KindOutput:
			lit[id] = lit[n.Fanins[0]]
		}
	}
	for _, id := range nl.POs() {
		d.G.AddPO(lit[id])
		d.PONames = append(d.PONames, nl.Node(id).Name)
	}
	for _, id := range ffs {
		f := nl.Node(id).Fanins[0]
		if lit[f] == Lit(^uint32(0)) {
			return nil, fmt.Errorf("aig: FF %d reads unconverted node %d", id, f)
		}
		d.G.AddPO(lit[f])
	}
	return d, nil
}

// ToNetlist rebuilds a gate-level netlist of INV/AND2 primitives plus
// the original flip-flop shell. It is used for equivalence checking and
// as a fallback path; technology mapping normally consumes the AIG
// directly.
func (d *Design) ToNetlist() *netlist.Netlist {
	g := d.G
	nl := netlist.New(d.Name)
	nodeOf := make([]netlist.NodeID, g.NumNodes())
	for i := range nodeOf {
		nodeOf[i] = netlist.Nil
	}
	// Inputs.
	for i, idx := range g.PIs() {
		if i < len(d.PINames) {
			nodeOf[idx] = nl.AddInput(d.PINames[i])
		} else {
			nodeOf[idx] = nl.AddDFF(d.FFNames[i-len(d.PINames)], 0)
			nl.SetFanin(nodeOf[idx], 0, nodeOf[idx]) // patched below
		}
	}
	var constNode netlist.NodeID = netlist.Nil
	getConst := func() netlist.NodeID {
		if constNode == netlist.Nil {
			constNode = nl.AddConst(false)
		}
		return constNode
	}
	invCache := map[netlist.NodeID]netlist.NodeID{}
	inv := func(id netlist.NodeID) netlist.NodeID {
		if v, ok := invCache[id]; ok {
			return v
		}
		v := nl.AddGate("INV", logic.VarTT(1, 0).Not(), id)
		invCache[id] = v
		return v
	}
	resolve := func(l Lit) netlist.NodeID {
		var base netlist.NodeID
		if l.Node() == 0 {
			base = getConst()
		} else {
			base = nodeOf[l.Node()]
		}
		if l.Neg() {
			return inv(base)
		}
		return base
	}
	for idx := 1; idx < g.NumNodes(); idx++ {
		if !g.IsAnd(idx) {
			continue
		}
		f0, f1 := g.Fanins(idx)
		if resolve0 := nodeOf[f0.Node()]; resolve0 == netlist.Nil && f0.Node() != 0 {
			continue // unreachable garbage node; skip
		}
		if resolve1 := nodeOf[f1.Node()]; resolve1 == netlist.Nil && f1.Node() != 0 {
			continue
		}
		nodeOf[idx] = nl.AddGate("AND2", logic.TTAnd2, resolve(f0), resolve(f1))
	}
	for i, name := range d.PONames {
		nl.AddOutput(name, resolve(g.PO(i)))
	}
	// Patch FF D inputs.
	for i := range d.FFNames {
		ff := nodeOf[g.PIs()[len(d.PINames)+i]]
		nl.SetFanin(ff, 0, resolve(g.PO(len(d.PONames)+i)))
	}
	nl.Sweep()
	nl.Compact()
	return nl
}

// Optimize runs the synthesis clean-up pipeline: compaction (dead node
// removal with structural rehashing) followed by tree balancing for
// depth, iterated to a fixed point (at most `rounds` times).
func (d *Design) Optimize(rounds int) {
	for i := 0; i < rounds; i++ {
		before := d.G.CountLive()
		depthBefore := d.G.MaxLevel()
		g2, mapLit := d.G.Compacted()
		_ = mapLit
		d.G = g2
		d.Balance()
		if d.G.CountLive() >= before && d.G.MaxLevel() >= depthBefore {
			break
		}
	}
}
