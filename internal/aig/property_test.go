package aig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vpga/internal/logic"
)

// TestStrashProperty: structurally identical subgraphs built in any
// order share nodes.
func TestStrashProperty(t *testing.T) {
	err := quick.Check(func(x, y uint8) bool {
		g := New()
		a, b, c := g.AddPI(), g.AddPI(), g.AddPI()
		lits := []Lit{a, b, c, a.Not(), b.Not(), c.Not()}
		l1 := g.And(lits[x%6], lits[y%6])
		l2 := g.And(lits[y%6], lits[x%6])
		return l1 == l2
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestAndSemanticsProperty: And/Or/Xor/Mux agree with the boolean
// definitions on all PI assignments.
func TestAndSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		g := New()
		a, b, s := g.AddPI(), g.AddPI(), g.AddPI()
		// Build a random expression tree and a parallel TT evaluation.
		vars := []Lit{a, b, s}
		tts := []logic.TT{logic.VarTT(3, 0), logic.VarTT(3, 1), logic.VarTT(3, 2)}
		for i := 0; i < 12; i++ {
			x := rng.Intn(len(vars))
			y := rng.Intn(len(vars))
			lx, ly := vars[x], vars[y]
			tx, ty := tts[x], tts[y]
			if rng.Intn(2) == 1 {
				lx = lx.Not()
				tx = tx.Not()
			}
			switch rng.Intn(3) {
			case 0:
				vars = append(vars, g.And(lx, ly))
				tts = append(tts, tx.And(ty))
			case 1:
				vars = append(vars, g.Or(lx, ly))
				tts = append(tts, tx.Or(ty))
			default:
				vars = append(vars, g.Xor(lx, ly))
				tts = append(tts, tx.Xor(ty))
			}
		}
		root := len(vars) - 1
		g.AddPO(vars[root])
		for row := uint(0); row < 8; row++ {
			in := []bool{row&1 == 1, row>>1&1 == 1, row>>2&1 == 1}
			if g.Eval(in)[0] != tts[root].Eval(row) {
				t.Fatalf("trial %d: semantics diverge at row %d", trial, row)
			}
		}
	}
}

// TestBalanceIdempotent: balancing twice gives the same depth and size
// as balancing once.
func TestBalanceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g := New()
		var lits []Lit
		for i := 0; i < 6; i++ {
			lits = append(lits, g.AddPI())
		}
		for i := 0; i < 40; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			lits = append(lits, g.And(a, b))
		}
		g.AddPO(lits[len(lits)-1])
		d := &Design{G: g}
		// Balance may keep improving as restructuring exposes larger
		// flattenable trees, but depth must never increase and must
		// reach a fixed point quickly.
		prev := d.G.MaxLevel()
		converged := false
		for i := 0; i < 6; i++ {
			d.Balance()
			cur := d.G.MaxLevel()
			if cur > prev {
				t.Fatalf("trial %d: balance increased depth %d -> %d", trial, prev, cur)
			}
			if cur == prev {
				converged = true
				break
			}
			prev = cur
		}
		if !converged {
			t.Fatalf("trial %d: balance did not converge within 6 passes", trial)
		}
	}
}

// TestCompactedPreservesEval: compaction never changes PO values.
func TestCompactedPreservesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		g := New()
		var lits []Lit
		for i := 0; i < 5; i++ {
			lits = append(lits, g.AddPI())
		}
		for i := 0; i < 30; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			lits = append(lits, g.And(a, b))
		}
		for i := 0; i < 3; i++ {
			g.AddPO(lits[rng.Intn(len(lits))])
		}
		ng, _ := g.Compacted()
		for v := 0; v < 32; v++ {
			in := make([]bool, 5)
			for i := range in {
				in[i] = v>>uint(i)&1 == 1
			}
			a, b := g.Eval(in), ng.Eval(in)
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("trial %d: compaction changed PO %d", trial, k)
				}
			}
		}
	}
}
