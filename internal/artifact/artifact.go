// Package artifact is the persistent content-addressed artifact store
// of the flow service: payloads (cached reports, matrix results,
// stage checkpoints) keyed by the canonical request cache key, spilled
// to disk with checksums so results survive a process crash.
//
// The store is designed to be wrong-proof rather than write-proof: a
// corrupt, truncated or unreadable entry is NEVER an error — it is
// detected by checksum, evicted, counted, and reported as a miss, so
// the caller recomputes. Writes are atomic (temp file + fsync +
// rename via internal/fsx), so a crash mid-Put leaves either the old
// entry or none; the injectable torn-write fault deliberately
// bypasses that path to prove the read side heals.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"vpga/internal/faultinject"
	"vpga/internal/fsx"
)

// header is the entry preamble: magic, payload SHA-256, payload length.
const magic = "vpga-artifact-v1"

// Stats is the store's observability snapshot.
type Stats struct {
	Hits, Misses   int64
	Writes         int64
	WriteErrors    int64
	CorruptEvicted int64
	InjectedRead   int64
}

// Store is a content-addressed key → payload store rooted at one
// directory. Keys must be non-empty and filesystem-safe (the service
// uses hex SHA-256 cache keys). Safe for concurrent use: distinct keys
// never contend, and same-key races resolve to one complete entry
// because publication is a rename.
type Store struct {
	dir string

	hits, misses   atomic.Int64
	writes         atomic.Int64
	writeErrors    atomic.Int64
	corruptEvicted atomic.Int64
	injectedRead   atomic.Int64
}

// Open roots a store at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\") || strings.HasPrefix(key, ".") {
		return "", fmt.Errorf("artifact: unusable key %q", key)
	}
	return filepath.Join(s.dir, key+".art"), nil
}

// encode frames a payload: one header line, then the raw bytes.
func encode(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	head := magic + " " + hex.EncodeToString(sum[:]) + " " + strconv.Itoa(len(payload)) + "\n"
	out := make([]byte, 0, len(head)+len(payload))
	out = append(out, head...)
	return append(out, payload...)
}

// Put stores a payload under key, atomically. The "artifact.write"
// fault point fires here: an injected torn write persists a truncated
// frame at the final path (deliberately skipping the atomic rename) so
// the corruption-healing read path gets exercised end to end.
func (s *Store) Put(key string, payload []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	framed := encode(payload)
	if f := faultinject.Arm("artifact.write"); f != nil {
		if torn := f.TornBytes(framed); torn != nil {
			os.WriteFile(p, torn, 0o644)
		}
		s.writeErrors.Add(1)
		return f.Err()
	}
	if err := fsx.WriteFileBytesAtomic(p, framed, 0o644); err != nil {
		s.writeErrors.Add(1)
		return err
	}
	s.writes.Add(1)
	return nil
}

// Get loads the payload stored under key. Every failure mode —
// missing file, injected read fault, bad header, length or checksum
// mismatch — is a miss, never an error; corrupt entries are evicted
// so the next Put starts clean.
func (s *Store) Get(key string) ([]byte, bool) {
	p, err := s.path(key)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	if err := faultinject.Check("artifact.read"); err != nil {
		s.injectedRead.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok := decode(raw)
	if !ok {
		s.evictCorrupt(p)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// decode verifies a framed entry and returns its payload.
func decode(raw []byte) ([]byte, bool) {
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
		if i > 256 {
			break
		}
	}
	if nl < 0 {
		return nil, false
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 || fields[0] != magic {
		return nil, false
	}
	want, err := hex.DecodeString(fields[1])
	if err != nil || len(want) != sha256.Size {
		return nil, false
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 {
		return nil, false
	}
	payload := raw[nl+1:]
	if len(payload) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if !hmacEqual(sum[:], want) {
		return nil, false
	}
	return payload, true
}

func hmacEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}

func (s *Store) evictCorrupt(path string) {
	os.Remove(path)
	s.corruptEvicted.Add(1)
}

// Len counts live entries (a directory scan; cheap at cache scale).
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".art") {
			n++
		}
	}
	return n
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits: s.hits.Load(), Misses: s.misses.Load(),
		Writes: s.writes.Load(), WriteErrors: s.writeErrors.Load(),
		CorruptEvicted: s.corruptEvicted.Load(),
		InjectedRead:   s.injectedRead.Load(),
	}
}
