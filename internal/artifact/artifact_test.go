package artifact

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vpga/internal/faultinject"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const key = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func TestRoundTrip(t *testing.T) {
	s := open(t)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"report":"x","n":42}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get: %q ok=%v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d", s.Len())
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Empty payloads round-trip too.
	if err := s.Put(key, nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || len(got) != 0 {
		t.Fatalf("empty payload: %q ok=%v", got, ok)
	}
}

func TestBadKeys(t *testing.T) {
	s := open(t)
	for _, k := range []string{"", "a/b", `a\b`, ".hidden"} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Fatalf("key %q accepted", k)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("key %q hit", k)
		}
	}
}

// TestCorruptEntryIsMiss: every flavor of on-disk damage reads as a
// miss, evicts the entry, and never errors.
func TestCorruptEntryIsMiss(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":    func(raw []byte) []byte { return raw[:len(raw)/2] },
		"flipped-byte": func(raw []byte) []byte { raw[len(raw)-1] ^= 0xff; return raw },
		"bad-magic":    func(raw []byte) []byte { raw[0] = 'X'; return raw },
		"empty":        func([]byte) []byte { return nil },
		"no-newline":   func([]byte) []byte { return bytes.Repeat([]byte("z"), 400) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			if err := s.Put(key, []byte("precious payload")); err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(s.Dir(), key+".art")
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry served")
			}
			if s.Stats().CorruptEvicted != 1 {
				t.Fatalf("stats %+v", s.Stats())
			}
			if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("corrupt entry not evicted from disk")
			}
			// The store heals: a fresh Put serves again.
			if err := s.Put(key, []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || string(got) != "recomputed" {
				t.Fatalf("after heal: %q ok=%v", got, ok)
			}
		})
	}
}

// TestInjectedTornWriteHeals: the "artifact.write" torn fault leaves a
// truncated frame at the published path; the read side detects, evicts
// and recomputes.
func TestInjectedTornWriteHeals(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	s := open(t)
	faultinject.Enable(faultinject.New(1, 1.0, []faultinject.Kind{faultinject.KindTorn}, "artifact.write"))
	err := s.Put(key, []byte("doomed payload that is long enough to tear"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn Put error: %v", err)
	}
	faultinject.Disable()
	// The torn frame is on disk at the final path…
	if _, statErr := os.Stat(filepath.Join(s.Dir(), key+".art")); statErr != nil {
		t.Fatalf("torn frame not persisted: %v", statErr)
	}
	// …and the read side treats it as a miss + eviction.
	if _, ok := s.Get(key); ok {
		t.Fatal("torn frame served")
	}
	st := s.Stats()
	if st.CorruptEvicted != 1 || st.WriteErrors != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := s.Put(key, []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "clean" {
		t.Fatalf("after heal: %q ok=%v", got, ok)
	}
}

// TestInjectedReadFaultIsMiss: an injected read error is a counted
// miss, and the entry survives for the next (clean) read.
func TestInjectedReadFaultIsMiss(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	s := open(t)
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.New(1, 1.0, nil, "artifact.read"))
	if _, ok := s.Get(key); ok {
		t.Fatal("injected read fault still hit")
	}
	faultinject.Disable()
	if got, ok := s.Get(key); !ok || string(got) != "payload" {
		t.Fatalf("entry lost to injected read: %q ok=%v", got, ok)
	}
	if s.Stats().InjectedRead != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	// A file where the dir should be.
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err == nil {
		t.Fatal("file-as-dir accepted")
	}
}
