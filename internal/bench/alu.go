package bench

import "fmt"

// ALU generates a registered W-bit arithmetic-logic unit: add,
// subtract, bitwise ops, barrel shifts and comparison, selected by a
// 3-bit opcode through a mux tree. Datapath-dominated.
func ALU(w int) Design {
	b := &buf{}
	lg := log2ceil(w)
	b.f("module alu%d(input clk, input [%d:0] a, input [%d:0] b, input [2:0] op,", w, w-1, w-1)
	b.f("            output [%d:0] y, output zero, output eq);", w-1)
	// Input registers.
	b.f("  reg [%d:0] ra;", w-1)
	b.f("  reg [%d:0] rb;", w-1)
	b.f("  reg [2:0] rop;")
	b.f("  always ra <= a;")
	b.f("  always rb <= b;")
	b.f("  always rop <= op;")
	// Arithmetic.
	b.f("  wire [%d:0] sum = ra + rb;", w-1)
	b.f("  wire [%d:0] diff = ra - rb;", w-1)
	b.f("  wire [%d:0] band = ra & rb;", w-1)
	b.f("  wire [%d:0] bor = ra | rb;", w-1)
	b.f("  wire [%d:0] bxor = ra ^ rb;", w-1)
	// Barrel shifter (left and right) by rb's low bits.
	prev := "ra"
	for i := 0; i < lg; i++ {
		b.f("  wire [%d:0] sl%d = rb[%d] ? (%s << %d) : %s;", w-1, i, i, prev, 1<<uint(i), prev)
		prev = fmt.Sprintf("sl%d", i)
	}
	shl := prev
	prev = "ra"
	for i := 0; i < lg; i++ {
		b.f("  wire [%d:0] sr%d = rb[%d] ? (%s >> %d) : %s;", w-1, i, i, prev, 1<<uint(i), prev)
		prev = fmt.Sprintf("sr%d", i)
	}
	shr := prev
	// Opcode mux tree: 000 add, 001 sub, 010 and, 011 or, 100 xor,
	// 101 shl, 110 shr, 111 pass-b.
	b.f("  wire [%d:0] m00 = rop[0] ? diff : sum;", w-1)
	b.f("  wire [%d:0] m01 = rop[0] ? bor : band;", w-1)
	b.f("  wire [%d:0] m10 = rop[0] ? %s : bxor;", w-1, shl)
	b.f("  wire [%d:0] m11 = rop[0] ? rb : %s;", w-1, shr)
	b.f("  wire [%d:0] mlo = rop[1] ? m01 : m00;", w-1)
	b.f("  wire [%d:0] mhi = rop[1] ? m11 : m10;", w-1)
	b.f("  wire [%d:0] res = rop[2] ? mhi : mlo;", w-1)
	// Flags and output register.
	b.f("  reg [%d:0] ry;", w-1)
	b.f("  reg rzero;")
	b.f("  reg req_;")
	b.f("  always ry <= res;")
	b.f("  always rzero <= res == 0;")
	b.f("  always req_ <= ra == rb;")
	b.f("  assign y = ry;")
	b.f("  assign zero = rzero;")
	b.f("  assign eq = req_;")
	b.f("endmodule")
	return Design{Name: "ALU", RTL: b.String(), Datapath: true}
}
