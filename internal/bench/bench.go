// Package bench generates the four benchmark designs of the paper's
// Table 1/2 as RTL in the flow's dialect. The originals (an ALU, an
// FPU of ~24k gates, an ~80k-gate network switch, and the Firewire
// link controller) are proprietary; these synthetic equivalents match
// the stated gate counts and, crucially, the stated character — three
// datapath-dominated designs and one control/sequential-dominated
// design — which is what drives the paper's per-design conclusions.
package bench

import (
	"fmt"
	"strings"
)

// Design is a generated benchmark.
type Design struct {
	Name string
	RTL  string
	// Datapath marks the three designs the paper calls
	// datapath-dominated.
	Datapath bool
}

// buf is a tiny RTL emitter.
type buf struct{ sb strings.Builder }

func (b *buf) f(format string, args ...interface{}) {
	fmt.Fprintf(&b.sb, format, args...)
	b.sb.WriteByte('\n')
}

func (b *buf) String() string { return b.sb.String() }

// log2ceil returns ceil(log2(n)) with a minimum of 1.
func log2ceil(n int) int {
	k := 1
	for 1<<uint(k) < n {
		k++
	}
	return k
}

// Suite lists the four designs at the given scale factor. scale=1 is
// the paper-equivalent size; smaller fractions shrink widths for fast
// tests.
type Suite struct {
	ALU, Firewire, FPU, Switch Design
}

// PaperSuite returns designs sized to match the paper's gate counts:
// FPU(36) maps to ≈23.9k NAND2 equivalents (paper: 24k) and
// Switch(20, 36, 4) to ≈80.7k (paper: 80k).
func PaperSuite() Suite {
	return Suite{
		ALU:      ALU(32),
		Firewire: Firewire(40),
		FPU:      FPU(36),
		Switch:   Switch(20, 36, 4),
	}
}

// TestSuite returns miniature versions for unit and integration tests.
func TestSuite() Suite {
	return Suite{
		ALU:      ALU(8),
		Firewire: Firewire(6),
		FPU:      FPU(6),
		Switch:   Switch(4, 8, 2),
	}
}

// All returns the suite's designs in the paper's Table 1 order.
func (s Suite) All() []Design {
	return []Design{s.ALU, s.Firewire, s.FPU, s.Switch}
}
