package bench

import (
	"testing"

	"vpga/internal/aig"
	"vpga/internal/netlist"
	"vpga/internal/rtl"
)

func compileDesign(t *testing.T, d Design) *netlist.Netlist {
	t.Helper()
	nl, err := rtl.Compile(d.RTL)
	if err != nil {
		t.Fatalf("%s does not compile: %v\nRTL:\n%s", d.Name, err, clip(d.RTL))
	}
	return nl
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n..."
	}
	return s
}

func TestAllTestSuiteDesignsCompile(t *testing.T) {
	for _, d := range TestSuite().All() {
		nl := compileDesign(t, d)
		if err := nl.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		st := nl.ComputeStats()
		if st.Gates == 0 || st.DFFs == 0 {
			t.Errorf("%s: degenerate design %+v", d.Name, st)
		}
		t.Logf("%s: %s", d.Name, nl)
	}
}

func TestSuiteOrder(t *testing.T) {
	s := TestSuite()
	names := []string{}
	for _, d := range s.All() {
		names = append(names, d.Name)
	}
	want := []string{"ALU", "Firewire", "FPU", "NetworkSwitch"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v, want %v", names, want)
		}
	}
}

func TestALUFunctional(t *testing.T) {
	nl := compileDesign(t, ALU(8))
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	drive := func(a, b uint64, op uint64) map[string]bool {
		in := map[string]bool{"clk": false}
		for i := 0; i < 8; i++ {
			in["a["+itoa(i)+"]"] = a>>uint(i)&1 == 1
			in["b["+itoa(i)+"]"] = b>>uint(i)&1 == 1
		}
		for i := 0; i < 3; i++ {
			in["op["+itoa(i)+"]"] = op>>uint(i)&1 == 1
		}
		return in
	}
	read := func(out map[string]bool) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			if out["y["+itoa(i)+"]"] {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	cases := []struct {
		a, b, op, want uint64
	}{
		{100, 55, 0, 155},     // add
		{100, 55, 1, 45},      // sub
		{0xF0, 0x3C, 2, 0x30}, // and
		{0xF0, 0x3C, 3, 0xFC}, // or
		{0xF0, 0x3C, 4, 0xCC}, // xor
		{0x01, 3, 5, 0x08},    // shl by b
		{0x80, 2, 6, 0x20},    // shr by b
		{0x00, 0x7E, 7, 0x7E}, // pass b
		{0xFF, 0x01, 0, 0x00}, // add wraps
	}
	for _, c := range cases {
		// Three cycles: register inputs, compute into output register,
		// observe.
		sim.Reset()
		sim.Step(drive(c.a, c.b, c.op))
		sim.Step(drive(c.a, c.b, c.op))
		out := sim.Step(drive(c.a, c.b, c.op))
		if got := read(out); got != c.want {
			t.Errorf("op %d: alu(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestFPUMultiplierPath(t *testing.T) {
	nl := compileDesign(t, FPU(6))
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	drive := func(am, bm uint64) map[string]bool {
		in := map[string]bool{"clk": false, "op": true}
		for i := 0; i < 6; i++ {
			in["am["+itoa(i)+"]"] = am>>uint(i)&1 == 1
			in["bm["+itoa(i)+"]"] = bm>>uint(i)&1 == 1
		}
		for i := 0; i < 8; i++ {
			in["ae["+itoa(i)+"]"] = false
			in["be["+itoa(i)+"]"] = false
		}
		return in
	}
	for _, c := range [][3]uint64{{5, 7, 35}, {63, 63, 3969}, {0, 13, 0}, {32, 2, 64}} {
		sim.Reset()
		sim.Step(drive(c[0], c[1]))
		sim.Step(drive(c[0], c[1]))
		out := sim.Step(drive(c[0], c[1]))
		var got uint64
		for i := 0; i < 12; i++ {
			if out["ym["+itoa(i)+"]"] {
				got |= 1 << uint(i)
			}
		}
		if got != c[2] {
			t.Errorf("%d × %d = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestFirewireCRCMatrix(t *testing.T) {
	// Cross-check the symbolic CRC-32 matrix against a bitwise
	// reference implementation for a few data bytes.
	ref := func(crc uint32, data byte) uint32 {
		for bit := 7; bit >= 0; bit-- {
			fb := (crc>>31)&1 ^ uint32(data>>uint(bit))&1
			crc <<= 1
			if fb == 1 {
				crc ^= crc32Poly
			}
		}
		return crc
	}
	mat := crc32Matrix()
	apply := func(crc uint32, data byte) uint32 {
		var out uint32
		for j := 0; j < 32; j++ {
			var v uint32
			for k := 0; k < 32; k++ {
				if mat[j]>>uint(k)&1 == 1 {
					v ^= crc >> uint(k) & 1
				}
			}
			for k := 0; k < 8; k++ {
				if mat[j]>>uint(32+k)&1 == 1 {
					v ^= uint32(data) >> uint(k) & 1
				}
			}
			out |= v << uint(j)
		}
		return out
	}
	for _, c := range []struct {
		crc  uint32
		data byte
	}{{0, 0x01}, {0xFFFFFFFF, 0xA5}, {0x12345678, 0x3C}, {0xDEADBEEF, 0xFF}} {
		if got, want := apply(c.crc, c.data), ref(c.crc, c.data); got != want {
			t.Errorf("crc step(%#x, %#x) = %#x, want %#x", c.crc, c.data, got, want)
		}
	}
}

func TestFirewireIsSequentialDominated(t *testing.T) {
	nl := compileDesign(t, Firewire(12))
	st := nl.ComputeStats()
	// DFF area 4.5 vs roughly 1–2 per gate: the FF count should rival
	// the gate count in this control design.
	if st.DFFs*3 < st.Gates {
		t.Errorf("Firewire FFs=%d gates=%d: not sequential-dominated", st.DFFs, st.Gates)
	}
}

func TestDatapathFlags(t *testing.T) {
	s := TestSuite()
	if !s.ALU.Datapath || !s.FPU.Datapath || !s.Switch.Datapath {
		t.Error("datapath designs mislabeled")
	}
	if s.Firewire.Datapath {
		t.Error("Firewire should not be datapath-dominated")
	}
}

func TestSwitchRoutesData(t *testing.T) {
	nl := compileDesign(t, Switch(4, 8, 2))
	if _, err := netlist.NewSimulator(nl); err != nil {
		t.Fatal(err)
	}
	st := nl.ComputeStats()
	// 4 ports × depth 2 × 8 bits of FIFO registers plus pointers and
	// output registers.
	if st.DFFs < 4*2*8 {
		t.Errorf("switch has %d FFs, expected at least 64", st.DFFs)
	}
}

func TestPaperSuiteSizesAIG(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size generation is slow")
	}
	// The paper-scale designs must at least elaborate and convert.
	for _, d := range PaperSuite().All() {
		nl := compileDesign(t, d)
		if _, err := aig.FromNetlist(nl); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		t.Logf("%s: %v", d.Name, nl)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestFIRCompilesAndFilters(t *testing.T) {
	d := FIR(4, 6)
	nl := compileDesign(t, d)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.Datapath {
		t.Error("FIR should be datapath-dominated")
	}
	// Impulse response: drive x=1 for one cycle then zeros; outputs
	// must replay the coefficient sequence (transposed form delays by
	// the register chain).
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	drive := func(v uint64) map[string]bool {
		in := map[string]bool{"clk": false}
		for i := 0; i < 6; i++ {
			in["x["+itoa(i)+"]"] = v>>uint(i)&1 == 1
		}
		return in
	}
	read := func(out map[string]bool) uint64 {
		var v uint64
		for i := 0; i < 12; i++ {
			if out["y["+itoa(i)+"]"] {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	var got []uint64
	sim.Step(drive(1))
	for c := 0; c < 8; c++ {
		out := sim.Step(drive(0))
		got = append(got, read(out))
	}
	// Nonzero impulse response of length = taps, then zeros.
	nonzero := 0
	for _, v := range got {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 3 || got[7] != 0 {
		t.Fatalf("impulse response looks wrong: %v", got)
	}
}

func TestFIRExtractsFullAdders(t *testing.T) {
	// The shift-add networks and accumulator adders are FA-rich on the
	// granular architecture — checked at the compaction level via the
	// core integration tests; here just confirm the scale knobs work.
	small, big := FIR(4, 6), FIR(16, 12)
	nls := compileDesign(t, small).ComputeStats()
	nlb := compileDesign(t, big).ComputeStats()
	if nlb.Gates < 4*nls.Gates {
		t.Errorf("FIR scaling weak: %d vs %d gates", nls.Gates, nlb.Gates)
	}
}
