package bench

import "fmt"

// FIR generates a T-tap, W-bit transposed-form FIR filter with fixed
// pseudo-random coefficients: each tap multiplies the input by a
// constant (realized as a shift-add network) and accumulates through a
// register chain. A DSP-domain benchmark beyond the paper's four,
// used by the application-domain exploration: MAC-heavy logic is the
// best case for the granular PLB's single-block full adders.
func FIR(taps, w int) Design {
	acc := 2 * w // accumulator width
	b := &buf{}
	b.f("module fir%dx%d(input clk, input [%d:0] x, output [%d:0] y);", taps, w, w-1, acc-1)
	b.f("  reg [%d:0] xr;", w-1)
	b.f("  always xr <= x;")
	// Deterministic coefficient table (odd constants, a few bits each).
	coeff := make([]uint64, taps)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range coeff {
		state = state*6364136223846793005 + 1442695040888963407
		coeff[i] = (state >> 40 & ((1 << uint(min2(w, 6))) - 1)) | 1
	}
	// Per-tap constant multiply: sum of shifted copies of xr.
	for i, c := range coeff {
		var terms []string
		for bit := 0; bit < 16; bit++ {
			if c>>uint(bit)&1 == 1 {
				terms = append(terms, fmt.Sprintf("({%d'b0, xr} << %d)", acc-w, bit))
			}
		}
		expr := terms[0]
		for _, t := range terms[1:] {
			expr += " + " + t
		}
		b.f("  wire [%d:0] p%d = %s;", acc-1, i, expr)
	}
	// Transposed-form accumulator registers: z_i <= p_i + z_{i+1}.
	for i := taps - 1; i >= 0; i-- {
		b.f("  reg [%d:0] z%d;", acc-1, i)
		if i == taps-1 {
			b.f("  always z%d <= p%d;", i, i)
		} else {
			b.f("  always z%d <= p%d + z%d;", i, i, i+1)
		}
	}
	b.f("  assign y = z0;")
	b.f("endmodule")
	return Design{Name: fmt.Sprintf("FIR%d", taps), RTL: b.String(), Datapath: true}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
