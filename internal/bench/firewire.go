package bench

import "fmt"

// crc32Poly is the IEEE 802.3 polynomial used by IEEE 1394 (Firewire)
// packet CRCs.
const crc32Poly = 0x04C11DB7

// crc32Matrix computes, symbolically over GF(2), the new CRC state
// after shifting in 8 data bits: newCRC[j] = XOR of a subset of the 32
// old state bits and the 8 data bits. Row j holds a 40-bit mask
// (bits 0..31 = crc taps, 32..39 = data taps).
func crc32Matrix() [32]uint64 {
	// Symbolic state: element k carries the mask of inputs that XOR
	// into state bit k.
	var state [32]uint64
	for k := range state {
		state[k] = 1 << uint(k)
	}
	for bit := 7; bit >= 0; bit-- {
		din := uint64(1) << uint(32+bit)
		fb := state[31] ^ din // feedback = crc MSB ⊕ data bit
		var next [32]uint64
		for k := 31; k >= 1; k-- {
			next[k] = state[k-1]
			if crc32Poly>>uint(k)&1 == 1 {
				next[k] ^= fb
			}
		}
		next[0] = fb
		state = next
	}
	return state
}

// Firewire generates a link-layer controller in the spirit of the
// paper's Firewire benchmark: a bank of configuration/status
// registers with write decode and read muxes, a parallel CRC-32 unit,
// three packet/arbitration state machines, and timer counters. It is
// control- and sequential-logic dominated: most of its area is
// flip-flops, which is why the paper finds the granular PLB *loses*
// die area on this design (Sec. 3.2).
func Firewire(nregs int) Design {
	lg := log2ceil(nregs)
	b := &buf{}
	b.f("module firewire(input clk, input [7:0] din, input we, input [%d:0] waddr,", lg-1)
	b.f("                input [%d:0] raddr, input go, input abort,", lg-1)
	b.f("                output [7:0] rdata, output [31:0] crc, output busy, output [3:0] phase, output [31:0] pkt);")
	// Register file with write decode.
	for i := 0; i < nregs; i++ {
		b.f("  reg [7:0] cfg%d;", i)
		b.f("  always cfg%d <= (we & (waddr == %d'd%d)) ? din : cfg%d;", i, lg, i, i)
	}
	// Read mux: a balanced binary tree on the address bits.
	var readMux func(base, bit int) string
	readMux = func(base, bit int) string {
		if bit < 0 {
			idx := base
			if idx >= nregs {
				idx = nregs - 1
			}
			return fmt.Sprintf("cfg%d", idx)
		}
		lo := readMux(base, bit-1)
		hi := readMux(base|1<<uint(bit), bit-1)
		if lo == hi {
			return lo
		}
		return fmt.Sprintf("(raddr[%d] ? (%s) : (%s))", bit, hi, lo)
	}
	expr := readMux(0, lg-1)
	b.f("  reg [7:0] rd;")
	b.f("  always rd <= %s;", expr)
	b.f("  assign rdata = rd;")
	// Parallel CRC-32 over din.
	b.f("  reg [31:0] c;")
	mat := crc32Matrix()
	for j := 0; j < 32; j++ {
		var terms []string
		for k := 0; k < 32; k++ {
			if mat[j]>>uint(k)&1 == 1 {
				terms = append(terms, fmt.Sprintf("c[%d]", k))
			}
		}
		for k := 0; k < 8; k++ {
			if mat[j]>>uint(32+k)&1 == 1 {
				terms = append(terms, fmt.Sprintf("din[%d]", k))
			}
		}
		if len(terms) == 0 {
			terms = []string{"1'b0"}
		}
		b.f("  wire nc%d = %s;", j, joinXor(terms))
	}
	ncBits := make([]string, 32)
	for j := 0; j < 32; j++ {
		ncBits[31-j] = fmt.Sprintf("nc%d", j)
	}
	b.f("  always c <= go ? {%s} : c;", join(ncBits))
	b.f("  assign crc = c;")
	// Three interacting state machines (4-bit states).
	fsm := func(name string, adv, rst string) {
		b.f("  reg [3:0] %s;", name)
		b.f("  wire [3:0] %sn = (%s == 4'd9) ? 4'd0 : (%s + 1);", name, name, name)
		b.f("  always %s <= %s ? 4'd0 : (%s ? %sn : %s);", name, rst, adv, name, name)
	}
	fsm("sreq", "go", "abort")
	fsm("sgnt", "go & (sreq == 4'd3)", "abort")
	fsm("sdat", "(sgnt == 4'd7) | (sreq == 4'd5)", "abort | (sdat == 4'd8)")
	// Packet serialization shift registers: FF-heavy with almost no
	// combinational logic, the hallmark of the design's sequential
	// dominance.
	for i := 0; i < nregs; i++ {
		b.f("  reg [31:0] pkt%d;", i)
		if i == 0 {
			b.f("  always pkt0 <= {pkt0[30:0], din[0]};")
		} else {
			b.f("  always pkt%d <= {pkt%d[30:0], pkt%d[31]};", i, i, i-1)
		}
	}
	b.f("  wire [31:0] pktout = pkt%d;", nregs-1)
	// Timers.
	for i, w := range []int{16, 16, 12, 12} {
		b.f("  reg [%d:0] tmr%d;", w-1, i)
		b.f("  always tmr%d <= go ? (tmr%d + 1) : tmr%d;", i, i, i)
		b.f("  wire texp%d = &tmr%d[%d:%d];", i, i, w-1, w-4)
	}
	// Status outputs.
	b.f("  reg rbusy;")
	b.f("  always rbusy <= (|sreq | |sgnt | |sdat) & ~abort;")
	b.f("  assign busy = rbusy;")
	b.f("  reg [3:0] rphase;")
	b.f("  always rphase <= texp0 ? sdat : (texp1 ? sgnt : (texp2 ? sreq : rphase));")
	b.f("  assign phase = rphase;")
	b.f("  reg [31:0] rpkt;")
	b.f("  always rpkt <= pktout ^ c;")
	b.f("  assign pkt = rpkt;")
	b.f("endmodule")
	return Design{Name: "Firewire", RTL: b.String(), Datapath: false}
}

func joinXor(terms []string) string {
	out := ""
	for i, t := range terms {
		if i > 0 {
			out += " ^ "
		}
		out += t
	}
	return out
}
