package bench

import "fmt"

// FPU generates a pipelined floating-point datapath with an M-bit
// mantissa: a full adder path (exponent compare, mantissa align via a
// barrel shifter, add, leading-one normalize) and an array multiplier
// path (M partial products summed by a balanced adder tree), result
// selected by op. At M=24 this lands near the paper's ≈24k-gate FPU.
// Datapath-dominated.
func FPU(m int) Design {
	const e = 8 // exponent width
	lg := log2ceil(m)
	b := &buf{}
	b.f("module fpu%d(input clk, input op,", m)
	b.f("            input [%d:0] ae, input [%d:0] am,", e-1, m-1)
	b.f("            input [%d:0] be, input [%d:0] bm,", e-1, m-1)
	b.f("            output [%d:0] ye, output [%d:0] ym, output ovf);", e-1, 2*m-1)
	// Stage-0 input registers.
	for _, r := range []struct {
		name string
		w    int
	}{{"rae", e}, {"ram", m}, {"rbe", e}, {"rbm", m}} {
		b.f("  reg [%d:0] %s;", r.w-1, r.name)
	}
	b.f("  reg rop;")
	b.f("  always rae <= ae;")
	b.f("  always ram <= am;")
	b.f("  always rbe <= be;")
	b.f("  always rbm <= bm;")
	b.f("  always rop <= op;")

	// ---- Adder path ----
	// Magnitude compare via extended subtraction: the borrow bit of
	// {0,rae} - {0,rbe} tells which exponent is larger.
	b.f("  wire [%d:0] ediff = {1'b0, rae} - {1'b0, rbe};", e)
	b.f("  wire bgt = ediff[%d];", e)
	b.f("  wire [%d:0] ediffn = {1'b0, rbe} - {1'b0, rae};", e)
	b.f("  wire [%d:0] shamt = bgt ? ediffn[%d:0] : ediff[%d:0];", e-1, e-1, e-1)
	b.f("  wire [%d:0] bigm = bgt ? rbm : ram;", m-1)
	b.f("  wire [%d:0] smallm = bgt ? ram : rbm;", m-1)
	b.f("  wire [%d:0] bige = bgt ? rbe : rae;", e-1)
	// Align: right barrel shift of the smaller mantissa, with
	// saturation when the shift exceeds the mantissa width.
	prev := "smallm"
	for i := 0; i < lg; i++ {
		b.f("  wire [%d:0] al%d = shamt[%d] ? (%s >> %d) : %s;", m-1, i, i, prev, 1<<uint(i), prev)
		prev = fmt.Sprintf("al%d", i)
	}
	// If any high shamt bit is set the operand vanishes.
	b.f("  wire bigsh = |shamt[%d:%d];", e-1, lg)
	b.f("  wire [%d:0] aligned = bigsh ? 0 : %s;", m-1, prev)
	// Mantissa add with carry.
	b.f("  wire [%d:0] msum = {1'b0, bigm} + {1'b0, aligned};", m)
	// Normalize: on carry shift right one and bump the exponent.
	b.f("  wire [%d:0] norm = msum[%d] ? msum[%d:1] : msum[%d:0];", m-1, m, m, m-1)
	b.f("  wire [%d:0] esum = msum[%d] ? (bige + 1) : bige;", e-1, m)
	// Leading-one detector drives a left renormalization shift (only
	// useful after cancellation; kept shallow: up to 2^lg-1 positions
	// encoded by priority ternaries).
	b.f("  wire [%d:0] lz = %s;", lg-1, leadingZeroExpr("norm", m, lg))
	prev = "norm"
	for i := 0; i < lg; i++ {
		b.f("  wire [%d:0] nl%d = lz[%d] ? (%s << %d) : %s;", m-1, i, i, prev, 1<<uint(i), prev)
		prev = fmt.Sprintf("nl%d", i)
	}
	b.f("  wire [%d:0] amant = %s;", m-1, prev)
	b.f("  wire [%d:0] aexp = esum - {%d'b0, lz};", e-1, e-lg)

	// ---- Multiplier path: array multiplier over the mantissas ----
	for i := 0; i < m; i++ {
		b.f("  wire [%d:0] pp%d = rbm[%d] ? ({%d'b0, ram} << %d) : 0;", 2*m-1, i, i, m, i)
	}
	// Balanced adder tree.
	level := make([]string, m)
	for i := 0; i < m; i++ {
		level[i] = fmt.Sprintf("pp%d", i)
	}
	stage := 0
	for len(level) > 1 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			name := fmt.Sprintf("t%d_%d", stage, i/2)
			b.f("  wire [%d:0] %s = %s + %s;", 2*m-1, name, level[i], level[i+1])
			next = append(next, name)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		stage++
	}
	b.f("  wire [%d:0] prod = %s;", 2*m-1, level[0])
	b.f("  wire [%d:0] mexp = rae + rbe;", e-1)

	// ---- Result select and output registers ----
	b.f("  reg [%d:0] rye;", e-1)
	b.f("  reg [%d:0] rym;", 2*m-1)
	b.f("  reg rovf;")
	b.f("  always rye <= rop ? mexp : aexp;")
	b.f("  always rym <= rop ? prod : {%d'b0, amant};", m)
	b.f("  always rovf <= rop ? prod[%d] : msum[%d];", 2*m-1, m)
	b.f("  assign ye = rye;")
	b.f("  assign ym = rym;")
	b.f("  assign ovf = rovf;")
	b.f("endmodule")
	return Design{Name: "FPU", RTL: b.String(), Datapath: true}
}

// leadingZeroExpr emits a priority-encoded count of leading zeros of
// sig (width w), clamped to lg bits.
func leadingZeroExpr(sig string, w, lg int) string {
	// From MSB down: first set bit at position i gives count w-1-i.
	expr := fmt.Sprintf("%d'd%d", lg, (1<<uint(lg))-1)
	for i := 0; i < w; i++ {
		count := w - 1 - i
		if count >= 1<<uint(lg) {
			count = (1 << uint(lg)) - 1
		}
		expr = fmt.Sprintf("%s[%d] ? %d'd%d : (%s)", sig, i, lg, count, expr)
	}
	return expr
}
