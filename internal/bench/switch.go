package bench

import "fmt"

// Switch generates a P-port, W-bit network switch: per-port input
// FIFOs (depth D shift queues), per-port parity/length tagging, a full
// P×P crossbar of mux trees, and a rotating-priority (round-robin)
// arbiter per output port. At 12 ports × 32 bits it approximates the
// paper's ≈80k-gate network switch. Datapath-dominated.
func Switch(p, w, d int) Design {
	lg := log2ceil(p)
	b := &buf{}
	// Ports.
	b.f("module switch%dx%d(input clk,", p, w)
	for i := 0; i < p; i++ {
		b.f("  input [%d:0] in%d,", w-1, i)
	}
	for i := 0; i < p; i++ {
		comma := ","
		if i == p-1 {
			comma = ");"
		}
		b.f("  output [%d:0] out%d%s", w-1, i, comma)
	}
	// Input FIFOs: shift queues.
	for i := 0; i < p; i++ {
		for k := 0; k < d; k++ {
			b.f("  reg [%d:0] q%d_%d;", w-1, i, k)
		}
		b.f("  always q%d_0 <= in%d;", i, i)
		for k := 1; k < d; k++ {
			b.f("  always q%d_%d <= q%d_%d;", i, k, i, k-1)
		}
		b.f("  wire [%d:0] head%d = q%d_%d;", w-1, i, i, d-1)
		// Per-port tagging: parity and a non-empty flag feed the
		// arbiter's request vector.
		b.f("  wire par%d = ^head%d;", i, i)
		b.f("  wire req%d = |head%d;", i, i)
	}
	// Request vector.
	reqBits := make([]string, p)
	for i := 0; i < p; i++ {
		reqBits[p-1-i] = fmt.Sprintf("req%d", i)
	}
	b.f("  wire [%d:0] reqs = {%s};", p-1, join(reqBits))
	// Per-output arbiters and crossbar.
	for q := 0; q < p; q++ {
		// Rotating pointer.
		b.f("  reg [%d:0] ptr%d;", lg-1, q)
		b.f("  always ptr%d <= ptr%d + 1;", q, q)
		// Rotate the request vector right by ptr (barrel rotate via
		// staged mux of shifted copies OR-ed with wraparound).
		prev := "reqs"
		for s := 0; s < lg; s++ {
			sh := 1 << uint(s)
			b.f("  wire [%d:0] rr%d_%d = ptr%d[%d] ? ((%s >> %d) | (%s << %d)) : %s;",
				p-1, q, s, q, s, prev, sh, prev, p-sh, prev)
			prev = fmt.Sprintf("rr%d_%d", q, s)
		}
		// Priority encoder over the rotated requests.
		b.f("  wire [%d:0] pri%d = %s;", lg-1, q, priorityExpr(prev, p, lg))
		// Grant = pri + ptr (mod 2^lg ≈ P).
		b.f("  wire [%d:0] gnt%d = pri%d + ptr%d;", lg-1, q, q, q)
		// Crossbar mux tree selecting head[gnt].
		b.f("  wire [%d:0] xb%d = %s;", w-1, q, muxTreeExpr(q, p, lg))
		// Output register, tagged with the granted port's parity.
		b.f("  wire [%d:0] xpar%d = %s;", p-1, q, parVec(p))
		b.f("  reg [%d:0] ro%d;", w-1, q)
		b.f("  always ro%d <= xb%d ^ {%d'b0, xpar%d[0]};", q, q, w-1, q)
		b.f("  assign out%d = ro%d;", q, q)
	}
	b.f("endmodule")
	return Design{Name: "NetworkSwitch", RTL: b.String(), Datapath: true}
}

func join(parts []string) string {
	out := ""
	for i, s := range parts {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// priorityExpr encodes the index of the lowest set bit of sig.
func priorityExpr(sig string, p, lg int) string {
	expr := fmt.Sprintf("%d'd0", lg)
	for i := p - 1; i >= 0; i-- {
		expr = fmt.Sprintf("%s[%d] ? %d'd%d : (%s)", sig, i, lg, i, expr)
	}
	return expr
}

// muxTreeExpr selects head<i> by gnt<q> as a balanced binary mux tree
// on the grant bits (log-depth, as a synthesis tool would build it).
func muxTreeExpr(q, p, lg int) string {
	var rec func(base, bit int) string
	rec = func(base, bit int) string {
		if bit < 0 {
			idx := base
			if idx >= p {
				idx = p - 1 // out-of-range grants alias the last port
			}
			return fmt.Sprintf("head%d", idx)
		}
		lo := rec(base, bit-1)
		hi := rec(base|1<<uint(bit), bit-1)
		if base|1<<uint(bit) >= p && lo == hi {
			return lo
		}
		return fmt.Sprintf("(gnt%d[%d] ? (%s) : (%s))", q, bit, hi, lo)
	}
	return rec(0, lg-1)
}

// parVec bundles the per-port parity bits rotated by the grant,
// exercising additional selection logic per output.
func parVec(p int) string {
	parts := make([]string, p)
	for i := 0; i < p; i++ {
		parts[p-1-i] = fmt.Sprintf("par%d", i)
	}
	return "{" + join(parts) + "}"
}
