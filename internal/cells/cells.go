// Package cells models the VPGA component cell library, the logic
// configurations of Section 2.3 of the paper, and the two patternable
// logic block (PLB) architectures under comparison: the LUT-based PLB
// of Figure 1 (one 3-LUT, two ND3WI gates, one DFF) and the granular
// PLB of Figure 4 (three 2:1 MUXes — one of them the specially sized
// XOA — one ND3WI, one DFF).
//
// Cell characterization replaces the paper's CellRater step: every
// cell carries an area in 2-input-NAND equivalents (the unit Table 1
// uses for gate counts), an intrinsic delay, a drive resistance and an
// input capacitance, under a linear delay model
//
//	delay = Intrinsic + Drive × Cload.
//
// The constants are synthetic but calibrated to the architecture-level
// ratios the paper reports: the LUT is substantially worse than a
// simple gate when configured as a simple function, the granular PLB
// is 20% larger than the LUT-based PLB overall and has 26.6% more
// combinational area.
package cells

import (
	"fmt"

	"vpga/internal/logic"
)

// Cell is one characterized component cell.
type Cell struct {
	Name      string
	MaxInputs int
	Area      float64 // NAND2 equivalents
	Intrinsic float64 // ps
	Drive     float64 // kΩ: ps per fF of load
	InputCap  float64 // fF per input pin
	Seq       bool    // sequential element

	// impl is the set of 3-input-normalized truth tables the cell can
	// be via-configured to implement (nil for sequential cells; for the
	// LUT it is left nil and handled as "anything of ≤3 inputs").
	impl map[uint64]bool
	all3 bool // implements every 3-input function
}

// Implements reports whether the cell can be configured to compute fn,
// where fn has at most three inputs.
func (c *Cell) Implements(fn logic.TT) bool {
	if c.Seq {
		return false
	}
	if fn.N > c.MaxInputs && fn.SupportSize() > c.MaxInputs {
		return false
	}
	t3 := normalize3(fn)
	if c.all3 {
		return true
	}
	return c.impl[t3.Bits]
}

// normalize3 views fn as a 3-input table.
func normalize3(fn logic.TT) logic.TT {
	if fn.N > 3 {
		small, _ := fn.Shrink()
		if small.N > 3 {
			panic(fmt.Sprintf("cells: function %v has support > 3", fn))
		}
		fn = small
	}
	return fn.Extend(3)
}

// LoadedDelay returns the cell delay driving the given load.
func (c *Cell) LoadedDelay(loadFF float64) float64 {
	return c.Intrinsic + c.Drive*loadFF
}

// Library is a named set of cells.
type Library struct {
	cells map[string]*Cell
	order []string
}

// NewLibrary builds a library from the given cells.
func NewLibrary(cells ...*Cell) *Library {
	lib := &Library{cells: map[string]*Cell{}}
	for _, c := range cells {
		if _, dup := lib.cells[c.Name]; dup {
			panic("cells: duplicate cell " + c.Name)
		}
		lib.cells[c.Name] = c
		lib.order = append(lib.order, c.Name)
	}
	return lib
}

// Cell returns the named cell or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// Names returns the cell names in registration order.
func (l *Library) Names() []string { return append([]string(nil), l.order...) }

// Cells returns all cells in registration order.
func (l *Library) Cells() []*Cell {
	out := make([]*Cell, len(l.order))
	for i, n := range l.order {
		out[i] = l.cells[n]
	}
	return out
}

// literals3 returns the ten 3-input "literal" tables available at a
// via-configured cell pin: the constants and both polarities of each
// input (the PLB provides all primary inputs in both polarities).
func literals3() []logic.TT {
	out := []logic.TT{logic.ConstTT(3, false), logic.ConstTT(3, true)}
	for i := 0; i < 3; i++ {
		v := logic.VarTT(3, i)
		out = append(out, v, v.Not())
	}
	return out
}

// varLiterals3 returns just the six non-constant literals.
func varLiterals3() []logic.TT {
	return literals3()[2:]
}

// andFamily3 enumerates the functions of a NAND gate with programmable
// inversion and up to `pins` input pins: every (l1·l2·...·lk)^s with
// literals drawn from the inputs or tied to 1, k ≤ pins.
func andFamily3(pins int) map[uint64]bool {
	set := map[uint64]bool{}
	lits := append(literals3(), logic.ConstTT(3, true)) // extra 1 for unused pins
	var rec func(depth int, acc logic.TT)
	rec = func(depth int, acc logic.TT) {
		if depth == pins {
			set[acc.Bits] = true
			set[acc.Not().Bits] = true
			return
		}
		for _, l := range lits {
			rec(depth+1, acc.And(l))
		}
	}
	rec(0, logic.ConstTT(3, true))
	return set
}

// mux2Family enumerates the functions of a single via-configured 2:1
// MUX whose select and data pins can each bind to any input polarity or
// constant: MUX(sel; d0, d1).
func mux2Family() map[uint64]bool {
	set := map[uint64]bool{}
	for _, s := range varLiterals3() {
		for _, d0 := range literals3() {
			for _, d1 := range literals3() {
				set[logic.Mux(s, d0, d1).Bits] = true
			}
		}
	}
	// Constant select degenerates to a literal pass-through.
	for _, l := range literals3() {
		set[l.Bits] = true
	}
	return set
}

// Characterized component cells. The values are this library's
// calibration (see the package comment); they are consistent across
// both PLB architectures so that every reported comparison is a ratio
// under one model.
func makeComponentCells() []*Cell {
	inv := logic.VarTT(1, 0).Not().Extend(3)
	buf := logic.VarTT(1, 0).Extend(3)
	return []*Cell{
		{Name: "INV", MaxInputs: 1, Area: 0.50, Intrinsic: 15, Drive: 2.0, InputCap: 2.0,
			impl: map[uint64]bool{inv.Bits: true}},
		{Name: "BUF", MaxInputs: 1, Area: 0.75, Intrinsic: 30, Drive: 1.2, InputCap: 2.0,
			impl: map[uint64]bool{buf.Bits: true}},
		{Name: "ND3WI", MaxInputs: 3, Area: 1.25, Intrinsic: 40, Drive: 2.5, InputCap: 2.5,
			impl: andFamily3(3)},
		{Name: "MUX2", MaxInputs: 3, Area: 1.75, Intrinsic: 50, Drive: 2.5, InputCap: 2.0,
			impl: mux2Family()},
		// XOA: a 2:1 MUX sized to minimize logic delay, usable as an
		// XOR or as a ND2WI element (Sec. 2.2).
		{Name: "XOA", MaxInputs: 3, Area: 2.00, Intrinsic: 45, Drive: 2.0, InputCap: 2.5,
			impl: unionSets(mux2Family(), andFamily3(2))},
		// LUT3: any 3-input function, but substantially worse than the
		// equivalent simple gate in delay and area ([10], Sec. 2).
		{Name: "LUT3", MaxInputs: 3, Area: 6.00, Intrinsic: 110, Drive: 3.0, InputCap: 3.0, all3: true},
		{Name: "DFF", MaxInputs: 1, Area: 4.50, Intrinsic: 80, Drive: 2.5, InputCap: 2.0, Seq: true},
	}
}

func unionSets(sets ...map[uint64]bool) map[uint64]bool {
	out := map[uint64]bool{}
	for _, s := range sets {
		for k := range s {
			out[k] = true
		}
	}
	return out
}

// ComponentLibrary returns the full characterized component library
// shared by both PLB architectures.
func ComponentLibrary() *Library { return NewLibrary(makeComponentCells()...) }
