package cells

import (
	"testing"

	"vpga/internal/logic"
)

func TestComponentLibraryContents(t *testing.T) {
	lib := ComponentLibrary()
	for _, name := range []string{"INV", "BUF", "ND3WI", "MUX2", "XOA", "LUT3", "DFF"} {
		if lib.Cell(name) == nil {
			t.Errorf("library missing %s", name)
		}
	}
	if lib.Cell("NOPE") != nil {
		t.Error("unknown cell returned non-nil")
	}
	if got := len(lib.Names()); got != 7 || len(lib.Cells()) != 7 {
		t.Errorf("library has %d cells, want 7", got)
	}
}

func TestLUTWorseThanSimpleGate(t *testing.T) {
	// Section 2 / [10]: a LUT configured as a simple logic function is
	// substantially inferior to the equivalent simple cell in delay and
	// area.
	lib := ComponentLibrary()
	lut, nd3 := lib.Cell("LUT3"), lib.Cell("ND3WI")
	if lut.Intrinsic < 2*nd3.Intrinsic {
		t.Errorf("LUT intrinsic %v should be ≥ 2× ND3WI %v", lut.Intrinsic, nd3.Intrinsic)
	}
	if lut.Area < 3*nd3.Area {
		t.Errorf("LUT area %v should be ≥ 3× ND3WI %v", lut.Area, nd3.Area)
	}
}

func TestND3WIImplements(t *testing.T) {
	nd3 := ComponentLibrary().Cell("ND3WI")
	for _, fn := range []logic.TT{logic.TTNand3, logic.TTAnd3, logic.TTOr3,
		logic.TTNand2.Extend(3), logic.TTNor2.Extend(3), logic.ConstTT(3, true)} {
		if !nd3.Implements(fn) {
			t.Errorf("ND3WI should implement %v", fn)
		}
	}
	for _, fn := range []logic.TT{logic.TTXor3, logic.TTXor2.Extend(3), logic.TTMux3, logic.TTMaj3} {
		if nd3.Implements(fn) {
			t.Errorf("ND3WI should not implement %v", fn)
		}
	}
}

func TestMUX2Implements(t *testing.T) {
	mux := ComponentLibrary().Cell("MUX2")
	for _, fn := range []logic.TT{logic.TTMux3, logic.TTXor2.Extend(3), logic.TTXnor2.Extend(3),
		logic.TTAnd2.Extend(3), logic.TTNand2.Extend(3), logic.VarTT(3, 1)} {
		if !mux.Implements(fn) {
			t.Errorf("MUX2 should implement %v", fn)
		}
	}
	// A single MUX implements every 2-input function.
	for bits := uint64(0); bits < 16; bits++ {
		fn := logic.NewTT(2, bits)
		if !mux.Implements(fn) {
			t.Errorf("MUX2 should implement 2-input %v", fn)
		}
	}
	for _, fn := range []logic.TT{logic.TTXor3, logic.TTMaj3, logic.TTAnd3} {
		if mux.Implements(fn) {
			t.Errorf("MUX2 should not implement %v", fn)
		}
	}
}

func TestLUT3ImplementsEverything(t *testing.T) {
	lut := ComponentLibrary().Cell("LUT3")
	for bits := uint64(0); bits < 256; bits++ {
		if !lut.Implements(logic.NewTT(3, bits)) {
			t.Fatalf("LUT3 must implement %v", logic.NewTT(3, bits))
		}
	}
}

func TestLoadedDelay(t *testing.T) {
	c := &Cell{Intrinsic: 40, Drive: 2.5}
	if got := c.LoadedDelay(10); got != 65 {
		t.Errorf("LoadedDelay(10) = %v, want 65", got)
	}
}

func TestConfigCoverage(t *testing.T) {
	arch := GranularPLB()
	counts := map[string]int{}
	for _, name := range []string{"MX", "ND3", "NDMX", "XOAMX", "XOANDMX"} {
		counts[name] = arch.Config(name).NumFunctions()
	}
	// Single-cell configs cover less than compound ones.
	if !(counts["MX"] < counts["NDMX"] && counts["NDMX"] <= counts["XOANDMX"]) {
		t.Errorf("unexpected coverage ordering: %v", counts)
	}
	// Together the granular configurations implement every 3-input
	// function — this is what makes the PLB LUT-free yet complete.
	for bits := uint64(0); bits < 256; bits++ {
		fn := logic.NewTT(3, bits)
		if arch.BestConfig(fn) == nil {
			t.Fatalf("granular PLB has no configuration for %v", fn)
		}
	}
}

func TestXor3NeedsCompoundConfig(t *testing.T) {
	arch := GranularPLB()
	best := arch.BestConfig(logic.TTXor3)
	if best == nil {
		t.Fatal("no config for XOR3")
	}
	if best.Name != "XOAMX" && best.Name != "XOANDMX" {
		t.Errorf("XOR3 mapped to %s, want a MUX-driven-MUX configuration", best.Name)
	}
	if arch.Config("MX").Implements(logic.TTXor3) {
		t.Error("a single MUX must not implement XOR3")
	}
	if arch.Config("NDMX").Implements(logic.TTXor3) {
		t.Error("NDMX must not implement XOR3 (its second cofactor cannot be XOR-like)")
	}
}

func TestConfigsFasterThanLUT(t *testing.T) {
	// Sec. 3.2: "3-input functions performed by the LUT ... are
	// performed by faster NDMX or XOAMX combinations".
	arch := GranularPLB()
	lut := arch.Config("LUT")
	for _, name := range []string{"MX", "ND3", "NDMX", "XOAMX", "XOANDMX"} {
		if c := arch.Config(name); c.Intrinsic >= lut.Intrinsic {
			t.Errorf("config %s intrinsic %v not faster than LUT %v", name, c.Intrinsic, lut.Intrinsic)
		}
	}
}

func TestGranularPLBAreaCalibration(t *testing.T) {
	lutArch, gran := LUTPLB(), GranularPLB()
	ratio := gran.Area / lutArch.Area
	if ratio < 1.19 || ratio > 1.21 {
		t.Errorf("granular/LUT PLB area ratio = %.3f, want 1.20 (Sec. 3.2)", ratio)
	}
	comb := gran.CombArea / lutArch.CombArea
	if comb < 1.25 || comb > 1.28 {
		t.Errorf("granular/LUT combinational area ratio = %.3f, want 1.266 (Sec. 3.2)", comb)
	}
}

// TestSection23PackingCombinations checks the packing flexibility list
// from Section 2.3 of the paper.
func TestSection23PackingCombinations(t *testing.T) {
	arch := GranularPLB()
	cfg := func(n string) *Config { return arch.Config(n) }
	cases := []struct {
		name string
		set  []*Config
		want bool
	}{
		{"three MX and one ND3", []*Config{cfg("MX"), cfg("MX"), cfg("MX"), cfg("ND3")}, true},
		{"one MX, one XOAMX, one ND3", []*Config{cfg("MX"), cfg("XOAMX"), cfg("ND3")}, true},
		{"a NDMX and a XOAMX", []*Config{cfg("NDMX"), cfg("XOAMX")}, true},
		{"two NDMX (one packed via the XOA)", []*Config{cfg("NDMX"), cfg("NDMX")}, true},
		{"XOANDMX plus a MX", []*Config{cfg("XOANDMX"), cfg("MX")}, true},
		{"four MX", []*Config{cfg("MX"), cfg("MX"), cfg("MX"), cfg("MX")}, false},
		{"two XOANDMX", []*Config{cfg("XOANDMX"), cfg("XOANDMX")}, false},
		{"three NDMX", []*Config{cfg("NDMX"), cfg("NDMX"), cfg("NDMX")}, false},
		{"config set plus the flip-flop", []*Config{cfg("XOANDMX"), cfg("FF")}, true},
	}
	for _, c := range cases {
		if got := arch.CanPack(c.set); got != c.want {
			t.Errorf("%s: CanPack = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFullAdderSinglePLB checks the Section 2.2 claim: the granular PLB
// implements a full adder in one block (sum and carry), while the
// LUT-based PLB cannot.
func TestFullAdderSinglePLB(t *testing.T) {
	gran, lutArch := GranularPLB(), LUTPLB()
	fa := gran.Config("FA")
	if fa == nil {
		t.Fatal("granular arch missing FA config")
	}
	if fa.Outputs != 2 {
		t.Errorf("FA outputs = %d, want 2", fa.Outputs)
	}
	if !fa.Implements(logic.TTXor3) || !fa.Implements(logic.TTMaj3) {
		t.Error("FA must produce the 3-input XOR (sum) and majority (carry)")
	}
	if !gran.CanPack([]*Config{fa}) {
		t.Error("granular PLB must host a full adder in a single block")
	}
	if !gran.CanPack([]*Config{fa, gran.Config("FF")}) {
		t.Error("granular PLB must host FA plus its flip-flop")
	}
	if lutArch.CanPack([]*Config{fa}) {
		t.Error("LUT-based PLB must NOT host a full adder in a single block (Sec. 2)")
	}
}

func TestLUTArchCoversEverythingViaLUT(t *testing.T) {
	arch := LUTPLB()
	for bits := uint64(0); bits < 256; bits++ {
		fn := logic.NewTT(3, bits)
		best := arch.BestConfig(fn)
		if best == nil {
			t.Fatalf("LUT arch has no config for %v", fn)
		}
		// Anything ND3WI can't do must land on the LUT.
		if !arch.Config("ND3").Implements(fn) && best.Name != "LUT" {
			t.Fatalf("%v mapped to %s in the LUT arch", fn, best.Name)
		}
	}
}

func TestCanPackRejectsOverflow(t *testing.T) {
	arch := LUTPLB()
	nd3 := arch.Config("ND3")
	if !arch.CanPack([]*Config{nd3, nd3}) {
		t.Error("two ND3 must fit the LUT PLB")
	}
	if !arch.CanPack([]*Config{nd3, nd3, arch.Config("LUT")}) {
		t.Error("LUT + 2×ND3 must fit")
	}
	if arch.CanPack([]*Config{nd3, nd3, nd3, nd3}) {
		t.Error("four ND3 cannot fit (LUT slot absorbs only one extra)")
	}
}

func TestCustomPLBSweepMonotonicity(t *testing.T) {
	small := CustomPLB("small", 1, 1, 1, 0, 1)
	big := CustomPLB("big", 3, 1, 2, 0, 2)
	if big.Area <= small.Area {
		t.Errorf("bigger PLB should have larger area: %v vs %v", big.Area, small.Area)
	}
	if !big.CanPack([]*Config{big.Config("XOANDMX"), big.Config("NDMX")}) {
		t.Error("big custom PLB should host XOANDMX+NDMX")
	}
}

func TestBestConfigPrefersFastSimpleGates(t *testing.T) {
	arch := GranularPLB()
	if got := arch.BestConfig(logic.TTNand3).Name; got != "ND3" {
		t.Errorf("NAND3 best config = %s, want ND3", got)
	}
	if got := arch.BestConfig(logic.TTXor2.Extend(3)).Name; got != "MX" {
		t.Errorf("XOR2 best config = %s, want MX", got)
	}
}

func TestConfigsForOrdering(t *testing.T) {
	arch := GranularPLB()
	cfgs := arch.ConfigsFor(logic.TTNand2.Extend(3))
	if len(cfgs) < 2 {
		t.Fatalf("NAND2 should be implementable by several configs, got %d", len(cfgs))
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].Intrinsic < cfgs[i-1].Intrinsic {
			t.Errorf("ConfigsFor not sorted by delay")
		}
	}
	// Flexibility claim of Sec. 3.2: a 2-input NAND can also map into a
	// MUX when the ND3WI is used up.
	names := map[string]bool{}
	for _, c := range cfgs {
		names[c.Name] = true
	}
	if !names["ND3"] || !names["MX"] {
		t.Errorf("NAND2 should map to both ND3 and MX, got %v", names)
	}
}

func TestSlotSummary(t *testing.T) {
	got := GranularPLB().SlotSummary()
	want := "2×MUX2 + 1×XOA + 1×ND3WI + 1×DFF + 4×BUF"
	if got != want {
		t.Errorf("SlotSummary = %q, want %q", got, want)
	}
}

func TestHasRoleCapacity(t *testing.T) {
	lutArch := LUTPLB()
	if lutArch.hasRoleCapacity(RoleDFF) != true {
		t.Error("LUT arch must have a DFF slot")
	}
	noFF := CustomPLB("noff", 1, 1, 1, 0, 0)
	if noFF.hasRoleCapacity(RoleDFF) {
		t.Error("custom PLB without FF reports DFF capacity")
	}
}

func TestNormalize3ShrinksWideFunctions(t *testing.T) {
	// A 4-input table that only depends on two inputs must match.
	fn := logic.VarTT(4, 0).And(logic.VarTT(4, 3))
	if !ComponentLibrary().Cell("ND3WI").Implements(fn) {
		t.Error("ND3WI should implement a 2-input AND expressed over 4 inputs")
	}
}
