package cells

import (
	"sort"

	"vpga/internal/logic"
)

// Role names a kind of PLB component slot a configuration consumes.
type Role string

// Roles a configuration may require. NAND2-role demands can be served
// by either a ND3WI slot or the XOA (which "also functions as a ND2WI
// element", Sec. 2.3); MUX-role demands by a MUX2 or XOA slot.
const (
	RoleMux  Role = "mux"
	RoleXoa  Role = "xoa" // a first-stage MUX; prefers the XOA slot
	RoleNand Role = "nand"
	RoleNd2  Role = "nand2"
	// RoleSimple2 marks a 2-input AND-family function, which the paper
	// notes can be packed onto the ND3WI *or* absorbed into a MUX
	// ("a 2-input Nand function on a non-critical path can be mapped
	// into a MUX ... allowing an extra function to be packed",
	// Sec. 3.2). Every combinational slot serves it.
	RoleSimple2 Role = "simple2"
	RoleLUT     Role = "lut"
	RoleDFF     Role = "dff"
	// RoleBuf is a programmable buffer slot; each PLB carries a few
	// for polarity generation and repeater duty.
	RoleBuf Role = "buf"
)

// Config is one of the logic configurations of Section 2.3: a way of
// wiring one or more PLB components to realize a (≤3-input) function.
type Config struct {
	Name  string
	Roles []Role // component slots consumed
	// Area is the silicon the configuration occupies inside the PLB,
	// the sum of its component areas (used for the "smaller part of the
	// PLB than the LUT" accounting of Sec. 3.2).
	Area float64
	// Intrinsic is the worst pin-to-output intrinsic delay through the
	// configuration's stages.
	Intrinsic float64
	// Drive and InputCap describe the output stage and input pins.
	Drive, InputCap float64
	// Outputs is the number of outputs the configuration produces
	// (2 for the full-adder macro, otherwise 1).
	Outputs int

	impl map[uint64]bool
	all3 bool
}

// Implements reports whether the configuration realizes fn (≤3 inputs).
func (c *Config) Implements(fn logic.TT) bool {
	if c.all3 {
		return true
	}
	return c.impl[normalize3(fn).Bits]
}

// NumFunctions returns how many of the 256 3-input tables the
// configuration implements.
func (c *Config) NumFunctions() int {
	if c.all3 {
		return 256
	}
	return len(c.impl)
}

// buildConfigs constructs the configuration menagerie from the
// component library. The structural enumerations mirror Figures 3–5:
//
//	MX       a single 2:1 MUX
//	ND3      a single ND3WI gate
//	NDMX     a 2:1 MUX driven by a single ND2WI gate
//	XOAMX    a 2:1 MUX driven by another 2:1 MUX (the XOA), with the
//	         programmable inverter of Fig. 3 available on the XOA output
//	XOANDMX  a 2:1 MUX driven by a 2:1 MUX and a ND3WI gate
//	LUT      a single 3-LUT (LUT-based PLB only)
//	FF       the D flip-flop
func buildConfigs(lib *Library) []*Config {
	mux := lib.Cell("MUX2")
	xoa := lib.Cell("XOA")
	nd3 := lib.Cell("ND3WI")
	lut := lib.Cell("LUT3")
	dff := lib.Cell("DFF")

	lits := literals3()
	varLits := varLiterals3()

	// First-stage output families.
	nd2outs := setToTTs(andFamily3(2))
	nd3outs := setToTTs(andFamily3(3))
	muxouts := setToTTs(mux2Family())

	// secondStage enumerates MUX(sel; a, b) over all assignments where
	// the two data pins draw from dataA/dataB (in both orders), with
	// the programmable inverter available on stage-one outputs when
	// invert is set.
	secondStage := func(dataA, dataB []logic.TT, invertA bool) map[uint64]bool {
		set := map[uint64]bool{}
		for _, s := range varLits {
			for _, a := range dataA {
				cands := []logic.TT{a}
				if invertA {
					cands = append(cands, a.Not())
				}
				for _, av := range cands {
					for _, b := range dataB {
						set[logic.Mux(s, av, b).Bits] = true
						set[logic.Mux(s, b, av).Bits] = true
					}
				}
			}
		}
		return set
	}

	ndmx := secondStage(nd2outs, lits, false)
	xoamx := secondStage(muxouts, lits, true)
	xoandmx := map[uint64]bool{}
	for _, s := range varLits {
		for _, m := range muxouts {
			// The programmable inverter lets the second MUX select
			// between the XOA output and its complement — the Sec. 2.2
			// sum-function wiring, which yields the 3-input XOR/XNOR.
			xoamx[logic.Mux(s, m, m.Not()).Bits] = true
			for _, mv := range []logic.TT{m, m.Not()} {
				for _, nd := range nd3outs {
					xoandmx[logic.Mux(s, mv, nd).Bits] = true
					xoandmx[logic.Mux(s, nd, mv).Bits] = true
				}
			}
		}
	}
	// Everything XOAMX reaches, XOANDMX reaches too (leave the ND3WI
	// unused or tied off).
	for k := range xoamx {
		xoandmx[k] = true
	}

	cfgs := []*Config{
		{Name: "MX", Roles: []Role{RoleMux}, Area: mux.Area,
			Intrinsic: mux.Intrinsic, Drive: mux.Drive, InputCap: mux.InputCap,
			impl: mux2Family()},
		// ND2 carries the 2-input AND family: functionally a ND3WI with
		// a tied pin, but flexible at packing time (RoleSimple2).
		{Name: "ND2", Roles: []Role{RoleSimple2}, Area: nd3.Area,
			Intrinsic: nd3.Intrinsic, Drive: nd3.Drive, InputCap: nd3.InputCap,
			impl: andFamily3(2)},
		{Name: "ND3", Roles: []Role{RoleNand}, Area: nd3.Area,
			Intrinsic: nd3.Intrinsic, Drive: nd3.Drive, InputCap: nd3.InputCap,
			impl: andFamily3(3)},
		{Name: "NDMX", Roles: []Role{RoleNd2, RoleMux}, Area: nd3.Area + mux.Area,
			Intrinsic: nd3.Intrinsic + mux.Intrinsic, Drive: mux.Drive, InputCap: nd3.InputCap,
			impl: ndmx},
		{Name: "XOAMX", Roles: []Role{RoleXoa, RoleMux}, Area: xoa.Area + mux.Area,
			Intrinsic: xoa.Intrinsic + mux.Intrinsic, Drive: mux.Drive, InputCap: xoa.InputCap,
			impl: xoamx},
		{Name: "XOANDMX", Roles: []Role{RoleXoa, RoleNand, RoleMux},
			Area:      xoa.Area + nd3.Area + mux.Area,
			Intrinsic: maxf(xoa.Intrinsic, nd3.Intrinsic) + mux.Intrinsic,
			Drive:     mux.Drive, InputCap: xoa.InputCap,
			impl: xoandmx},
		{Name: "LUT", Roles: []Role{RoleLUT}, Area: lut.Area,
			Intrinsic: lut.Intrinsic, Drive: lut.Drive, InputCap: lut.InputCap,
			all3: true},
		// FA is the Section 2.2 full adder: the XOA computes the
		// propagate P = A⊕B, a second MUX the sum P⊕Cin (through the
		// programmable inverter), a third MUX the carry P·Cin + P'·G,
		// and the ND3WI the generate G = A·B. Two outputs, one PLB.
		{Name: "FA", Roles: []Role{RoleXoa, RoleMux, RoleMux, RoleNand}, Outputs: 2,
			Area:      xoa.Area + 2*mux.Area + nd3.Area,
			Intrinsic: maxf(xoa.Intrinsic, nd3.Intrinsic) + mux.Intrinsic,
			Drive:     mux.Drive, InputCap: xoa.InputCap,
			impl: map[uint64]bool{logic.TTXor3.Bits: true, logic.TTMaj3.Bits: true}},
		{Name: "FF", Roles: []Role{RoleDFF}, Area: dff.Area,
			Intrinsic: dff.Intrinsic, Drive: dff.Drive, InputCap: dff.InputCap},
		{Name: "BUF", Roles: []Role{RoleBuf}, Area: lib.Cell("BUF").Area,
			Intrinsic: lib.Cell("BUF").Intrinsic, Drive: lib.Cell("BUF").Drive,
			InputCap: lib.Cell("BUF").InputCap,
			impl:     map[uint64]bool{logic.VarTT(1, 0).Extend(3).Bits: true}},
	}
	for _, c := range cfgs {
		if c.Outputs == 0 {
			c.Outputs = 1
		}
	}
	return cfgs
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func setToTTs(set map[uint64]bool) []logic.TT {
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]logic.TT, len(keys))
	for i, k := range keys {
		out[i] = logic.NewTT(3, k)
	}
	return out
}
