package cells

import (
	"fmt"
	"sort"

	"vpga/internal/logic"
)

// Slot is one component position inside a PLB.
type Slot struct {
	Component string // component cell name
	Serves    []Role // roles this slot can absorb
}

func (s Slot) serves(r Role) bool {
	for _, x := range s.Serves {
		if x == r {
			return true
		}
	}
	return false
}

// PLBArch describes one patternable logic block architecture.
type PLBArch struct {
	Name  string
	Slots []Slot
	// Area is the full PLB tile area (NAND2 equivalents), including the
	// local via-configurable interconnect and polarity buffers; it is
	// larger than the sum of component areas.
	Area float64
	// CombArea is the combinational portion of the tile.
	CombArea float64
	// Configs the architecture's packer recognizes, in preference
	// order (fastest/smallest first for a matched function).
	Configs []*Config

	lib       *Library
	configIdx map[string]*Config
}

// Library returns the shared component library.
func (a *PLBArch) Library() *Library { return a.lib }

// Config returns the named configuration or nil.
func (a *PLBArch) Config(name string) *Config { return a.configIdx[name] }

// LUTPLB returns the LUT-based heterogeneous PLB of Figure 1: one
// 3-LUT, two ND3WI gates and a D flip-flop.
func LUTPLB() *PLBArch {
	lib := ComponentLibrary()
	cfgs := buildConfigs(lib)
	byName := indexConfigs(cfgs)
	a := &PLBArch{
		Name: "lut-plb",
		Slots: []Slot{
			{Component: "LUT3", Serves: []Role{RoleLUT, RoleNand, RoleNd2, RoleMux, RoleXoa, RoleSimple2}},
			{Component: "ND3WI", Serves: []Role{RoleNand, RoleNd2, RoleSimple2}},
			{Component: "ND3WI", Serves: []Role{RoleNand, RoleNd2, RoleSimple2}},
			{Component: "DFF", Serves: []Role{RoleDFF}},
			{Component: "BUF", Serves: []Role{RoleBuf}},
			{Component: "BUF", Serves: []Role{RoleBuf}},
			{Component: "BUF", Serves: []Role{RoleBuf}},
			{Component: "BUF", Serves: []Role{RoleBuf}},
		},
		// Calibration (see DESIGN.md §5): combinational area 8.5, tile
		// area 14.0 with the flip-flop and local interconnect overhead.
		Area:     14.0,
		CombArea: 8.5,
		Configs:  []*Config{byName["ND2"], byName["ND3"], byName["LUT"], byName["FF"]},
		lib:      lib, configIdx: byName,
	}
	return a
}

// GranularPLB returns the granular heterogeneous PLB of Figure 4: two
// 2:1 MUXes, the XOA MUX, one ND3WI gate and a D flip-flop, with
// programmable buffers providing both polarities of every input.
func GranularPLB() *PLBArch {
	lib := ComponentLibrary()
	cfgs := buildConfigs(lib)
	byName := indexConfigs(cfgs)
	a := &PLBArch{
		Name: "granular-plb",
		Slots: []Slot{
			{Component: "MUX2", Serves: []Role{RoleMux, RoleXoa, RoleSimple2}},
			{Component: "MUX2", Serves: []Role{RoleMux, RoleXoa, RoleSimple2}},
			// The XOA also functions as a ND2WI element (Sec. 2.3).
			{Component: "XOA", Serves: []Role{RoleMux, RoleXoa, RoleNd2, RoleSimple2}},
			{Component: "ND3WI", Serves: []Role{RoleNand, RoleNd2, RoleSimple2}},
			{Component: "DFF", Serves: []Role{RoleDFF}},
			{Component: "BUF", Serves: []Role{RoleBuf}},
			{Component: "BUF", Serves: []Role{RoleBuf}},
			{Component: "BUF", Serves: []Role{RoleBuf}},
			{Component: "BUF", Serves: []Role{RoleBuf}},
		},
		// Calibration: +26.6% combinational area and 1.20× tile area
		// versus the LUT-based PLB (Sec. 3.2).
		Area:     16.8,
		CombArea: 10.76,
		Configs: []*Config{byName["ND2"], byName["ND3"], byName["MX"], byName["NDMX"],
			byName["XOAMX"], byName["XOANDMX"], byName["FA"], byName["FF"]},
		lib: lib, configIdx: byName,
	}
	return a
}

// CustomPLB builds a parameterized PLB for the granularity-sweep
// ablation (E8): nMux general MUXes, nXoa XOA MUXes, nNand ND3WI gates,
// nLut 3-LUTs and nFF flip-flops. Tile area follows a simple
// via-interconnect model: 1.30× the summed component area plus 0.35
// per component pin (each pin needs a column of potential via sites).
func CustomPLB(name string, nMux, nXoa, nNand, nLut, nFF int) *PLBArch {
	lib := ComponentLibrary()
	cfgs := buildConfigs(lib)
	byName := indexConfigs(cfgs)
	a := &PLBArch{Name: name, lib: lib, configIdx: byName}
	addSlots := func(n int, comp string, serves ...Role) {
		for i := 0; i < n; i++ {
			a.Slots = append(a.Slots, Slot{Component: comp, Serves: serves})
		}
	}
	addSlots(nMux, "MUX2", RoleMux, RoleXoa, RoleSimple2)
	addSlots(nXoa, "XOA", RoleMux, RoleXoa, RoleNd2, RoleSimple2)
	addSlots(nNand, "ND3WI", RoleNand, RoleNd2, RoleSimple2)
	addSlots(nLut, "LUT3", RoleLUT, RoleNand, RoleNd2, RoleMux, RoleXoa, RoleSimple2)
	addSlots(nFF, "DFF", RoleDFF)
	addSlots(4, "BUF", RoleBuf)
	comb, pins := 0.0, 0
	for _, s := range a.Slots {
		c := lib.Cell(s.Component)
		if !c.Seq {
			comb += c.Area
		}
		pins += c.MaxInputs + 1
	}
	a.CombArea = 1.30*comb + 0.35*float64(pins)
	seq := float64(nFF) * lib.Cell("DFF").Area
	a.Area = a.CombArea + seq + 0.10*(a.CombArea+seq)
	a.Configs = []*Config{byName["ND2"], byName["ND3"], byName["MX"], byName["NDMX"],
		byName["XOAMX"], byName["XOANDMX"], byName["LUT"], byName["FA"], byName["FF"]}
	return a
}

func indexConfigs(cfgs []*Config) map[string]*Config {
	m := map[string]*Config{}
	for _, c := range cfgs {
		m[c.Name] = c
	}
	return m
}

// hasRoleCapacity reports whether the architecture has any slot serving r.
func (a *PLBArch) hasRoleCapacity(r Role) bool {
	for _, s := range a.Slots {
		if s.serves(r) {
			return true
		}
	}
	return false
}

// usableConfigs returns the architecture's configs whose role demands
// the slot set can satisfy in isolation.
func (a *PLBArch) usableConfigs() []*Config {
	var out []*Config
	for _, c := range a.Configs {
		if a.CanPack([]*Config{c}) {
			out = append(out, c)
		}
	}
	return out
}

// BestConfig returns the preferred configuration implementing fn:
// the one minimizing (Intrinsic, Area) among configurations the
// architecture can actually host. It returns nil if no configuration
// implements fn.
func (a *PLBArch) BestConfig(fn logic.TT) *Config {
	var best *Config
	for _, c := range a.usableConfigs() {
		if c.Name == "FF" || c.Outputs > 1 || !c.Implements(fn) {
			continue
		}
		if best == nil || c.Intrinsic < best.Intrinsic ||
			(c.Intrinsic == best.Intrinsic && c.Area < best.Area) {
			best = c
		}
	}
	return best
}

// ConfigsFor returns every hostable configuration implementing fn, in
// preference order (fastest first, then smallest).
func (a *PLBArch) ConfigsFor(fn logic.TT) []*Config {
	var out []*Config
	for _, c := range a.usableConfigs() {
		if c.Name != "FF" && c.Outputs == 1 && c.Implements(fn) {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Intrinsic != out[j].Intrinsic {
			return out[i].Intrinsic < out[j].Intrinsic
		}
		return out[i].Area < out[j].Area
	})
	return out
}

// CanPack reports whether one PLB can host all the given configuration
// instances simultaneously: every required role must be matched to a
// distinct slot that serves it. The search is an exact backtracking
// matcher; PLBs have at most a handful of slots.
func (a *PLBArch) CanPack(instances []*Config) bool {
	var demands []Role
	for _, inst := range instances {
		demands = append(demands, inst.Roles...)
	}
	if len(demands) > len(a.Slots) {
		return false
	}
	// Order demands by scarcity (fewest serving slots first) to prune.
	serveCount := func(r Role) int {
		n := 0
		for _, s := range a.Slots {
			if s.serves(r) {
				n++
			}
		}
		return n
	}
	sort.SliceStable(demands, func(i, j int) bool { return serveCount(demands[i]) < serveCount(demands[j]) })
	used := make([]bool, len(a.Slots))
	var match func(i int) bool
	match = func(i int) bool {
		if i == len(demands) {
			return true
		}
		for si, s := range a.Slots {
			if used[si] || !s.serves(demands[i]) {
				continue
			}
			used[si] = true
			if match(i + 1) {
				return true
			}
			used[si] = false
		}
		return false
	}
	return match(0)
}

// SlotSummary renders the slot composition, e.g.
// "2×MUX2 + 1×XOA + 1×ND3WI + 1×DFF".
func (a *PLBArch) SlotSummary() string {
	counts := map[string]int{}
	var order []string
	for _, s := range a.Slots {
		if counts[s.Component] == 0 {
			order = append(order, s.Component)
		}
		counts[s.Component]++
	}
	out := ""
	for i, comp := range order {
		if i > 0 {
			out += " + "
		}
		out += fmt.Sprintf("%d×%s", counts[comp], comp)
	}
	return out
}
