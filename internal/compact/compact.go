// Package compact implements the paper's regularity-driven logic
// compaction (Sec. 3.1): after technology mapping, it "finds clusters
// of logic or supernodes corresponding to functions with 3 or less
// inputs ... using a maxflow-mincut algorithm similar to Flowmap [5].
// It then matches these computed supernodes to the appropriate
// combination of PLB components", reducing total gate area and turning
// the netlist into configuration instances (MX, ND3, NDMX, XOAMX,
// XOANDMX, LUT) that the packer understands. For the granular PLB it
// additionally extracts full-adder pairs (Sec. 2.2) into single-PLB
// FA macros.
package compact

import (
	"fmt"
	"sort"

	"vpga/internal/cells"
	"vpga/internal/flowmap"
	"vpga/internal/logic"
	"vpga/internal/netlist"
)

// Result is the outcome of one compaction run.
type Result struct {
	// Netlist holds configuration instances: every gate's Type is a
	// configuration name of the architecture (plus INV/BUF absorbed
	// into the PLB's programmable polarity buffers).
	Netlist *netlist.Netlist
	// AreaBefore and AreaAfter are summed component/configuration areas
	// (NAND2 equivalents); the paper reports ~15% average reduction.
	AreaBefore, AreaAfter float64
	// ConfigCounts tallies instances by configuration name.
	ConfigCounts map[string]int
	// FullAdders is the number of FA macro pairs extracted.
	FullAdders int
	// AbsorbedInverters counts INV cells folded into consumer
	// configurations.
	AbsorbedInverters int
}

// Reduction returns the fractional gate-area reduction achieved.
func (r *Result) Reduction() float64 {
	if r.AreaBefore == 0 {
		return 0
	}
	return 1 - r.AreaAfter/r.AreaBefore
}

// maxConeNodes bounds per-root cone exploration in the maxflow cut
// search.
const maxConeNodes = 48

// Run compacts a mapped component netlist for the given architecture.
// The input netlist is not modified.
func Run(mapped *netlist.Netlist, arch *cells.PLBArch) (*Result, error) {
	nl := mapped.Clone()
	lib := arch.Library()

	areaBefore := sumCellArea(nl, lib)

	absorbed := absorbInverters(nl, arch)
	nl.Sweep()
	nl.Compact()

	clusters, err := clusterize(nl, arch)
	if err != nil {
		return nil, err
	}
	out, counts, fas, err := rebuild(nl, arch, clusters)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Netlist:           out,
		AreaBefore:        areaBefore,
		AreaAfter:         sumConfigArea(out, arch),
		ConfigCounts:      counts,
		FullAdders:        fas,
		AbsorbedInverters: absorbed,
	}
	return res, nil
}

func sumCellArea(nl *netlist.Netlist, lib *cells.Library) float64 {
	total := 0.0
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindGate, netlist.KindDFF:
			if c := lib.Cell(n.Type); c != nil {
				total += c.Area
			}
		}
	}
	return total
}

func sumConfigArea(nl *netlist.Netlist, arch *cells.PLBArch) float64 {
	lib := arch.Library()
	total := 0.0
	seenGroup := map[int32]bool{}
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindDFF:
			total += lib.Cell("DFF").Area
		case netlist.KindGate:
			if n.Group != 0 {
				if seenGroup[n.Group] {
					continue // count each macro once
				}
				seenGroup[n.Group] = true
			}
			if cfg := arch.Config(n.Type); cfg != nil {
				total += cfg.Area
			} else if c := lib.Cell(n.Type); c != nil {
				total += c.Area
			}
		}
	}
	return total
}

// absorbInverters folds INV cells into their gate consumers by flipping
// the corresponding input of the consumer's function; the PLB provides
// all inputs in both polarities, so the inversion is free. Inverters
// feeding primary outputs or flip-flops are kept.
func absorbInverters(nl *netlist.Netlist, arch *cells.PLBArch) int {
	order, err := nl.TopoOrder()
	if err != nil {
		return 0
	}
	absorbed := 0
	for _, id := range order {
		n := nl.Node(id)
		if n.Kind != netlist.KindGate || n.Type != "INV" {
			continue
		}
		src := n.Fanins[0]
		if nl.Node(src).Kind == netlist.KindOutput {
			continue
		}
		rewired := false
		for _, outID := range append([]netlist.NodeID(nil), nl.Fanouts(id)...) {
			out := nl.Node(outID)
			if out.Kind != netlist.KindGate || out.Type == "INV" {
				continue
			}
			// Flip every input slot reading the inverter.
			fn := out.Func
			for i, f := range out.Fanins {
				if f == id {
					fn = fn.NegateInput(i)
				}
			}
			if len(arch.ConfigsFor(fn)) == 0 {
				continue
			}
			out.Func = fn
			for i, f := range out.Fanins {
				if f == id {
					nl.SetFanin(outID, i, src)
				}
			}
			rewired = true
		}
		if rewired {
			absorbed++
		}
	}
	return absorbed
}

// cluster is one supernode: a root gate plus absorbed members,
// implemented by a configuration over the leaf nodes.
type cluster struct {
	root   netlist.NodeID
	leaves []netlist.NodeID
	fn     logic.TT
	cfg    *cells.Config
	group  int32 // nonzero for FA pairs
}

// clusterize forms supernodes over the gate netlist using the
// maxflow-mincut K-feasible cut search, duplication-free: multi-fanout
// gates are cluster boundaries.
func clusterize(nl *netlist.Netlist, arch *cells.PLBArch) (map[netlist.NodeID]*cluster, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	lib := arch.Library()
	claimed := map[netlist.NodeID]bool{}
	clusters := map[netlist.NodeID]*cluster{}

	isGate := func(id netlist.NodeID) bool {
		k := nl.Node(id).Kind
		return k == netlist.KindGate && nl.Node(id).Type != "INV" && nl.Node(id).Type != "BUF"
	}
	fanins := func(n int) []int {
		id := netlist.NodeID(n)
		if !isGate(id) {
			return nil
		}
		out := make([]int, 0, len(nl.Node(id).Fanins))
		for _, f := range nl.Node(id).Fanins {
			out = append(out, int(f))
		}
		return out
	}

	// Full-adder macros first: their sum/carry cones share the
	// propagate node internally (Sec. 2.2), which duplication-free
	// clustering would split at the multi-fanout boundary.
	extractFullAdders(nl, arch, order, isGate, fanins, claimed, clusters)

	// Reverse topological order: roots near the outputs claim first.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if !isGate(id) || claimed[id] {
			continue
		}
		isLeaf := func(n int) bool {
			nid := netlist.NodeID(n)
			if nid == id {
				return false
			}
			return !isGate(nid) || claimed[nid] || len(nl.Fanouts(nid)) > 1
		}
		var cl *cluster
		if res, ok := flowmap.FindKCut(int(id), 3, maxConeNodes, fanins, isLeaf); ok {
			fn := clusterFunc(nl, id, res)
			if cfg := bestAreaConfig(arch, fn); cfg != nil {
				memberArea := 0.0
				for _, m := range res.Cluster {
					if c := lib.Cell(nl.Node(netlist.NodeID(m)).Type); c != nil {
						memberArea += c.Area
					}
				}
				if cfg.Area <= memberArea+1e-9 {
					leaves := make([]netlist.NodeID, len(res.Leaves))
					for j, l := range res.Leaves {
						leaves[j] = netlist.NodeID(l)
					}
					cl = &cluster{root: id, leaves: leaves, fn: fn, cfg: cfg}
					for _, m := range res.Cluster {
						claimed[netlist.NodeID(m)] = true
					}
				}
			}
		}
		if cl == nil {
			// Fall back to an identity cluster around the root alone.
			n := nl.Node(id)
			fn := n.Func
			cfg := bestAreaConfig(arch, fn)
			if cfg == nil {
				return nil, fmt.Errorf("compact: no configuration for %s %v", n.Type, fn)
			}
			cl = &cluster{root: id, leaves: append([]netlist.NodeID(nil), n.Fanins...), fn: fn, cfg: cfg}
			claimed[id] = true
		}
		clusters[id] = cl
	}
	return clusters, nil
}

// bestAreaConfig picks the minimum-area configuration implementing fn
// (ties: faster first since ConfigsFor is delay-sorted).
func bestAreaConfig(arch *cells.PLBArch, fn logic.TT) *cells.Config {
	var best *cells.Config
	for _, cfg := range arch.ConfigsFor(fn) {
		if best == nil || cfg.Area < best.Area {
			best = cfg
		}
	}
	return best
}

// clusterFunc computes the root's function in terms of the cut leaves
// (ordered as in res.Leaves).
func clusterFunc(nl *netlist.Netlist, root netlist.NodeID, res flowmap.CutResult) logic.TT {
	k := len(res.Leaves)
	memo := map[netlist.NodeID]logic.TT{}
	for i, l := range res.Leaves {
		memo[netlist.NodeID(l)] = logic.VarTT(k, i)
	}
	var eval func(id netlist.NodeID) logic.TT
	eval = func(id netlist.NodeID) logic.TT {
		if t, ok := memo[id]; ok {
			return t
		}
		n := nl.Node(id)
		switch n.Kind {
		case netlist.KindConst:
			return logic.ConstTT(k, n.ConstVal)
		case netlist.KindGate:
			args := make([]logic.TT, len(n.Fanins))
			for i, f := range n.Fanins {
				args[i] = eval(f)
			}
			t := composeTT(n.Func, args, k)
			memo[id] = t
			return t
		default:
			panic(fmt.Sprintf("compact: cluster member %d of kind %v", id, n.Kind))
		}
	}
	return eval(root)
}

// composeTT evaluates fn(args...) where each arg is a k-input table.
func composeTT(fn logic.TT, args []logic.TT, k int) logic.TT {
	out := logic.ConstTT(k, false)
	for row := uint(0); row < 1<<uint(k); row++ {
		var assign uint
		for i, a := range args {
			if a.Eval(row) {
				assign |= 1 << uint(i)
			}
		}
		if fn.Eval(assign) {
			out = out.Or(rowTT(k, row))
		}
	}
	return out
}

func rowTT(k int, row uint) logic.TT {
	return logic.NewTT(k, uint64(1)<<row)
}

// faCandidate is a potential FA half: a root whose 3-leaf cone computes
// an XOR3- or MAJ3-class function, allowing interior multi-fanout
// nodes (the shared propagate signal).
type faCandidate struct {
	root    netlist.NodeID
	leaves  []netlist.NodeID
	fn      logic.TT
	members []netlist.NodeID
}

// extractFullAdders pairs XOR3-class and MAJ3-class 3-leaf cones over
// the same leaves into FA macros (granular PLB only). The pair is
// legal when every interior node's fanouts stay inside the union of
// the two cones — exactly the Section 2.2 sharing of the propagate
// MUX between the sum and carry functions.
func extractFullAdders(nl *netlist.Netlist, arch *cells.PLBArch,
	order []netlist.NodeID, isGate func(netlist.NodeID) bool, fanins func(int) []int,
	claimed map[netlist.NodeID]bool, clusters map[netlist.NodeID]*cluster) {
	fa := arch.Config("FA")
	if fa == nil || !arch.CanPack([]*cells.Config{fa}) {
		return
	}
	xorSet := map[uint64]bool{logic.TTXor3.Bits: true, logic.TTXnor3.Bits: true}
	majSet := map[uint64]bool{}
	for _, t := range logic.NPNClass(logic.TTMaj3) {
		majSet[t.Bits] = true
	}
	type key struct{ a, b, c netlist.NodeID }
	mkKey := func(leaves []netlist.NodeID) key {
		s := append([]netlist.NodeID(nil), leaves...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return key{s[0], s[1], s[2]}
	}
	xors := map[key]*faCandidate{}
	majs := map[key]*faCandidate{}
	// Local cut enumeration per root: shared interior nodes (the
	// propagate MUX) may have external fanout here; pairing legality is
	// verified afterwards by the containment check.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if !isGate(id) || claimed[id] {
			continue
		}
		for _, leaves := range enumerateLocalCuts(nl, id, isGate, claimed) {
			if len(leaves) != 3 {
				continue
			}
			res := flowmap.CutResult{}
			for _, l := range leaves {
				res.Leaves = append(res.Leaves, int(l))
			}
			fn := clusterFunc(nl, id, res)
			if !xorSet[fn.Bits] && !majSet[fn.Bits] {
				continue
			}
			cand := &faCandidate{root: id, fn: fn, leaves: leaves}
			cand.members = coneMembers(nl, id, leaves)
			if xorSet[fn.Bits] {
				xors[mkKey(cand.leaves)] = cand
			} else {
				majs[mkKey(cand.leaves)] = cand
			}
			break // one class hit per root is enough
		}
	}
	var group int32 = 1
	for k, x := range xors {
		m, ok := majs[k]
		if !ok || x.root == m.root {
			continue
		}
		union := map[netlist.NodeID]bool{}
		for _, id := range x.members {
			union[id] = true
		}
		for _, id := range m.members {
			union[id] = true
		}
		// Interior fanouts must stay inside the macro.
		contained := true
		anyClaimed := false
		for id := range union {
			if claimed[id] {
				anyClaimed = true
				break
			}
			if id == x.root || id == m.root {
				continue
			}
			for _, out := range nl.Fanouts(id) {
				if !union[out] {
					contained = false
					break
				}
			}
			if !contained {
				break
			}
		}
		if !contained || anyClaimed {
			continue
		}
		for id := range union {
			claimed[id] = true
		}
		clusters[x.root] = &cluster{root: x.root, leaves: x.leaves, fn: x.fn, cfg: fa, group: group}
		clusters[m.root] = &cluster{root: m.root, leaves: m.leaves, fn: m.fn, cfg: fa, group: group}
		group++
	}
}

// enumerateLocalCuts enumerates the ≤3-leaf cuts of root reachable
// within a small depth bound, by merging fanin cut sets bottom-up.
// Claimed and non-gate nodes terminate expansion.
func enumerateLocalCuts(nl *netlist.Netlist, root netlist.NodeID,
	isGate func(netlist.NodeID) bool, claimed map[netlist.NodeID]bool) [][]netlist.NodeID {
	const maxDepth = 3
	const maxCuts = 24
	var cutsOf func(id netlist.NodeID, depth int) [][]netlist.NodeID
	cutsOf = func(id netlist.NodeID, depth int) [][]netlist.NodeID {
		self := [][]netlist.NodeID{{id}}
		if id != root && (!isGate(id) || claimed[id]) {
			return self
		}
		if depth == 0 {
			return self
		}
		lists := [][][]netlist.NodeID{}
		for _, f := range nl.Node(id).Fanins {
			lists = append(lists, cutsOf(f, depth-1))
		}
		merged := [][]netlist.NodeID{nil}
		for _, l := range lists {
			var next [][]netlist.NodeID
			for _, acc := range merged {
				for _, c := range l {
					u := unionLeaves(acc, c)
					if u != nil {
						next = append(next, u)
					}
				}
			}
			merged = next
			if len(merged) > 4*maxCuts {
				merged = merged[:4*maxCuts]
			}
		}
		out := dedupCuts(merged)
		if id != root {
			out = append(out, []netlist.NodeID{id})
		}
		if len(out) > maxCuts {
			out = out[:maxCuts]
		}
		return out
	}
	return cutsOf(root, maxDepth)
}

// unionLeaves merges two sorted leaf sets, returning nil when the
// union exceeds three leaves.
func unionLeaves(a, b []netlist.NodeID) []netlist.NodeID {
	out := make([]netlist.NodeID, 0, 3)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if len(out) == 3 {
			return nil
		}
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func dedupCuts(cuts [][]netlist.NodeID) [][]netlist.NodeID {
	seen := map[string]bool{}
	var out [][]netlist.NodeID
	for _, c := range cuts {
		if c == nil {
			continue
		}
		k := fmt.Sprint(c)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

// coneMembers returns the nodes strictly between root and the leaves,
// including root.
func coneMembers(nl *netlist.Netlist, root netlist.NodeID, leaves []netlist.NodeID) []netlist.NodeID {
	stop := map[netlist.NodeID]bool{}
	for _, l := range leaves {
		stop[l] = true
	}
	seen := map[netlist.NodeID]bool{root: true}
	var members []netlist.NodeID
	stack := []netlist.NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		members = append(members, id)
		for _, f := range nl.Node(id).Fanins {
			if stop[f] || seen[f] {
				continue
			}
			seen[f] = true
			stack = append(stack, f)
		}
	}
	return members
}

// rebuild materializes the cluster cover as a fresh netlist of
// configuration instances.
func rebuild(nl *netlist.Netlist, arch *cells.PLBArch, clusters map[netlist.NodeID]*cluster) (*netlist.Netlist, map[string]int, int, error) {
	out := netlist.New(nl.Name)
	counts := map[string]int{}
	faGroups := map[int32]bool{}

	newID := map[netlist.NodeID]netlist.NodeID{}
	// Pass 1: interface and flip-flops.
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindInput:
			newID[n.ID] = out.AddInput(n.Name)
		case netlist.KindConst:
			newID[n.ID] = out.AddConst(n.ConstVal)
		case netlist.KindDFF:
			d := out.AddDFF(n.Name, 0)
			out.SetFanin(d, 0, d)
			newID[n.ID] = d
		}
	}
	// Pass 2: configuration instances in dependency order.
	var build func(id netlist.NodeID) (netlist.NodeID, error)
	build = func(id netlist.NodeID) (netlist.NodeID, error) {
		if v, ok := newID[id]; ok {
			return v, nil
		}
		n := nl.Node(id)
		if n.Kind == netlist.KindGate && (n.Type == "INV" || n.Type == "BUF") {
			srcs := make([]netlist.NodeID, len(n.Fanins))
			for i, f := range n.Fanins {
				src, err := build(f)
				if err != nil {
					return netlist.Nil, err
				}
				srcs[i] = src
			}
			v := out.AddGate(n.Type, n.Func, srcs...)
			counts[n.Type]++
			newID[id] = v
			return v, nil
		}
		cl, ok := clusters[id]
		if !ok {
			return netlist.Nil, fmt.Errorf("compact: node %d (%s) has no cluster", id, n.Type)
		}
		fanins := make([]netlist.NodeID, len(cl.leaves))
		for i, l := range cl.leaves {
			v, err := build(l)
			if err != nil {
				return netlist.Nil, err
			}
			fanins[i] = v
		}
		v := out.AddGate(cl.cfg.Name, cl.fn, fanins...)
		out.Node(v).Group = cl.group
		if cl.group != 0 {
			if !faGroups[cl.group] {
				faGroups[cl.group] = true
				counts["FA"]++
			}
		} else {
			counts[cl.cfg.Name]++
		}
		newID[id] = v
		return v, nil
	}
	for _, po := range nl.POs() {
		src, err := build(nl.Node(po).Fanins[0])
		if err != nil {
			return nil, nil, 0, err
		}
		out.AddOutput(nl.Node(po).Name, src)
	}
	for _, n := range nl.Nodes() {
		if n.Kind != netlist.KindDFF {
			continue
		}
		src, err := build(n.Fanins[0])
		if err != nil {
			return nil, nil, 0, err
		}
		out.SetFanin(newID[n.ID], 0, src)
	}
	out.Sweep()
	out.Compact()
	if err := out.Validate(); err != nil {
		return nil, nil, 0, fmt.Errorf("compact: rebuilt netlist invalid: %w", err)
	}
	return out, counts, len(faGroups), nil
}
