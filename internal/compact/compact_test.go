package compact

import (
	"testing"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/netlist"
	"vpga/internal/rtl"
	"vpga/internal/techmap"
)

// mapAndCompact runs RTL → AIG → delay-oriented mapping → compaction.
func mapAndCompact(t *testing.T, src string, arch *cells.PLBArch) (*netlist.Netlist, *techmap.Result, *Result) {
	t.Helper()
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(3)
	mapped, err := techmap.Map(d, arch, techmap.Options{AreaPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mapped.Netlist, arch)
	if err != nil {
		t.Fatal(err)
	}
	return nl, mapped, res
}

const adderSrc = `
module a8(input clk, input [7:0] a, input [7:0] b, output [7:0] s);
  reg [7:0] r;
  always r <= a + b;
  assign s = r;
endmodule`

const mixSrc = `
module mix(input clk, input [5:0] a, input [5:0] b, input sel, output [5:0] y, output p);
  wire [5:0] sum = a + b;
  wire [5:0] lg = a & ~b;
  reg [5:0] r;
  always r <= sel ? sum : lg;
  assign y = r;
  assign p = ^a;
endmodule`

func TestCompactPreservesEquivalence(t *testing.T) {
	for _, arch := range []*cells.PLBArch{cells.LUTPLB(), cells.GranularPLB()} {
		for _, src := range []string{adderSrc, mixSrc} {
			ref, _, res := mapAndCompact(t, src, arch)
			if err := netlist.Equivalent(ref, res.Netlist, 16, 6, 5); err != nil {
				t.Fatalf("%s: compaction broke equivalence: %v", arch.Name, err)
			}
		}
	}
}

func TestCompactReducesArea(t *testing.T) {
	for _, arch := range []*cells.PLBArch{cells.LUTPLB(), cells.GranularPLB()} {
		_, _, res := mapAndCompact(t, mixSrc, arch)
		if res.AreaAfter > res.AreaBefore+1e-9 {
			t.Errorf("%s: compaction grew area %.2f -> %.2f", arch.Name, res.AreaBefore, res.AreaAfter)
		}
		t.Logf("%s: area %.2f -> %.2f (%.1f%% reduction), configs %v",
			arch.Name, res.AreaBefore, res.AreaAfter, 100*res.Reduction(), res.ConfigCounts)
	}
}

func TestCompactEmitsOnlyConfigTypes(t *testing.T) {
	for _, arch := range []*cells.PLBArch{cells.LUTPLB(), cells.GranularPLB()} {
		allowed := map[string]bool{"INV": true, "BUF": true, "DFF": true}
		for _, cfg := range arch.Configs {
			allowed[cfg.Name] = true
		}
		_, _, res := mapAndCompact(t, mixSrc, arch)
		for _, n := range res.Netlist.Nodes() {
			if n.Kind == netlist.KindGate && !allowed[n.Type] {
				t.Errorf("%s: netlist contains non-config gate %q", arch.Name, n.Type)
			}
		}
	}
}

func TestFullAdderExtraction(t *testing.T) {
	// A plain ripple adder on the granular arch should yield FA macros.
	_, _, res := mapAndCompact(t, adderSrc, cells.GranularPLB())
	if res.FullAdders == 0 {
		t.Errorf("no full adders extracted from an 8-bit ripple adder: %v", res.ConfigCounts)
	}
	// Groups must come in pairs with matching Group IDs.
	groups := map[int32]int{}
	for _, n := range res.Netlist.Nodes() {
		if n.Kind == netlist.KindGate && n.Group != 0 {
			if n.Type != "FA" {
				t.Errorf("grouped node has type %q", n.Type)
			}
			groups[n.Group]++
		}
	}
	for g, count := range groups {
		if count != 2 {
			t.Errorf("FA group %d has %d members, want 2", g, count)
		}
	}
	if len(groups) != res.FullAdders {
		t.Errorf("FullAdders=%d but %d groups found", res.FullAdders, len(groups))
	}
	// The LUT arch cannot host FA macros.
	_, _, lres := mapAndCompact(t, adderSrc, cells.LUTPLB())
	if lres.FullAdders != 0 {
		t.Errorf("LUT arch extracted %d full adders", lres.FullAdders)
	}
}

func TestGranularClustersBeatLUTDelay(t *testing.T) {
	// After compaction the granular netlist should consist mostly of
	// compound configs whose intrinsic delay beats the LUT's.
	arch := cells.GranularPLB()
	_, _, res := mapAndCompact(t, mixSrc, arch)
	lutDelay := arch.Config("LUT").Intrinsic
	for _, n := range res.Netlist.Nodes() {
		if n.Kind != netlist.KindGate || n.Type == "INV" || n.Type == "BUF" {
			continue
		}
		cfg := arch.Config(n.Type)
		if cfg == nil {
			t.Fatalf("unknown config %q", n.Type)
		}
		if cfg.Intrinsic > lutDelay {
			t.Errorf("config %s slower than LUT", n.Type)
		}
	}
}

func TestInverterAbsorption(t *testing.T) {
	// ~b feeding logic should be absorbed into configurations.
	src := `
module inv(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = a & ~b;
endmodule`
	_, mapped, res := mapAndCompact(t, src, cells.GranularPLB())
	invBefore := mapped.CellCounts["INV"]
	invAfter := 0
	for _, n := range res.Netlist.Nodes() {
		if n.Kind == netlist.KindGate && n.Type == "INV" {
			invAfter++
		}
	}
	if invAfter > invBefore {
		t.Errorf("inverters grew: %d -> %d", invBefore, invAfter)
	}
}

func TestClusterLeafCountBound(t *testing.T) {
	for _, arch := range []*cells.PLBArch{cells.LUTPLB(), cells.GranularPLB()} {
		_, _, res := mapAndCompact(t, mixSrc, arch)
		for _, n := range res.Netlist.Nodes() {
			if n.Kind == netlist.KindGate && len(n.Fanins) > 3 {
				t.Errorf("%s: config instance with %d inputs", arch.Name, len(n.Fanins))
			}
		}
	}
}
