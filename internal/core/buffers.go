package core

import (
	"vpga/internal/cells"
	"vpga/internal/logic"
	"vpga/internal/netlist"
)

// maxFanout is the fanout ceiling enforced by buffer insertion; the
// paper's physical-synthesis stage performs "buffer insertion ... to
// meet timing constraints" (Sec. 3.1). Keeping every driver under this
// load bounds the Drive × Cload term at scale.
const maxFanout = 10

// insertBuffers splits every net with more than maxFanout sinks into a
// balanced buffer tree. Buffers are absorbed by the PLBs' programmable
// buffers at packing time; in flow a they are ordinary cells. Returns
// the number of buffers added.
func insertBuffers(nl *netlist.Netlist, arch *cells.PLBArch) int {
	bufTT := logic.VarTT(1, 0)
	added := 0
	// Snapshot the node list: we append while iterating.
	nodes := append([]*netlist.Node(nil), nl.Nodes()...)
	for _, n := range nodes {
		switch n.Kind {
		case netlist.KindGate, netlist.KindDFF, netlist.KindInput:
		default:
			continue
		}
		outs := append([]netlist.NodeID(nil), nl.Fanouts(n.ID)...)
		if len(outs) <= maxFanout {
			continue
		}
		// Recursively split the sink list. Sinks that are primary
		// outputs keep the original driver so port timing stays direct.
		var build func(sinks []netlist.NodeID) netlist.NodeID
		build = func(sinks []netlist.NodeID) netlist.NodeID {
			buf := nl.AddGate("BUF", bufTT, n.ID)
			added++
			if len(sinks) <= maxFanout {
				for _, s := range sinks {
					retarget(nl, s, n.ID, buf)
				}
				return buf
			}
			// Group into ≤maxFanout children.
			per := (len(sinks) + maxFanout - 1) / maxFanout
			if per < maxFanout {
				per = maxFanout
			}
			var children []netlist.NodeID
			for i := 0; i < len(sinks); i += per {
				end := i + per
				if end > len(sinks) {
					end = len(sinks)
				}
				children = append(children, build(sinks[i:end]))
			}
			// Chain the child buffers under this one.
			for _, c := range children {
				nl.SetFanin(c, 0, buf)
			}
			return buf
		}
		var movable []netlist.NodeID
		for _, s := range outs {
			if nl.Node(s).Kind == netlist.KindOutput {
				continue
			}
			movable = append(movable, s)
		}
		if len(movable) <= maxFanout {
			continue
		}
		build(movable)
	}
	return added
}

// retarget rewires sink's fanin slots reading old to read new.
func retarget(nl *netlist.Netlist, sink, old, new netlist.NodeID) {
	node := nl.Node(sink)
	for i, f := range node.Fanins {
		if f == old {
			nl.SetFanin(sink, i, new)
		}
	}
}
