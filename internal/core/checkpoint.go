package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"vpga/internal/artifact"
	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/place"
)

// Placement checkpointing is the first stage-granular layer of the
// service's build cache: the post-refinement position snapshot is
// saved to the artifact store under a key derived from everything the
// placement depends on, and a later run with the same key restores it
// and skips annealing + refinement. Restoring is bit-identical by
// construction — routing, packing, timing and power read only the
// object coordinates, which the snapshot reproduces exactly (JSON
// float64 round-trips are exact) — so a routing-knob variant of a
// request reuses its sibling's placement and changes only from the
// router onward.

// placeCheckpointNS versions the key derivation; bump it when the
// placement pipeline changes in a way that invalidates old snapshots.
const placeCheckpointNS = "ckpt/place/v1"

// placeCheckpointSchema versions the snapshot payload.
const placeCheckpointSchema = 1

// placeCheckpointID is the key payload: every input the post-refine
// placement depends on, and nothing else. Flow is deliberately absent
// (flows a and b share the whole pre-pack pipeline), as are the
// route-only knobs (capacity/cells scale) — that exclusion is what
// lets a repair-ladder routing rung or a routing sweep reuse the
// placement. Seed IS present, so the ladder's reseeding rungs key
// fresh placements.
type placeCheckpointID struct {
	Design string  `json:"design"`
	RTLSHA string  `json:"rtl_sha"`
	Arch   string  `json:"arch"`
	Seed   int64   `json:"seed"`
	Effort int     `json:"effort"`
	Skip   bool    `json:"skip_compaction,omitempty"`
	Clock  float64 `json:"clock,omitempty"`
	// Defects is the map's provenance line (seed/rate/dims/counts):
	// stuck sites constrain the spread and every anneal move.
	Defects string `json:"defects,omitempty"`
}

// archSignature flattens the parts of a PLB architecture that shape
// placement — name, tile areas, and the slot inventory — into a
// stable string, so two distinct custom architectures sharing a name
// cannot collide on one checkpoint key.
func archSignature(a *cells.PLBArch) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|area=%g|comb=%g", a.Name, a.Area, a.CombArea)
	for _, s := range a.Slots {
		fmt.Fprintf(&sb, "|%s:%v", s.Component, s.Serves)
	}
	return sb.String()
}

// placeCheckpointKey derives the snapshot's content address from the
// resolved design + config ("" when no key can be formed). It hashes
// the resolved Config rather than the originating request because the
// repair ladder mutates the config between attempts — each reseeded
// rung must miss the previous rung's checkpoint.
func placeCheckpointKey(d bench.Design, cfg Config) string {
	if cfg.Arch == nil {
		return ""
	}
	rtl := sha256.Sum256([]byte(d.RTL))
	id := placeCheckpointID{
		Design: d.Name, RTLSHA: hex.EncodeToString(rtl[:]),
		Arch: archSignature(cfg.Arch),
		Seed: cfg.Seed, Effort: cfg.PlaceEffort, Skip: cfg.SkipCompaction,
		Clock: cfg.ClockPeriod,
	}
	if cfg.Defects != nil {
		id.Defects = cfg.Defects.String()
	}
	key, err := CanonicalKey(placeCheckpointNS, id)
	if err != nil {
		return ""
	}
	return key
}

// placeCheckpoint is the stored snapshot: the flat position array in
// object order, with the object count double-checking the length.
type placeCheckpoint struct {
	Schema    int       `json:"schema"`
	Objects   int       `json:"objects"`
	Positions []float64 `json:"positions"`
}

// savePlaceCheckpoint stores the problem's positions, best-effort: a
// failed save costs the next run its shortcut, never this run its
// result (the store's own Put already retries nothing and the caller
// must not either — checkpointing is pure acceleration).
func savePlaceCheckpoint(store *artifact.Store, key string, prob *place.Problem) {
	if store == nil || key == "" {
		return
	}
	ck := placeCheckpoint{
		Schema: placeCheckpointSchema, Objects: len(prob.Objs),
		Positions: prob.Positions(),
	}
	enc, err := json.Marshal(ck)
	if err != nil {
		return
	}
	store.Put(key, enc)
}

// loadPlaceCheckpoint fetches and validates a snapshot. Every failure
// — missing, corrupt (the store evicts those itself), wrong schema,
// wrong shape — is a miss: the caller anneals from scratch.
func loadPlaceCheckpoint(store *artifact.Store, key string) ([]float64, bool) {
	if store == nil || key == "" {
		return nil, false
	}
	raw, ok := store.Get(key)
	if !ok {
		return nil, false
	}
	var ck placeCheckpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return nil, false
	}
	if ck.Schema > placeCheckpointSchema || len(ck.Positions) != 2*ck.Objects {
		return nil, false
	}
	return ck.Positions, true
}
