package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vpga/internal/artifact"
	"vpga/internal/obs"
)

func ckptStore(t *testing.T) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// runWithStore executes req against store under a fresh trace and
// returns the stripped report plus the run's anneal-proposal count
// (zero iff the placement was restored from a checkpoint).
func runWithStore(t *testing.T, req FlowRequest, store *artifact.Store) (*Report, int64) {
	t.Helper()
	run := obs.NewTracer().NewRun(req.Design + "/" + req.Flow)
	rep, err := RunRequestExec(context.Background(), req,
		ExecOptions{Trace: run, Checkpoints: store})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	proposed := run.SolverMetrics().AnnealProposed
	rep.StripMetrics()
	return rep, proposed
}

// TestPlaceCheckpointResume is the tentpole's resume property: a run
// that restores the post-refinement placement snapshot skips
// annealing entirely and still produces a report bit-identical to the
// cold run's.
func TestPlaceCheckpointResume(t *testing.T) {
	req := FlowRequest{Design: "alu", Arch: ArchSpec{Kind: "granular"},
		Flow: "b", Seed: 11, PlaceEffort: 2}
	cold, err := RunRequest(context.Background(), req, nil)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cold.StripMetrics()

	store := ckptStore(t)
	warm, proposed := runWithStore(t, req, store)
	if proposed == 0 {
		t.Fatal("first store-backed run found a checkpoint in an empty store")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("store-backed run diverged from cold run:\ncold %+v\nwarm %+v", cold, warm)
	}
	if store.Len() == 0 {
		t.Fatal("run saved no checkpoint")
	}

	hit, proposed := runWithStore(t, req, store)
	if proposed != 0 {
		t.Fatalf("checkpoint hit still annealed (%d proposals)", proposed)
	}
	if !reflect.DeepEqual(cold, hit) {
		t.Fatalf("resumed run diverged from cold run:\ncold %+v\nhit %+v", cold, hit)
	}
}

// TestPlaceCheckpointSharing: flows a and b share the pre-pack
// pipeline, and the route knobs act downstream of placement, so both
// variants restore the placement a flow-b run checkpointed; a reseeded
// request must miss.
func TestPlaceCheckpointSharing(t *testing.T) {
	base := FlowRequest{Design: "alu", Arch: ArchSpec{Kind: "granular"},
		Flow: "b", Seed: 11, PlaceEffort: 2}
	store := ckptStore(t)
	if _, proposed := runWithStore(t, base, store); proposed == 0 {
		t.Fatal("seeding run found a checkpoint in an empty store")
	}

	flowA := base
	flowA.Flow = "a"
	if _, proposed := runWithStore(t, flowA, store); proposed != 0 {
		t.Fatalf("flow-a variant re-annealed (%d proposals)", proposed)
	}

	reseeded := base
	reseeded.Seed = 12
	if _, proposed := runWithStore(t, reseeded, store); proposed == 0 {
		t.Fatal("reseeded request reused the old placement")
	}
}

// TestPlaceCheckpointCorruptEntry: a corrupted checkpoint is a silent
// miss — the run recomputes, the store evicts, and the report matches
// the clean run exactly.
func TestPlaceCheckpointCorruptEntry(t *testing.T) {
	req := FlowRequest{Design: "alu", Arch: ArchSpec{Kind: "granular"},
		Flow: "b", Seed: 11, PlaceEffort: 2}
	store := ckptStore(t)
	clean, _ := runWithStore(t, req, store)

	// Corrupt every stored entry in place (truncate to half).
	ents, err := os.ReadDir(store.Dir())
	if err != nil || len(ents) == 0 {
		t.Fatalf("no checkpoint entries to corrupt: %v", err)
	}
	for _, e := range ents {
		p := filepath.Join(store.Dir(), e.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rep, proposed := runWithStore(t, req, store)
	if proposed == 0 {
		t.Fatal("corrupt checkpoint was restored")
	}
	if !reflect.DeepEqual(clean, rep) {
		t.Fatal("recomputed run diverged from clean run")
	}
	if store.Stats().CorruptEvicted == 0 {
		t.Fatal("corrupt entry was not evicted")
	}
}
