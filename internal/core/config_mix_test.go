package core

import (
	"context"
	"testing"

	"vpga/internal/bench"
	"vpga/internal/cells"
)

// TestFPUConfigMixUsesFlexibleRoles pins the packing-flexibility
// regression: without the RoleSimple2 flexibility the FPU's 2-input
// AND-family instances serialize on the granular PLB's single ND3WI
// slot and the Table 1 comparison inverts.
func TestFPUConfigMixUsesFlexibleRoles(t *testing.T) {
	for _, arch := range []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()} {
		rep, err := RunFlow(context.Background(), bench.FPU(6), Config{Arch: arch, Flow: FlowB, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: cfgs=%v FA=%d rows=%d cols=%d util=%.2f die=%.0f pert=%.1f",
			arch.Name, rep.ConfigCounts, rep.FullAdders, rep.Rows, rep.Cols, rep.Utilization, rep.DieArea, rep.Perturbation)
		if arch.Name == "granular-plb" {
			if rep.ConfigCounts["ND2"] == 0 {
				t.Error("no flexible ND2 instances: RoleSimple2 regressed")
			}
			if rep.FullAdders == 0 {
				t.Error("no full adders extracted from the FPU")
			}
		}
	}
}
