package core

import (
	"context"
	"strings"
	"testing"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/logic"
	"vpga/internal/netlist"
)

func TestInsertBuffersCapsFanout(t *testing.T) {
	arch := cells.GranularPLB()
	nl := netlist.New("fan")
	a := nl.AddInput("a")
	// One driver gate with 37 sinks.
	drv := nl.AddGate("MX", logic.VarTT(1, 0), a)
	for i := 0; i < 37; i++ {
		g := nl.AddGate("MX", logic.VarTT(1, 0), drv)
		nl.AddOutput("o"+string(rune('A'+i)), g)
	}
	ref := nl.Clone()
	added := insertBuffers(nl, arch)
	if added == 0 {
		t.Fatal("no buffers inserted for fanout 37")
	}
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindGate, netlist.KindInput, netlist.KindDFF:
			if got := len(nl.Fanouts(n.ID)); got > maxFanout {
				t.Fatalf("node %d (%s) still has fanout %d > %d", n.ID, n.Type, got, maxFanout)
			}
		}
	}
	if err := netlist.Equivalent(ref, nl, 8, 2, 1); err != nil {
		t.Fatalf("buffering changed behaviour: %v", err)
	}
}

func TestInsertBuffersLeavesSmallNetsAlone(t *testing.T) {
	arch := cells.GranularPLB()
	nl := netlist.New("small")
	a := nl.AddInput("a")
	g := nl.AddGate("MX", logic.VarTT(1, 0), a)
	nl.AddOutput("y", g)
	if added := insertBuffers(nl, arch); added != 0 {
		t.Fatalf("inserted %d buffers into a fanout-1 design", added)
	}
}

func TestWriteFloorplan(t *testing.T) {
	rep, art, err := RunFlowFull(context.Background(), bench.ALU(8), Config{Arch: cells.GranularPLB(), Flow: FlowB, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFloorplan(&sb, rep, art); err != nil {
		t.Fatal(err)
	}
	fp := sb.String()
	for _, want := range []string{"PLB array", "# occupancy", "# inventory", "# routing", "PLB(0,"} {
		if !strings.Contains(fp, want) {
			t.Errorf("floorplan missing %q", want)
		}
	}
	// The occupancy map must be rows lines of cols characters.
	lines := strings.Split(fp, "\n")
	mapLines := 0
	for _, l := range lines {
		if len(l) == rep.Cols && strings.Trim(l, ".0123456789*") == "" && len(l) > 0 {
			mapLines++
		}
	}
	if mapLines < rep.Rows {
		t.Errorf("occupancy map has %d full lines, want %d", mapLines, rep.Rows)
	}
}

func TestWriteFloorplanRequiresFlowB(t *testing.T) {
	rep, art, err := RunFlowFull(context.Background(), bench.ALU(8), Config{Arch: cells.GranularPLB(), Flow: FlowA, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFloorplan(&sb, rep, art); err == nil {
		t.Fatal("flow-a floorplan accepted")
	}
}

func TestViaStatsInReport(t *testing.T) {
	rep, err := RunFlow(context.Background(), bench.ALU(8), Config{Arch: cells.GranularPLB(), Flow: FlowB, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PopulatedVias <= 0 || rep.ViaSitesPerPLB <= 0 {
		t.Fatalf("via stats missing: %+v", rep)
	}
	// Populated vias must be far below the fabric's potential sites.
	potential := rep.ViaSitesPerPLB * rep.Rows * rep.Cols
	if rep.PopulatedVias >= potential {
		t.Fatalf("populated %d >= potential %d", rep.PopulatedVias, potential)
	}
}

func TestPowerInReport(t *testing.T) {
	rep, err := RunFlow(context.Background(), bench.ALU(8), Config{Arch: cells.GranularPLB(), Flow: FlowB, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PowerUW <= 0 {
		t.Fatalf("power missing: %v", rep.PowerUW)
	}
}

func TestReclockShiftsSlack(t *testing.T) {
	rep := &Report{ClockPeriod: 1000, AvgTopSlack: 100, WorstSlack: 50}
	rep.Reclock(1500)
	if rep.ClockPeriod != 1500 || rep.AvgTopSlack != 600 || rep.WorstSlack != 550 {
		t.Fatalf("reclock wrong: %+v", rep)
	}
}

func TestDomainExploreSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	archs := []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()}
	results, err := DomainExplore(context.Background(), []bench.Design{bench.ALU(8)}, archs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Points) != 2 {
		t.Fatalf("results: %+v", results)
	}
	if results[0].Best == "" {
		t.Fatal("no winner chosen")
	}
	if !strings.Contains(FormatDomains(results), results[0].Best) {
		t.Fatal("formatting missing the winner")
	}
}

func TestRoutingSweepMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	pts, err := RoutingSweep(context.Background(), bench.ALU(8), cells.GranularPLB(), []int{4, 16, 64}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Overflow must not increase with more tracks.
	for i := 1; i < len(pts); i++ {
		if pts[i].Overflow > pts[i-1].Overflow {
			t.Errorf("overflow grew with capacity: %+v", pts)
		}
	}
	// With generous tracks, overflow disappears on this small design.
	if pts[len(pts)-1].Overflow != 0 {
		t.Errorf("overflow %d remains at capacity 64", pts[len(pts)-1].Overflow)
	}
	if !strings.Contains(FormatRoutingSweep("ALU", pts), "tracks") {
		t.Error("format broken")
	}
}
