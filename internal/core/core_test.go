package core

import (
	"context"
	"strings"
	"testing"

	"vpga/internal/bench"
	"vpga/internal/cells"
)

func TestRunFlowBothFlowsBothArchs(t *testing.T) {
	d := bench.ALU(8)
	for _, arch := range []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()} {
		clock := 0.0
		for _, flow := range []FlowKind{FlowA, FlowB} {
			rep, err := RunFlow(context.Background(), d, Config{Arch: arch, Flow: flow, ClockPeriod: clock, Seed: 5, Verify: true})
			if err != nil {
				t.Fatalf("%s %s: %v", arch.Name, flow, err)
			}
			clock = rep.ClockPeriod
			if rep.DieArea <= 0 || rep.GateCount <= 0 {
				t.Fatalf("%s %s: degenerate report %+v", arch.Name, flow, rep)
			}
			if flow == FlowB && (rep.Rows == 0 || rep.Utilization <= 0) {
				t.Fatalf("%s flow b: missing array stats", arch.Name)
			}
			if flow == FlowA && rep.Rows != 0 {
				t.Fatalf("%s flow a: unexpected array stats", arch.Name)
			}
			t.Log(rep.summary())
		}
	}
}

func TestFlowBCostsMoreAreaThanFlowA(t *testing.T) {
	// Packing into a regular array always carries area overhead
	// relative to the free-form ASIC placement (Table 1's flow a vs b).
	d := bench.FPU(6)
	arch := cells.GranularPLB()
	a, err := RunFlow(context.Background(), d, Config{Arch: arch, Flow: FlowA, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFlow(context.Background(), d, Config{Arch: arch, Flow: FlowB, ClockPeriod: a.ClockPeriod, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if b.DieArea < a.DieArea {
		t.Errorf("flow b die %.0f smaller than flow a %.0f", b.DieArea, a.DieArea)
	}
}

func TestCompactionAblation(t *testing.T) {
	d := bench.ALU(8)
	arch := cells.GranularPLB()
	with, err := RunFlow(context.Background(), d, Config{Arch: arch, Flow: FlowB, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunFlow(context.Background(), d, Config{Arch: arch, Flow: FlowB, ClockPeriod: with.ClockPeriod, Seed: 9, SkipCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.CompactionReduction <= 0 {
		t.Errorf("compaction reduced nothing: %v", with.CompactionReduction)
	}
	if without.CompactionReduction != 0 {
		t.Errorf("ablation still reports reduction")
	}
	if with.DieArea > without.DieArea {
		t.Errorf("compaction increased die area: %.0f vs %.0f", with.DieArea, without.DieArea)
	}
	t.Logf("compaction: %.1f%% gate-area reduction, die %.0f vs %.0f without",
		100*with.CompactionReduction, with.DieArea, without.DieArea)
}

func TestMatrixAndClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is slow")
	}
	suite := bench.TestSuite()
	m, err := RunMatrix(context.Background(), suite, MatrixOptions{Seed: 3, PlaceEffort: 3})
	if err != nil {
		t.Fatal(err)
	}
	t1 := m.Table1()
	t2 := m.Table2()
	for _, d := range suite.All() {
		if !strings.Contains(t1, d.Name) || !strings.Contains(t2, d.Name) {
			t.Errorf("tables missing %s:\n%s\n%s", d.Name, t1, t2)
		}
	}
	claims := m.DeriveClaims()
	s := claims.String()
	if !strings.Contains(s, "paper") {
		t.Error("claims text missing paper references")
	}
	t.Logf("\n%s\n%s\n%s", t1, t2, s)
	// Shape checks on the miniature suite: the granular PLB must not
	// lose badly on datapath designs, and Firewire's ratio is defined.
	if claims.FirewireAreaRatio == 0 {
		t.Error("Firewire ratio missing")
	}
	// Clock consistency within each design.
	for _, d := range suite.All() {
		clk := m.Get(d.Name, "granular-plb", FlowA).ClockPeriod
		for _, arch := range []string{"granular-plb", "lut-plb"} {
			for _, fl := range []FlowKind{FlowA, FlowB} {
				if got := m.Get(d.Name, arch, fl).ClockPeriod; got != clk {
					t.Errorf("%s %s %v: clock %v != %v", d.Name, arch, fl, got, clk)
				}
			}
		}
	}
}

func TestFig2Text(t *testing.T) {
	s := Fig2Text()
	for _, want := range []string{"196", "complete", "3-input XOR"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig2 text missing %q:\n%s", want, s)
		}
	}
}

func TestGranularitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	pts, err := GranularitySweep(context.Background(), bench.ALU(8), DefaultSweepArchs(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(DefaultSweepArchs()) {
		t.Fatalf("%d sweep points", len(pts))
	}
	for _, p := range pts {
		if p.DieArea <= 0 {
			t.Errorf("%s: die area %v", p.Arch, p.DieArea)
		}
		t.Logf("%-14s %-34s plb=%5.1f die=%8.0f slack=%8.1f", p.Arch, p.Slots, p.PLBArea, p.DieArea, p.AvgTopSlack)
	}
}

func TestIdentityConfigs(t *testing.T) {
	d := bench.ALU(8)
	arch := cells.LUTPLB()
	rep, err := RunFlow(context.Background(), d, Config{Arch: arch, Flow: FlowB, Seed: 13, SkipCompaction: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DieArea <= 0 {
		t.Fatal("bad report")
	}
}
