package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/route"
)

// DomainResult reports, for one application domain (benchmark design),
// how each candidate PLB architecture performs and which wins.
type DomainResult struct {
	Domain string
	Points []SweepPoint
	// Best is the architecture minimizing the area-delay product
	// (die area × post-layout critical delay).
	Best string
	// BestAreaDelay is the winning product.
	BestAreaDelay float64
}

// DomainExplore is the deprecated positional-seed form of
// RunDomainExplore.
//
// Deprecated: use RunDomainExplore with SweepOptions.
func DomainExplore(ctx context.Context, domains []bench.Design, archs []*cells.PLBArch, seed int64) ([]DomainResult, error) {
	return RunDomainExplore(ctx, domains, archs, SweepOptions{Seed: seed})
}

// RunDomainExplore runs the paper's proposed future work (Sec. 4:
// "the optimal combination of these logic elements, and the optimal
// ratio of combinational to sequential logic elements varies with the
// application domain. Accordingly, we propose to explore these issues
// in an application-domain specific manner"): each design stands for a
// domain, swept across a family of PLB architectures; the winner per
// domain is chosen by area-delay product. Within a domain the first
// architecture pins the clock period and the remaining runs fan out
// on opts.Parallel workers; results are deterministic at any width.
func RunDomainExplore(ctx context.Context, domains []bench.Design, archs []*cells.PLBArch, opts SweepOptions) ([]DomainResult, error) {
	var out []DomainResult
	pool := route.NewPool()
	for _, d := range domains {
		res := DomainResult{Domain: d.Name, Points: make([]SweepPoint, len(archs))}
		if len(archs) == 0 {
			out = append(out, res)
			continue
		}
		point := func(arch *cells.PLBArch, clock float64) (SweepPoint, float64, float64, error) {
			run := opts.Trace.NewRun("domain/" + d.Name + "/" + arch.Name)
			rep, err := RunFlow(ctx, d, Config{Arch: arch, Flow: FlowB, ClockPeriod: clock,
				Seed: opts.Seed, PlaceWorkers: opts.PlaceWorkers, Trace: run,
				Stages: opts.Stages, routePool: pool})
			run.Close()
			if err != nil {
				return SweepPoint{}, 0, 0, fmt.Errorf("domain %s on %s: %w", d.Name, arch.Name, err)
			}
			return SweepPoint{
				Arch: arch.Name, Slots: arch.SlotSummary(), PLBArea: arch.Area,
				DieArea: rep.DieArea, AvgTopSlack: rep.AvgTopSlack,
				UsedPLBs: rep.Rows * rep.Cols,
			}, rep.ClockPeriod, rep.DieArea * rep.MaxArrival, nil
		}

		// The first architecture pins the domain's clock.
		pt, clock, ad0, err := point(archs[0], 0)
		if err != nil {
			return nil, err
		}
		res.Points[0] = pt
		areaDelay := make([]float64, len(archs))
		areaDelay[0] = ad0

		var (
			sem      = make(chan struct{}, opts.workers())
			mu       sync.Mutex
			firstErr error
			wg       sync.WaitGroup
		)
		for i := 1; i < len(archs); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				pt, _, ad, err := point(archs[i], clock)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				res.Points[i] = pt
				areaDelay[i] = ad
			}(i)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		// Winner selection stays in arch order, so ties resolve
		// identically at any parallelism.
		for i, arch := range archs {
			if res.Best == "" || areaDelay[i] < res.BestAreaDelay {
				res.Best, res.BestAreaDelay = arch.Name, areaDelay[i]
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatDomains renders domain-exploration results.
func FormatDomains(results []DomainResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Application-domain exploration (Sec. 4 future work): best PLB per domain\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "  %-14s best: %-14s (area×delay %.3e)\n", r.Domain, r.Best, r.BestAreaDelay)
		for _, p := range r.Points {
			marker := " "
			if p.Arch == r.Best {
				marker = "*"
			}
			fmt.Fprintf(&sb, "   %s %-14s die=%9.0f  slack=%9.1f\n", marker, p.Arch, p.DieArea, p.AvgTopSlack)
		}
	}
	return sb.String()
}
