package core

import (
	"context"
	"fmt"
	"strings"

	"vpga/internal/bench"
	"vpga/internal/cells"
)

// DomainResult reports, for one application domain (benchmark design),
// how each candidate PLB architecture performs and which wins.
type DomainResult struct {
	Domain string
	Points []SweepPoint
	// Best is the architecture minimizing the area-delay product
	// (die area × post-layout critical delay).
	Best string
	// BestAreaDelay is the winning product.
	BestAreaDelay float64
}

// DomainExplore runs the paper's proposed future work (Sec. 4:
// "the optimal combination of these logic elements, and the optimal
// ratio of combinational to sequential logic elements varies with the
// application domain. Accordingly, we propose to explore these issues
// in an application-domain specific manner"): each design stands for a
// domain, swept across a family of PLB architectures; the winner per
// domain is chosen by area-delay product.
func DomainExplore(ctx context.Context, domains []bench.Design, archs []*cells.PLBArch, seed int64) ([]DomainResult, error) {
	var out []DomainResult
	for _, d := range domains {
		res := DomainResult{Domain: d.Name}
		clock := 0.0
		for _, arch := range archs {
			rep, err := RunFlow(ctx, d, Config{Arch: arch, Flow: FlowB, ClockPeriod: clock, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("domain %s on %s: %w", d.Name, arch.Name, err)
			}
			if clock == 0 {
				clock = rep.ClockPeriod
			}
			pt := SweepPoint{
				Arch: arch.Name, Slots: arch.SlotSummary(), PLBArea: arch.Area,
				DieArea: rep.DieArea, AvgTopSlack: rep.AvgTopSlack,
				UsedPLBs: rep.Rows * rep.Cols,
			}
			res.Points = append(res.Points, pt)
			ad := rep.DieArea * rep.MaxArrival
			if res.Best == "" || ad < res.BestAreaDelay {
				res.Best, res.BestAreaDelay = arch.Name, ad
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatDomains renders domain-exploration results.
func FormatDomains(results []DomainResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Application-domain exploration (Sec. 4 future work): best PLB per domain\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "  %-14s best: %-14s (area×delay %.3e)\n", r.Domain, r.Best, r.BestAreaDelay)
		for _, p := range r.Points {
			marker := " "
			if p.Arch == r.Best {
				marker = "*"
			}
			fmt.Fprintf(&sb, "   %s %-14s die=%9.0f  slack=%9.1f\n", marker, p.Arch, p.DieArea, p.AvgTopSlack)
		}
	}
	return sb.String()
}
