package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/route"
)

// A wrapped *FlowError must keep its real failing stage in the ledger
// instead of degrading to the generic "flow" (asFlowError used a
// direct type assertion, which a fmt.Errorf %w wrapper defeats).
func TestAsFlowErrorUnwraps(t *testing.T) {
	arch := cells.GranularPLB()
	inner := &FlowError{Design: "ALU", Arch: arch.Name, Flow: "flow b",
		Stage: "route", Err: errors.New("overflow 12")}
	wrapped := fmt.Errorf("sweep point 3: %w", inner)

	fe := asFlowError(bench.ALU(4), arch, FlowB, wrapped)
	if fe != inner {
		t.Fatalf("wrapped *FlowError not recovered: got %+v", fe)
	}
	if fe.Stage != "route" {
		t.Fatalf("stage = %q, want the original %q", fe.Stage, "route")
	}

	// A plain error still lands in the generic bucket.
	plain := asFlowError(bench.ALU(4), arch, FlowA, errors.New("boom"))
	if plain.Stage != "flow" {
		t.Fatalf("plain error stage = %q, want %q", plain.Stage, "flow")
	}
}

// wrappedDeadlineCtx models a custom context whose Err wraps
// context.DeadlineExceeded instead of returning it directly.
type wrappedDeadlineCtx struct{ context.Context }

func (wrappedDeadlineCtx) Err() error {
	return fmt.Errorf("deadline passed at shard boundary: %w", context.DeadlineExceeded)
}

// A wrapped deadline error must classify as "timeout", not
// "cancelled" (ctxFlowErr compared err == context.DeadlineExceeded).
func TestCtxFlowErrWrappedDeadline(t *testing.T) {
	d := bench.ALU(4)
	cfg := Config{Arch: cells.GranularPLB(), Flow: FlowA}

	fe := ctxFlowErr(wrappedDeadlineCtx{context.Background()}, d, cfg)
	if fe == nil || fe.Stage != "timeout" {
		t.Fatalf("wrapped deadline classified as %+v, want stage %q", fe, "timeout")
	}

	// Real deadline and real cancellation keep their classifications.
	expired, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-expired.Done()
	if fe := ctxFlowErr(expired, d, cfg); fe == nil || fe.Stage != "timeout" {
		t.Fatalf("real deadline classified as %+v", fe)
	}
	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if fe := ctxFlowErr(cancelled, d, cfg); fe == nil || fe.Stage != "cancelled" {
		t.Fatalf("cancellation classified as %+v", fe)
	}
	if fe := ctxFlowErr(context.Background(), d, cfg); fe != nil {
		t.Fatalf("live context classified as %+v, want nil", fe)
	}
}

// The repair ladder's exhaustion error has the same deadline
// classification requirement.
func TestRepairLadderWrappedDeadline(t *testing.T) {
	run := func(context.Context, bench.Design, Config) (*Report, error) {
		return nil, &route.RouteError{Net: 1, Iteration: 1, Overflow: 3, Err: errors.New("unroutable")}
	}
	_, err := runFlowRepairWith(wrappedDeadlineCtx{context.Background()}, bench.ALU(4),
		Config{Arch: cells.GranularPLB(), Flow: FlowB}, run)
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != "timeout" {
		t.Fatalf("repair exhaustion under wrapped deadline = %v, want stage %q", err, "timeout")
	}
}

// The Progress callback must not hold the pool mutex: a callback that
// blocks until every run has *started* can only return if workers keep
// flowing while it is in flight. Under the old implementation (callback
// under mu) the design goroutines could never fan out their dependent
// runs past the first blocked callback, so this test deadlocked.
func TestProgressCallbackDoesNotBlockPool(t *testing.T) {
	suite := smallSuite()
	wantRuns := int32(len(suite.All()) * 2 * 2)

	var started atomic.Int32
	allStarted := make(chan struct{})
	testPanicHook = func(string, string, FlowKind) {
		if started.Add(1) == wantRuns {
			close(allStarted)
		}
	}
	defer func() { testPanicHook = nil }()

	var lines atomic.Int32
	done := make(chan error, 1)
	go func() {
		_, err := RunMatrix(context.Background(), suite, MatrixOptions{
			Seed: 3, PlaceEffort: 1, Parallel: 4,
			Progress: func(string) {
				<-allStarted
				lines.Add(1)
			},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Minute):
		t.Fatal("matrix deadlocked: Progress callback serialized the worker pool")
	}
	if got := lines.Load(); got != wantRuns {
		t.Fatalf("progress lines = %d, want %d", got, wantRuns)
	}
}

// Progress lines arrive in canonical (design, arch, flow) order at any
// worker count: a sequential run and a 4-worker run produce the exact
// same line sequence.
func TestProgressLineOrdering(t *testing.T) {
	suite := smallSuite()
	capture := func(parallel int) []string {
		var mu sync.Mutex
		var lines []string
		_, err := RunMatrix(context.Background(), suite, MatrixOptions{
			Seed: 7, PlaceEffort: 1, Parallel: parallel,
			Progress: func(s string) { mu.Lock(); lines = append(lines, s); mu.Unlock() },
		})
		if err != nil {
			t.Fatal(err)
		}
		return lines
	}
	a := capture(1)
	b := capture(4)
	if len(a) != len(suite.All())*4 {
		t.Fatalf("got %d lines, want %d", len(a), len(suite.All())*4)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line %d differs between Parallel=1 and Parallel=4:\n  %q\n  %q", i, a[i], b[i])
		}
	}
	// Canonical cell order: designs in suite order, then
	// granular/a, granular/b, lut/a, lut/b within each design.
	cells4 := []struct{ arch, flow string }{
		{"granular-plb", "flow a"}, {"granular-plb", "flow b"},
		{"lut-plb", "flow a"}, {"lut-plb", "flow b"},
	}
	for i, line := range a {
		d := suite.All()[i/4]
		want := cells4[i%4]
		if strings.Fields(line)[0] != d.Name ||
			!strings.Contains(line, want.arch) || !strings.Contains(line, want.flow) {
			t.Fatalf("line %d = %q, want design %s %s %s", i, line, d.Name, want.arch, want.flow)
		}
	}
}
