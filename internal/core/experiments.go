package core

import (
	"fmt"
	"strings"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/logic"
)

// Matrix holds the full 4-design × 2-architecture × 2-flow experiment
// of Tables 1 and 2.
type Matrix struct {
	Designs []bench.Design
	// Reports[design][arch][flow]
	Reports map[string]map[string]map[string]*Report
}

// MatrixOptions configures a matrix run.
type MatrixOptions struct {
	Seed        int64
	PlaceEffort int
	Verify      bool
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
}

// RunMatrix executes every (design, arch, flow) combination. The clock
// period of each design is fixed across its four runs — 1.2× the
// pre-layout arrival of the first run — so slack comparisons are
// apples to apples, mirroring the paper's single cycle time per table.
func RunMatrix(suite bench.Suite, opts MatrixOptions) (*Matrix, error) {
	m := &Matrix{Designs: suite.All(), Reports: map[string]map[string]map[string]*Report{}}
	archs := []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()}
	for _, d := range m.Designs {
		m.Reports[d.Name] = map[string]map[string]*Report{}
		clock := 0.0
		for _, arch := range archs {
			m.Reports[d.Name][arch.Name] = map[string]*Report{}
			for _, flow := range []FlowKind{FlowA, FlowB} {
				rep, err := RunFlow(d, Config{
					Arch: arch, Flow: flow, ClockPeriod: clock,
					Seed: opts.Seed, PlaceEffort: opts.PlaceEffort, Verify: opts.Verify,
				})
				if err != nil {
					return nil, err
				}
				if clock == 0 {
					// The first run pins the design's clock period for
					// all four runs: 1.2× its post-layout arrival, so
					// slacks hover near zero like the paper's Table 2.
					clock = 1.2 * rep.MaxArrival
					rep.Reclock(clock)
				}
				m.Reports[d.Name][arch.Name][flow.String()] = rep
				if opts.Progress != nil {
					opts.Progress(rep.summary())
				}
			}
		}
	}
	return m, nil
}

// Get returns one report.
func (m *Matrix) Get(design, arch string, flow FlowKind) *Report {
	return m.Reports[design][arch][flow.String()]
}

// Table1 renders the die-area comparison in the layout of the paper's
// Table 1.
func (m *Matrix) Table1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Area comparison (die area, NAND2-equivalent units)\n")
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s %12s\n", "", "Granular PLB", "", "LUT PLB", "")
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s %12s\n", "Design", "flow a", "flow b", "flow a", "flow b")
	for _, d := range m.Designs {
		g := m.Reports[d.Name]["granular-plb"]
		l := m.Reports[d.Name]["lut-plb"]
		fmt.Fprintf(&sb, "%-16s %12.0f %12.0f %12.0f %12.0f\n", d.Name,
			g["flow a"].DieArea, g["flow b"].DieArea,
			l["flow a"].DieArea, l["flow b"].DieArea)
	}
	return sb.String()
}

// Table2 renders the timing comparison in the layout of the paper's
// Table 2 (average slack over the top-10 critical paths, ps).
func (m *Matrix) Table2() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: Timing comparison (avg slack over paths 1-10, ps)\n")
	fmt.Fprintf(&sb, "%-16s %10s %12s %12s %12s %12s %10s\n",
		"Design", "gates", "gran flow a", "gran flow b", "lut flow a", "lut flow b", "clock")
	for _, d := range m.Designs {
		g := m.Reports[d.Name]["granular-plb"]
		l := m.Reports[d.Name]["lut-plb"]
		fmt.Fprintf(&sb, "%-16s %10.0f %12.1f %12.1f %12.1f %12.1f %10.0f\n", d.Name,
			l["flow b"].GateCount,
			g["flow a"].AvgTopSlack, g["flow b"].AvgTopSlack,
			l["flow a"].AvgTopSlack, l["flow b"].AvgTopSlack,
			g["flow b"].ClockPeriod)
	}
	return sb.String()
}

// Claims holds the derived Section 3.2 statistics.
type Claims struct {
	// AvgDatapathDieReduction: average die-area reduction of flow b on
	// the three datapath designs, granular vs LUT (paper: ~32%).
	AvgDatapathDieReduction float64
	// MaxDatapathDieReduction and the design achieving it (paper: FPU,
	// ~40%).
	MaxDatapathDieReduction float64
	MaxDieReductionDesign   string
	// AvgPackingOverheadReduction: how much smaller the flow a→b area
	// overhead is with the granular PLB (paper: 48.37% average).
	AvgPackingOverheadReduction float64
	MaxPackingOverheadReduction float64
	MaxPackingOverheadDesign    string
	// AvgSlackImprovement on flow b, granular vs LUT, over all designs
	// (paper: ~18% average, FPU ~40%).
	AvgSlackImprovement float64
	MaxSlackImprovement float64
	MaxSlackDesign      string
	// AvgPerfDegradationReduction: how much less slack is lost going
	// from flow a to flow b with the granular PLB (paper: ~68%).
	AvgPerfDegradationReduction float64
	// FirewireAreaRatio is granular/LUT die area on the
	// sequential-dominated design (paper: > 1, a regression).
	FirewireAreaRatio float64
}

// DeriveClaims computes the Section 3.2 statistics from a matrix.
func (m *Matrix) DeriveClaims() Claims {
	var c Claims
	nDatapath := 0
	nOverhead := 0
	nSlack := 0
	nDeg := 0
	for _, d := range m.Designs {
		g := m.Reports[d.Name]["granular-plb"]
		l := m.Reports[d.Name]["lut-plb"]
		gb, ga := g["flow b"], g["flow a"]
		lb, la := l["flow b"], l["flow a"]

		if d.Datapath {
			red := 1 - gb.DieArea/lb.DieArea
			c.AvgDatapathDieReduction += red
			nDatapath++
			if red > c.MaxDatapathDieReduction {
				c.MaxDatapathDieReduction = red
				c.MaxDieReductionDesign = d.Name
			}
		} else {
			c.FirewireAreaRatio = gb.DieArea / lb.DieArea
		}

		// Packing overhead: flow b area over flow a area, per arch. The
		// relative-reduction metric is ill-conditioned when the baseline
		// overhead is near zero, so only designs where the LUT flow pays
		// a material overhead participate.
		ovG := gb.DieArea/ga.DieArea - 1
		ovL := lb.DieArea/la.DieArea - 1
		if ovL > 0.15 && d.Datapath {
			red := 1 - ovG/ovL
			c.AvgPackingOverheadReduction += red
			nOverhead++
			if red > c.MaxPackingOverheadReduction {
				c.MaxPackingOverheadReduction = red
				c.MaxPackingOverheadDesign = d.Name
			}
		}

		// Slack improvement on the full flow, normalized by the design's
		// clock period so negative baselines stay interpretable.
		if gb.ClockPeriod > 0 {
			impr := (gb.AvgTopSlack - lb.AvgTopSlack) / gb.ClockPeriod
			c.AvgSlackImprovement += impr
			nSlack++
			if impr > c.MaxSlackImprovement {
				c.MaxSlackImprovement = impr
				c.MaxSlackDesign = d.Name
			}
		}

		// Performance degradation from flow a to flow b.
		degG := ga.AvgTopSlack - gb.AvgTopSlack
		degL := la.AvgTopSlack - lb.AvgTopSlack
		if degL > 0.5 {
			c.AvgPerfDegradationReduction += 1 - degG/degL
			nDeg++
		}
	}
	if nDatapath > 0 {
		c.AvgDatapathDieReduction /= float64(nDatapath)
	}
	if nOverhead > 0 {
		c.AvgPackingOverheadReduction /= float64(nOverhead)
	}
	if nSlack > 0 {
		c.AvgSlackImprovement /= float64(nSlack)
	}
	if nDeg > 0 {
		c.AvgPerfDegradationReduction /= float64(nDeg)
	}
	return c
}

// String renders the claims against the paper's numbers.
func (c Claims) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Derived Section 3.2 claims (measured vs paper):\n")
	fmt.Fprintf(&sb, "  datapath die-area reduction (avg): %6.1f%%   (paper ~32%%)\n", 100*c.AvgDatapathDieReduction)
	fmt.Fprintf(&sb, "  datapath die-area reduction (max): %6.1f%%   on %s (paper: FPU ~40%%)\n", 100*c.MaxDatapathDieReduction, c.MaxDieReductionDesign)
	fmt.Fprintf(&sb, "  packing-overhead reduction (avg):  %6.1f%%   (paper 48.37%%)\n", 100*c.AvgPackingOverheadReduction)
	fmt.Fprintf(&sb, "  packing-overhead reduction (max):  %6.1f%%   on %s (paper: Network Switch 88.6%%)\n", 100*c.MaxPackingOverheadReduction, c.MaxPackingOverheadDesign)
	fmt.Fprintf(&sb, "  slack improvement (avg):           %6.1f%%   of the clock period (paper ~18%% of slack)\n", 100*c.AvgSlackImprovement)
	fmt.Fprintf(&sb, "  slack improvement (max):           %6.1f%%   on %s (paper: FPU ~40%%)\n", 100*c.MaxSlackImprovement, c.MaxSlackDesign)
	fmt.Fprintf(&sb, "  perf-degradation reduction (avg):  %6.1f%%   (paper ~68%%)\n", 100*c.AvgPerfDegradationReduction)
	fmt.Fprintf(&sb, "  Firewire die-area ratio gran/LUT:  %6.2f    (paper > 1: granular loses)\n", c.FirewireAreaRatio)
	return sb.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Fig2Text renders the Figure 2 / Section 2.1 function analysis.
func Fig2Text() string {
	rep := logic.AnalyzeFig2()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 2.1 / Figure 2: 3-input function analysis\n")
	fmt.Fprintf(&sb, "  S3 gate (MUX + 2×ND2WI), fixed select:   %d/256 implementable (paper: \"at least 196\")\n", rep.PerSelectFeasible[0])
	fmt.Fprintf(&sb, "  S3 gate, free select choice:             %d/256 implementable\n", rep.Feasible)
	fmt.Fprintf(&sb, "  globally infeasible functions by Figure 2 category:\n")
	for _, cat := range []logic.S3Category{logic.S3CatND2XOR, logic.S3CatND2XNOR,
		logic.S3CatXOR2, logic.S3CatXNOR2, logic.S3CatXOR3} {
		fmt.Fprintf(&sb, "    %-45s %d\n", cat.String()+":", rep.InfeasibleByCategory[cat])
	}
	fmt.Fprintf(&sb, "  modified S3 cell (Figure 3) complete:    %v (implements all 256)\n", logic.ModifiedS3Complete())
	return sb.String()
}

// SweepPoint is one granularity-sweep sample (experiment E8).
type SweepPoint struct {
	Arch        string
	Slots       string
	PLBArea     float64
	DieArea     float64
	AvgTopSlack float64
	UsedPLBs    int
}

// GranularitySweep runs one design across a family of PLB
// architectures of increasing granularity (experiment E8).
func GranularitySweep(d bench.Design, archs []*cells.PLBArch, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	clock := 0.0
	for _, arch := range archs {
		rep, err := RunFlow(d, Config{Arch: arch, Flow: FlowB, ClockPeriod: clock, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("sweep %s: %w", arch.Name, err)
		}
		if clock == 0 {
			clock = rep.ClockPeriod
		}
		out = append(out, SweepPoint{
			Arch: arch.Name, Slots: arch.SlotSummary(), PLBArea: arch.Area,
			DieArea: rep.DieArea, AvgTopSlack: rep.AvgTopSlack,
			UsedPLBs: rep.Rows * rep.Cols,
		})
	}
	return out, nil
}

// DefaultSweepArchs returns the E8 architecture family: from coarse
// (LUT-heavy) to fine (MUX-rich) granularity, plus an FF-rich variant
// for the Firewire observation.
func DefaultSweepArchs() []*cells.PLBArch {
	return []*cells.PLBArch{
		cells.LUTPLB(),
		cells.GranularPLB(),
		cells.CustomPLB("coarse-lut2", 0, 0, 1, 2, 1),
		cells.CustomPLB("fine-mux4", 3, 1, 1, 0, 1),
		cells.CustomPLB("fine-mux6", 4, 2, 2, 0, 1),
		cells.CustomPLB("ff-rich", 2, 1, 1, 0, 2),
	}
}
