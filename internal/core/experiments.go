package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/defect"
	"vpga/internal/logic"
	"vpga/internal/obs"
	"vpga/internal/route"
)

// Matrix holds the full 4-design × 2-architecture × 2-flow experiment
// of Tables 1 and 2.
type Matrix struct {
	Designs []bench.Design
	// Reports[design][arch][flow]. Cells whose run failed (or was
	// skipped because its clock-pinning run failed) stay nil; the
	// failure itself is in Errors.
	Reports map[string]map[string]map[string]*Report
	// Errors is the ledger of failed and skipped runs, sorted by
	// (design, arch, flow) so it is deterministic at any parallelism.
	Errors []*FlowError
}

// MatrixOptions configures a matrix run.
type MatrixOptions struct {
	Seed        int64
	PlaceEffort int
	// PlaceWorkers sets each run's annealer worker count (see
	// Config.PlaceWorkers); reports are bit-identical at any setting.
	PlaceWorkers int
	Verify       bool
	// Stages, when set, is the stage-granular build cache every cell
	// runs against (see Config.Stages): cells sharing a key-chain
	// prefix — every clock-pinned variant of one (design, arch), both
	// flows of one placement — compute it once. Pure acceleration:
	// reports are bit-identical with or without it.
	Stages *StageCache
	// Parallel bounds the number of concurrently executing flow runs:
	// 0 uses GOMAXPROCS, 1 forces fully sequential execution. For a
	// fixed seed the resulting reports are identical at any setting —
	// every run's inputs (design, arch, flow, pinned clock, seed) are
	// independent of scheduling.
	Parallel int
	// Progress, when non-nil, receives one line per completed run.
	// Calls are serialized and delivered in canonical (design, arch,
	// flow) order at any Parallel setting, so progress output is
	// deterministic; a cell's line may therefore buffer briefly while
	// an earlier cell is still running.
	Progress func(string)
	// PerRunTimeout bounds the wall time of each flow run; an expired
	// run fails with Stage "timeout" (0 = no per-run bound).
	PerRunTimeout time.Duration
	// ContinueOnError keeps the matrix going past failing cells: the
	// failures land in Matrix.Errors and the matrix comes back
	// partially populated instead of aborting on the first error.
	ContinueOnError bool
	// Defects injects a fabric defect map into every run. Defective
	// runs go through the bounded repair ladder (RunFlowRepair).
	Defects *defect.Map
	// RepairBudget caps repair escalations (0 = DefaultRepairBudget).
	RepairBudget int
	// Trace, when set, records every run's stage spans and solver
	// counters; runs map onto tracer worker rows as pool slots free up,
	// so the exported Chrome trace has one row per worker. Tracing
	// never changes reports (see Report.StripMetrics).
	Trace *obs.Tracer
}

// testPanicHook, when set by a test, is called at the top of every
// supervised run and may panic to exercise worker panic isolation.
var testPanicHook func(design, arch string, flow FlowKind)

// supervisedRun executes one flow run under the supervisor: a per-run
// timeout, panic isolation (a crashed worker becomes a *FlowError with
// Stage "panic" instead of taking down the process), and the repair
// ladder when a defect map is present.
func supervisedRun(ctx context.Context, d bench.Design, cfg Config, timeout time.Duration) (*Report, error) {
	rep, _, err := supervisedRunFull(ctx, d, cfg, timeout, false)
	return rep, err
}

// supervisedRunFull is supervisedRun optionally surfacing the physical
// artifacts (clean-fabric runs only: the repair ladder reports without
// them).
func supervisedRunFull(ctx context.Context, d bench.Design, cfg Config, timeout time.Duration, wantArtifacts bool) (rep *Report, art *Artifacts, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			rep, art = nil, nil
			err = &FlowError{Design: d.Name, Arch: cfg.Arch.Name, Flow: cfg.Flow.String(),
				Stage: "panic", Err: fmt.Errorf("%v\n%s", r, debug.Stack())}
		}
	}()
	if testPanicHook != nil {
		testPanicHook(d.Name, cfg.Arch.Name, cfg.Flow)
	}
	if cfg.Defects != nil {
		rep, err = RunFlowRepair(ctx, d, cfg)
		return rep, nil, err
	}
	rep, art, err = execFlow(ctx, d, cfg)
	if !wantArtifacts {
		art = nil
	}
	return rep, art, err
}

// asFlowError coerces err into a *FlowError for the ledger. It walks
// the wrap chain with errors.As — a stage error wrapped by fmt.Errorf
// keeps its real failing stage instead of degrading to "flow".
func asFlowError(d bench.Design, arch *cells.PLBArch, flow FlowKind, err error) *FlowError {
	var fe *FlowError
	if errors.As(err, &fe) {
		return fe
	}
	return &FlowError{Design: d.Name, Arch: arch.Name, Flow: flow.String(), Stage: "flow", Err: err}
}

// progressEmitter delivers Progress lines outside the pool mutex:
// every matrix cell holds a pre-assigned ticket (its canonical
// (design, arch, flow) index), a worker deposits its rendered line —
// or an empty placeholder for a failed cell — and returns to the pool
// immediately; a single emitter goroutine delivers lines one at a
// time in ticket order. Callbacks therefore stay serialized and
// arrive in the same order at any worker count, but a slow — or even
// matrix-re-entrant — callback can no longer hold the pool mutex and
// serialize or deadlock the workers.
type progressEmitter struct {
	cb   func(string)
	mu   sync.Mutex
	cond *sync.Cond
	next int            // next ticket to deliver
	buf  map[int]string // deposited lines awaiting delivery
	done bool           // no further deposits will arrive
	quit chan struct{}  // closed when the emitter goroutine drains
}

func newProgressEmitter(cb func(string)) *progressEmitter {
	e := &progressEmitter{cb: cb, buf: map[int]string{}, quit: make(chan struct{})}
	e.cond = sync.NewCond(&e.mu)
	go e.loop()
	return e
}

func (e *progressEmitter) deposit(ticket int, line string) {
	e.mu.Lock()
	e.buf[ticket] = line
	e.mu.Unlock()
	e.cond.Signal()
}

func (e *progressEmitter) loop() {
	defer close(e.quit)
	e.mu.Lock()
	for {
		if line, ok := e.buf[e.next]; ok {
			delete(e.buf, e.next)
			e.next++
			e.mu.Unlock()
			if line != "" { // failed cells deposit a placeholder
				e.cb(line) // outside the lock: the callback may block freely
			}
			e.mu.Lock()
			continue
		}
		if e.done {
			// Cells skipped by an abort never deposit; jump their gap
			// and deliver whatever remains in ticket order.
			if len(e.buf) == 0 {
				e.mu.Unlock()
				return
			}
			min := -1
			for t := range e.buf {
				if min < 0 || t < min {
					min = t
				}
			}
			e.next = min
			continue
		}
		e.cond.Wait()
	}
}

// close ends the stream and blocks until every deposited line has been
// delivered. Callers must have finished all deposits.
func (e *progressEmitter) close() {
	e.mu.Lock()
	e.done = true
	e.mu.Unlock()
	e.cond.Signal()
	<-e.quit
}

// sortLedger orders the error ledger by (design, arch, flow) so it is
// identical at any worker count.
func sortLedger(errs []*FlowError) {
	sort.Slice(errs, func(i, j int) bool {
		a, b := errs[i], errs[j]
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Arch != b.Arch {
			return a.Arch < b.Arch
		}
		return a.Flow < b.Flow
	})
}

// RunMatrix executes every (design, arch, flow) combination on a
// bounded worker pool under the flow supervisor. The clock period of
// each design is fixed across its four runs — 1.2× the post-layout
// arrival of the first run — so slack comparisons are apples to
// apples, mirroring the paper's single cycle time per table. Designs
// run concurrently; within a design the three clock-dependent runs fan
// out as soon as the clock-pinning run finishes.
//
// Failures never crash or hang the pool: a panicking worker, a timed
// out run, or an unroutable defect map becomes a *FlowError in the
// returned matrix's ledger. With opts.ContinueOnError the remaining
// cells still run and the partially-populated matrix is returned with
// a nil error; otherwise the pool drains and RunMatrix returns the
// partial matrix together with the first error. Cancelling ctx stops
// the matrix at the next iteration boundary of every in-flight run.
func RunMatrix(ctx context.Context, suite bench.Suite, opts MatrixOptions) (*Matrix, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	par := opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	m := &Matrix{Designs: suite.All(), Reports: map[string]map[string]map[string]*Report{}}
	archs := []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()}
	// All cells share one router-state pool: the grids are similarly
	// shaped, so after warm-up each run checks out ready-sized scratch
	// instead of allocating it. Reuse never changes reports.
	pool := route.NewPool()

	// Report maps are pre-built sequentially so workers only write leaf
	// entries (under mu).
	for _, d := range m.Designs {
		m.Reports[d.Name] = map[string]map[string]*Report{}
		for _, arch := range archs {
			m.Reports[d.Name][arch.Name] = map[string]*Report{}
		}
	}

	var (
		sem      = make(chan struct{}, par)
		mu       sync.Mutex // guards Reports, Errors, firstErr
		firstErr error
		wg       sync.WaitGroup
		emitter  *progressEmitter
	)
	if opts.Progress != nil {
		emitter = newProgressEmitter(opts.Progress)
	}
	// Every cell owns a pre-assigned progress ticket — its canonical
	// index in (design, arch, flow) order — so the emitter delivers
	// lines in the same order at any worker count.
	flows := []FlowKind{FlowA, FlowB}
	seq := func(di, ai, fi int) int { return di*len(archs)*len(flows) + ai*len(flows) + fi }
	skip := func(ticket int) {
		if emitter != nil {
			emitter.deposit(ticket, "")
		}
	}
	fail := func(fe *FlowError) {
		mu.Lock()
		m.Errors = append(m.Errors, fe)
		if firstErr == nil {
			firstErr = fe
		}
		mu.Unlock()
	}
	// runOne executes one flow run on a pool slot; it returns nil
	// without running when the matrix is already aborting. A nil
	// return always deposits the cell's placeholder ticket.
	runOne := func(d bench.Design, arch *cells.PLBArch, flow FlowKind, clock float64, ticket int) *Report {
		sem <- struct{}{}
		defer func() { <-sem }()
		mu.Lock()
		bail := firstErr != nil && !opts.ContinueOnError
		mu.Unlock()
		cfg := Config{
			Arch: arch, Flow: flow, ClockPeriod: clock,
			Seed: opts.Seed, PlaceEffort: opts.PlaceEffort, PlaceWorkers: opts.PlaceWorkers,
			Verify: opts.Verify, Defects: opts.Defects, RepairBudget: opts.RepairBudget,
			Stages: opts.Stages, routePool: pool,
		}
		if bail {
			skip(ticket)
			return nil
		}
		if err := ctxFlowErr(ctx, d, cfg); err != nil {
			fail(err)
			skip(ticket)
			return nil
		}
		cfg.Trace = opts.Trace.NewRun(d.Name + "/" + arch.Name + "/" + flow.String())
		defer cfg.Trace.Close()
		rep, err := supervisedRun(ctx, d, cfg, opts.PerRunTimeout)
		if err != nil {
			fail(asFlowError(d, arch, flow, err))
			skip(ticket)
			return nil
		}
		return rep
	}
	store := func(d bench.Design, arch *cells.PLBArch, flow FlowKind, rep *Report, ticket int) {
		line := ""
		if emitter != nil {
			line = rep.summary()
		}
		mu.Lock()
		m.Reports[d.Name][arch.Name][flow.String()] = rep
		mu.Unlock()
		// The Progress callback runs on the emitter goroutine, never
		// under mu: a slow callback cannot serialize the pool.
		if emitter != nil {
			emitter.deposit(ticket, line)
		}
	}
	// skipDependents records the three clock-dependent cells of a design
	// whose clock-pinning run failed, so the ledger accounts for every
	// cell that did not produce a report.
	skipDependents := func(di int, d bench.Design) {
		for ai, arch := range archs {
			for fi, flow := range flows {
				if ai == 0 && flow == FlowA {
					continue
				}
				fail(&FlowError{Design: d.Name, Arch: arch.Name, Flow: flow.String(),
					Stage: "skipped", Err: fmt.Errorf("clock-pinning run failed")})
				skip(seq(di, ai, fi))
			}
		}
	}

	for di, d := range m.Designs {
		wg.Add(1)
		go func(di int, d bench.Design) {
			defer wg.Done()
			// The first run pins the design's clock period for all four
			// runs: 1.2× its post-layout arrival, so slacks hover near
			// zero like the paper's Table 2.
			first := runOne(d, archs[0], FlowA, 0, seq(di, 0, 0))
			if first == nil {
				if opts.ContinueOnError {
					skipDependents(di, d)
				}
				// Without ContinueOnError the dependents never deposit;
				// the emitter skips their tickets when it drains.
				return
			}
			clock := 1.2 * first.MaxArrival
			first.Reclock(clock)
			store(d, archs[0], FlowA, first, seq(di, 0, 0))

			// Fan out the three clock-dependent runs.
			var iwg sync.WaitGroup
			for ai, arch := range archs {
				for fi, flow := range flows {
					if ai == 0 && flow == FlowA {
						continue
					}
					iwg.Add(1)
					go func(ai, fi int, arch *cells.PLBArch, flow FlowKind) {
						defer iwg.Done()
						ticket := seq(di, ai, fi)
						if rep := runOne(d, arch, flow, clock, ticket); rep != nil {
							store(d, arch, flow, rep, ticket)
						}
					}(ai, fi, arch, flow)
				}
			}
			iwg.Wait()
		}(di, d)
	}
	wg.Wait()
	if emitter != nil {
		emitter.close()
	}
	sortLedger(m.Errors)
	if firstErr != nil && !opts.ContinueOnError {
		return m, firstErr
	}
	return m, nil
}

// Get returns one report.
func (m *Matrix) Get(design, arch string, flow FlowKind) *Report {
	return m.Reports[design][arch][flow.String()]
}

// StripMetrics applies Report.StripMetrics to every populated cell, so
// matrices from different worker counts or tracing settings compare
// bit-identical.
func (m *Matrix) StripMetrics() {
	for _, byArch := range m.Reports {
		for _, byFlow := range byArch {
			for _, rep := range byFlow {
				rep.StripMetrics()
			}
		}
	}
}

// StageTotals aggregates the per-stage timings of every populated cell
// across the matrix's workers (empty unless the matrix ran with
// MatrixOptions.Trace set).
func (m *Matrix) StageTotals() []obs.StageTiming {
	var lists [][]obs.StageTiming
	for _, byArch := range m.Reports {
		for _, byFlow := range byArch {
			for _, rep := range byFlow {
				if rep != nil && len(rep.Stages) > 0 {
					lists = append(lists, rep.Stages)
				}
			}
		}
	}
	return obs.Aggregate(lists...)
}

// Table1 renders the die-area comparison in the layout of the paper's
// Table 1.
func (m *Matrix) Table1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Area comparison (die area, NAND2-equivalent units)\n")
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s %12s\n", "", "Granular PLB", "", "LUT PLB", "")
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s %12s\n", "Design", "flow a", "flow b", "flow a", "flow b")
	for _, d := range m.Designs {
		g := m.Reports[d.Name]["granular-plb"]
		l := m.Reports[d.Name]["lut-plb"]
		fmt.Fprintf(&sb, "%-16s %12.0f %12.0f %12.0f %12.0f\n", d.Name,
			g["flow a"].DieArea, g["flow b"].DieArea,
			l["flow a"].DieArea, l["flow b"].DieArea)
	}
	return sb.String()
}

// Table2 renders the timing comparison in the layout of the paper's
// Table 2 (average slack over the top-10 critical paths, ps).
func (m *Matrix) Table2() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: Timing comparison (avg slack over paths 1-10, ps)\n")
	fmt.Fprintf(&sb, "%-16s %10s %12s %12s %12s %12s %10s\n",
		"Design", "gates", "gran flow a", "gran flow b", "lut flow a", "lut flow b", "clock")
	for _, d := range m.Designs {
		g := m.Reports[d.Name]["granular-plb"]
		l := m.Reports[d.Name]["lut-plb"]
		fmt.Fprintf(&sb, "%-16s %10.0f %12.1f %12.1f %12.1f %12.1f %10.0f\n", d.Name,
			l["flow b"].GateCount,
			g["flow a"].AvgTopSlack, g["flow b"].AvgTopSlack,
			l["flow a"].AvgTopSlack, l["flow b"].AvgTopSlack,
			g["flow b"].ClockPeriod)
	}
	return sb.String()
}

// Claims holds the derived Section 3.2 statistics.
type Claims struct {
	// AvgDatapathDieReduction: average die-area reduction of flow b on
	// the three datapath designs, granular vs LUT (paper: ~32%).
	AvgDatapathDieReduction float64
	// MaxDatapathDieReduction and the design achieving it (paper: FPU,
	// ~40%).
	MaxDatapathDieReduction float64
	MaxDieReductionDesign   string
	// AvgPackingOverheadReduction: how much smaller the flow a→b area
	// overhead is with the granular PLB (paper: 48.37% average).
	AvgPackingOverheadReduction float64
	MaxPackingOverheadReduction float64
	MaxPackingOverheadDesign    string
	// AvgSlackImprovement on flow b, granular vs LUT, over all designs
	// (paper: ~18% average, FPU ~40%).
	AvgSlackImprovement float64
	MaxSlackImprovement float64
	MaxSlackDesign      string
	// AvgPerfDegradationReduction: how much less slack is lost going
	// from flow a to flow b with the granular PLB (paper: ~68%).
	AvgPerfDegradationReduction float64
	// FirewireAreaRatio is granular/LUT die area on the
	// sequential-dominated design (paper: > 1, a regression).
	FirewireAreaRatio float64
}

// DeriveClaims computes the Section 3.2 statistics from a matrix.
func (m *Matrix) DeriveClaims() Claims {
	var c Claims
	nDatapath := 0
	nOverhead := 0
	nSlack := 0
	nDeg := 0
	for _, d := range m.Designs {
		g := m.Reports[d.Name]["granular-plb"]
		l := m.Reports[d.Name]["lut-plb"]
		gb, ga := g["flow b"], g["flow a"]
		lb, la := l["flow b"], l["flow a"]

		if d.Datapath {
			red := 1 - gb.DieArea/lb.DieArea
			c.AvgDatapathDieReduction += red
			nDatapath++
			if red > c.MaxDatapathDieReduction {
				c.MaxDatapathDieReduction = red
				c.MaxDieReductionDesign = d.Name
			}
		} else {
			c.FirewireAreaRatio = gb.DieArea / lb.DieArea
		}

		// Packing overhead: flow b area over flow a area, per arch. The
		// relative-reduction metric is ill-conditioned when the baseline
		// overhead is near zero, so only designs where the LUT flow pays
		// a material overhead participate.
		ovG := gb.DieArea/ga.DieArea - 1
		ovL := lb.DieArea/la.DieArea - 1
		if ovL > 0.15 && d.Datapath {
			red := 1 - ovG/ovL
			c.AvgPackingOverheadReduction += red
			nOverhead++
			if red > c.MaxPackingOverheadReduction {
				c.MaxPackingOverheadReduction = red
				c.MaxPackingOverheadDesign = d.Name
			}
		}

		// Slack improvement on the full flow, normalized by the design's
		// clock period so negative baselines stay interpretable.
		if gb.ClockPeriod > 0 {
			impr := (gb.AvgTopSlack - lb.AvgTopSlack) / gb.ClockPeriod
			c.AvgSlackImprovement += impr
			nSlack++
			if impr > c.MaxSlackImprovement {
				c.MaxSlackImprovement = impr
				c.MaxSlackDesign = d.Name
			}
		}

		// Performance degradation from flow a to flow b.
		degG := ga.AvgTopSlack - gb.AvgTopSlack
		degL := la.AvgTopSlack - lb.AvgTopSlack
		if degL > 0.5 {
			c.AvgPerfDegradationReduction += 1 - degG/degL
			nDeg++
		}
	}
	if nDatapath > 0 {
		c.AvgDatapathDieReduction /= float64(nDatapath)
	}
	if nOverhead > 0 {
		c.AvgPackingOverheadReduction /= float64(nOverhead)
	}
	if nSlack > 0 {
		c.AvgSlackImprovement /= float64(nSlack)
	}
	if nDeg > 0 {
		c.AvgPerfDegradationReduction /= float64(nDeg)
	}
	return c
}

// String renders the claims against the paper's numbers.
func (c Claims) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Derived Section 3.2 claims (measured vs paper):\n")
	fmt.Fprintf(&sb, "  datapath die-area reduction (avg): %6.1f%%   (paper ~32%%)\n", 100*c.AvgDatapathDieReduction)
	fmt.Fprintf(&sb, "  datapath die-area reduction (max): %6.1f%%   on %s (paper: FPU ~40%%)\n", 100*c.MaxDatapathDieReduction, c.MaxDieReductionDesign)
	fmt.Fprintf(&sb, "  packing-overhead reduction (avg):  %6.1f%%   (paper 48.37%%)\n", 100*c.AvgPackingOverheadReduction)
	fmt.Fprintf(&sb, "  packing-overhead reduction (max):  %6.1f%%   on %s (paper: Network Switch 88.6%%)\n", 100*c.MaxPackingOverheadReduction, c.MaxPackingOverheadDesign)
	fmt.Fprintf(&sb, "  slack improvement (avg):           %6.1f%%   of the clock period (paper ~18%% of slack)\n", 100*c.AvgSlackImprovement)
	fmt.Fprintf(&sb, "  slack improvement (max):           %6.1f%%   on %s (paper: FPU ~40%%)\n", 100*c.MaxSlackImprovement, c.MaxSlackDesign)
	fmt.Fprintf(&sb, "  perf-degradation reduction (avg):  %6.1f%%   (paper ~68%%)\n", 100*c.AvgPerfDegradationReduction)
	fmt.Fprintf(&sb, "  Firewire die-area ratio gran/LUT:  %6.2f    (paper > 1: granular loses)\n", c.FirewireAreaRatio)
	return sb.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Fig2Text renders the Figure 2 / Section 2.1 function analysis.
func Fig2Text() string {
	rep := logic.AnalyzeFig2()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 2.1 / Figure 2: 3-input function analysis\n")
	fmt.Fprintf(&sb, "  S3 gate (MUX + 2×ND2WI), fixed select:   %d/256 implementable (paper: \"at least 196\")\n", rep.PerSelectFeasible[0])
	fmt.Fprintf(&sb, "  S3 gate, free select choice:             %d/256 implementable\n", rep.Feasible)
	fmt.Fprintf(&sb, "  globally infeasible functions by Figure 2 category:\n")
	for _, cat := range []logic.S3Category{logic.S3CatND2XOR, logic.S3CatND2XNOR,
		logic.S3CatXOR2, logic.S3CatXNOR2, logic.S3CatXOR3} {
		fmt.Fprintf(&sb, "    %-45s %d\n", cat.String()+":", rep.InfeasibleByCategory[cat])
	}
	fmt.Fprintf(&sb, "  modified S3 cell (Figure 3) complete:    %v (implements all 256)\n", logic.ModifiedS3Complete())
	return sb.String()
}

// SweepPoint is one granularity-sweep sample (experiment E8).
type SweepPoint struct {
	Arch        string
	Slots       string
	PLBArea     float64
	DieArea     float64
	AvgTopSlack float64
	UsedPLBs    int
}

// SweepOptions parameterizes the exploration drivers (granularity and
// routing sweeps, domain exploration). It replaces their former
// positional seed arguments: one struct carries the seed, the worker
// bound, and an optional tracer, and gains new knobs without another
// signature change. The zero value is valid — seed 0, all cores, no
// tracing.
type SweepOptions struct {
	Seed int64
	// Parallel bounds concurrently executing flow runs where the driver
	// parallelizes (0 = GOMAXPROCS, 1 = sequential). Results are
	// bit-identical at any setting.
	Parallel int
	// PlaceWorkers sets each run's annealer worker count (see
	// Config.PlaceWorkers); results are bit-identical at any setting.
	PlaceWorkers int
	// Trace, when set, records every sweep run's stage spans and solver
	// counters (see internal/obs). Tracing never changes results.
	Trace *obs.Tracer
	// Stages, when set, is the stage-granular build cache every sweep
	// run executes against (see Config.Stages). A clock-target sweep
	// shares everything through placement; re-running a sweep restores
	// every stage. Pure acceleration: results are bit-identical with or
	// without it.
	Stages *StageCache
}

// workers resolves the worker bound.
func (o SweepOptions) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// GranularitySweep is the deprecated positional-seed form of
// RunGranularitySweep.
//
// Deprecated: use RunGranularitySweep with SweepOptions.
func GranularitySweep(ctx context.Context, d bench.Design, archs []*cells.PLBArch, seed int64) ([]SweepPoint, error) {
	return RunGranularitySweep(ctx, d, archs, SweepOptions{Seed: seed})
}

// RunGranularitySweep runs one design across a family of PLB
// architectures of increasing granularity (experiment E8). The first
// architecture pins the clock period; the remaining points then run
// concurrently (bounded by opts.Parallel) with deterministic results.
func RunGranularitySweep(ctx context.Context, d bench.Design, archs []*cells.PLBArch, opts SweepOptions) ([]SweepPoint, error) {
	if len(archs) == 0 {
		return nil, nil
	}
	pool := route.NewPool()
	point := func(arch *cells.PLBArch, clock float64) (SweepPoint, float64, error) {
		run := opts.Trace.NewRun("sweep/" + d.Name + "/" + arch.Name)
		rep, err := RunFlow(ctx, d, Config{Arch: arch, Flow: FlowB, ClockPeriod: clock,
			Seed: opts.Seed, PlaceWorkers: opts.PlaceWorkers, Trace: run,
			Stages: opts.Stages, routePool: pool})
		run.Close()
		if err != nil {
			return SweepPoint{}, 0, fmt.Errorf("sweep %s: %w", arch.Name, err)
		}
		return SweepPoint{
			Arch: arch.Name, Slots: arch.SlotSummary(), PLBArea: arch.Area,
			DieArea: rep.DieArea, AvgTopSlack: rep.AvgTopSlack,
			UsedPLBs: rep.Rows * rep.Cols,
		}, rep.ClockPeriod, nil
	}

	out := make([]SweepPoint, len(archs))
	first, clock, err := point(archs[0], 0)
	if err != nil {
		return nil, err
	}
	out[0] = first

	var (
		sem      = make(chan struct{}, opts.workers())
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for i := 1; i < len(archs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pt, _, err := point(archs[i], clock)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out[i] = pt
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// DefaultSweepArchs returns the E8 architecture family: from coarse
// (LUT-heavy) to fine (MUX-rich) granularity, plus an FF-rich variant
// for the Firewire observation. The family is defined declaratively by
// DefaultSweepArchSpecs so it can travel as JSON tickets.
func DefaultSweepArchs() []*cells.PLBArch {
	specs := DefaultSweepArchSpecs()
	out := make([]*cells.PLBArch, len(specs))
	for i, spec := range specs {
		arch, err := spec.Resolve()
		if err != nil {
			panic(fmt.Sprintf("core: default sweep arch %d: %v", i, err)) // unreachable: the family is static
		}
		out[i] = arch
	}
	return out
}
