package core

import (
	"fmt"
	"io"
	"sort"

	"vpga/internal/netlist"
	"vpga/internal/viamap"
)

// WriteFloorplan renders the packed PLB array as text — the
// reproduction's stand-in for the paper's GDSII output: an occupancy
// map of the array, a per-PLB inventory of configuration instances
// with their via personalizations, and fabric totals.
func WriteFloorplan(w io.Writer, rep *Report, art *Artifacts) error {
	if art.Pack == nil {
		return fmt.Errorf("core: floorplan requires a flow-b run (no PLB array)")
	}
	rows, cols := art.Pack.Rows, art.Pack.Cols
	fmt.Fprintf(w, "# %s on %s: %dx%d PLB array, die area %.0f\n", rep.Design, rep.Arch, rows, cols, rep.DieArea)

	// Occupancy map: instance count per PLB rendered as a digit
	// (0 = '.', >9 = '*').
	occ := make([]int, rows*cols)
	plbInsts := make([][]string, rows*cols)
	groupSeen := map[int32]int{}
	for i := range art.Prob.Objs {
		o := &art.Prob.Objs[i]
		if o.IsPad {
			continue
		}
		plb := art.Pack.PLBOf[i]
		if plb < 0 {
			continue
		}
		occ[plb]++
		for _, nodeID := range o.Nodes {
			n := art.Impl.Node(nodeID)
			label := n.Type
			if n.Kind == netlist.KindDFF {
				label = "FF"
			} else if n.Kind == netlist.KindGate && n.Type != "INV" && n.Type != "BUF" {
				if p, err := viamap.CachedProgram(n.Type, n.Func.Extend(3).Bits); err == nil {
					label = p.String()
				}
			}
			if n.Group != 0 {
				if prev, ok := groupSeen[n.Group]; ok && prev == plb {
					// Second half of an FA macro in the same PLB: one
					// inventory line covers both outputs.
					continue
				}
				groupSeen[n.Group] = plb
			}
			plbInsts[plb] = append(plbInsts[plb], label)
		}
	}
	fmt.Fprintln(w, "# occupancy ('.'=empty, digit=instances, '*'=10+)")
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			n := occ[r*cols+c]
			switch {
			case n == 0:
				fmt.Fprint(w, ".")
			case n > 9:
				fmt.Fprint(w, "*")
			default:
				fmt.Fprintf(w, "%d", n)
			}
		}
		fmt.Fprintln(w)
	}

	// Per-PLB inventory.
	fmt.Fprintln(w, "# inventory: PLB(row,col): instances")
	for plb, insts := range plbInsts {
		if len(insts) == 0 {
			continue
		}
		sort.Strings(insts)
		fmt.Fprintf(w, "PLB(%d,%d):", plb/cols, plb%cols)
		for _, s := range insts {
			fmt.Fprintf(w, " %s", s)
		}
		fmt.Fprintln(w)
	}

	// Routing summary with detailed tracks.
	if art.Routes != nil {
		ta := art.Routes.AssignTracks()
		fmt.Fprintf(w, "# routing: wirelength %.0f, logic vias %d, routing vias %d, peak track %d, unassigned %d\n",
			rep.Wirelength, rep.PopulatedVias, ta.RoutingVias, ta.PeakTrack, ta.Unassigned)
	}
	return nil
}
