// Package core orchestrates the complete VPGA implementation flow of
// the paper's Figure 6 — RTL → synthesis → technology mapping →
// regularity-driven compaction → placement → (flow b only) packing
// into the PLB array → routing → post-layout static timing — and
// provides the experiment drivers that regenerate every table and
// figure of the evaluation section.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"vpga/internal/aig"
	"vpga/internal/artifact"
	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/defect"
	"vpga/internal/faultinject"
	"vpga/internal/netlist"
	"vpga/internal/obs"
	"vpga/internal/pack"
	"vpga/internal/place"
	"vpga/internal/power"
	"vpga/internal/route"
	"vpga/internal/rtl"
	"vpga/internal/sta"
	"vpga/internal/techmap"
	"vpga/internal/viamap"
)

// FlowKind selects between the paper's two evaluation flows.
type FlowKind int

const (
	// FlowA skips the packing step: a standard-cell-style ASIC flow
	// using the PLB component library.
	FlowA FlowKind = iota
	// FlowB is the full flow producing a legal regular PLB array.
	FlowB
)

// String names the flow as in the paper's tables.
func (f FlowKind) String() string {
	if f == FlowA {
		return "flow a"
	}
	return "flow b"
}

// Config parameterizes one flow run.
type Config struct {
	Arch *cells.PLBArch
	Flow FlowKind
	// ClockPeriod in ps; zero auto-derives 1.2× the pre-layout arrival.
	ClockPeriod float64
	Seed        int64
	// PlaceEffort scales annealing moves per object (default 6).
	PlaceEffort int
	// PlaceWorkers sets the annealer's worker count (0 or 1 =
	// single-threaded). Reports are bit-identical at any setting — the
	// annealer's parallel kernel is deterministic — so this is a pure
	// throughput knob: it never enters FlowRequest or the report cache
	// key.
	PlaceWorkers int
	// SkipCompaction disables the regularity-driven compaction step
	// (ablation E4).
	SkipCompaction bool
	// Verify runs random simulation equivalence between the RTL
	// netlist and the final implementation netlist.
	Verify bool
	// Defects injects a fabric defect map: stuck PLB sites are excluded
	// from placement, dead tracks from routing, and via-faulted tiles
	// are penalized. Nil means a clean fabric.
	Defects *defect.Map
	// RouteCapacityScale widens (>1) or narrows (<1) the router's
	// per-edge capacity; zero means 1.0. The repair ladder raises it.
	RouteCapacityScale float64
	// RouteCellsScale > 1 coarsens the routing grid into fewer, wider
	// channels; the repair ladder raises it to dissolve topological
	// cuts a defect map carved into the finer grid.
	RouteCellsScale float64
	// RepairBudget bounds RunFlowRepair's escalation ladder: the number
	// of retries after the baseline attempt (0 uses DefaultRepairBudget,
	// negative disables retries).
	RepairBudget int
	// Trace, when set, records per-stage spans, solver counters and
	// repair attempts for this run (see internal/obs). Tracing is pure
	// observation: a traced run's report is bit-identical to an
	// untraced one after StripMetrics. Nil disables tracing at zero
	// hot-path cost.
	Trace *obs.Run
	// Checkpoints, when set, is the stage-granular build cache: the
	// post-refinement placement snapshot is stored here, and a later
	// run whose placement inputs match restores it and skips annealing
	// entirely (see checkpoint.go). Like Trace and PlaceWorkers it is
	// transport state — reports are bit-identical with or without it,
	// so it never enters the request cache key.
	Checkpoints *artifact.Store
	// routePool, when set, lends the router reusable working memory
	// (usage/history arrays, A* scratch) for the run. The experiment
	// drivers share one pool across their runs; results are
	// bit-identical with or without it, so like PlaceWorkers it stays
	// out of the request cache key.
	routePool *route.Pool
}

// Report collects every figure of merit a flow run produces.
type Report struct {
	Design string
	Arch   string
	Flow   string

	// GateCount is the paper's Table 1/2 "No. of gates": the mapped
	// netlist area in 2-input-NAND equivalents before compaction.
	GateCount float64
	// CompactionReduction is the fractional gate-area reduction of the
	// compaction step (paper: ~15% average).
	CompactionReduction float64
	// DieArea: flow a = placed core area; flow b = PLB array area.
	DieArea float64
	Rows    int
	Cols    int
	// Utilization is the used-PLB fraction (flow b only).
	Utilization float64
	// Perturbation is the packing displacement in PLB pitches (flow b).
	Perturbation float64
	Wirelength   float64
	Overflow     int
	// ChannelTracks is the router's per-edge track capacity (the channel
	// width the run routed against); PeakTrackDemand is the peak
	// per-edge track demand in tracks (utilization x capacity). Both are
	// deterministic QoR figures, not wall-clock artifacts.
	ChannelTracks   int
	PeakTrackDemand float64

	ClockPeriod float64
	AvgTopSlack float64 // Table 2 metric: average slack, paths 1–10
	WorstSlack  float64
	MaxArrival  float64

	ConfigCounts    map[string]int
	FullAdders      int
	BuffersInserted int
	// Via personalization statistics (flow b): populated vias across
	// the fabric, potential sites per PLB tile, and the SRAM bits an
	// FPGA-style block would need for the same programmability.
	PopulatedVias  int
	ViaSitesPerPLB int
	// PowerUW is the post-layout switching+leakage power estimate at
	// the report's clock (µW).
	PowerUW float64
	Runtime time.Duration

	// Stages and Solver are the observability block, populated only
	// when Config.Trace is set: per-stage wall-clock timings and the
	// solver counters (annealer passes/moves, router negotiation
	// trajectory, repair attempts). Like Runtime they are wall-clock
	// artifacts of one execution — StripMetrics zeroes all three before
	// bit-identical report comparisons.
	Stages []obs.StageTiming
	Solver *obs.SolverMetrics

	// Repair provenance, populated by RunFlowRepair: how many
	// escalations the run needed (0 = clean first attempt) and the full
	// attempt ledger, including the failures that triggered escalation.
	Escalations int
	Attempts    []AttemptRecord
	// DefectSummary is the injected defect map's one-line description
	// (empty for clean-fabric runs).
	DefectSummary string
}

// StripMetrics zeroes the report's wall-clock and observability
// fields — Runtime, Stages, Solver. It is the one shared helper the
// determinism suite uses before bit-identical comparisons, so reports
// compare equal across worker counts, scheduling orders, and tracing
// on vs. off.
func (r *Report) StripMetrics() {
	if r == nil {
		return
	}
	r.Runtime = 0
	r.Stages = nil
	r.Solver = nil
}

// Clone deep-copies the report — maps, slices and the solver block
// included — so a stored report (the service's content-addressed
// cache) and the copies served from it can never alias a caller's
// mutations.
func (r *Report) Clone() *Report {
	if r == nil {
		return nil
	}
	cp := *r
	if r.ConfigCounts != nil {
		cp.ConfigCounts = make(map[string]int, len(r.ConfigCounts))
		for k, v := range r.ConfigCounts {
			cp.ConfigCounts[k] = v
		}
	}
	if r.Stages != nil {
		cp.Stages = append([]obs.StageTiming(nil), r.Stages...)
	}
	if r.Solver != nil {
		s := *r.Solver
		s.RouteOverflows = append([]int(nil), r.Solver.RouteOverflows...)
		cp.Solver = &s
	}
	if r.Attempts != nil {
		cp.Attempts = append([]AttemptRecord(nil), r.Attempts...)
	}
	return &cp
}

// Reclock shifts the report's slack figures to a different clock
// period. Slack differences between endpoints are clock-independent,
// so the top-10 set and its ordering remain valid.
func (r *Report) Reclock(newClock float64) {
	delta := newClock - r.ClockPeriod
	r.ClockPeriod = newClock
	r.AvgTopSlack += delta
	r.WorstSlack += delta
}

// Artifacts carries the physical results of a flow run for tools that
// need more than the report (floorplan writers, via-map dumps).
type Artifacts struct {
	Impl   *netlist.Netlist
	Prob   *place.Problem
	Pack   *pack.Result
	Routes *route.Result
}

// FlowError is the structured failure record of one flow run: which
// cell of the experiment space failed, at which stage, on which repair
// attempt, and why. Supervisors key off the fields (Stage in
// particular) instead of parsing messages.
type FlowError struct {
	Design string
	Arch   string
	Flow   string
	// Stage names the failing flow stage: "rtl", "synth", "map",
	// "compact", "verify", "place", "sta", "pack", "viamap", "route",
	// "power" — or "panic" (a crashed worker), "timeout"/"cancelled"
	// (context expiry), "repair" (escalation budget exhausted),
	// "skipped" (dependent run not attempted).
	Stage string
	// Attempt is the repair-ladder rung (0 = baseline attempt).
	Attempt int
	Err     error
}

func (e *FlowError) Error() string {
	return fmt.Sprintf("core: %s/%s/%s: %s (attempt %d): %v",
		e.Design, e.Arch, e.Flow, e.Stage, e.Attempt, e.Err)
}

func (e *FlowError) Unwrap() error { return e.Err }

// flowErr wraps a stage failure as a *FlowError for one run.
func flowErr(d bench.Design, cfg Config, stage string, err error) *FlowError {
	arch := ""
	if cfg.Arch != nil {
		arch = cfg.Arch.Name
	}
	return &FlowError{Design: d.Name, Arch: arch, Flow: cfg.Flow.String(), Stage: stage, Err: err}
}

// stageFault consults the fault-injection harness at the named stage
// boundary (fault points "stage.<name>"). A fired fault fails the
// stage through the same *FlowError path a real error takes, so the
// repair ladder and the service's retry layer see injected and
// organic failures identically; a crash-kind fault kills the process
// here, modeling a SIGKILL landing between stages. Disabled injection
// costs one atomic load per stage.
func stageFault(d bench.Design, cfg Config, stage string) *FlowError {
	if faultinject.Active() == nil {
		return nil
	}
	if err := faultinject.Check("stage." + stage); err != nil {
		return flowErr(d, cfg, stage, err)
	}
	return nil
}

// ctxFlowErr reports a context expiry as a *FlowError, distinguishing
// timeouts from cancellations; it returns nil while ctx is live.
func ctxFlowErr(ctx context.Context, d bench.Design, cfg Config) *FlowError {
	err := ctx.Err()
	if err == nil {
		return nil
	}
	stage := "cancelled"
	// errors.Is, not ==: custom contexts and wrapped deadline errors
	// must classify as timeouts too.
	if errors.Is(err, context.DeadlineExceeded) {
		stage = "timeout"
	}
	return flowErr(d, cfg, stage, err)
}

// RunFlow pushes one design through the flow. The context cancels the
// run at stage and iteration boundaries; a run that completes without
// cancellation is bit-identical to an uncancellable one.
func RunFlow(ctx context.Context, d bench.Design, cfg Config) (*Report, error) {
	rep, _, err := RunFlowFull(ctx, d, cfg)
	return rep, err
}

// RunFlowFull is RunFlow returning the physical artifacts as well.
func RunFlowFull(ctx context.Context, d bench.Design, cfg Config) (*Report, *Artifacts, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.PlaceEffort == 0 {
		cfg.PlaceEffort = 6
	}
	rep := &Report{Design: d.Name, Arch: cfg.Arch.Name, Flow: cfg.Flow.String()}
	if cfg.Defects != nil {
		rep.DefectSummary = cfg.Defects.String()
	}
	if err := ctxFlowErr(ctx, d, cfg); err != nil {
		return nil, nil, err
	}

	// Synthesis front end.
	if fe := stageFault(d, cfg, "rtl"); fe != nil {
		return nil, nil, fe
	}
	end := cfg.Trace.Stage("rtl")
	rtlNet, err := compileRTL(d)
	end()
	if err != nil {
		return nil, nil, flowErr(d, cfg, "rtl", err)
	}
	if fe := stageFault(d, cfg, "synth"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("synth")
	des, err := aig.FromNetlist(rtlNet)
	if err != nil {
		end()
		return nil, nil, flowErr(d, cfg, "synth", err)
	}
	des.Optimize(3)
	end()

	// Delay-oriented technology mapping to the component library; the
	// compaction step is the area-recovery stage, as in the paper.
	if fe := stageFault(d, cfg, "map"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("map")
	mapped, err := techmap.Map(des, cfg.Arch, techmap.Options{AreaPasses: 1})
	end()
	if err != nil {
		return nil, nil, flowErr(d, cfg, "map", err)
	}
	rep.GateCount = mapped.Area

	// Regularity-driven logic compaction (the span also covers the
	// buffer-insertion tail of logic synthesis).
	if fe := stageFault(d, cfg, "compact"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("compact")
	impl := mapped.Netlist
	if !cfg.SkipCompaction {
		cres, err := compact.Run(mapped.Netlist, cfg.Arch)
		if err != nil {
			end()
			return nil, nil, flowErr(d, cfg, "compact", err)
		}
		impl = cres.Netlist
		rep.CompactionReduction = cres.Reduction()
		rep.ConfigCounts = cres.ConfigCounts
		rep.FullAdders = cres.FullAdders
	} else {
		// Uncompacted component netlists still need configuration types
		// for packing: wrap each component cell as its identity config.
		impl, err = identityConfigs(mapped.Netlist, cfg.Arch)
		if err != nil {
			end()
			return nil, nil, flowErr(d, cfg, "compact", err)
		}
	}

	// Physical synthesis: fanout-driven buffer insertion (Sec. 3.1's
	// "buffer insertion ... to meet timing constraints").
	rep.BuffersInserted = insertBuffers(impl, cfg.Arch)
	end()

	if cfg.Verify {
		if fe := stageFault(d, cfg, "verify"); fe != nil {
			return nil, nil, fe
		}
		end = cfg.Trace.Stage("verify")
		err := netlist.Equivalent(rtlNet, impl, 8, 4, cfg.Seed+77)
		end()
		if err != nil {
			return nil, nil, flowErr(d, cfg, "verify", err)
		}
	}
	if err := ctxFlowErr(ctx, d, cfg); err != nil {
		return nil, nil, err
	}

	art := &Artifacts{Impl: impl}

	// ASIC-style placement (physical synthesis). Stuck PLB sites from
	// the defect map are excluded from the spread and every move.
	popts := place.Options{Seed: cfg.Seed}
	if cfg.Defects != nil {
		popts.Blocked = cfg.Defects.Stuck
	}
	if fe := stageFault(d, cfg, "place"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("place")
	prob, err := place.Build(impl, place.ArchArea(cfg.Arch), popts)
	if err != nil {
		end()
		return nil, nil, flowErr(d, cfg, "place", err)
	}
	// Stage-granular build cache: a stored post-refinement snapshot
	// with this run's exact placement inputs replaces annealing and
	// refinement wholesale — downstream stages read only the object
	// coordinates the snapshot restores bit-identically.
	ckptKey := ""
	restored := false
	if cfg.Checkpoints != nil {
		ckptKey = placeCheckpointKey(d, cfg)
		if pos, ok := loadPlaceCheckpoint(cfg.Checkpoints, ckptKey); ok {
			restored = prob.SetPositions(pos) == nil
		}
	}
	if !restored {
		err = prob.Anneal(place.Options{
			Seed: cfg.Seed, MovesPerObj: cfg.PlaceEffort, Ctx: ctx,
			Workers: cfg.PlaceWorkers, Trace: cfg.Trace.Anneal(),
		})
	}
	end()
	if err != nil {
		if fe := ctxFlowErr(ctx, d, cfg); fe != nil {
			return nil, nil, fe
		}
		return nil, nil, flowErr(d, cfg, "place", err)
	}

	// Pre-layout timing for net weighting and the provisional clock.
	if fe := stageFault(d, cfg, "sta"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("sta")
	pre, err := sta.Analyze(impl, cfg.Arch, nil, nil, sta.Options{ClockPeriod: cfg.ClockPeriod})
	end()
	if err != nil {
		return nil, nil, flowErr(d, cfg, "sta", err)
	}
	clock := cfg.ClockPeriod
	if clock == 0 {
		clock = 1.2 * pre.MaxArrival
	}
	rep.ClockPeriod = clock
	if !restored {
		// Net weights steer only refinement (nothing downstream reads
		// them), so the restored path skips the whole block and saves
		// the snapshot other runs will restore.
		end = cfg.Trace.Stage("place")
		for ni, w := range sta.NetWeights(impl, prob, pre, clock, 4) {
			prob.SetNetWeight(ni, w)
		}
		prob.Refine(0.10, 3, cfg.Seed+3)
		end()
		savePlaceCheckpoint(cfg.Checkpoints, ckptKey, prob)
	}

	// Flow b: pack into the regular PLB array.
	if cfg.Flow == FlowB {
		if fe := stageFault(d, cfg, "pack"); fe != nil {
			return nil, nil, fe
		}
		end = cfg.Trace.Stage("pack")
		crit := sta.ObjCriticality(impl, prob, pre, clock)
		pres, err := pack.Run(impl, cfg.Arch, prob, pack.Options{Seed: cfg.Seed, Criticality: crit})
		end()
		if err != nil {
			return nil, nil, flowErr(d, cfg, "pack", err)
		}
		art.Pack = pres
		rep.Rows, rep.Cols = pres.Rows, pres.Cols
		rep.DieArea = pres.DieArea
		rep.Utilization = pres.Utilization()
		rep.Perturbation = pres.Perturbation
		// Via personalization of the packed fabric.
		if fe := stageFault(d, cfg, "viamap"); fe != nil {
			return nil, nil, fe
		}
		end = cfg.Trace.Stage("viamap")
		vrep, err := viamap.FabricVias(impl, cfg.Arch)
		end()
		if err == nil {
			rep.PopulatedVias = vrep.PopulatedVias
			rep.ViaSitesPerPLB = vrep.PotentialPerPLB
		} else {
			return nil, nil, flowErr(d, cfg, "viamap", err)
		}
	} else {
		rep.DieArea = prob.W * prob.H
	}
	if err := ctxFlowErr(ctx, d, cfg); err != nil {
		return nil, nil, err
	}

	// ASIC-style global routing over the array / core. Dead tracks and
	// via faults from the defect map constrain the search graph.
	ropts := route.Options{
		Ctx: ctx, CapacityScale: cfg.RouteCapacityScale, CellsScale: cfg.RouteCellsScale,
		Pool: cfg.routePool, Trace: cfg.Trace.Route(),
	}
	if cfg.Defects != nil {
		ropts.Faults = cfg.Defects
	}
	if fe := stageFault(d, cfg, "route"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("route")
	routes, err := route.Route(prob, ropts)
	end()
	if err != nil {
		if fe := ctxFlowErr(ctx, d, cfg); fe != nil {
			return nil, nil, fe
		}
		return nil, nil, flowErr(d, cfg, "route", err)
	}
	art.Prob = prob
	art.Routes = routes
	rep.Wirelength = routes.Total
	rep.Overflow = routes.Overflow
	rep.ChannelTracks = routes.Capacity()
	rep.PeakTrackDemand = routes.MaxUtilization * float64(routes.Capacity())

	// Post-layout static timing.
	if fe := stageFault(d, cfg, "sta"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("sta")
	post, err := sta.Analyze(impl, cfg.Arch, prob, routes, sta.Options{ClockPeriod: clock})
	end()
	if err != nil {
		return nil, nil, flowErr(d, cfg, "sta", err)
	}
	rep.AvgTopSlack = post.AvgTopSlack
	rep.WorstSlack = post.WorstSlack
	rep.MaxArrival = post.MaxArrival

	// Post-layout power at the run's clock.
	if fe := stageFault(d, cfg, "power"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("power")
	pw, err := power.Estimate(impl, cfg.Arch, prob, routes, power.Options{ClockPS: clock})
	end()
	if err == nil {
		rep.PowerUW = pw.TotalUW
	} else {
		return nil, nil, flowErr(d, cfg, "power", err)
	}
	if cfg.Trace != nil {
		rep.Stages = cfg.Trace.StageTimings()
		rep.Solver = cfg.Trace.SolverMetrics()
	}
	rep.Runtime = time.Since(start)
	return rep, art, nil
}

// compileRTL caches elaborated benchmark netlists: paper-scale designs
// are elaborated once per process. The cache is shared by concurrent
// matrix workers, so all access goes through rtlCacheMu; the cached
// netlist itself is only ever read (Clone copies it), never mutated.
var (
	rtlCacheMu sync.Mutex
	rtlCache   = map[string]*netlist.Netlist{}
)

func compileRTL(d bench.Design) (*netlist.Netlist, error) {
	rtlCacheMu.Lock()
	nl, ok := rtlCache[d.RTL]
	rtlCacheMu.Unlock()
	if ok {
		return nl.Clone(), nil
	}
	nl, err := rtl.Compile(d.RTL)
	if err != nil {
		return nil, fmt.Errorf("core: %s: rtl: %w", d.Name, err)
	}
	rtlCacheMu.Lock()
	// A concurrent worker may have compiled the same source first; keep
	// the existing entry so every caller clones one canonical netlist.
	if prev, ok := rtlCache[d.RTL]; ok {
		nl = prev
	} else {
		rtlCache[d.RTL] = nl
	}
	rtlCacheMu.Unlock()
	return nl.Clone(), nil
}

// identityConfigs retypes component cells as their identity
// configurations so the packer can process an uncompacted netlist.
func identityConfigs(nl *netlist.Netlist, arch *cells.PLBArch) (*netlist.Netlist, error) {
	out := nl.Clone()
	for _, n := range out.Nodes() {
		if n.Kind != netlist.KindGate || n.Type == "INV" || n.Type == "BUF" {
			continue
		}
		cfgs := arch.ConfigsFor(n.Func)
		if len(cfgs) == 0 {
			return nil, fmt.Errorf("core: no identity config for %s %v", n.Type, n.Func)
		}
		// Smallest config implementing the function.
		best := cfgs[0]
		for _, c := range cfgs {
			if c.Area < best.Area {
				best = c
			}
		}
		n.Type = best.Name
	}
	return out, nil
}

// summary renders a one-line report.
func (r *Report) summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-13s %-7s die=%9.0f slack=%8.1f gates=%8.0f",
		r.Design, r.Arch, r.Flow, r.DieArea, r.AvgTopSlack, r.GateCount)
	if r.Rows > 0 {
		fmt.Fprintf(&sb, " array=%dx%d util=%.0f%%", r.Rows, r.Cols, 100*r.Utilization)
	}
	return sb.String()
}

// sortedKeys is shared by the table printers.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
