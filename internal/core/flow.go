// Package core orchestrates the complete VPGA implementation flow of
// the paper's Figure 6 — RTL → synthesis → technology mapping →
// regularity-driven compaction → placement → (flow b only) packing
// into the PLB array → routing → post-layout static timing — and
// provides the experiment drivers that regenerate every table and
// figure of the evaluation section.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"vpga/internal/aig"
	"vpga/internal/artifact"
	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/defect"
	"vpga/internal/faultinject"
	"vpga/internal/netlist"
	"vpga/internal/obs"
	"vpga/internal/pack"
	"vpga/internal/place"
	"vpga/internal/power"
	"vpga/internal/route"
	"vpga/internal/rtl"
	"vpga/internal/sta"
	"vpga/internal/techmap"
	"vpga/internal/viamap"
)

// FlowKind selects between the paper's two evaluation flows.
type FlowKind int

const (
	// FlowA skips the packing step: a standard-cell-style ASIC flow
	// using the PLB component library.
	FlowA FlowKind = iota
	// FlowB is the full flow producing a legal regular PLB array.
	FlowB
)

// String names the flow as in the paper's tables.
func (f FlowKind) String() string {
	if f == FlowA {
		return "flow a"
	}
	return "flow b"
}

// Config parameterizes one flow run.
type Config struct {
	Arch *cells.PLBArch
	Flow FlowKind
	// ClockPeriod in ps; zero auto-derives 1.2× the pre-layout arrival.
	ClockPeriod float64
	Seed        int64
	// PlaceEffort scales annealing moves per object (default 6).
	PlaceEffort int
	// PlaceWorkers sets the annealer's worker count (0 or 1 =
	// single-threaded). Reports are bit-identical at any setting — the
	// annealer's parallel kernel is deterministic — so this is a pure
	// throughput knob: it never enters FlowRequest or the report cache
	// key.
	PlaceWorkers int
	// SkipCompaction disables the regularity-driven compaction step
	// (ablation E4).
	SkipCompaction bool
	// Verify runs random simulation equivalence between the RTL
	// netlist and the final implementation netlist.
	Verify bool
	// Defects injects a fabric defect map: stuck PLB sites are excluded
	// from placement, dead tracks from routing, and via-faulted tiles
	// are penalized. Nil means a clean fabric.
	Defects *defect.Map
	// RouteCapacityScale widens (>1) or narrows (<1) the router's
	// per-edge capacity; zero means 1.0. The repair ladder raises it.
	RouteCapacityScale float64
	// RouteCellsScale > 1 coarsens the routing grid into fewer, wider
	// channels; the repair ladder raises it to dissolve topological
	// cuts a defect map carved into the finer grid.
	RouteCellsScale float64
	// RepairBudget bounds RunFlowRepair's escalation ladder: the number
	// of retries after the baseline attempt (0 uses DefaultRepairBudget,
	// negative disables retries).
	RepairBudget int
	// Trace, when set, records per-stage spans, solver counters and
	// repair attempts for this run (see internal/obs). Tracing is pure
	// observation: a traced run's report is bit-identical to an
	// untraced one after StripMetrics. Nil disables tracing at zero
	// hot-path cost.
	Trace *obs.Run
	// Stages, when set, is the stage-granular build cache (see
	// stagecache.go): every stage boundary stores a content-addressed
	// artifact, and the run restores the deepest cached prefix of its
	// stage-key chain instead of recomputing it. Like Trace and
	// PlaceWorkers it is transport state — reports are bit-identical
	// (after StripMetrics) with or without it, so it never enters the
	// request cache key.
	Stages *StageCache
	// Checkpoints is the PR 7 placement-checkpoint form of the stage
	// cache, kept for compatibility: when Stages is nil it is wrapped
	// as NewStageCache(Checkpoints).
	//
	// Deprecated: set Stages.
	Checkpoints *artifact.Store
	// routePool, when set, lends the router reusable working memory
	// (usage/history arrays, A* scratch) for the run. The experiment
	// drivers share one pool across their runs; results are
	// bit-identical with or without it, so like PlaceWorkers it stays
	// out of the request cache key.
	routePool *route.Pool
}

// stageCache resolves the effective stage cache: Stages, or the
// deprecated Checkpoints store wrapped on the fly.
func (c *Config) stageCache() *StageCache {
	if c.Stages != nil {
		return c.Stages
	}
	return NewStageCache(c.Checkpoints)
}

// Report collects every figure of merit a flow run produces.
type Report struct {
	Design string
	Arch   string
	Flow   string

	// GateCount is the paper's Table 1/2 "No. of gates": the mapped
	// netlist area in 2-input-NAND equivalents before compaction.
	GateCount float64
	// CompactionReduction is the fractional gate-area reduction of the
	// compaction step (paper: ~15% average).
	CompactionReduction float64
	// DieArea: flow a = placed core area; flow b = PLB array area.
	DieArea float64
	Rows    int
	Cols    int
	// Utilization is the used-PLB fraction (flow b only).
	Utilization float64
	// Perturbation is the packing displacement in PLB pitches (flow b).
	Perturbation float64
	Wirelength   float64
	Overflow     int
	// ChannelTracks is the router's per-edge track capacity (the channel
	// width the run routed against); PeakTrackDemand is the peak
	// per-edge track demand in tracks (utilization x capacity). Both are
	// deterministic QoR figures, not wall-clock artifacts.
	ChannelTracks   int
	PeakTrackDemand float64

	ClockPeriod float64
	AvgTopSlack float64 // Table 2 metric: average slack, paths 1–10
	WorstSlack  float64
	MaxArrival  float64

	ConfigCounts    map[string]int
	FullAdders      int
	BuffersInserted int
	// Via personalization statistics (flow b): populated vias across
	// the fabric, potential sites per PLB tile, and the SRAM bits an
	// FPGA-style block would need for the same programmability.
	PopulatedVias  int
	ViaSitesPerPLB int
	// PowerUW is the post-layout switching+leakage power estimate at
	// the report's clock (µW).
	PowerUW float64
	Runtime time.Duration

	// Stages and Solver are the observability block, populated only
	// when Config.Trace is set: per-stage wall-clock timings and the
	// solver counters (annealer passes/moves, router negotiation
	// trajectory, repair attempts). Like Runtime they are wall-clock
	// artifacts of one execution — StripMetrics zeroes all three before
	// bit-identical report comparisons.
	Stages []obs.StageTiming
	Solver *obs.SolverMetrics

	// StageCache is the build-cache provenance block, populated only
	// when the run executed against a stage cache: one record per link
	// of the run's stage-key chain, in pipeline order, saying whether
	// the stage was restored from the cache or computed. Like Stages it
	// describes one execution, not the result — StripMetrics zeroes it
	// (and cached report bytes therefore never carry it).
	StageCache []StageUse `json:",omitempty"`

	// Repair provenance, populated by RunFlowRepair: how many
	// escalations the run needed (0 = clean first attempt) and the full
	// attempt ledger, including the failures that triggered escalation.
	Escalations int
	Attempts    []AttemptRecord
	// DefectSummary is the injected defect map's one-line description
	// (empty for clean-fabric runs).
	DefectSummary string
}

// StripMetrics zeroes the report's wall-clock and observability
// fields — Runtime, Stages, Solver, StageCache. It is the one shared
// helper the determinism suite uses before bit-identical comparisons,
// so reports compare equal across worker counts, scheduling orders,
// tracing on vs. off, and cache hits vs. cold computes.
func (r *Report) StripMetrics() {
	if r == nil {
		return
	}
	r.Runtime = 0
	r.Stages = nil
	r.Solver = nil
	r.StageCache = nil
}

// Clone deep-copies the report — maps, slices and the solver block
// included — so a stored report (the service's content-addressed
// cache) and the copies served from it can never alias a caller's
// mutations.
func (r *Report) Clone() *Report {
	if r == nil {
		return nil
	}
	cp := *r
	if r.ConfigCounts != nil {
		cp.ConfigCounts = make(map[string]int, len(r.ConfigCounts))
		for k, v := range r.ConfigCounts {
			cp.ConfigCounts[k] = v
		}
	}
	if r.Stages != nil {
		cp.Stages = append([]obs.StageTiming(nil), r.Stages...)
	}
	if r.Solver != nil {
		s := *r.Solver
		s.RouteOverflows = append([]int(nil), r.Solver.RouteOverflows...)
		cp.Solver = &s
	}
	if r.StageCache != nil {
		cp.StageCache = append([]StageUse(nil), r.StageCache...)
	}
	if r.Attempts != nil {
		cp.Attempts = append([]AttemptRecord(nil), r.Attempts...)
	}
	return &cp
}

// Reclock shifts the report's slack figures to a different clock
// period. Slack differences between endpoints are clock-independent,
// so the top-10 set and its ordering remain valid.
func (r *Report) Reclock(newClock float64) {
	delta := newClock - r.ClockPeriod
	r.ClockPeriod = newClock
	r.AvgTopSlack += delta
	r.WorstSlack += delta
}

// Artifacts carries the physical results of a flow run for tools that
// need more than the report (floorplan writers, via-map dumps).
type Artifacts struct {
	Impl   *netlist.Netlist
	Prob   *place.Problem
	Pack   *pack.Result
	Routes *route.Result
}

// FlowError is the structured failure record of one flow run: which
// cell of the experiment space failed, at which stage, on which repair
// attempt, and why. Supervisors key off the fields (Stage in
// particular) instead of parsing messages.
type FlowError struct {
	Design string
	Arch   string
	Flow   string
	// Stage names the failing flow stage: "rtl", "synth", "map",
	// "compact", "verify", "place", "sta", "pack", "viamap", "route",
	// "power" — or "panic" (a crashed worker), "timeout"/"cancelled"
	// (context expiry), "repair" (escalation budget exhausted),
	// "skipped" (dependent run not attempted).
	Stage string
	// Attempt is the repair-ladder rung (0 = baseline attempt).
	Attempt int
	Err     error
}

func (e *FlowError) Error() string {
	return fmt.Sprintf("core: %s/%s/%s: %s (attempt %d): %v",
		e.Design, e.Arch, e.Flow, e.Stage, e.Attempt, e.Err)
}

func (e *FlowError) Unwrap() error { return e.Err }

// flowErr wraps a stage failure as a *FlowError for one run.
func flowErr(d bench.Design, cfg Config, stage string, err error) *FlowError {
	arch := ""
	if cfg.Arch != nil {
		arch = cfg.Arch.Name
	}
	return &FlowError{Design: d.Name, Arch: arch, Flow: cfg.Flow.String(), Stage: stage, Err: err}
}

// stageFault consults the fault-injection harness at the named stage
// boundary (fault points "stage.<name>"). A fired fault fails the
// stage through the same *FlowError path a real error takes, so the
// repair ladder and the service's retry layer see injected and
// organic failures identically; a crash-kind fault kills the process
// here, modeling a SIGKILL landing between stages. Disabled injection
// costs one atomic load per stage. Restored stages skip their fault
// point — the stage did not run.
func stageFault(d bench.Design, cfg Config, stage string) *FlowError {
	if faultinject.Active() == nil {
		return nil
	}
	if err := faultinject.Check("stage." + stage); err != nil {
		return flowErr(d, cfg, stage, err)
	}
	return nil
}

// ctxFlowErr reports a context expiry as a *FlowError, distinguishing
// timeouts from cancellations; it returns nil while ctx is live.
func ctxFlowErr(ctx context.Context, d bench.Design, cfg Config) *FlowError {
	err := ctx.Err()
	if err == nil {
		return nil
	}
	stage := "cancelled"
	// errors.Is, not ==: custom contexts and wrapped deadline errors
	// must classify as timeouts too.
	if errors.Is(err, context.DeadlineExceeded) {
		stage = "timeout"
	}
	return flowErr(d, cfg, stage, err)
}

// RunFlow pushes one design through the flow. The context cancels the
// run at stage and iteration boundaries; a run that completes without
// cancellation is bit-identical to an uncancellable one.
//
// Deprecated: Run is the unified request-level entry point; RunFlow
// remains for callers that already hold a resolved (design, Config)
// pair.
func RunFlow(ctx context.Context, d bench.Design, cfg Config) (*Report, error) {
	rep, _, err := execFlow(ctx, d, cfg)
	return rep, err
}

// RunFlowFull is RunFlow returning the physical artifacts as well.
//
// Deprecated: use Run with ExecOptions.WantArtifacts.
func RunFlowFull(ctx context.Context, d bench.Design, cfg Config) (*Report, *Artifacts, error) {
	return execFlow(ctx, d, cfg)
}

// stagePrefix is the resolved cached prefix of one run: the stage-key
// chain, the index of the deepest stage the cache can satisfy, and the
// decoded artifacts the restore consumes.
type stagePrefix struct {
	chain []StageKey
	depth int // chain index of the deepest cache-satisfied stage; -1 = none

	mapArt  *mapArtifact
	compact *compactArtifact
	place   *placeArtifact
	pack    *packArtifact
	route   *routeArtifact
}

// index locates a stage in the chain (-1 when absent, e.g. pack in
// flow a).
func (p *stagePrefix) index(stage string) int {
	if p == nil {
		return -1
	}
	for i, sk := range p.chain {
		if sk.Stage == stage {
			return i
		}
	}
	return -1
}

// restored reports whether the cache satisfies the stage: its chain
// index is within the restored prefix.
func (p *stagePrefix) restored(stage string) bool {
	if p == nil || p.depth < 0 {
		return false
	}
	i := p.index(stage)
	return i >= 0 && i <= p.depth
}

// demote caps the restored depth at the named stage's predecessor —
// the fallback when a restore step fails shape validation mid-run.
func (p *stagePrefix) demote(stage string) {
	if p == nil {
		return
	}
	if i := p.index(stage); i >= 0 && p.depth >= i {
		p.depth = i - 1
	}
}

// resolvePrefix probes the stage cache for the deepest restorable
// prefix of the chain. Depth N is restorable when artifact N decodes
// along with every shallower artifact its restore consumes: routing
// needs the compacted netlist plus the position source (pack for flow
// b, placement for flow a); packing and placement need the compacted
// netlist. Decode failures are silent misses — the store already
// evicted anything corrupt.
func resolvePrefix(stages *StageCache, chain []StageKey, flow FlowKind) *stagePrefix {
	p := &stagePrefix{chain: chain, depth: -1}
	key := make(map[string]string, len(chain))
	for _, sk := range chain {
		key[sk.Stage] = sk.Key
	}
	tried := map[string]bool{}
	load := func(stage string, out any) bool {
		raw, ok := stages.get(key[stage])
		return ok && decodeStage(raw, out)
	}
	okCompact := func() bool {
		if !tried[StageCompact] {
			tried[StageCompact] = true
			var a compactArtifact
			if load(StageCompact, &a) && a.Netlist != nil {
				p.compact = &a
			}
		}
		return p.compact != nil
	}
	okPlace := func() bool {
		if !tried[StagePlace] {
			tried[StagePlace] = true
			var a placeArtifact
			if load(StagePlace, &a) && len(a.Positions) == 2*a.Objects {
				p.place = &a
			}
		}
		return p.place != nil
	}
	okPack := func() bool {
		if !tried[StagePack] {
			tried[StagePack] = true
			var a packArtifact
			if load(StagePack, &a) && a.Pack != nil && len(a.Positions) == 2*a.Objects {
				p.pack = &a
			}
		}
		return p.pack != nil
	}
	okRoute := func() bool {
		if !tried[StageRoute] {
			tried[StageRoute] = true
			var a routeArtifact
			if load(StageRoute, &a) && a.Routes != nil {
				p.route = &a
			}
		}
		return p.route != nil
	}

	switch {
	case okRoute() && okCompact() &&
		((flow == FlowB && okPack()) || (flow == FlowA && okPlace())):
		p.depth = p.index(StageRoute)
	case flow == FlowB && okPack() && okCompact():
		p.depth = p.index(StagePack)
	case okPlace() && okCompact():
		p.depth = p.index(StagePlace)
	case okCompact():
		p.depth = p.index(StageCompact)
	default:
		var a mapArtifact
		if load(StageMap, &a) && a.Netlist != nil {
			p.mapArt = &a
			p.depth = p.index(StageMap)
		}
	}
	return p
}

// execFlow is the staged pipeline behind every flow entry point. With
// a stage cache it resolves the deepest cached prefix of the run's
// stage-key chain, restores it bit-identically, computes only the
// suffix, and stores each computed stage's artifact; without one it is
// the plain ten-stage flow. Cached-prefix runs produce reports
// byte-identical (after StripMetrics) to cold runs — restoration
// reproduces the exact netlists, positions and routing the cold run
// computes, and everything downstream is deterministic.
func execFlow(ctx context.Context, d bench.Design, cfg Config) (*Report, *Artifacts, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.PlaceEffort == 0 {
		cfg.PlaceEffort = 6
	}
	stages := cfg.stageCache()
	rep := &Report{Design: d.Name, Arch: cfg.Arch.Name, Flow: cfg.Flow.String()}
	if cfg.Defects != nil {
		rep.DefectSummary = cfg.Defects.String()
	}
	if err := ctxFlowErr(ctx, d, cfg); err != nil {
		return nil, nil, err
	}

	// Resolve the deepest cached prefix of this run's key chain.
	var prefix *stagePrefix
	if stages != nil {
		if chain, err := stageChain(d, cfg); err == nil {
			prefix = resolvePrefix(stages, chain, cfg.Flow)
		}
	}
	// mark records one chain link's outcome — provenance plus the
	// cache's per-stage counters — and reports whether the cache
	// satisfied the stage. Call exactly once per chain stage, in
	// pipeline order.
	mark := func(stage string) bool {
		if prefix == nil {
			return false
		}
		i := prefix.index(stage)
		if i < 0 {
			return false
		}
		hit := i <= prefix.depth
		stages.bump(stage, hit)
		rep.StageCache = append(rep.StageCache, StageUse{Stage: stage, Key: prefix.chain[i].Key, Hit: hit})
		return hit
	}
	// save stores a computed stage's artifact, best-effort; without a
	// cache the payload is never even encoded.
	save := func(stage string, build func() any) {
		if stages == nil || prefix == nil {
			return
		}
		if key := prefix.key(stage); key != "" {
			stages.put(key, encodeStage(build()))
		}
	}

	// Synthesis front end: rtl → synth → map. A restored mapped (or
	// deeper) netlist replaces all three; the RTL netlist itself is
	// still elaborated on demand for verification.
	var impl *netlist.Netlist // the implementation netlist in flight
	var rtlNet *netlist.Netlist
	var err error
	compileFrontEnd := func() (*techmap.Result, *FlowError) {
		if fe := stageFault(d, cfg, "rtl"); fe != nil {
			return nil, fe
		}
		end := cfg.Trace.Stage("rtl")
		rtlNet, err = compileRTL(d)
		end()
		if err != nil {
			return nil, flowErr(d, cfg, "rtl", err)
		}
		if fe := stageFault(d, cfg, "synth"); fe != nil {
			return nil, fe
		}
		end = cfg.Trace.Stage("synth")
		des, err := aig.FromNetlist(rtlNet)
		if err != nil {
			end()
			return nil, flowErr(d, cfg, "synth", err)
		}
		des.Optimize(3)
		end()
		if fe := stageFault(d, cfg, "map"); fe != nil {
			return nil, fe
		}
		end = cfg.Trace.Stage("map")
		mapped, err := techmap.Map(des, cfg.Arch, techmap.Options{AreaPasses: 1})
		end()
		if err != nil {
			return nil, flowErr(d, cfg, "map", err)
		}
		return mapped, nil
	}

	compactHit := prefix.restored(StageCompact)
	mapHit := compactHit || prefix.restored(StageMap)
	var mapped *techmap.Result
	if mapHit {
		mark(StageMap)
		if !compactHit {
			rep.GateCount = prefix.mapArt.GateCount
		}
	} else {
		mark(StageMap)
		var fe *FlowError
		if mapped, fe = compileFrontEnd(); fe != nil {
			return nil, nil, fe
		}
		rep.GateCount = mapped.Area
		// Snapshot the mapped netlist before compaction touches it.
		save(StageMap, func() any {
			return &mapArtifact{Schema: stageArtifactSchema, Netlist: mapped.Netlist, GateCount: rep.GateCount}
		})
	}

	// Regularity-driven logic compaction (the span also covers the
	// buffer-insertion tail of logic synthesis).
	if compactHit {
		mark(StageCompact)
		ca := prefix.compact
		impl = ca.Netlist
		rep.GateCount = ca.GateCount
		rep.CompactionReduction = ca.Reduction
		rep.ConfigCounts = ca.ConfigCounts
		rep.FullAdders = ca.FullAdders
		rep.BuffersInserted = ca.BuffersInserted
	} else {
		mark(StageCompact)
		if fe := stageFault(d, cfg, "compact"); fe != nil {
			return nil, nil, fe
		}
		end := cfg.Trace.Stage("compact")
		var base *netlist.Netlist
		if mapped != nil {
			base = mapped.Netlist
		} else {
			base = prefix.mapArt.Netlist // restored mapped netlist
		}
		if !cfg.SkipCompaction {
			cres, err := compact.Run(base, cfg.Arch)
			if err != nil {
				end()
				return nil, nil, flowErr(d, cfg, "compact", err)
			}
			impl = cres.Netlist
			rep.CompactionReduction = cres.Reduction()
			rep.ConfigCounts = cres.ConfigCounts
			rep.FullAdders = cres.FullAdders
		} else {
			// Uncompacted component netlists still need configuration types
			// for packing: wrap each component cell as its identity config.
			impl, err = identityConfigs(base, cfg.Arch)
			if err != nil {
				end()
				return nil, nil, flowErr(d, cfg, "compact", err)
			}
		}
		// Physical synthesis: fanout-driven buffer insertion (Sec. 3.1's
		// "buffer insertion ... to meet timing constraints").
		rep.BuffersInserted = insertBuffers(impl, cfg.Arch)
		end()
		save(StageCompact, func() any {
			return &compactArtifact{
				Schema: stageArtifactSchema, Netlist: impl, GateCount: rep.GateCount,
				Reduction: rep.CompactionReduction, ConfigCounts: rep.ConfigCounts,
				FullAdders: rep.FullAdders, BuffersInserted: rep.BuffersInserted,
			}
		})
	}

	if cfg.Verify {
		// Verification always runs — it is a correctness check the
		// request asked for, whether the netlist was computed or
		// restored. The RTL netlist comes from the per-process cache.
		if fe := stageFault(d, cfg, "verify"); fe != nil {
			return nil, nil, fe
		}
		if rtlNet == nil {
			if rtlNet, err = compileRTL(d); err != nil {
				return nil, nil, flowErr(d, cfg, "rtl", err)
			}
		}
		end := cfg.Trace.Stage("verify")
		err := netlist.Equivalent(rtlNet, impl, 8, 4, cfg.Seed+77)
		end()
		if err != nil {
			return nil, nil, flowErr(d, cfg, "verify", err)
		}
	}
	if err := ctxFlowErr(ctx, d, cfg); err != nil {
		return nil, nil, err
	}

	art := &Artifacts{Impl: impl}

	// ASIC-style placement (physical synthesis). The problem is always
	// built — every downstream stage reads it — but the annealed
	// coordinates come from the cache when the placement (or anything
	// deeper) is restored. Stuck PLB sites from the defect map are
	// excluded from the spread and every move.
	popts := place.Options{Seed: cfg.Seed}
	if cfg.Defects != nil {
		popts.Blocked = cfg.Defects.Stuck
	}
	placeHit := prefix.restored(StagePlace)
	if !placeHit {
		if fe := stageFault(d, cfg, "place"); fe != nil {
			return nil, nil, fe
		}
	}
	end := cfg.Trace.Stage("place")
	prob, err := place.Build(impl, place.ArchArea(cfg.Arch), popts)
	if err != nil {
		end()
		return nil, nil, flowErr(d, cfg, "place", err)
	}
	packHit := cfg.Flow == FlowB && prefix.restored(StagePack)
	if packHit {
		// The pack artifact holds the legalized post-pack coordinates:
		// annealing, net weighting, refinement and packing all collapse
		// into one restore.
		if prob.SetPositions(prefix.pack.Positions) != nil {
			prefix.demote(StagePlace) // shape mismatch: recompute placement onward
			packHit, placeHit = false, false
		}
	} else if placeHit {
		if prob.SetPositions(prefix.place.Positions) != nil {
			prefix.demote(StagePlace)
			placeHit = false
		}
	}
	if !placeHit && !packHit {
		err = prob.Anneal(place.Options{
			Seed: cfg.Seed, MovesPerObj: cfg.PlaceEffort, Ctx: ctx,
			Workers: cfg.PlaceWorkers, Trace: cfg.Trace.Anneal(),
		})
	}
	end()
	if err != nil {
		if fe := ctxFlowErr(ctx, d, cfg); fe != nil {
			return nil, nil, fe
		}
		return nil, nil, flowErr(d, cfg, "place", err)
	}
	mark(StagePlace)
	if !placeHit && !packHit {
		// Snapshot the post-anneal placement. Pre-refinement on
		// purpose: the place key excludes the clock, and only net
		// weighting + refinement read it, so they rerun in the suffix
		// and every clock-target variant shares this snapshot.
		save(StagePlace, func() any {
			return &placeArtifact{Schema: stageArtifactSchema, Objects: len(prob.Objs), Positions: prob.Positions()}
		})
	}

	// Pre-layout timing feeds three consumers — the auto-derived clock,
	// refinement's net weights, and packing's criticality — computed
	// only when one of them needs it.
	needRefine := !packHit
	needPre := cfg.ClockPeriod == 0 || needRefine || (cfg.Flow == FlowB && !packHit)
	var pre *sta.Report
	if needPre {
		if fe := stageFault(d, cfg, "sta"); fe != nil {
			return nil, nil, fe
		}
		end = cfg.Trace.Stage("sta")
		pre, err = sta.Analyze(impl, cfg.Arch, nil, nil, sta.Options{ClockPeriod: cfg.ClockPeriod})
		end()
		if err != nil {
			return nil, nil, flowErr(d, cfg, "sta", err)
		}
	}
	clock := cfg.ClockPeriod
	if clock == 0 {
		clock = 1.2 * pre.MaxArrival
	}
	rep.ClockPeriod = clock
	if needRefine {
		// Net weights steer only refinement (nothing downstream reads
		// them); a restored post-pack placement skips the whole block.
		end = cfg.Trace.Stage("place")
		for ni, w := range sta.NetWeights(impl, prob, pre, clock, 4) {
			prob.SetNetWeight(ni, w)
		}
		prob.Refine(0.10, 3, cfg.Seed+3)
		end()
	}

	// Flow b: pack into the regular PLB array.
	if cfg.Flow == FlowB {
		var pres *pack.Result
		if packHit {
			mark(StagePack)
			pres = prefix.pack.Pack
		} else {
			mark(StagePack)
			if fe := stageFault(d, cfg, "pack"); fe != nil {
				return nil, nil, fe
			}
			end = cfg.Trace.Stage("pack")
			crit := sta.ObjCriticality(impl, prob, pre, clock)
			pres, err = pack.Run(impl, cfg.Arch, prob, pack.Options{Seed: cfg.Seed, Criticality: crit})
			end()
			if err != nil {
				return nil, nil, flowErr(d, cfg, "pack", err)
			}
			save(StagePack, func() any {
				return &packArtifact{
					Schema: stageArtifactSchema, Pack: pres,
					Objects: len(prob.Objs), Positions: prob.Positions(),
				}
			})
		}
		art.Pack = pres
		rep.Rows, rep.Cols = pres.Rows, pres.Cols
		rep.DieArea = pres.DieArea
		rep.Utilization = pres.Utilization()
		rep.Perturbation = pres.Perturbation
		// Via personalization of the packed fabric (cheap and purely a
		// function of netlist + arch, so it always recomputes).
		if fe := stageFault(d, cfg, "viamap"); fe != nil {
			return nil, nil, fe
		}
		end = cfg.Trace.Stage("viamap")
		vrep, err := viamap.FabricVias(impl, cfg.Arch)
		end()
		if err == nil {
			rep.PopulatedVias = vrep.PopulatedVias
			rep.ViaSitesPerPLB = vrep.PotentialPerPLB
		} else {
			return nil, nil, flowErr(d, cfg, "viamap", err)
		}
	} else {
		rep.DieArea = prob.W * prob.H
	}
	if err := ctxFlowErr(ctx, d, cfg); err != nil {
		return nil, nil, err
	}

	// ASIC-style global routing over the array / core. Dead tracks and
	// via faults from the defect map constrain the search graph.
	var routes *route.Result
	if prefix.restored(StageRoute) {
		mark(StageRoute)
		routes = prefix.route.Routes
	} else {
		mark(StageRoute)
		ropts := route.Options{
			Ctx: ctx, CapacityScale: cfg.RouteCapacityScale, CellsScale: cfg.RouteCellsScale,
			Pool: cfg.routePool, Trace: cfg.Trace.Route(),
		}
		if cfg.Defects != nil {
			ropts.Faults = cfg.Defects
		}
		if fe := stageFault(d, cfg, "route"); fe != nil {
			return nil, nil, fe
		}
		end = cfg.Trace.Stage("route")
		routes, err = route.Route(prob, ropts)
		end()
		if err != nil {
			if fe := ctxFlowErr(ctx, d, cfg); fe != nil {
				return nil, nil, fe
			}
			return nil, nil, flowErr(d, cfg, "route", err)
		}
		save(StageRoute, func() any {
			return &routeArtifact{Schema: stageArtifactSchema, Routes: routes}
		})
	}
	art.Prob = prob
	art.Routes = routes
	rep.Wirelength = routes.Total
	rep.Overflow = routes.Overflow
	rep.ChannelTracks = routes.Capacity()
	rep.PeakTrackDemand = routes.MaxUtilization * float64(routes.Capacity())

	// Post-layout static timing.
	if fe := stageFault(d, cfg, "sta"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("sta")
	post, err := sta.Analyze(impl, cfg.Arch, prob, routes, sta.Options{ClockPeriod: clock})
	end()
	if err != nil {
		return nil, nil, flowErr(d, cfg, "sta", err)
	}
	rep.AvgTopSlack = post.AvgTopSlack
	rep.WorstSlack = post.WorstSlack
	rep.MaxArrival = post.MaxArrival

	// Post-layout power at the run's clock.
	if fe := stageFault(d, cfg, "power"); fe != nil {
		return nil, nil, fe
	}
	end = cfg.Trace.Stage("power")
	pw, err := power.Estimate(impl, cfg.Arch, prob, routes, power.Options{ClockPS: clock})
	end()
	if err == nil {
		rep.PowerUW = pw.TotalUW
	} else {
		return nil, nil, flowErr(d, cfg, "power", err)
	}
	if cfg.Trace != nil {
		rep.Stages = cfg.Trace.StageTimings()
		rep.Solver = cfg.Trace.SolverMetrics()
	}
	rep.Runtime = time.Since(start)
	return rep, art, nil
}

// key returns the chain key for a stage ("" when the prefix or stage
// is absent — the cache put becomes a no-op).
func (p *stagePrefix) key(stage string) string {
	if i := p.index(stage); i >= 0 {
		return p.chain[i].Key
	}
	return ""
}

// compileRTL caches elaborated benchmark netlists: paper-scale designs
// are elaborated once per process. The cache is shared by concurrent
// matrix workers, so all access goes through rtlCacheMu; the cached
// netlist itself is only ever read (Clone copies it), never mutated.
var (
	rtlCacheMu sync.Mutex
	rtlCache   = map[string]*netlist.Netlist{}
)

func compileRTL(d bench.Design) (*netlist.Netlist, error) {
	rtlCacheMu.Lock()
	nl, ok := rtlCache[d.RTL]
	rtlCacheMu.Unlock()
	if ok {
		return nl.Clone(), nil
	}
	nl, err := rtl.Compile(d.RTL)
	if err != nil {
		return nil, fmt.Errorf("core: %s: rtl: %w", d.Name, err)
	}
	rtlCacheMu.Lock()
	// A concurrent worker may have compiled the same source first; keep
	// the existing entry so every caller clones one canonical netlist.
	if prev, ok := rtlCache[d.RTL]; ok {
		nl = prev
	} else {
		rtlCache[d.RTL] = nl
	}
	rtlCacheMu.Unlock()
	return nl.Clone(), nil
}

// identityConfigs retypes component cells as their identity
// configurations so the packer can process an uncompacted netlist.
func identityConfigs(nl *netlist.Netlist, arch *cells.PLBArch) (*netlist.Netlist, error) {
	out := nl.Clone()
	for _, n := range out.Nodes() {
		if n.Kind != netlist.KindGate || n.Type == "INV" || n.Type == "BUF" {
			continue
		}
		cfgs := arch.ConfigsFor(n.Func)
		if len(cfgs) == 0 {
			return nil, fmt.Errorf("core: no identity config for %s %v", n.Type, n.Func)
		}
		// Smallest config implementing the function.
		best := cfgs[0]
		for _, c := range cfgs {
			if c.Area < best.Area {
				best = c
			}
		}
		n.Type = best.Name
	}
	return out, nil
}

// summary renders a one-line report.
func (r *Report) summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-13s %-7s die=%9.0f slack=%8.1f gates=%8.0f",
		r.Design, r.Arch, r.Flow, r.DieArea, r.AvgTopSlack, r.GateCount)
	if r.Rows > 0 {
		fmt.Fprintf(&sb, " array=%dx%d util=%.0f%%", r.Rows, r.Cols, 100*r.Utilization)
	}
	return sb.String()
}

// sortedKeys is shared by the table printers.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
