package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"vpga/internal/bench"
	"vpga/internal/cells"
)

// stripRuntime clears the wall-clock-dependent report fields so
// reports can be compared across scheduling orders. It delegates to
// the shared StripMetrics helper the determinism suite standardizes
// on.
func stripRuntime(m *Matrix) {
	m.StripMetrics()
}

// TestRunMatrixParallelDeterminism: for a fixed seed, the matrix must
// produce identical reports at parallelism 1 and parallelism 4, and
// Progress must fire exactly once per run in both modes.
func TestRunMatrixParallelDeterminism(t *testing.T) {
	suite := bench.Suite{
		ALU:      bench.ALU(8),
		Firewire: bench.Firewire(4),
		FPU:      bench.FPU(4),
		Switch:   bench.Switch(2, 4, 2),
	}
	run := func(parallel int) (*Matrix, int) {
		var mu sync.Mutex
		lines := 0
		m, err := RunMatrix(context.Background(), suite, MatrixOptions{
			Seed: 7, PlaceEffort: 2, Parallel: parallel,
			Progress: func(string) { mu.Lock(); lines++; mu.Unlock() },
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		stripRuntime(m)
		return m, lines
	}
	seq, seqLines := run(1)
	par, parLines := run(4)

	wantRuns := len(suite.All()) * 2 * 2
	if seqLines != wantRuns || parLines != wantRuns {
		t.Fatalf("progress lines: sequential %d, parallel %d, want %d", seqLines, parLines, wantRuns)
	}
	for design, byArch := range seq.Reports {
		for arch, byFlow := range byArch {
			for flow, want := range byFlow {
				got := par.Reports[design][arch][flow]
				if got == nil {
					t.Fatalf("%s/%s/%s missing from parallel run", design, arch, flow)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s/%s diverged:\n  sequential %+v\n  parallel   %+v",
						design, arch, flow, want, got)
				}
			}
		}
	}
}

// TestRunMatrixParallelError: a failing run must surface its error and
// not deadlock the pool.
func TestRunMatrixParallelError(t *testing.T) {
	suite := bench.Suite{
		ALU:      bench.ALU(4),
		Firewire: bench.Design{Name: "broken", RTL: "module m(invalid"},
		FPU:      bench.FPU(4),
		Switch:   bench.Switch(2, 4, 2),
	}
	if _, err := RunMatrix(context.Background(), suite, MatrixOptions{Seed: 1, PlaceEffort: 1, Parallel: 4}); err == nil {
		t.Fatal("expected an error from the broken design")
	}
}

// TestPlaceWorkersBitIdentical: a flow run's report is bit-identical
// at any annealer worker count — PlaceWorkers is a pure throughput
// knob, never part of a run's identity or cache key.
func TestPlaceWorkersBitIdentical(t *testing.T) {
	d := bench.ALU(8)
	run := func(workers int) *Report {
		rep, err := RunFlow(context.Background(), d, Config{
			Arch: cells.GranularPLB(), Flow: FlowB, Seed: 5, PlaceEffort: 3,
			PlaceWorkers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rep.StripMetrics()
		return rep
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d report diverged:\n  workers=1: %+v\n  workers=%d: %+v",
				w, want, w, got)
		}
	}
}
