package core

import (
	"fmt"
	"math/rand"
	"testing"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/logic"
	"vpga/internal/netlist"
	"vpga/internal/techmap"
	"vpga/internal/viamap"
)

// randomNetlist builds a random sequential netlist: nPI inputs, nGate
// gates of random ≤3-input functions over earlier nodes, nFF
// flip-flops with random D cones, and nPO outputs.
func randomNetlist(rng *rand.Rand, nPI, nGate, nFF, nPO int) *netlist.Netlist {
	nl := netlist.New(fmt.Sprintf("rand%d", rng.Int31()))
	var pool []netlist.NodeID
	for i := 0; i < nPI; i++ {
		pool = append(pool, nl.AddInput(fmt.Sprintf("i%d", i)))
	}
	var ffs []netlist.NodeID
	for i := 0; i < nFF; i++ {
		ff := nl.AddDFF(fmt.Sprintf("r%d", i), 0)
		nl.SetFanin(ff, 0, ff)
		pool = append(pool, ff)
		ffs = append(ffs, ff)
	}
	for i := 0; i < nGate; i++ {
		k := 1 + rng.Intn(3)
		fn := logic.NewTT(k, rng.Uint64())
		fanins := make([]netlist.NodeID, k)
		for j := range fanins {
			fanins[j] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, nl.AddGate("G", fn, fanins...))
	}
	for _, ff := range ffs {
		nl.SetFanin(ff, 0, pool[rng.Intn(len(pool))])
	}
	for i := 0; i < nPO; i++ {
		nl.AddOutput(fmt.Sprintf("o%d", i), pool[len(pool)-1-rng.Intn(min(len(pool), nGate+1))])
	}
	return nl
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPipelinePropertyRandomNetlists fuzzes the synthesis pipeline:
// for random netlists, optimize → map → compact on both architectures
// must preserve sequential behaviour, keep every instance within three
// inputs, and never grow the gate area during compaction.
func TestPipelinePropertyRandomNetlists(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	archs := []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()}
	for trial := 0; trial < 25; trial++ {
		nl := randomNetlist(rng, 2+rng.Intn(5), 5+rng.Intn(40), rng.Intn(5), 1+rng.Intn(4))
		if err := nl.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid netlist: %v", trial, err)
		}
		d, err := aig.FromNetlist(nl)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d.Optimize(2)
		for _, arch := range archs {
			mapped, err := techmap.Map(d, arch, techmap.Options{})
			if err != nil {
				t.Fatalf("trial %d %s: map: %v", trial, arch.Name, err)
			}
			if err := netlist.Equivalent(nl, mapped.Netlist, 6, 5, int64(trial)); err != nil {
				t.Fatalf("trial %d %s: mapping broke behaviour: %v", trial, arch.Name, err)
			}
			cres, err := compact.Run(mapped.Netlist, arch)
			if err != nil {
				t.Fatalf("trial %d %s: compact: %v", trial, arch.Name, err)
			}
			if err := netlist.Equivalent(nl, cres.Netlist, 6, 5, int64(trial)+1); err != nil {
				t.Fatalf("trial %d %s: compaction broke behaviour: %v", trial, arch.Name, err)
			}
			if cres.AreaAfter > cres.AreaBefore+1e-9 {
				t.Fatalf("trial %d %s: compaction grew area %.2f -> %.2f",
					trial, arch.Name, cres.AreaBefore, cres.AreaAfter)
			}
			for _, n := range cres.Netlist.Nodes() {
				if n.Kind == netlist.KindGate && len(n.Fanins) > 3 {
					t.Fatalf("trial %d %s: instance with %d inputs", trial, arch.Name, len(n.Fanins))
				}
				if n.Kind == netlist.KindGate && n.Type != "INV" && n.Type != "BUF" {
					if cfg := arch.Config(n.Type); cfg == nil {
						t.Fatalf("trial %d %s: unknown config %q", trial, arch.Name, n.Type)
					} else if !cfg.Implements(n.Func) {
						t.Fatalf("trial %d %s: %s cannot implement %v", trial, arch.Name, n.Type, n.Func)
					}
				}
			}
		}
	}
}

// TestFullFlowPropertyRandomNetlists pushes a handful of random
// designs through the entire flow (both flows) and checks report
// invariants.
func TestFullFlowPropertyRandomNetlists(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow fuzz is slow")
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		nl := randomNetlist(rng, 4+rng.Intn(4), 30+rng.Intn(60), 2+rng.Intn(6), 2+rng.Intn(4))
		// Wrap as a bench design via the netlist's dump... RunFlow wants
		// RTL, so drive the internal stages directly instead.
		d, err := aig.FromNetlist(nl)
		if err != nil {
			t.Fatal(err)
		}
		d.Optimize(2)
		for _, arch := range []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()} {
			mapped, err := techmap.Map(d, arch, techmap.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cres, err := compact.Run(mapped.Netlist, arch)
			if err != nil {
				t.Fatal(err)
			}
			impl := cres.Netlist
			insertBuffers(impl, arch)
			if err := netlist.Equivalent(nl, impl, 6, 4, int64(trial)); err != nil {
				t.Fatalf("trial %d %s: buffering broke behaviour: %v", trial, arch.Name, err)
			}
		}
	}
}

// TestViaProgramsForAllCompactedInstances checks that every instance
// the compactor emits can be personalized to vias (the E3/viamap
// bridge) on randomized logic.
func TestViaProgramsForAllCompactedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	arch := cells.GranularPLB()
	for trial := 0; trial < 10; trial++ {
		nl := randomNetlist(rng, 3+rng.Intn(4), 20+rng.Intn(30), rng.Intn(4), 2)
		d, err := aig.FromNetlist(nl)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := techmap.Map(d, arch, techmap.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cres, err := compact.Run(mapped.Netlist, arch)
		if err != nil {
			t.Fatal(err)
		}
		insertBuffers(cres.Netlist, arch)
		if _, err := viamap.FabricVias(cres.Netlist, arch); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
