package core

import (
	"context"
	"errors"

	"vpga/internal/bench"
	"vpga/internal/route"
)

// DefaultRepairBudget is the number of escalations RunFlowRepair tries
// after the baseline attempt before giving up on a defect map.
const DefaultRepairBudget = 3

// AttemptRecord documents one rung of the repair ladder for the report.
type AttemptRecord struct {
	Attempt       int     // 0 = baseline, 1.. = escalations
	Action        string  // "baseline", "reseed", "widen-channels", "relax-clock"
	Seed          int64   // flow seed used for this attempt
	CapacityScale float64 // routing capacity multiplier (0 = none)
	CellsScale    float64 // routing-grid coarsening factor (0 = none)
	ClockScale    float64 // clock-period multiplier (0 = none)
	Err           string  // failure message, empty on the winning attempt
}

// escalate returns the config for repair rung attempt >= 1, derived
// deterministically from the baseline config. The ladder is:
//
//	1: reseed placement         (fresh anneal trajectory)
//	2: widen channels x1.5      (coarser grid of fatter channels —
//	   resamples the defect map, dissolving topological cuts)
//	3: relax clock + widen x2   (accept slower timing to close the map)
//
// Each rung also reseeds, so every attempt explores a fresh placement.
func escalate(cfg Config, attempt int) (Config, AttemptRecord) {
	out := cfg
	out.Seed = cfg.Seed + int64(attempt)*1009
	rec := AttemptRecord{Attempt: attempt, Seed: out.Seed}
	switch {
	case attempt <= 1:
		rec.Action = "reseed"
	case attempt == 2:
		rec.Action = "widen-channels"
		out.RouteCapacityScale = scaleOr1(cfg.RouteCapacityScale) * 1.5
		out.RouteCellsScale = scaleOr1(cfg.RouteCellsScale) * 1.5
	default:
		rec.Action = "relax-clock"
		out.RouteCapacityScale = scaleOr1(cfg.RouteCapacityScale) * 2.0
		out.RouteCellsScale = scaleOr1(cfg.RouteCellsScale) * 2.0
		if cfg.ClockPeriod > 0 {
			out.ClockPeriod = cfg.ClockPeriod * 1.25
			rec.ClockScale = 1.25
		}
	}
	rec.CapacityScale = out.RouteCapacityScale
	rec.CellsScale = out.RouteCellsScale
	return out, rec
}

func scaleOr1(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// repairable reports whether a failure is worth escalating: physical
// failures (routing congestion, packing, placement) can be repaired by
// reseeding or widening; front-end failures (bad RTL, broken verify)
// and context expiry cannot.
func repairable(err error) bool {
	var re *route.RouteError
	if errors.As(err, &re) {
		return true
	}
	var fe *FlowError
	if errors.As(err, &fe) {
		switch fe.Stage {
		case "place", "route", "pack":
			return true
		}
	}
	return false
}

// RunFlowRepair runs the flow with the bounded-escalation repair loop:
// on a repairable failure it climbs the ladder (reseed, widen channels,
// relax clock) up to cfg.RepairBudget rungs, recording every attempt in
// the winning report. The escalation schedule depends only on (cfg,
// attempt), so repair is deterministic per defect map.
func RunFlowRepair(ctx context.Context, d bench.Design, cfg Config) (*Report, error) {
	return runFlowRepairWith(ctx, d, cfg, RunFlow)
}

// runFlowRepairWith is RunFlowRepair with an injectable runner, so the
// ladder is unit-testable without real flow runs.
func runFlowRepairWith(ctx context.Context, d bench.Design, cfg Config,
	run func(context.Context, bench.Design, Config) (*Report, error)) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	budget := cfg.RepairBudget
	if budget == 0 {
		budget = DefaultRepairBudget
	} else if budget < 0 {
		budget = 0 // baseline attempt only, no escalations
	}
	var attempts []AttemptRecord
	var lastErr error
	for attempt := 0; attempt <= budget; attempt++ {
		acfg := cfg
		rec := AttemptRecord{Attempt: 0, Action: "baseline", Seed: cfg.Seed, CapacityScale: cfg.RouteCapacityScale}
		if attempt > 0 {
			acfg, rec = escalate(cfg, attempt)
		}
		rep, err := run(ctx, d, acfg)
		if err == nil {
			attempts = append(attempts, rec)
			cfg.Trace.Attempt(rec.Attempt, rec.Action, "")
			rep.Attempts = attempts
			rep.Escalations = attempt
			if cfg.Trace != nil {
				// The winning attempt's metrics were snapshotted inside
				// RunFlow before this attempt event existed; refresh so the
				// report sees the whole ladder (failed rungs included).
				rep.Stages = cfg.Trace.StageTimings()
				rep.Solver = cfg.Trace.SolverMetrics()
			}
			return rep, nil
		}
		lastErr = err
		rec.Err = err.Error()
		attempts = append(attempts, rec)
		cfg.Trace.Attempt(rec.Attempt, rec.Action, rec.Err)
		if ctx.Err() != nil || !repairable(err) {
			break
		}
	}
	fe := &FlowError{Design: d.Name, Flow: cfg.Flow.String(), Stage: "repair",
		Attempt: len(attempts) - 1, Err: lastErr}
	if cfg.Arch != nil {
		fe.Arch = cfg.Arch.Name
	}
	if ctx.Err() != nil {
		// errors.Is, not ==: custom contexts may wrap the deadline error.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			fe.Stage = "timeout"
		} else {
			fe.Stage = "cancelled"
		}
	} else if !repairable(lastErr) {
		// A non-physical failure isn't a repair exhaustion; surface the
		// underlying stage error directly when it is already structured.
		var inner *FlowError
		if errors.As(lastErr, &inner) {
			return nil, inner
		}
	}
	return nil, fe
}
