package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"vpga/internal/artifact"
	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/defect"
	"vpga/internal/obs"
)

// ArchSpec is the serializable description of a PLB architecture: the
// named paper architectures ("granular", "lut") or a parameterized
// custom PLB for granularity exploration. It is the declarative
// counterpart of cells.GranularPLB / cells.LUTPLB / cells.CustomPLB,
// so a run description can travel as JSON.
type ArchSpec struct {
	// Kind selects the architecture family: "granular" (default),
	// "lut", or "custom".
	Kind string `json:"kind,omitempty"`
	// Name labels a custom architecture (default "custom"); ignored for
	// the named kinds.
	Name string `json:"name,omitempty"`
	// Custom slot counts (kind "custom" only): 2:1 MUXes, XOA MUXes,
	// ND3WI gates, 3-LUTs and flip-flops.
	Mux  int `json:"mux,omitempty"`
	Xoa  int `json:"xoa,omitempty"`
	Nand int `json:"nand,omitempty"`
	Lut  int `json:"lut,omitempty"`
	FF   int `json:"ff,omitempty"`
}

// Normalize fills defaults and zeroes fields that do not participate
// in the spec's meaning, so equivalent specs share one canonical
// encoding.
func (a ArchSpec) Normalize() ArchSpec {
	if a.Kind == "" {
		a.Kind = "granular"
	}
	if a.Kind != "custom" {
		// Named architectures are fully determined by Kind.
		a.Name = ""
		a.Mux, a.Xoa, a.Nand, a.Lut, a.FF = 0, 0, 0, 0, 0
	} else if a.Name == "" {
		a.Name = "custom"
	}
	return a
}

// Resolve builds the described architecture.
func (a ArchSpec) Resolve() (*cells.PLBArch, error) {
	a = a.Normalize()
	switch a.Kind {
	case "granular":
		return cells.GranularPLB(), nil
	case "lut":
		return cells.LUTPLB(), nil
	case "custom":
		if a.Mux+a.Xoa+a.Nand+a.Lut <= 0 {
			return nil, fmt.Errorf("core: custom arch %q has no combinational slots", a.Name)
		}
		return cells.CustomPLB(a.Name, a.Mux, a.Xoa, a.Nand, a.Lut, a.FF), nil
	default:
		return nil, fmt.Errorf("core: unknown arch kind %q (want granular, lut or custom)", a.Kind)
	}
}

// FlowRequest is the canonical, JSON-serializable description of one
// flow run: which design (a named benchmark or inline RTL), which
// architecture, which flow, and every knob that changes the result.
// It is the unit of the service API (POST /v1/runs) and of the
// content-addressed report cache — CacheKey hashes the normalized
// canonical encoding, so two requests that mean the same run share one
// key regardless of JSON field order or omitted defaults, and a cache
// hit returns a report bit-identical (after StripMetrics) to a fresh
// run, because runs are seed-deterministic by construction.
//
// Wall-clock and observability knobs (tracers, progress callbacks,
// timeouts, annealer worker counts, router state pools) are
// deliberately not part of the request: they never change the report,
// so they live on the transport (server options, RunRequest
// arguments, Config.PlaceWorkers) instead of the content address.
type FlowRequest struct {
	// Design names a built-in benchmark: "alu", "firewire", "fpu",
	// "switch" or "fir". Mutually exclusive with RTL.
	Design string `json:"design,omitempty"`
	// Scale sizes a named benchmark: "test" (default, fast miniatures)
	// or "paper" (published gate counts).
	Scale string `json:"scale,omitempty"`
	// RTL is inline source in the flow's dialect; Name labels it.
	RTL  string `json:"rtl,omitempty"`
	Name string `json:"name,omitempty"`

	Arch ArchSpec `json:"arch,omitempty"`
	// Flow is "a" (ASIC-style, no packing) or "b" (full PLB array,
	// default).
	Flow string `json:"flow,omitempty"`

	Seed int64 `json:"seed,omitempty"`
	// ClockPeriod in ps; zero auto-derives 1.2x the pre-layout arrival.
	ClockPeriod float64 `json:"clock_period,omitempty"`
	// PlaceEffort scales annealing moves per object (default 6).
	PlaceEffort    int  `json:"place_effort,omitempty"`
	SkipCompaction bool `json:"skip_compaction,omitempty"`
	Verify         bool `json:"verify,omitempty"`

	// DefectRate > 0 injects a seeded defect map and runs the flow
	// through the bounded repair ladder.
	DefectRate float64 `json:"defect_rate,omitempty"`
	DefectSeed int64   `json:"defect_seed,omitempty"`
	// RepairBudget bounds repair escalations (0 = DefaultRepairBudget;
	// meaningful only with DefectRate > 0).
	RepairBudget int `json:"repair_budget,omitempty"`
}

// benchDesigns resolves the named benchmarks at either scale.
func benchDesigns(scale string) map[string]bench.Design {
	s := bench.TestSuite()
	fir := bench.FIR(8, 8)
	if scale == "paper" {
		s = bench.PaperSuite()
		fir = bench.FIR(32, 16)
	}
	return map[string]bench.Design{
		"alu": s.ALU, "firewire": s.Firewire, "fpu": s.FPU, "switch": s.Switch,
		"fir": fir,
	}
}

// ResolveDesign resolves a (design, scale, rtl, name) quadruple as a
// FlowRequest does: a named benchmark at the given scale, or inline
// RTL under a display name. Shared by the sweep and matrix service
// requests.
func ResolveDesign(design, scale, rtlSrc, name string) (bench.Design, error) {
	if rtlSrc != "" {
		if design != "" {
			return bench.Design{}, fmt.Errorf("core: request names both a benchmark (%q) and inline rtl", design)
		}
		if name == "" {
			name = "inline"
		}
		return bench.Design{Name: name, RTL: rtlSrc}, nil
	}
	if design == "" {
		return bench.Design{}, fmt.Errorf("core: request names no design (set design or rtl)")
	}
	if scale == "" {
		scale = "test"
	}
	if scale != "test" && scale != "paper" {
		return bench.Design{}, fmt.Errorf("core: unknown scale %q (want test or paper)", scale)
	}
	d, ok := benchDesigns(scale)[design]
	if !ok {
		return bench.Design{}, fmt.Errorf("core: unknown design %q (want alu, firewire, fpu, switch or fir)", design)
	}
	return d, nil
}

// Normalize returns the request with defaults made explicit and
// meaningless knobs zeroed, so every equivalent request has exactly
// one canonical form. CacheKey hashes this form.
func (r FlowRequest) Normalize() FlowRequest {
	if r.RTL != "" {
		// Inline RTL fully determines the design; scale is meaningless.
		r.Scale = ""
		if r.Name == "" {
			r.Name = "inline"
		}
	} else {
		r.Name = ""
		if r.Scale == "" {
			r.Scale = "test"
		}
	}
	r.Arch = r.Arch.Normalize()
	if r.Flow == "" {
		r.Flow = "b"
	}
	if r.PlaceEffort == 0 {
		r.PlaceEffort = 6 // RunFlowFull's default, made explicit
	}
	if r.DefectRate <= 0 {
		// Clean fabric: the repair knobs cannot influence the run.
		r.DefectRate = 0
		r.DefectSeed = 0
		r.RepairBudget = 0
	} else if r.RepairBudget == 0 {
		r.RepairBudget = DefaultRepairBudget
	}
	return r
}

// Validate checks the request without running it.
func (r FlowRequest) Validate() error {
	if _, err := ResolveDesign(r.Design, r.Scale, r.RTL, r.Name); err != nil {
		return err
	}
	if _, err := r.Arch.Resolve(); err != nil {
		return err
	}
	switch r.Flow {
	case "", "a", "b":
	default:
		return fmt.Errorf("core: unknown flow %q (want a or b)", r.Flow)
	}
	if r.PlaceEffort < 0 {
		return fmt.Errorf("core: negative place_effort %d", r.PlaceEffort)
	}
	if r.DefectRate < 0 || r.DefectRate >= 1 {
		return fmt.Errorf("core: defect_rate %g outside [0,1)", r.DefectRate)
	}
	return nil
}

// Resolve validates the request and builds the concrete flow inputs:
// the design and the Config (defect map included, Trace unset).
func (r FlowRequest) Resolve() (bench.Design, Config, error) {
	if err := r.Validate(); err != nil {
		return bench.Design{}, Config{}, err
	}
	n := r.Normalize()
	d, err := ResolveDesign(n.Design, n.Scale, n.RTL, n.Name)
	if err != nil {
		return bench.Design{}, Config{}, err
	}
	arch, err := n.Arch.Resolve()
	if err != nil {
		return bench.Design{}, Config{}, err
	}
	cfg := Config{
		Arch: arch, ClockPeriod: n.ClockPeriod, Seed: n.Seed,
		PlaceEffort: n.PlaceEffort, SkipCompaction: n.SkipCompaction,
		Verify: n.Verify, RepairBudget: n.RepairBudget,
	}
	if n.Flow == "a" {
		cfg.Flow = FlowA
	} else {
		cfg.Flow = FlowB
	}
	if n.DefectRate > 0 {
		cfg.Defects = defect.New(n.DefectSeed, n.DefectRate)
	}
	return d, cfg, nil
}

// CacheKey returns the request's content address: the hex SHA-256 of
// its normalized canonical JSON encoding. Two requests resolve to the
// same key iff they describe the same run, independent of JSON field
// order or spelled-out defaults; seed determinism then guarantees the
// cached report matches a fresh run bit-identically (after
// StripMetrics).
func (r FlowRequest) CacheKey() (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	return CanonicalKey("run", r.Normalize())
}

// CanonicalKey hashes a namespaced canonical JSON encoding into a
// content address. Go's encoding/json emits struct fields in
// declaration order, so the encoding of a normalized request struct is
// deterministic; the namespace keeps different request kinds (runs,
// matrices, sweeps) from colliding in one cache.
func CanonicalKey(namespace string, v any) (string, error) {
	enc, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("core: canonical encoding: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(namespace))
	h.Write([]byte{0})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ExecOptions carries the transport-level state a request execution
// may borrow — observation and acceleration, never meaning: a traced,
// cache-backed run's report is bit-identical (after StripMetrics) to a
// bare one, so none of this enters the request or its cache key.
type ExecOptions struct {
	// Trace records the run's stage spans and solver counters.
	Trace *obs.Run
	// Stages is the stage-granular build cache: the run restores the
	// deepest cached prefix of its stage-key chain and stores every
	// computed stage's artifact (see Config.Stages).
	Stages *StageCache
	// WantArtifacts asks Run to return the physical artifacts (netlist,
	// placement, packing, routing) alongside the report. Defect-injected
	// runs go through the repair ladder, which reports without
	// artifacts.
	WantArtifacts bool
	// Checkpoints is the PR 7 placement-checkpoint form of Stages; when
	// Stages is nil it is wrapped as NewStageCache(Checkpoints).
	//
	// Deprecated: set Stages.
	Checkpoints *artifact.Store
}

// RunResult is what Run produces: the report, optionally the physical
// artifacts, and the request's per-stage key chain (the content
// addresses its artifacts live under — for a repair-ladder run, the
// baseline attempt's chain).
type RunResult struct {
	Report    *Report     `json:"report"`
	Artifacts *Artifacts  `json:"-"`
	StageKeys []StageKey  `json:"stage_keys,omitempty"`
}

// Run is the unified pipeline entry point: it resolves the request,
// executes the staged flow under the supervisor (panic isolation, and
// the bounded repair ladder when the request injects defects), and —
// when opts.Stages is set — restores the deepest cached stage prefix
// and computes only the suffix. It subsumes the earlier RunFlow /
// RunFlowFull / RunRequest / RunRequestExec quartet, which remain as
// deprecated wrappers.
func Run(ctx context.Context, req FlowRequest, opts ExecOptions) (*RunResult, error) {
	d, cfg, err := req.Resolve()
	if err != nil {
		return nil, err
	}
	cfg.Trace = opts.Trace
	cfg.Stages = opts.Stages
	cfg.Checkpoints = opts.Checkpoints
	chain, err := stageChain(d, cfg)
	if err != nil {
		return nil, err
	}
	rep, art, err := supervisedRunFull(ctx, d, cfg, 0, opts.WantArtifacts)
	if err != nil {
		return nil, err
	}
	return &RunResult{Report: rep, Artifacts: art, StageKeys: chain}, nil
}

// RunRequest resolves and executes a FlowRequest under the flow
// supervisor. trace optionally records the run's stage spans and
// solver counters; it is transport state, never part of the request or
// its cache key.
//
// Deprecated: use Run.
func RunRequest(ctx context.Context, req FlowRequest, trace *obs.Run) (*Report, error) {
	return RunRequestExec(ctx, req, ExecOptions{Trace: trace})
}

// RunRequestExec is RunRequest with the full set of execution options.
//
// Deprecated: use Run.
func RunRequestExec(ctx context.Context, req FlowRequest, opts ExecOptions) (*Report, error) {
	res, err := Run(ctx, req, opts)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}
