package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestFlowRequestFieldOrderRoundTrip: the same run described with
// different JSON field orders — and with defaults spelled out versus
// omitted — unmarshals to one cache key, and resolving either document
// produces identical reports after StripMetrics.
func TestFlowRequestFieldOrderRoundTrip(t *testing.T) {
	docs := []string{
		`{"design":"alu","arch":{"kind":"granular"},"flow":"b","seed":5}`,
		`{"seed":5,"flow":"b","arch":{"kind":"granular"},"design":"alu"}`,
		`{"design":"alu","scale":"test","seed":5,"place_effort":6}`,
	}
	var keys []string
	var reports [][]byte
	for _, doc := range docs {
		var req FlowRequest
		if err := json.Unmarshal([]byte(doc), &req); err != nil {
			t.Fatalf("unmarshal %s: %v", doc, err)
		}
		key, err := req.CacheKey()
		if err != nil {
			t.Fatalf("cache key of %s: %v", doc, err)
		}
		keys = append(keys, key)
		rep, err := RunRequest(context.Background(), req, nil)
		if err != nil {
			t.Fatalf("run %s: %v", doc, err)
		}
		rep.StripMetrics()
		enc, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, enc)
	}
	for i := 1; i < len(docs); i++ {
		if keys[i] != keys[0] {
			t.Errorf("doc %d cache key %s != doc 0 key %s", i, keys[i], keys[0])
		}
		if !bytes.Equal(reports[i], reports[0]) {
			t.Errorf("doc %d report differs from doc 0:\n%s\nvs\n%s", i, reports[i], reports[0])
		}
	}
}

// TestFlowRequestMarshalRoundTrip: marshal → unmarshal preserves the
// cache key, including through normalization.
func TestFlowRequestMarshalRoundTrip(t *testing.T) {
	reqs := []FlowRequest{
		{Design: "firewire", Flow: "a", Seed: 3},
		{Design: "alu", Arch: ArchSpec{Kind: "custom", Mux: 3, Xoa: 1, Nand: 2, FF: 1}, Seed: 9},
		{RTL: "module t(input a, output y); assign y = a; endmodule", Seed: 1},
		{Design: "fir", DefectRate: 0.01, DefectSeed: 42, Seed: 2},
	}
	for _, req := range reqs {
		k1, err := req.CacheKey()
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var back FlowRequest
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatal(err)
		}
		k2, err := back.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Errorf("cache key changed across marshal round-trip: %s vs %s (%s)", k1, k2, enc)
		}
	}
}

// TestFlowRequestNormalizeSemantics: normalization zeroes knobs that
// cannot affect the run and fills defaults, and the knobs that do
// affect the run change the key.
func TestFlowRequestNormalizeSemantics(t *testing.T) {
	key := func(r FlowRequest) string {
		t.Helper()
		k, err := r.CacheKey()
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		return k
	}
	base := FlowRequest{Design: "alu", Seed: 5}

	// Repair knobs on a clean fabric are meaningless.
	if key(base) != key(FlowRequest{Design: "alu", Seed: 5, DefectSeed: 99, RepairBudget: 7}) {
		t.Error("repair knobs changed the key of a clean-fabric run")
	}
	// Name on a named benchmark is meaningless.
	if key(base) != key(FlowRequest{Design: "alu", Seed: 5, Name: "whatever"}) {
		t.Error("display name changed the key of a named benchmark")
	}
	// Explicit RepairBudget 0 means the default budget.
	defective := FlowRequest{Design: "alu", Seed: 5, DefectRate: 0.01}
	explicit := defective
	explicit.RepairBudget = DefaultRepairBudget
	if key(defective) != key(explicit) {
		t.Error("default repair budget not canonicalized")
	}
	// Result-bearing knobs must change the key.
	for name, r := range map[string]FlowRequest{
		"seed":  {Design: "alu", Seed: 6},
		"arch":  {Design: "alu", Seed: 5, Arch: ArchSpec{Kind: "lut"}},
		"flow":  {Design: "alu", Seed: 5, Flow: "a"},
		"scale": {Design: "alu", Seed: 5, Scale: "paper"},
		"rate":  {Design: "alu", Seed: 5, DefectRate: 0.02},
	} {
		if key(base) == key(r) {
			t.Errorf("%s did not change the cache key", name)
		}
	}
}

// TestFlowRequestValidate rejects malformed requests.
func TestFlowRequestValidate(t *testing.T) {
	for name, r := range map[string]FlowRequest{
		"no design":       {},
		"both inputs":     {Design: "alu", RTL: "module t; endmodule"},
		"unknown design":  {Design: "nope"},
		"unknown scale":   {Design: "alu", Scale: "huge"},
		"unknown arch":    {Design: "alu", Arch: ArchSpec{Kind: "mystery"}},
		"empty custom":    {Design: "alu", Arch: ArchSpec{Kind: "custom"}},
		"unknown flow":    {Design: "alu", Flow: "c"},
		"negative effort": {Design: "alu", PlaceEffort: -1},
		"rate too high":   {Design: "alu", DefectRate: 1.0},
	} {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, r)
		}
		if _, err := r.CacheKey(); err == nil {
			t.Errorf("%s: CacheKey accepted %+v", name, r)
		}
	}
}

// TestRunRequestRepairLadder: a defect-injecting request goes through
// the supervisor's repair path and is itself deterministic.
func TestRunRequestRepairLadder(t *testing.T) {
	req := FlowRequest{Design: "alu", Seed: 4, DefectRate: 0.02, DefectSeed: 7}
	r1, err := RunRequest(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DefectSummary == "" || len(r1.Attempts) == 0 {
		t.Fatalf("repair request produced no repair evidence: %+v", r1)
	}
	r2, err := RunRequest(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1.StripMetrics()
	r2.StripMetrics()
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if !bytes.Equal(b1, b2) {
		t.Error("repair request is not deterministic across runs")
	}
}

// TestCanonicalKeyNamespaces: one payload under two namespaces must
// not collide.
func TestCanonicalKeyNamespaces(t *testing.T) {
	v := struct{ A int }{1}
	k1, err := CanonicalKey("run", v)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalKey("matrix", v)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("namespaces collide")
	}
}
