package core

import (
	"context"
	"fmt"
	"strings"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/route"
	"vpga/internal/sta"
)

// RoutingPoint is one sample of the routing-architecture sweep.
type RoutingPoint struct {
	Capacity    int
	Wirelength  float64
	Overflow    int
	RoutingVias int
	PeakTrack   int
	AvgTopSlack float64
}

// RoutingSweep is the deprecated positional-seed form of
// RunRoutingSweep.
//
// Deprecated: use RunRoutingSweep with SweepOptions.
func RoutingSweep(ctx context.Context, d bench.Design, arch *cells.PLBArch, capacities []int, seed int64) ([]RoutingPoint, error) {
	return RunRoutingSweep(ctx, d, arch, capacities, SweepOptions{Seed: seed})
}

// RunRoutingSweep explores the fabric's routing architecture — the
// paper's closing future work ("future work will also focus on
// exploring regular routing architectures for the VPGA fabric"): the
// design is placed and packed once, then routed under a range of
// per-channel track capacities, reporting congestion, detour cost and
// post-layout timing at each point. The capacity points share one
// placement problem, so they route sequentially; opts.Parallel has no
// effect here.
func RunRoutingSweep(ctx context.Context, d bench.Design, arch *cells.PLBArch, capacities []int, opts SweepOptions) ([]RoutingPoint, error) {
	run := opts.Trace.NewRun("routing/" + d.Name + "/" + arch.Name)
	defer run.Close()
	// One pool serves the flow run and every capacity point: the grid
	// shape never changes, so all routes after the first reuse one
	// ready-sized State.
	pool := route.NewPool()
	rep, art, err := RunFlowFull(ctx, d, Config{Arch: arch, Flow: FlowB, Seed: opts.Seed,
		PlaceWorkers: opts.PlaceWorkers, Trace: run,
		Stages: opts.Stages, routePool: pool})
	if err != nil {
		return nil, err
	}
	var out []RoutingPoint
	for _, cap := range capacities {
		routes, err := route.Route(art.Prob, route.Options{Capacity: cap, Ctx: ctx, Pool: pool})
		if err != nil {
			return nil, fmt.Errorf("routing sweep capacity %d: %w", cap, err)
		}
		post, err := sta.Analyze(art.Impl, arch, art.Prob, routes, sta.Options{ClockPeriod: rep.ClockPeriod})
		if err != nil {
			return nil, err
		}
		ta := routes.AssignTracks()
		out = append(out, RoutingPoint{
			Capacity:    cap,
			Wirelength:  routes.Total,
			Overflow:    routes.Overflow,
			RoutingVias: ta.RoutingVias,
			PeakTrack:   ta.PeakTrack,
			AvgTopSlack: post.AvgTopSlack,
		})
	}
	return out, nil
}

// FormatRoutingSweep renders sweep results.
func FormatRoutingSweep(design string, pts []RoutingPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Routing-architecture sweep on %s (Sec. 4 future work):\n", design)
	fmt.Fprintf(&sb, "  %9s %12s %9s %13s %10s %11s\n",
		"tracks", "wirelength", "overflow", "routing vias", "peak trk", "avg slack")
	for _, p := range pts {
		fmt.Fprintf(&sb, "  %9d %12.0f %9d %13d %10d %11.1f\n",
			p.Capacity, p.Wirelength, p.Overflow, p.RoutingVias, p.PeakTrack, p.AvgTopSlack)
	}
	return sb.String()
}
