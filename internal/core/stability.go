package core

import (
	"context"
	"fmt"
	"strings"

	"vpga/internal/bench"
	"vpga/internal/obs"
)

// ClaimStats aggregates the derived claims over several seeds: mean,
// minimum and maximum of each headline number, so the reproduction
// reports stability rather than a single lucky draw.
type ClaimStats struct {
	Seeds  []int64
	Runs   []Claims
	Labels []string
	Mean   []float64
	Min    []float64
	Max    []float64
}

// claimVector flattens the stable numeric fields of a Claims.
func claimVector(c Claims) ([]float64, []string) {
	return []float64{
			100 * c.AvgDatapathDieReduction,
			100 * c.AvgPackingOverheadReduction,
			100 * c.AvgSlackImprovement,
			100 * c.AvgPerfDegradationReduction,
			c.FirewireAreaRatio,
		}, []string{
			"datapath die-area reduction %",
			"packing-overhead reduction %",
			"slack improvement (% of clock)",
			"perf-degradation reduction %",
			"Firewire area ratio",
		}
}

// StabilityOptions parameterizes RunStabilityStudy. It surfaces what
// used to be hidden positional tail arguments (effort, parallel,
// progress) as named fields; the zero value is valid.
type StabilityOptions struct {
	// PlaceEffort scales annealing moves per object (0 = default).
	PlaceEffort int
	// PlaceWorkers sets each run's annealer worker count (see
	// Config.PlaceWorkers); results are bit-identical at any setting.
	PlaceWorkers int
	// Parallel bounds each matrix's concurrent flow runs (0 =
	// GOMAXPROCS). Results are bit-identical at any setting.
	Parallel int
	// Progress, when non-nil, receives one line per completed matrix
	// cell, in canonical order.
	Progress func(string)
	// Trace records every matrix run across all seeds.
	Trace *obs.Tracer
}

// StabilityStudy is the deprecated positional form of
// RunStabilityStudy.
//
// Deprecated: use RunStabilityStudy with StabilityOptions.
func StabilityStudy(ctx context.Context, suite bench.Suite, seeds []int64, effort, parallel int, progress func(string)) (*ClaimStats, error) {
	return RunStabilityStudy(ctx, suite, seeds, StabilityOptions{
		PlaceEffort: effort, Parallel: parallel, Progress: progress,
	})
}

// RunStabilityStudy runs the full matrix once per seed and aggregates
// the claims. Seeds run one after another; each matrix parallelizes
// internally up to the parallel bound (0 = GOMAXPROCS), which keeps
// the worker pool saturated without oversubscribing it.
func RunStabilityStudy(ctx context.Context, suite bench.Suite, seeds []int64, opts StabilityOptions) (*ClaimStats, error) {
	st := &ClaimStats{Seeds: seeds}
	for _, seed := range seeds {
		m, err := RunMatrix(ctx, suite, MatrixOptions{
			Seed: seed, PlaceEffort: opts.PlaceEffort, PlaceWorkers: opts.PlaceWorkers,
			Parallel: opts.Parallel, Progress: opts.Progress, Trace: opts.Trace,
		})
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		st.Runs = append(st.Runs, m.DeriveClaims())
	}
	for i, c := range st.Runs {
		vec, labels := claimVector(c)
		if i == 0 {
			st.Labels = labels
			st.Mean = make([]float64, len(vec))
			st.Min = append([]float64(nil), vec...)
			st.Max = append([]float64(nil), vec...)
		}
		for k, v := range vec {
			st.Mean[k] += v
			if v < st.Min[k] {
				st.Min[k] = v
			}
			if v > st.Max[k] {
				st.Max[k] = v
			}
		}
	}
	for k := range st.Mean {
		st.Mean[k] /= float64(len(st.Runs))
	}
	return st, nil
}

// String renders the study.
func (st *ClaimStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Stability over %d seeds %v:\n", len(st.Seeds), st.Seeds)
	fmt.Fprintf(&sb, "  %-34s %10s %10s %10s\n", "claim", "mean", "min", "max")
	for k, label := range st.Labels {
		fmt.Fprintf(&sb, "  %-34s %10.2f %10.2f %10.2f\n", label, st.Mean[k], st.Min[k], st.Max[k])
	}
	return sb.String()
}
