package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"vpga/internal/artifact"
	"vpga/internal/bench"
	"vpga/internal/cells"
)

// The stage-granular build cache: every stage boundary of the flow —
// mapped netlist, compacted+buffered netlist, placement, packed array,
// routing — produces a serializable, content-addressed artifact, and a
// run resolves the deepest cached prefix of its stage-key chain,
// restores it bit-identically, and computes only the suffix. Keys are
// cumulative: each stage's key hashes exactly the knobs upstream of
// that stage, so flow-a and flow-b requests share mapped/compacted
// netlists and placements, a clock-target sweep shares everything
// through placement, and a routing-knob variant re-routes a restored
// placement. This generalizes PR 7's placement checkpoint layer (one
// stage, namespace "ckpt/place/v1") into a single keying scheme under
// namespace "stage/v1"; old checkpoint entries are simply never hit
// again and age out of the store.

// stageKeyNS versions the key derivation; bump it when a stage's
// inputs or artifact payload change incompatibly.
const stageKeyNS = "stage/v1"

// Stage names, in pipeline order. FlowA omits StagePack.
const (
	StageMap     = "map"
	StageCompact = "compact"
	StagePlace   = "place"
	StagePack    = "pack"
	StageRoute   = "route"
)

// StageKey is one link of a request's per-stage key chain: the stage
// name and the content address of the artifact its boundary produces.
type StageKey struct {
	Stage string `json:"stage"`
	Key   string `json:"key"`
}

// StageUse records how one stage of an executed run was satisfied:
// restored from the stage cache (Hit) or computed. The flow appends
// one record per chain link to Report.StageCache, in pipeline order.
type StageUse struct {
	Stage string `json:"stage"`
	Key   string `json:"key"`
	Hit   bool   `json:"hit"`
}

// stageKeyID is the key payload: the cumulative knob set upstream of a
// stage, and nothing else. Field presence per stage:
//
//	map:     Design, RTLSHA, Arch
//	compact: + SkipCompaction
//	place:   + Seed, Effort, Defects        (no clock: the stored
//	         snapshot is the post-anneal placement, which the clock
//	         never reaches — net weighting + refinement rerun downstream)
//	pack:    + Flow, Clock                  (flow b only)
//	route:   + Flow, Clock, CapacityScale, CellsScale
//
// Flow is absent through the place stage — flows a and b share the
// whole pre-pack pipeline. Seed IS present from place on, so the
// repair ladder's reseeding rungs key fresh placements, while its
// channel-widening rungs differ only in the route link and reuse
// everything above it.
type stageKeyID struct {
	Stage         string  `json:"stage"`
	Design        string  `json:"design"`
	RTLSHA        string  `json:"rtl_sha"`
	Arch          string  `json:"arch"`
	Skip          bool    `json:"skip_compaction,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Effort        int     `json:"effort,omitempty"`
	Defects       string  `json:"defects,omitempty"`
	Flow          string  `json:"flow,omitempty"`
	Clock         float64 `json:"clock,omitempty"`
	CapacityScale float64 `json:"capacity_scale,omitempty"`
	CellsScale    float64 `json:"cells_scale,omitempty"`
}

// archSignature flattens the parts of a PLB architecture that shape
// the flow — name, tile areas, and the slot inventory — into a stable
// string, so two distinct custom architectures sharing a name cannot
// collide on one stage key.
func archSignature(a *cells.PLBArch) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|area=%g|comb=%g", a.Name, a.Area, a.CombArea)
	for _, s := range a.Slots {
		fmt.Fprintf(&sb, "|%s:%v", s.Component, s.Serves)
	}
	return sb.String()
}

// stageChain derives the ordered per-stage key chain for a resolved
// (design, config) pair. It hashes the resolved Config rather than the
// originating request because the repair ladder mutates the config
// between attempts — each rung keys exactly the artifacts it can
// legitimately reuse.
func stageChain(d bench.Design, cfg Config) ([]StageKey, error) {
	if cfg.Arch == nil {
		return nil, fmt.Errorf("core: stage keys need a resolved architecture")
	}
	effort := cfg.PlaceEffort
	if effort == 0 {
		effort = 6
	}
	rtl := sha256.Sum256([]byte(d.RTL))
	id := stageKeyID{
		Design: d.Name,
		RTLSHA: hex.EncodeToString(rtl[:]),
		Arch:   archSignature(cfg.Arch),
	}
	push := func(chain []StageKey, stage string) ([]StageKey, error) {
		id.Stage = stage
		key, err := CanonicalKey(stageKeyNS, id)
		if err != nil {
			return nil, err
		}
		return append(chain, StageKey{Stage: stage, Key: key}), nil
	}

	chain := make([]StageKey, 0, 5)
	var err error
	if chain, err = push(chain, StageMap); err != nil {
		return nil, err
	}
	id.Skip = cfg.SkipCompaction
	if chain, err = push(chain, StageCompact); err != nil {
		return nil, err
	}
	id.Seed = cfg.Seed
	id.Effort = effort
	if cfg.Defects != nil {
		id.Defects = cfg.Defects.String()
	}
	if chain, err = push(chain, StagePlace); err != nil {
		return nil, err
	}
	id.Flow = cfg.Flow.String()
	id.Clock = cfg.ClockPeriod
	if cfg.Flow == FlowB {
		if chain, err = push(chain, StagePack); err != nil {
			return nil, err
		}
	}
	id.CapacityScale = cfg.RouteCapacityScale
	id.CellsScale = cfg.RouteCellsScale
	if chain, err = push(chain, StageRoute); err != nil {
		return nil, err
	}
	return chain, nil
}

// StageKeys resolves the request and returns its ordered per-stage key
// chain — the content addresses the run's artifacts live under. Two
// requests share a prefix of their chains exactly when a run of one
// can restore the other's artifacts through that depth: clients
// compare chains to predict which prefix a run will reuse.
func (r FlowRequest) StageKeys() ([]StageKey, error) {
	d, cfg, err := r.Resolve()
	if err != nil {
		return nil, err
	}
	return stageChain(d, cfg)
}

// StageCounts is one stage's cache counters.
type StageCounts struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// StageCacheStats maps stage name to counters. Stages lists the keys
// sorted, for deterministic rendering.
type StageCacheStats map[string]StageCounts

// Stages returns the stat's stage names, sorted.
func (s StageCacheStats) Stages() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StageCache is the stage-granular build cache: an artifact store plus
// per-stage hit/miss counters. It is safe for concurrent use by any
// number of flow runs (the daemon shares one across all jobs).
//
// A stage counts a hit when the run satisfied it from the cache —
// restored directly, or skipped entirely because a deeper artifact
// already carried its output — and a miss when the run computed it.
// Like tracing, the cache is pure acceleration: reports are
// bit-identical (after StripMetrics) with or without it.
type StageCache struct {
	store *artifact.Store

	mu     sync.Mutex
	counts map[string]*StageCounts
}

// NewStageCache wraps an artifact store as a stage cache. A nil store
// yields a nil cache (every lookup misses, nothing is stored).
func NewStageCache(store *artifact.Store) *StageCache {
	if store == nil {
		return nil
	}
	return &StageCache{store: store, counts: make(map[string]*StageCounts)}
}

// Store exposes the underlying artifact store.
func (c *StageCache) Store() *artifact.Store {
	if c == nil {
		return nil
	}
	return c.store
}

// Stats snapshots the per-stage counters.
func (c *StageCache) Stats() StageCacheStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(StageCacheStats, len(c.counts))
	for k, v := range c.counts {
		out[k] = *v
	}
	return out
}

func (c *StageCache) bump(stage string, hit bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	sc := c.counts[stage]
	if sc == nil {
		sc = &StageCounts{}
		c.counts[stage] = sc
	}
	if hit {
		sc.Hits++
	} else {
		sc.Misses++
	}
	c.mu.Unlock()
}

// get fetches raw artifact bytes; every store-level failure is a miss.
// Counting is the pipeline's job (a fetched artifact may still fail to
// decode, which must count as a miss).
func (c *StageCache) get(key string) ([]byte, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	return c.store.Get(key)
}

// put stores an artifact, best-effort: a failed save costs a later run
// its shortcut, never this run its result.
func (c *StageCache) put(key string, payload []byte) {
	if c == nil || key == "" || payload == nil {
		return
	}
	c.store.Put(key, payload)
}
