package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"vpga/internal/faultinject"
	"vpga/internal/obs"
)

func testStageCache(t *testing.T) *StageCache {
	t.Helper()
	return NewStageCache(ckptStore(t))
}

// runWithStages executes req against the stage cache under a fresh
// trace and returns the stripped report, its pre-strip stage
// provenance, and the run's anneal-proposal count (zero iff the
// placement came from the cache).
func runWithStages(t *testing.T, req FlowRequest, stages *StageCache) (*Report, []StageUse, int64) {
	t.Helper()
	run := obs.NewTracer().NewRun(req.Design + "/" + req.Flow)
	res, err := Run(context.Background(), req, ExecOptions{Trace: run, Stages: stages})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	proposed := run.SolverMetrics().AnnealProposed
	uses := append([]StageUse(nil), res.Report.StageCache...)
	res.Report.StripMetrics()
	return res.Report, uses, proposed
}

// hitsOf flattens stage provenance to stage → hit.
func hitsOf(t *testing.T, uses []StageUse, wantStages []string) map[string]bool {
	t.Helper()
	if len(uses) != len(wantStages) {
		t.Fatalf("stage provenance %v, want stages %v", uses, wantStages)
	}
	out := make(map[string]bool, len(uses))
	for i, u := range uses {
		if u.Stage != wantStages[i] {
			t.Fatalf("stage %d = %q, want %q", i, u.Stage, wantStages[i])
		}
		if u.Key == "" {
			t.Fatalf("stage %s has no key", u.Stage)
		}
		out[u.Stage] = u.Hit
	}
	return out
}

var stageReq = FlowRequest{Design: "alu", Arch: ArchSpec{Kind: "granular"},
	Flow: "b", Seed: 11, PlaceEffort: 2}

// TestStageKeyChain: the per-stage key chain exposes exactly the
// sharing structure the cache exploits — flows a and b share the
// pre-pack prefix, a clock retarget shares through placement, a
// reseed shares through compaction, and compaction knobs split the
// chain right below technology mapping.
func TestStageKeyChain(t *testing.T) {
	chain := func(req FlowRequest) []StageKey {
		t.Helper()
		keys, err := req.StageKeys()
		if err != nil {
			t.Fatalf("StageKeys: %v", err)
		}
		return keys
	}
	sharedPrefix := func(a, b []StageKey) int {
		n := 0
		for n < len(a) && n < len(b) && a[n] == b[n] {
			n++
		}
		return n
	}

	b := chain(stageReq)
	wantB := []string{StageMap, StageCompact, StagePlace, StagePack, StageRoute}
	for i, sk := range b {
		if sk.Stage != wantB[i] {
			t.Fatalf("flow-b chain %v, want stage order %v", b, wantB)
		}
	}
	seen := map[string]bool{}
	for _, sk := range b {
		if seen[sk.Key] {
			t.Fatalf("duplicate key in chain %v", b)
		}
		seen[sk.Key] = true
	}

	flowA := stageReq
	flowA.Flow = "a"
	a := chain(flowA)
	if len(a) != 4 || a[3].Stage != StageRoute {
		t.Fatalf("flow-a chain %v, want map/compact/place/route", a)
	}
	if got := sharedPrefix(a, b); got != 3 {
		t.Fatalf("flows a and b share %d stages, want the pre-pack 3", got)
	}

	clocked := stageReq
	clocked.ClockPeriod = 9000
	if got := sharedPrefix(chain(clocked), b); got != 3 {
		t.Fatalf("clock retarget shares %d stages, want 3 (through place)", got)
	}

	reseeded := stageReq
	reseeded.Seed = 12
	if got := sharedPrefix(chain(reseeded), b); got != 2 {
		t.Fatalf("reseed shares %d stages, want 2 (through compact)", got)
	}

	skip := stageReq
	skip.SkipCompaction = true
	if got := sharedPrefix(chain(skip), b); got != 1 {
		t.Fatalf("skip-compaction shares %d stages, want 1 (map only)", got)
	}

	if _, err := (FlowRequest{}).StageKeys(); err == nil {
		t.Fatal("StageKeys accepted an empty request")
	}
}

// TestStageCacheFullResume: an identical rerun restores the whole
// chain — every stage a hit, the annealer never runs, and the report
// is bit-identical to the cold run's.
func TestStageCacheFullResume(t *testing.T) {
	cold, err := RunRequest(context.Background(), stageReq, nil)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cold.StripMetrics()

	stages := testStageCache(t)
	wantStages := []string{StageMap, StageCompact, StagePlace, StagePack, StageRoute}

	first, uses, proposed := runWithStages(t, stageReq, stages)
	if proposed == 0 {
		t.Fatal("first run hit an empty cache")
	}
	for stage, hit := range hitsOf(t, uses, wantStages) {
		if hit {
			t.Fatalf("first run hit stage %s in an empty cache", stage)
		}
	}
	if !reflect.DeepEqual(cold, first) {
		t.Fatalf("cache-backed run diverged from cold run:\ncold %+v\nwarm %+v", cold, first)
	}

	second, uses, proposed := runWithStages(t, stageReq, stages)
	if proposed != 0 {
		t.Fatalf("full resume still annealed (%d proposals)", proposed)
	}
	for stage, hit := range hitsOf(t, uses, wantStages) {
		if !hit {
			t.Fatalf("identical rerun missed stage %s", stage)
		}
	}
	if !reflect.DeepEqual(cold, second) {
		t.Fatalf("resumed run diverged from cold run:\ncold %+v\nhit %+v", cold, second)
	}

	stats := stages.Stats()
	for _, stage := range wantStages {
		if c := stats[stage]; c.Hits != 1 || c.Misses != 1 {
			t.Fatalf("stage %s counters %+v, want 1 hit / 1 miss", stage, c)
		}
	}
}

// TestStageCacheClockRetarget: a request differing only in clock
// target restores the placement (its key excludes the clock) and
// recomputes packing and routing — and still reports bit-identically
// to its own cold run.
func TestStageCacheClockRetarget(t *testing.T) {
	variant := stageReq
	variant.ClockPeriod = 9000
	cold, err := RunRequest(context.Background(), variant, nil)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cold.StripMetrics()

	stages := testStageCache(t)
	runWithStages(t, stageReq, stages) // seed the cache at the base clock

	rep, uses, proposed := runWithStages(t, variant, stages)
	if proposed != 0 {
		t.Fatalf("clock retarget re-annealed (%d proposals)", proposed)
	}
	hits := hitsOf(t, uses, []string{StageMap, StageCompact, StagePlace, StagePack, StageRoute})
	want := map[string]bool{StageMap: true, StageCompact: true, StagePlace: true,
		StagePack: false, StageRoute: false}
	if !reflect.DeepEqual(hits, want) {
		t.Fatalf("clock-retarget provenance %v, want %v", hits, want)
	}
	if !reflect.DeepEqual(cold, rep) {
		t.Fatalf("clock-retarget run diverged from its cold run:\ncold %+v\nwarm %+v", cold, rep)
	}
}

// TestStageCacheRouteKnobVariant: a config differing only in routing
// knobs restores everything through packing and only re-routes. The
// route knobs live on Config (the repair ladder's widening rungs), so
// this exercises the Config-level cache attachment.
func TestStageCacheRouteKnobVariant(t *testing.T) {
	d, base, err := stageReq.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	variant := base
	variant.RouteCapacityScale = 1.5

	cold, err := RunFlow(context.Background(), d, variant)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cold.StripMetrics()

	stages := testStageCache(t)
	seeded := base
	seeded.Stages = stages
	if _, err := RunFlow(context.Background(), d, seeded); err != nil {
		t.Fatalf("seeding run: %v", err)
	}

	warmCfg := variant
	warmCfg.Stages = stages
	run := obs.NewTracer().NewRun("route-knob")
	warmCfg.Trace = run
	rep, err := RunFlow(context.Background(), d, warmCfg)
	run.Close()
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if proposed := run.SolverMetrics().AnnealProposed; proposed != 0 {
		t.Fatalf("route-knob variant re-annealed (%d proposals)", proposed)
	}
	hits := hitsOf(t, rep.StageCache, []string{StageMap, StageCompact, StagePlace, StagePack, StageRoute})
	want := map[string]bool{StageMap: true, StageCompact: true, StagePlace: true,
		StagePack: true, StageRoute: false}
	if !reflect.DeepEqual(hits, want) {
		t.Fatalf("route-knob provenance %v, want %v", hits, want)
	}
	rep.StripMetrics()
	if !reflect.DeepEqual(cold, rep) {
		t.Fatalf("route-knob run diverged from its cold run:\ncold %+v\nwarm %+v", cold, rep)
	}
}

// TestStageCacheTornWrite: torn writes at the artifact store make
// saving best-effort — the interrupted run still reports correctly,
// the next run heals the store by recomputing, and a third run
// finally resumes from clean entries.
func TestStageCacheTornWrite(t *testing.T) {
	cold, err := RunRequest(context.Background(), stageReq, nil)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cold.StripMetrics()

	stages := testStageCache(t)
	t.Cleanup(faultinject.Disable)
	faultinject.Enable(faultinject.New(1, 1.0,
		[]faultinject.Kind{faultinject.KindTorn}, "artifact.write"))
	torn, _, _ := runWithStages(t, stageReq, stages)
	if !reflect.DeepEqual(cold, torn) {
		t.Fatal("torn-write run diverged from cold run")
	}
	faultinject.Disable()

	// The torn entries must read as misses, never as wrong artifacts.
	healed, uses, _ := runWithStages(t, stageReq, stages)
	for _, u := range uses {
		if u.Hit {
			t.Fatalf("stage %s restored from a torn write", u.Stage)
		}
	}
	if !reflect.DeepEqual(cold, healed) {
		t.Fatal("healing run diverged from cold run")
	}

	resumed, uses, proposed := runWithStages(t, stageReq, stages)
	if proposed != 0 {
		t.Fatalf("post-heal resume still annealed (%d proposals)", proposed)
	}
	for _, u := range uses {
		if !u.Hit {
			t.Fatalf("post-heal resume missed stage %s", u.Stage)
		}
	}
	if !reflect.DeepEqual(cold, resumed) {
		t.Fatal("post-heal resume diverged from cold run")
	}
}

// TestRunWrapperEquivalence: the deprecated entry points are thin
// wrappers over the unified pipeline — same report, bit for bit — and
// Run surfaces the request's stage-key chain.
func TestRunWrapperEquivalence(t *testing.T) {
	ctx := context.Background()
	viaRunRequest, err := RunRequest(ctx, stageReq, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaExec, err := RunRequestExec(ctx, stageReq, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, stageReq, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaRunRequest.StripMetrics()
	viaExec.StripMetrics()
	res.Report.StripMetrics()
	if !reflect.DeepEqual(viaRunRequest, viaExec) {
		t.Fatal("RunRequest and RunRequestExec reports diverged")
	}
	if !reflect.DeepEqual(viaRunRequest, res.Report) {
		t.Fatal("RunRequest and Run reports diverged")
	}

	wantKeys, err := stageReq.StageKeys()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.StageKeys, wantKeys) {
		t.Fatalf("Run stage keys %v, want %v", res.StageKeys, wantKeys)
	}

	d, cfg, err := stageReq.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunFlow(ctx, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct.StripMetrics()
	if !reflect.DeepEqual(direct, res.Report) {
		t.Fatal("RunFlow and Run reports diverged")
	}
}

// TestSweepSharedStageCache: a granularity sweep over a shared stage
// cache produces byte-identical results to the uncached sweep, and a
// repeat sweep resolves its pre-route stages from cache.
func TestSweepSharedStageCache(t *testing.T) {
	d, _, err := stageReq.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	archs := DefaultSweepArchs()[:2]
	ctx := context.Background()

	plain, err := RunGranularitySweep(ctx, d, archs, SweepOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	stages := testStageCache(t)
	cached, err := RunGranularitySweep(ctx, d, archs, SweepOptions{Seed: 11, Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	encPlain, _ := json.Marshal(plain)
	encCached, _ := json.Marshal(cached)
	if !bytes.Equal(encPlain, encCached) {
		t.Fatalf("cached sweep diverged:\nplain  %s\ncached %s", encPlain, encCached)
	}

	again, err := RunGranularitySweep(ctx, d, archs, SweepOptions{Seed: 11, Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	encAgain, _ := json.Marshal(again)
	if !bytes.Equal(encPlain, encAgain) {
		t.Fatal("repeat cached sweep diverged from plain sweep")
	}
	stats := stages.Stats()
	for _, stage := range []string{StageMap, StageCompact, StagePlace} {
		if stats[stage].Hits == 0 {
			t.Fatalf("repeat sweep never hit stage %s: %+v", stage, stats)
		}
	}
}
