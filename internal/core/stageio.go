package core

import (
	"encoding/json"

	"vpga/internal/netlist"
	"vpga/internal/pack"
	"vpga/internal/route"
)

// Stage artifact payloads. Each artifact is cumulative: it carries its
// stage's output plus every report field the stages above it produced,
// so restoring at depth N needs no artifact shallower than N's own
// restore dependencies (the compacted netlist for placement onward).
// All payloads are schema-versioned JSON; any decode failure — corrupt
// bytes, newer schema, shape mismatch — is a cache miss, never an
// error: the pipeline recomputes and overwrites.

// stageArtifactSchema versions every stage payload together; bump it
// (or stageKeyNS) when a payload changes incompatibly.
const stageArtifactSchema = 1

// mapArtifact is the technology-mapping boundary: the mapped component
// netlist before compaction.
type mapArtifact struct {
	Schema    int              `json:"schema"`
	Netlist   *netlist.Netlist `json:"netlist"`
	GateCount float64          `json:"gate_count"`
}

// compactArtifact is the logic-synthesis boundary: the compacted (or
// identity-configured) netlist after fanout buffer insertion — the
// exact netlist every physical stage consumes.
type compactArtifact struct {
	Schema          int              `json:"schema"`
	Netlist         *netlist.Netlist `json:"netlist"`
	GateCount       float64          `json:"gate_count"`
	Reduction       float64          `json:"reduction"`
	ConfigCounts    map[string]int   `json:"config_counts,omitempty"`
	FullAdders      int              `json:"full_adders,omitempty"`
	BuffersInserted int              `json:"buffers_inserted,omitempty"`
}

// placeArtifact is the post-anneal placement snapshot: the flat
// position array in object order. Deliberately pre-refinement — net
// weighting and refinement depend on the clock target, which the place
// key excludes, so they rerun in the suffix (cheap and deterministic)
// and a clock-target sweep shares one annealed placement.
type placeArtifact struct {
	Schema    int       `json:"schema"`
	Objects   int       `json:"objects"`
	Positions []float64 `json:"positions"`
}

// packArtifact is the flow-b packing boundary: the pack result plus
// the legalized (post-pack) positions the router and post-layout
// analyses read.
type packArtifact struct {
	Schema    int          `json:"schema"`
	Pack      *pack.Result `json:"pack"`
	Objects   int          `json:"objects"`
	Positions []float64    `json:"positions"`
}

// routeArtifact is the routing boundary: the full routed design
// (route.Result carries its own wire-form schema).
type routeArtifact struct {
	Schema int           `json:"schema"`
	Routes *route.Result `json:"routes"`
}

// encodeStage marshals a payload, returning nil on failure (the caller
// simply stores nothing).
func encodeStage(v any) []byte {
	enc, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return enc
}

// decodeStage unmarshals raw artifact bytes into out, rejecting newer
// schemas. schema is the payload's schema field, extracted first so a
// future payload shape cannot half-populate out.
func decodeStage(raw []byte, out any) bool {
	var probe struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil || probe.Schema > stageArtifactSchema {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}
