package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/defect"
)

func smallSuite() bench.Suite {
	return bench.Suite{
		ALU:      bench.ALU(4),
		Firewire: bench.Firewire(4),
		FPU:      bench.FPU(4),
		Switch:   bench.Switch(2, 4, 2),
	}
}

// waitGoroutines waits for the goroutine count to drain back to near
// the baseline, failing the test if the pool leaked workers.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d now, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestRunMatrixCancellation cancels the matrix after the first
// completed run: RunMatrix must return promptly, the pool must drain
// without leaking goroutines, and the partial matrix must stay
// consistent (every populated cell matches its map keys; every
// unpopulated cell is accounted for in the ledger or never started).
func TestRunMatrixCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	done := make(chan struct{})
	var m *Matrix
	var err error
	go func() {
		defer close(done)
		m, err = RunMatrix(ctx, smallSuite(), MatrixOptions{
			Seed: 3, PlaceEffort: 1, Parallel: 2,
			Progress: func(string) { once.Do(cancel) },
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("RunMatrix did not return after cancellation")
	}
	if err == nil {
		t.Fatal("cancelled matrix returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if m == nil {
		t.Fatal("cancelled matrix is nil; want partial matrix")
	}
	for design, byArch := range m.Reports {
		for arch, byFlow := range byArch {
			for flow, rep := range byFlow {
				if rep == nil {
					continue
				}
				if rep.Design != design || rep.Arch != arch || rep.Flow != flow {
					t.Fatalf("cell %s/%s/%s holds report for %s/%s/%s",
						design, arch, flow, rep.Design, rep.Arch, rep.Flow)
				}
			}
		}
	}
	for _, fe := range m.Errors {
		switch fe.Stage {
		case "cancelled", "timeout", "skipped":
		default:
			t.Fatalf("unexpected ledger stage %q: %v", fe.Stage, fe)
		}
	}
	waitGoroutines(t, baseline)
}

// TestRunMatrixPanicIsolation injects a panic into one worker: the
// matrix must complete with the crash recorded as a Stage "panic"
// ledger entry and every other cell populated.
func TestRunMatrixPanicIsolation(t *testing.T) {
	testPanicHook = func(design, arch string, flow FlowKind) {
		if design == "FPU" && arch == "lut-plb" && flow == FlowB {
			panic("injected worker crash")
		}
	}
	defer func() { testPanicHook = nil }()

	m, err := RunMatrix(context.Background(), smallSuite(), MatrixOptions{
		Seed: 3, PlaceEffort: 1, Parallel: 4, ContinueOnError: true,
	})
	if err != nil {
		t.Fatalf("ContinueOnError matrix returned error: %v", err)
	}
	if len(m.Errors) != 1 {
		t.Fatalf("ledger has %d entries, want 1: %v", len(m.Errors), m.Errors)
	}
	fe := m.Errors[0]
	if fe.Stage != "panic" || fe.Design != "FPU" || fe.Arch != "lut-plb" || fe.Flow != "flow b" {
		t.Fatalf("ledger entry %+v, want FPU/lut-plb/flow b panic", fe)
	}
	if !strings.Contains(fe.Err.Error(), "injected worker crash") {
		t.Fatalf("panic cause lost: %v", fe.Err)
	}
	filled := 0
	for _, byArch := range m.Reports {
		for _, byFlow := range byArch {
			for _, rep := range byFlow {
				if rep != nil {
					filled++
				}
			}
		}
	}
	if filled != 15 {
		t.Fatalf("%d cells populated, want 15 (16 minus the crashed one)", filled)
	}
	if m.Get("FPU", "lut-plb", FlowB) != nil {
		t.Fatal("crashed cell holds a report")
	}
}

// TestRunMatrixContinueOnError: a design whose RTL does not compile
// must not abort the matrix; its four cells land in the ledger (one
// failure plus three skipped) and the other designs complete.
func TestRunMatrixContinueOnError(t *testing.T) {
	suite := smallSuite()
	suite.Firewire = bench.Design{Name: "broken", RTL: "module m(invalid"}
	m, err := RunMatrix(context.Background(), suite, MatrixOptions{
		Seed: 1, PlaceEffort: 1, Parallel: 4, ContinueOnError: true,
	})
	if err != nil {
		t.Fatalf("ContinueOnError matrix returned error: %v", err)
	}
	if len(m.Errors) != 4 {
		t.Fatalf("ledger has %d entries, want 4: %v", len(m.Errors), m.Errors)
	}
	failed, skipped := 0, 0
	for _, fe := range m.Errors {
		if fe.Design != "broken" {
			t.Fatalf("ledger names %q, want only the broken design", fe.Design)
		}
		if fe.Stage == "skipped" {
			skipped++
		} else {
			failed++
		}
	}
	if failed != 1 || skipped != 3 {
		t.Fatalf("ledger split %d failed / %d skipped, want 1/3", failed, skipped)
	}
	for _, d := range []string{"ALU", "FPU", "NetworkSwitch"} {
		if m.Get(d, "granular-plb", FlowB) == nil {
			t.Fatalf("healthy design %s missing from matrix", d)
		}
	}
}

// TestRunMatrixPerRunTimeout: an unmeetable per-run deadline must fail
// every attempted cell with Stage "timeout" without hanging the pool.
func TestRunMatrixPerRunTimeout(t *testing.T) {
	m, err := RunMatrix(context.Background(), smallSuite(), MatrixOptions{
		Seed: 1, PlaceEffort: 1, Parallel: 4, ContinueOnError: true,
		PerRunTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("ContinueOnError matrix returned error: %v", err)
	}
	if len(m.Errors) != 16 {
		t.Fatalf("ledger has %d entries, want 16", len(m.Errors))
	}
	timeouts := 0
	for _, fe := range m.Errors {
		if fe.Stage == "timeout" {
			timeouts++
		}
	}
	if timeouts < 4 {
		t.Fatalf("only %d timeout entries in %v", timeouts, m.Errors)
	}
}

// TestRepairLadder drives runFlowRepairWith with a scripted runner and
// checks the deterministic escalation schedule.
func TestRepairLadder(t *testing.T) {
	d := bench.Design{Name: "fake"}
	base := Config{Seed: 40, ClockPeriod: 1000, Flow: FlowB}

	var seen []Config
	failUntil := func(n int) func(context.Context, bench.Design, Config) (*Report, error) {
		return func(_ context.Context, _ bench.Design, cfg Config) (*Report, error) {
			seen = append(seen, cfg)
			if len(seen) <= n {
				return nil, &FlowError{Design: d.Name, Stage: "route", Err: fmt.Errorf("congested")}
			}
			return &Report{Design: d.Name}, nil
		}
	}

	// Succeeds on the third attempt (after two escalations).
	seen = nil
	rep, err := runFlowRepairWith(context.Background(), d, base, failUntil(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Escalations != 2 || len(rep.Attempts) != 3 {
		t.Fatalf("escalations %d, attempts %d; want 2 and 3", rep.Escalations, len(rep.Attempts))
	}
	wantActions := []string{"baseline", "reseed", "widen-channels"}
	for i, a := range rep.Attempts {
		if a.Action != wantActions[i] {
			t.Fatalf("attempt %d action %q, want %q", i, a.Action, wantActions[i])
		}
	}
	if seen[1].Seed != 40+1009 || seen[2].Seed != 40+2*1009 {
		t.Fatalf("escalation seeds %d, %d; want %d, %d", seen[1].Seed, seen[2].Seed, 40+1009, 40+2*1009)
	}
	if seen[2].RouteCapacityScale != 1.5 {
		t.Fatalf("widen-channels capacity scale %.2f, want 1.5", seen[2].RouteCapacityScale)
	}

	// The final rung relaxes the clock and doubles channel capacity.
	seen = nil
	rep, err = runFlowRepairWith(context.Background(), d, base, failUntil(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Escalations != 3 {
		t.Fatalf("escalations %d, want 3", rep.Escalations)
	}
	last := seen[3]
	if last.RouteCapacityScale != 2.0 || last.ClockPeriod != 1250 {
		t.Fatalf("relax-clock rung got scale %.2f clock %.0f, want 2.0 and 1250", last.RouteCapacityScale, last.ClockPeriod)
	}

	// Budget exhaustion surfaces Stage "repair" with the full history.
	seen = nil
	_, err = runFlowRepairWith(context.Background(), d, base, failUntil(99))
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != "repair" {
		t.Fatalf("exhausted ladder returned %v, want Stage \"repair\"", err)
	}
	if len(seen) != DefaultRepairBudget+1 {
		t.Fatalf("%d attempts, want %d", len(seen), DefaultRepairBudget+1)
	}

	// Non-repairable failures do not burn the budget.
	seen = nil
	_, err = runFlowRepairWith(context.Background(), d, base,
		func(_ context.Context, _ bench.Design, cfg Config) (*Report, error) {
			seen = append(seen, cfg)
			return nil, &FlowError{Design: d.Name, Stage: "rtl", Err: fmt.Errorf("parse error")}
		})
	if !errors.As(err, &fe) || fe.Stage != "rtl" {
		t.Fatalf("front-end failure returned %v, want Stage \"rtl\"", err)
	}
	if len(seen) != 1 {
		t.Fatalf("front-end failure retried %d times, want 1", len(seen))
	}
}

// TestRunFlowRepairUnroutable: a fully-dead fabric must exhaust the
// ladder and come back as a structured Stage "repair" error, never a
// crash or a hang.
func TestRunFlowRepairUnroutable(t *testing.T) {
	dm := defect.New(5, 1.0) // every site stuck, every track dead
	_, err := RunFlowRepair(context.Background(), bench.ALU(4), Config{
		Arch: cells.GranularPLB(), Flow: FlowB, Seed: 1, PlaceEffort: 1,
		Defects: dm, RepairBudget: 1,
	})
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T is not a *FlowError: %v", err, err)
	}
	if fe.Stage != "repair" {
		t.Fatalf("stage %q, want \"repair\"", fe.Stage)
	}
	if fe.Attempt != 1 {
		t.Fatalf("final attempt %d, want 1 (budget 1)", fe.Attempt)
	}
}

// TestRunMatrixUnroutableDefects: a fabric where every site and track
// is dead must still produce a completed matrix — every cell accounted
// for in the ledger, no crash, no hung pool.
func TestRunMatrixUnroutableDefects(t *testing.T) {
	m, err := RunMatrix(context.Background(), smallSuite(), MatrixOptions{
		Seed: 1, PlaceEffort: 1, Parallel: 4, ContinueOnError: true,
		Defects: defect.New(9, 1.0), RepairBudget: -1,
	})
	if err != nil {
		t.Fatalf("ContinueOnError matrix returned error: %v", err)
	}
	if len(m.Errors) != 16 {
		t.Fatalf("ledger has %d entries, want all 16 cells", len(m.Errors))
	}
	repairs, skips := 0, 0
	for _, fe := range m.Errors {
		switch fe.Stage {
		case "repair":
			repairs++
		case "skipped":
			skips++
		default:
			t.Fatalf("unexpected ledger stage %q: %v", fe.Stage, fe)
		}
	}
	if repairs != 4 || skips != 12 {
		t.Fatalf("ledger split %d repair / %d skipped, want 4/12", repairs, skips)
	}
}

// TestRunMatrixDefectParallelDeterminism extends the parallel
// determinism guarantee to defective fabrics: with a fixed (defect
// seed, flow seed) pair, the matrix — including the repair ladder and
// the error ledger — must be identical at 1 worker and 4 workers.
func TestRunMatrixDefectParallelDeterminism(t *testing.T) {
	dm := defect.New(11, 0.01)
	run := func(parallel int) *Matrix {
		m, err := RunMatrix(context.Background(), smallSuite(), MatrixOptions{
			Seed: 7, PlaceEffort: 1, Parallel: parallel,
			Defects: dm, ContinueOnError: true,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		stripRuntime(m)
		return m
	}
	seq := run(1)
	par := run(4)
	if !reflect.DeepEqual(seq.Reports, par.Reports) {
		t.Fatal("defective-fabric reports diverged between 1 and 4 workers")
	}
	if len(seq.Errors) != len(par.Errors) {
		t.Fatalf("ledger length diverged: %d vs %d", len(seq.Errors), len(par.Errors))
	}
	for i := range seq.Errors {
		a, b := seq.Errors[i], par.Errors[i]
		if a.Design != b.Design || a.Arch != b.Arch || a.Flow != b.Flow || a.Stage != b.Stage {
			t.Fatalf("ledger entry %d diverged: %v vs %v", i, a, b)
		}
	}
}

// TestDefectYieldDeterminism: the yield sweep must be reproducible and
// its table must account for every map.
func TestDefectYieldDeterminism(t *testing.T) {
	opts := YieldOptions{Rate: 0.01, Maps: 3, BaseSeed: 50, FlowSeed: 7, Parallel: 2}
	a, err := DefectYield(context.Background(), bench.ALU(4), cells.GranularPLB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefectYield(context.Background(), bench.ALU(4), cells.GranularPLB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("yield sweep diverged across identical runs")
	}
	tbl := a.Table()
	if !strings.Contains(tbl, "overall yield") || !strings.Contains(tbl, "3 maps") {
		t.Fatalf("yield table malformed:\n%s", tbl)
	}
}
