package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"vpga/internal/bench"
	"vpga/internal/cells"
)

// The deprecated positional sweep entry points must stay bit-identical
// to the SweepOptions forms they wrap, and the options forms must be
// deterministic across parallel widths.

func equivalenceArchs() []*cells.PLBArch {
	return []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()}
}

func asJSON(t *testing.T, v any) []byte {
	t.Helper()
	enc, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestGranularitySweepEquivalence(t *testing.T) {
	ctx := context.Background()
	d := bench.ALU(8)
	old, err := GranularitySweep(ctx, d, equivalenceArchs(), 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4} {
		got, err := RunGranularitySweep(ctx, d, equivalenceArchs(), SweepOptions{Seed: 11, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(asJSON(t, old), asJSON(t, got)) {
			t.Errorf("RunGranularitySweep(parallel=%d) differs from deprecated GranularitySweep", parallel)
		}
	}
}

func TestDomainExploreEquivalence(t *testing.T) {
	ctx := context.Background()
	domains := []bench.Design{bench.ALU(8), bench.FIR(4, 4)}
	old, err := DomainExplore(ctx, domains, equivalenceArchs(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4} {
		got, err := RunDomainExplore(ctx, domains, equivalenceArchs(), SweepOptions{Seed: 3, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(asJSON(t, old), asJSON(t, got)) {
			t.Errorf("RunDomainExplore(parallel=%d) differs from deprecated DomainExplore", parallel)
		}
	}
}

func TestRoutingSweepEquivalence(t *testing.T) {
	ctx := context.Background()
	d := bench.ALU(8)
	arch := cells.GranularPLB()
	caps := []int{4, 16}
	old, err := RoutingSweep(ctx, d, arch, caps, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunRoutingSweep(ctx, d, arch, caps, SweepOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(asJSON(t, old), asJSON(t, got)) {
		t.Error("RunRoutingSweep differs from deprecated RoutingSweep")
	}
}

func TestStabilityStudyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix-per-seed study in -short mode")
	}
	ctx := context.Background()
	suite := bench.TestSuite()
	seeds := []int64{1}
	old, err := StabilityStudy(ctx, suite, seeds, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStabilityStudy(ctx, suite, seeds, StabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(asJSON(t, old), asJSON(t, got)) {
		t.Error("RunStabilityStudy differs from deprecated StabilityStudy")
	}
}
