package core

import "fmt"

// Ticket-level request encoding: the matrix and the granularity sweep
// are composites of independent flow runs, and every one of those runs
// is expressible as a canonical FlowRequest — the same unit POST
// /v1/runs accepts and the content-addressed cache keys. A coordinator
// can therefore ship cells ("tickets") to worker nodes instead of
// whole matrices, steal queued tickets from a dead node, and still
// merge a final result byte-identical to a single-node run, because
// each ticket is a pure function of its request.
//
// The only cross-cell dependency is clock pinning: one cell per
// composite runs first with ClockPeriod 0 and its report derives the
// clock every dependent cell is pinned to. The plans below encode
// exactly the enumeration order and clock rules RunMatrix and
// RunGranularitySweep use, so a ticketed execution and a monolithic
// one produce the same reports cell for cell.

// MatrixDesignNames are the canonical FlowRequest design names of the
// Table 1/2 suite, in the paper's Table 1 order — index-aligned with
// bench.Suite.All() at either scale.
func MatrixDesignNames() []string {
	return []string{"alu", "firewire", "fpu", "switch"}
}

// MatrixArchKinds are the matrix's architecture columns as ArchSpec
// kinds, in RunMatrix's canonical order; MatrixArchNames are the
// resolved cells.PLBArch names keying Matrix.Reports, index-aligned.
func MatrixArchKinds() []string { return []string{"granular", "lut"} }

// MatrixArchNames resolves MatrixArchKinds to the Report/Matrix arch
// names ("granular-plb", "lut-plb").
func MatrixArchNames() []string {
	kinds := MatrixArchKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		arch, err := ArchSpec{Kind: k}.Resolve()
		if err != nil {
			panic(fmt.Sprintf("core: named arch %q: %v", k, err)) // unreachable: named kinds always resolve
		}
		names[i] = arch.Name
	}
	return names
}

// MatrixFlows are the matrix's flow columns in canonical order.
func MatrixFlows() []string { return []string{"a", "b"} }

// TicketLabel renders the request's display label — the same
// design/arch/flow shape the daemon uses for job labels — for
// ticket-level scheduling and tracing.
func (r FlowRequest) TicketLabel() string {
	n := r.Normalize()
	return n.Design + n.Name + "/" + n.Arch.Kind + "/flow " + n.Flow
}

// MatrixPlan is the ticket view of one matrix job: the
// result-bearing knobs of a matrix request, from which every cell's
// canonical FlowRequest can be enumerated.
type MatrixPlan struct {
	Scale       string
	Seed        int64
	PlaceEffort int
	// Defect knobs mirror MatrixOptions: a rate of zero means a clean
	// fabric and zeroes the other two.
	DefectRate   float64
	DefectSeed   int64
	RepairBudget int
}

// cell assembles one cell's canonical FlowRequest.
func (p MatrixPlan) cell(design, archKind, flow string, clock float64) FlowRequest {
	req := FlowRequest{
		Design: design, Scale: p.Scale,
		Arch: ArchSpec{Kind: archKind}, Flow: flow,
		Seed: p.Seed, ClockPeriod: clock, PlaceEffort: p.PlaceEffort,
		DefectRate: p.DefectRate, DefectSeed: p.DefectSeed, RepairBudget: p.RepairBudget,
	}
	return req.Normalize()
}

// PinTicket is the design's clock-pinning cell: the granular / flow a
// run at ClockPeriod 0, exactly the run RunMatrix executes first.
func (p MatrixPlan) PinTicket(design string) FlowRequest {
	return p.cell(design, MatrixArchKinds()[0], MatrixFlows()[0], 0)
}

// PinnedClock derives the design's shared clock period from its
// clock-pinning cell's report: 1.2x the post-layout arrival, the same
// rule RunMatrix applies before Reclock.
func (p MatrixPlan) PinnedClock(pin *Report) float64 {
	return 1.2 * pin.MaxArrival
}

// MatrixCell is one dependent cell: its request plus the (arch, flow)
// coordinates it occupies in Matrix.Reports.
type MatrixCell struct {
	ArchName string // Matrix.Reports arch key ("granular-plb", "lut-plb")
	Flow     string // Matrix.Reports flow key ("flow a", "flow b")
	Req      FlowRequest
}

// MatrixCellLabel renders a cell's ticket label — the display name a
// coordinator stamps on the cell's scheduling span in a merged
// cluster trace ("alu/lut-plb/flow b").
func MatrixCellLabel(design, archName, flow string) string {
	return design + "/" + archName + "/" + flow
}

// Label is the cell's ticket label under the given design name.
func (c MatrixCell) Label(design string) string {
	return MatrixCellLabel(design, c.ArchName, c.Flow)
}

// PinLabel is the ticket label of the design's clock-pinning cell.
func (p MatrixPlan) PinLabel(design string) string {
	return MatrixCellLabel(design, MatrixArchNames()[0], "flow a") + " (pin)"
}

// DependentTickets enumerates the design's three clock-dependent cells
// — every (arch, flow) except the pin — pinned to clock, in RunMatrix's
// canonical (arch, flow) order.
func (p MatrixPlan) DependentTickets(design string, clock float64) []MatrixCell {
	kinds, names, flows := MatrixArchKinds(), MatrixArchNames(), MatrixFlows()
	var out []MatrixCell
	for ai, kind := range kinds {
		for fi, flow := range flows {
			if ai == 0 && fi == 0 {
				continue // the pin cell
			}
			out = append(out, MatrixCell{
				ArchName: names[ai],
				Flow:     "flow " + flow,
				Req:      p.cell(design, kind, flow, clock),
			})
		}
	}
	return out
}

// SweepPlan is the ticket view of one granularity-sweep job: the
// design block of a sweep request plus its architecture family.
type SweepPlan struct {
	Design string
	Scale  string
	RTL    string
	Name   string
	Seed   int64
	Archs  []ArchSpec
}

// Ticket is the sweep's i-th cell: the design run under Archs[i] on
// flow b, at ClockPeriod 0 for the clock-pinning first architecture
// and at the pinned clock for every later one — the same rule
// RunGranularitySweep applies (its first point's report carries the
// derived clock as Report.ClockPeriod).
func (p SweepPlan) Ticket(i int, clock float64) FlowRequest {
	if i == 0 {
		clock = 0
	}
	req := FlowRequest{
		Design: p.Design, Scale: p.Scale, RTL: p.RTL, Name: p.Name,
		Arch: p.Archs[i], Flow: "b", Seed: p.Seed, ClockPeriod: clock,
	}
	return req.Normalize()
}

// TicketLabel names the sweep's i-th ticket after its design and
// architecture, for ticket-level scheduling and tracing.
func (p SweepPlan) TicketLabel(i int) string {
	design := p.Design
	if design == "" {
		design = p.Name
	}
	arch := p.Archs[i].Name
	if arch == "" {
		arch = p.Archs[i].Kind
	}
	if arch == "" {
		arch = "default"
	}
	return "sweep/" + design + "/" + arch
}

// SweepPointFrom distills one sweep sample from a cell's report, the
// same projection RunGranularitySweep applies in-process.
func SweepPointFrom(spec ArchSpec, rep *Report) (SweepPoint, error) {
	arch, err := spec.Resolve()
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		Arch: arch.Name, Slots: arch.SlotSummary(), PLBArea: arch.Area,
		DieArea: rep.DieArea, AvgTopSlack: rep.AvgTopSlack,
		UsedPLBs: rep.Rows * rep.Cols,
	}, nil
}

// DefaultSweepArchSpecs is the E8 architecture family as serializable
// specs — the declarative source DefaultSweepArchs resolves, and what
// a coordinator ships when a sweep request names no family.
func DefaultSweepArchSpecs() []ArchSpec {
	return []ArchSpec{
		{Kind: "lut"},
		{Kind: "granular"},
		{Kind: "custom", Name: "coarse-lut2", Nand: 1, Lut: 2, FF: 1},
		{Kind: "custom", Name: "fine-mux4", Mux: 3, Xoa: 1, Nand: 1, FF: 1},
		{Kind: "custom", Name: "fine-mux6", Mux: 4, Xoa: 2, Nand: 2, FF: 1},
		{Kind: "custom", Name: "ff-rich", Mux: 2, Xoa: 1, Nand: 1, FF: 2},
	}
}
