package core

import (
	"context"
	"reflect"
	"testing"

	"vpga/internal/bench"
)

// TestMatrixTicketEquivalence is the ticket encoding's load-bearing
// property: executing a design's cells as individual FlowRequests —
// pin first, dependents pinned to the derived clock — reproduces the
// monolithic RunMatrix cells bit-identically. This is what lets a
// coordinator ship tickets to worker nodes and merge a byte-identical
// matrix.
func TestMatrixTicketEquivalence(t *testing.T) {
	suite := bench.TestSuite()
	m, err := RunMatrix(context.Background(), suite, MatrixOptions{Seed: 7, PlaceEffort: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.StripMetrics()

	plan := MatrixPlan{Scale: "test", Seed: 7, PlaceEffort: 3}
	design := MatrixDesignNames()[0] // alu
	designName := suite.All()[0].Name

	pin, err := RunRequest(context.Background(), plan.PinTicket(design), nil)
	if err != nil {
		t.Fatalf("pin ticket: %v", err)
	}
	clock := plan.PinnedClock(pin)
	pin.Reclock(clock)
	pin.StripMetrics()
	want := m.Reports[designName][MatrixArchNames()[0]]["flow a"]
	if !reflect.DeepEqual(pin, want) {
		t.Fatalf("pin cell diverged from RunMatrix:\nticket %+v\nmatrix %+v", pin, want)
	}

	for _, cell := range plan.DependentTickets(design, clock) {
		rep, err := RunRequest(context.Background(), cell.Req, nil)
		if err != nil {
			t.Fatalf("cell %s/%s: %v", cell.ArchName, cell.Flow, err)
		}
		rep.StripMetrics()
		want := m.Reports[designName][cell.ArchName][cell.Flow]
		if !reflect.DeepEqual(rep, want) {
			t.Fatalf("cell %s/%s diverged from RunMatrix:\nticket %+v\nmatrix %+v",
				cell.ArchName, cell.Flow, rep, want)
		}
	}
}

// TestSweepTicketEquivalence: a granularity sweep rebuilt from tickets
// — first arch pins the clock, later archs run pinned — matches
// RunGranularitySweep point for point.
func TestSweepTicketEquivalence(t *testing.T) {
	specs := DefaultSweepArchSpecs()[:3]
	resolved := DefaultSweepArchs()[:3]

	d := bench.TestSuite().ALU
	want, err := RunGranularitySweep(context.Background(), d, resolved, SweepOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	plan := SweepPlan{Design: "alu", Scale: "test", Seed: 5, Archs: specs}
	first, err := RunRequest(context.Background(), plan.Ticket(0, 0), nil)
	if err != nil {
		t.Fatalf("sweep pin ticket: %v", err)
	}
	clock := first.ClockPeriod
	got := make([]SweepPoint, len(specs))
	if got[0], err = SweepPointFrom(specs[0], first); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(specs); i++ {
		rep, err := RunRequest(context.Background(), plan.Ticket(i, clock), nil)
		if err != nil {
			t.Fatalf("sweep ticket %d: %v", i, err)
		}
		if got[i], err = SweepPointFrom(specs[i], rep); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ticketed sweep diverged:\nticket %+v\nmono   %+v", got, want)
	}
}

// TestMatrixPlanEnumeration pins the canonical cell order and the
// clock-pinning coordinates the merge logic depends on.
func TestMatrixPlanEnumeration(t *testing.T) {
	plan := MatrixPlan{Scale: "test", Seed: 1}
	pin := plan.PinTicket("fpu")
	if pin.Design != "fpu" || pin.Arch.Kind != "granular" || pin.Flow != "a" || pin.ClockPeriod != 0 {
		t.Fatalf("pin ticket %+v", pin)
	}
	deps := plan.DependentTickets("fpu", 1234.5)
	wantCoords := [][2]string{
		{"granular-plb", "flow b"},
		{"lut-plb", "flow a"},
		{"lut-plb", "flow b"},
	}
	if len(deps) != len(wantCoords) {
		t.Fatalf("got %d dependent cells, want %d", len(deps), len(wantCoords))
	}
	for i, cell := range deps {
		if cell.ArchName != wantCoords[i][0] || cell.Flow != wantCoords[i][1] {
			t.Fatalf("cell %d at (%s, %s), want (%s, %s)",
				i, cell.ArchName, cell.Flow, wantCoords[i][0], wantCoords[i][1])
		}
		if cell.Req.ClockPeriod != 1234.5 {
			t.Fatalf("cell %d clock %g not pinned", i, cell.Req.ClockPeriod)
		}
		if _, err := cell.Req.CacheKey(); err != nil {
			t.Fatalf("cell %d has no content address: %v", i, err)
		}
	}
	// Defect knobs propagate and normalize like MatrixRequest's.
	dp := MatrixPlan{Scale: "test", DefectRate: 0.01, DefectSeed: 3}
	if req := dp.PinTicket("alu"); req.DefectRate != 0.01 || req.RepairBudget != DefaultRepairBudget {
		t.Fatalf("defect pin ticket %+v", req)
	}
}

// TestDefaultSweepArchSpecsMatchFamily: the declarative spec family
// resolves to exactly the architectures DefaultSweepArchs serves.
func TestDefaultSweepArchSpecsMatchFamily(t *testing.T) {
	specs := DefaultSweepArchSpecs()
	archs := DefaultSweepArchs()
	if len(specs) != len(archs) {
		t.Fatalf("%d specs vs %d archs", len(specs), len(archs))
	}
	for i, spec := range specs {
		arch, err := spec.Resolve()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if arch.Name != archs[i].Name || arch.Area != archs[i].Area ||
			arch.SlotSummary() != archs[i].SlotSummary() {
			t.Fatalf("spec %d resolves to %s/%s, family has %s/%s",
				i, arch.Name, arch.SlotSummary(), archs[i].Name, archs[i].SlotSummary())
		}
	}
}
