package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/defect"
	"vpga/internal/obs"
)

// The determinism contract of the observability layer: after the
// shared StripMetrics helper zeroes the metrics block, reports are
// bit-identical with tracing off, tracing on sequential, and tracing
// on across 4 workers.
func TestTracingDeterminism(t *testing.T) {
	suite := smallSuite()
	runM := func(parallel int, tr *obs.Tracer) *Matrix {
		m, err := RunMatrix(context.Background(), suite, MatrixOptions{
			Seed: 7, PlaceEffort: 1, Parallel: parallel, Trace: tr,
		})
		if err != nil {
			t.Fatalf("parallel=%d traced=%v: %v", parallel, tr != nil, err)
		}
		return m
	}
	base := runM(1, nil)
	tr1 := obs.NewTracer()
	traced1 := runM(1, tr1)
	trN := obs.NewTracer()
	tracedN := runM(4, trN)

	// Traced reports carry the metrics block; untraced ones don't.
	for _, m := range []*Matrix{traced1, tracedN} {
		rep := m.Get("ALU", "granular-plb", FlowB)
		if len(rep.Stages) == 0 || rep.Solver == nil {
			t.Fatalf("traced report missing metrics block: stages=%v solver=%v", rep.Stages, rep.Solver)
		}
	}
	if rep := base.Get("ALU", "granular-plb", FlowB); rep.Stages != nil || rep.Solver != nil {
		t.Fatalf("untraced report has a metrics block: %+v", rep)
	}
	if totals := tracedN.StageTotals(); len(totals) == 0 {
		t.Fatal("traced matrix has no aggregated stage totals")
	}

	base.StripMetrics()
	traced1.StripMetrics()
	tracedN.StripMetrics()
	if !reflect.DeepEqual(base.Reports, traced1.Reports) {
		t.Fatal("reports diverged between tracing off and on (sequential)")
	}
	if !reflect.DeepEqual(base.Reports, tracedN.Reports) {
		t.Fatal("reports diverged between untraced sequential and traced 4-worker runs")
	}
}

// Every traced run must cover every stage its flow executes, carry
// consistent solver counters, and export as valid Chrome trace JSON
// with one row per pool worker.
func TestTracingStageCoverage(t *testing.T) {
	suite := smallSuite()
	tr := obs.NewTracer()
	if _, err := RunMatrix(context.Background(), suite, MatrixOptions{
		Seed: 7, PlaceEffort: 1, Parallel: 2, Trace: tr,
	}); err != nil {
		t.Fatal(err)
	}
	runs := tr.Runs()
	if want := len(suite.All()) * 4; len(runs) != want {
		t.Fatalf("tracer recorded %d runs, want %d", len(runs), want)
	}
	shared := []string{"rtl", "synth", "map", "compact", "place", "route", "sta", "power"}
	for _, run := range runs {
		have := map[string]bool{}
		for _, st := range run.StageTimings() {
			have[st.Stage] = true
		}
		want := shared
		if strings.HasSuffix(run.Label(), "flow b") {
			want = append(append([]string{}, shared...), "pack", "viamap")
		}
		for _, s := range want {
			if !have[s] {
				t.Errorf("run %s missing stage %q (have %v)", run.Label(), s, have)
			}
		}
		sm := run.SolverMetrics()
		if sm.AnnealPasses == 0 || sm.AnnealProposed == 0 || sm.AnnealAccepted == 0 {
			t.Errorf("run %s: empty anneal counters: %+v", run.Label(), sm)
		}
		if sm.AnnealAccepted > sm.AnnealProposed {
			t.Errorf("run %s: accepted %d > proposed %d", run.Label(), sm.AnnealAccepted, sm.AnnealProposed)
		}
		if sm.RouteIterations == 0 || len(sm.RouteOverflows) != sm.RouteIterations {
			t.Errorf("run %s: inconsistent route trajectory: %+v", run.Label(), sm)
		}
		if sm.RouteBestIteration < 1 || sm.RouteBestIteration > sm.RouteIterations {
			t.Errorf("run %s: best iteration %d outside [1,%d]", run.Label(), sm.RouteBestIteration, sm.RouteIterations)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
		Tid  int    `json:"tid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	rows := map[int]bool{}
	labels := map[string]bool{}
	for _, e := range events {
		if e.Ph == "M" {
			continue
		}
		rows[e.Tid] = true
		if e.Cat == "run" {
			labels[e.Name] = true
		}
	}
	if len(rows) > 2 {
		t.Fatalf("trace uses %d worker rows, want at most Parallel=2", len(rows))
	}
	for _, run := range runs {
		if !labels[run.Label()] {
			t.Errorf("chrome trace missing run event for %s", run.Label())
		}
	}
}

// A traced repair-ladder run records one attempt event per rung and
// refreshes the report's metrics to cover the whole ladder.
func TestTracingRepairAttempts(t *testing.T) {
	tr := obs.NewTracer()
	run := tr.NewRun("ALU/granular-plb/map0")
	d := bench.ALU(4)
	dm := defect.New(3, 0.02)
	rep, err := RunFlowRepair(context.Background(), d, Config{
		Arch: cells.GranularPLB(), Flow: FlowB, Seed: 7, PlaceEffort: 1,
		Defects: dm, Trace: run,
	})
	run.Close()
	if err != nil {
		t.Fatalf("repair flow failed: %v", err)
	}
	attempts := run.Attempts()
	if len(attempts) != len(rep.Attempts) {
		t.Fatalf("tracer has %d attempt events, report ledger has %d", len(attempts), len(rep.Attempts))
	}
	if rep.Solver == nil || rep.Solver.RepairAttempts != len(rep.Attempts) {
		t.Fatalf("report solver block out of sync with ladder: %+v vs %d attempts",
			rep.Solver, len(rep.Attempts))
	}
	last := attempts[len(attempts)-1]
	if last.Err != "" {
		t.Fatalf("winning attempt recorded an error: %+v", last)
	}
}
