package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/defect"
	"vpga/internal/obs"
	"vpga/internal/route"
)

// YieldPoint is the outcome of one defect map in a yield sweep.
type YieldPoint struct {
	MapSeed     int64
	Defects     defect.Counts
	Routed      bool
	Escalations int     // repair rungs climbed (0 = clean first try)
	Wirelength  float64 // of the successful attempt, 0 when unrouted
	Overflow    int
	Err         string // failure message when Routed is false
}

// YieldOptions configures a defect-yield sweep.
type YieldOptions struct {
	Rate         float64 // defect rate per fabric tile
	Maps         int     // number of defect maps (seeds BaseSeed..BaseSeed+Maps-1)
	BaseSeed     int64   // first defect-map seed
	FlowSeed     int64   // flow seed shared by all maps
	RepairBudget int     // 0 = DefaultRepairBudget
	Parallel     int     // 0 = GOMAXPROCS
	Progress     func(string)
	// Trace records every map's flow run (stage spans, solver counters,
	// repair attempts); nil disables tracing.
	Trace *obs.Tracer
}

// YieldResult aggregates a defect-yield sweep over many maps.
type YieldResult struct {
	Design string
	Arch   string
	Rate   float64
	Points []YieldPoint // indexed by map, deterministic per seed
	Budget int
}

// DefectYield runs one (design, arch) flow across opts.Maps independent
// defect maps at a fixed defect rate, each through the bounded repair
// ladder, and reports how many maps routed at each escalation depth —
// the fabric-yield experiment. Maps run concurrently with
// deterministic, map-indexed results.
func DefectYield(ctx context.Context, d bench.Design, arch *cells.PLBArch, opts YieldOptions) (*YieldResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Maps <= 0 {
		opts.Maps = 50
	}
	budget := opts.RepairBudget
	if budget == 0 {
		budget = DefaultRepairBudget
	}
	par := opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	res := &YieldResult{Design: d.Name, Arch: arch.Name, Rate: opts.Rate,
		Points: make([]YieldPoint, opts.Maps), Budget: budget}
	// Every map's runs (repair escalations included) share one
	// router-state pool; reuse never changes which maps route.
	pool := route.NewPool()

	var (
		sem    = make(chan struct{}, par)
		mu     sync.Mutex // guards Points
		progMu sync.Mutex // serializes Progress, independent of mu
		wg     sync.WaitGroup
	)
	for i := 0; i < opts.Maps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			seed := opts.BaseSeed + int64(i)
			dm := defect.New(seed, opts.Rate)
			pt := YieldPoint{MapSeed: seed, Defects: dm.Counts()}
			if ctx.Err() == nil {
				run := opts.Trace.NewRun(fmt.Sprintf("%s/%s/map%d", d.Name, arch.Name, i))
				rep, err := supervisedRun(ctx, d, Config{
					Arch: arch, Flow: FlowB, Seed: opts.FlowSeed,
					Defects: dm, RepairBudget: budget, Trace: run,
					routePool: pool,
				}, 0)
				run.Close()
				if err != nil {
					pt.Err = err.Error()
				} else {
					pt.Routed = true
					pt.Escalations = rep.Escalations
					pt.Wirelength = rep.Wirelength
					pt.Overflow = rep.Overflow
				}
			} else {
				pt.Err = ctx.Err().Error()
			}
			mu.Lock()
			res.Points[i] = pt
			mu.Unlock()
			// The Progress callback runs outside mu (progMu only orders
			// concurrent lines), so a slow callback cannot stall workers
			// storing their points.
			if opts.Progress != nil {
				status := "routed"
				if !pt.Routed {
					status = "FAILED"
				}
				line := fmt.Sprintf("map %3d (seed %d): %d defects, %s after %d escalation(s)",
					i, seed, pt.Defects.Total(), status, pt.Escalations)
				progMu.Lock()
				opts.Progress(line)
				progMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return res, ctx.Err()
}

// Yield is the fraction of maps that routed within the repair budget.
func (r *YieldResult) Yield() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	n := 0
	for _, p := range r.Points {
		if p.Routed {
			n++
		}
	}
	return float64(n) / float64(len(r.Points))
}

// Table renders the yield/repair summary: the fraction of defect maps
// routed at each escalation depth, plus the overall yield.
func (r *YieldResult) Table() string {
	var sb strings.Builder
	byEsc := make([]int, r.Budget+1)
	failed := 0
	for _, p := range r.Points {
		if p.Routed {
			byEsc[p.Escalations]++
		} else {
			failed++
		}
	}
	fmt.Fprintf(&sb, "Defect yield: %s on %s, rate %.4f, %d maps, repair budget %d\n",
		r.Design, r.Arch, r.Rate, len(r.Points), r.Budget)
	fmt.Fprintf(&sb, "  %-28s %6s %8s\n", "repair outcome", "maps", "frac")
	total := float64(len(r.Points))
	for esc, n := range byEsc {
		label := fmt.Sprintf("routed at %d escalation(s)", esc)
		if esc == 0 {
			label = "routed clean (0 escalations)"
		}
		fmt.Fprintf(&sb, "  %-28s %6d %7.1f%%\n", label, n, 100*float64(n)/total)
	}
	fmt.Fprintf(&sb, "  %-28s %6d %7.1f%%\n", "unrouted (budget exhausted)", failed, 100*float64(failed)/total)
	fmt.Fprintf(&sb, "  overall yield: %.1f%%\n", 100*r.Yield())
	return sb.String()
}
