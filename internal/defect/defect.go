// Package defect models fabric manufacturing defects for the VPGA's
// regular array. A via-patterned fabric is printed as a repeating
// tile, so yield loss shows up as localized faults — a PLB whose
// transistors are stuck, a bundle of routing tracks opened by a metal
// break, a via site that will not form — rather than whole-die loss.
// The paper's premise (trade per-gate optimality for manufacturability)
// only pays off if the CAD flow can route around such faults, so the
// defect map is defined on a normalized fabric grid and is consumed by
// both the placer (stuck sites excluded from placement) and the router
// (dead tracks become unusable edges, via faults become detour
// penalties).
//
// Maps are generated from a seed alone: the same (seed, rate, grid)
// always produces the same map, so defect experiments are exactly
// reproducible and parallel sweeps stay deterministic.
package defect

import (
	"fmt"
	"math/rand"
	"strings"
)

// Map is a seeded defect map over a W×H grid of fabric tiles. Queries
// address tiles by normalized coordinates in [0,1), so one map applies
// to any die size or routing-grid resolution.
type Map struct {
	// Seed and Rate record the map's provenance for reports.
	Seed int64
	Rate float64
	// W, H is the defect-grid resolution in tiles.
	W, H int

	stuck []bool // PLB site unusable: no logic may be placed in the tile
	deadH []bool // horizontal routing tracks through the tile are open
	deadV []bool // vertical routing tracks through the tile are open
	via   []bool // via formation unreliable: layer changes are penalized
}

// Counts summarizes a map's defect population.
type Counts struct {
	Stuck, DeadH, DeadV, Via int
}

// DefaultGrid is the tile resolution of New: fine enough that a tile
// approximates a few PLB pitches on the paper-scale arrays, coarse
// enough that single defects stay local.
const DefaultGrid = 16

// New draws a defect map on the default grid. rate is the per-tile
// probability of a stuck site and of a via fault; dead-track faults
// occur at rate/2 per direction (metal opens are rarer than device
// faults in the underlying yield models).
func New(seed int64, rate float64) *Map {
	return NewGrid(seed, rate, DefaultGrid, DefaultGrid)
}

// NewGrid draws a defect map on a w×h tile grid.
func NewGrid(seed int64, rate float64, w, h int) *Map {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	m := &Map{
		Seed: seed, Rate: rate, W: w, H: h,
		stuck: make([]bool, w*h),
		deadH: make([]bool, w*h),
		deadV: make([]bool, w*h),
		via:   make([]bool, w*h),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range m.stuck {
		m.stuck[i] = rng.Float64() < rate
		m.deadH[i] = rng.Float64() < rate/2
		m.deadV[i] = rng.Float64() < rate/2
		m.via[i] = rng.Float64() < rate
	}
	return m
}

// tile maps normalized coordinates to a tile index, clamping so
// queries exactly on the 1.0 boundary land in the last tile.
func (m *Map) tile(xn, yn float64) int {
	x := int(xn * float64(m.W))
	y := int(yn * float64(m.H))
	if x < 0 {
		x = 0
	} else if x >= m.W {
		x = m.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= m.H {
		y = m.H - 1
	}
	return y*m.W + x
}

// Stuck reports whether the tile at normalized (xn, yn) has a stuck
// PLB site (no logic may be placed there).
func (m *Map) Stuck(xn, yn float64) bool {
	if m == nil {
		return false
	}
	return m.stuck[m.tile(xn, yn)]
}

// DeadTrack reports whether the routing tracks crossing the tile at
// normalized (xn, yn) in the given direction are open-circuit.
func (m *Map) DeadTrack(horizontal bool, xn, yn float64) bool {
	if m == nil {
		return false
	}
	if horizontal {
		return m.deadH[m.tile(xn, yn)]
	}
	return m.deadV[m.tile(xn, yn)]
}

// ViaFault reports whether via formation in the tile at normalized
// (xn, yn) is unreliable; routers should prefer detours over layer
// changes there.
func (m *Map) ViaFault(xn, yn float64) bool {
	if m == nil {
		return false
	}
	return m.via[m.tile(xn, yn)]
}

// Counts tallies the map's defects.
func (m *Map) Counts() Counts {
	var c Counts
	if m == nil {
		return c
	}
	for i := range m.stuck {
		if m.stuck[i] {
			c.Stuck++
		}
		if m.deadH[i] {
			c.DeadH++
		}
		if m.deadV[i] {
			c.DeadV++
		}
		if m.via[i] {
			c.Via++
		}
	}
	return c
}

// Total is the map's defect count across all classes.
func (c Counts) Total() int { return c.Stuck + c.DeadH + c.DeadV + c.Via }

// String renders a one-line summary for reports and ledgers.
func (m *Map) String() string {
	if m == nil {
		return "defect: none"
	}
	c := m.Counts()
	return fmt.Sprintf("defect map seed=%d rate=%.3g grid=%dx%d: %d stuck, %d dead-H, %d dead-V, %d via faults",
		m.Seed, m.Rate, m.W, m.H, c.Stuck, c.DeadH, c.DeadV, c.Via)
}

// Sketch renders the map as a tile-per-character picture (S = stuck
// site, - / | = dead tracks, x = both directions dead, v = via fault,
// . = clean), for debugging defect experiments.
func (m *Map) Sketch() string {
	var sb strings.Builder
	for y := m.H - 1; y >= 0; y-- {
		for x := 0; x < m.W; x++ {
			i := y*m.W + x
			switch {
			case m.stuck[i]:
				sb.WriteByte('S')
			case m.deadH[i] && m.deadV[i]:
				sb.WriteByte('x')
			case m.deadH[i]:
				sb.WriteByte('-')
			case m.deadV[i]:
				sb.WriteByte('|')
			case m.via[i]:
				sb.WriteByte('v')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
