package defect

import (
	"reflect"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 0.05)
	b := New(42, 0.05)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different maps")
	}
	c := New(43, 0.05)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical maps (suspicious)")
	}
}

func TestRateZeroAndOne(t *testing.T) {
	clean := New(7, 0)
	if n := clean.Counts().Total(); n != 0 {
		t.Fatalf("rate 0 produced %d defects", n)
	}
	dead := New(7, 1)
	c := dead.Counts()
	if c.Stuck != DefaultGrid*DefaultGrid || c.Via != DefaultGrid*DefaultGrid {
		t.Fatalf("rate 1 left clean tiles: %+v", c)
	}
}

func TestRateApproximate(t *testing.T) {
	// Over a large grid the realized stuck-site rate should be close to
	// the requested rate.
	m := NewGrid(3, 0.10, 128, 128)
	c := m.Counts()
	got := float64(c.Stuck) / float64(m.W*m.H)
	if got < 0.07 || got > 0.13 {
		t.Fatalf("stuck rate %.3f far from requested 0.10", got)
	}
	// Dead tracks are drawn at rate/2.
	gotH := float64(c.DeadH) / float64(m.W*m.H)
	if gotH < 0.03 || gotH > 0.07 {
		t.Fatalf("dead-H rate %.3f far from requested 0.05", gotH)
	}
}

func TestTileClamping(t *testing.T) {
	m := New(9, 0.5)
	// Boundary and out-of-range queries must not panic and must land in
	// edge tiles.
	for _, xy := range [][2]float64{{0, 0}, {1, 1}, {-0.1, 0.5}, {0.5, 1.2}, {0.999, 0.999}} {
		m.Stuck(xy[0], xy[1])
		m.DeadTrack(true, xy[0], xy[1])
		m.DeadTrack(false, xy[0], xy[1])
		m.ViaFault(xy[0], xy[1])
	}
	if m.tile(1, 1) != m.W*m.H-1 {
		t.Fatalf("tile(1,1) = %d, want last tile %d", m.tile(1, 1), m.W*m.H-1)
	}
}

func TestNilMapIsClean(t *testing.T) {
	var m *Map
	if m.Stuck(0.5, 0.5) || m.DeadTrack(true, 0.5, 0.5) || m.ViaFault(0.5, 0.5) {
		t.Fatal("nil map reported defects")
	}
	if m.Counts().Total() != 0 {
		t.Fatal("nil map has nonzero counts")
	}
	if m.String() == "" {
		t.Fatal("nil map String empty")
	}
}

func TestSketchShape(t *testing.T) {
	m := NewGrid(5, 0.3, 8, 4)
	s := m.Sketch()
	lines := 0
	for _, ch := range s {
		if ch == '\n' {
			lines++
		}
	}
	if lines != 4 {
		t.Fatalf("sketch has %d rows, want 4:\n%s", lines, s)
	}
}
