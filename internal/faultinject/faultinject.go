// Package faultinject is the deterministic fault-injection harness of
// the flow service's crash-safety layer: named fault points (disk
// writes, ledger appends, journal frames, flow stage boundaries) arm
// seeded, reproducible faults — injected write errors, torn writes,
// and process-kill requests — so recovery paths can be soaked under
// test instead of waiting for real crashes.
//
// The package follows internal/obs's zero-cost-when-disabled idiom:
// the injector is an atomic package-level pointer, and a disabled
// harness costs exactly one atomic load + nil check per fault point.
// Decisions are counter-based — point n's verdict is a pure function
// of (seed, point name, n) — so a soak with a fixed seed replays the
// same per-point fault sequence every run, independent of wall clock.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected fault wraps:
// errors.Is(err, ErrInjected) identifies a failure as synthetic and
// therefore transient — the retry layer re-attempts it, and a real
// recovery path must treat it exactly like the disk error it models.
var ErrInjected = errors.New("injected fault")

// Kind is the failure mode a fault point arms.
type Kind int

const (
	// KindErrWrite fails the operation with an injected error before
	// any bytes are written.
	KindErrWrite Kind = iota
	// KindTorn persists a prefix of the payload and then fails,
	// modeling a crash mid-write (a torn frame / truncated line).
	KindTorn
	// KindCrash requests a process kill at the fault point, modeling a
	// SIGKILL landing at a stage boundary. The injector's crash
	// function runs (default: exit 86); tests override it.
	KindCrash
)

// String names the kind as spelled in specs.
func (k Kind) String() string {
	switch k {
	case KindErrWrite:
		return "errwrite"
	case KindTorn:
		return "torn"
	case KindCrash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "errwrite":
		return KindErrWrite, nil
	case "torn":
		return KindTorn, nil
	case "crash":
		return KindCrash, nil
	}
	return 0, fmt.Errorf("faultinject: unknown kind %q (want errwrite, torn or crash)", s)
}

// Fault is one armed fault at one point: the call site inspects Kind
// to model the failure (e.g. persist TornBytes before erroring) and
// returns Err.
type Fault struct {
	Point string
	Kind  Kind
}

// Err is the injected error a fired fault surfaces; it wraps
// ErrInjected so retry layers can classify it as transient.
func (f *Fault) Err() error {
	return fmt.Errorf("faultinject: %s at %s: %w", f.Kind, f.Point, ErrInjected)
}

// TornBytes returns the prefix a torn write persists — roughly half
// the payload, at least one byte — or nil when the fault is not a
// torn write (or the payload too small to tear).
func (f *Fault) TornBytes(p []byte) []byte {
	if f.Kind != KindTorn || len(p) < 2 {
		return nil
	}
	return p[:len(p)/2]
}

// Injector decides which fault points fire. Construct with New or
// ParseSpec, activate with Enable.
type Injector struct {
	seed  int64
	rate  float64
	kinds []Kind
	// points restricts arming to the named points; empty = every point.
	// A name ending in "." is a prefix match ("stage." arms every
	// stage boundary).
	points []string
	// CrashFn runs when a KindCrash fault fires (default exits 86).
	// Tests override it before Enable.
	CrashFn func(point string)

	mu       sync.Mutex
	counters map[string]*uint64

	checked  atomic.Int64
	injected atomic.Int64
	perKind  [3]atomic.Int64
}

// New builds an injector firing each listed point (prefix match on a
// trailing dot; none = all points) with the given per-check
// probability, cycling deterministically over kinds (empty = errwrite
// only).
func New(seed int64, rate float64, kinds []Kind, points ...string) *Injector {
	if len(kinds) == 0 {
		kinds = []Kind{KindErrWrite}
	}
	return &Injector{
		seed: seed, rate: rate, kinds: kinds, points: points,
		counters: map[string]*uint64{},
		CrashFn: func(point string) {
			fmt.Fprintf(os.Stderr, "faultinject: crash at %s\n", point)
			os.Exit(86)
		},
	}
}

// ParseSpec builds an injector from a compact spec string:
//
//	seed=7,rate=0.05,kinds=errwrite+torn,points=ledger.append+stage.
//
// Fields may come in any order; kinds defaults to errwrite, points to
// every point. rate is required and must be in (0,1].
func ParseSpec(spec string) (*Injector, error) {
	var (
		seed   int64
		rate   float64
		kinds  []Kind
		points []string
	)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: spec field %q is not key=value", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed %q: %w", v, err)
			}
			seed = n
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: rate %q: %w", v, err)
			}
			rate = f
		case "kinds":
			for _, s := range strings.Split(v, "+") {
				kind, err := parseKind(s)
				if err != nil {
					return nil, err
				}
				kinds = append(kinds, kind)
			}
		case "points":
			points = append(points, strings.Split(v, "+")...)
		default:
			return nil, fmt.Errorf("faultinject: unknown spec key %q", k)
		}
	}
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("faultinject: rate %g outside (0,1]", rate)
	}
	return New(seed, rate, kinds, points...), nil
}

// EnvVar is the environment variable FromEnv reads.
const EnvVar = "VPGA_FAULTS"

// FromEnv builds an injector from $VPGA_FAULTS; nil (and no error)
// when the variable is unset or empty.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	return ParseSpec(spec)
}

// active is the package-level injector; nil = disabled.
var active atomic.Pointer[Injector]

// Enable installs the injector as the process-wide active harness.
// Enable(nil) disables injection.
func Enable(in *Injector) {
	if in == nil {
		active.Store(nil)
		return
	}
	active.Store(in)
}

// Disable turns injection off.
func Disable() { active.Store(nil) }

// Active returns the process-wide injector, nil when disabled.
func Active() *Injector { return active.Load() }

// Arm consults the active injector for the named point: nil when
// injection is disabled, the point is not armed, or this check does
// not fire. A KindCrash fault invokes the injector's crash function
// before returning.
func Arm(point string) *Fault {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.arm(point)
}

// Check is Arm for call sites that need only an error: torn faults
// degrade to plain injected errors (no bytes to tear at, say, a stage
// boundary).
func Check(point string) error {
	f := Arm(point)
	if f == nil {
		return nil
	}
	return f.Err()
}

func (in *Injector) armed(point string) bool {
	if len(in.points) == 0 {
		return true
	}
	for _, p := range in.points {
		if p == point || (strings.HasSuffix(p, ".") && strings.HasPrefix(point, p)) {
			return true
		}
	}
	return false
}

func (in *Injector) arm(point string) *Fault {
	if !in.armed(point) {
		return nil
	}
	in.checked.Add(1)
	in.mu.Lock()
	ctr := in.counters[point]
	if ctr == nil {
		ctr = new(uint64)
		in.counters[point] = ctr
	}
	n := *ctr
	*ctr++
	in.mu.Unlock()
	h := decisionHash(in.seed, point, n)
	// Top 52 bits → uniform [0,1); fire when below the rate.
	if float64(h>>12)/float64(1<<52) >= in.rate {
		return nil
	}
	kind := in.kinds[int(decisionHash(in.seed+1, point, n)%uint64(len(in.kinds)))]
	in.injected.Add(1)
	in.perKind[kind].Add(1)
	if kind == KindCrash {
		in.CrashFn(point)
	}
	return &Fault{Point: point, Kind: kind}
}

// decisionHash is a splitmix64-style mix of (seed, point, n): the
// whole harness's determinism rests on this being a pure function.
func decisionHash(seed int64, point string, n uint64) uint64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(point); i++ {
		h = (h ^ uint64(point[i])) * 0x100000001b3
	}
	h ^= n + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Checked reports fault-point evaluations since construction.
func (in *Injector) Checked() int64 {
	if in == nil {
		return 0
	}
	return in.checked.Load()
}

// Injected reports faults fired since construction.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// InjectedKind reports faults fired for one kind.
func (in *Injector) InjectedKind(k Kind) int64 {
	if in == nil {
		return 0
	}
	return in.perKind[k].Load()
}

// Retry runs op up to attempts times, sleeping a jittered exponential
// backoff between failures (base, 2·base, 4·base … ±50%). onRetry, if
// non-nil, observes each re-attempt before its backoff sleep. The
// first nil result wins; the last error is returned otherwise. It is
// the bounded-retry wrapper the service puts around transient I/O —
// injected faults are counter-based, so a retry re-arms the fault
// point and usually passes.
func Retry(attempts int, base time.Duration, op func() error, onRetry func(attempt int, err error)) error {
	if attempts < 1 {
		attempts = 1
	}
	err := op()
	for attempt := 1; attempt < attempts && err != nil; attempt++ {
		if onRetry != nil {
			onRetry(attempt, err)
		}
		if base > 0 {
			d := base << (attempt - 1)
			// Jitter ±50% so synchronized retriers spread out; the jitter
			// source is wall-clock behavior, never result-bearing.
			d = d/2 + time.Duration(rand.Int63n(int64(d)+1))
			time.Sleep(d)
		}
		err = op()
	}
	return err
}
