package faultinject

import (
	"errors"
	"testing"
	"time"
)

// sequence records which of the first n checks at a point fire.
func sequence(in *Injector, point string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = in.arm(point) != nil
	}
	return out
}

// TestDeterministicSequence is the harness's core property: for a
// fixed (seed, point), the per-check fire/skip sequence is identical
// across injector instances — a soak replays the same faults every run.
func TestDeterministicSequence(t *testing.T) {
	a := sequence(New(7, 0.3, nil), "journal.append", 200)
	b := sequence(New(7, 0.3, nil), "journal.append", 200)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("check %d diverged between identical injectors", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.3 fired %d/%d checks", fired, len(a))
	}
	// A different seed yields a different sequence.
	c := sequence(New(8, 0.3, nil), "journal.append", 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical sequences")
	}
	// Distinct points have independent sequences (same seed).
	d := sequence(New(7, 0.3, nil), "ledger.append", 200)
	same = true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct points produced identical sequences")
	}
}

func TestPointFilter(t *testing.T) {
	in := New(1, 1.0, nil, "ledger.append", "stage.")
	if in.arm("journal.append") != nil {
		t.Fatal("unlisted point armed")
	}
	if in.arm("ledger.append") == nil {
		t.Fatal("listed point not armed at rate 1")
	}
	if in.arm("stage.place") == nil {
		t.Fatal("prefix point not armed")
	}
	if in.arm("stage") != nil {
		t.Fatal("bare prefix name armed")
	}
	if got := in.Checked(); got != 2 {
		t.Fatalf("Checked() = %d, want 2 (unarmed points don't count)", got)
	}
}

func TestKindsCycleAndCounters(t *testing.T) {
	in := New(3, 1.0, []Kind{KindErrWrite, KindTorn})
	for i := 0; i < 50; i++ {
		f := in.arm("p")
		if f == nil {
			t.Fatalf("rate 1 skipped check %d", i)
		}
		if !errors.Is(f.Err(), ErrInjected) {
			t.Fatal("fault error does not wrap ErrInjected")
		}
	}
	if in.Injected() != 50 {
		t.Fatalf("Injected() = %d", in.Injected())
	}
	ew, torn := in.InjectedKind(KindErrWrite), in.InjectedKind(KindTorn)
	if ew+torn != 50 || ew == 0 || torn == 0 {
		t.Fatalf("kind split errwrite=%d torn=%d", ew, torn)
	}
}

func TestCrashKindInvokesCrashFn(t *testing.T) {
	in := New(5, 1.0, []Kind{KindCrash})
	var crashed string
	in.CrashFn = func(point string) { crashed = point }
	if f := in.arm("stage.route"); f == nil || f.Kind != KindCrash {
		t.Fatalf("crash fault not armed: %+v", f)
	}
	if crashed != "stage.route" {
		t.Fatalf("CrashFn saw %q", crashed)
	}
}

func TestTornBytes(t *testing.T) {
	f := &Fault{Point: "p", Kind: KindTorn}
	if got := f.TornBytes([]byte("abcdefgh")); string(got) != "abcd" {
		t.Fatalf("TornBytes = %q", got)
	}
	if f.TornBytes([]byte("a")) != nil {
		t.Fatal("1-byte payload tore")
	}
	ew := &Fault{Point: "p", Kind: KindErrWrite}
	if ew.TornBytes([]byte("abcdefgh")) != nil {
		t.Fatal("errwrite fault tore bytes")
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("seed=7,rate=0.05,kinds=errwrite+torn,points=ledger.append+stage.")
	if err != nil {
		t.Fatal(err)
	}
	if in.seed != 7 || in.rate != 0.05 || len(in.kinds) != 2 || len(in.points) != 2 {
		t.Fatalf("parsed %+v", in)
	}
	for _, bad := range []string{
		"rate=0", "rate=1.5", "seed=7", "rate=x", "kinds=frob,rate=0.1",
		"nonsense", "what=ever,rate=0.1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q parsed", bad)
		}
	}
}

func TestEnableDisable(t *testing.T) {
	t.Cleanup(Disable)
	Disable()
	if Arm("p") != nil || Check("p") != nil || Active() != nil {
		t.Fatal("disabled harness armed a fault")
	}
	Enable(New(1, 1.0, nil))
	if Check("p") == nil {
		t.Fatal("enabled harness at rate 1 did not fire")
	}
	Disable()
	if Check("p") != nil {
		t.Fatal("disable did not stick")
	}
	// Nil-safe counter accessors.
	var nilIn *Injector
	if nilIn.Checked() != 0 || nilIn.Injected() != 0 || nilIn.InjectedKind(KindTorn) != 0 {
		t.Fatal("nil injector counters")
	}
}

func TestRetry(t *testing.T) {
	calls, retries := 0, 0
	err := Retry(3, time.Microsecond, func() error {
		calls++
		if calls < 3 {
			return ErrInjected
		}
		return nil
	}, func(int, error) { retries++ })
	if err != nil || calls != 3 || retries != 2 {
		t.Fatalf("err=%v calls=%d retries=%d", err, calls, retries)
	}
	// Exhausted attempts surface the last error.
	boom := errors.New("boom")
	if err := Retry(2, 0, func() error { return boom }, nil); !errors.Is(err, boom) {
		t.Fatalf("exhausted retry: %v", err)
	}
	// attempts < 1 still runs once.
	calls = 0
	if err := Retry(0, 0, func() error { calls++; return nil }, nil); err != nil || calls != 1 {
		t.Fatalf("attempts=0: err=%v calls=%d", err, calls)
	}
}
