package flowmap

import (
	"math/rand"
	"testing"

	"vpga/internal/aig"
)

func TestDinicBasic(t *testing.T) {
	// Classic 4-node diamond: s=0, t=3; two disjoint paths of cap 1.
	g := NewDinic(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	if f := g.MaxFlow(0, 3, -1); f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
}

func TestDinicBottleneck(t *testing.T) {
	// s -> a (cap 5), a -> b (cap 2), b -> t (cap 9): flow 2.
	g := NewDinic(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 9)
	if f := g.MaxFlow(0, 3, -1); f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
	reach := g.ResidualReachable(0)
	if !reach[0] || !reach[1] || reach[2] || reach[3] {
		t.Fatalf("residual reachability wrong: %v", reach)
	}
}

func TestDinicEarlyTermination(t *testing.T) {
	// 10 parallel unit paths; limit 3 must stop early with flow > 3.
	g := NewDinic(12)
	for i := 0; i < 10; i++ {
		g.AddEdge(0, 2+i, 1)
		g.AddEdge(2+i, 1, 1)
	}
	f := g.MaxFlow(0, 1, 3)
	if f <= 3 {
		t.Fatalf("flow = %d, expected witness > 3", f)
	}
}

// chainGraph builds fanins for a linear chain 0 <- 1 <- 2 ... (node i
// reads node i-1); node 0 is the source.
func chainFanins(n int) func(int) []int {
	return func(i int) []int {
		if i == 0 {
			return nil
		}
		return []int{i - 1}
	}
}

func TestFindKCutChain(t *testing.T) {
	fanins := chainFanins(10)
	isLeaf := func(n int) bool { return n == 0 }
	res, ok := FindKCut(9, 3, 100, fanins, isLeaf)
	if !ok {
		t.Fatal("chain must have a 1-feasible cut")
	}
	if len(res.Leaves) != 1 || res.Leaves[0] != 0 {
		t.Fatalf("leaves = %v, want [0]", res.Leaves)
	}
	if len(res.Cluster) != 9 {
		t.Fatalf("cluster size = %d, want 9", len(res.Cluster))
	}
}

func TestFindKCutInfeasible(t *testing.T) {
	// A node reading 5 distinct sources has no 3-feasible cut.
	fanins := func(n int) []int {
		if n == 5 {
			return []int{0, 1, 2, 3, 4}
		}
		return nil
	}
	isLeaf := func(n int) bool { return n < 5 }
	if _, ok := FindKCut(5, 3, 100, fanins, isLeaf); ok {
		t.Fatal("5-input node reported 3-feasible")
	}
	if res, ok := FindKCut(5, 5, 100, fanins, isLeaf); !ok || len(res.Leaves) != 5 {
		t.Fatalf("5-input node must be 5-feasible: %v %v", res, ok)
	}
}

func TestFindKCutReconvergence(t *testing.T) {
	// Diamond: root 4 reads 2 and 3; both read 1; 1 reads 0.
	// The 1-cut {1} exists even though root has 2 fanins.
	fanins := func(n int) []int {
		switch n {
		case 4:
			return []int{2, 3}
		case 2, 3:
			return []int{1}
		case 1:
			return []int{0}
		}
		return nil
	}
	isLeaf := func(n int) bool { return n == 0 }
	res, ok := FindKCut(4, 1, 100, fanins, isLeaf)
	if !ok {
		t.Fatal("diamond must have a 1-feasible cut")
	}
	if len(res.Leaves) != 1 {
		t.Fatalf("leaves = %v, want a single node", res.Leaves)
	}
	// Cut at node 1 or node 0 both valid; cluster must contain root.
	found := false
	for _, c := range res.Cluster {
		if c == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("cluster missing root")
	}
}

// randomAIG builds a random AIG with the given PI count and AND count.
func randomAIG(pis, ands int, seed int64) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	var lits []aig.Lit
	for i := 0; i < pis; i++ {
		lits = append(lits, g.AddPI())
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	g.AddPO(lits[len(lits)-1])
	return g
}

func aigFanins(g *aig.AIG) func(int) []int {
	return func(n int) []int {
		if !g.IsAnd(n) {
			return nil
		}
		f0, f1 := g.Fanins(n)
		return []int{f0.Node(), f1.Node()}
	}
}

func aigTopo(g *aig.AIG) []int {
	topo := make([]int, g.NumNodes())
	for i := range topo {
		topo[i] = i // AIG node indexes are already topological
	}
	return topo
}

func TestLabelsOnAIG(t *testing.T) {
	g := randomAIG(8, 200, 7)
	isSource := func(n int) bool { return !g.IsAnd(n) }
	lab := Labels(aigTopo(g), g.NumNodes(), 3, 400, aigFanins(g), isSource)
	// Labels must be positive for AND nodes, monotone along edges, and
	// every stored cut must be ≤ K and actually cut the cone.
	for n := 1; n < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			if lab.Label[n] != 0 {
				t.Fatalf("source %d labeled %d", n, lab.Label[n])
			}
			continue
		}
		if lab.Label[n] < 1 {
			t.Fatalf("AND %d labeled %d", n, lab.Label[n])
		}
		for _, f := range aigFanins(g)(n) {
			if lab.Label[f] > lab.Label[n] {
				t.Fatalf("label not monotone: %d(%d) reads %d(%d)", n, lab.Label[n], f, lab.Label[f])
			}
		}
		cut := lab.Cut[n]
		if len(cut) == 0 || len(cut) > 3 {
			t.Fatalf("node %d has cut of size %d", n, len(cut))
		}
		verifyCut(t, n, cut, aigFanins(g))
	}
}

// verifyCut checks that removing the cut nodes disconnects root from
// all sources.
func verifyCut(t *testing.T, root int, cut []int, fanins func(int) []int) {
	t.Helper()
	inCut := map[int]bool{}
	for _, c := range cut {
		inCut[c] = true
	}
	var walk func(n int)
	walk = func(n int) {
		if inCut[n] {
			return
		}
		fi := fanins(n)
		if len(fi) == 0 {
			t.Fatalf("cut %v of root %d misses a path to source %d", cut, root, n)
		}
		for _, f := range fi {
			walk(f)
		}
	}
	walk(root)
}

func TestLabelsMatchDepthBound(t *testing.T) {
	// A balanced 8-input AND tree has AND-depth 3. With K=3: level-1
	// ANDs get label 1; level-2 ANDs are 4-input cones (label 2); the
	// root's every 3-feasible cut contains a label-2 node (the 4
	// level-1 nodes alone would be a 4-cut), so the optimal root label
	// is exactly 3 — FlowMap must achieve it.
	g := aig.New()
	var lits []aig.Lit
	for i := 0; i < 8; i++ {
		lits = append(lits, g.AddPI())
	}
	for len(lits) > 1 {
		var next []aig.Lit
		for i := 0; i+1 < len(lits); i += 2 {
			next = append(next, g.And(lits[i], lits[i+1]))
		}
		lits = next
	}
	root := lits[0]
	g.AddPO(root)
	isSource := func(n int) bool { return !g.IsAnd(n) }
	lab := Labels(aigTopo(g), g.NumNodes(), 3, 400, aigFanins(g), isSource)
	if got := lab.Label[root.Node()]; got != 3 {
		t.Fatalf("8-AND tree root label = %d, want exactly 3", got)
	}
	cover := lab.Cover([]int{root.Node()}, isSource)
	if len(cover) == 0 {
		t.Fatal("empty cover")
	}
	for r, leaves := range cover {
		if len(leaves) > 3 {
			t.Fatalf("cover root %d has %d leaves", r, len(leaves))
		}
	}
}

func TestCoverReachesSources(t *testing.T) {
	g := randomAIG(6, 80, 3)
	isSource := func(n int) bool { return !g.IsAnd(n) }
	lab := Labels(aigTopo(g), g.NumNodes(), 3, 300, aigFanins(g), isSource)
	root := g.PO(0).Node()
	if isSource(root) {
		t.Skip("degenerate random graph")
	}
	cover := lab.Cover([]int{root}, isSource)
	// Every cover leaf is either a source or itself covered.
	for r, leaves := range cover {
		for _, l := range leaves {
			if isSource(l) {
				continue
			}
			if _, ok := cover[l]; !ok {
				t.Fatalf("leaf %d of cluster %d not covered", l, r)
			}
		}
	}
}

func TestDinicZeroFlow(t *testing.T) {
	g := NewDinic(2)
	if f := g.MaxFlow(0, 1, -1); f != 0 {
		t.Fatalf("disconnected flow = %d", f)
	}
	reach := g.ResidualReachable(0)
	if !reach[0] || reach[1] {
		t.Fatal("reachability wrong on empty graph")
	}
}

func TestDinicParallelEdges(t *testing.T) {
	g := NewDinic(2)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3)
	if f := g.MaxFlow(0, 1, -1); f != 5 {
		t.Fatalf("parallel edges flow = %d, want 5", f)
	}
}

func TestFindKCutRootIsLeaf(t *testing.T) {
	fanins := func(int) []int { return nil }
	isLeaf := func(int) bool { return true }
	if _, ok := FindKCut(0, 3, 10, fanins, isLeaf); ok {
		t.Fatal("leaf root produced a cut")
	}
}

func TestFindKCutConeBoundTruncation(t *testing.T) {
	// A long chain with a tiny cone bound: the cut must still be valid
	// (truncation points become leaves).
	fanins := chainFanins(100)
	isLeaf := func(n int) bool { return n == 0 }
	res, ok := FindKCut(99, 3, 5, fanins, isLeaf)
	if !ok {
		t.Fatal("bounded cone found no cut")
	}
	verifyCut(t, 99, res.Leaves, fanins)
}

func TestLabelsSingleNode(t *testing.T) {
	// Graph: node 1 reads node 0 (source).
	fanins := func(n int) []int {
		if n == 1 {
			return []int{0}
		}
		return nil
	}
	isSource := func(n int) bool { return n == 0 }
	lab := Labels([]int{0, 1}, 2, 3, 10, fanins, isSource)
	if lab.Label[1] != 1 {
		t.Fatalf("label = %d, want 1", lab.Label[1])
	}
	if len(lab.Cut[1]) != 1 || lab.Cut[1][0] != 0 {
		t.Fatalf("cut = %v", lab.Cut[1])
	}
}
