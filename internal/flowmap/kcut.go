package flowmap

import "sort"

// CutResult describes a K-feasible cut found for a root node.
type CutResult struct {
	// Leaves are the cut nodes: every source-to-root path passes
	// through one of them, and |Leaves| ≤ K. Leaves are outside the
	// cluster; their outputs are the cluster's inputs.
	Leaves []int
	// Cluster is the set of nodes strictly inside the cut (between the
	// leaves and the root), including the root.
	Cluster []int
}

// FindKCut searches for a node cut of size at most K separating root
// from the graph sources, using max-flow over the node-split cone of
// root (the FlowMap feasibility test). fanins yields a node's fanin
// node IDs; isLeaf marks nodes that terminate cone expansion (primary
// inputs, constants, flip-flop outputs, or any node the caller wants to
// keep outside clusters). maxCone bounds cone exploration: frontier
// nodes beyond the bound are conservatively treated as leaves, which
// keeps the test sound (a returned cut is always valid) at the cost of
// possibly missing a feasible cut in pathological deep cones.
func FindKCut(root int, K, maxCone int, fanins func(int) []int, isLeaf func(int) bool) (CutResult, bool) {
	if isLeaf(root) {
		return CutResult{}, false
	}
	// Trivial single-node "cut at the root's fanins" is handled by the
	// general machinery; collect the bounded cone first.
	cone := map[int]bool{root: true}
	leaf := map[int]bool{}
	frontier := []int{root}
	order := []int{root}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, f := range fanins(n) {
			if cone[f] || leaf[f] {
				continue
			}
			if isLeaf(f) || len(cone)+len(leaf) >= maxCone {
				leaf[f] = true
				order = append(order, f)
				continue
			}
			cone[f] = true
			order = append(order, f)
			frontier = append(frontier, f)
		}
	}
	if len(leaf) == 0 {
		// Root depends on nothing expandable; no meaningful cut.
		return CutResult{}, false
	}
	// Quick win: if the total leaf count is already ≤ K the leaf set is
	// a cut.
	if len(leaf) <= K {
		leaves := keys(leaf)
		cluster := keys(cone)
		sort.Ints(leaves)
		sort.Ints(cluster)
		return CutResult{Leaves: leaves, Cluster: cluster}, true
	}

	// Node-split flow network: source S, then for each cone/leaf node
	// two vertices in/out with capacity 1, root collapsed to the sink.
	// S → leaf_in: ∞; u_out → v_in for v ∈ cone reading u: ∞.
	id := map[int]int{}
	assign := func(n int) int {
		if v, ok := id[n]; ok {
			return v
		}
		v := len(id)
		id[n] = v
		return v
	}
	for _, n := range order {
		assign(n)
	}
	numNodes := len(id)
	// Vertex numbering: S = 0, T = 1, in(n) = 2+2*id, out(n) = 3+2*id.
	din := func(n int) int { return 2 + 2*id[n] }
	dout := func(n int) int { return 3 + 2*id[n] }
	g := NewDinic(2 + 2*numNodes)
	const S, T = 0, 1
	for n := range leaf {
		g.AddEdge(S, din(n), Inf)
		g.AddEdge(din(n), dout(n), 1)
	}
	for n := range cone {
		if n == root {
			g.AddEdge(din(n), T, Inf)
		} else {
			g.AddEdge(din(n), dout(n), 1)
		}
		for _, f := range fanins(n) {
			if cone[f] || leaf[f] {
				g.AddEdge(dout(f), din(n), Inf)
			}
		}
	}
	flow := g.MaxFlow(S, T, int64(K))
	if flow > int64(K) {
		return CutResult{}, false
	}
	// Min-cut: nodes whose in-vertex is residual-reachable but
	// out-vertex is not.
	reach := g.ResidualReachable(S)
	var leaves []int
	cutSet := map[int]bool{}
	for n := range id {
		if n == root {
			continue
		}
		if reach[din(n)] && !reach[dout(n)] {
			leaves = append(leaves, n)
			cutSet[n] = true
		}
	}
	// Cluster: nodes above the cut, found by backward traversal from
	// root stopping at cut nodes.
	var cluster []int
	seen := map[int]bool{root: true}
	stack := []int{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cluster = append(cluster, n)
		for _, f := range fanins(n) {
			if seen[f] || cutSet[f] {
				continue
			}
			if !cone[f] {
				// A path reaches beyond the cut — should not happen
				// with a valid min-cut.
				return CutResult{}, false
			}
			seen[f] = true
			stack = append(stack, f)
		}
	}
	sort.Ints(leaves)
	sort.Ints(cluster)
	return CutResult{Leaves: leaves, Cluster: cluster}, true
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
