package flowmap

import "sort"

// Labeling is the result of the FlowMap label computation over a
// combinational DAG.
type Labeling struct {
	// Label[n] is the minimum K-LUT depth of node n (0 for sources).
	Label []int
	// Cut[n] is the min-height K-feasible cut realizing Label[n]
	// (nil for sources).
	Cut [][]int
}

// Labels runs the FlowMap labeling phase: for every node in topological
// order it computes the minimum depth achievable by a K-feasible cut,
// using the p-vs-p+1 max-flow feasibility test of Cong & Ding. maxCone
// bounds the per-node cone exploration; beyond it the label may be
// conservatively overestimated (cuts remain valid).
func Labels(topo []int, numNodes, K, maxCone int, fanins func(int) []int, isSource func(int) bool) *Labeling {
	lab := &Labeling{Label: make([]int, numNodes), Cut: make([][]int, numNodes)}
	for _, t := range topo {
		if isSource(t) {
			lab.Label[t] = 0
			continue
		}
		fi := fanins(t)
		p := 0
		for _, f := range fi {
			if lab.Label[f] > p {
				p = lab.Label[f]
			}
		}
		if cut, ok := lab.collapseTest(t, p, K, maxCone, fanins, isSource); ok {
			lab.Label[t] = p
			lab.Cut[t] = cut
			continue
		}
		lab.Label[t] = p + 1
		cut := append([]int(nil), fi...)
		sort.Ints(cut)
		lab.Cut[t] = dedupInts(cut)
	}
	return lab
}

// collapseTest checks whether node t admits a K-feasible cut of height
// p: all cone nodes labeled p are collapsed into t (they must end up on
// the sink side), and the collapsed network is tested for a node cut of
// size ≤ K.
func (lab *Labeling) collapseTest(t, p, K, maxCone int, fanins func(int) []int, isSource func(int) bool) ([]int, bool) {
	// Bounded cone collection.
	cone := map[int]bool{t: true}
	leaf := map[int]bool{}
	frontier := []int{t}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, f := range fanins(n) {
			if cone[f] || leaf[f] {
				continue
			}
			if isSource(f) || len(cone)+len(leaf) >= maxCone {
				leaf[f] = true
				continue
			}
			cone[f] = true
			frontier = append(frontier, f)
		}
	}
	// A cut realizing height p may only contain nodes labeled ≤ p-1.
	// Any leaf labeled ≥ p sits on some source-to-root path whose only
	// cut candidates at or above it are labeled ≥ p (labels are
	// monotone along edges), so such a leaf makes height p infeasible.
	// In particular p == 0 is always infeasible: primary-input leaves
	// carry label 0.
	for n := range leaf {
		if lab.Label[n] >= p {
			return nil, false
		}
	}
	if len(leaf) <= K {
		return sortedKeys(leaf), true
	}
	collapsed := map[int]bool{t: true}
	for n := range cone {
		if lab.Label[n] == p {
			collapsed[n] = true
		}
	}
	id := map[int]int{}
	for n := range cone {
		if !collapsed[n] {
			id[n] = len(id)
		}
	}
	for n := range leaf {
		id[n] = len(id)
	}
	din := func(n int) int { return 2 + 2*id[n] }
	dout := func(n int) int { return 3 + 2*id[n] }
	g := NewDinic(2 + 2*len(id))
	const S, T = 0, 1
	for n := range leaf {
		g.AddEdge(S, din(n), Inf)
		g.AddEdge(din(n), dout(n), 1)
	}
	outOf := func(n int) (int, bool) {
		if collapsed[n] {
			return 0, false // edges into collapsed nodes go to T
		}
		return dout(n), true
	}
	for n := range cone {
		if !collapsed[n] {
			g.AddEdge(din(n), dout(n), 1)
		}
		for _, f := range fanins(n) {
			if !cone[f] && !leaf[f] {
				continue
			}
			src, ok := outOf(f)
			if !ok {
				continue // collapsed→x edges are internal to the sink side... skip: f collapsed feeding n
			}
			if collapsed[n] {
				g.AddEdge(src, T, Inf)
			} else {
				g.AddEdge(src, din(n), Inf)
			}
		}
	}
	flow := g.MaxFlow(S, T, int64(K))
	if flow > int64(K) {
		return nil, false
	}
	reach := g.ResidualReachable(S)
	var cut []int
	for n := range id {
		if reach[din(n)] && !reach[dout(n)] {
			cut = append(cut, n)
		}
	}
	sort.Ints(cut)
	return cut, true
}

// Cover derives a LUT-style covering from the labeling: starting at the
// given roots, each chosen node is realized by its stored cut and the
// cut leaves become new roots. It returns, for every chosen cluster
// root, the cut leaves.
func (lab *Labeling) Cover(roots []int, isSource func(int) bool) map[int][]int {
	cover := map[int][]int{}
	var stack []int
	for _, r := range roots {
		stack = append(stack, r)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if isSource(n) {
			continue
		}
		if _, done := cover[n]; done {
			continue
		}
		cut := lab.Cut[n]
		cover[n] = cut
		for _, f := range cut {
			stack = append(stack, f)
		}
	}
	return cover
}

func sortedKeys(m map[int]bool) []int {
	out := keys(m)
	sort.Ints(out)
	return out
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
