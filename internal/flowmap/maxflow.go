// Package flowmap implements the maxflow-mincut machinery behind the
// paper's regularity-driven logic compaction: "Our algorithm first
// finds clusters of logic or supernodes corresponding to functions with
// 3 or less inputs. This is done using a maxflow-mincut algorithm
// similar to Flowmap [5]." (Sec. 3.1). It provides a Dinic max-flow
// solver and K-feasible-cut computation over arbitrary combinational
// DAGs via node splitting.
package flowmap

// Dinic is a max-flow solver over an explicit capacity graph.
type Dinic struct {
	n     int
	to    []int
	cap   []int64
	next  []int
	head  []int
	level []int
	iter  []int
}

// Inf is the effectively-unbounded capacity.
const Inf int64 = 1 << 60

// NewDinic creates a solver with n nodes and no edges.
func NewDinic(n int) *Dinic {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &Dinic{n: n, head: h}
}

// AddEdge adds a directed edge u→v with the given capacity and returns
// its index (the reverse edge is index^1).
func (d *Dinic) AddEdge(u, v int, c int64) int {
	idx := len(d.to)
	d.to = append(d.to, v)
	d.cap = append(d.cap, c)
	d.next = append(d.next, d.head[u])
	d.head[u] = idx
	d.to = append(d.to, u)
	d.cap = append(d.cap, 0)
	d.next = append(d.next, d.head[v])
	d.head[v] = idx + 1
	return idx
}

func (d *Dinic) bfs(s, t int) bool {
	d.level = make([]int, d.n)
	for i := range d.level {
		d.level[i] = -1
	}
	queue := []int{s}
	d.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := d.head[u]; e != -1; e = d.next[e] {
			if d.cap[e] > 0 && d.level[d.to[e]] < 0 {
				d.level[d.to[e]] = d.level[u] + 1
				queue = append(queue, d.to[e])
			}
		}
	}
	return d.level[t] >= 0
}

func (d *Dinic) dfs(u, t int, f int64) int64 {
	if u == t {
		return f
	}
	for ; d.iter[u] != -1; d.iter[u] = d.next[d.iter[u]] {
		e := d.iter[u]
		v := d.to[e]
		if d.cap[e] <= 0 || d.level[v] != d.level[u]+1 {
			continue
		}
		got := d.dfs(v, t, min64(f, d.cap[e]))
		if got > 0 {
			d.cap[e] -= got
			d.cap[e^1] += got
			return got
		}
	}
	return 0
}

// MaxFlow computes the max flow from s to t, stopping early once the
// flow exceeds limit (pass a negative limit for no bound). The returned
// value is exact when ≤ limit, otherwise a witness that the flow is
// larger than limit.
func (d *Dinic) MaxFlow(s, t int, limit int64) int64 {
	var flow int64
	for d.bfs(s, t) {
		d.iter = append([]int(nil), d.head...)
		for {
			f := d.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			flow += f
			if limit >= 0 && flow > limit {
				return flow
			}
		}
	}
	return flow
}

// ResidualReachable returns the set of nodes reachable from s in the
// residual graph; the min cut consists of saturated edges leaving the
// set.
func (d *Dinic) ResidualReachable(s int) []bool {
	seen := make([]bool, d.n)
	seen[s] = true
	stack := []int{s}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for e := d.head[u]; e != -1; e = d.next[e] {
			if d.cap[e] > 0 && !seen[d.to[e]] {
				seen[d.to[e]] = true
				stack = append(stack, d.to[e])
			}
		}
	}
	return seen
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
