// Package fsx holds the crash-safe filesystem primitives the flow
// service's durability layer is built on: atomic whole-file writes
// (temp file + fsync + rename) so a crash can never leave a torn file
// at a published path — only a stale previous version or a leftover
// temp file no reader looks at.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the content produced by write to path
// atomically: the bytes go to a same-directory temp file, which is
// fsynced, closed and renamed over path. Readers therefore see either
// the previous complete file or the new complete file, never a torn
// intermediate. The containing directory is created if missing and
// best-effort synced after the rename so the new directory entry is
// itself durable.
func WriteFileAtomic(path string, perm os.FileMode, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("fsx: dir for %s: %w", path, err)
		}
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsx: temp for %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("fsx: chmod %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("fsx: sync %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		tmp = nil
		return fmt.Errorf("fsx: close %s: %w", name, err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		tmp = nil
		return fmt.Errorf("fsx: publish %s: %w", path, err)
	}
	tmp = nil
	syncDir(dir)
	return nil
}

// WriteFileBytesAtomic is WriteFileAtomic for a ready byte slice.
func WriteFileBytesAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomic(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir best-effort fsyncs a directory so a just-renamed entry
// survives power loss. Some filesystems reject directory fsync; that
// is not worth failing a write that already landed atomically.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
