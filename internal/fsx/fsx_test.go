package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "nested", "dir", "out.txt")
	if err := WriteFileBytesAtomic(p, []byte("hello"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	// Overwrite publishes the new content completely.
	if err := WriteFileBytesAtomic(p, []byte("second version"), 0o644); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _ = os.ReadFile(p)
	if string(got) != "second version" {
		t.Fatalf("after overwrite: %q", got)
	}
}

// TestWriteFileAtomicWriterError: a failing writer callback must leave
// the published path untouched and no temp litter behind.
func TestWriteFileAtomicWriterError(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.txt")
	if err := WriteFileBytesAtomic(p, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(p, 0o644, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	got, _ := os.ReadFile(p)
	if string(got) != "original" {
		t.Fatalf("published file clobbered: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp litter left behind: %d entries", len(ents))
	}
}

func TestWriteFileAtomicPerm(t *testing.T) {
	p := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFileBytesAtomic(p, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("perm %v, want 0600", st.Mode().Perm())
	}
}
