package logic

import "sort"

// NPNTransform records how a function was mapped to its NPN
// representative: out = representative(in) is obtained from the
// original f by permuting inputs with Perm, complementing the inputs
// flagged in InputNeg, and complementing the output if OutputNeg.
type NPNTransform struct {
	Perm      []int // Perm[i] = original input feeding position i
	InputNeg  uint  // bit i set: input i of the representative is negated
	OutputNeg bool
}

// ApplyNPN applies the transform to t: first permutes inputs, then
// negates the flagged inputs, then the output. It is the operation
// whose result NPNCanon minimizes over.
func ApplyNPN(t TT, tr NPNTransform) TT {
	r := t.PermuteInputs(tr.Perm)
	for i := 0; i < t.N; i++ {
		if tr.InputNeg>>uint(i)&1 == 1 {
			r = r.NegateInput(i)
		}
	}
	if tr.OutputNeg {
		r = r.Not()
	}
	return r
}

// permutations returns all permutations of 0..n-1. n is at most
// MaxInputs, and callers only use n ≤ 4 in practice.
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, base)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// NPNCanon returns the lexicographically smallest table in the NPN
// class of t (all input permutations, input complementations, and
// output complementation), along with one transform achieving it.
// Exhaustive: intended for N ≤ 4 where the orbit is at most 768
// transforms.
func NPNCanon(t TT) (TT, NPNTransform) {
	best := t
	bestTr := NPNTransform{Perm: identityPerm(t.N)}
	for _, p := range permutations(t.N) {
		perm := t.PermuteInputs(p)
		for neg := uint(0); neg < 1<<uint(t.N); neg++ {
			cand := perm
			for i := 0; i < t.N; i++ {
				if neg>>uint(i)&1 == 1 {
					cand = cand.NegateInput(i)
				}
			}
			for _, on := range []bool{false, true} {
				c := cand
				if on {
					c = c.Not()
				}
				if c.Bits < best.Bits {
					best = c
					bestTr = NPNTransform{Perm: append([]int(nil), p...), InputNeg: neg, OutputNeg: on}
				}
			}
		}
	}
	return best, bestTr
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// NPNClass enumerates every table NPN-equivalent to t (the full orbit,
// deduplicated and sorted by bits). Useful for building matching sets
// for programmable cells.
func NPNClass(t TT) []TT {
	seen := map[uint64]bool{}
	var out []TT
	for _, p := range permutations(t.N) {
		perm := t.PermuteInputs(p)
		for neg := uint(0); neg < 1<<uint(t.N); neg++ {
			cand := perm
			for i := 0; i < t.N; i++ {
				if neg>>uint(i)&1 == 1 {
					cand = cand.NegateInput(i)
				}
			}
			for _, on := range []bool{false, true} {
				c := cand
				if on {
					c = c.Not()
				}
				if !seen[c.Bits] {
					seen[c.Bits] = true
					out = append(out, c)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bits < out[j].Bits })
	return out
}

// PClass enumerates the orbit of t under input permutation and input
// complementation only (no output complementation).
func PClass(t TT) []TT {
	seen := map[uint64]bool{}
	var out []TT
	for _, p := range permutations(t.N) {
		perm := t.PermuteInputs(p)
		for neg := uint(0); neg < 1<<uint(t.N); neg++ {
			cand := perm
			for i := 0; i < t.N; i++ {
				if neg>>uint(i)&1 == 1 {
					cand = cand.NegateInput(i)
				}
			}
			if !seen[cand.Bits] {
				seen[cand.Bits] = true
				out = append(out, cand)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bits < out[j].Bits })
	return out
}
