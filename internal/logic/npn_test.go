package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNPNCanonIsClassInvariant(t *testing.T) {
	// Every member of an NPN orbit must canonicalize to the same table.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		f := NewTT(3, rng.Uint64())
		canon, _ := NPNCanon(f)
		for _, g := range NPNClass(f) {
			c, _ := NPNCanon(g)
			if c != canon {
				t.Fatalf("NPN canon not invariant: f=%v g=%v canon %v vs %v", f, g, c, canon)
			}
		}
	}
}

func TestNPNTransformReproducesCanon(t *testing.T) {
	err := quick.Check(func(bits uint64) bool {
		f := NewTT(3, bits)
		canon, tr := NPNCanon(f)
		return ApplyNPN(f, tr) == canon
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNPNCanonIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		f := NewTT(3, rng.Uint64())
		canon, _ := NPNCanon(f)
		for _, g := range NPNClass(f) {
			if g.Bits < canon.Bits {
				t.Fatalf("found smaller class member %v than canon %v", g, canon)
			}
		}
	}
}

func TestNPNClassOfXor3(t *testing.T) {
	// XOR3's NPN class is exactly {XOR3, XNOR3}: it is invariant under
	// input permutation, and any input/output negation toggles parity.
	class := NPNClass(TTXor3)
	if len(class) != 2 {
		t.Fatalf("XOR3 NPN class size = %d, want 2", len(class))
	}
	seen := map[uint64]bool{}
	for _, g := range class {
		seen[g.Bits] = true
	}
	if !seen[TTXor3.Bits] || !seen[TTXnor3.Bits] {
		t.Fatalf("XOR3 class = %v", class)
	}
}

func TestNPNClassSizesPartition(t *testing.T) {
	// The NPN classes of all 256 3-input functions partition the space.
	seen := map[uint64]uint64{} // function -> canon
	classCount := map[uint64]int{}
	for bits := uint64(0); bits < 256; bits++ {
		c, _ := NPNCanon(NewTT(3, bits))
		seen[bits] = c.Bits
		classCount[c.Bits]++
	}
	total := 0
	for _, n := range classCount {
		total += n
	}
	if total != 256 {
		t.Fatalf("classes cover %d functions, want 256", total)
	}
	// There are exactly 14 NPN classes of 3-input functions (10 with
	// full support plus classes of smaller support), a classic result.
	if len(classCount) != 14 {
		t.Fatalf("found %d NPN classes of 3-input functions, want 14", len(classCount))
	}
	// Sanity: class assignment is a function of the orbit.
	for bits, canon := range seen {
		f := NewTT(3, bits)
		for _, g := range NPNClass(f)[:1] {
			if seen[g.Bits] != canon {
				t.Fatalf("orbit member maps to different canon")
			}
		}
	}
}

func TestPClassExcludesOutputNegation(t *testing.T) {
	// AND2's P-class (input perm + neg only) has the 4 AND-family
	// functions; output negation doubles it to the 8-member NPN class
	// (adding the NAND family, equivalently the OR family by De Morgan).
	p := PClass(TTAnd2)
	if len(p) != 4 {
		t.Fatalf("AND2 P-class size = %d, want 4", len(p))
	}
	n := NPNClass(TTAnd2)
	if len(n) != 8 {
		t.Fatalf("AND2 NPN-class size = %d, want 8", len(n))
	}
	// XOR2: P-class is {XOR2, XNOR2} (negating one input complements
	// the output), NPN class the same.
	if got := len(PClass(TTXor2)); got != 2 {
		t.Fatalf("XOR2 P-class size = %d, want 2", got)
	}
}

func TestPermutationsCount(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24} {
		if got := len(permutations(n)); got != want {
			t.Errorf("permutations(%d) = %d, want %d", n, got, want)
		}
	}
}
