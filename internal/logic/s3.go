package logic

// This file reproduces the Section 2.1 analysis of the paper: which of
// the 256 3-input functions the S3 gate (a 2:1 MUX driven by two ND2WI
// gates) can implement, the five categories of infeasible functions
// from Figure 2, and the completeness of the modified S3 cell of
// Figure 3.
//
// A ND2WI gate is a 2-input NAND with programmable inversion. With the
// via-configurable input ties the paper assumes, it implements every
// 2-input function except XOR and XNOR: 14 functions in total, which is
// where the paper's "at least 196" (= 14×14 per select choice) comes
// from.

// ND2WIImplementable reports whether a 2-input function can be realized
// by a single ND2WI gate.
func ND2WIImplementable(t TT) bool {
	if t.N != 2 {
		panic("logic: ND2WIImplementable wants a 2-input table")
	}
	return t != TTXor2 && t != TTXnor2
}

// ND2WIFunctions returns the 14 ND2WI-implementable 2-input tables.
func ND2WIFunctions() []TT {
	var out []TT
	for bits := uint64(0); bits < 16; bits++ {
		t := NewTT(2, bits)
		if ND2WIImplementable(t) {
			out = append(out, t)
		}
	}
	return out
}

// S3Decomposition is a Shannon decomposition f = s'·g + s·h of a
// 3-input function about select variable Select, with the cofactors
// expressed over the remaining two variables in ascending index order.
type S3Decomposition struct {
	Select int
	G, H   TT // 2-input cofactors: G = f|select=0, H = f|select=1
}

// Decompose returns the Shannon decomposition of f about variable i.
func Decompose(f TT, i int) S3Decomposition {
	if f.N != 3 {
		panic("logic: Decompose wants a 3-input table")
	}
	return S3Decomposition{Select: i, G: f.Cofactor(i, false), H: f.Cofactor(i, true)}
}

// S3FeasibleWithSelect reports whether the S3 gate implements f using
// input i as the MUX select, i.e. whether both cofactors about i are
// ND2WI-implementable.
func S3FeasibleWithSelect(f TT, i int) bool {
	d := Decompose(f, i)
	return ND2WIImplementable(d.G) && ND2WIImplementable(d.H)
}

// S3Feasible reports whether the S3 gate implements f for some choice
// of select input.
func S3Feasible(f TT) bool {
	for i := 0; i < 3; i++ {
		if S3FeasibleWithSelect(f, i) {
			return true
		}
	}
	return false
}

// S3FeasibleCount returns the number of 3-input functions the S3 gate
// implements. The paper states this is at least 196.
func S3FeasibleCount() int {
	n := 0
	for bits := uint64(0); bits < 256; bits++ {
		if S3Feasible(NewTT(3, bits)) {
			n++
		}
	}
	return n
}

// S3Category labels an S3-infeasible decomposition per Figure 2 of the
// paper.
type S3Category int

const (
	// S3CatFeasible marks functions the plain S3 gate implements.
	S3CatFeasible S3Category = iota
	// S3CatND2XOR: one cofactor ND2WI-implementable, the other an XOR.
	S3CatND2XOR
	// S3CatND2XNOR: one cofactor ND2WI-implementable, the other an XNOR.
	S3CatND2XNOR
	// S3CatXOR2: both cofactors equal XOR; f simplifies to a 2-input XOR.
	S3CatXOR2
	// S3CatXNOR2: both cofactors equal XNOR; f simplifies to a 2-input XNOR.
	S3CatXNOR2
	// S3CatXOR3: the cofactors are complements of each other and
	// XOR-like; f is a 3-input XOR or XNOR.
	S3CatXOR3
)

// String returns the Figure 2 label of the category.
func (c S3Category) String() string {
	switch c {
	case S3CatFeasible:
		return "S3-feasible"
	case S3CatND2XOR:
		return "ND2WI cofactor + XOR cofactor"
	case S3CatND2XNOR:
		return "ND2WI cofactor + XNOR cofactor"
	case S3CatXOR2:
		return "simplifies to 2-input XOR"
	case S3CatXNOR2:
		return "simplifies to 2-input XNOR"
	case S3CatXOR3:
		return "3-input XOR/XNOR (complementary cofactors)"
	default:
		return "unknown"
	}
}

func isXorLike(t TT) bool { return t == TTXor2 || t == TTXnor2 }

// ClassifyDecomposition labels the decomposition of f about variable i
// per Figure 2. It returns S3CatFeasible when both cofactors are
// ND2WI-implementable.
func ClassifyDecomposition(f TT, i int) S3Category {
	d := Decompose(f, i)
	gx, hx := isXorLike(d.G), isXorLike(d.H)
	switch {
	case !gx && !hx:
		return S3CatFeasible
	case gx && hx && d.G == d.H && d.G == TTXor2:
		return S3CatXOR2
	case gx && hx && d.G == d.H && d.G == TTXnor2:
		return S3CatXNOR2
	case gx && hx && d.G == d.H.Not():
		return S3CatXOR3
	case (gx && d.G == TTXor2) || (hx && d.H == TTXor2):
		return S3CatND2XOR
	default:
		return S3CatND2XNOR
	}
}

// ClassifyFunction labels f itself: feasible if any select works,
// otherwise the most specific Figure 2 category over its three
// decompositions (3-input XOR beats the 2-input categories, which beat
// the mixed ones).
func ClassifyFunction(f TT) S3Category {
	if S3Feasible(f) {
		return S3CatFeasible
	}
	rank := func(c S3Category) int {
		switch c {
		case S3CatXOR3:
			return 3
		case S3CatXOR2, S3CatXNOR2:
			return 2
		case S3CatND2XOR, S3CatND2XNOR:
			return 1
		default:
			return 0
		}
	}
	best := ClassifyDecomposition(f, 0)
	for i := 1; i < 3; i++ {
		c := ClassifyDecomposition(f, i)
		if rank(c) > rank(best) {
			best = c
		}
	}
	return best
}

// Fig2Report tallies the Figure 2 analysis over all 256 3-input
// functions.
type Fig2Report struct {
	Feasible int
	// PerSelectFeasible is the number of functions implementable with a
	// fixed select choice (the paper's ≥196 bound is 14² = 196).
	PerSelectFeasible [3]int
	// InfeasibleByCategory counts globally infeasible functions by
	// their Figure 2 category.
	InfeasibleByCategory map[S3Category]int
	// DecompositionsByCategory counts every (function, select) pair by
	// decomposition category; this matches Figure 2's view, which
	// classifies decompositions rather than functions.
	DecompositionsByCategory map[S3Category]int
}

// AnalyzeFig2 computes the full Figure 2 report.
func AnalyzeFig2() Fig2Report {
	rep := Fig2Report{
		InfeasibleByCategory:     map[S3Category]int{},
		DecompositionsByCategory: map[S3Category]int{},
	}
	for bits := uint64(0); bits < 256; bits++ {
		f := NewTT(3, bits)
		if S3Feasible(f) {
			rep.Feasible++
		} else {
			rep.InfeasibleByCategory[ClassifyFunction(f)]++
		}
		for i := 0; i < 3; i++ {
			if S3FeasibleWithSelect(f, i) {
				rep.PerSelectFeasible[i]++
			}
			rep.DecompositionsByCategory[ClassifyDecomposition(f, i)]++
		}
	}
	return rep
}

// ModifiedS3Config describes one via configuration of the modified S3
// cell of Figure 3: the select input, the 2-input function placed on
// the MUX-side cofactor, the ND2WI-side cofactor (which may instead be
// the complement of the MUX side, through the programmable inverter),
// and whether the inverter also drives the MUX-side data input.
type ModifiedS3Config struct {
	Select      int
	MuxSide     TT   // any 2-input function (a 2:1 MUX implements all 16)
	MuxInverted bool // programmable inverter applied to the MUX output
	ND2Side     TT   // ND2WI-implementable, or MuxSide complement via the inverter
	ND2FromInv  bool // true when the second data input is the inverted MUX output
}

// ModifiedS3Implements returns a configuration of the modified S3 cell
// realizing f, if one exists. The cell is a final 2:1 MUX whose data
// inputs are (a) the output of a 2:1 MUX over the two non-select
// inputs, optionally inverted by the programmable inverter, and (b)
// either a ND2WI gate over the same inputs or the inverted MUX output.
func ModifiedS3Implements(f TT) (ModifiedS3Config, bool) {
	if f.N != 3 {
		panic("logic: ModifiedS3Implements wants a 3-input table")
	}
	for i := 0; i < 3; i++ {
		d := Decompose(f, i)
		// MUX side serves cofactor G (select=0); it implements any
		// 2-input function, inverter or not.
		// ND2 side serves cofactor H: ND2WI-implementable directly, or
		// G' through the inverter.
		if ND2WIImplementable(d.H) {
			return ModifiedS3Config{Select: i, MuxSide: d.G, ND2Side: d.H}, true
		}
		if d.H == d.G.Not() {
			return ModifiedS3Config{Select: i, MuxSide: d.G, ND2Side: d.H, ND2FromInv: true}, true
		}
		// Symmetric assignment: MUX side serves H (invert the select).
		if ND2WIImplementable(d.G) {
			return ModifiedS3Config{Select: i, MuxSide: d.H, ND2Side: d.G, MuxInverted: false}, true
		}
	}
	return ModifiedS3Config{}, false
}

// ModifiedS3Complete reports whether the modified S3 cell implements
// all 256 3-input functions (the paper's Figure 3 claim).
func ModifiedS3Complete() bool {
	for bits := uint64(0); bits < 256; bits++ {
		if _, ok := ModifiedS3Implements(NewTT(3, bits)); !ok {
			return false
		}
	}
	return true
}
