package logic

import "testing"

func TestND2WISetSize(t *testing.T) {
	fns := ND2WIFunctions()
	if len(fns) != 14 {
		t.Fatalf("ND2WI implements %d 2-input functions, want 14", len(fns))
	}
	for _, f := range fns {
		if f == TTXor2 || f == TTXnor2 {
			t.Fatalf("ND2WI set contains %v", f)
		}
	}
}

// TestS3FeasibleCount checks the paper's Section 2.1 claim: the S3 gate
// (2:1 MUX driven by two ND2WI gates) implements at least 196 of the
// 256 3-input functions. 196 = 14² is the count for a fixed select
// input; allowing any of the three inputs as select can only help.
func TestS3FeasibleCount(t *testing.T) {
	n := S3FeasibleCount()
	if n < 196 {
		t.Fatalf("S3 implements %d functions, paper claims at least 196", n)
	}
	if n == 256 {
		t.Fatalf("S3 implements all 256 functions; the paper's Figure 2 infeasible set must be nonempty")
	}
	t.Logf("S3 gate implements %d of 256 3-input functions (%d infeasible)", n, 256-n)
}

func TestPerSelectFeasibleIsExactly196(t *testing.T) {
	rep := AnalyzeFig2()
	for i, n := range rep.PerSelectFeasible {
		if n != 196 {
			t.Errorf("select %d: %d feasible functions, want 196 (=14²)", i, n)
		}
	}
}

func TestXor3IsS3Infeasible(t *testing.T) {
	for _, f := range []TT{TTXor3, TTXnor3} {
		if S3Feasible(f) {
			t.Errorf("%v should be S3-infeasible", f)
		}
		if got := ClassifyFunction(f); got != S3CatXOR3 {
			t.Errorf("%v classified as %v, want XOR3 category", f, got)
		}
	}
}

func TestXor2IsS3FeasibleViaOtherSelect(t *testing.T) {
	// f = x0 XOR x1 as a 3-input function: decomposing about x2 yields
	// XOR cofactors (Figure 2 category 3), but decomposing about x0
	// yields literal cofactors, so the S3 gate handles it.
	f := VarTT(3, 0).Xor(VarTT(3, 1))
	if got := ClassifyDecomposition(f, 2); got != S3CatXOR2 {
		t.Errorf("decomposition about x2 = %v, want XOR2 category", got)
	}
	if !S3FeasibleWithSelect(f, 0) {
		t.Errorf("XOR2 should be feasible with select x0")
	}
	if !S3Feasible(f) {
		t.Errorf("XOR2 should be S3-feasible overall")
	}
}

func TestClassifyDecompositionCategories(t *testing.T) {
	a, b, c := VarTT(3, 0), VarTT(3, 1), VarTT(3, 2)
	// f = c'·(a·b) + c·(a⊕b): about c, one ND2WI cofactor and one XOR.
	f := Mux(c, a.And(b), a.Xor(b))
	if got := ClassifyDecomposition(f, 2); got != S3CatND2XOR {
		t.Errorf("got %v, want ND2WI+XOR", got)
	}
	// Same with XNOR.
	g := Mux(c, a.And(b), a.Xor(b).Not())
	if got := ClassifyDecomposition(g, 2); got != S3CatND2XNOR {
		t.Errorf("got %v, want ND2WI+XNOR", got)
	}
	// XOR3: complementary XOR-like cofactors.
	if got := ClassifyDecomposition(TTXor3, 0); got != S3CatXOR3 {
		t.Errorf("got %v, want XOR3", got)
	}
}

func TestFig2ReportConsistency(t *testing.T) {
	rep := AnalyzeFig2()
	infeasible := 0
	for cat, n := range rep.InfeasibleByCategory {
		if cat == S3CatFeasible {
			t.Errorf("feasible category in infeasible tally")
		}
		infeasible += n
	}
	if rep.Feasible+infeasible != 256 {
		t.Fatalf("feasible %d + infeasible %d != 256", rep.Feasible, infeasible)
	}
	// All globally infeasible functions must involve XOR-like cofactors
	// in every decomposition.
	for bits := uint64(0); bits < 256; bits++ {
		f := NewTT(3, bits)
		if S3Feasible(f) {
			continue
		}
		for i := 0; i < 3; i++ {
			d := Decompose(f, i)
			if !isXorLike(d.G) && !isXorLike(d.H) {
				t.Fatalf("infeasible %v has a clean decomposition about %d", f, i)
			}
		}
	}
	// XOR3 and XNOR3 are exactly the category-5 residents.
	if rep.InfeasibleByCategory[S3CatXOR3] != 2 {
		t.Errorf("category 5 count = %d, want 2 (XOR3, XNOR3)", rep.InfeasibleByCategory[S3CatXOR3])
	}
	total := 0
	for _, n := range rep.DecompositionsByCategory {
		total += n
	}
	if total != 256*3 {
		t.Fatalf("decomposition tally = %d, want 768", total)
	}
}

// TestModifiedS3Complete checks the Figure 3 claim: replacing one ND2WI
// of the S3 gate with a 2:1 MUX plus a programmable output inverter
// yields a cell that implements all 256 3-input functions.
func TestModifiedS3Complete(t *testing.T) {
	if !ModifiedS3Complete() {
		for bits := uint64(0); bits < 256; bits++ {
			if _, ok := ModifiedS3Implements(NewTT(3, bits)); !ok {
				t.Fatalf("modified S3 cannot implement %v", NewTT(3, bits))
			}
		}
	}
}

func TestModifiedS3ConfigsAreValid(t *testing.T) {
	// Reconstruct f from the returned configuration and check equality.
	for bits := uint64(0); bits < 256; bits++ {
		f := NewTT(3, bits)
		cfg, ok := ModifiedS3Implements(f)
		if !ok {
			t.Fatalf("no config for %v", f)
		}
		d := Decompose(f, cfg.Select)
		// The config stores the cofactors it assigned; verify the
		// claimed side constraints hold.
		if cfg.ND2FromInv {
			if cfg.ND2Side != cfg.MuxSide.Not() {
				t.Fatalf("inverter path config inconsistent for %v", f)
			}
		} else if !ND2WIImplementable(cfg.ND2Side) {
			t.Fatalf("ND2 side %v not implementable for %v", cfg.ND2Side, f)
		}
		// The two sides must be the cofactors of f about the select (in
		// either order).
		gh := [2]TT{d.G, d.H}
		ok1 := cfg.MuxSide == gh[0] && cfg.ND2Side == gh[1]
		ok2 := cfg.MuxSide == gh[1] && cfg.ND2Side == gh[0]
		if !ok1 && !ok2 {
			t.Fatalf("config sides are not the cofactors of %v", f)
		}
	}
}

func TestXor3ViaModifiedS3UsesInverter(t *testing.T) {
	cfg, ok := ModifiedS3Implements(TTXor3)
	if !ok {
		t.Fatal("modified S3 must implement XOR3")
	}
	if !cfg.ND2FromInv {
		t.Errorf("XOR3 should route the inverted MUX output to the second data input (Sec. 2.2 sum function)")
	}
}

func TestS3CategoryStrings(t *testing.T) {
	cats := []S3Category{S3CatFeasible, S3CatND2XOR, S3CatND2XNOR, S3CatXOR2, S3CatXNOR2, S3CatXOR3}
	seen := map[string]bool{}
	for _, c := range cats {
		s := c.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("bad or duplicate label for category %d: %q", c, s)
		}
		seen[s] = true
	}
}
