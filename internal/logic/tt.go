// Package logic provides small-function Boolean analysis for the VPGA
// CAD flow: truth tables up to six inputs, cofactoring, NPN
// canonicalization, and the S3-cell feasibility analysis from Section
// 2.1 of "Exploring Logic Block Granularity for Regular Fabrics"
// (DATE 2004).
package logic

import (
	"fmt"
	"strings"
)

// MaxInputs is the largest function arity representable by TT.
const MaxInputs = 6

// TT is a completely-specified Boolean function of up to MaxInputs
// variables, stored as a bit vector. Bit i holds f(x_{n-1},...,x_0)
// where i = x_{n-1}<<(n-1) | ... | x_1<<1 | x_0; x_0 is input 0.
type TT struct {
	N    int    // number of inputs, 0..MaxInputs
	Bits uint64 // only the low 1<<N bits are meaningful
}

// mask returns the bit mask covering the 1<<n rows of an n-input table.
func mask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(n))) - 1
}

// NewTT builds a truth table from its bit representation, masking away
// bits beyond row 1<<n. It panics if n is out of range; arities are
// static properties of the calling code, so a bad n is a programming
// error rather than a runtime condition.
func NewTT(n int, bits uint64) TT {
	if n < 0 || n > MaxInputs {
		panic(fmt.Sprintf("logic: invalid truth table arity %d", n))
	}
	return TT{N: n, Bits: bits & mask(n)}
}

// ConstTT returns the n-input constant function.
func ConstTT(n int, v bool) TT {
	if v {
		return NewTT(n, ^uint64(0))
	}
	return NewTT(n, 0)
}

// VarTT returns the n-input projection function f = x_i.
func VarTT(n, i int) TT {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("logic: variable %d out of range for %d inputs", i, n))
	}
	var bits uint64
	for row := 0; row < 1<<uint(n); row++ {
		if row>>uint(i)&1 == 1 {
			bits |= 1 << uint(row)
		}
	}
	return TT{N: n, Bits: bits}
}

// Eval returns f at the given input assignment. Inputs beyond N are
// ignored.
func (t TT) Eval(assign uint) bool {
	return t.Bits>>(uint64(assign)&uint64(1<<uint(t.N)-1))&1 == 1
}

// Not returns the complement of f.
func (t TT) Not() TT { return TT{N: t.N, Bits: ^t.Bits & mask(t.N)} }

// And returns f·g. Both tables must have the same arity.
func (t TT) And(u TT) TT { t.mustMatch(u); return TT{N: t.N, Bits: t.Bits & u.Bits} }

// Or returns f+g.
func (t TT) Or(u TT) TT { t.mustMatch(u); return TT{N: t.N, Bits: t.Bits | u.Bits} }

// Xor returns f⊕g.
func (t TT) Xor(u TT) TT { t.mustMatch(u); return TT{N: t.N, Bits: t.Bits ^ u.Bits} }

func (t TT) mustMatch(u TT) {
	if t.N != u.N {
		panic(fmt.Sprintf("logic: arity mismatch %d vs %d", t.N, u.N))
	}
}

// Mux returns s'·d0 + s·d1 computed row-wise over tables of equal arity.
func Mux(s, d0, d1 TT) TT {
	s.mustMatch(d0)
	s.mustMatch(d1)
	return TT{N: s.N, Bits: (^s.Bits & d0.Bits) | (s.Bits & d1.Bits)}
}

// IsConst reports whether f is the constant v.
func (t TT) IsConst(v bool) bool {
	if v {
		return t.Bits == mask(t.N)
	}
	return t.Bits == 0
}

// Cofactor returns the (n-1)-input cofactor of f with x_i fixed to val.
// The remaining variables keep their relative order.
func (t TT) Cofactor(i int, val bool) TT {
	if i < 0 || i >= t.N {
		panic(fmt.Sprintf("logic: cofactor variable %d out of range", i))
	}
	n := t.N - 1
	var bits uint64
	for row := 0; row < 1<<uint(n); row++ {
		low := row & (1<<uint(i) - 1)
		high := row >> uint(i) << uint(i+1)
		full := high | low
		if val {
			full |= 1 << uint(i)
		}
		if t.Bits>>uint(full)&1 == 1 {
			bits |= 1 << uint(row)
		}
	}
	return TT{N: n, Bits: bits}
}

// DependsOn reports whether f actually depends on x_i.
func (t TT) DependsOn(i int) bool {
	return t.Cofactor(i, false) != t.Cofactor(i, true)
}

// SupportSize returns the number of inputs f truly depends on.
func (t TT) SupportSize() int {
	k := 0
	for i := 0; i < t.N; i++ {
		if t.DependsOn(i) {
			k++
		}
	}
	return k
}

// Shrink removes variables f does not depend on and returns the
// reduced table together with, for each remaining position, the index
// of the original variable it came from.
func (t TT) Shrink() (TT, []int) {
	cur := t
	var keep []int
	for i := 0; i < t.N; i++ {
		keep = append(keep, i)
	}
	for i := 0; i < cur.N; {
		if cur.DependsOn(i) {
			i++
			continue
		}
		cur = cur.Cofactor(i, false)
		keep = append(keep[:i], keep[i+1:]...)
	}
	return cur, keep
}

// PermuteInputs returns g with g(x_0,...,x_{n-1}) = f(x_{p[0]},...,x_{p[n-1]}):
// input i of the result reads what input p[i] of f read.
func (t TT) PermuteInputs(p []int) TT {
	if len(p) != t.N {
		panic("logic: permutation length mismatch")
	}
	var bits uint64
	for row := 0; row < 1<<uint(t.N); row++ {
		src := 0
		for i := 0; i < t.N; i++ {
			if row>>uint(i)&1 == 1 {
				src |= 1 << uint(p[i])
			}
		}
		if t.Bits>>uint(src)&1 == 1 {
			bits |= 1 << uint(row)
		}
	}
	return TT{N: t.N, Bits: bits}
}

// NegateInput returns f with input i complemented.
func (t TT) NegateInput(i int) TT {
	if i < 0 || i >= t.N {
		panic("logic: negate input out of range")
	}
	var bits uint64
	for row := 0; row < 1<<uint(t.N); row++ {
		src := row ^ (1 << uint(i))
		if t.Bits>>uint(src)&1 == 1 {
			bits |= 1 << uint(row)
		}
	}
	return TT{N: t.N, Bits: bits}
}

// Extend returns f viewed as an n-input function that ignores the
// added high-order inputs.
func (t TT) Extend(n int) TT {
	if n < t.N || n > MaxInputs {
		panic("logic: bad extension arity")
	}
	cur := t
	for cur.N < n {
		rows := uint(1) << uint(cur.N)
		cur = TT{N: cur.N + 1, Bits: cur.Bits | cur.Bits<<rows}
	}
	return cur
}

// String renders the table as <arity>'b<rows> with row (1<<N)-1 first,
// e.g. the 2-input AND is "2'b1000".
func (t TT) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'b", t.N)
	for row := 1<<uint(t.N) - 1; row >= 0; row-- {
		if t.Bits>>uint(row)&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Common 2-input tables (inputs: x_0 = a, x_1 = b).
var (
	TTAnd2  = NewTT(2, 0b1000)
	TTOr2   = NewTT(2, 0b1110)
	TTNand2 = NewTT(2, 0b0111)
	TTNor2  = NewTT(2, 0b0001)
	TTXor2  = NewTT(2, 0b0110)
	TTXnor2 = NewTT(2, 0b1001)
)

// Common 3-input tables (inputs: x_0 = a, x_1 = b, x_2 = c).
var (
	TTAnd3  = NewTT(3, 0b10000000)
	TTNand3 = NewTT(3, 0b01111111)
	TTOr3   = NewTT(3, 0b11111110)
	TTXor3  = NewTT(3, 0b10010110)
	TTXnor3 = NewTT(3, 0b01101001)
	// TTMux3 is s'·a + s·b with a = x_0, b = x_1, s = x_2.
	TTMux3 = Mux(VarTT(3, 2), VarTT(3, 0), VarTT(3, 1))
	// TTMaj3 is the majority (full-adder carry) of x_0, x_1, x_2.
	TTMaj3 = NewTT(3, 0b11101000)
)
