package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTTMasksHighBits(t *testing.T) {
	tt := NewTT(2, 0xFFFF)
	if tt.Bits != 0xF {
		t.Fatalf("NewTT(2, 0xFFFF).Bits = %#x, want 0xF", tt.Bits)
	}
	if got := NewTT(6, ^uint64(0)).Bits; got != ^uint64(0) {
		t.Fatalf("6-input all-ones = %#x", got)
	}
}

func TestNewTTPanicsOnBadArity(t *testing.T) {
	for _, n := range []int{-1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTT(%d, 0) did not panic", n)
				}
			}()
			NewTT(n, 0)
		}()
	}
}

func TestVarTT(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for i := 0; i < n; i++ {
			v := VarTT(n, i)
			for row := uint(0); row < 1<<uint(n); row++ {
				want := row>>uint(i)&1 == 1
				if v.Eval(row) != want {
					t.Fatalf("VarTT(%d,%d).Eval(%d) = %v, want %v", n, i, row, v.Eval(row), want)
				}
			}
		}
	}
}

func TestEvalAgainstOperators(t *testing.T) {
	a, b := VarTT(2, 0), VarTT(2, 1)
	if got := a.And(b); got != TTAnd2 {
		t.Errorf("a AND b = %v, want %v", got, TTAnd2)
	}
	if got := a.Or(b); got != TTOr2 {
		t.Errorf("a OR b = %v, want %v", got, TTOr2)
	}
	if got := a.Xor(b); got != TTXor2 {
		t.Errorf("a XOR b = %v, want %v", got, TTXor2)
	}
	if got := a.And(b).Not(); got != TTNand2 {
		t.Errorf("NAND = %v, want %v", got, TTNand2)
	}
}

func TestMuxSemantics(t *testing.T) {
	a, b, s := VarTT(3, 0), VarTT(3, 1), VarTT(3, 2)
	m := Mux(s, a, b)
	for row := uint(0); row < 8; row++ {
		av, bv, sv := row&1 == 1, row>>1&1 == 1, row>>2&1 == 1
		want := av
		if sv {
			want = bv
		}
		if m.Eval(row) != want {
			t.Fatalf("mux eval mismatch at row %d", row)
		}
	}
	if m != TTMux3 {
		t.Errorf("TTMux3 constant disagrees with construction")
	}
}

func TestCofactorShannonExpansion(t *testing.T) {
	// f must equal x_i'·f|x_i=0 + x_i·f|x_i=1 for every i, checked by
	// re-expanding the cofactors.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		f := NewTT(n, rng.Uint64())
		for i := 0; i < n; i++ {
			g, h := f.Cofactor(i, false), f.Cofactor(i, true)
			for row := uint(0); row < 1<<uint(n); row++ {
				// Drop bit i from the row to index the cofactor.
				low := row & (1<<uint(i) - 1)
				high := row >> uint(i+1) << uint(i)
				sub := high | low
				var want bool
				if row>>uint(i)&1 == 1 {
					want = h.Eval(sub)
				} else {
					want = g.Eval(sub)
				}
				if f.Eval(row) != want {
					t.Fatalf("Shannon expansion broken: n=%d f=%v i=%d row=%d", n, f, i, row)
				}
			}
		}
	}
}

func TestDependsOnAndSupport(t *testing.T) {
	f := VarTT(3, 1) // depends only on x1
	if f.DependsOn(0) || !f.DependsOn(1) || f.DependsOn(2) {
		t.Fatalf("DependsOn wrong for projection")
	}
	if f.SupportSize() != 1 {
		t.Fatalf("SupportSize = %d, want 1", f.SupportSize())
	}
	if got := TTXor3.SupportSize(); got != 3 {
		t.Fatalf("XOR3 support = %d, want 3", got)
	}
	if got := ConstTT(3, true).SupportSize(); got != 0 {
		t.Fatalf("const support = %d, want 0", got)
	}
}

func TestShrink(t *testing.T) {
	// f(x0,x1,x2) = x0 XOR x2, ignoring x1.
	f := VarTT(3, 0).Xor(VarTT(3, 2))
	small, keep := f.Shrink()
	if small.N != 2 {
		t.Fatalf("shrunk arity = %d, want 2", small.N)
	}
	if len(keep) != 2 || keep[0] != 0 || keep[1] != 2 {
		t.Fatalf("keep = %v, want [0 2]", keep)
	}
	if small != TTXor2 {
		t.Fatalf("shrunk table = %v, want XOR2", small)
	}
}

func TestPermuteInputsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(3)
		f := NewTT(n, rng.Uint64())
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		if got := f.PermuteInputs(perm).PermuteInputs(inv); got != f {
			t.Fatalf("permute round trip failed: n=%d perm=%v", n, perm)
		}
	}
}

func TestPermuteInputsSemantics(t *testing.T) {
	// g = f.PermuteInputs(p) must satisfy g(x) = f(y) with y_{p[i]} = x_i.
	f := NewTT(3, 0b11001010)
	p := []int{2, 0, 1}
	g := f.PermuteInputs(p)
	for row := uint(0); row < 8; row++ {
		var src uint
		for i := 0; i < 3; i++ {
			if row>>uint(i)&1 == 1 {
				src |= 1 << uint(p[i])
			}
		}
		if g.Eval(row) != f.Eval(src) {
			t.Fatalf("permute semantics wrong at row %d", row)
		}
	}
}

func TestNegateInputInvolution(t *testing.T) {
	err := quick.Check(func(bits uint64, iRaw uint8) bool {
		f := NewTT(3, bits)
		i := int(iRaw) % 3
		return f.NegateInput(i).NegateInput(i) == f
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtendIgnoresNewInputs(t *testing.T) {
	f := TTAnd2
	g := f.Extend(4)
	if g.N != 4 {
		t.Fatalf("extend arity = %d", g.N)
	}
	for row := uint(0); row < 16; row++ {
		if g.Eval(row) != f.Eval(row&3) {
			t.Fatalf("extend changed semantics at row %d", row)
		}
	}
}

func TestString(t *testing.T) {
	if got := TTAnd2.String(); got != "2'b1000" {
		t.Errorf("AND2 string = %q", got)
	}
	if got := TTXor3.String(); got != "3'b10010110" {
		t.Errorf("XOR3 string = %q", got)
	}
}

func TestNotIsInvolutionProperty(t *testing.T) {
	err := quick.Check(func(bits uint64) bool {
		f := NewTT(4, bits)
		return f.Not().Not() == f && f.Not().Bits == (^f.Bits)&((1<<16)-1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	err := quick.Check(func(x, y uint64) bool {
		f, g := NewTT(4, x), NewTT(4, y)
		return f.And(g).Not() == f.Not().Or(g.Not())
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaj3IsFullAdderCarry(t *testing.T) {
	for row := uint(0); row < 8; row++ {
		a, b, c := row&1, row>>1&1, row>>2&1
		want := a+b+c >= 2
		if TTMaj3.Eval(row) != want {
			t.Fatalf("maj3 wrong at %d", row)
		}
	}
}
