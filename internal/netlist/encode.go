package netlist

import (
	"encoding/json"
	"fmt"

	"vpga/internal/logic"
)

// JSON encoding of a netlist, used by the stage-granular artifact
// pipeline to serialize the mapped and compacted netlists at stage
// boundaries. The wire form preserves everything the flow's later
// stages read — node order (IDs are dense slice indexes), kinds,
// names, cell types, fanins, truth tables, constants and macro groups
// — so decode(encode(nl)) reproduces the netlist bit-identically:
// re-running a flow from a restored netlist equals an uninterrupted
// run.

// encSchema versions the wire form; decoders reject anything newer.
const encSchema = 1

// encNode is one node on the wire. Field order matters only for
// readability; IDs are implicit (slice index).
type encNode struct {
	Kind     uint8    `json:"k"`
	Name     string   `json:"n,omitempty"`
	Type     string   `json:"t,omitempty"`
	Fanins   []NodeID `json:"f,omitempty"`
	FuncN    int      `json:"fn,omitempty"`
	FuncBits uint64   `json:"fb,omitempty"`
	ConstVal bool     `json:"c,omitempty"`
	Group    int32    `json:"g,omitempty"`
}

type encNetlist struct {
	Schema int       `json:"schema"`
	Name   string    `json:"name"`
	Nodes  []encNode `json:"nodes"`
	PIs    []NodeID  `json:"pis,omitempty"`
	POs    []NodeID  `json:"pos,omitempty"`
}

// MarshalJSON encodes the netlist. The unexported graph arrays are
// flattened into a stable, versioned wire form.
func (n *Netlist) MarshalJSON() ([]byte, error) {
	enc := encNetlist{
		Schema: encSchema,
		Name:   n.Name,
		Nodes:  make([]encNode, len(n.nodes)),
		PIs:    n.pis,
		POs:    n.pos,
	}
	for i, node := range n.nodes {
		if node.ID != NodeID(i) {
			return nil, fmt.Errorf("netlist: node %d carries ID %d; encode requires dense IDs", i, node.ID)
		}
		enc.Nodes[i] = encNode{
			Kind: uint8(node.Kind), Name: node.Name, Type: node.Type,
			Fanins: node.Fanins, FuncN: node.Func.N, FuncBits: node.Func.Bits,
			ConstVal: node.ConstVal, Group: node.Group,
		}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes a netlist encoded by MarshalJSON, validating
// schema, ID density and fanin references.
func (n *Netlist) UnmarshalJSON(data []byte) error {
	var enc encNetlist
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	if enc.Schema > encSchema {
		return fmt.Errorf("netlist: wire schema %d is newer than supported %d", enc.Schema, encSchema)
	}
	nodes := make([]*Node, len(enc.Nodes))
	for i, en := range enc.Nodes {
		for _, f := range en.Fanins {
			if int(f) < 0 || int(f) >= len(enc.Nodes) {
				return fmt.Errorf("netlist: node %d fanin %d out of range [0,%d)", i, f, len(enc.Nodes))
			}
		}
		nodes[i] = &Node{
			ID: NodeID(i), Kind: Kind(en.Kind), Name: en.Name, Type: en.Type,
			Fanins: en.Fanins, Func: logic.TT{N: en.FuncN, Bits: en.FuncBits},
			ConstVal: en.ConstVal, Group: en.Group,
		}
	}
	for _, io := range [][]NodeID{enc.PIs, enc.POs} {
		for _, id := range io {
			if int(id) < 0 || int(id) >= len(nodes) {
				return fmt.Errorf("netlist: IO node %d out of range [0,%d)", id, len(nodes))
			}
		}
	}
	n.Name = enc.Name
	n.nodes = nodes
	n.pis = enc.PIs
	n.pos = enc.POs
	n.fanouts = nil
	n.fanoutsValid = false
	return nil
}
