package netlist

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vpga/internal/logic"
)

// buildEncodeSample covers every node kind the wire form must carry:
// inputs, gates with truth tables, a DFF, a constant, and outputs.
func buildEncodeSample() *Netlist {
	n := New("enc")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.AddGate("XOR2", logic.TTXor2, a, b)
	q := n.AddDFF("q", x)
	c1 := n.AddConst(true)
	y := n.AddGate("AND2", logic.TTAnd2, q, c1)
	n.AddOutput("out", y)
	return n
}

// TestNetlistRoundTrip: encode → decode reproduces the netlist exactly
// — same structure, same simulation-relevant content, and a stable
// re-encoding (the stage cache relies on decode(encode(n)) being a
// drop-in replacement for n).
func TestNetlistRoundTrip(t *testing.T) {
	orig := buildEncodeSample()
	enc, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Netlist
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded netlist invalid: %v", err)
	}
	if got, want := back.String(), orig.String(); got != want {
		t.Fatalf("decoded netlist diverged:\n got %s\nwant %s", got, want)
	}
	// Fanouts are derived state, rebuilt lazily after decode.
	for _, node := range orig.Nodes() {
		if got, want := back.FanoutCount(node.ID), orig.FanoutCount(node.ID); got != want {
			t.Fatalf("node %d fanout count %d, want %d", node.ID, got, want)
		}
	}
	re, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encoding not byte-identical:\n first %s\nsecond %s", enc, re)
	}
}

// TestNetlistDecodeRejects: malformed wire forms fail loudly instead
// of producing a half-valid netlist.
func TestNetlistDecodeRejects(t *testing.T) {
	enc, err := json.Marshal(buildEncodeSample())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(s string) string{
		"newer schema": func(s string) string {
			return strings.Replace(s, `"schema":1`, `"schema":99`, 1)
		},
		"fanin out of range": func(s string) string {
			return strings.Replace(s, `"f":[0,1]`, `"f":[0,99]`, 1)
		},
		"po out of range": func(s string) string {
			return strings.Replace(s, `"pos":[`, `"pos":[99,`, 1)
		},
	}
	for name, mutate := range cases {
		bad := mutate(string(enc))
		if bad == string(enc) {
			t.Fatalf("%s: mutation did not apply to %s", name, enc)
		}
		var back Netlist
		if err := json.Unmarshal([]byte(bad), &back); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}
