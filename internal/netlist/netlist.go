// Package netlist defines the gate-level intermediate representation
// shared by every stage of the VPGA flow: a directed graph of primary
// inputs, primary outputs, combinational cell instances, constants and
// D flip-flops. Cell semantics are carried as truth tables so that any
// stage can simulate, verify or re-match logic without consulting a
// library.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"vpga/internal/logic"
)

// NodeID identifies a node within one Netlist. IDs are dense and stable
// under everything except Compact.
type NodeID int32

// Nil is the absent node.
const Nil NodeID = -1

// Kind discriminates node roles.
type Kind uint8

const (
	// KindInput is a primary input.
	KindInput Kind = iota
	// KindOutput is a primary output; it has exactly one fanin and
	// passes it through.
	KindOutput
	// KindGate is a combinational cell instance with a truth table over
	// its fanins.
	KindGate
	// KindDFF is a D flip-flop: fanin 0 is D, the node's value is Q.
	KindDFF
	// KindConst is a constant driver.
	KindConst
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	case KindGate:
		return "gate"
	case KindDFF:
		return "dff"
	case KindConst:
		return "const"
	default:
		return "invalid"
	}
}

// Node is one vertex of the netlist graph.
type Node struct {
	ID     NodeID
	Kind   Kind
	Name   string // port name for IO nodes, instance name otherwise (may be empty)
	Type   string // cell type name for gates, e.g. "ND3WI"
	Fanins []NodeID
	// Func is the gate's function over its fanins (input i of Func is
	// Fanins[i]). Unset for non-gate nodes.
	Func logic.TT
	// ConstVal is the value of a KindConst node.
	ConstVal bool
	// Group links nodes belonging to one multi-output macro instance
	// (e.g. the two outputs of a packed full adder). Zero means no
	// group.
	Group int32
}

// Netlist is a mutable gate-level design.
type Netlist struct {
	Name  string
	nodes []*Node
	pis   []NodeID
	pos   []NodeID

	fanouts      [][]NodeID
	fanoutsValid bool
}

// New creates an empty netlist.
func New(name string) *Netlist {
	return &Netlist{Name: name}
}

func (n *Netlist) add(node *Node) NodeID {
	node.ID = NodeID(len(n.nodes))
	n.nodes = append(n.nodes, node)
	n.fanoutsValid = false
	return node.ID
}

// AddInput appends a primary input with the given port name.
func (n *Netlist) AddInput(name string) NodeID {
	id := n.add(&Node{Kind: KindInput, Name: name})
	n.pis = append(n.pis, id)
	return id
}

// AddOutput appends a primary output driven by src.
func (n *Netlist) AddOutput(name string, src NodeID) NodeID {
	id := n.add(&Node{Kind: KindOutput, Name: name, Fanins: []NodeID{src}})
	n.pos = append(n.pos, id)
	return id
}

// AddGate appends a combinational cell instance. The truth table's
// arity must match the fanin count.
func (n *Netlist) AddGate(typ string, fn logic.TT, fanins ...NodeID) NodeID {
	if fn.N != len(fanins) {
		panic(fmt.Sprintf("netlist: gate %s function arity %d != %d fanins", typ, fn.N, len(fanins)))
	}
	return n.add(&Node{Kind: KindGate, Type: typ, Func: fn, Fanins: append([]NodeID(nil), fanins...)})
}

// AddDFF appends a D flip-flop with data input d.
func (n *Netlist) AddDFF(name string, d NodeID) NodeID {
	return n.add(&Node{Kind: KindDFF, Name: name, Type: "DFF", Fanins: []NodeID{d}})
}

// AddConst appends a constant driver.
func (n *Netlist) AddConst(v bool) NodeID {
	return n.add(&Node{Kind: KindConst, ConstVal: v})
}

// Node returns the node with the given ID.
func (n *Netlist) Node(id NodeID) *Node { return n.nodes[id] }

// NumNodes returns the total node count.
func (n *Netlist) NumNodes() int { return len(n.nodes) }

// PIs returns the primary input IDs in declaration order.
func (n *Netlist) PIs() []NodeID { return n.pis }

// POs returns the primary output IDs in declaration order.
func (n *Netlist) POs() []NodeID { return n.pos }

// Nodes iterates over all nodes in ID order.
func (n *Netlist) Nodes() []*Node { return n.nodes }

// SetFanin redirects fanin slot i of node id to src.
func (n *Netlist) SetFanin(id NodeID, i int, src NodeID) {
	n.nodes[id].Fanins[i] = src
	n.fanoutsValid = false
}

// ReplaceUses rewires every fanin referring to old so it refers to new.
// It returns the number of rewired slots.
func (n *Netlist) ReplaceUses(old, new NodeID) int {
	count := 0
	for _, node := range n.nodes {
		for i, f := range node.Fanins {
			if f == old {
				node.Fanins[i] = new
				count++
			}
		}
	}
	if count > 0 {
		n.fanoutsValid = false
	}
	return count
}

// Fanouts returns the IDs of nodes reading id. The returned slice is
// shared; callers must not mutate it.
func (n *Netlist) Fanouts(id NodeID) []NodeID {
	if !n.fanoutsValid {
		n.fanouts = make([][]NodeID, len(n.nodes))
		for _, node := range n.nodes {
			for _, f := range node.Fanins {
				if f != Nil {
					n.fanouts[f] = append(n.fanouts[f], node.ID)
				}
			}
		}
		n.fanoutsValid = true
	}
	return n.fanouts[id]
}

// FanoutCount returns len(Fanouts(id)).
func (n *Netlist) FanoutCount(id NodeID) int { return len(n.Fanouts(id)) }

// TopoOrder returns all node IDs in a combinational topological order:
// inputs, constants and flip-flops first (their Q outputs are
// combinational sources), then gates and outputs such that every gate
// follows its fanins. DFF D-inputs do not constrain the order. An error
// is returned if the combinational graph has a cycle.
func (n *Netlist) TopoOrder() ([]NodeID, error) {
	indeg := make([]int, len(n.nodes))
	for _, node := range n.nodes {
		if node.Kind == KindDFF {
			continue // sequential edge: no combinational dependency
		}
		for _, f := range node.Fanins {
			if f != Nil {
				indeg[node.ID]++
			}
		}
	}
	order := make([]NodeID, 0, len(n.nodes))
	queue := make([]NodeID, 0, len(n.nodes))
	for _, node := range n.nodes {
		if indeg[node.ID] == 0 {
			queue = append(queue, node.ID)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, out := range n.Fanouts(id) {
			if n.nodes[out].Kind == KindDFF {
				continue
			}
			indeg[out]--
			if indeg[out] == 0 {
				queue = append(queue, out)
			}
		}
	}
	// DFFs with zero in-degree were already queued; DFFs never gain
	// combinational in-degree, so all were. Gates stuck with positive
	// in-degree indicate a combinational cycle.
	if len(order) != len(n.nodes) {
		return nil, fmt.Errorf("netlist %s: combinational cycle (%d of %d nodes ordered)",
			n.Name, len(order), len(n.nodes))
	}
	return order, nil
}

// Validate checks structural invariants: fanin IDs are in range, IO
// arities are correct, gate truth tables match fanin counts, and the
// combinational graph is acyclic.
func (n *Netlist) Validate() error {
	for _, node := range n.nodes {
		for _, f := range node.Fanins {
			if f < 0 || int(f) >= len(n.nodes) {
				return fmt.Errorf("netlist %s: node %d has out-of-range fanin %d", n.Name, node.ID, f)
			}
			if n.nodes[f].Kind == KindOutput {
				return fmt.Errorf("netlist %s: node %d reads from output node %d", n.Name, node.ID, f)
			}
		}
		switch node.Kind {
		case KindInput, KindConst:
			if len(node.Fanins) != 0 {
				return fmt.Errorf("netlist %s: %s node %d has fanins", n.Name, node.Kind, node.ID)
			}
		case KindOutput, KindDFF:
			if len(node.Fanins) != 1 {
				return fmt.Errorf("netlist %s: %s node %d has %d fanins, want 1", n.Name, node.Kind, node.ID, len(node.Fanins))
			}
		case KindGate:
			if node.Func.N != len(node.Fanins) {
				return fmt.Errorf("netlist %s: gate %d arity mismatch: func %d, fanins %d",
					n.Name, node.ID, node.Func.N, len(node.Fanins))
			}
		}
	}
	_, err := n.TopoOrder()
	return err
}

// Stats summarizes a netlist.
type Stats struct {
	Inputs, Outputs, Gates, DFFs, Consts int
	ByType                               map[string]int
	Levels                               int // combinational depth in gate counts
}

// ComputeStats tallies node counts by kind and type, and the logic
// depth.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{ByType: map[string]int{}}
	for _, node := range n.nodes {
		switch node.Kind {
		case KindInput:
			s.Inputs++
		case KindOutput:
			s.Outputs++
		case KindGate:
			s.Gates++
			s.ByType[node.Type]++
		case KindDFF:
			s.DFFs++
			s.ByType[node.Type]++
		case KindConst:
			s.Consts++
		}
	}
	order, err := n.TopoOrder()
	if err == nil {
		level := make([]int, len(n.nodes))
		for _, id := range order {
			node := n.nodes[id]
			if node.Kind != KindGate && node.Kind != KindOutput {
				continue
			}
			max := 0
			for _, f := range node.Fanins {
				if level[f] > max {
					max = level[f]
				}
			}
			if node.Kind == KindGate {
				max++
			}
			level[id] = max
			if max > s.Levels {
				s.Levels = max
			}
		}
	}
	return s
}

// String renders a short human-readable summary.
func (n *Netlist) String() string {
	s := n.ComputeStats()
	types := make([]string, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, t)
	}
	sort.Strings(types)
	var sb strings.Builder
	fmt.Fprintf(&sb, "netlist %s: %d PI, %d PO, %d gates, %d FF, depth %d",
		n.Name, s.Inputs, s.Outputs, s.Gates, s.DFFs, s.Levels)
	for _, t := range types {
		fmt.Fprintf(&sb, " %s=%d", t, s.ByType[t])
	}
	return sb.String()
}
