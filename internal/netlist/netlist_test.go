package netlist

import (
	"strings"
	"testing"

	"vpga/internal/logic"
)

// buildXorFF returns a tiny sequential design: q <= a XOR q, out = q.
func buildXorFF() *Netlist {
	n := New("xorff")
	a := n.AddInput("a")
	// Placeholder for the DFF; Go requires the gate before the DFF or
	// vice versa — create DFF with a temporary fanin and patch it.
	x := n.AddGate("XOR2", logic.TTXor2, a, a) // patched below
	q := n.AddDFF("q", x)
	n.SetFanin(x, 1, q)
	n.AddOutput("out", q)
	return n
}

func TestBuilderAndValidate(t *testing.T) {
	n := buildXorFF()
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := n.ComputeStats()
	if s.Inputs != 1 || s.Outputs != 1 || s.Gates != 1 || s.DFFs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestValidateCatchesArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddGate with wrong arity did not panic")
		}
	}()
	n := New("bad")
	a := n.AddInput("a")
	n.AddGate("AND2", logic.TTAnd2, a) // 2-input function, 1 fanin
}

func TestValidateCatchesCombinationalCycle(t *testing.T) {
	n := New("cyc")
	a := n.AddInput("a")
	g1 := n.AddGate("AND2", logic.TTAnd2, a, a)
	g2 := n.AddGate("OR2", logic.TTOr2, g1, g1)
	n.SetFanin(g1, 1, g2) // cycle g1 -> g2 -> g1
	n.AddOutput("y", g2)
	if err := n.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// The xorff design has a cycle through the flip-flop, which is fine.
	if err := buildXorFF().Validate(); err != nil {
		t.Fatalf("sequential loop through DFF must validate: %v", err)
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	n := New("topo")
	a, b := n.AddInput("a"), n.AddInput("b")
	g1 := n.AddGate("AND2", logic.TTAnd2, a, b)
	g2 := n.AddGate("OR2", logic.TTOr2, g1, b)
	n.AddOutput("y", g2)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, node := range n.Nodes() {
		if node.Kind == KindDFF {
			continue
		}
		for _, f := range node.Fanins {
			if pos[f] > pos[node.ID] {
				t.Fatalf("node %d ordered before its fanin %d", node.ID, f)
			}
		}
	}
}

func TestSimulatorCombinational(t *testing.T) {
	n := New("fa")
	a, b, c := n.AddInput("a"), n.AddInput("b"), n.AddInput("cin")
	sum := n.AddGate("XOR3", logic.TTXor3, a, b, c)
	carry := n.AddGate("MAJ3", logic.TTMaj3, a, b, c)
	n.AddOutput("sum", sum)
	n.AddOutput("cout", carry)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 8; row++ {
		in := map[string]bool{"a": row&1 == 1, "b": row>>1&1 == 1, "cin": row>>2&1 == 1}
		out := sim.Step(in)
		total := 0
		for _, v := range in {
			if v {
				total++
			}
		}
		if out["sum"] != (total%2 == 1) || out["cout"] != (total >= 2) {
			t.Fatalf("full adder wrong for %v: %v", in, out)
		}
	}
}

func TestSimulatorSequential(t *testing.T) {
	n := buildXorFF()
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	// q accumulates parity of the input stream; out shows q before the
	// edge.
	seq := []bool{true, true, false, true}
	parity := false
	for i, a := range seq {
		out := sim.Step(map[string]bool{"a": a})
		if out["out"] != parity {
			t.Fatalf("cycle %d: out = %v, want %v", i, out["out"], parity)
		}
		parity = parity != a
	}
	sim.Reset()
	if out := sim.Step(map[string]bool{"a": false}); out["out"] != false {
		t.Fatal("Reset did not clear state")
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	mk := func(xor bool) *Netlist {
		n := New("m")
		a, b := n.AddInput("a"), n.AddInput("b")
		fn := logic.TTAnd2
		if xor {
			fn = logic.TTXor2
		}
		n.AddOutput("y", n.AddGate("G", fn, a, b))
		return n
	}
	if err := Equivalent(mk(true), mk(true), 4, 4, 1); err != nil {
		t.Fatalf("identical netlists reported different: %v", err)
	}
	if err := Equivalent(mk(true), mk(false), 8, 4, 1); err == nil {
		t.Fatal("different netlists reported equivalent")
	}
}

func TestEquivalentChecksInterface(t *testing.T) {
	a := New("a")
	a.AddOutput("y", a.AddInput("x"))
	b := New("b")
	b.AddOutput("y", b.AddInput("z"))
	if err := Equivalent(a, b, 1, 1, 1); err == nil {
		t.Fatal("mismatched PI names not reported")
	}
}

func TestSweepAndCompact(t *testing.T) {
	n := New("sweep")
	a, b := n.AddInput("a"), n.AddInput("b")
	live := n.AddGate("AND2", logic.TTAnd2, a, b)
	n.AddGate("OR2", logic.TTOr2, a, b) // dead
	dead2 := n.AddGate("XOR2", logic.TTXor2, a, b)
	n.AddGate("NAND2", logic.TTNand2, dead2, b) // dead, feeds nothing
	n.AddOutput("y", live)
	if removed := n.Sweep(); removed != 3 {
		t.Fatalf("Sweep removed %d nodes, want 3", removed)
	}
	before := n.NumNodes()
	n.Compact()
	if n.NumNodes() >= before {
		t.Fatalf("Compact did not shrink: %d -> %d", before, n.NumNodes())
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate after compact: %v", err)
	}
	s := n.ComputeStats()
	if s.Gates != 1 {
		t.Fatalf("gates after sweep = %d, want 1", s.Gates)
	}
}

func TestCompactPreservesBehaviour(t *testing.T) {
	n := buildXorFF()
	ref := n.Clone()
	n.AddGate("AND2", logic.TTAnd2, n.PIs()[0], n.PIs()[0]) // dead
	n.Sweep()
	n.Compact()
	if err := Equivalent(ref, n, 8, 8, 3); err != nil {
		t.Fatalf("sweep+compact changed behaviour: %v", err)
	}
}

func TestReplaceUses(t *testing.T) {
	n := New("ru")
	a, b := n.AddInput("a"), n.AddInput("b")
	g := n.AddGate("AND2", logic.TTAnd2, a, a)
	n.AddOutput("y", g)
	if count := n.ReplaceUses(a, b); count != 2 {
		t.Fatalf("ReplaceUses rewired %d slots, want 2", count)
	}
	if n.Node(g).Fanins[0] != b || n.Node(g).Fanins[1] != b {
		t.Fatal("fanins not rewired")
	}
}

func TestTransitiveFanin(t *testing.T) {
	n := buildXorFF()
	// Cone of the XOR gate: itself, input a, and the DFF (stop point).
	var xor NodeID
	for _, node := range n.Nodes() {
		if node.Kind == KindGate {
			xor = node.ID
		}
	}
	cone := n.TransitiveFanin(xor)
	if len(cone) != 3 {
		t.Fatalf("cone size = %d, want 3 (gate, PI, DFF)", len(cone))
	}
}

func TestFanouts(t *testing.T) {
	n := New("fo")
	a := n.AddInput("a")
	g1 := n.AddGate("INV", logic.VarTT(1, 0).Not(), a)
	g2 := n.AddGate("INV", logic.VarTT(1, 0).Not(), a)
	n.AddOutput("x", g1)
	n.AddOutput("y", g2)
	if got := n.FanoutCount(a); got != 2 {
		t.Fatalf("fanout(a) = %d, want 2", got)
	}
}

func TestDumpAndDOT(t *testing.T) {
	n := buildXorFF()
	d := n.Dump()
	for _, want := range []string{"input", "dff", "XOR2"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
	dot := n.WriteDOT()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := buildXorFF()
	c := n.Clone()
	c.SetFanin(c.POs()[0], 0, c.PIs()[0])
	if n.Node(n.POs()[0]).Fanins[0] == n.PIs()[0] {
		t.Fatal("Clone shares fanin storage")
	}
}

func TestPortNames(t *testing.T) {
	n := buildXorFF()
	pis, pos := n.PortNames()
	if len(pis) != 1 || pis[0] != "a" || len(pos) != 1 || pos[0] != "out" {
		t.Fatalf("ports = %v %v", pis, pos)
	}
}

func TestStatsLevels(t *testing.T) {
	n := New("lv")
	a := n.AddInput("a")
	g := a
	for i := 0; i < 5; i++ {
		g = n.AddGate("INV", logic.VarTT(1, 0).Not(), g)
	}
	n.AddOutput("y", g)
	if s := n.ComputeStats(); s.Levels != 5 {
		t.Fatalf("levels = %d, want 5", s.Levels)
	}
}

func TestSweepIdempotent(t *testing.T) {
	n := buildXorFF()
	n.AddGate("AND2", logic.TTAnd2, n.PIs()[0], n.PIs()[0]) // dead
	first := n.Sweep()
	if first == 0 {
		t.Fatal("nothing swept")
	}
	if second := n.Sweep(); second != 0 {
		t.Fatalf("second sweep removed %d more nodes", second)
	}
}

func TestCompactIdempotent(t *testing.T) {
	n := buildXorFF()
	n.AddGate("OR2", logic.TTOr2, n.PIs()[0], n.PIs()[0])
	n.Sweep()
	n.Compact()
	count := n.NumNodes()
	n.Compact()
	if n.NumNodes() != count {
		t.Fatalf("second compact changed node count %d -> %d", count, n.NumNodes())
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFanoutsConsistentAfterMutation(t *testing.T) {
	n := New("fm")
	a, b := n.AddInput("a"), n.AddInput("b")
	g := n.AddGate("AND2", logic.TTAnd2, a, a)
	n.AddOutput("y", g)
	if got := n.FanoutCount(a); got != 2 {
		t.Fatalf("fanout(a) = %d", got)
	}
	n.SetFanin(g, 1, b)
	if n.FanoutCount(a) != 1 || n.FanoutCount(b) != 1 {
		t.Fatal("fanout cache stale after SetFanin")
	}
	n.ReplaceUses(b, a)
	if n.FanoutCount(a) != 2 || n.FanoutCount(b) != 0 {
		t.Fatal("fanout cache stale after ReplaceUses")
	}
}

func TestSimulatorEvalWithoutClocking(t *testing.T) {
	n := buildXorFF()
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	// Eval propagates but does not clock: repeated Eval with the same
	// inputs returns identical values and leaves FF state untouched.
	v1 := append([]bool(nil), sim.Eval(map[string]bool{"a": true})...)
	v2 := sim.Eval(map[string]bool{"a": true})
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("Eval not idempotent")
		}
	}
	out := sim.Step(map[string]bool{"a": true})
	if out["out"] != false {
		t.Fatal("Eval leaked a clock edge")
	}
}
