package netlist

import (
	"fmt"
	"math/rand"
)

// Simulator evaluates a netlist cycle by cycle. Flip-flop state is held
// between calls to Step.
type Simulator struct {
	n     *Netlist
	order []NodeID
	// value holds the current combinational value of every node; for
	// DFFs it is the registered Q value.
	value []bool
	next  []bool // pending D values captured at the clock edge
	dffs  []NodeID
}

// NewSimulator prepares a simulator; all flip-flops start at 0.
func NewSimulator(n *Netlist) (*Simulator, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{n: n, order: order, value: make([]bool, n.NumNodes()), next: make([]bool, n.NumNodes())}
	for _, node := range n.Nodes() {
		if node.Kind == KindDFF {
			s.dffs = append(s.dffs, node.ID)
		}
	}
	return s, nil
}

// Eval propagates the given primary-input assignment through the
// combinational logic without clocking the flip-flops, and returns the
// value of every node. inputs maps PI name to value; missing PIs read 0.
func (s *Simulator) Eval(inputs map[string]bool) []bool {
	for _, id := range s.n.PIs() {
		s.value[id] = inputs[s.n.Node(id).Name]
	}
	for _, id := range s.order {
		node := s.n.Node(id)
		switch node.Kind {
		case KindConst:
			s.value[id] = node.ConstVal
		case KindGate:
			var assign uint
			for i, f := range node.Fanins {
				if s.value[f] {
					assign |= 1 << uint(i)
				}
			}
			s.value[id] = node.Func.Eval(assign)
		case KindOutput:
			s.value[id] = s.value[node.Fanins[0]]
		case KindDFF:
			// Q holds state between edges; nothing to do here. D is
			// captured below once all combinational values settle.
		}
	}
	// D values read the settled combinational values.
	for _, id := range s.dffs {
		s.next[id] = s.value[s.n.Node(id).Fanins[0]]
	}
	return s.value
}

// Step evaluates the combinational logic and then clocks every
// flip-flop. It returns the PO values before the edge.
func (s *Simulator) Step(inputs map[string]bool) map[string]bool {
	s.Eval(inputs)
	out := map[string]bool{}
	for _, id := range s.n.POs() {
		out[s.n.Node(id).Name] = s.value[id]
	}
	for _, id := range s.dffs {
		s.value[id] = s.next[id]
	}
	return out
}

// Reset clears all flip-flop state to 0.
func (s *Simulator) Reset() {
	for _, id := range s.dffs {
		s.value[id] = false
	}
}

// Equivalent checks two netlists for input/output equivalence by random
// simulation: both designs are reset, then driven with the same
// `vectors` random input sequences of `cycles` cycles each. The
// netlists must have identical PI and PO name sets. This is a
// simulation-based check, not a proof; it is the standard smoke test
// used after every restructuring pass.
func Equivalent(a, b *Netlist, vectors, cycles int, seed int64) error {
	names := func(ids []NodeID, n *Netlist) map[string]bool {
		m := map[string]bool{}
		for _, id := range ids {
			m[n.Node(id).Name] = true
		}
		return m
	}
	api, bpi := names(a.PIs(), a), names(b.PIs(), b)
	if len(api) != len(bpi) {
		return fmt.Errorf("netlist: PI count mismatch %d vs %d", len(api), len(bpi))
	}
	for name := range api {
		if !bpi[name] {
			return fmt.Errorf("netlist: PI %q missing from %s", name, b.Name)
		}
	}
	apo, bpo := names(a.POs(), a), names(b.POs(), b)
	if len(apo) != len(bpo) {
		return fmt.Errorf("netlist: PO count mismatch %d vs %d", len(apo), len(bpo))
	}
	for name := range apo {
		if !bpo[name] {
			return fmt.Errorf("netlist: PO %q missing from %s", name, b.Name)
		}
	}
	sa, err := NewSimulator(a)
	if err != nil {
		return err
	}
	sb, err := NewSimulator(b)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	piNames := make([]string, 0, len(api))
	for name := range api {
		piNames = append(piNames, name)
	}
	for v := 0; v < vectors; v++ {
		sa.Reset()
		sb.Reset()
		for c := 0; c < cycles; c++ {
			in := map[string]bool{}
			for _, name := range piNames {
				in[name] = rng.Intn(2) == 1
			}
			oa, ob := sa.Step(in), sb.Step(in)
			for name, va := range oa {
				if ob[name] != va {
					return fmt.Errorf("netlist: %s and %s differ at PO %q (vector %d, cycle %d): %v vs %v",
						a.Name, b.Name, name, v, c, va, ob[name])
				}
			}
		}
	}
	return nil
}
