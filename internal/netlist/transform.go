package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Sweep removes nodes that no primary output or flip-flop transitively
// reads. It returns the number of removed nodes. Node IDs of surviving
// nodes are preserved (removal leaves tombstones until Compact).
//
// Swept nodes are marked by clearing their fanins and setting Type to
// "<dead>"; Compact rebuilds dense IDs.
func (n *Netlist) Sweep() int {
	live := make([]bool, len(n.nodes))
	var stack []NodeID
	mark := func(id NodeID) {
		if id != Nil && !live[id] {
			live[id] = true
			stack = append(stack, id)
		}
	}
	for _, id := range n.pos {
		mark(id)
	}
	// Flip-flops are observable state even without a PO path only if
	// something reads them; we keep FFs reachable from POs, and FFs
	// feeding other live logic get marked transitively.
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range n.nodes[id].Fanins {
			mark(f)
		}
	}
	// Primary inputs always survive: the interface is part of the
	// design contract.
	for _, id := range n.pis {
		live[id] = true
	}
	removed := 0
	for _, node := range n.nodes {
		if !live[node.ID] && node.Type != "<dead>" {
			node.Fanins = nil
			node.Type = "<dead>"
			node.Kind = KindConst
			node.ConstVal = false
			removed++
		}
	}
	if removed > 0 {
		n.fanoutsValid = false
	}
	return removed
}

// Compact rebuilds the netlist with dense IDs, dropping nodes marked
// dead by Sweep and constants with no readers. It returns a mapping
// from old to new IDs (Nil for dropped nodes).
func (n *Netlist) Compact() []NodeID {
	remap := make([]NodeID, len(n.nodes))
	for i := range remap {
		remap[i] = Nil
	}
	var kept []*Node
	for _, node := range n.nodes {
		if node.Type == "<dead>" {
			continue
		}
		if node.Kind == KindConst && len(n.Fanouts(node.ID)) == 0 {
			continue
		}
		remap[node.ID] = NodeID(len(kept))
		kept = append(kept, node)
	}
	for _, node := range kept {
		node.ID = remap[node.ID]
		for i, f := range node.Fanins {
			node.Fanins[i] = remap[f]
		}
	}
	rewrite := func(ids []NodeID) []NodeID {
		out := ids[:0]
		for _, id := range ids {
			if remap[id] != Nil {
				out = append(out, remap[id])
			}
		}
		return out
	}
	n.pis = rewrite(n.pis)
	n.pos = rewrite(n.pos)
	n.nodes = kept
	n.fanoutsValid = false
	return remap
}

// TransitiveFanin returns the set of node IDs in the combinational
// transitive fanin of root, stopping at (and including) primary inputs,
// constants and flip-flop outputs.
func (n *Netlist) TransitiveFanin(root NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{root: true}
	stack := []NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := n.nodes[id]
		if node.Kind == KindInput || node.Kind == KindConst || (node.Kind == KindDFF && id != root) {
			continue
		}
		for _, f := range node.Fanins {
			if !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	return seen
}

// Clone deep-copies the netlist.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{Name: n.Name}
	c.nodes = make([]*Node, len(n.nodes))
	for i, node := range n.nodes {
		cp := *node
		cp.Fanins = append([]NodeID(nil), node.Fanins...)
		c.nodes[i] = &cp
	}
	c.pis = append([]NodeID(nil), n.pis...)
	c.pos = append([]NodeID(nil), n.pos...)
	return c
}

// Dump renders the whole netlist as text, one node per line, for
// debugging and golden tests.
func (n *Netlist) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# netlist %s\n", n.Name)
	for _, node := range n.nodes {
		fmt.Fprintf(&sb, "%4d %-6s", node.ID, node.Kind)
		if node.Type != "" {
			fmt.Fprintf(&sb, " %-8s", node.Type)
		}
		if node.Name != "" {
			fmt.Fprintf(&sb, " %q", node.Name)
		}
		if node.Kind == KindGate {
			fmt.Fprintf(&sb, " %s", node.Func)
		}
		if node.Kind == KindConst {
			fmt.Fprintf(&sb, " %v", node.ConstVal)
		}
		if len(node.Fanins) > 0 {
			fmt.Fprintf(&sb, " <-")
			for _, f := range node.Fanins {
				fmt.Fprintf(&sb, " %d", f)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteDOT renders the netlist in Graphviz DOT format.
func (n *Netlist) WriteDOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", n.Name)
	for _, node := range n.nodes {
		label := node.Type
		if node.Name != "" {
			label = node.Name
		}
		shape := "box"
		switch node.Kind {
		case KindInput, KindOutput:
			shape = "ellipse"
		case KindDFF:
			shape = "box3d"
		case KindConst:
			shape = "plaintext"
			label = map[bool]string{false: "0", true: "1"}[node.ConstVal]
		}
		fmt.Fprintf(&sb, "  n%d [label=%q shape=%s];\n", node.ID, label, shape)
	}
	for _, node := range n.nodes {
		for _, f := range node.Fanins {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", f, node.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// PortNames returns the sorted PI and PO names; useful for interface
// comparisons in tests.
func (n *Netlist) PortNames() (pis, pos []string) {
	for _, id := range n.pis {
		pis = append(pis, n.nodes[id].Name)
	}
	for _, id := range n.pos {
		pos = append(pos, n.nodes[id].Name)
	}
	sort.Strings(pis)
	sort.Strings(pos)
	return pis, pos
}
