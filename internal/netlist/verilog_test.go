package netlist

import (
	"strings"
	"testing"

	"vpga/internal/logic"
)

func TestWriteVerilogStructure(t *testing.T) {
	n := New("t_mod")
	a, b := n.AddInput("a"), n.AddInput("b")
	g := n.AddGate("ND3", logic.TTNand2, a, b)
	ff := n.AddDFF("r", g)
	n.AddOutput("y", ff)
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module t_mod(input clk_i, input a, input b, output y);",
		"always @(posedge clk_i)",
		"assign y =",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestWriteVerilogBusPortsEscaped(t *testing.T) {
	n := New("bus")
	a := n.AddInput("a[0]")
	n.AddOutput("y[0]", a)
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\\a[0] ") || !strings.Contains(sb.String(), "\\y[0] ") {
		t.Errorf("bus ports not escaped:\n%s", sb.String())
	}
}

func TestSopExpr(t *testing.T) {
	n := New("s")
	a, b := n.AddInput("a"), n.AddInput("b")
	cases := []struct {
		fn   logic.TT
		want []string // substrings
	}{
		{logic.TTAnd2, []string{"n0 & n1"}},
		{logic.TTXor2, []string{") | ("}},
		{logic.ConstTT(2, false), []string{"1'b0"}},
		{logic.ConstTT(2, true), []string{"1'b1"}},
	}
	for _, c := range cases {
		g := n.AddGate("G", c.fn, a, b)
		node := n.Node(g)
		expr := sopExpr(node, func(id NodeID) string {
			if id == a {
				return "n0"
			}
			return "n1"
		})
		for _, w := range c.want {
			if !strings.Contains(expr, w) {
				t.Errorf("fn %v: expr %q missing %q", c.fn, expr, w)
			}
		}
	}
}

// TestVerilogSemantics re-parses the emitted Verilog through the RTL
// front end: impossible here without a cyclic import, so instead check
// a truth-table identity by hand on a small gate: the SOP of XOR2 must
// list exactly the two odd-parity rows.
func TestVerilogXorRows(t *testing.T) {
	n := New("x")
	a, b := n.AddInput("a"), n.AddInput("b")
	g := n.AddGate("G", logic.TTXor2, a, b)
	expr := sopExpr(n.Node(g), func(id NodeID) string {
		if id == a {
			return "A"
		}
		return "B"
	})
	if !(strings.Contains(expr, "A & ~B") && strings.Contains(expr, "~A & B")) {
		t.Errorf("XOR SOP wrong: %q", expr)
	}
	if strings.Contains(expr, "~A & ~B") || strings.Contains(expr, "A & B)") && !strings.Contains(expr, "~") {
		t.Errorf("XOR SOP has spurious terms: %q", expr)
	}
}

func TestSanitizeID(t *testing.T) {
	if got := sanitizeID("3bad name!"); got != "_bad_name_" {
		t.Errorf("sanitizeID = %q", got)
	}
	if got := sanitizeID("ok_name9"); got != "ok_name9" {
		t.Errorf("sanitizeID = %q", got)
	}
}
