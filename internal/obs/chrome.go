package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"vpga/internal/fsx"
)

// chromeEvent is one entry of the Chrome trace-event JSON array
// (chrome://tracing, Perfetto). Timestamps and durations are in
// microseconds relative to the tracer epoch.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// WriteChromeTrace emits the tracer's telemetry as a Chrome
// trace-event JSON array: one complete ("X") event per run (solver
// metrics in its args), one per stage span, one instant ("i") event
// per repair attempt, plus thread-name metadata naming each worker
// row. Load the file in chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte("[]\n"))
		return err
	}
	runs := t.Runs()
	var events []chromeEvent

	rows := map[int]bool{}
	for _, r := range runs {
		rows[r.Worker()] = true
	}
	procArgs := map[string]any{"name": "vpga flow"}
	if id := t.TraceID(); id != "" {
		procArgs["trace_id"] = id
	}
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: procArgs,
	})
	for row := range rows {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: row,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", row)},
		})
	}

	for _, r := range runs {
		r.mu.Lock()
		start, end, closed := r.start, r.end, r.closed
		spans := append([]Span(nil), r.spans...)
		attempts := append([]AttemptEvent(nil), r.attempts...)
		r.mu.Unlock()
		if !closed {
			end = r.tr.since()
		}
		sm := r.SolverMetrics()
		events = append(events, chromeEvent{
			Name: r.Label(), Cat: "run", Ph: "X",
			Ts: usec(start), Dur: usec(end - start), Pid: 1, Tid: r.Worker(),
			Args: map[string]any{
				"anneal_passes":        sm.AnnealPasses,
				"anneal_proposed":      sm.AnnealProposed,
				"anneal_accepted":      sm.AnnealAccepted,
				"anneal_final_cost":    sm.AnnealFinalCost,
				"route_iterations":     sm.RouteIterations,
				"route_best_iteration": sm.RouteBestIteration,
				"route_overflows":      sm.RouteOverflows,
				"repair_attempts":      sm.RepairAttempts,
			},
		})
		for _, s := range spans {
			events = append(events, chromeEvent{
				Name: s.Stage, Cat: "stage", Ph: "X",
				Ts: usec(s.Start), Dur: usec(s.Dur), Pid: 1, Tid: r.Worker(),
				Args: map[string]any{"run": r.Label()},
			})
		}
		for _, a := range attempts {
			name := fmt.Sprintf("attempt %d: %s", a.Attempt, a.Action)
			args := map[string]any{"run": r.Label()}
			if a.Err != "" {
				args["error"] = a.Err
			}
			events = append(events, chromeEvent{
				Name: name, Cat: "repair", Ph: "i",
				Ts: usec(a.At), Pid: 1, Tid: r.Worker(), S: "t",
				Args: args,
			})
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ph == "M" != (events[j].Ph == "M") {
			return events[i].Ph == "M"
		}
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Tid < events[j].Tid
	})

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteChromeTraceFile writes the Chrome trace to path atomically
// (temp file + fsync + rename), so an interrupted write leaves the
// previous trace intact instead of a truncated JSON array.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	return fsx.WriteFileAtomic(path, 0o644, t.WriteChromeTrace)
}
