package obs

import "time"

// Event is one live telemetry event of a tracer: a run opening or
// closing, a stage span starting or ending, or a repair attempt.
// Events are the push-side view of the same telemetry the spans
// record: a subscriber polling EventsSince/Wait sees a run's stages
// while the run is still in flight, which is what the daemon's SSE
// endpoint (GET /v1/runs/{id}/events) streams.
//
// Timestamps are microseconds since the tracer epoch, matching the
// Chrome trace-event convention.
type Event struct {
	// Seq is the event's 1-based position in the tracer's event log.
	Seq int64 `json:"seq"`
	// Type is "run_start", "stage_start", "stage_end", "attempt" or
	// "run_end".
	Type string `json:"type"`
	// Run is the owning run's label, Worker its trace row.
	Run    string `json:"run"`
	Worker int    `json:"worker"`
	// Stage names the flow stage for stage_start/stage_end events.
	Stage string `json:"stage,omitempty"`
	// TsUS is the event time; DurUS is the span length (stage_end only).
	TsUS  float64 `json:"ts_us"`
	DurUS float64 `json:"dur_us,omitempty"`
	// Attempt and Error carry the repair-ladder payload of "attempt"
	// events.
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// publish appends ev to the event log and wakes every waiter. A nil
// tracer publishes nothing.
func (t *Tracer) publish(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.Seq = int64(len(t.events)) + 1
	t.events = append(t.events, ev)
	for _, ch := range t.waiters {
		close(ch)
	}
	t.waiters = nil
	t.mu.Unlock()
}

// EventsSince returns a copy of the events after the cursor (the count
// of events already consumed). A nil tracer has no events.
func (t *Tracer) EventsSince(cursor int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(t.events) {
		return nil
	}
	return append([]Event(nil), t.events[cursor:]...)
}

// Wait returns a channel that is closed once the tracer holds more
// than cursor events; if it already does, the channel comes back
// closed. Subscribers loop: drain EventsSince, then select on Wait
// against their own cancellation.
func (t *Tracer) Wait(cursor int) <-chan struct{} {
	ch := make(chan struct{})
	if t == nil {
		close(ch)
		return ch
	}
	t.mu.Lock()
	if len(t.events) > cursor {
		close(ch)
	} else {
		t.waiters = append(t.waiters, ch)
	}
	t.mu.Unlock()
	return ch
}

func eventUS(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}
