// Package obs is the flow observability layer: a zero-dependency
// (stdlib-only) tracer recording per-stage wall-clock spans and solver
// counters for every flow run, aggregating them across matrix workers,
// and exporting Chrome trace-event JSON plus a per-stage summary
// table.
//
// Everything here is nil-tolerant by design: a nil *Tracer hands out
// nil *Runs, whose methods — and those of the nil *AnnealTrace /
// *RouteTrace they return — all no-op. An un-instrumented flow
// therefore pays exactly one nil check per event site (a stage
// boundary, a temperature pass, a negotiation iteration), and nothing
// at all per annealing move or per router edge relaxation.
//
// Tracing is pure observation: no recorder ever touches a solver's
// RNG, schedule or search order, so a traced run is bit-identical to
// an untraced one (the determinism suite in internal/core asserts
// this).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlowStageOrder is the canonical ordering of flow stages in summary
// tables and aggregates; stages not listed sort after these,
// alphabetically.
var FlowStageOrder = []string{
	"rtl", "synth", "map", "compact", "verify",
	"place", "pack", "viamap", "route", "sta", "power",
}

func stageRank(stage string) int {
	for i, s := range FlowStageOrder {
		if s == stage {
			return i
		}
	}
	return len(FlowStageOrder)
}

// Span is one recorded stage execution within a run. Start is the
// offset from the tracer's epoch.
type Span struct {
	Stage string
	Start time.Duration
	Dur   time.Duration
}

// StageTiming is a per-stage aggregate: how often the stage ran and
// its total wall time.
type StageTiming struct {
	Stage string
	Count int
	Dur   time.Duration
}

// AnnealPass is one temperature step of the placer's schedule.
type AnnealPass struct {
	Temp               float64
	Proposed, Accepted int
}

// AnnealTrace records the placer's annealing trajectory: one entry per
// temperature pass plus the final cost. The totals are atomic counters
// so readers may snapshot concurrently with a running anneal; the
// annealer itself reports whole passes, never individual moves, so the
// placement hot loop carries no tracing cost.
type AnnealTrace struct {
	proposed, accepted atomic.Int64

	mu        sync.Mutex
	passes    []AnnealPass
	finalCost float64
}

// Pass records one completed temperature pass.
func (a *AnnealTrace) Pass(temp float64, proposed, accepted int) {
	if a == nil {
		return
	}
	a.proposed.Add(int64(proposed))
	a.accepted.Add(int64(accepted))
	a.mu.Lock()
	a.passes = append(a.passes, AnnealPass{Temp: temp, Proposed: proposed, Accepted: accepted})
	a.mu.Unlock()
}

// Final records the post-anneal cost (weighted HPWL).
func (a *AnnealTrace) Final(cost float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.finalCost = cost
	a.mu.Unlock()
}

// Snapshot returns a copy of the recorded trajectory.
func (a *AnnealTrace) Snapshot() (passes []AnnealPass, proposed, accepted int64, finalCost float64) {
	if a == nil {
		return nil, 0, 0, 0
	}
	a.mu.Lock()
	passes = append([]AnnealPass(nil), a.passes...)
	finalCost = a.finalCost
	a.mu.Unlock()
	return passes, a.proposed.Load(), a.accepted.Load(), finalCost
}

// RouteTrace records the router's negotiation trajectory: the total
// overflow after each rip-up-and-reroute iteration and the iteration
// whose snapshot the router kept as its best.
type RouteTrace struct {
	mu        sync.Mutex
	overflows []int
	best      int
}

// Iteration records the overflow remaining after one negotiation
// iteration.
func (r *RouteTrace) Iteration(overflow int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.overflows = append(r.overflows, overflow)
	r.mu.Unlock()
}

// Best records the 1-based iteration whose state the router kept.
func (r *RouteTrace) Best(iter int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.best = iter
	r.mu.Unlock()
}

// Snapshot returns a copy of the recorded trajectory.
func (r *RouteTrace) Snapshot() (overflows []int, best int) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.overflows...), r.best
}

// AttemptEvent is one repair-ladder rung: which attempt ran, what it
// escalated, and how it ended (empty Err = success).
type AttemptEvent struct {
	At      time.Duration
	Attempt int
	Action  string
	Err     string
}

// SolverMetrics is the per-run solver counter block surfaced on flow
// reports. It is observability data, wall-clock free but still
// excluded from bit-identical determinism comparisons alongside the
// stage timings (core's shared StripMetrics helper zeroes both).
type SolverMetrics struct {
	// Annealer: temperature passes run, moves proposed/accepted across
	// them, and the final weighted-HPWL cost.
	AnnealPasses    int
	AnnealProposed  int64
	AnnealAccepted  int64
	AnnealFinalCost float64
	// Router: negotiation iterations, the overflow remaining after each
	// one, and the 1-based iteration whose snapshot won.
	RouteIterations    int
	RouteBestIteration int
	RouteOverflows     []int
	// Repair-ladder attempts recorded on this run (0 = never repaired).
	RepairAttempts int
}

// Run is the telemetry of one flow execution: its stage spans, solver
// traces and repair-attempt events, pinned to one worker row of the
// Chrome trace. A nil *Run is valid and records nothing.
type Run struct {
	tr     *Tracer
	label  string
	worker int
	start  time.Duration

	mu       sync.Mutex
	end      time.Duration
	closed   bool
	spans    []Span
	attempts []AttemptEvent
	anneal   AnnealTrace
	route    RouteTrace
}

// Label returns the run's display label (design/arch/flow).
func (r *Run) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Worker returns the run's worker row in the Chrome trace.
func (r *Run) Worker() int {
	if r == nil {
		return 0
	}
	return r.worker
}

// Stage opens a span for the named flow stage and returns the closure
// that ends it. Usage:
//
//	end := run.Stage("place")
//	... the stage ...
//	end()
func (r *Run) Stage(stage string) func() {
	if r == nil {
		return func() {}
	}
	start := r.tr.since()
	r.tr.publish(Event{Type: "stage_start", Run: r.label, Worker: r.worker,
		Stage: stage, TsUS: eventUS(start)})
	return func() {
		d := r.tr.since() - start
		r.mu.Lock()
		r.spans = append(r.spans, Span{Stage: stage, Start: start, Dur: d})
		r.mu.Unlock()
		r.tr.publish(Event{Type: "stage_end", Run: r.label, Worker: r.worker,
			Stage: stage, TsUS: eventUS(start + d), DurUS: eventUS(d)})
	}
}

// Anneal returns the run's annealer trace (nil for a nil run), for
// wiring into place.Options.
func (r *Run) Anneal() *AnnealTrace {
	if r == nil {
		return nil
	}
	return &r.anneal
}

// Route returns the run's router trace (nil for a nil run), for wiring
// into route.Options.
func (r *Run) Route() *RouteTrace {
	if r == nil {
		return nil
	}
	return &r.route
}

// Attempt records one repair-ladder rung.
func (r *Run) Attempt(attempt int, action, errMsg string) {
	if r == nil {
		return
	}
	at := r.tr.since()
	r.mu.Lock()
	r.attempts = append(r.attempts, AttemptEvent{At: at, Attempt: attempt, Action: action, Err: errMsg})
	r.mu.Unlock()
	r.tr.publish(Event{Type: "attempt", Run: r.label, Worker: r.worker,
		Stage: action, TsUS: eventUS(at), Attempt: attempt, Error: errMsg})
}

// Close ends the run and releases its worker row for reuse by the next
// run on the same pool slot. Close is idempotent.
func (r *Run) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.end = r.tr.since()
	end := r.end
	r.mu.Unlock()
	r.tr.release(r.worker)
	r.tr.publish(Event{Type: "run_end", Run: r.label, Worker: r.worker, TsUS: eventUS(end)})
}

// Spans returns a copy of the run's recorded spans.
func (r *Run) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Attempts returns a copy of the run's repair-attempt events.
func (r *Run) Attempts() []AttemptEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]AttemptEvent(nil), r.attempts...)
}

// StageTimings aggregates the run's spans by stage, in canonical flow
// order. Under the repair ladder a stage may have run once per
// attempt; Count says how often.
func (r *Run) StageTimings() []StageTiming {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	lists := make([]StageTiming, 0, len(spans))
	for _, s := range spans {
		lists = append(lists, StageTiming{Stage: s.Stage, Count: 1, Dur: s.Dur})
	}
	return Aggregate(lists)
}

// SolverMetrics snapshots the run's solver counters into the report
// block.
func (r *Run) SolverMetrics() *SolverMetrics {
	if r == nil {
		return nil
	}
	m := &SolverMetrics{}
	passes, prop, acc, final := r.anneal.Snapshot()
	m.AnnealPasses = len(passes)
	m.AnnealProposed = prop
	m.AnnealAccepted = acc
	m.AnnealFinalCost = final
	m.RouteOverflows, m.RouteBestIteration = r.route.Snapshot()
	m.RouteIterations = len(m.RouteOverflows)
	r.mu.Lock()
	m.RepairAttempts = len(r.attempts)
	r.mu.Unlock()
	return m
}

// Tracer collects the telemetry of a whole experiment: one Run per
// flow execution. Worker rows are a free list, so concurrent runs map
// onto the pool slots actually in use (row count == peak parallelism),
// giving the Chrome trace one row per worker.
type Tracer struct {
	epoch time.Time

	mu       sync.Mutex
	traceID  string
	runs     []*Run
	freeRows []int // released rows, reused smallest-first
	rows     int   // rows ever created
	// Live event log (see events.go): every run/stage/attempt boundary
	// appends an Event and wakes the registered waiters.
	events  []Event
	waiters []chan struct{}
}

// NewTracer starts a tracer; its epoch is the zero timestamp of every
// span it records.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

func (t *Tracer) since() time.Duration {
	return time.Since(t.epoch)
}

// SetTraceID stamps the tracer with the distributed trace it belongs
// to (the coordinator-minted ID carried in the X-Vpga-Trace header).
// The ID is correlation metadata only: it rides on the Chrome trace's
// process metadata so merged cluster timelines can assert every
// fragment came from one trace, and it never touches spans or events.
func (t *Tracer) SetTraceID(id string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// TraceID returns the distributed trace ID, "" when unset.
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// NewRun opens a run on the smallest free worker row. A nil tracer
// returns a nil run, which records nothing.
func (t *Tracer) NewRun(label string) *Run {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var row int
	if n := len(t.freeRows); n > 0 {
		sort.Ints(t.freeRows)
		row = t.freeRows[0]
		t.freeRows = t.freeRows[1:]
	} else {
		row = t.rows
		t.rows++
	}
	r := &Run{tr: t, label: label, worker: row, start: t.since()}
	t.runs = append(t.runs, r)
	t.mu.Unlock()
	t.publish(Event{Type: "run_start", Run: label, Worker: row, TsUS: eventUS(r.start)})
	return r
}

func (t *Tracer) release(row int) {
	t.mu.Lock()
	t.freeRows = append(t.freeRows, row)
	t.mu.Unlock()
}

// Runs returns every run opened so far, in creation order.
func (t *Tracer) Runs() []*Run {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Run(nil), t.runs...)
}

// Aggregate merges stage-timing lists (one per span, run or report)
// into per-stage totals, ordered canonically (FlowStageOrder first,
// unknown stages after, alphabetically).
func Aggregate(lists ...[]StageTiming) []StageTiming {
	total := map[string]StageTiming{}
	for _, list := range lists {
		for _, st := range list {
			agg := total[st.Stage]
			agg.Stage = st.Stage
			agg.Count += st.Count
			agg.Dur += st.Dur
			total[st.Stage] = agg
		}
	}
	out := make([]StageTiming, 0, len(total))
	for _, st := range total {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := stageRank(out[i].Stage), stageRank(out[j].Stage)
		if ri != rj {
			return ri < rj
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// StageTotals aggregates span durations by stage across every run —
// the matrix-wide per-stage totals.
func (t *Tracer) StageTotals() []StageTiming {
	if t == nil {
		return nil
	}
	lists := make([][]StageTiming, 0)
	for _, r := range t.Runs() {
		lists = append(lists, r.StageTimings())
	}
	return Aggregate(lists...)
}

// SummaryTable renders the per-stage totals as the stderr summary
// table: spans, total and mean wall time, and each stage's share of
// the traced time.
func (t *Tracer) SummaryTable() string {
	totals := t.StageTotals()
	var sb strings.Builder
	runs := 0
	if t != nil {
		runs = len(t.Runs())
	}
	fmt.Fprintf(&sb, "flow trace: %d run(s)\n", runs)
	fmt.Fprintf(&sb, "  %-10s %6s %12s %12s %7s\n", "stage", "spans", "total", "mean", "share")
	var sum time.Duration
	for _, st := range totals {
		sum += st.Dur
	}
	for _, st := range totals {
		mean := time.Duration(0)
		if st.Count > 0 {
			mean = st.Dur / time.Duration(st.Count)
		}
		share := 0.0
		if sum > 0 {
			share = 100 * float64(st.Dur) / float64(sum)
		}
		fmt.Fprintf(&sb, "  %-10s %6d %12s %12s %6.1f%%\n",
			st.Stage, st.Count, st.Dur.Round(time.Microsecond), mean.Round(time.Microsecond), share)
	}
	fmt.Fprintf(&sb, "  %-10s %6s %12s\n", "sum", "", sum.Round(time.Microsecond))
	return sb.String()
}
