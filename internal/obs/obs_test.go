package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// A nil tracer, nil run, and the nil solver traces they hand out must
// all be safe no-ops: that is the whole contract that keeps the flow
// hot paths free when tracing is off.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	run := tr.NewRun("nothing")
	if run != nil {
		t.Fatalf("nil tracer produced a run")
	}
	end := run.Stage("place")
	end()
	run.Attempt(1, "reseed", "boom")
	run.Close()
	run.Close()
	at := run.Anneal()
	if at != nil {
		t.Fatalf("nil run produced an anneal trace")
	}
	at.Pass(1.0, 100, 40)
	at.Final(42)
	rt := run.Route()
	if rt != nil {
		t.Fatalf("nil run produced a route trace")
	}
	rt.Iteration(7)
	rt.Best(1)
	if got := run.StageTimings(); got != nil {
		t.Fatalf("nil run StageTimings = %v", got)
	}
	if got := run.SolverMetrics(); got != nil {
		t.Fatalf("nil run SolverMetrics = %v", got)
	}
	if got := tr.StageTotals(); got != nil {
		t.Fatalf("nil tracer StageTotals = %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("nil tracer trace is not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("nil tracer trace has %d events, want 0", len(events))
	}
	_ = tr.SummaryTable() // must not panic
}

func TestStageTimingsAggregate(t *testing.T) {
	tr := NewTracer()
	run := tr.NewRun("ALU/arch/flow a")
	end := run.Stage("route")
	time.Sleep(time.Millisecond)
	end()
	end = run.Stage("place")
	end()
	end = run.Stage("route")
	end()
	run.Close()

	st := run.StageTimings()
	if len(st) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(st), st)
	}
	// Canonical flow order puts place before route regardless of the
	// order the spans were recorded in.
	if st[0].Stage != "place" || st[1].Stage != "route" {
		t.Fatalf("stage order = %q,%q; want place,route", st[0].Stage, st[1].Stage)
	}
	if st[1].Count != 2 {
		t.Fatalf("route count = %d, want 2", st[1].Count)
	}
	if st[1].Dur < time.Millisecond {
		t.Fatalf("route total %v < slept 1ms", st[1].Dur)
	}
	if totals := tr.StageTotals(); len(totals) != 2 {
		t.Fatalf("tracer totals: %+v", totals)
	}
	sum := tr.SummaryTable()
	for _, want := range []string{"place", "route", "1 run(s)"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary table missing %q:\n%s", want, sum)
		}
	}
}

func TestSolverMetricsSnapshot(t *testing.T) {
	tr := NewTracer()
	run := tr.NewRun("r")
	at := run.Anneal()
	at.Pass(10.0, 100, 40)
	at.Pass(9.0, 100, 30)
	at.Final(123.5)
	rt := run.Route()
	rt.Iteration(17)
	rt.Iteration(4)
	rt.Iteration(0)
	rt.Best(3)
	run.Attempt(1, "reseed", "route: overflow")
	run.Close()

	m := run.SolverMetrics()
	if m.AnnealPasses != 2 || m.AnnealProposed != 200 || m.AnnealAccepted != 70 {
		t.Fatalf("anneal metrics = %+v", m)
	}
	if m.AnnealFinalCost != 123.5 {
		t.Fatalf("final cost = %v", m.AnnealFinalCost)
	}
	if m.RouteIterations != 3 || m.RouteBestIteration != 3 {
		t.Fatalf("route metrics = %+v", m)
	}
	if len(m.RouteOverflows) != 3 || m.RouteOverflows[2] != 0 {
		t.Fatalf("overflow trajectory = %v", m.RouteOverflows)
	}
	if m.RepairAttempts != 1 {
		t.Fatalf("repair attempts = %d", m.RepairAttempts)
	}
}

// Worker rows come from a free list: sequential runs share row 0,
// concurrent runs get distinct rows, and a released row is reused by
// the next run — so the Chrome trace has one row per pool slot.
func TestWorkerRowReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.NewRun("a")
	if a.Worker() != 0 {
		t.Fatalf("first run on row %d, want 0", a.Worker())
	}
	b := tr.NewRun("b")
	if b.Worker() != 1 {
		t.Fatalf("concurrent second run on row %d, want 1", b.Worker())
	}
	a.Close()
	c := tr.NewRun("c")
	if c.Worker() != 0 {
		t.Fatalf("run after release on row %d, want reused 0", c.Worker())
	}
	b.Close()
	c.Close()
	d := tr.NewRun("d")
	if d.Worker() != 0 {
		t.Fatalf("all released: row %d, want smallest free 0", d.Worker())
	}
	d.Close()
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	run := tr.NewRun("FPU/granular-plb/flow b")
	end := run.Stage("synth")
	end()
	end = run.Stage("route")
	end()
	run.Anneal().Pass(5, 10, 4)
	run.Route().Iteration(0)
	run.Route().Best(1)
	run.Attempt(1, "widen-channels", "")
	run.Close()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Dur  float64        `json:"dur"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var haveRun, haveSynth, haveRoute, haveAttempt, haveThread bool
	for _, e := range events {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			haveThread = true
		case e.Cat == "run" && e.Ph == "X":
			haveRun = true
			if e.Args["route_best_iteration"] != float64(1) {
				t.Fatalf("run args = %v", e.Args)
			}
		case e.Cat == "stage" && e.Name == "synth":
			haveSynth = true
		case e.Cat == "stage" && e.Name == "route":
			haveRoute = true
		case e.Cat == "repair" && e.Ph == "i":
			haveAttempt = true
		}
	}
	if !haveRun || !haveSynth || !haveRoute || !haveAttempt || !haveThread {
		t.Fatalf("missing events: run=%v synth=%v route=%v attempt=%v thread=%v",
			haveRun, haveSynth, haveRoute, haveAttempt, haveThread)
	}
}
