package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestWriteChromeTraceFileErrors: unwritable paths surface errors
// instead of passing silently, missing parent directories are created
// (the write is atomic via fsx), and an empty (but live) tracer still
// writes a valid, loadable trace.
func TestWriteChromeTraceFileErrors(t *testing.T) {
	tr := NewTracer()
	if err := tr.WriteChromeTraceFile(filepath.Join(t.TempDir(), "missing", "trace.json")); err != nil {
		t.Fatalf("missing parent directory not created: %v", err)
	}
	if err := tr.WriteChromeTraceFile(t.TempDir()); err == nil {
		t.Fatal("write onto a directory passed")
	}

	// An empty tracer produces a valid JSON array (process metadata
	// only), so downstream viewers load it without complaint.
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := tr.WriteChromeTraceFile(path); err != nil {
		t.Fatalf("empty tracer: %v", err)
	}
	enc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(enc, &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	for _, ev := range events {
		if ev["ph"] != "M" {
			t.Fatalf("empty tracer emitted a non-metadata event: %v", ev)
		}
	}

	// A nil tracer writes the empty array.
	var nilTr *Tracer
	path = filepath.Join(t.TempDir(), "nil.json")
	if err := nilTr.WriteChromeTraceFile(path); err != nil {
		t.Fatalf("nil tracer: %v", err)
	}
	if enc, _ := os.ReadFile(path); strings.TrimSpace(string(enc)) != "[]" {
		t.Fatalf("nil tracer trace = %q, want []", enc)
	}
}

// TestSummaryTableGolden pins the stderr summary-table rendering. The
// spans are set directly with fixed durations so the output is exact.
func TestSummaryTableGolden(t *testing.T) {
	tr := NewTracer()
	run := tr.NewRun("alu/granular-plb/flow b")
	run.mu.Lock()
	run.spans = []Span{
		{Stage: "place", Start: 0, Dur: 30 * time.Millisecond},
		{Stage: "route", Start: 30 * time.Millisecond, Dur: 10 * time.Millisecond},
		{Stage: "place", Start: 40 * time.Millisecond, Dur: 10 * time.Millisecond},
	}
	run.mu.Unlock()
	run.Close()

	want := "" +
		"flow trace: 1 run(s)\n" +
		"  stage       spans        total         mean   share\n" +
		"  place           2         40ms         20ms   80.0%\n" +
		"  route           1         10ms         10ms   20.0%\n" +
		"  sum                       50ms\n"
	if got := tr.SummaryTable(); got != want {
		t.Fatalf("summary table drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEventLogAndWait: the live event log records every run/stage/
// attempt boundary in order, EventsSince honors its cursor, and Wait
// wakes subscribers exactly when events past their cursor exist.
func TestEventLogAndWait(t *testing.T) {
	tr := NewTracer()
	if evs := tr.EventsSince(0); evs != nil {
		t.Fatalf("fresh tracer has events: %v", evs)
	}
	waiting := tr.Wait(0)
	select {
	case <-waiting:
		t.Fatal("Wait(0) closed with no events")
	default:
	}

	run := tr.NewRun("alu/granular-plb/flow b")
	select {
	case <-waiting:
	default:
		t.Fatal("publish did not wake the waiter")
	}
	end := run.Stage("place")
	end()
	run.Attempt(2, "reseed", "boom")
	run.Close()

	evs := tr.EventsSince(0)
	var types []string
	for i, ev := range evs {
		if ev.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Run != "alu/granular-plb/flow b" {
			t.Fatalf("event %d run = %q", i, ev.Run)
		}
		types = append(types, ev.Type)
	}
	want := []string{"run_start", "stage_start", "stage_end", "attempt", "run_end"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	if evs[1].Stage != "place" || evs[2].Stage != "place" || evs[2].DurUS < 0 {
		t.Fatalf("stage events malformed: %+v %+v", evs[1], evs[2])
	}
	if evs[3].Attempt != 2 || evs[3].Error != "boom" || evs[3].Stage != "reseed" {
		t.Fatalf("attempt event malformed: %+v", evs[3])
	}

	// Cursor semantics: a partial drain resumes where it stopped.
	tail := tr.EventsSince(3)
	if len(tail) != 2 || tail[0].Type != "attempt" {
		t.Fatalf("EventsSince(3) = %v", tail)
	}
	// Wait behind the log comes back closed; Wait at the tip blocks.
	select {
	case <-tr.Wait(2):
	default:
		t.Fatal("Wait behind the log did not come back closed")
	}
	select {
	case <-tr.Wait(len(evs)):
		t.Fatal("Wait at the tip came back closed")
	default:
	}

	// Nil tracer: closed Wait, no events, publish no-ops.
	var nilTr *Tracer
	<-nilTr.Wait(0)
	if nilTr.EventsSince(0) != nil {
		t.Fatal("nil tracer has events")
	}
	nilTr.publish(Event{Type: "run_start"})
}
