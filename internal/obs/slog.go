package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the daemon, zero-dependency on log/slog. The
// daemon's log lines carry the correlation attributes the cluster
// tracing layer propagates — job_id, ticket_id, trace_id, tenant,
// node — so a grep for one trace ID follows a job across the
// coordinator and every worker it touched.

// LogLevels and LogFormats are the accepted -log-level / -log-format
// values, for flag usage strings.
const (
	LogLevels  = "debug, info, warn, error"
	LogFormats = "text, json"
)

// ParseLogLevel maps a -log-level flag value onto a slog.Level.
// Empty means info.
func ParseLogLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want %s)", level, LogLevels)
}

// NewLogger builds the daemon logger: level gates verbosity (empty =
// info), format picks the handler ("text" default, "json" for
// machine-shipped lines). An unknown level or format is an error so a
// typo on the command line fails loudly instead of logging nothing.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want %s)", format, LogFormats)
}

// NopLogger returns a logger that discards everything — the default
// when no logger is configured, so instrumented code paths never
// nil-check. (slog.DiscardHandler needs go 1.24; a discard text
// handler with an impossible level costs the same and builds on 1.22.)
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127),
	}))
}
