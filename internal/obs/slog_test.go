package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
	}{
		{"", slog.LevelInfo},
		{"debug", slog.LevelDebug},
		{"info", slog.LevelInfo},
		{"warn", slog.LevelWarn},
		{"warning", slog.LevelWarn},
		{"error", slog.LevelError},
		{"ERROR", slog.LevelError}, // case-insensitive
	}
	for _, c := range cases {
		got, err := ParseLogLevel(c.in)
		if err != nil {
			t.Fatalf("ParseLogLevel(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseLogLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("ParseLogLevel accepted an unknown level")
	}
}

// TestNewLoggerFormats: text and json encodings carry the record and
// its attributes; the level threshold filters below it.
func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("job accepted", "job_id", "j000001", "trace_id", "abc123")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line leaked through info threshold:\n%s", out)
	}
	if !strings.Contains(out, "job accepted") || !strings.Contains(out, "job_id=j000001") ||
		!strings.Contains(out, "trace_id=abc123") {
		t.Fatalf("text line missing message or attrs:\n%s", out)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("ticket dispatched", "ticket_id", "alu/lut-plb/flow b", "node", "http://w1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "ticket dispatched" || rec["ticket_id"] != "alu/lut-plb/flow b" || rec["node"] != "http://w1" {
		t.Fatalf("json record missing fields: %v", rec)
	}

	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("NewLogger accepted an unknown format")
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("NewLogger accepted an unknown level")
	}
}

// TestNopLogger: the nil-object logger drops every level without
// panicking, so library code can log unconditionally.
func TestNopLogger(t *testing.T) {
	log := NopLogger()
	log.Debug("a")
	log.Info("b", "k", "v")
	log.Warn("c")
	log.Error("d")
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("NopLogger claims error level is enabled")
	}
}
