// Package pack legalizes an ASIC-style placement of configuration
// instances into a regular array of PLBs, implementing the paper's
// packing stage (Sec. 3.1): recursive quadrisection, relocating cells
// to regions with available resources under a cost that weighs cell
// criticality and minimizes perturbation of the ASIC placement, run in
// an iterative loop with incremental placement refinement.
package pack

import (
	"fmt"
	"math"
	"sort"

	"vpga/internal/cells"
	"vpga/internal/flowmap"
	"vpga/internal/netlist"
	"vpga/internal/place"
)

// Options tunes the packer.
type Options struct {
	// MaxIterations bounds the pack ⇄ refine loop (default 4).
	MaxIterations int
	// Margin is the PLB-count headroom over the resource lower bound
	// when sizing the initial array (default 1.10).
	Margin float64
	// Criticality holds a per-object timing weight (same indexing as
	// the placement problem); more critical objects move last. May be
	// nil.
	Criticality []float64
	Seed        int64
}

// Result describes the legal PLB array.
type Result struct {
	Rows, Cols int
	// PLBOf maps placement object index to PLB index (row*Cols+col);
	// -1 for pads.
	PLBOf []int
	// DieArea is Rows × Cols × PLB area.
	DieArea float64
	// Perturbation is the mean displacement between the ASIC placement
	// and the final legal positions, in PLB pitches.
	Perturbation float64
	// UsedPLBs counts PLBs hosting at least one instance.
	UsedPLBs int
	// Iterations actually run in the pack ⇄ refine loop.
	Iterations int
}

// Utilization is the fraction of PLBs occupied.
func (r *Result) Utilization() float64 {
	return float64(r.UsedPLBs) / float64(r.Rows*r.Cols)
}

// packer carries one run's state.
type packer struct {
	arch *cells.PLBArch
	nl   *netlist.Netlist
	prob *place.Problem
	opts Options

	// demand per object: the configuration roles it needs inside a PLB
	// (nil for pads and absorbed buffers).
	objCfg []*cells.Config
	crit   []float64
	pitch  float64
	rows   int
	cols   int
}

// Run packs the compacted netlist's placement into the smallest PLB
// array that legalizes. The placement problem's object positions are
// updated to the legal PLB centers.
func Run(nl *netlist.Netlist, arch *cells.PLBArch, prob *place.Problem, opts Options) (*Result, error) {
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 4
	}
	if opts.Margin == 0 {
		opts.Margin = 1.10
	}
	p := &packer{arch: arch, nl: nl, prob: prob, opts: opts, pitch: math.Sqrt(arch.Area)}
	if err := p.resolveConfigs(); err != nil {
		return nil, err
	}
	p.crit = opts.Criticality
	if p.crit == nil {
		p.crit = make([]float64, len(prob.Objs))
	}

	n := p.lowerBoundPLBs()
	side := int(math.Ceil(math.Sqrt(float64(n) * opts.Margin)))
	for attempt := 0; attempt < 12; attempt++ {
		p.rows, p.cols = side, side
		res, err := p.attempt()
		if err == nil {
			return res, nil
		}
		side++
	}
	return nil, fmt.Errorf("pack: no legal array found up to %d×%d", side-1, side-1)
}

// resolveConfigs binds every placeable object to its configuration
// demand.
func (p *packer) resolveConfigs() error {
	p.objCfg = make([]*cells.Config, len(p.prob.Objs))
	for i := range p.prob.Objs {
		o := &p.prob.Objs[i]
		if o.IsPad {
			continue
		}
		n := p.nl.Node(o.Nodes[0])
		switch {
		case n.Kind == netlist.KindDFF:
			p.objCfg[i] = p.arch.Config("FF")
		case n.Type == "INV":
			// Absorbed into the PLB's input polarity rails.
		case n.Type == "BUF":
			// Repeater/fanout buffers occupy the PLB's buffer slots.
			p.objCfg[i] = p.arch.Config("BUF")
		default:
			cfg := p.arch.Config(n.Type)
			if cfg == nil {
				return fmt.Errorf("pack: object %d has unknown configuration %q", i, n.Type)
			}
			p.objCfg[i] = cfg
		}
	}
	return nil
}

// lowerBoundPLBs computes the resource-driven lower bound on the PLB
// count via aggregate role matching.
func (p *packer) lowerBoundPLBs() int {
	demand := p.roleDemand(nil)
	lo, hi := 1, 1
	for !p.aggFeasible(demand, hi) {
		hi *= 2
		if hi > 1<<22 {
			break
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if p.aggFeasible(demand, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// roleDemand tallies role demands over the given objects (nil = all).
func (p *packer) roleDemand(objs []int32) map[cells.Role]int {
	d := map[cells.Role]int{}
	add := func(i int32) {
		if cfg := p.objCfg[i]; cfg != nil {
			for _, r := range cfg.Roles {
				d[r]++
			}
		}
	}
	if objs == nil {
		for i := range p.prob.Objs {
			add(int32(i))
		}
	} else {
		for _, i := range objs {
			add(i)
		}
	}
	return d
}

// aggFeasible checks by max-flow whether numPLBs PLBs can satisfy the
// aggregate role demand (per-PLB integrality is enforced later at the
// leaves).
func (p *packer) aggFeasible(demand map[cells.Role]int, numPLBs int) bool {
	roles := make([]cells.Role, 0, len(demand))
	total := 0
	for r, n := range demand {
		roles = append(roles, r)
		total += n
	}
	sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
	slotTypes := map[string][]cells.Role{}
	slotCount := map[string]int{}
	for _, s := range p.arch.Slots {
		key := s.Component
		slotTypes[key] = s.Serves
		slotCount[key]++
	}
	types := make([]string, 0, len(slotTypes))
	for k := range slotTypes {
		types = append(types, k)
	}
	sort.Strings(types)
	// Nodes: 0 source, 1 sink, 2..1+len(roles) roles, then slot types.
	g := flowmap.NewDinic(2 + len(roles) + len(types))
	for i, r := range roles {
		g.AddEdge(0, 2+i, int64(demand[r]))
		for j, tname := range types {
			for _, serves := range slotTypes[tname] {
				if serves == r {
					g.AddEdge(2+i, 2+len(roles)+j, flowmap.Inf)
					break
				}
			}
		}
	}
	for j, tname := range types {
		g.AddEdge(2+len(roles)+j, 1, int64(slotCount[tname]*numPLBs))
	}
	return g.MaxFlow(0, 1, -1) >= int64(total)
}

// attempt runs the full quadrisection + overflow-resolution loop for
// the current array size.
func (p *packer) attempt() (*Result, error) {
	prob := p.prob
	// Record the ASIC positions for perturbation accounting, scaled to
	// array coordinates.
	asic := make([]coord, len(prob.Objs))
	sx := float64(p.cols) * p.pitch / prob.W
	sy := float64(p.rows) * p.pitch / prob.H
	for i := range prob.Objs {
		asic[i] = coord{prob.Objs[i].X * sx, prob.Objs[i].Y * sy}
	}
	pos := make([]coord, len(asic))
	copy(pos, asic)

	assign := make([]int, len(prob.Objs))
	iter := 0
	for ; iter < p.opts.MaxIterations; iter++ {
		for i := range assign {
			assign[i] = -1
		}
		if err := p.quadrisect(pos, assign); err != nil {
			return nil, err
		}
		if err := p.resolveLeaves(pos, assign); err != nil {
			return nil, err
		}
		// Snap to assigned PLB centers and refine the surviving slack
		// via the placement's local improvement (the paper's iteration
		// with physical synthesis).
		moved := 0.0
		for i := range prob.Objs {
			if prob.Objs[i].IsPad || assign[i] < 0 {
				continue
			}
			cx := (float64(assign[i]%p.cols) + 0.5) * p.pitch
			cy := (float64(assign[i]/p.cols) + 0.5) * p.pitch
			moved += math.Hypot(pos[i].x-cx, pos[i].y-cy)
			pos[i] = coord{cx, cy}
		}
		if moved/p.pitch < 0.5*float64(len(prob.Objs)) {
			iter++
			break
		}
	}

	// Commit: final legal positions into the placement problem.
	perturb := 0.0
	movable := 0
	used := map[int]bool{}
	for i := range prob.Objs {
		o := &prob.Objs[i]
		if o.IsPad {
			continue
		}
		if assign[i] < 0 {
			return nil, fmt.Errorf("pack: object %d unassigned", i)
		}
		cx := (float64(assign[i]%p.cols) + 0.5) * p.pitch
		cy := (float64(assign[i]/p.cols) + 0.5) * p.pitch
		o.X = cx / sx
		o.Y = cy / sy
		perturb += math.Hypot(asic[i].x-cx, asic[i].y-cy) / p.pitch
		movable++
		used[assign[i]] = true
	}
	res := &Result{
		Rows:         p.rows,
		Cols:         p.cols,
		PLBOf:        assign,
		DieArea:      float64(p.rows*p.cols) * p.arch.Area,
		Perturbation: perturb / math.Max(1, float64(movable)),
		UsedPLBs:     len(used),
		Iterations:   iter,
	}
	return res, nil
}
