package pack

import (
	"testing"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/netlist"
	"vpga/internal/place"
	"vpga/internal/rtl"
	"vpga/internal/techmap"
)

// prep runs the front half of the flow and returns the compacted
// netlist plus an annealed placement.
func prep(t *testing.T, src string, arch *cells.PLBArch) (*netlist.Netlist, *place.Problem) {
	t.Helper()
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(2)
	mapped, err := techmap.Map(d, arch, techmap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := compact.Run(mapped.Netlist, arch)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := place.Build(cres.Netlist, place.ArchArea(arch), place.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	prob.Anneal(place.Options{Seed: 11, MovesPerObj: 4})
	return cres.Netlist, prob
}

const src = `
module m(input clk, input [7:0] a, input [7:0] b, input s, output [7:0] y);
  wire [7:0] sum = a + b;
  wire [7:0] lg = a & b;
  reg [7:0] r;
  always r <= s ? sum : lg;
  assign y = r;
endmodule`

func runPack(t *testing.T, arch *cells.PLBArch) (*netlist.Netlist, *place.Problem, *Result) {
	t.Helper()
	nl, prob := prep(t, src, arch)
	res, err := Run(nl, arch, prob, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return nl, prob, res
}

func TestPackLegalizesBothArchs(t *testing.T) {
	for _, arch := range []*cells.PLBArch{cells.LUTPLB(), cells.GranularPLB()} {
		nl, prob, res := runPack(t, arch)
		if res.Rows <= 0 || res.Cols <= 0 {
			t.Fatalf("%s: degenerate array", arch.Name)
		}
		// Every non-pad object assigned, and every PLB's contents pass
		// the exact slot matcher.
		occupants := map[int][]*cells.Config{}
		groupSeen := map[int32]int{}
		for i := range prob.Objs {
			o := &prob.Objs[i]
			if o.IsPad {
				continue
			}
			plb := res.PLBOf[i]
			if plb < 0 || plb >= res.Rows*res.Cols {
				t.Fatalf("%s: object %d assigned to PLB %d", arch.Name, i, plb)
			}
			n := nl.Node(o.Nodes[0])
			var cfg *cells.Config
			switch {
			case n.Kind == netlist.KindDFF:
				cfg = arch.Config("FF")
			case n.Type == "INV" || n.Type == "BUF":
				cfg = nil
			default:
				cfg = arch.Config(n.Type)
				if cfg == nil {
					t.Fatalf("%s: unknown config %q", arch.Name, n.Type)
				}
			}
			if cfg != nil {
				occupants[plb] = append(occupants[plb], cfg)
			}
			if n.Group != 0 {
				if prev, ok := groupSeen[n.Group]; ok && prev != plb {
					t.Fatalf("%s: FA group %d split across PLBs %d and %d", arch.Name, n.Group, prev, plb)
				}
				groupSeen[n.Group] = plb
			}
		}
		for plb, cfgs := range occupants {
			if !arch.CanPack(cfgs) {
				names := make([]string, len(cfgs))
				for i, c := range cfgs {
					names[i] = c.Name
				}
				t.Fatalf("%s: PLB %d overfull: %v", arch.Name, plb, names)
			}
		}
		if res.UsedPLBs == 0 || res.UsedPLBs > res.Rows*res.Cols {
			t.Fatalf("%s: UsedPLBs = %d", arch.Name, res.UsedPLBs)
		}
		t.Logf("%s: %d×%d array, %d used (%.0f%%), perturbation %.2f pitches, die %.0f",
			arch.Name, res.Rows, res.Cols, res.UsedPLBs, 100*res.Utilization(), res.Perturbation, res.DieArea)
	}
}

func TestGranularPacksDenser(t *testing.T) {
	// Sec. 3.2: the granular PLB packs this datapath into a smaller die
	// despite the larger per-PLB area.
	_, _, lres := runPack(t, cells.LUTPLB())
	_, _, gres := runPack(t, cells.GranularPLB())
	if gres.DieArea >= lres.DieArea*1.30 {
		t.Errorf("granular die %.0f not competitive with LUT die %.0f", gres.DieArea, lres.DieArea)
	}
	t.Logf("die area: granular %.0f vs LUT %.0f (ratio %.2f)", gres.DieArea, lres.DieArea, gres.DieArea/lres.DieArea)
}

func TestObjectsSnapToPLBCenters(t *testing.T) {
	_, prob, res := runPack(t, cells.GranularPLB())
	pitchX := prob.W / float64(res.Cols)
	pitchY := prob.H / float64(res.Rows)
	for i := range prob.Objs {
		o := &prob.Objs[i]
		if o.IsPad {
			continue
		}
		plb := res.PLBOf[i]
		cx := (float64(plb%res.Cols) + 0.5) * pitchX
		cy := (float64(plb/res.Cols) + 0.5) * pitchY
		if dx, dy := o.X-cx, o.Y-cy; dx*dx+dy*dy > 1e-12 {
			t.Fatalf("object %d at (%v,%v), want PLB center (%v,%v)", i, o.X, o.Y, cx, cy)
		}
	}
}

func TestAggFeasible(t *testing.T) {
	arch := cells.GranularPLB()
	p := &packer{arch: arch}
	// One PLB serves 3 mux + 1 nand.
	if !p.aggFeasible(map[cells.Role]int{cells.RoleMux: 3, cells.RoleNand: 1}, 1) {
		t.Error("3 mux + 1 nand must fit one granular PLB")
	}
	if p.aggFeasible(map[cells.Role]int{cells.RoleMux: 4}, 1) {
		t.Error("4 mux must not fit one granular PLB")
	}
	if !p.aggFeasible(map[cells.Role]int{cells.RoleMux: 4}, 2) {
		t.Error("4 mux must fit two granular PLBs")
	}
	if p.aggFeasible(map[cells.Role]int{cells.RoleLUT: 1}, 8) {
		t.Error("granular arch has no LUT slots")
	}
}

func TestSpiralFind(t *testing.T) {
	p := &packer{rows: 5, cols: 5}
	// Start at center (2,2)=12; accept only index 0 (corner).
	got := p.spiralFind(12, func(i int) bool { return i == 0 })
	if got != 0 {
		t.Fatalf("spiralFind = %d, want 0", got)
	}
	if got := p.spiralFind(12, func(i int) bool { return false }); got != -1 {
		t.Fatalf("spiralFind = %d, want -1", got)
	}
}

func TestCriticalityKeepsCriticalCellsStill(t *testing.T) {
	nl, prob := prep(t, src, cells.GranularPLB())
	// Mark half the objects highly critical.
	crit := make([]float64, len(prob.Objs))
	for i := range crit {
		if i%2 == 0 {
			crit[i] = 10
		}
	}
	if _, err := Run(nl, cells.GranularPLB(), prob, Options{Seed: 2, Criticality: crit}); err != nil {
		t.Fatal(err)
	}
}

func TestIterativeLoopReducesPerturbation(t *testing.T) {
	// The paper's packing runs in an iterative loop with physical
	// synthesis; more iterations must not make the legalization worse.
	nl, prob := prep(t, src, cells.GranularPLB())
	one, err := Run(nl, cells.GranularPLB(), prob, Options{Seed: 4, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	nl2, prob2 := prep(t, src, cells.GranularPLB())
	four, err := Run(nl2, cells.GranularPLB(), prob2, Options{Seed: 4, MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.DieArea > one.DieArea {
		t.Errorf("more pack iterations grew the array: %.0f vs %.0f", four.DieArea, one.DieArea)
	}
	t.Logf("perturbation: 1 iter %.2f, 4 iters %.2f pitches", one.Perturbation, four.Perturbation)
}

func TestLowerBoundRespectsFFs(t *testing.T) {
	// A design of pure flip-flops needs at least one PLB per FF.
	arch := cells.GranularPLB()
	nl := netlist.New("ffs")
	a := nl.AddInput("a")
	prev := a
	for i := 0; i < 9; i++ {
		prev = nl.AddDFF(fmtInt("r", i), prev)
	}
	nl.AddOutput("y", prev)
	prob, err := place.Build(nl, place.ArchArea(arch), place.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(nl, arch, prob, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows*res.Cols < 9 {
		t.Fatalf("array %dx%d cannot host 9 FFs at 1 per PLB", res.Rows, res.Cols)
	}
}

func fmtInt(p string, i int) string {
	return p + string(rune('0'+i))
}
