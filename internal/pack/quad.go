package pack

import (
	"fmt"
	"math"
	"sort"

	"vpga/internal/cells"
)

// coord is a position in array coordinates (PLB pitch units × pitch).
type coord struct{ x, y float64 }

// region is a rectangle of PLBs [r0,r1) × [c0,c1).
type region struct{ r0, r1, c0, c1 int }

func (r region) plbs() int { return (r.r1 - r.r0) * (r.c1 - r.c0) }

func (r region) contains(p *packer, pt coord) bool {
	c := int(pt.x / p.pitch)
	row := int(pt.y / p.pitch)
	return row >= r.r0 && row < r.r1 && c >= r.c0 && c < r.c1
}

func (r region) center(p *packer) coord {
	return coord{
		x: (float64(r.c0) + float64(r.c1-r.c0)/2) * p.pitch,
		y: (float64(r.r0) + float64(r.r1-r.r0)/2) * p.pitch,
	}
}

// quadrisect recursively partitions objects into PLB regions, moving
// overflow to sibling quadrants (least-critical, least-displacement
// first), and assigns single-PLB regions into assign.
func (p *packer) quadrisect(pos []coord, assign []int) error {
	var all []int32
	for i := range p.prob.Objs {
		if !p.prob.Objs[i].IsPad {
			all = append(all, int32(i))
		}
	}
	root := region{0, p.rows, 0, p.cols}
	return p.quadRec(root, all, pos, assign)
}

func (p *packer) quadRec(reg region, objs []int32, pos []coord, assign []int) error {
	if len(objs) == 0 {
		return nil
	}
	if reg.plbs() == 1 {
		idx := reg.r0*p.cols + reg.c0
		for _, o := range objs {
			assign[o] = idx
		}
		return nil
	}
	// Split the longer side first; quadrants may degenerate to halves
	// for 1-wide regions.
	rm := (reg.r0 + reg.r1) / 2
	cm := (reg.c0 + reg.c1) / 2
	var quads []region
	for _, q := range []region{
		{reg.r0, maxInt(rm, reg.r0+1), reg.c0, maxInt(cm, reg.c0+1)},
		{reg.r0, maxInt(rm, reg.r0+1), maxInt(cm, reg.c0+1), reg.c1},
		{maxInt(rm, reg.r0+1), reg.r1, reg.c0, maxInt(cm, reg.c0+1)},
		{maxInt(rm, reg.r0+1), reg.r1, maxInt(cm, reg.c0+1), reg.c1},
	} {
		if q.r1 > q.r0 && q.c1 > q.c0 && !containsRegion(quads, q) {
			quads = append(quads, q)
		}
	}
	buckets := make([][]int32, len(quads))
	for _, o := range objs {
		qi := p.nearestQuad(quads, pos[o])
		buckets[qi] = append(buckets[qi], o)
	}
	p.balance(quads, buckets, pos)
	for qi, q := range quads {
		if err := p.quadRec(q, buckets[qi], pos, assign); err != nil {
			return err
		}
	}
	return nil
}

func containsRegion(rs []region, q region) bool {
	for _, r := range rs {
		if r == q {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (p *packer) nearestQuad(quads []region, pt coord) int {
	for qi, q := range quads {
		if q.contains(p, pt) {
			return qi
		}
	}
	// Outside all (numerical edge): nearest center.
	best, bestD := 0, math.Inf(1)
	for qi, q := range quads {
		c := q.center(p)
		d := math.Hypot(c.x-pt.x, c.y-pt.y)
		if d < bestD {
			best, bestD = qi, d
		}
	}
	return best
}

// balance moves objects out of over-demanded quadrants into feasible
// siblings until every quadrant's aggregate demand fits its supply.
// Move order: least critical first, then smallest displacement.
// Demand maps are maintained incrementally so large designs avoid
// rescanning buckets per candidate.
func (p *packer) balance(quads []region, buckets [][]int32, pos []coord) {
	demands := make([]map[cells.Role]int, len(quads))
	for qi := range quads {
		demands[qi] = p.roleDemand(buckets[qi])
	}
	addRoles := func(d map[cells.Role]int, cfg *cells.Config, sign int) {
		for _, r := range cfg.Roles {
			d[r] += sign
		}
	}
	for qi := range quads {
		if p.aggFeasible(demands[qi], quads[qi].plbs()) {
			continue
		}
		// Candidates to evict, cheapest first.
		cands := append([]int32(nil), buckets[qi]...)
		sort.SliceStable(cands, func(a, b int) bool {
			ca, cb := p.crit[cands[a]], p.crit[cands[b]]
			if ca != cb {
				return ca < cb
			}
			// Prefer objects nearest a sibling boundary (minimal
			// perturbation when moved).
			return p.boundaryDist(quads[qi], pos[cands[a]]) < p.boundaryDist(quads[qi], pos[cands[b]])
		})
		moved := map[int32]int{} // object -> receiving quadrant
		for _, o := range cands {
			cfg := p.objCfg[o]
			if cfg == nil {
				continue // absorbed inverters never constrain resources
			}
			if p.aggFeasible(demands[qi], quads[qi].plbs()) {
				break
			}
			// Receiving sibling: nearest center with spare capacity for
			// this object's roles.
			bestQ, bestD := -1, math.Inf(1)
			for qj := range quads {
				if qj == qi {
					continue
				}
				addRoles(demands[qj], cfg, 1)
				ok := p.aggFeasible(demands[qj], quads[qj].plbs())
				addRoles(demands[qj], cfg, -1)
				if !ok {
					continue
				}
				c := quads[qj].center(p)
				d := math.Hypot(c.x-pos[o].x, c.y-pos[o].y)
				if d < bestD {
					bestQ, bestD = qj, d
				}
			}
			if bestQ < 0 {
				continue // overfull everywhere; the leaf pass will retry globally
			}
			addRoles(demands[qi], cfg, -1)
			addRoles(demands[bestQ], cfg, 1)
			moved[o] = bestQ
			// Nudge the position toward the receiving region so deeper
			// levels keep it there.
			c := quads[bestQ].center(p)
			pos[o] = coord{(pos[o].x + 2*c.x) / 3, (pos[o].y + 2*c.y) / 3}
		}
		if len(moved) > 0 {
			var keep []int32
			for _, o := range buckets[qi] {
				if qj, gone := moved[o]; gone {
					buckets[qj] = append(buckets[qj], o)
				} else {
					keep = append(keep, o)
				}
			}
			buckets[qi] = keep
		}
	}
}

func (p *packer) boundaryDist(q region, pt coord) float64 {
	left := pt.x - float64(q.c0)*p.pitch
	right := float64(q.c1)*p.pitch - pt.x
	top := pt.y - float64(q.r0)*p.pitch
	bottom := float64(q.r1)*p.pitch - pt.y
	return math.Min(math.Min(left, right), math.Min(top, bottom))
}

func removeObj(xs []int32, o int32) []int32 {
	for i, x := range xs {
		if x == o {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// resolveLeaves enforces per-PLB packing feasibility: every PLB's
// assigned configuration set must pass the exact slot matcher; extras
// spiral outward to the nearest PLB with room.
func (p *packer) resolveLeaves(pos []coord, assign []int) error {
	n := p.rows * p.cols
	occupants := make([][]int32, n)
	for i := range p.prob.Objs {
		if p.prob.Objs[i].IsPad || assign[i] < 0 {
			continue
		}
		occupants[assign[i]] = append(occupants[assign[i]], int32(i))
	}
	canHost := func(plb int, extra int32) bool {
		var cfgs []*cells.Config
		for _, o := range occupants[plb] {
			if c := p.objCfg[o]; c != nil {
				cfgs = append(cfgs, c)
			}
		}
		if c := p.objCfg[extra]; c != nil {
			cfgs = append(cfgs, c)
		}
		return p.arch.CanPack(cfgs)
	}
	for plb := 0; plb < n; plb++ {
		var cfgs []*cells.Config
		var resObjs []int32
		for _, o := range occupants[plb] {
			if c := p.objCfg[o]; c != nil {
				cfgs = append(cfgs, c)
				resObjs = append(resObjs, o)
			}
		}
		if p.arch.CanPack(cfgs) {
			continue
		}
		// Evict least-critical occupants until the remainder fits.
		sort.SliceStable(resObjs, func(a, b int) bool { return p.crit[resObjs[a]] < p.crit[resObjs[b]] })
		var evicted []int32
		for _, o := range resObjs {
			occupants[plb] = removeObj(occupants[plb], o)
			evicted = append(evicted, o)
			var rest []*cells.Config
			for _, q := range occupants[plb] {
				if c := p.objCfg[q]; c != nil {
					rest = append(rest, c)
				}
			}
			if p.arch.CanPack(rest) {
				break
			}
		}
		for _, o := range evicted {
			target := p.spiralFind(plb, func(cand int) bool { return canHost(cand, o) })
			if target < 0 {
				return fmt.Errorf("pack: PLB array %d×%d cannot host object %d", p.rows, p.cols, o)
			}
			occupants[target] = append(occupants[target], o)
			assign[o] = target
		}
	}
	return nil
}

// spiralFind scans PLBs in increasing Chebyshev distance from start
// and returns the first one satisfying ok, or -1.
func (p *packer) spiralFind(start int, ok func(int) bool) int {
	sr, sc := start/p.cols, start%p.cols
	maxR := maxInt(p.rows, p.cols)
	for d := 1; d <= maxR; d++ {
		for r := sr - d; r <= sr+d; r++ {
			if r < 0 || r >= p.rows {
				continue
			}
			for c := sc - d; c <= sc+d; c++ {
				if c < 0 || c >= p.cols {
					continue
				}
				if maxInt(absInt(r-sr), absInt(c-sc)) != d {
					continue
				}
				idx := r*p.cols + c
				if ok(idx) {
					return idx
				}
			}
		}
	}
	return -1
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
