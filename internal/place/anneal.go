package place

// Deterministic parallel annealing engine.
//
// Moves are generated in fixed-size batches from counter-based
// per-proposal RNG streams: proposal m of a pass derives every random
// draw from mix64(passKey + m·golden), so its outcome depends only on
// (seed, pass, m) and the placement state at the start of its batch —
// never on which worker evaluated it. Within a batch, proposals are
// evaluated against the batch-start state (in parallel when
// Options.Workers > 1) and committed strictly in proposal order; a
// proposal whose objects' nets were touched by an earlier accepted
// commit in the same batch is skipped deterministically. The result is
// bit-identical at any worker count: one worker runs the same
// algorithm fused, skipping conflicted proposals before evaluating
// them — which provably cannot change any outcome, because an
// unconflicted proposal's nets (and therefore every position and box
// its delta reads) are untouched since the batch started.

import (
	"math"
	"math/bits"
	"sync"
)

// annealBatch is the number of proposals per batch. It is part of the
// algorithm definition (results change with it), so it is a constant,
// not an option: determinism across worker counts requires the batch
// boundaries to be fixed. Small enough to keep intra-batch conflict
// skips rare, large enough to amortize the parallel dispatch.
const annealBatch = 32

// expRejectFactor: a proposal with delta ≥ expRejectFactor·temp is
// rejected without evaluating exp(-delta/temp) — the acceptance
// probability is below 1e-13, beneath the resolution of the uniform
// draw for any practical schedule length. Part of the algorithm
// definition, like annealBatch.
const expRejectFactor = 30.0

// mix64 is the splitmix64 finalizer: a bijective avalanche mix used to
// derive decorrelated per-proposal RNG streams from a counter.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

const golden64 = 0x9e3779b97f4a7c15

// prng is a tiny counter-based generator: state advances by the golden
// ratio and every output is a full mix64 avalanche (splitmix64).
type prng uint64

// propRNG returns the RNG stream of proposal m under passKey.
func propRNG(passKey uint64, m int) prng {
	return prng(mix64(passKey + uint64(m)*golden64))
}

func (r *prng) next() uint64 {
	*r += golden64
	return mix64(uint64(*r))
}

// float64v returns a uniform draw in [0,1) with 53 bits of precision.
func (r *prng) float64v() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0,n) (Lemire's multiply-shift).
func (r *prng) intn(n int32) int32 {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int32(hi)
}

// slot holds one evaluated proposal: the move, its pre-drawn
// acceptance uniform, the cost delta against the batch-start state,
// and the tentative boxes of every net the move touches. oi and oj
// (oj = -1 for displacements) are always populated, even for invalid
// proposals — the commit loop's conflict check keys off them.
type slot struct {
	swap    bool
	invalid bool // rejected before evaluation (self-swap, blocked site)
	oi, oj  int32
	nx, ny  float64
	u       float64
	delta   float64
	nets    []int32
	boxes   []netBox
	costs   []float64 // weighted cost of each tentative box
}

// evalScratch is per-worker evaluation state: the shared-net marks a
// swap evaluation needs. Worker-local so parallel evaluations never
// contend.
type evalScratch struct {
	mark  []int64
	epoch int64
}

// engineState is the annealing engine's reusable scratch, lazily sized
// on first use and shared across passes.
type engineState struct {
	slots     []slot
	batchMark []int64
	batchEp   int64
	scratch   []evalScratch // one per worker
}

func (p *Problem) engine(workers int) *engineState {
	e := &p.eng
	if e.slots == nil {
		e.slots = make([]slot, annealBatch)
	}
	if len(e.batchMark) < len(p.Nets) {
		e.batchMark = make([]int64, len(p.Nets))
		e.batchEp = 0
	}
	for len(e.scratch) < workers {
		e.scratch = append(e.scratch, evalScratch{})
	}
	for i := range e.scratch {
		if len(e.scratch[i].mark) < len(p.Nets) {
			e.scratch[i].mark = make([]int64, len(p.Nets))
			e.scratch[i].epoch = 0
		}
	}
	return e
}

// genMove draws the head of proposal m's stream: the moved object and
// the move kind. The kind comes from the top bits of the object draw's
// discarded low multiply word (one-in-eight swaps), saving a full draw
// per proposal. Positions are not consulted, so the fused path can run
// its conflict check before any further draws.
func genMove(r *prng, movable []int32) (oi int32, swap bool, oj int32) {
	hi, lo := bits.Mul64(r.next(), uint64(len(movable)))
	oi = movable[hi]
	if lo>>61 == 0 {
		return oi, true, movable[r.intn(int32(len(movable)))]
	}
	return oi, false, -1
}

// evalDisplace evaluates a displacement proposal against the current
// state into s. The target position derives from the object's current
// coordinates, so it must run before any same-batch commit touches the
// object's nets (the engine guarantees this via the conflict skip).
func (p *Problem) evalDisplace(r *prng, oi int32, window float64, s *slot) {
	nx := clamp(p.x[oi]+(r.float64v()*2-1)*window, 0, p.W)
	ny := clamp(p.y[oi]+(r.float64v()*2-1)*window, 0, p.H)
	u := r.float64v()
	s.swap, s.oi, s.oj = false, oi, -1
	if p.blocked != nil && p.blocked(nx, ny) {
		s.invalid = true
		return
	}
	s.invalid = false
	s.nx, s.ny, s.u = nx, ny, u
	s.nets, s.boxes, s.costs = s.nets[:0], s.boxes[:0], s.costs[:0]
	ox, oy := p.x[oi], p.y[oi]
	delta := 0.0
	for _, ni := range p.objNets(oi) {
		// 2-pin nets (the bulk) never build a box at evaluation time:
		// |Δx|+|Δy| is the box hpwl bit for bit (boundaries are the
		// same subtractions), and commitSlot rebuilds the box from the
		// committed positions only on acceptance. Wider nets store
		// their tentative box in s.boxes, in s.nets order.
		var c float64
		if p.pinOff[ni+1]-p.pinOff[ni] == 2 {
			pins := p.netPins(ni)
			oo := pins[0]
			if oo == oi {
				oo = pins[1]
			}
			c = p.netW[ni] * (math.Abs(nx-p.x[oo]) + math.Abs(ny-p.y[oo]))
		} else {
			nb := p.displacedBoxWide(ni, oi, ox, oy, nx, ny)
			c = p.netW[ni] * nb.hpwl()
			s.boxes = append(s.boxes, nb)
		}
		s.nets = append(s.nets, ni)
		s.costs = append(s.costs, c)
		delta += c - p.boxCostW[ni]
	}
	s.delta = delta
}

// evalSwap evaluates a swap proposal against the current state into s.
// Nets touching only one end take the incremental boundary update;
// only nets shared by both ends need a full rescan at the swapped
// positions.
func (p *Problem) evalSwap(r *prng, oi, oj int32, s *slot, ws *evalScratch) {
	u := r.float64v()
	s.swap, s.oi, s.oj = true, oi, oj
	if oi == oj {
		s.invalid = true
		return
	}
	xi, yi := p.x[oi], p.y[oi]
	xj, yj := p.x[oj], p.y[oj]
	// A swap moves each object onto the other's site; both targets
	// must be usable (an endpoint may sit on a defective site if an
	// external caller parked it there).
	if p.blocked != nil && (p.blocked(xj, yj) || p.blocked(xi, yi)) {
		s.invalid = true
		return
	}
	s.invalid = false
	s.u = u
	s.nets, s.boxes, s.costs = s.nets[:0], s.boxes[:0], s.costs[:0]
	epoch := ws.epoch + 1
	ws.epoch += 2 // epoch marks oj's nets, epoch+1 marks shared nets already handled
	for _, ni := range p.objNets(oj) {
		ws.mark[ni] = epoch
	}
	delta := 0.0
	for _, ni := range p.objNets(oi) {
		var c float64
		deg := p.pinOff[ni+1] - p.pinOff[ni]
		if ws.mark[ni] == epoch {
			// Shared by both ends. A shared 2-pin net is exactly
			// {oi, oj}: swapping leaves the point set — and therefore
			// the cost — untouched.
			ws.mark[ni] = epoch + 1
			if deg == 2 {
				c = p.boxCostW[ni]
			} else {
				nb := p.computeBoxSwapped(ni, oi, oj)
				c = p.netW[ni] * nb.hpwl()
				s.boxes = append(s.boxes, nb)
			}
		} else if deg == 2 {
			pins := p.netPins(ni)
			oo := pins[0]
			if oo == oi {
				oo = pins[1]
			}
			c = p.netW[ni] * (math.Abs(xj-p.x[oo]) + math.Abs(yj-p.y[oo]))
		} else {
			nb := p.displacedBoxWide(ni, oi, xi, yi, xj, yj)
			c = p.netW[ni] * nb.hpwl()
			s.boxes = append(s.boxes, nb)
		}
		s.nets = append(s.nets, ni)
		s.costs = append(s.costs, c)
		delta += c - p.boxCostW[ni]
	}
	for _, ni := range p.objNets(oj) {
		if ws.mark[ni] == epoch+1 {
			continue // shared, handled above
		}
		var c float64
		if p.pinOff[ni+1]-p.pinOff[ni] == 2 {
			pins := p.netPins(ni)
			oo := pins[0]
			if oo == oj {
				oo = pins[1]
			}
			c = p.netW[ni] * (math.Abs(xi-p.x[oo]) + math.Abs(yi-p.y[oo]))
		} else {
			nb := p.displacedBoxWide(ni, oj, xj, yj, xi, yi)
			c = p.netW[ni] * nb.hpwl()
			s.boxes = append(s.boxes, nb)
		}
		s.nets = append(s.nets, ni)
		s.costs = append(s.costs, c)
		delta += c - p.boxCostW[ni]
	}
	s.delta = delta
}

// evalProposal fills slot s for proposal m of a pass, evaluated
// against the current (batch-start) state.
func (p *Problem) evalProposal(passKey uint64, m int, movable []int32, window float64, s *slot, ws *evalScratch) {
	r := propRNG(passKey, m)
	oi, swap, oj := genMove(&r, movable)
	if swap {
		p.evalSwap(&r, oi, oj, s, ws)
	} else {
		p.evalDisplace(&r, oi, window, s)
	}
}

// metropolis is the acceptance rule shared by every path (fused and
// parallel run the identical instruction sequence, so it is one
// deterministic algorithm). The cheap bounds 1-x ≤ exp(-x) ≤ 1/(1+x)
// resolve most uniforms without evaluating exp; only draws landing in
// the narrow gap between the bounds pay for the real thing.
func metropolis(delta, temp, u float64) bool {
	if delta <= 0 {
		return true
	}
	if delta >= expRejectFactor*temp {
		return false
	}
	x := delta / temp
	if u < 1-x {
		return true
	}
	if u*(1+x) >= 1 {
		return false
	}
	return u < math.Exp(-x)
}

// conflicted reports whether a proposal moving oi (and oj, for swaps)
// collides with an earlier accepted commit in the current batch. The
// check keys off the objects' incident nets: an accepted move marks
// every net it touched, and any state a proposal's delta reads —
// positions of objects in its nets, boxes of its nets — is reachable
// only through those nets.
func (p *Problem) conflicted(e *engineState, oi int32, swap bool, oj int32) bool {
	for _, ni := range p.objNets(oi) {
		if e.batchMark[ni] == e.batchEp {
			return true
		}
	}
	if swap {
		for _, ni := range p.objNets(oj) {
			if e.batchMark[ni] == e.batchEp {
				return true
			}
		}
	}
	return false
}

// commitSlot applies an evaluated, unconflicted proposal: the
// Metropolis test on its pre-drawn uniform, then — on acceptance —
// positions (both the SoA mirror and the Obj fields), cached boxes,
// and the batch conflict marks.
func (p *Problem) commitSlot(e *engineState, s *slot, temp float64) bool {
	if !metropolis(s.delta, temp, s.u) {
		return false
	}
	if s.swap {
		oi, oj := s.oi, s.oj
		p.x[oi], p.x[oj] = p.x[oj], p.x[oi]
		p.y[oi], p.y[oj] = p.y[oj], p.y[oi]
		a, b := &p.Objs[oi], &p.Objs[oj]
		a.X, a.Y, b.X, b.Y = b.X, b.Y, a.X, a.Y
	} else {
		p.x[s.oi], p.y[s.oi] = s.nx, s.ny
		o := &p.Objs[s.oi]
		o.X, o.Y = s.nx, s.ny
	}
	bi := 0
	for k, ni := range s.nets {
		if p.pinOff[ni+1]-p.pinOff[ni] == 2 {
			// Rebuilt from the just-committed positions; the eval
			// stored only the cost.
			a, b := p.pinIdx[p.pinOff[ni]], p.pinIdx[p.pinOff[ni]+1]
			p.boxes[ni] = box2(p.x[a], p.y[a], p.x[b], p.y[b])
		} else {
			p.boxes[ni] = s.boxes[bi]
			bi++
		}
		p.boxCostW[ni] = s.costs[k]
		e.batchMark[ni] = e.batchEp
	}
	return true
}

// runBatchFused is the single-worker path: proposals are processed in
// order, each one conflict-checked before evaluation (an unconflicted
// proposal sees exactly the batch-start state, so skipping early is
// outcome-identical to the parallel path's evaluate-then-skip).
func (p *Problem) runBatchFused(e *engineState, passKey uint64, base, n int, movable []int32, window, temp float64) (accepted, skipped int) {
	s := &e.slots[0]
	ws := &e.scratch[0]
	for m := base; m < base+n; m++ {
		r := propRNG(passKey, m)
		oi, swap, oj := genMove(&r, movable)
		if p.conflicted(e, oi, swap, oj) {
			skipped++
			continue
		}
		if swap {
			p.evalSwap(&r, oi, oj, s, ws)
		} else {
			p.evalDisplace(&r, oi, window, s)
		}
		if s.invalid {
			continue
		}
		if p.commitSlot(e, s, temp) {
			accepted++
		}
	}
	return accepted, skipped
}

// annealPool owns the evaluation workers of one Anneal call.
type annealPool struct {
	work chan evalChunk
	wg   sync.WaitGroup
}

type evalChunk struct {
	lo, hi  int // slot indexes within the batch
	base    int // first proposal index of the batch
	passKey uint64
	movable []int32
	window  float64
	ws      *evalScratch
}

func (p *Problem) startPool(workers int) *annealPool {
	pool := &annealPool{work: make(chan evalChunk)}
	for w := 1; w < workers; w++ {
		go func() {
			for c := range pool.work {
				for i := c.lo; i < c.hi; i++ {
					p.evalProposal(c.passKey, c.base+i, c.movable, c.window, &p.eng.slots[i], c.ws)
				}
				pool.wg.Done()
			}
		}()
	}
	return pool
}

func (pool *annealPool) stop() { close(pool.work) }

// runBatchParallel evaluates a batch's proposals concurrently against
// the batch-start state (slots are disjoint per proposal; all shared
// state is read-only during evaluation), then commits serially in
// proposal order with the same conflict-skip rule — and the same
// skip/invalid precedence — as the fused path.
func (p *Problem) runBatchParallel(e *engineState, pool *annealPool, workers int, passKey uint64, base, n int, movable []int32, window, temp float64) (accepted, skipped int) {
	per := (n + workers - 1) / workers
	lo := per // chunk 0 runs on this goroutine
	for w := 1; w < workers && lo < n; w++ {
		hi := minInt(lo+per, n)
		pool.wg.Add(1)
		pool.work <- evalChunk{lo: lo, hi: hi, base: base, passKey: passKey,
			movable: movable, window: window, ws: &e.scratch[w]}
		lo = hi
	}
	for i := 0; i < minInt(per, n); i++ {
		p.evalProposal(passKey, base+i, movable, window, &e.slots[i], &e.scratch[0])
	}
	pool.wg.Wait()
	for i := 0; i < n; i++ {
		s := &e.slots[i]
		if p.conflicted(e, s.oi, s.swap, s.oj) {
			skipped++
			continue
		}
		if s.invalid {
			continue
		}
		if p.commitSlot(e, s, temp) {
			accepted++
		}
	}
	return accepted, skipped
}

// runPass executes one temperature pass of `moves` proposals and
// returns the accepted and conflict-skipped counts. Identical results
// at any worker count.
func (p *Problem) runPass(e *engineState, pool *annealPool, workers int, passKey uint64, moves int, movable []int32, window, temp float64) (accepted, skipped int) {
	for base := 0; base < moves; base += annealBatch {
		n := minInt(annealBatch, moves-base)
		e.batchEp++
		var acc, skip int
		if workers > 1 && n > 1 {
			acc, skip = p.runBatchParallel(e, pool, workers, passKey, base, n, movable, window, temp)
		} else {
			acc, skip = p.runBatchFused(e, passKey, base, n, movable, window, temp)
		}
		accepted += acc
		skipped += skip
	}
	p.stats.Proposed += int64(moves)
	p.stats.Accepted += int64(accepted)
	p.stats.Skipped += int64(skipped)
	return accepted, skipped
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
