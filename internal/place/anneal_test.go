package place

import (
	"math"
	"math/rand"
	"testing"
)

// TestSoAKernelMatchesScratchRandomOps is the property test for the
// SoA incremental cost kernel: a long randomized sequence of committed
// displacements and swaps, cross-checked for exact float equality
// against from-scratch computeBox rebuilds along the way. Unlike the
// pass-level test this drives the kernel primitives directly, with
// wide unclamped jumps, degenerate moves (zero-length displacements,
// repeated positions that stack objects on shared boundaries), and
// interleaved external perturbations absorbed by initBoxes.
func TestSoAKernelMatchesScratchRandomOps(t *testing.T) {
	p, _, _ := buildProblem(t, src, 21)
	p.initBoxes()
	checkBoxes(t, p, "init")
	rng := rand.New(rand.NewSource(99))
	movable := p.movable()
	e := p.engine(1)
	var s slot
	ws := &e.scratch[0]
	for op := 0; op < 4000; op++ {
		switch rng.Intn(10) {
		case 0, 1: // swap via the engine slot path
			oi := movable[rng.Intn(len(movable))]
			oj := movable[rng.Intn(len(movable))]
			r := prng(rng.Uint64())
			p.evalSwap(&r, oi, oj, &s, ws)
			if !s.invalid {
				e.batchEp++
				p.commitSlot(e, &s, 1e18) // always accept
			}
		case 2: // zero-length displacement (old == new on every boundary)
			oi := movable[rng.Intn(len(movable))]
			p.displaceDelta(oi, p.x[oi], p.y[oi])
			p.commitDisplace(oi, p.x[oi], p.y[oi])
		case 3: // stack exactly onto another object's position
			oi := movable[rng.Intn(len(movable))]
			oj := movable[rng.Intn(len(movable))]
			p.displaceDelta(oi, p.x[oj], p.y[oj])
			p.commitDisplace(oi, p.x[oj], p.y[oj])
		default: // uniform long-range displacement
			oi := movable[rng.Intn(len(movable))]
			nx, ny := rng.Float64()*p.W, rng.Float64()*p.H
			p.displaceDelta(oi, nx, ny)
			p.commitDisplace(oi, nx, ny)
		}
		if op%500 == 499 {
			checkBoxes(t, p, "mid-sequence")
		}
	}
	checkBoxes(t, p, "final")
	// External writers bypass the kernel; initBoxes must resync the SoA
	// mirror and rebuild.
	for _, oi := range movable {
		p.Objs[oi].X = rng.Float64() * p.W
		p.Objs[oi].Y = rng.Float64() * p.H
	}
	p.initBoxes()
	checkBoxes(t, p, "after external perturbation")
}

// TestAnnealDeterministicAcrossWorkers: the parallel annealing engine
// must produce bit-identical placements at any worker count — every
// object position, the final HPWL, and the solver counters.
func TestAnnealDeterministicAcrossWorkers(t *testing.T) {
	type result struct {
		xs, ys []float64
		hpwl   float64
		stats  Stats
	}
	run := func(workers int) result {
		p, _, _ := buildProblem(t, src, 31)
		if err := p.Anneal(Options{Seed: 31, MovesPerObj: 4, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		r := result{hpwl: p.HPWL(), stats: p.Stats()}
		for i := range p.Objs {
			r.xs = append(r.xs, p.Objs[i].X)
			r.ys = append(r.ys, p.Objs[i].Y)
		}
		return r
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.hpwl != ref.hpwl {
			t.Fatalf("workers=%d: HPWL %v, workers=1: %v", workers, got.hpwl, ref.hpwl)
		}
		if got.stats != ref.stats {
			t.Fatalf("workers=%d: stats %+v, workers=1: %+v", workers, got.stats, ref.stats)
		}
		for i := range ref.xs {
			if got.xs[i] != ref.xs[i] || got.ys[i] != ref.ys[i] {
				t.Fatalf("workers=%d: object %d at (%v,%v), workers=1 at (%v,%v)",
					workers, i, got.xs[i], got.ys[i], ref.xs[i], ref.ys[i])
			}
		}
	}
}

// TestAnnealWorkersWithBlockedSites: worker-count invariance must hold
// with a defect map installed, where proposals can go invalid.
func TestAnnealWorkersWithBlockedSites(t *testing.T) {
	blocked := func(xn, yn float64) bool { return xn < 0.25 && yn < 0.5 }
	run := func(workers int) []float64 {
		_, nl, arch := buildProblem(t, src, 32)
		p, err := Build(nl, ArchArea(arch), Options{Seed: 32, Blocked: blocked})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Anneal(Options{Seed: 32, MovesPerObj: 4, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := range p.Objs {
			out = append(out, p.Objs[i].X, p.Objs[i].Y)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{3, 8} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d diverged at coordinate %d: %v vs %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestRunPassFusedMatchesParallel pins the fused/parallel equivalence
// at the pass level: identical batch streams applied to identical
// problems must leave identical state and identical accept/skip
// counts, at several temperatures and window sizes.
func TestRunPassFusedMatchesParallel(t *testing.T) {
	build := func() *Problem {
		p, _, _ := buildProblem(t, src, 33)
		p.initBoxes()
		return p
	}
	a, b := build(), build()
	movable := a.movable()
	ea := a.engine(1)
	workers := 4
	eb := b.engine(workers)
	pool := b.startPool(workers)
	defer pool.stop()
	window := math.Max(a.W, a.H) * 0.2
	for pi, temp := range []float64{50, 5, 0.5, 1e-9} {
		passKey := mix64(777 + uint64(pi)*golden64)
		accA, skipA := a.runPass(ea, nil, 1, passKey, 600, movable, window, temp)
		accB, skipB := b.runPass(eb, pool, workers, passKey, 600, b.movable(), window, temp)
		if accA != accB || skipA != skipB {
			t.Fatalf("pass %d: fused (acc=%d skip=%d) vs parallel (acc=%d skip=%d)",
				pi, accA, skipA, accB, skipB)
		}
		for i := range a.Objs {
			if a.Objs[i].X != b.Objs[i].X || a.Objs[i].Y != b.Objs[i].Y {
				t.Fatalf("pass %d: object %d diverged", pi, i)
			}
		}
		checkBoxes(t, b, "parallel pass")
	}
}

// TestPropRNGStreamsDecorrelated guards the stream construction:
// adjacent proposals must not share draws (the raw counter scheme
// without the mix64 avalanche would make proposal m's k-th draw equal
// proposal m+1's (k-1)-th).
func TestPropRNGStreamsDecorrelated(t *testing.T) {
	seen := map[uint64]bool{}
	for m := 0; m < 100; m++ {
		r := propRNG(12345, m)
		for k := 0; k < 8; k++ {
			v := r.next()
			if seen[v] {
				t.Fatalf("duplicate draw %#x across proposal streams", v)
			}
			seen[v] = true
		}
	}
}
