package place

import (
	"vpga/internal/cells"
	"vpga/internal/netlist"
)

// ArchArea returns an AreaFunc resolving node types against the given
// architecture: configuration instances use their configuration area,
// everything else (INV, BUF, DFF, raw component cells in flow a) the
// component cell area.
func ArchArea(arch *cells.PLBArch) AreaFunc {
	lib := arch.Library()
	return func(n *netlist.Node) float64 {
		if cfg := arch.Config(n.Type); cfg != nil {
			return cfg.Area
		}
		if c := lib.Cell(n.Type); c != nil {
			return c.Area
		}
		// Unknown type: charge a NAND2 equivalent so totals stay sane.
		return 1
	}
}
