package place

// Incremental placement cost kernel: every net carries a cached
// bounding box with per-boundary occupancy counts (the VPR scheme), so
// a move proposal costs O(incident nets) instead of O(incident pins).
// A rescan — restricted to the single broken boundary — happens only
// when the sole object holding that boundary moves inward, exactly the
// case where the new boundary is unknowable without a scan.
//
// The kernel runs entirely on a flat SoA mirror of the problem —
// contiguous coordinate arrays (x, y), per-net weights (netW), and the
// net↔object adjacency in CSR form (pinIdx/pinOff, objNetIdx/
// objNetOff) — so a boundary scan streams over packed float64/int32
// arrays instead of chasing through 100-byte Obj structs. Obj.X/Y stay
// the external interface: initBoxes resyncs the mirror from them, and
// every committed move writes both.
//
// The cached boxes store the same float64 coordinates a scratch scan
// would select (boundaries are selections, never arithmetic), so the
// cached cost matches Problem.HPWL() bit for bit; the place tests
// cross-check this invariant after every annealing pass.

// netBox is one net's cached bounding box. The *N fields count how
// many of the net's objects sit exactly on each boundary.
type netBox struct {
	xMin, xMax, yMin, yMax     float64
	xMinN, xMaxN, yMinN, yMaxN int32
}

// hpwl is the box's half-perimeter wirelength.
func (b *netBox) hpwl() float64 {
	return (b.xMax - b.xMin) + (b.yMax - b.yMin)
}

// addPoint folds one object position into the box.
func (b *netBox) addPoint(x, y float64) {
	if x < b.xMin {
		b.xMin, b.xMinN = x, 1
	} else if x == b.xMin {
		b.xMinN++
	}
	if x > b.xMax {
		b.xMax, b.xMaxN = x, 1
	} else if x == b.xMax {
		b.xMaxN++
	}
	if y < b.yMin {
		b.yMin, b.yMinN = y, 1
	} else if y == b.yMin {
		b.yMinN++
	}
	if y > b.yMax {
		b.yMax, b.yMaxN = y, 1
	} else if y == b.yMax {
		b.yMaxN++
	}
}

// updMax adjusts one upper boundary for a coordinate moving old→new.
// It reports false when the sole boundary holder moved inward, which
// requires a rescan.
func updMax(max *float64, n *int32, old, new float64) bool {
	switch {
	case new > *max:
		*max, *n = new, 1
	case new == *max:
		if old != *max {
			*n++
		}
	default: // new < *max
		if old == *max {
			if *n == 1 {
				return false
			}
			*n--
		}
	}
	return true
}

// updMin is the lower-boundary mirror of updMax.
func updMin(min *float64, n *int32, old, new float64) bool {
	switch {
	case new < *min:
		*min, *n = new, 1
	case new == *min:
		if old != *min {
			*n++
		}
	default: // new > *min
		if old == *min {
			if *n == 1 {
				return false
			}
			*n--
		}
	}
	return true
}

// buildCSR packs the net↔object adjacency and the coordinate/weight
// mirrors into the flat SoA arrays the kernel runs on. Build calls it
// once; the adjacency never changes afterwards.
func (p *Problem) buildCSR() {
	p.pinOff = make([]int32, len(p.Nets)+1)
	total := 0
	for ni := range p.Nets {
		p.pinOff[ni] = int32(total)
		total += len(p.Nets[ni].Objs)
	}
	p.pinOff[len(p.Nets)] = int32(total)
	p.pinIdx = make([]int32, total)
	for ni := range p.Nets {
		copy(p.pinIdx[p.pinOff[ni]:], p.Nets[ni].Objs)
	}

	p.objNetOff = make([]int32, len(p.Objs)+1)
	total = 0
	for oi := range p.Objs {
		p.objNetOff[oi] = int32(total)
		total += len(p.Objs[oi].nets)
	}
	p.objNetOff[len(p.Objs)] = int32(total)
	p.objNetIdx = make([]int32, total)
	for oi := range p.Objs {
		copy(p.objNetIdx[p.objNetOff[oi]:], p.Objs[oi].nets)
	}

	p.x = make([]float64, len(p.Objs))
	p.y = make([]float64, len(p.Objs))
	p.netW = make([]float64, len(p.Nets))
	p.syncSoA()
}

// syncSoA refreshes the coordinate and weight mirrors from the
// authoritative Obj/Net fields (which external callers — the packer,
// force-directed passes — mutate directly).
func (p *Problem) syncSoA() {
	for i := range p.Objs {
		p.x[i] = p.Objs[i].X
		p.y[i] = p.Objs[i].Y
	}
	for i := range p.Nets {
		p.netW[i] = p.Nets[i].Weight
	}
}

// objNets returns object oi's incident nets from the CSR adjacency.
func (p *Problem) objNets(oi int32) []int32 {
	return p.objNetIdx[p.objNetOff[oi]:p.objNetOff[oi+1]]
}

// netPins returns net ni's member objects from the CSR adjacency.
func (p *Problem) netPins(ni int32) []int32 {
	return p.pinIdx[p.pinOff[ni]:p.pinOff[ni+1]]
}

// computeBox scans net ni from scratch.
func (p *Problem) computeBox(ni int32) netBox {
	pins := p.netPins(ni)
	first := pins[0]
	x0, y0 := p.x[first], p.y[first]
	b := netBox{
		xMin: x0, xMax: x0, yMin: y0, yMax: y0,
		xMinN: 1, xMaxN: 1, yMinN: 1, yMaxN: 1,
	}
	for _, oi := range pins[1:] {
		b.addPoint(p.x[oi], p.y[oi])
	}
	return b
}

// computeBoxAt scans net ni from scratch with object oi evaluated at a
// tentative position (nx, ny) — the low-degree fast path of
// displacedBox, where a full rebuild is cheaper than four incremental
// boundary updates with their rescan fallbacks.
func (p *Problem) computeBoxAt(ni, oi int32, nx, ny float64) netBox {
	var b netBox
	for k, oj := range p.netPins(ni) {
		x, y := nx, ny
		if oj != oi {
			x, y = p.x[oj], p.y[oj]
		}
		if k == 0 {
			b = netBox{xMin: x, xMax: x, yMin: y, yMax: y,
				xMinN: 1, xMaxN: 1, yMinN: 1, yMaxN: 1}
			continue
		}
		b.addPoint(x, y)
	}
	return b
}

// The scan{X,Y}{Min,Max} quartet recomputes a single boundary of net ni
// with object oi evaluated at a tentative coordinate. A broken boundary
// needs one comparison per pin this way, against eight for a full box
// rebuild, and the other three boundaries stay incremental.

func (p *Problem) scanXMin(ni, oi int32, nx float64) (float64, int32) {
	min, cnt := nx, int32(1)
	for _, oj := range p.netPins(ni) {
		if oj == oi {
			continue
		}
		if v := p.x[oj]; v < min {
			min, cnt = v, 1
		} else if v == min {
			cnt++
		}
	}
	return min, cnt
}

func (p *Problem) scanXMax(ni, oi int32, nx float64) (float64, int32) {
	max, cnt := nx, int32(1)
	for _, oj := range p.netPins(ni) {
		if oj == oi {
			continue
		}
		if v := p.x[oj]; v > max {
			max, cnt = v, 1
		} else if v == max {
			cnt++
		}
	}
	return max, cnt
}

func (p *Problem) scanYMin(ni, oi int32, ny float64) (float64, int32) {
	min, cnt := ny, int32(1)
	for _, oj := range p.netPins(ni) {
		if oj == oi {
			continue
		}
		if v := p.y[oj]; v < min {
			min, cnt = v, 1
		} else if v == min {
			cnt++
		}
	}
	return min, cnt
}

func (p *Problem) scanYMax(ni, oi int32, ny float64) (float64, int32) {
	max, cnt := ny, int32(1)
	for _, oj := range p.netPins(ni) {
		if oj == oi {
			continue
		}
		if v := p.y[oj]; v > max {
			max, cnt = v, 1
		} else if v == max {
			cnt++
		}
	}
	return max, cnt
}

// initBoxes (re)builds every cached box from current positions, after
// refreshing the SoA mirror from the authoritative Obj fields. Callers
// that move objects outside the annealing engine (force-directed
// passes, the packer) must rebuild before incremental moves resume.
// boxCostW caches each net's weighted cost (netW·hpwl) alongside, so
// move evaluation subtracts a single cached float instead of reloading
// the old box.
func (p *Problem) initBoxes() {
	p.syncSoA()
	if cap(p.boxes) < len(p.Nets) {
		p.boxes = make([]netBox, len(p.Nets))
		p.boxCostW = make([]float64, len(p.Nets))
	}
	p.boxes = p.boxes[:len(p.Nets)]
	p.boxCostW = p.boxCostW[:len(p.Nets)]
	for ni := range p.Nets {
		b := p.computeBox(int32(ni))
		p.boxes[ni] = b
		p.boxCostW[ni] = p.netW[ni] * b.hpwl()
	}
}

// boxHPWL is the total weighted HPWL read from the cached boxes.
func (p *Problem) boxHPWL() float64 {
	total := 0.0
	for i := range p.boxes {
		total += p.netW[i] * p.boxes[i].hpwl()
	}
	return total
}

// box2 builds a two-point box directly. The box fold is
// order-independent (boundaries are min/max selections, counts are
// boundary multiplicities), so this matches computeBox bit for bit
// whichever pin came first.
func box2(x0, y0, x1, y1 float64) netBox {
	b := netBox{xMin: x0, xMax: x0, yMin: y0, yMax: y0,
		xMinN: 1, xMaxN: 1, yMinN: 1, yMaxN: 1}
	b.addPoint(x1, y1)
	return b
}

// displacedBox returns net ni's box after object oi moves (ox,oy) →
// (nx,ny): each boundary is updated incrementally and only a broken one
// is rescanned; nets of ≤3 pins skip straight to a scratch rebuild,
// which is cheaper than four boundary updates at that size — and the
// dominant 2-pin case never touches the cached box at all. The
// object's stored position is never read — rescans substitute (nx,ny)
// for oi — so the caller may leave it at (ox,oy).
func (p *Problem) displacedBox(ni, oi int32, ox, oy, nx, ny float64) netBox {
	if p.pinOff[ni+1]-p.pinOff[ni] == 2 {
		pins := p.netPins(ni)
		oo := pins[0]
		if oo == oi {
			oo = pins[1]
		}
		return box2(nx, ny, p.x[oo], p.y[oo])
	}
	return p.displacedBoxWide(ni, oi, ox, oy, nx, ny)
}

// displacedBoxWide is displacedBox for nets of ≥3 pins (the annealing
// engine dispatches the 2-pin case itself, without building a box).
func (p *Problem) displacedBoxWide(ni, oi int32, ox, oy, nx, ny float64) netBox {
	if p.pinOff[ni+1]-p.pinOff[ni] == 3 {
		return p.computeBoxAt(ni, oi, nx, ny)
	}
	nb := p.boxes[ni]
	if !updMin(&nb.xMin, &nb.xMinN, ox, nx) {
		nb.xMin, nb.xMinN = p.scanXMin(ni, oi, nx)
	}
	if !updMax(&nb.xMax, &nb.xMaxN, ox, nx) {
		nb.xMax, nb.xMaxN = p.scanXMax(ni, oi, nx)
	}
	if !updMin(&nb.yMin, &nb.yMinN, oy, ny) {
		nb.yMin, nb.yMinN = p.scanYMin(ni, oi, ny)
	}
	if !updMax(&nb.yMax, &nb.yMaxN, oy, ny) {
		nb.yMax, nb.yMaxN = p.scanYMax(ni, oi, ny)
	}
	return nb
}

// computeBoxSwapped scans net ni with objects oi and oj evaluated at
// each other's stored positions (nets shared by both ends of a swap,
// where the incremental path cannot apply).
func (p *Problem) computeBoxSwapped(ni, oi, oj int32) netBox {
	xi, yi := p.x[oj], p.y[oj]
	xj, yj := p.x[oi], p.y[oi]
	var b netBox
	for k, oo := range p.netPins(ni) {
		var x, y float64
		switch oo {
		case oi:
			x, y = xi, yi
		case oj:
			x, y = xj, yj
		default:
			x, y = p.x[oo], p.y[oo]
		}
		if k == 0 {
			b = netBox{xMin: x, xMax: x, yMin: y, yMax: y,
				xMinN: 1, xMaxN: 1, yMinN: 1, yMaxN: 1}
			continue
		}
		b.addPoint(x, y)
	}
	return b
}

// displaceDelta returns the weighted-HPWL change of moving object oi to
// (nx, ny) without touching any state; the tentative boxes and costs of
// the object's nets are left in p.tentBoxes/p.tentCosts for
// commitDisplace.
func (p *Problem) displaceDelta(oi int32, nx, ny float64) float64 {
	ox, oy := p.x[oi], p.y[oi]
	nets := p.objNets(oi)
	if cap(p.tentBoxes) < len(nets) {
		p.tentBoxes = make([]netBox, len(nets))
		p.tentCosts = make([]float64, len(nets))
	}
	p.tentBoxes = p.tentBoxes[:len(nets)]
	p.tentCosts = p.tentCosts[:len(nets)]
	delta := 0.0
	for k, ni := range nets {
		nb := p.displacedBox(ni, oi, ox, oy, nx, ny)
		c := p.netW[ni] * nb.hpwl()
		p.tentBoxes[k] = nb
		p.tentCosts[k] = c
		delta += c - p.boxCostW[ni]
	}
	return delta
}

// commitDisplace applies the move computed by the immediately preceding
// displaceDelta call.
func (p *Problem) commitDisplace(oi int32, nx, ny float64) {
	p.x[oi], p.y[oi] = nx, ny
	o := &p.Objs[oi]
	o.X, o.Y = nx, ny
	for k, ni := range p.objNets(oi) {
		p.boxes[ni] = p.tentBoxes[k]
		p.boxCostW[ni] = p.tentCosts[k]
	}
}
