package place

// Incremental placement cost kernel: every net carries a cached
// bounding box with per-boundary occupancy counts (the VPR scheme), so
// a move proposal costs O(incident nets) instead of O(incident pins).
// A rescan — restricted to the single broken boundary — happens only
// when the sole object holding that boundary moves inward, exactly the
// case where the new boundary is unknowable without a scan.
//
// The cached boxes store the same float64 coordinates a scratch scan
// would select (boundaries are selections, never arithmetic), so the
// cached cost matches Problem.HPWL() bit for bit; the place tests
// cross-check this invariant after every annealing pass.

// netBox is one net's cached bounding box. The *N fields count how
// many of the net's objects sit exactly on each boundary.
type netBox struct {
	xMin, xMax, yMin, yMax     float64
	xMinN, xMaxN, yMinN, yMaxN int32
}

// hpwl is the box's half-perimeter wirelength.
func (b *netBox) hpwl() float64 {
	return (b.xMax - b.xMin) + (b.yMax - b.yMin)
}

// addPoint folds one object position into the box.
func (b *netBox) addPoint(x, y float64) {
	if x < b.xMin {
		b.xMin, b.xMinN = x, 1
	} else if x == b.xMin {
		b.xMinN++
	}
	if x > b.xMax {
		b.xMax, b.xMaxN = x, 1
	} else if x == b.xMax {
		b.xMaxN++
	}
	if y < b.yMin {
		b.yMin, b.yMinN = y, 1
	} else if y == b.yMin {
		b.yMinN++
	}
	if y > b.yMax {
		b.yMax, b.yMaxN = y, 1
	} else if y == b.yMax {
		b.yMaxN++
	}
}

// updMax adjusts one upper boundary for a coordinate moving old→new.
// It reports false when the sole boundary holder moved inward, which
// requires a rescan.
func updMax(max *float64, n *int32, old, new float64) bool {
	switch {
	case new > *max:
		*max, *n = new, 1
	case new == *max:
		if old != *max {
			*n++
		}
	default: // new < *max
		if old == *max {
			if *n == 1 {
				return false
			}
			*n--
		}
	}
	return true
}

// updMin is the lower-boundary mirror of updMax.
func updMin(min *float64, n *int32, old, new float64) bool {
	switch {
	case new < *min:
		*min, *n = new, 1
	case new == *min:
		if old != *min {
			*n++
		}
	default: // new > *min
		if old == *min {
			if *n == 1 {
				return false
			}
			*n--
		}
	}
	return true
}

// computeBox scans net ni from scratch.
func (p *Problem) computeBox(ni int32) netBox {
	n := &p.Nets[ni]
	first := &p.Objs[n.Objs[0]]
	b := netBox{
		xMin: first.X, xMax: first.X, yMin: first.Y, yMax: first.Y,
		xMinN: 1, xMaxN: 1, yMinN: 1, yMaxN: 1,
	}
	for _, oi := range n.Objs[1:] {
		o := &p.Objs[oi]
		b.addPoint(o.X, o.Y)
	}
	return b
}

// The scan{X,Y}{Min,Max} quartet recomputes a single boundary of net ni
// with object oi evaluated at a tentative coordinate. A broken boundary
// needs one comparison per pin this way, against eight for a full box
// rebuild, and the other three boundaries stay incremental.

func (p *Problem) scanXMin(ni, oi int32, nx float64) (float64, int32) {
	min, cnt := nx, int32(1)
	for _, oj := range p.Nets[ni].Objs {
		if oj == oi {
			continue
		}
		if v := p.Objs[oj].X; v < min {
			min, cnt = v, 1
		} else if v == min {
			cnt++
		}
	}
	return min, cnt
}

func (p *Problem) scanXMax(ni, oi int32, nx float64) (float64, int32) {
	max, cnt := nx, int32(1)
	for _, oj := range p.Nets[ni].Objs {
		if oj == oi {
			continue
		}
		if v := p.Objs[oj].X; v > max {
			max, cnt = v, 1
		} else if v == max {
			cnt++
		}
	}
	return max, cnt
}

func (p *Problem) scanYMin(ni, oi int32, ny float64) (float64, int32) {
	min, cnt := ny, int32(1)
	for _, oj := range p.Nets[ni].Objs {
		if oj == oi {
			continue
		}
		if v := p.Objs[oj].Y; v < min {
			min, cnt = v, 1
		} else if v == min {
			cnt++
		}
	}
	return min, cnt
}

func (p *Problem) scanYMax(ni, oi int32, ny float64) (float64, int32) {
	max, cnt := ny, int32(1)
	for _, oj := range p.Nets[ni].Objs {
		if oj == oi {
			continue
		}
		if v := p.Objs[oj].Y; v > max {
			max, cnt = v, 1
		} else if v == max {
			cnt++
		}
	}
	return max, cnt
}

// initBoxes (re)builds every cached box from current positions. Callers
// that move objects outside tryMove (force-directed passes, the packer)
// must rebuild before incremental moves resume.
func (p *Problem) initBoxes() {
	if cap(p.boxes) < len(p.Nets) {
		p.boxes = make([]netBox, len(p.Nets))
	}
	p.boxes = p.boxes[:len(p.Nets)]
	for ni := range p.Nets {
		p.boxes[ni] = p.computeBox(int32(ni))
	}
}

// boxHPWL is the total weighted HPWL read from the cached boxes.
func (p *Problem) boxHPWL() float64 {
	total := 0.0
	for i := range p.Nets {
		total += p.Nets[i].Weight * p.boxes[i].hpwl()
	}
	return total
}

// displacedBox returns net ni's box after object oi moves (ox,oy) →
// (nx,ny): each boundary is updated incrementally and only a broken one
// is rescanned. The object's stored position is never read — rescans
// substitute (nx,ny) for oi — so the caller may leave it at (ox,oy).
func (p *Problem) displacedBox(ni, oi int32, ox, oy, nx, ny float64) netBox {
	nb := p.boxes[ni]
	if !updMin(&nb.xMin, &nb.xMinN, ox, nx) {
		nb.xMin, nb.xMinN = p.scanXMin(ni, oi, nx)
	}
	if !updMax(&nb.xMax, &nb.xMaxN, ox, nx) {
		nb.xMax, nb.xMaxN = p.scanXMax(ni, oi, nx)
	}
	if !updMin(&nb.yMin, &nb.yMinN, oy, ny) {
		nb.yMin, nb.yMinN = p.scanYMin(ni, oi, ny)
	}
	if !updMax(&nb.yMax, &nb.yMaxN, oy, ny) {
		nb.yMax, nb.yMaxN = p.scanYMax(ni, oi, ny)
	}
	return nb
}

// computeBoxSwapped scans net ni with objects oi and oj evaluated at
// each other's stored positions (nets shared by both ends of a swap,
// where the incremental path cannot apply).
func (p *Problem) computeBoxSwapped(ni, oi, oj int32) netBox {
	xi, yi := p.Objs[oj].X, p.Objs[oj].Y
	xj, yj := p.Objs[oi].X, p.Objs[oi].Y
	var b netBox
	for k, oo := range p.Nets[ni].Objs {
		var x, y float64
		switch oo {
		case oi:
			x, y = xi, yi
		case oj:
			x, y = xj, yj
		default:
			x, y = p.Objs[oo].X, p.Objs[oo].Y
		}
		if k == 0 {
			b = netBox{xMin: x, xMax: x, yMin: y, yMax: y,
				xMinN: 1, xMaxN: 1, yMinN: 1, yMaxN: 1}
			continue
		}
		b.addPoint(x, y)
	}
	return b
}

// displaceDelta returns the weighted-HPWL change of moving object oi to
// (nx, ny) without touching any state; the tentative boxes of the
// object's nets are left in p.tentBoxes for commitDisplace.
func (p *Problem) displaceDelta(oi int32, nx, ny float64) float64 {
	o := &p.Objs[oi]
	ox, oy := o.X, o.Y
	if cap(p.tentBoxes) < len(o.nets) {
		p.tentBoxes = make([]netBox, len(o.nets))
	}
	p.tentBoxes = p.tentBoxes[:len(o.nets)]
	delta := 0.0
	for k, ni := range o.nets {
		nb := p.displacedBox(ni, oi, ox, oy, nx, ny)
		p.tentBoxes[k] = nb
		delta += p.Nets[ni].Weight * (nb.hpwl() - p.boxes[ni].hpwl())
	}
	return delta
}

// commitDisplace applies the move computed by the immediately preceding
// displaceDelta call.
func (p *Problem) commitDisplace(oi int32, nx, ny float64) {
	o := &p.Objs[oi]
	o.X, o.Y = nx, ny
	for k, ni := range o.nets {
		p.boxes[ni] = p.tentBoxes[k]
	}
}

