// Package place implements the ASIC-style detailed placement stage of
// the paper's flow (the role Dolphin's physical synthesis plays in
// Figure 6): timing-driven simulated annealing over a continuous die,
// minimizing criticality-weighted half-perimeter wirelength, plus the
// incremental refinement loop the packer calls during legalization.
package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vpga/internal/netlist"
	"vpga/internal/obs"
)

// Obj is one placeable object: a configuration instance, flip-flop,
// buffer, or IO pad.
type Obj struct {
	Nodes []netlist.NodeID // netlist nodes this object carries (2 for FA macros)
	Name  string
	Area  float64
	X, Y  float64
	Fixed bool // IO pads are pinned to the periphery
	IsPad bool
	nets  []int32
}

// Net connects a driver object to its sink objects.
type Net struct {
	Objs   []int32 // object indexes, driver first, deduplicated
	Weight float64
}

// Problem is a placement instance.
type Problem struct {
	W, H float64
	Objs []Obj
	Nets []Net

	objOf   map[netlist.NodeID]int32 // netlist node -> object index
	rng     *rand.Rand
	blocked func(x, y float64) bool // defective sites (nil = clean die)

	// Incremental cost kernel state (see incremental.go): cached net
	// boxes plus the flat SoA mirror the kernel runs on — coordinate
	// and weight arrays and the net↔object adjacency in CSR form.
	boxes     []netBox
	boxCostW  []float64 // per-net weighted cost cache (netW·hpwl)
	tentBoxes []netBox
	tentCosts []float64
	x, y      []float64
	netW      []float64
	pinIdx    []int32 // net -> member objects, CSR values
	pinOff    []int32 // net -> member objects, CSR offsets
	objNetIdx []int32 // object -> incident nets, CSR values
	objNetOff []int32 // object -> incident nets, CSR offsets

	// Annealing engine scratch (see anneal.go).
	eng          engineState
	movableCache []int32
	stats        Stats
}

// Stats counts annealer work (proposals and acceptances across every
// Anneal/Refine call on this problem) for benchmarks and profiling.
// Skipped counts proposals dropped by the batch conflict rule; it is
// identical at any worker count, like everything else the annealer
// produces.
type Stats struct {
	Proposed, Accepted, Skipped int64
}

// Stats returns the problem's cumulative annealing counters.
func (p *Problem) Stats() Stats { return p.stats }

// AreaFunc returns the placement area of a netlist node (gate or DFF).
type AreaFunc func(n *netlist.Node) float64

// Options tunes the annealer.
type Options struct {
	// Utilization is the cell-area / core-area target (default 0.70).
	Utilization float64
	// Seed drives the annealer's RNG.
	Seed int64
	// MovesPerObj scales annealing effort (default 8).
	MovesPerObj int
	// Workers sets the number of parallel evaluation workers for the
	// annealing engine (default 1). Results are bit-identical at any
	// worker count: moves come from counter-based per-proposal RNG
	// streams, are evaluated against batch-start state, and commit in
	// proposal order regardless of which worker evaluated them.
	Workers int
	// Outline forces the die dimensions (used when placing into a
	// fixed PLB array); zero means size from utilization.
	OutlineW, OutlineH float64
	// Blocked marks defective die sites in normalized coordinates
	// (position / die dimension, so a defect map applies to any die
	// size): the initial spread and every annealing move keep movable
	// objects out of blocked positions. Nil means a clean die.
	Blocked func(xn, yn float64) bool
	// Ctx cancels a running Anneal at pass boundaries; a nil context
	// never cancels. Cancellation only ever truncates the schedule, so
	// a run that completes without cancellation is bit-identical to one
	// annealed without a context.
	Ctx context.Context
	// Trace, when set, records one event per temperature pass plus the
	// final cost. Recording is observation only (never consulted by the
	// schedule) and happens at pass boundaries, so the per-move hot
	// loop is untouched and a nil trace costs one nil check per pass.
	Trace *obs.AnnealTrace
}

// Build extracts the placement problem from a netlist. Objects are
// gates, flip-flops and IO pads; nodes sharing a nonzero Group become
// one object. Pads are distributed around the periphery and fixed.
func Build(nl *netlist.Netlist, area AreaFunc, opts Options) (*Problem, error) {
	if opts.Utilization == 0 {
		opts.Utilization = 0.70
	}
	p := &Problem{
		objOf: map[netlist.NodeID]int32{},
		rng:   rand.New(rand.NewSource(opts.Seed + 1)),
	}

	groupObj := map[int32]int32{}
	totalArea := 0.0
	addObj := func(o Obj) int32 {
		idx := int32(len(p.Objs))
		p.Objs = append(p.Objs, o)
		return idx
	}
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindGate, netlist.KindDFF:
			if n.Group != 0 {
				if idx, ok := groupObj[n.Group]; ok {
					p.objOf[n.ID] = idx
					p.Objs[idx].Nodes = append(p.Objs[idx].Nodes, n.ID)
					continue
				}
			}
			a := area(n)
			idx := addObj(Obj{Nodes: []netlist.NodeID{n.ID}, Name: n.Type, Area: a})
			p.objOf[n.ID] = idx
			totalArea += a
			if n.Group != 0 {
				groupObj[n.Group] = idx
			}
		case netlist.KindInput, netlist.KindOutput:
			idx := addObj(Obj{Nodes: []netlist.NodeID{n.ID}, Name: n.Name, Fixed: true, IsPad: true})
			p.objOf[n.ID] = idx
		case netlist.KindConst:
			// Constants are via-programmed ties; no placement object.
		}
	}
	if totalArea == 0 {
		return nil, fmt.Errorf("place: netlist %s has no placeable area", nl.Name)
	}
	if opts.OutlineW > 0 {
		p.W, p.H = opts.OutlineW, opts.OutlineH
	} else {
		side := math.Sqrt(totalArea / opts.Utilization)
		p.W, p.H = side, side
	}
	p.setBlocked(opts.Blocked)

	// Nets: one per driver with readers.
	for _, n := range nl.Nodes() {
		driver, ok := p.objOf[n.ID]
		if !ok {
			continue
		}
		outs := nl.Fanouts(n.ID)
		if len(outs) == 0 {
			continue
		}
		seen := map[int32]bool{driver: true}
		objs := []int32{driver}
		for _, o := range outs {
			if idx, ok := p.objOf[o]; ok && !seen[idx] {
				seen[idx] = true
				objs = append(objs, idx)
			}
		}
		if len(objs) < 2 {
			continue
		}
		p.Nets = append(p.Nets, Net{Objs: objs, Weight: 1})
	}
	for ni := range p.Nets {
		for _, oi := range p.Nets[ni].Objs {
			p.Objs[oi].nets = append(p.Objs[oi].nets, int32(ni))
		}
	}
	p.buildCSR()

	p.placePads()
	p.randomSpread()
	return p, nil
}

// ObjIndex returns the placement object carrying the given netlist
// node, or -1.
func (p *Problem) ObjIndex(id netlist.NodeID) int32 {
	if idx, ok := p.objOf[id]; ok {
		return idx
	}
	return -1
}

// placePads distributes IO pads evenly around the periphery.
func (p *Problem) placePads() {
	var pads []int32
	for i := range p.Objs {
		if p.Objs[i].IsPad {
			pads = append(pads, int32(i))
		}
	}
	perimeter := 2 * (p.W + p.H)
	for i, idx := range pads {
		d := perimeter * float64(i) / float64(len(pads))
		o := &p.Objs[idx]
		switch {
		case d < p.W:
			o.X, o.Y = d, 0
		case d < p.W+p.H:
			o.X, o.Y = p.W, d-p.W
		case d < 2*p.W+p.H:
			o.X, o.Y = 2*p.W+p.H-d, p.H
		default:
			o.X, o.Y = 0, perimeter-d
		}
	}
}

// randomSpread scatters movable objects uniformly, avoiding blocked
// sites by rejection sampling.
func (p *Problem) randomSpread() {
	for i := range p.Objs {
		if p.Objs[i].Fixed {
			continue
		}
		x, y := p.freePosition(p.rng)
		p.Objs[i].X = x
		p.Objs[i].Y = y
	}
}

// setBlocked installs a normalized-coordinate blocked map, wrapped to
// the die's absolute frame. The blocked set only ever excludes
// positions, so installing one never invalidates cached net boxes.
func (p *Problem) setBlocked(blocked func(xn, yn float64) bool) {
	if blocked == nil {
		return
	}
	p.blocked = func(x, y float64) bool { return blocked(x/p.W, y/p.H) }
}

// freePosition draws a uniform die position outside blocked regions.
// If the map is so dense that sampling keeps failing, the last draw is
// returned anyway — the flow then fails downstream and the repair loop
// takes over.
func (p *Problem) freePosition(rng *rand.Rand) (float64, float64) {
	var x, y float64
	for try := 0; try < 64; try++ {
		x = rng.Float64() * p.W
		y = rng.Float64() * p.H
		if p.blocked == nil || !p.blocked(x, y) {
			break
		}
	}
	return x, y
}

// evictBlocked re-seats movable objects sitting on blocked sites
// (force-directed passes and external callers may have dragged them
// there).
func (p *Problem) evictBlocked(rng *rand.Rand, movable []int32) {
	if p.blocked == nil {
		return
	}
	for _, oi := range movable {
		o := &p.Objs[oi]
		if p.blocked(o.X, o.Y) {
			o.X, o.Y = p.freePosition(rng)
		}
	}
}

// ForceDirected runs quadratic-style global placement passes: each
// movable object moves to the centroid of its net neighbors (pads act
// as anchors), then a rank-based quantile spread restores uniform
// density. A few passes give the annealer a connectivity-aware start,
// which matters at tens of thousands of objects.
func (p *Problem) ForceDirected(passes int) {
	movable := p.movable()
	if len(movable) == 0 {
		return
	}
	sumX := make([]float64, len(p.Objs))
	sumY := make([]float64, len(p.Objs))
	cnt := make([]float64, len(p.Objs))
	for pass := 0; pass < passes; pass++ {
		for i := range sumX {
			sumX[i], sumY[i], cnt[i] = 0, 0, 0
		}
		for ni := range p.Nets {
			net := &p.Nets[ni]
			// Net centroid.
			cx, cy := 0.0, 0.0
			for _, oi := range net.Objs {
				cx += p.Objs[oi].X
				cy += p.Objs[oi].Y
			}
			cx /= float64(len(net.Objs))
			cy /= float64(len(net.Objs))
			w := net.Weight
			for _, oi := range net.Objs {
				sumX[oi] += w * cx
				sumY[oi] += w * cy
				cnt[oi] += w
			}
		}
		for _, oi := range movable {
			if cnt[oi] > 0 {
				p.Objs[oi].X = sumX[oi] / cnt[oi]
				p.Objs[oi].Y = sumY[oi] / cnt[oi]
			}
		}
		p.quantileSpread(movable)
	}
}

// quantileSpread redistributes movable objects so each axis is
// uniformly occupied while preserving relative order (a monotone
// stretch), undoing the centroid collapse of a force pass.
func (p *Problem) quantileSpread(movable []int32) {
	byX := append([]int32(nil), movable...)
	sortBy(byX, func(a, b int32) bool { return p.Objs[a].X < p.Objs[b].X })
	for rank, oi := range byX {
		p.Objs[oi].X = (float64(rank) + 0.5) / float64(len(byX)) * p.W
	}
	byY := append([]int32(nil), movable...)
	sortBy(byY, func(a, b int32) bool { return p.Objs[a].Y < p.Objs[b].Y })
	for rank, oi := range byY {
		p.Objs[oi].Y = (float64(rank) + 0.5) / float64(len(byY)) * p.H
	}
}

func sortBy(xs []int32, less func(a, b int32) bool) {
	sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}

// netHPWL computes one net's half-perimeter wirelength.
func (p *Problem) netHPWL(n *Net) float64 {
	first := &p.Objs[n.Objs[0]]
	minX, maxX := first.X, first.X
	minY, maxY := first.Y, first.Y
	for _, oi := range n.Objs[1:] {
		o := &p.Objs[oi]
		if o.X < minX {
			minX = o.X
		} else if o.X > maxX {
			maxX = o.X
		}
		if o.Y < minY {
			minY = o.Y
		} else if o.Y > maxY {
			maxY = o.Y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// HPWL returns the total weighted half-perimeter wirelength.
func (p *Problem) HPWL() float64 {
	total := 0.0
	for i := range p.Nets {
		total += p.Nets[i].Weight * p.netHPWL(&p.Nets[i])
	}
	return total
}

// SetNetWeight scales net i's cost contribution (timing criticality).
func (p *Problem) SetNetWeight(i int, w float64) {
	p.Nets[i].Weight = w
	if p.netW != nil {
		p.netW[i] = w
	}
	if i < len(p.boxCostW) {
		p.boxCostW[i] = w * p.boxes[i].hpwl()
	}
}

// Anneal runs the global simulated-annealing placement. When
// opts.Ctx is cancelled the anneal stops at the next pass boundary and
// returns the context's error; the placement is then incomplete but
// structurally valid. If opts.Blocked is set (or Build received a
// blocked map), movable objects are evicted from blocked sites before
// annealing and no move re-enters one.
func (p *Problem) Anneal(opts Options) error {
	if opts.MovesPerObj == 0 {
		opts.MovesPerObj = 8
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if opts.Blocked != nil {
		p.setBlocked(opts.Blocked)
	}
	movable := p.movable()
	if len(movable) == 0 {
		return nil
	}
	// Connectivity-aware seeding, then a low-temperature anneal: the
	// force-directed solution is already global, so the anneal refines
	// rather than re-melts.
	p.ForceDirected(30)
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	p.evictBlocked(rng, movable)
	p.initBoxes()
	temp := p.estimateInitialTemp(rng, movable) * 0.05
	window := math.Max(p.W, p.H) * 0.15
	minTemp := temp * 1e-4
	e := p.engine(workers)
	var pool *annealPool
	if workers > 1 {
		pool = p.startPool(workers)
		defer pool.stop()
	}
	seedKey := mix64(uint64(opts.Seed))
	for pass := uint64(1); temp > minTemp; pass++ {
		if err := ctxErr(opts.Ctx); err != nil {
			return err
		}
		moves := opts.MovesPerObj * len(movable)
		passKey := mix64(seedKey + pass*golden64)
		accepted, _ := p.runPass(e, pool, workers, passKey, moves, movable, window, temp)
		opts.Trace.Pass(temp, moves, accepted)
		rate := float64(accepted) / float64(moves)
		// VPR-style schedule: cool slower near the critical acceptance
		// region, shrink the window toward the target 44% acceptance.
		switch {
		case rate > 0.96:
			temp *= 0.5
		case rate > 0.8:
			temp *= 0.9
		case rate > 0.15:
			temp *= 0.95
		default:
			temp *= 0.8
		}
		window = math.Max(window*(1-0.44+rate), math.Max(p.W, p.H)*0.02)
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return err
	}
	p.Refine(0.05, 2, opts.Seed+13)
	if opts.Trace != nil {
		opts.Trace.Final(p.HPWL())
	}
	return nil
}

// ctxErr is a nil-tolerant ctx.Err().
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// movable returns the non-fixed object indexes. Fixed flags are set
// once in Build and never change, so the slice is computed once and
// reused across every Anneal/Refine call.
func (p *Problem) movable() []int32 {
	if p.movableCache == nil {
		out := make([]int32, 0, len(p.Objs))
		for i := range p.Objs {
			if !p.Objs[i].Fixed {
				out = append(out, int32(i))
			}
		}
		p.movableCache = out
	}
	return p.movableCache
}

// estimateInitialTemp samples random long-range displacements and
// averages their |ΔHPWL|; the running sum replaces the old per-call
// deltas slice. Requires valid boxes.
func (p *Problem) estimateInitialTemp(rng *rand.Rand, movable []int32) float64 {
	sum := 0.0
	n := 0
	for i := 0; i < 50 && i < len(movable); i++ {
		oi := movable[rng.Intn(len(movable))]
		nx := rng.Float64() * p.W
		ny := rng.Float64() * p.H
		sum += math.Abs(p.displaceDelta(oi, nx, ny))
		n++
	}
	if n == 0 || sum == 0 {
		return 1
	}
	return 20 * sum / float64(n)
}

// Refine runs zero-temperature local improvement with a small window;
// the packer invokes it after restricting objects to regions. Boxes
// are rebuilt on entry because callers (packer, net reweighting flows)
// may have moved objects since the last incremental update.
func (p *Problem) Refine(windowFrac float64, passes int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	movable := p.movable()
	if len(movable) == 0 {
		return
	}
	p.initBoxes()
	window := math.Max(p.W, p.H) * windowFrac
	for pass := 0; pass < passes; pass++ {
		for _, oi := range movable {
			p.stats.Proposed++
			o := &p.Objs[oi]
			nx := clamp(o.X+(rng.Float64()*2-1)*window, 0, p.W)
			ny := clamp(o.Y+(rng.Float64()*2-1)*window, 0, p.H)
			if p.blocked != nil && p.blocked(nx, ny) {
				continue
			}
			if p.displaceDelta(oi, nx, ny) <= 0 {
				p.commitDisplace(oi, nx, ny)
				p.stats.Accepted++
			}
		}
	}
}

// LongNets returns the indexes of nets whose HPWL exceeds frac times
// the die half-perimeter (buffer-insertion candidates).
func (p *Problem) LongNets(frac float64) []int {
	limit := frac * (p.W + p.H)
	var out []int
	for i := range p.Nets {
		if p.netHPWL(&p.Nets[i]) > limit {
			out = append(out, i)
		}
	}
	return out
}

// TotalObjArea sums movable object area.
func (p *Problem) TotalObjArea() float64 {
	total := 0.0
	for i := range p.Objs {
		total += p.Objs[i].Area
	}
	return total
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ObjNets returns the indexes of the nets incident to object oi.
func (p *Problem) ObjNets(oi int32) []int32 { return p.Objs[oi].nets }
