package place

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/netlist"
	"vpga/internal/rtl"
	"vpga/internal/techmap"
)

// buildProblem compiles RTL through the flow front end and builds a
// placement problem for the granular architecture.
func buildProblem(t *testing.T, src string, seed int64) (*Problem, *netlist.Netlist, *cells.PLBArch) {
	t.Helper()
	arch := cells.GranularPLB()
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(2)
	mapped, err := techmap.Map(d, arch, techmap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := compact.Run(mapped.Netlist, arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(cres.Netlist, ArchArea(arch), Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p, cres.Netlist, arch
}

const src = `
module m(input clk, input [7:0] a, input [7:0] b, input s, output [7:0] y);
  wire [7:0] sum = a + b;
  wire [7:0] lg = a ^ b;
  reg [7:0] r;
  always r <= s ? sum : lg;
  assign y = r;
endmodule`

func TestBuildProblem(t *testing.T) {
	p, nl, _ := buildProblem(t, src, 1)
	if len(p.Objs) == 0 || len(p.Nets) == 0 {
		t.Fatal("empty problem")
	}
	if p.W <= 0 || p.H <= 0 {
		t.Fatal("degenerate die")
	}
	// Every gate/DFF node maps to an object.
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindGate, netlist.KindDFF:
			if p.ObjIndex(n.ID) < 0 {
				t.Fatalf("node %d (%s) unplaced", n.ID, n.Type)
			}
		}
	}
	// Pads are on the periphery.
	for _, o := range p.Objs {
		if !o.IsPad {
			continue
		}
		onEdge := o.X == 0 || o.Y == 0 || o.X == p.W || o.Y == p.H
		if !onEdge {
			t.Fatalf("pad %q at (%v,%v) not on periphery", o.Name, o.X, o.Y)
		}
	}
}

func TestGroupedNodesShareObject(t *testing.T) {
	p, nl, _ := buildProblem(t, src, 2)
	groups := map[int32][]int32{}
	for _, n := range nl.Nodes() {
		if n.Group != 0 {
			groups[n.Group] = append(groups[n.Group], p.ObjIndex(n.ID))
		}
	}
	if len(groups) == 0 {
		t.Skip("no FA macros in this design")
	}
	for g, objs := range groups {
		for _, o := range objs[1:] {
			if o != objs[0] {
				t.Fatalf("group %d split across objects %v", g, objs)
			}
		}
	}
}

func TestAnnealImprovesHPWL(t *testing.T) {
	p, _, _ := buildProblem(t, src, 3)
	before := p.HPWL()
	p.Anneal(Options{Seed: 3, MovesPerObj: 6})
	after := p.HPWL()
	if after >= before {
		t.Fatalf("annealing did not improve HPWL: %.1f -> %.1f", before, after)
	}
	// All objects inside the die.
	for _, o := range p.Objs {
		if o.X < 0 || o.X > p.W || o.Y < 0 || o.Y > p.H {
			t.Fatalf("object %q escaped the die", o.Name)
		}
	}
}

func TestRefineDoesNotWorsen(t *testing.T) {
	p, _, _ := buildProblem(t, src, 4)
	p.Anneal(Options{Seed: 4, MovesPerObj: 4})
	before := p.HPWL()
	p.Refine(0.05, 3, 99)
	after := p.HPWL()
	if after > before*1.0001 {
		t.Fatalf("refine worsened HPWL: %.1f -> %.1f", before, after)
	}
}

func TestFixedOutline(t *testing.T) {
	p, nl, arch := buildProblem(t, src, 5)
	_ = p
	p2, err := Build(nl, ArchArea(arch), Options{Seed: 5, OutlineW: 40, OutlineH: 30})
	if err != nil {
		t.Fatal(err)
	}
	if p2.W != 40 || p2.H != 30 {
		t.Fatalf("outline not honored: %vx%v", p2.W, p2.H)
	}
}

func TestNetWeights(t *testing.T) {
	p, _, _ := buildProblem(t, src, 6)
	base := p.HPWL()
	for i := range p.Nets {
		p.SetNetWeight(i, 2)
	}
	if got := p.HPWL(); got < 1.99*base || got > 2.01*base {
		t.Fatalf("weighted HPWL = %v, want ~%v", got, 2*base)
	}
}

func TestLongNets(t *testing.T) {
	p, _, _ := buildProblem(t, src, 7)
	all := p.LongNets(0)
	if len(all) != len(p.Nets) {
		t.Fatalf("LongNets(0) = %d, want all %d", len(all), len(p.Nets))
	}
	none := p.LongNets(10)
	if len(none) != 0 {
		t.Fatalf("LongNets(10) = %d, want 0", len(none))
	}
}

func TestPadOnlyDesignRejected(t *testing.T) {
	nl := netlist.New("wire")
	nl.AddOutput("y", nl.AddInput("a"))
	if _, err := Build(nl, func(n *netlist.Node) float64 { return 1 }, Options{}); err == nil {
		t.Fatal("expected error for netlist with no placeable area")
	}
}

func TestForceDirectedImprovesHPWL(t *testing.T) {
	p, _, _ := buildProblem(t, src, 8)
	before := p.HPWL()
	p.ForceDirected(10)
	after := p.HPWL()
	if after >= before {
		t.Fatalf("force-directed placement did not improve HPWL: %.1f -> %.1f", before, after)
	}
	// Objects must stay inside the die.
	for _, o := range p.Objs {
		if o.X < 0 || o.X > p.W || o.Y < 0 || o.Y > p.H {
			t.Fatalf("object %q escaped the die", o.Name)
		}
	}
}

// checkBoxes asserts every cached net box equals a scratch recompute
// bit for bit, and that the cached total cost equals HPWL().
func checkBoxes(t *testing.T, p *Problem, when string) {
	t.Helper()
	for ni := range p.Nets {
		if want := p.computeBox(int32(ni)); p.boxes[ni] != want {
			t.Fatalf("%s: net %d cached box %+v, scratch %+v", when, ni, p.boxes[ni], want)
		}
		if want := p.netW[ni] * p.boxes[ni].hpwl(); p.boxCostW[ni] != want {
			t.Fatalf("%s: net %d cached cost %v, scratch %v", when, ni, p.boxCostW[ni], want)
		}
	}
	if got, want := p.boxHPWL(), p.HPWL(); got != want {
		t.Fatalf("%s: cached HPWL %v, scratch %v", when, got, want)
	}
}

// TestIncrementalBoxesMatchScratch drives the incremental kernel with
// annealing passes at several temperatures and cross-checks the cached
// boxes against a full recompute after every pass.
func TestIncrementalBoxesMatchScratch(t *testing.T) {
	p, _, _ := buildProblem(t, src, 11)
	p.initBoxes()
	checkBoxes(t, p, "after init")
	movable := p.movable()
	window := math.Max(p.W, p.H) * 0.2
	e := p.engine(1)
	for pi, temp := range []float64{100, 10, 1, 0.1, 0} {
		passKey := mix64(42 + uint64(pi)*golden64)
		p.runPass(e, nil, 1, passKey, 400, movable, window, math.Max(temp, 1e-9))
		checkBoxes(t, p, "after pass")
	}
	if st := p.Stats(); st.Proposed < 2000 || st.Accepted == 0 {
		t.Fatalf("implausible stats %+v", p.Stats())
	}
}

// TestAnnealKeepsBoxesConsistent runs the full Anneal (force-directed
// seeding, annealing schedule, refinement) and checks the invariant at
// the end, then again after an external perturbation plus Refine.
func TestAnnealKeepsBoxesConsistent(t *testing.T) {
	p, _, _ := buildProblem(t, src, 12)
	p.Anneal(Options{Seed: 12, MovesPerObj: 4})
	checkBoxes(t, p, "after anneal")
	// External position changes (as the packer makes) must be absorbed
	// by Refine's box rebuild.
	rng := rand.New(rand.NewSource(5))
	for _, oi := range p.movable() {
		p.Objs[oi].X = rng.Float64() * p.W
		p.Objs[oi].Y = rng.Float64() * p.H
	}
	p.Refine(0.10, 2, 77)
	checkBoxes(t, p, "after refine")
}

// TestSeededAnnealDeterministic: the same seed must reproduce the same
// placement exactly, regardless of prior runs on other problems.
func TestSeededAnnealDeterministic(t *testing.T) {
	a, _, _ := buildProblem(t, src, 13)
	b, _, _ := buildProblem(t, src, 13)
	a.Anneal(Options{Seed: 9, MovesPerObj: 4})
	b.Anneal(Options{Seed: 9, MovesPerObj: 4})
	for i := range a.Objs {
		if a.Objs[i].X != b.Objs[i].X || a.Objs[i].Y != b.Objs[i].Y {
			t.Fatalf("object %d diverged: (%v,%v) vs (%v,%v)", i,
				a.Objs[i].X, a.Objs[i].Y, b.Objs[i].X, b.Objs[i].Y)
		}
	}
}

// TestBlockedSitesRespected: with a defective left third of the die,
// the initial spread and every annealing/refine move must keep movable
// objects out of it, and the result must stay seed-deterministic.
func TestBlockedSitesRespected(t *testing.T) {
	blocked := func(xn, yn float64) bool { return xn < 1.0/3 }
	build := func() *Problem {
		_, nl, arch := buildProblem(t, src, 14)
		p2, err := Build(nl, ArchArea(arch), Options{Seed: 14, Blocked: blocked})
		if err != nil {
			t.Fatal(err)
		}
		return p2
	}
	a := build()
	if err := a.Anneal(Options{Seed: 14, MovesPerObj: 4}); err != nil {
		t.Fatal(err)
	}
	for _, oi := range a.movable() {
		o := &a.Objs[oi]
		if o.X < a.W/3 {
			t.Fatalf("object %q at (%v,%v) inside blocked region [0,%v)", o.Name, o.X, o.Y, a.W/3)
		}
	}
	// Determinism under defects.
	b := build()
	if err := b.Anneal(Options{Seed: 14, MovesPerObj: 4}); err != nil {
		t.Fatal(err)
	}
	for i := range a.Objs {
		if a.Objs[i].X != b.Objs[i].X || a.Objs[i].Y != b.Objs[i].Y {
			t.Fatalf("object %d diverged under identical blocked anneal", i)
		}
	}
	a.Refine(0.10, 2, 21)
	for _, oi := range a.movable() {
		if o := &a.Objs[oi]; o.X < a.W/3 {
			t.Fatalf("refine moved %q into blocked region", o.Name)
		}
	}
	checkBoxes(t, a, "after blocked anneal+refine")
}

// TestAnnealCancellation: a pre-cancelled context stops the anneal at
// the first pass boundary with the context's error.
func TestAnnealCancellation(t *testing.T) {
	p, _, _ := buildProblem(t, src, 15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Anneal(Options{Seed: 15, MovesPerObj: 4, Ctx: ctx}); err != context.Canceled {
		t.Fatalf("Anneal under cancelled ctx returned %v, want context.Canceled", err)
	}
	// A nil / live context completes normally.
	if err := p.Anneal(Options{Seed: 15, MovesPerObj: 4}); err != nil {
		t.Fatalf("clean Anneal returned %v", err)
	}
}

func TestQuantileSpreadPreservesOrderAndDensity(t *testing.T) {
	p, _, _ := buildProblem(t, src, 9)
	movable := p.movable()
	// Record x-order before spreading.
	orderBefore := append([]int32(nil), movable...)
	sortBy(orderBefore, func(a, b int32) bool { return p.Objs[a].X < p.Objs[b].X })
	p.quantileSpread(movable)
	orderAfter := append([]int32(nil), movable...)
	sortBy(orderAfter, func(a, b int32) bool { return p.Objs[a].X < p.Objs[b].X })
	for i := range orderBefore {
		if orderBefore[i] != orderAfter[i] {
			t.Fatal("quantile spread changed the x-order of objects")
		}
	}
	// Uniform density: adjacent gaps are all equal.
	gap := p.W / float64(len(movable))
	for rank, oi := range orderAfter {
		want := (float64(rank) + 0.5) * gap
		if d := p.Objs[oi].X - want; d < -1e-9 || d > 1e-9 {
			t.Fatalf("rank %d at %v, want %v", rank, p.Objs[oi].X, want)
		}
	}
}
