package place

import "fmt"

// Positions snapshots every object's coordinates as a flat
// (x0,y0,x1,y1,...) slice in object order — the complete placement
// state a checkpoint needs: the SoA kernel mirrors, net boxes and
// annealer scratch are all rebuilt from Objs coordinates on the next
// Anneal/Refine, so restoring these floats restores the placement.
func (p *Problem) Positions() []float64 {
	pos := make([]float64, 2*len(p.Objs))
	for i := range p.Objs {
		pos[2*i] = p.Objs[i].X
		pos[2*i+1] = p.Objs[i].Y
	}
	return pos
}

// SetPositions restores a snapshot taken by Positions onto a problem
// built from the same netlist. The length must match exactly — a
// mismatch means the checkpoint belongs to a different problem and
// restoring it would scatter objects arbitrarily.
func (p *Problem) SetPositions(pos []float64) error {
	if len(pos) != 2*len(p.Objs) {
		return fmt.Errorf("place: position snapshot holds %d coords, problem has %d objects (want %d)",
			len(pos), len(p.Objs), 2*len(p.Objs))
	}
	for i := range p.Objs {
		p.Objs[i].X = pos[2*i]
		p.Objs[i].Y = pos[2*i+1]
	}
	return nil
}
