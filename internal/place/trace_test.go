package place

import (
	"testing"

	"vpga/internal/obs"
)

// Tracing must be pure observation: an anneal with a trace attached
// produces a bit-identical placement to an untraced one, while the
// trace's counters stay consistent with the problem's own stats.
func TestAnnealTraceInvariance(t *testing.T) {
	plain, _, _ := buildProblem(t, src, 5)
	traced, _, _ := buildProblem(t, src, 5)

	if err := plain.Anneal(Options{Seed: 5, MovesPerObj: 4}); err != nil {
		t.Fatal(err)
	}
	at := &obs.AnnealTrace{}
	if err := traced.Anneal(Options{Seed: 5, MovesPerObj: 4, Trace: at}); err != nil {
		t.Fatal(err)
	}

	if len(plain.Objs) != len(traced.Objs) {
		t.Fatal("object count diverged")
	}
	for i := range plain.Objs {
		if plain.Objs[i].X != traced.Objs[i].X || plain.Objs[i].Y != traced.Objs[i].Y {
			t.Fatalf("obj %d placed at (%v,%v) traced vs (%v,%v) untraced",
				i, traced.Objs[i].X, traced.Objs[i].Y, plain.Objs[i].X, plain.Objs[i].Y)
		}
	}

	passes, proposed, accepted, finalCost := at.Snapshot()
	if len(passes) == 0 {
		t.Fatal("no temperature passes recorded")
	}
	if proposed == 0 || accepted == 0 || accepted > proposed {
		t.Fatalf("counter totals inconsistent: proposed=%d accepted=%d", proposed, accepted)
	}
	// Temperatures follow the cooling schedule: strictly decreasing.
	for i := 1; i < len(passes); i++ {
		if passes[i].Temp >= passes[i-1].Temp {
			t.Fatalf("pass %d temperature %v did not cool from %v", i, passes[i].Temp, passes[i-1].Temp)
		}
	}
	if finalCost <= 0 {
		t.Fatalf("final cost %v not recorded", finalCost)
	}
	if got := traced.HPWL(); finalCost != got {
		t.Fatalf("final cost %v != post-anneal HPWL %v", finalCost, got)
	}
}
