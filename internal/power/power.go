// Package power estimates switching power for an implemented design,
// covering the third axis of the paper's cell-level comparison (the
// VPGA LUT "is substantially inferior to an equivalent standard cell
// in terms of delay, power and area", Sec. 2 citing [10]).
//
// The model is the standard architectural estimate: static signal
// probabilities are propagated through the configuration truth tables
// under an input-independence assumption (sequential feedback is
// iterated to a fixed point), switching activity is derived as
// α = 2·p·(1−p), and dynamic power sums ½·α·C·V²·f over every net,
// with per-cell internal energy and area-proportional leakage on top.
package power

import (
	"fmt"

	"vpga/internal/cells"
	"vpga/internal/netlist"
	"vpga/internal/place"
	"vpga/internal/route"
)

// Electrical constants of the synthetic process (consistent across
// architectures, like the rest of the characterization).
const (
	// VddV is the supply voltage.
	VddV = 1.2
	// InternalEnergyFJPerArea is the per-transition internal energy of
	// a cell, proportional to its area (fJ per NAND2-equivalent).
	InternalEnergyFJPerArea = 1.5
	// LeakageUWPerArea is static leakage per NAND2-equivalent of cell
	// area (µW).
	LeakageUWPerArea = 0.02
)

// Options configures the estimate.
type Options struct {
	// ClockPS is the clock period in ps (mandatory).
	ClockPS float64
	// InputProb is the assumed probability of 1 on primary inputs
	// (default 0.5).
	InputProb float64
	// Iterations bounds the sequential fixed-point loop (default 16).
	Iterations int
}

// Report is the power estimate.
type Report struct {
	// DynamicUW is switching power (net + internal), µW.
	DynamicUW float64
	// NetUW is the wire+pin switching component alone.
	NetUW float64
	// InternalUW is the cell-internal component.
	InternalUW float64
	// LeakageUW is the static component.
	LeakageUW float64
	// TotalUW = DynamicUW + LeakageUW.
	TotalUW float64
	// ByType splits dynamic power per cell type.
	ByType map[string]float64
	// Activity holds the per-node switching activity (index NodeID).
	Activity []float64
	// Prob holds the per-node static 1-probability.
	Prob []float64
}

// Estimate computes the power report. prob/routes may be nil for a
// pre-layout estimate (no wire capacitance).
func Estimate(nl *netlist.Netlist, arch *cells.PLBArch, pr *place.Problem, routes *route.Result, opts Options) (*Report, error) {
	if opts.ClockPS <= 0 {
		return nil, fmt.Errorf("power: clock period required")
	}
	if opts.InputProb == 0 {
		opts.InputProb = 0.5
	}
	if opts.Iterations == 0 {
		opts.Iterations = 16
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}

	prob := make([]float64, nl.NumNodes())
	// Initialize: PIs at InputProb, DFFs at 0.5 seed.
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindInput:
			prob[n.ID] = opts.InputProb
		case netlist.KindDFF:
			prob[n.ID] = 0.5
		case netlist.KindConst:
			if n.ConstVal {
				prob[n.ID] = 1
			}
		}
	}
	// Fixed-point iteration over the sequential loop.
	for iter := 0; iter < opts.Iterations; iter++ {
		delta := 0.0
		for _, id := range order {
			n := nl.Node(id)
			switch n.Kind {
			case netlist.KindGate:
				prob[id] = gateProb(n, prob)
			case netlist.KindOutput:
				prob[id] = prob[n.Fanins[0]]
			}
		}
		for _, n := range nl.Nodes() {
			if n.Kind != netlist.KindDFF {
				continue
			}
			next := prob[n.Fanins[0]]
			if d := next - prob[n.ID]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
			prob[n.ID] = next
		}
		if delta < 1e-6 {
			break
		}
	}
	// Final combinational settle.
	for _, id := range order {
		n := nl.Node(id)
		switch n.Kind {
		case netlist.KindGate:
			prob[id] = gateProb(n, prob)
		case netlist.KindOutput:
			prob[id] = prob[n.Fanins[0]]
		}
	}

	activity := make([]float64, nl.NumNodes())
	for i, p := range prob {
		activity[i] = 2 * p * (1 - p)
	}

	// Net capacitances: sink pin caps plus routed wire capacitance.
	netCapOf := func(id netlist.NodeID) float64 {
		total := 0.0
		for _, out := range nl.Fanouts(id) {
			o := nl.Node(out)
			switch o.Kind {
			case netlist.KindGate, netlist.KindDFF:
				if p, ok := pinCap(arch, o.Type); ok {
					total += p
				} else {
					total += 2
				}
			case netlist.KindOutput:
				total += 4
			}
		}
		if pr != nil && routes != nil {
			if oi := pr.ObjIndex(id); oi >= 0 {
				// Add the routed wire capacitance of the net this node
				// drives.
				for _, ni := range pr.ObjNets(oi) {
					if pr.Nets[ni].Objs[0] == oi {
						total += routes.NetCap(int(ni))
					}
				}
			}
		}
		return total
	}

	freqGHz := 1000.0 / opts.ClockPS // 1/ps → GHz
	rep := &Report{ByType: map[string]float64{}, Activity: activity, Prob: prob}
	for _, n := range nl.Nodes() {
		var area float64
		switch n.Kind {
		case netlist.KindGate:
			area = typeArea(arch, n.Type)
		case netlist.KindDFF:
			area = typeArea(arch, "FF")
		default:
			continue
		}
		α := activity[n.ID]
		if n.Kind == netlist.KindDFF {
			// Clock pin toggles every cycle; internal activity is
			// dominated by the clock tree contribution.
			α = 1
		}
		// ½·α·C·V²·f with C in fF, V in volts, f in GHz → µW.
		cNet := netCapOf(n.ID)
		netUW := 0.5 * activity[n.ID] * cNet * VddV * VddV * freqGHz
		intUW := 0.5 * α * InternalEnergyFJPerArea * area * freqGHz
		rep.NetUW += netUW
		rep.InternalUW += intUW
		rep.ByType[n.Type] += netUW + intUW
		rep.LeakageUW += LeakageUWPerArea * area
	}
	rep.DynamicUW = rep.NetUW + rep.InternalUW
	rep.TotalUW = rep.DynamicUW + rep.LeakageUW
	return rep, nil
}

// gateProb computes P(out=1) from the truth table under pin
// independence.
func gateProb(n *netlist.Node, prob []float64) float64 {
	total := 0.0
	rows := 1 << uint(len(n.Fanins))
	for row := 0; row < rows; row++ {
		if !n.Func.Eval(uint(row)) {
			continue
		}
		p := 1.0
		for i, f := range n.Fanins {
			if row>>uint(i)&1 == 1 {
				p *= prob[f]
			} else {
				p *= 1 - prob[f]
			}
		}
		total += p
	}
	if total < 0 {
		return 0
	}
	if total > 1 {
		return 1
	}
	return total
}

func typeArea(arch *cells.PLBArch, typ string) float64 {
	if cfg := arch.Config(typ); cfg != nil {
		return cfg.Area
	}
	if c := arch.Library().Cell(typ); c != nil {
		return c.Area
	}
	return 1
}

func pinCap(arch *cells.PLBArch, typ string) (float64, bool) {
	if cfg := arch.Config(typ); cfg != nil {
		return cfg.InputCap, true
	}
	if c := arch.Library().Cell(typ); c != nil {
		return c.InputCap, true
	}
	return 0, false
}
