package power

import (
	"math"
	"testing"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/logic"
	"vpga/internal/netlist"
	"vpga/internal/rtl"
	"vpga/internal/techmap"
)

func TestGateProbAnd(t *testing.T) {
	nl := netlist.New("p")
	a, b := nl.AddInput("a"), nl.AddInput("b")
	g := nl.AddGate("ND3", logic.TTAnd2, a, b)
	nl.AddOutput("y", g)
	rep, err := Estimate(nl, cells.GranularPLB(), nil, nil, Options{ClockPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// P(and) = 0.25 at 0.5 inputs; activity = 2·0.25·0.75 = 0.375.
	if d := rep.Prob[g] - 0.25; math.Abs(d) > 1e-9 {
		t.Fatalf("P(and) = %v", rep.Prob[g])
	}
	if d := rep.Activity[g] - 0.375; math.Abs(d) > 1e-9 {
		t.Fatalf("activity = %v", rep.Activity[g])
	}
}

func TestBiasedInputs(t *testing.T) {
	nl := netlist.New("p")
	a, b := nl.AddInput("a"), nl.AddInput("b")
	g := nl.AddGate("ND3", logic.TTOr2, a, b)
	nl.AddOutput("y", g)
	rep, err := Estimate(nl, cells.GranularPLB(), nil, nil, Options{ClockPS: 1000, InputProb: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// P(or) = 1 - 0.1² = 0.99.
	if d := rep.Prob[g] - 0.99; math.Abs(d) > 1e-9 {
		t.Fatalf("P(or) = %v", rep.Prob[g])
	}
}

func TestSequentialFixedPoint(t *testing.T) {
	// q <= ~q toggles: P converges toward 0.5.
	nl := netlist.New("tog")
	inv := nl.AddGate("MX", logic.VarTT(1, 0).Not(), 0)
	q := nl.AddDFF("q", inv)
	nl.SetFanin(inv, 0, q)
	nl.AddOutput("y", q)
	rep, err := Estimate(nl, cells.GranularPLB(), nil, nil, Options{ClockPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.Prob[q] - 0.5; math.Abs(d) > 0.01 {
		t.Fatalf("toggle FF probability = %v, want ~0.5", rep.Prob[q])
	}
}

func TestConstantNetsAreQuiet(t *testing.T) {
	nl := netlist.New("c")
	a := nl.AddInput("a")
	one := nl.AddConst(true)
	g := nl.AddGate("ND3", logic.TTAnd2, a, one)
	nl.AddOutput("y", g)
	rep, err := Estimate(nl, cells.GranularPLB(), nil, nil, Options{ClockPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Activity[one] != 0 {
		t.Fatal("constant node switching")
	}
	// g = a·1 = a: probability 0.5.
	if d := rep.Prob[g] - 0.5; math.Abs(d) > 1e-9 {
		t.Fatalf("P = %v", rep.Prob[g])
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	nl := netlist.New("f")
	a, b := nl.AddInput("a"), nl.AddInput("b")
	nl.AddOutput("y", nl.AddGate("MX", logic.TTXor2, a, b))
	slow, err := Estimate(nl, cells.GranularPLB(), nil, nil, Options{ClockPS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Estimate(nl, cells.GranularPLB(), nil, nil, Options{ClockPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r := fast.DynamicUW / slow.DynamicUW; math.Abs(r-2) > 1e-9 {
		t.Fatalf("dynamic power ratio = %v, want 2", r)
	}
	if fast.LeakageUW != slow.LeakageUW {
		t.Fatal("leakage must not depend on frequency")
	}
}

// TestLUTMappingBurnsMorePower checks the Sec. 2 / [10] direction: the
// same design mapped on the LUT architecture dissipates more than on
// the granular one (bigger cells, bigger caps).
func TestLUTMappingBurnsMorePower(t *testing.T) {
	src := `
module m(input clk, input [7:0] a, input [7:0] b, output [7:0] y);
  reg [7:0] r;
  always r <= (a ^ b) + (a & b);
  assign y = r;
endmodule`
	nlr, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	power := map[string]float64{}
	for _, arch := range []*cells.PLBArch{cells.GranularPLB(), cells.LUTPLB()} {
		d, err := aig.FromNetlist(nlr)
		if err != nil {
			t.Fatal(err)
		}
		d.Optimize(2)
		mapped, err := techmap.Map(d, arch, techmap.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cres, err := compact.Run(mapped.Netlist, arch)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Estimate(cres.Netlist, arch, nil, nil, Options{ClockPS: 1500})
		if err != nil {
			t.Fatal(err)
		}
		power[arch.Name] = rep.TotalUW
	}
	if power["granular-plb"] >= power["lut-plb"] {
		t.Fatalf("granular %0.1fµW should dissipate less than LUT %0.1fµW", power["granular-plb"], power["lut-plb"])
	}
	t.Logf("power: granular %.1f µW vs LUT %.1f µW", power["granular-plb"], power["lut-plb"])
}

func TestEstimateErrors(t *testing.T) {
	nl := netlist.New("e")
	nl.AddOutput("y", nl.AddInput("a"))
	if _, err := Estimate(nl, cells.GranularPLB(), nil, nil, Options{}); err == nil {
		t.Fatal("missing clock accepted")
	}
}

func TestByTypeSplitsAddUp(t *testing.T) {
	src := `
module m(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = (a & b) ^ (a | b);
endmodule`
	nlr, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	arch := cells.GranularPLB()
	d, _ := aig.FromNetlist(nlr)
	mapped, _ := techmap.Map(d, arch, techmap.Options{})
	cres, _ := compact.Run(mapped.Netlist, arch)
	rep, err := Estimate(cres.Netlist, arch, nil, nil, Options{ClockPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range rep.ByType {
		sum += v
	}
	if math.Abs(sum-rep.DynamicUW) > 1e-9 {
		t.Fatalf("ByType sums to %v, dynamic %v", sum, rep.DynamicUW)
	}
}
