package qor

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"vpga/internal/fsx"
)

// Tolerance is the drift gate's per-metric band: relative limits for
// the continuous QoR figures and absolute limits for the discrete
// ones. A regression is a change past its band in the *bad* direction
// (larger area/delay/wirelength/power/overflow, more repair attempts,
// lower yield); improvements never fail the gate, they are reported.
type Tolerance struct {
	RelGates      float64 `json:"rel_gates"`
	RelDieArea    float64 `json:"rel_die_area"`
	RelDelay      float64 `json:"rel_delay"`
	RelWirelength float64 `json:"rel_wirelength"`
	RelPower      float64 `json:"rel_power"`
	RelTracks     float64 `json:"rel_tracks"`
	AbsOverflow   int     `json:"abs_overflow"`
	AbsRepair     int     `json:"abs_repair"`
	AbsYield      float64 `json:"abs_yield"`
	// RelRuntime > 0 additionally gates total wall-clock runtime; off by
	// default because runtime is machine-dependent.
	RelRuntime float64 `json:"rel_runtime,omitempty"`
}

// DefaultTolerance is the committed gate: tight enough that a real
// QoR change (the paper's claims move in whole percents) trips it,
// loose enough to absorb cross-platform floating-point noise.
func DefaultTolerance() Tolerance {
	return Tolerance{
		RelGates:      0.02,
		RelDieArea:    0.02,
		RelDelay:      0.05,
		RelWirelength: 0.05,
		RelPower:      0.05,
		RelTracks:     0.10,
		AbsOverflow:   0,
		AbsRepair:     0,
		AbsYield:      0.02,
	}
}

// Delta is one metric comparison of one record: baseline value,
// current value, and the verdict. Status is "ok", "improved",
// "regressed", "missing" (in the baseline, absent from the current
// ledger — a coverage regression) or "new" (no baseline yet).
type Delta struct {
	ID     string  `json:"id"`
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	Cur    float64 `json:"cur"`
	// Rel is (cur-base)/|base|, 0 when base is 0.
	Rel    float64 `json:"rel"`
	Limit  string  `json:"limit"`
	Status string  `json:"status"`
}

// Verdict is the drift gate's machine-readable outcome.
type Verdict struct {
	Pass     bool    `json:"pass"`
	Compared int     `json:"compared"`
	Deltas   []Delta `json:"deltas"`
}

// Regressions returns the failing deltas (regressed and missing rows).
func (v *Verdict) Regressions() []Delta {
	var out []Delta
	for _, d := range v.Deltas {
		if d.Status == "regressed" || d.Status == "missing" {
			out = append(out, d)
		}
	}
	return out
}

// metricCheck compares one metric. sign is +1 when larger is worse,
// -1 when smaller is worse (yield, slack).
type metricCheck struct {
	name string
	get  func(Record) float64
	// rel > 0: relative band; otherwise abs is the absolute band.
	rel  func(Tolerance) float64
	abs  func(Tolerance) float64
	sign float64
}

var metricChecks = []metricCheck{
	{"gates", func(r Record) float64 { return r.Gates }, func(t Tolerance) float64 { return t.RelGates }, nil, +1},
	{"die_area", func(r Record) float64 { return r.DieArea }, func(t Tolerance) float64 { return t.RelDieArea }, nil, +1},
	{"delay_ps", func(r Record) float64 { return r.DelayPS }, func(t Tolerance) float64 { return t.RelDelay }, nil, +1},
	{"wirelength", func(r Record) float64 { return r.Wirelength }, func(t Tolerance) float64 { return t.RelWirelength }, nil, +1},
	{"power_uw", func(r Record) float64 { return r.PowerUW }, func(t Tolerance) float64 { return t.RelPower }, nil, +1},
	{"peak_track_demand", func(r Record) float64 { return r.PeakTrackDemand }, func(t Tolerance) float64 { return t.RelTracks }, nil, +1},
	{"overflow", func(r Record) float64 { return float64(r.Overflow) }, nil, func(t Tolerance) float64 { return float64(t.AbsOverflow) }, +1},
	{"repair_attempts", func(r Record) float64 { return float64(r.RepairAttempts) }, nil, func(t Tolerance) float64 { return float64(t.AbsRepair) }, +1},
	{"yield", func(r Record) float64 { return r.Yield }, nil, func(t Tolerance) float64 { return t.AbsYield }, -1},
	{"runtime_seconds", func(r Record) float64 { return r.RuntimeSeconds }, func(t Tolerance) float64 { return t.RelRuntime }, nil, +1},
}

// Diff compares the current ledger against the baseline records under
// the tolerance bands. Records are matched by ID (bench/arch/flow/
// seed); when a ledger holds several records for one ID — an
// append-only file accumulates history — the *latest* line wins, so
// diffing a long-lived ledger gates its newest run.
func Diff(baseline, current []Record, tol Tolerance) *Verdict {
	curByID := map[string]Record{}
	for _, r := range current {
		curByID[r.ID()] = r // later lines overwrite earlier history
	}
	v := &Verdict{Pass: true}
	seen := map[string]bool{}
	for _, base := range baseline {
		id := base.ID()
		seen[id] = true
		cur, ok := curByID[id]
		if !ok {
			v.Deltas = append(v.Deltas, Delta{ID: id, Metric: "(record)", Status: "missing",
				Limit: "present"})
			v.Pass = false
			continue
		}
		v.Compared++
		for _, mc := range metricChecks {
			b, c := mc.get(base), mc.get(cur)
			if mc.name == "yield" && b == 0 && c == 0 {
				continue // non-yield records: metric not applicable
			}
			if mc.name == "runtime_seconds" && (mc.rel == nil || mc.rel(tol) <= 0) {
				continue // perf gating off by default
			}
			d := Delta{ID: id, Metric: mc.name, Base: b, Cur: c}
			if b != 0 {
				d.Rel = (c - b) / math.Abs(b)
			}
			worse := mc.sign * (c - b) // > 0 means moved in the bad direction
			var within bool
			if mc.rel != nil && mc.rel(tol) > 0 {
				lim := mc.rel(tol)
				d.Limit = fmt.Sprintf("±%.1f%%", 100*lim)
				within = math.Abs(c-b) <= lim*math.Abs(b) || (b == 0 && c == 0)
			} else if mc.abs != nil {
				lim := mc.abs(tol)
				d.Limit = fmt.Sprintf("±%g", lim)
				within = math.Abs(c-b) <= lim
			} else {
				continue
			}
			switch {
			case within:
				d.Status = "ok"
			case worse > 0:
				d.Status = "regressed"
				v.Pass = false
			default:
				d.Status = "improved"
			}
			v.Deltas = append(v.Deltas, d)
		}
	}
	var fresh []string
	for id := range curByID {
		if !seen[id] {
			fresh = append(fresh, id)
		}
	}
	sort.Strings(fresh)
	for _, id := range fresh {
		v.Deltas = append(v.Deltas, Delta{ID: id, Metric: "(record)", Status: "new"})
	}
	return v
}

// Table renders the verdict for humans: one row per non-ok delta (all
// deltas when verbose), regressions first, with the offending
// benchmark/arch/metric named.
func (v *Verdict) Table(verbose bool) string {
	var sb strings.Builder
	rows := make([]Delta, 0, len(v.Deltas))
	for _, d := range v.Deltas {
		if verbose || d.Status != "ok" {
			rows = append(rows, d)
		}
	}
	rank := map[string]int{"missing": 0, "regressed": 1, "new": 2, "improved": 3, "ok": 4}
	sort.SliceStable(rows, func(i, j int) bool {
		if ri, rj := rank[rows[i].Status], rank[rows[j].Status]; ri != rj {
			return ri < rj
		}
		if rows[i].ID != rows[j].ID {
			return rows[i].ID < rows[j].ID
		}
		return rows[i].Metric < rows[j].Metric
	})
	verdict := "PASS"
	if !v.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "qor drift gate: %s (%d record(s) compared, %d finding(s))\n",
		verdict, v.Compared, len(rows))
	if len(rows) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %-32s %-18s %12s %12s %9s %8s %s\n",
		"record", "metric", "baseline", "current", "delta", "limit", "status")
	for _, d := range rows {
		if d.Metric == "(record)" {
			fmt.Fprintf(&sb, "  %-32s %-18s %12s %12s %9s %8s %s\n",
				d.ID, d.Metric, "-", "-", "-", d.Limit, d.Status)
			continue
		}
		fmt.Fprintf(&sb, "  %-32s %-18s %12.4g %12.4g %+8.2f%% %8s %s\n",
			d.ID, d.Metric, d.Base, d.Cur, 100*d.Rel, d.Limit, d.Status)
	}
	return sb.String()
}

// Baseline is the committed drift-gate reference (qor/baseline.json):
// the run parameters that produced it, the tolerance bands it is
// judged under, and the perf-stripped records.
type Baseline struct {
	Schema    int    `json:"schema"`
	Generated string `json:"generated,omitempty"`
	GitRev    string `json:"git_rev,omitempty"`
	// Scale/Seed/PlaceEffort are the gate-matrix parameters: refreshing
	// or re-checking the baseline replays exactly this configuration.
	Scale       string    `json:"scale"`
	Seed        int64     `json:"seed"`
	PlaceEffort int       `json:"place_effort"`
	Tolerance   Tolerance `json:"tolerance"`
	Records     []Record  `json:"records"`
}

// ReadBaseline loads and validates a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	enc, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("qor: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(enc, &b); err != nil {
		return nil, fmt.Errorf("qor: baseline %s: %w", path, err)
	}
	if b.Schema > SchemaVersion {
		return nil, fmt.Errorf("qor: baseline %s: schema %d newer than supported %d",
			path, b.Schema, SchemaVersion)
	}
	if len(b.Records) == 0 {
		return nil, fmt.Errorf("qor: baseline %s holds no records", path)
	}
	return &b, nil
}

// WriteBaseline writes the baseline as stable, indented JSON (it is a
// committed file, so diffs must be reviewable). Records are stored
// perf-stripped and sorted by ID. The write is atomic (temp file +
// fsync + rename): a baseline refresh interrupted mid-write leaves the
// previous baseline intact instead of a truncated gate input.
func WriteBaseline(path string, b *Baseline) error {
	b.Schema = SchemaVersion
	recs := append([]Record(nil), b.Records...)
	for i := range recs {
		recs[i].StripPerf()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID() < recs[j].ID() })
	b.Records = recs
	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("qor: encode baseline: %w", err)
	}
	return fsx.WriteFileBytesAtomic(path, append(enc, '\n'), 0o644)
}
