package qor

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"vpga/internal/core"
	"vpga/internal/obs"
)

// GateDesigns and GateArchs span the gate matrix: the same
// 4-benchmark x 2-architecture x 2-flow space as the paper's Tables
// 1 and 2, expressed as FlowRequests so every record carries the
// request cache key the daemon would use.
var (
	GateDesigns = []string{"alu", "firewire", "fpu", "switch"}
	GateArchs   = []string{"granular", "lut"}
	GateFlows   = []string{"a", "b"}
)

// GateOptions parameterizes the gate matrix.
type GateOptions struct {
	// Scale is "test" (default) or "paper".
	Scale string
	Seed  int64
	// PlaceEffort defaults to 3 — the bench-harness setting, fast and
	// exactly as deterministic as the default.
	PlaceEffort int
	// Parallel bounds concurrent runs (0 = GOMAXPROCS). Records are
	// identical at any width.
	Parallel int
	// Trace, when set, records every gate run on the tracer (one worker
	// row per pool slot), for the Chrome trace artifact.
	Trace *obs.Tracer
	// GitRev/Now stamp provenance onto the records ("" / zero = unset).
	GitRev string
	Now    time.Time
}

func (o GateOptions) withDefaults() GateOptions {
	if o.Scale == "" {
		o.Scale = "test"
	}
	if o.PlaceEffort == 0 {
		o.PlaceEffort = 3
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// GateRequests enumerates the gate matrix as canonical FlowRequests,
// in deterministic (design, arch, flow) order.
func GateRequests(opts GateOptions) []core.FlowRequest {
	opts = opts.withDefaults()
	var reqs []core.FlowRequest
	for _, d := range GateDesigns {
		for _, a := range GateArchs {
			for _, f := range GateFlows {
				reqs = append(reqs, core.FlowRequest{
					Design: d, Scale: opts.Scale,
					Arch: core.ArchSpec{Kind: a}, Flow: f,
					Seed: opts.Seed, PlaceEffort: opts.PlaceEffort,
				})
			}
		}
	}
	return reqs
}

// RunGate executes the gate matrix on a bounded worker pool and
// returns one Record per cell, sorted by ID. Each cell runs as an
// independent, request-shaped flow (the same runs POST /v1/runs would
// execute, carrying the same cache keys), traced so the records hold
// per-stage seconds and moves/s. The first failure aborts the gate:
// a cell that cannot run is itself a regression.
func RunGate(ctx context.Context, opts GateOptions) ([]Record, error) {
	opts = opts.withDefaults()
	reqs := GateRequests(opts)
	recs := make([]Record, len(reqs))
	errs := make([]error, len(reqs))
	sem := make(chan struct{}, opts.Parallel)
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req core.FlowRequest) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			key, err := req.CacheKey()
			if err != nil {
				errs[i] = err
				return
			}
			n := req.Normalize()
			run := opts.Trace.NewRun(n.Design + "/" + n.Arch.Kind + "/flow " + n.Flow)
			defer run.Close()
			rep, err := core.RunRequest(ctx, req, run)
			if err != nil {
				errs[i] = err
				return
			}
			recs[i] = FromReport(rep, n.Seed, key)
		}(i, req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("qor: gate run: %w", err)
		}
	}
	if !opts.Now.IsZero() || opts.GitRev != "" {
		now := opts.Now
		if now.IsZero() {
			now = time.Now()
		}
		for i := range recs {
			recs[i].Stamp(now, opts.GitRev)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID() < recs[j].ID() })
	return recs, nil
}
