// Package qor is the quality-of-results regression observatory: a
// durable, append-only JSONL ledger of flow-run QoR and performance
// figures, and a drift gate that diffs a fresh ledger against a
// committed baseline with per-metric tolerance bands.
//
// The split the whole package is organized around: a Record's QoR
// fields (area, delay, wirelength, track demand, repair count, ...)
// are deterministic for a fixed request + seed — the same property the
// service's content-addressed cache relies on — while its perf fields
// (wall-clock runtime, per-stage seconds, moves/s, git revision,
// timestamp) are execution artifacts. StripPerf zeroes the latter, so
// two records of the same run compare identical, and the drift gate
// judges QoR on exact per-metric bands while perf is tracked but, by
// default, not gated (it is machine-dependent).
package qor

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"vpga/internal/core"
	"vpga/internal/faultinject"
)

// SchemaVersion is the ledger record schema. Readers accept records at
// or below their own version; bumping it marks an incompatible field
// change.
const SchemaVersion = 1

// Record is one ledger line: the QoR and perf figures of one flow run,
// keyed by what ran (bench/arch/flow/seed) and, when the run came from
// a FlowRequest, by the request's content-address cache key.
type Record struct {
	Schema int `json:"schema"`

	// Identity: which cell of the experiment space this is.
	Bench string `json:"bench"`
	Arch  string `json:"arch"`
	Flow  string `json:"flow"`
	Seed  int64  `json:"seed"`
	// Key is the originating FlowRequest's cache key ("" when the run
	// was not request-shaped, e.g. a clock-pinned matrix cell).
	Key string `json:"key,omitempty"`

	// QoR: deterministic for fixed identity.
	Gates           float64 `json:"gates"`
	DieArea         float64 `json:"die_area"`
	PLBs            int     `json:"plbs,omitempty"`
	Utilization     float64 `json:"utilization,omitempty"`
	DelayPS         float64 `json:"delay_ps"`
	WorstSlackPS    float64 `json:"worst_slack_ps"`
	Wirelength      float64 `json:"wirelength"`
	Overflow        int     `json:"overflow"`
	ChannelTracks   int     `json:"channel_tracks,omitempty"`
	PeakTrackDemand float64 `json:"peak_track_demand,omitempty"`
	PowerUW         float64 `json:"power_uw"`
	RepairAttempts  int     `json:"repair_attempts,omitempty"`
	// Yield is populated only by yield-sweep records (fraction of defect
	// maps the repair ladder recovered).
	Yield float64 `json:"yield,omitempty"`

	// Perf: wall-clock execution artifacts, zeroed by StripPerf.
	Time           string             `json:"time,omitempty"`
	GitRev         string             `json:"git_rev,omitempty"`
	RuntimeSeconds float64            `json:"runtime_seconds,omitempty"`
	StageSeconds   map[string]float64 `json:"stage_seconds,omitempty"`
	MovesPerSec    float64            `json:"moves_per_sec,omitempty"`
	// Stage-cache provenance: which pipeline stages this run restored
	// from the stage-granular build cache vs computed. Perf, not QoR —
	// a cached-prefix run's QoR figures are bit-identical to a cold
	// run's, so cache luck must not affect drift gating.
	StageCacheHits   int      `json:"stage_cache_hits,omitempty"`
	StageCacheMisses int      `json:"stage_cache_misses,omitempty"`
	StagesRestored   []string `json:"stages_restored,omitempty"`
}

// ID is the record's identity within a ledger or baseline: the
// (bench, arch, flow, seed) cell it measures.
func (r Record) ID() string {
	return fmt.Sprintf("%s/%s/%s/seed%d", r.Bench, r.Arch, r.Flow, r.Seed)
}

// StripPerf zeroes the wall-clock fields — the ledger counterpart of
// core's Report.StripMetrics. Two records of the same request + seed
// are identical after StripPerf; the determinism suite asserts this.
func (r *Record) StripPerf() {
	if r == nil {
		return
	}
	r.Time = ""
	r.GitRev = ""
	r.RuntimeSeconds = 0
	r.StageSeconds = nil
	r.MovesPerSec = 0
	r.StageCacheHits = 0
	r.StageCacheMisses = 0
	r.StagesRestored = nil
}

// FromReport extracts a Record from a flow report. key may be "" for
// runs that are not request-shaped. Perf fields come from the report's
// observability block when the run was traced (Stages/Solver), and the
// caller stamps Time/GitRev afterwards if it wants them.
func FromReport(rep *core.Report, seed int64, key string) Record {
	rec := Record{
		Schema: SchemaVersion,
		// Reports carry display names ("ALU"); ledger identities use the
		// request-shaped lowercase form so IDs line up with FlowRequests.
		Bench: strings.ToLower(rep.Design), Arch: rep.Arch, Flow: rep.Flow, Seed: seed, Key: key,
		Gates: rep.GateCount, DieArea: rep.DieArea,
		PLBs: rep.Rows * rep.Cols, Utilization: rep.Utilization,
		DelayPS: rep.MaxArrival, WorstSlackPS: rep.WorstSlack,
		Wirelength: rep.Wirelength, Overflow: rep.Overflow,
		ChannelTracks: rep.ChannelTracks, PeakTrackDemand: rep.PeakTrackDemand,
		PowerUW: rep.PowerUW, RepairAttempts: len(rep.Attempts),
		RuntimeSeconds: rep.Runtime.Seconds(),
	}
	if len(rep.Stages) > 0 {
		rec.StageSeconds = make(map[string]float64, len(rep.Stages))
		for _, st := range rep.Stages {
			rec.StageSeconds[st.Stage] = st.Dur.Seconds()
		}
		if rep.Solver != nil && rec.StageSeconds["place"] > 0 {
			rec.MovesPerSec = float64(rep.Solver.AnnealProposed) / rec.StageSeconds["place"]
		}
	}
	for _, use := range rep.StageCache {
		if use.Hit {
			rec.StageCacheHits++
			rec.StagesRestored = append(rec.StagesRestored, use.Stage)
		} else {
			rec.StageCacheMisses++
		}
	}
	return rec
}

// Stamp fills the record's provenance fields: an RFC3339 timestamp and
// the git revision (skipped when rev is "").
func (r *Record) Stamp(now time.Time, rev string) {
	r.Time = now.UTC().Format(time.RFC3339)
	r.GitRev = rev
}

// GitRev best-effort resolves the working tree's short revision; it
// returns "" when git or the repository is unavailable — ledger
// provenance is optional, never fatal.
func GitRev(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Write encodes records as JSONL: one compact JSON object per line.
func Write(w io.Writer, recs ...Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		enc, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("qor: encode record %s: %w", rec.ID(), err)
		}
		bw.Write(enc)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Append appends records to the ledger at path, creating the file (and
// its directory) on first use. The ledger is append-only by
// construction: existing lines are never rewritten, so history
// survives a crash mid-append at worst as one truncated final line,
// which ReadAll skips as a torn tail. A failed in-process append
// additionally truncates the file back to its pre-append length, so a
// bounded retry starts from a clean tail instead of stacking partial
// lines mid-file (the daemon is the ledger's single writer; the
// truncation would be unsafe only with concurrent appender processes).
//
// The "ledger.append" fault point fires here: an injected torn write
// persists half the batch before erroring, exactly the artifact a real
// crash leaves.
func Append(path string, recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("qor: ledger dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("qor: open ledger: %w", err)
	}
	// Buffer the whole append so a multi-record batch lands as one
	// write, keeping concurrent appenders line-atomic on POSIX.
	var buf bytes.Buffer
	if err := Write(&buf, recs...); err != nil {
		f.Close()
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("qor: stat ledger: %w", err)
	}
	undo := func() {
		f.Truncate(st.Size())
	}
	if flt := faultinject.Arm("ledger.append"); flt != nil {
		if torn := flt.TornBytes(buf.Bytes()); torn != nil {
			f.Write(torn)
		}
		undo()
		f.Close()
		return fmt.Errorf("qor: append ledger: %w", flt.Err())
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		undo()
		f.Close()
		return fmt.Errorf("qor: append ledger: %w", err)
	}
	return f.Close()
}

// ReadStats reports what a ledger read skipped. A torn tail — the
// final non-blank line failing to parse, the artifact of a crash
// mid-append — is tolerated and surfaced here instead of failing the
// whole read; corruption anywhere else stays a hard error, because a
// bad line with valid lines after it is not a crash artifact.
type ReadStats struct {
	// Lines is the number of physical lines scanned.
	Lines int
	// TornTail is true when the final non-blank line was skipped.
	TornTail bool
	// TornLine and TornErr locate and describe the skipped line.
	TornLine int
	TornErr  string
}

// ReadAll decodes a JSONL ledger stream. Blank lines are skipped;
// unknown fields are tolerated (forward compatibility), but a record
// from a newer schema than this reader understands is an error. A
// truncated trailing line (torn write) is skipped silently; use
// ReadAllStats to observe the skip.
func ReadAll(r io.Reader) ([]Record, error) {
	recs, _, err := ReadAllStats(r)
	return recs, err
}

// ReadAllStats is ReadAll returning skip diagnostics alongside the
// records.
func ReadAllStats(r io.Reader) ([]Record, ReadStats, error) {
	var (
		recs  []Record
		stats ReadStats
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	// A parse failure is held pending one line: if any non-blank line
	// follows it the corruption is mid-file and fatal; if the stream
	// ends first it is a torn tail and skipped.
	pendingLine := 0
	var pendingErr error
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if pendingErr != nil {
			stats.Lines = line
			return recs, stats, fmt.Errorf("qor: ledger line %d: %w", pendingLine, pendingErr)
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			pendingLine, pendingErr = line, err
			continue
		}
		if rec.Schema > SchemaVersion {
			stats.Lines = line
			return recs, stats, fmt.Errorf("qor: ledger line %d: schema %d newer than supported %d",
				line, rec.Schema, SchemaVersion)
		}
		recs = append(recs, rec)
	}
	stats.Lines = line
	if err := sc.Err(); err != nil {
		return recs, stats, fmt.Errorf("qor: ledger line %d: %w", line, err)
	}
	if pendingErr != nil {
		stats.TornTail = true
		stats.TornLine = pendingLine
		stats.TornErr = pendingErr.Error()
	}
	return recs, stats, nil
}

// Read loads the ledger at path, skipping a torn trailing line.
func Read(path string) ([]Record, error) {
	recs, _, err := ReadStatsFile(path)
	return recs, err
}

// ReadStatsFile is Read returning skip diagnostics, so callers can
// warn about a torn tail instead of losing the signal.
func ReadStatsFile(path string) ([]Record, ReadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ReadStats{}, fmt.Errorf("qor: %w", err)
	}
	defer f.Close()
	return ReadAllStats(f)
}
