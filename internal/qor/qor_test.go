package qor

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vpga/internal/core"
	"vpga/internal/faultinject"
	"vpga/internal/obs"
)

// sampleRecord is a fully-populated record for schema tests.
func sampleRecord() Record {
	return Record{
		Schema: SchemaVersion,
		Bench:  "alu", Arch: "granular-plb", Flow: "flow b", Seed: 7, Key: "abc123",
		Gates: 1234.5, DieArea: 5678.9, PLBs: 144, Utilization: 0.81,
		DelayPS: 2101.25, WorstSlackPS: -12.5, Wirelength: 4040.25, Overflow: 0,
		ChannelTracks: 24, PeakTrackDemand: 19.5, PowerUW: 321.125,
		RepairAttempts: 2, Yield: 0.96,
		Time: "2026-08-05T00:00:00Z", GitRev: "deadbee",
		RuntimeSeconds: 1.25,
		StageSeconds:   map[string]float64{"place": 0.5, "route": 0.25},
		MovesPerSec:    2.5e6,
	}
}

// TestLedgerRoundTrip: Append then Read reproduces every field of
// every record, across multiple appends to the same file.
func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "ledger.jsonl")
	first := sampleRecord()
	second := sampleRecord()
	second.Seed = 8
	second.Yield = 0
	second.StageSeconds = nil
	if err := Append(path, first); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if err := Append(path, second); err != nil {
		t.Fatalf("append 2: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := []Record{first, second}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestLedgerReadErrors: mid-file corruption and future schemas are
// named errors, blank lines are skipped.
func TestLedgerReadErrors(t *testing.T) {
	// A bad line with a valid line after it is mid-file corruption,
	// not a crash artifact: still fatal, naming the line.
	bad := `{"schema":1,"bench":"a"` + "\n" + `{"schema":1,"bench":"b","arch":"x","flow":"a"}`
	if _, err := ReadAll(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-file corruption passed")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("corruption error does not name the line: %v", err)
	}
	if _, err := ReadAll(strings.NewReader(`{"schema":99,"bench":"a","arch":"x","flow":"a"}`)); err == nil {
		t.Fatal("future schema passed")
	}
	recs, err := ReadAll(strings.NewReader("\n" + `{"schema":1,"bench":"a","arch":"x","flow":"a","seed":1}` + "\n\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("blank-line ledger: %v (%d records)", err, len(recs))
	}
	// Unknown fields from a same-schema writer are tolerated.
	if _, err := ReadAll(strings.NewReader(`{"schema":1,"bench":"a","arch":"x","flow":"a","later_field":1}`)); err != nil {
		t.Fatalf("unknown field rejected: %v", err)
	}
}

// TestLedgerTornTail: a truncated final line — the artifact of a
// crash mid-append — is skipped with diagnostics instead of failing
// the read; the preceding complete records survive.
func TestLedgerTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	first := sampleRecord()
	second := sampleRecord()
	second.Seed = 8
	second.Yield = 0
	second.StageSeconds = nil
	if err := Append(path, first, second); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Tear the tail: re-append a record, then chop the file mid-line.
	third := sampleRecord()
	third.Seed = 9
	if err := Append(path, third); err != nil {
		t.Fatalf("append 3: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.LastIndexByte(bytes.TrimRight(raw, "\n"), '\n')
	torn := raw[:cut+1+20] // keep 20 bytes of the final line
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := ReadStatsFile(path)
	if err != nil {
		t.Fatalf("torn tail failed the read: %v", err)
	}
	if want := []Record{first, second}; !reflect.DeepEqual(recs, want) {
		t.Fatalf("torn-tail records:\ngot  %+v\nwant %+v", recs, want)
	}
	if !stats.TornTail || stats.TornLine != 3 || stats.TornErr == "" {
		t.Fatalf("torn-tail stats not surfaced: %+v", stats)
	}
	// Read (the plain loader) tolerates it too.
	if recs, err := Read(path); err != nil || len(recs) != 2 {
		t.Fatalf("Read on torn ledger: %v (%d records)", err, len(recs))
	}
}

// TestLedgerAppendFaultTruncatesBack: an injected torn append leaves
// bytes on disk, but the failed Append truncates back to the pre-append
// length so a retry starts from a clean tail.
func TestLedgerAppendFaultTruncatesBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := Append(path, sampleRecord()); err != nil {
		t.Fatalf("seed append: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(1, 1.0, []faultinject.Kind{faultinject.KindTorn}, "ledger.append")
	faultinject.Enable(in)
	t.Cleanup(faultinject.Disable)
	rec := sampleRecord()
	rec.Seed = 99
	err = Append(path, rec)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("failed append left bytes behind: %d -> %d", len(before), len(after))
	}
	faultinject.Disable()
	if err := Append(path, rec); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	recs, err := Read(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("post-retry read: %v (%d records)", err, len(recs))
	}
}

// TestRecordDeterminism is the acceptance property: the same request +
// seed yields identical QoR fields after StripPerf, traced or not.
func TestRecordDeterminism(t *testing.T) {
	req := core.FlowRequest{Design: "alu", Arch: core.ArchSpec{Kind: "granular"},
		Flow: "b", Seed: 5, PlaceEffort: 2}
	key, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	run := tr.NewRun("alu/granular/flow b")
	rep1, err := core.RunRequest(context.Background(), req, run)
	run.Close()
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	rep2, err := core.RunRequest(context.Background(), req, nil)
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}
	rec1 := FromReport(rep1, 5, key)
	rec2 := FromReport(rep2, 5, key)
	if rec1.StageSeconds == nil || rec1.MovesPerSec <= 0 {
		t.Fatalf("traced record carries no perf block: %+v", rec1)
	}
	rec1.Stamp(time.Now(), "abc")
	rec1.StripPerf()
	rec2.StripPerf()
	if !reflect.DeepEqual(rec1, rec2) {
		t.Fatalf("QoR fields differ for identical request+seed:\n%+v\n%+v", rec1, rec2)
	}
	if rec1.DelayPS <= 0 || rec1.Wirelength <= 0 || rec1.Gates <= 0 {
		t.Fatalf("record missing core QoR figures: %+v", rec1)
	}
	if rec1.ChannelTracks <= 0 || rec1.PeakTrackDemand <= 0 {
		t.Fatalf("record missing routing channel figures: %+v", rec1)
	}
}

// TestDiffPassAndPerturb: identical ledgers pass; a +10% delay
// perturbation fails with a delta naming the record and metric; a
// missing record fails; improvements do not fail.
func TestDiffPassAndPerturb(t *testing.T) {
	base := []Record{sampleRecord()}
	cur := []Record{sampleRecord()}
	tol := DefaultTolerance()

	v := Diff(base, cur, tol)
	if !v.Pass || v.Compared != 1 {
		t.Fatalf("identical ledgers: %+v\n%s", v, v.Table(true))
	}

	cur[0].DelayPS *= 1.10
	v = Diff(base, cur, tol)
	if v.Pass {
		t.Fatalf("+10%% delay passed the gate:\n%s", v.Table(true))
	}
	regs := v.Regressions()
	if len(regs) != 1 || regs[0].Metric != "delay_ps" || regs[0].ID != base[0].ID() {
		t.Fatalf("regressions = %+v", regs)
	}
	table := v.Table(false)
	for _, want := range []string{"FAIL", "delay_ps", "alu/granular-plb/flow b/seed7", "regressed"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}

	// An improvement in the same band direction passes.
	cur[0].DelayPS = base[0].DelayPS * 0.80
	v = Diff(base, cur, tol)
	if !v.Pass {
		t.Fatalf("20%% delay improvement failed:\n%s", v.Table(true))
	}
	improved := false
	for _, d := range v.Deltas {
		if d.Metric == "delay_ps" && d.Status == "improved" {
			improved = true
		}
	}
	if !improved {
		t.Fatalf("improvement not reported: %+v", v.Deltas)
	}

	// Yield moving down past the band regresses; overflow is exact.
	cur[0].DelayPS = base[0].DelayPS
	cur[0].Yield = base[0].Yield - 0.10
	cur[0].Overflow = base[0].Overflow + 1
	v = Diff(base, cur, tol)
	got := map[string]bool{}
	for _, d := range v.Regressions() {
		got[d.Metric] = true
	}
	if !got["yield"] || !got["overflow"] {
		t.Fatalf("yield/overflow regressions not flagged: %+v", v.Regressions())
	}

	// A record that disappeared from the current ledger is a failure.
	v = Diff(base, nil, tol)
	if v.Pass || len(v.Regressions()) != 1 || v.Regressions()[0].Status != "missing" {
		t.Fatalf("missing record not flagged: %+v", v)
	}

	// A brand-new record is informational, never a failure.
	extra := sampleRecord()
	extra.Bench = "fir"
	v = Diff(base, []Record{sampleRecord(), extra}, tol)
	if !v.Pass {
		t.Fatalf("new record failed the gate:\n%s", v.Table(true))
	}
}

// TestDiffLatestLineWins: an append-only ledger that accumulated
// history for one ID is judged on its newest line.
func TestDiffLatestLineWins(t *testing.T) {
	base := []Record{sampleRecord()}
	stale := sampleRecord()
	stale.DelayPS *= 2 // old regression, since fixed
	v := Diff(base, []Record{stale, sampleRecord()}, DefaultTolerance())
	if !v.Pass {
		t.Fatalf("latest line did not win:\n%s", v.Table(true))
	}
}

// TestBaselineRoundTrip: WriteBaseline strips perf, sorts records and
// survives ReadBaseline; future schemas and empty baselines are
// rejected.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor", "baseline.json")
	b := &Baseline{
		Generated: "2026-08-05T00:00:00Z", GitRev: "deadbee",
		Scale: "test", Seed: 1, PlaceEffort: 3,
		Tolerance: DefaultTolerance(),
		Records:   []Record{sampleRecord()},
	}
	if err := WriteBaseline(path, b); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Schema != SchemaVersion || got.Seed != 1 || got.Scale != "test" {
		t.Fatalf("baseline header: %+v", got)
	}
	if len(got.Records) != 1 {
		t.Fatalf("records: %d", len(got.Records))
	}
	if got.Records[0].Time != "" || got.Records[0].StageSeconds != nil || got.Records[0].RuntimeSeconds != 0 {
		t.Fatalf("baseline record not perf-stripped: %+v", got.Records[0])
	}
	if got.Tolerance != DefaultTolerance() {
		t.Fatalf("tolerance: %+v", got.Tolerance)
	}

	if err := os.WriteFile(path, []byte(`{"schema":1,"records":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil {
		t.Fatal("empty baseline passed")
	}
}

// TestGateRequests: the gate spans the full 4x2x2 matrix with valid,
// distinct cache keys.
func TestGateRequests(t *testing.T) {
	reqs := GateRequests(GateOptions{Seed: 1})
	if len(reqs) != 16 {
		t.Fatalf("gate has %d cells, want 16", len(reqs))
	}
	keys := map[string]bool{}
	for _, req := range reqs {
		key, err := req.CacheKey()
		if err != nil {
			t.Fatalf("cell %+v: %v", req, err)
		}
		if keys[key] {
			t.Fatalf("duplicate cache key for %+v", req)
		}
		keys[key] = true
	}
}

// TestWriteReader: Write emits one compact JSON line per record.
func TestWriteReader(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleRecord(), sampleRecord()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if strings.ContainsAny(line, "\t ") && strings.Contains(line, ": ") {
			t.Fatalf("line not compact: %q", line)
		}
	}
}
