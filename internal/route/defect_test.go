package route

import (
	"container/heap"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// refHeap is the former container/heap frontier, kept as the reference
// implementation for the pq regression test.
type refHeap []pqItem

func (q refHeap) Len() int            { return len(q) }
func (q refHeap) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q refHeap) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refHeap) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *refHeap) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// TestPQMatchesContainerHeap: the hand-rolled frontier must pop items
// in exactly the order container/heap would, including tie-breaks —
// that is the invariant that keeps routing results unchanged by the
// boxing-free rewrite. Keys are quantized so ties are frequent.
func TestPQMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		var got pq
		var want refHeap
		n := 1 + rng.Intn(200)
		seed := make([]pqItem, n)
		for i := range seed {
			f := float64(rng.Intn(20)) // quantized: many equal keys
			seed[i] = pqItem{pt: point{int16(i), int16(trial)}, g: f, f: f}
		}
		got = append(got, seed...)
		want = append(want, seed...)
		got.init()
		heap.Init(&want)
		// Interleave pushes and pops.
		for len(want) > 0 {
			if rng.Intn(3) == 0 {
				f := float64(rng.Intn(20))
				it := pqItem{pt: point{int16(rng.Intn(100)), -1}, g: f, f: f}
				got.push(it)
				heap.Push(&want, it)
			}
			g := got.pop()
			w := heap.Pop(&want).(pqItem)
			if g != w {
				t.Fatalf("trial %d: pop diverged: got %+v, want %+v", trial, g, w)
			}
		}
		if len(got) != 0 {
			t.Fatalf("trial %d: custom heap retained %d items", trial, len(got))
		}
	}
}

// TestRouteDeterministicAcrossRuns: routing the same placement twice
// must produce identical results — the end-to-end regression for the
// pq rewrite.
func TestRouteDeterministicAcrossRuns(t *testing.T) {
	prob := prepPlacement(t, src)
	a, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical routing inputs produced different results")
	}
}

// testFaults is a closure-backed FaultModel.
type testFaults struct {
	dead func(horizontal bool, xn, yn float64) bool
	via  func(xn, yn float64) bool
}

func (f testFaults) DeadTrack(horizontal bool, xn, yn float64) bool {
	if f.dead == nil {
		return false
	}
	return f.dead(horizontal, xn, yn)
}

func (f testFaults) ViaFault(xn, yn float64) bool {
	if f.via == nil {
		return false
	}
	return f.via(xn, yn)
}

// TestDeadTracksAvoided: with a mid-die band of dead vertical tracks
// (leaving a corridor on the right), routing must complete without
// ever using a dead edge.
func TestDeadTracksAvoided(t *testing.T) {
	dead := func(horizontal bool, xn, yn float64) bool {
		return !horizontal && yn > 0.4 && yn < 0.6 && xn < 0.8
	}
	prob := prepPlacement(t, src)
	res, err := Route(prob, Options{Faults: testFaults{dead: dead}})
	if err != nil {
		t.Fatal(err)
	}
	fx := 1 / float64(res.CellsX)
	fy := 1 / float64(res.CellsY)
	for ni, edges := range res.netEdges {
		for _, e := range edges {
			var xn, yn float64
			if e.horizontal {
				x := int(e.idx) % (res.CellsX - 1)
				y := int(e.idx) / (res.CellsX - 1)
				xn, yn = (float64(x)+1.0)*fx, (float64(y)+0.5)*fy
			} else {
				x := int(e.idx) % res.CellsX
				y := int(e.idx) / res.CellsX
				xn, yn = (float64(x)+0.5)*fx, (float64(y)+1.0)*fy
			}
			if dead(e.horizontal, xn, yn) {
				t.Fatalf("net %d routed through dead edge (h=%v idx=%d)", ni, e.horizontal, e.idx)
			}
		}
	}
	if res.Total <= 0 {
		t.Fatal("zero wirelength")
	}
}

// TestViaFaultPenaltyRaisesCost: penalizing the die center should not
// break routing, and the result must remain deterministic.
func TestViaFaultPenaltyRaisesCost(t *testing.T) {
	via := func(xn, yn float64) bool {
		return xn > 0.3 && xn < 0.7 && yn > 0.3 && yn < 0.7
	}
	prob := prepPlacement(t, src)
	res, err := Route(prob, Options{Faults: testFaults{via: via}})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The penalized route detours, so total wirelength can only grow.
	if res.Total < clean.Total {
		t.Fatalf("via penalties shortened wirelength: %.1f < %.1f", res.Total, clean.Total)
	}
}

// TestUnroutableReturnsRouteError: an all-dead fabric must fail with a
// structured *RouteError naming the failing net.
func TestUnroutableReturnsRouteError(t *testing.T) {
	prob := prepPlacement(t, src)
	_, err := Route(prob, Options{Faults: testFaults{
		dead: func(bool, float64, float64) bool { return true },
	}})
	if err == nil {
		t.Fatal("expected routing failure on all-dead fabric")
	}
	var re *RouteError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a *RouteError: %v", err, err)
	}
	if re.Net < 0 || re.Net >= len(prob.Nets) {
		t.Fatalf("RouteError.Net = %d out of range", re.Net)
	}
	if re.Iteration < 1 {
		t.Fatalf("RouteError.Iteration = %d, want >= 1", re.Iteration)
	}
	if re.Err == nil || re.Unwrap() == nil {
		t.Fatal("RouteError carries no cause")
	}
}

// TestRouteCancellation: a cancelled context aborts at the next
// negotiation-iteration boundary.
func TestRouteCancellation(t *testing.T) {
	prob := prepPlacement(t, src)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Route(prob, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Route under cancelled ctx returned %v, want context.Canceled", err)
	}
}

// TestCapacityScale widens the derived capacity multiplicatively.
func TestCapacityScale(t *testing.T) {
	prob := prepPlacement(t, src)
	base, err := Route(prob, Options{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Route(prob, Options{Capacity: 10, CapacityScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if base.opts.Capacity != 10 || wide.opts.Capacity != 20 {
		t.Fatalf("capacities %d and %d, want 10 and 20", base.opts.Capacity, wide.opts.Capacity)
	}
	if wide.Overflow > base.Overflow {
		t.Fatalf("doubling capacity increased overflow: %d -> %d", base.Overflow, wide.Overflow)
	}
}
