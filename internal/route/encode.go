package route

import (
	"encoding/json"
	"fmt"
)

// JSON encoding of a routed design, used by the stage-granular
// artifact pipeline to serialize the routing stage's output. The wire
// form carries every field a consumer of a *Result can observe —
// lengths, sink distances, overflow, the RC model scalars behind
// WireRC/NetCap/Capacity, and the per-edge usage + per-net edge lists
// behind AssignTracks — so a decoded result is indistinguishable from
// the one the router produced. Transport-only state (pool, context,
// trace, fault model) is deliberately absent: a restored result is
// inert data.

// encRouteSchema versions the wire form; decoders reject anything
// newer.
const encRouteSchema = 1

type encResult struct {
	Schema         int         `json:"schema"`
	CellsX         int         `json:"cells_x"`
	CellsY         int         `json:"cells_y"`
	BinW           float64     `json:"bin_w"`
	BinH           float64     `json:"bin_h"`
	NetLength      []float64   `json:"net_length"`
	Total          float64     `json:"total"`
	SinkDist       [][]float64 `json:"sink_dist"`
	Overflow       int         `json:"overflow"`
	MaxUtilization float64     `json:"max_utilization"`
	Iterations     int         `json:"iterations"`

	// The RC/capacity model scalars the Result's methods read.
	Capacity             int     `json:"capacity"`
	RPerUnit             float64 `json:"r_per_unit"`
	CPerUnit             float64 `json:"c_per_unit"`
	RepeatedDelayPerUnit float64 `json:"repeated_delay_per_unit"`
	MaxLoadFF            float64 `json:"max_load_ff"`

	// NetEdges[n][k] packs edgeRef{horizontal, idx} as idx<<1|horiz.
	NetEdges [][]int32 `json:"net_edges"`
	HEdges   []int16   `json:"h_edges"`
	VEdges   []int16   `json:"v_edges"`
}

// MarshalJSON encodes the routed design.
func (r *Result) MarshalJSON() ([]byte, error) {
	enc := encResult{
		Schema: encRouteSchema,
		CellsX: r.CellsX, CellsY: r.CellsY, BinW: r.BinW, BinH: r.BinH,
		NetLength: r.NetLength, Total: r.Total, SinkDist: r.SinkDist,
		Overflow: r.Overflow, MaxUtilization: r.MaxUtilization, Iterations: r.Iterations,
		Capacity: r.opts.Capacity, RPerUnit: r.opts.RPerUnit, CPerUnit: r.opts.CPerUnit,
		RepeatedDelayPerUnit: r.opts.RepeatedDelayPerUnit, MaxLoadFF: r.opts.MaxLoadFF,
		HEdges: r.hEdges, VEdges: r.vEdges,
	}
	enc.NetEdges = make([][]int32, len(r.netEdges))
	for ni, edges := range r.netEdges {
		packed := make([]int32, len(edges))
		for k, e := range edges {
			p := e.idx << 1
			if e.horizontal {
				p |= 1
			}
			packed[k] = p
		}
		enc.NetEdges[ni] = packed
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes a result encoded by MarshalJSON.
func (r *Result) UnmarshalJSON(data []byte) error {
	var enc encResult
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	if enc.Schema > encRouteSchema {
		return fmt.Errorf("route: wire schema %d is newer than supported %d", enc.Schema, encRouteSchema)
	}
	*r = Result{
		CellsX: enc.CellsX, CellsY: enc.CellsY, BinW: enc.BinW, BinH: enc.BinH,
		NetLength: enc.NetLength, Total: enc.Total, SinkDist: enc.SinkDist,
		Overflow: enc.Overflow, MaxUtilization: enc.MaxUtilization, Iterations: enc.Iterations,
		opts: Options{
			Capacity: enc.Capacity, RPerUnit: enc.RPerUnit, CPerUnit: enc.CPerUnit,
			RepeatedDelayPerUnit: enc.RepeatedDelayPerUnit, MaxLoadFF: enc.MaxLoadFF,
		},
		hEdges: enc.HEdges, vEdges: enc.VEdges,
	}
	r.netEdges = make([][]edgeRef, len(enc.NetEdges))
	for ni, packed := range enc.NetEdges {
		edges := make([]edgeRef, len(packed))
		for k, p := range packed {
			edges[k] = edgeRef{horizontal: p&1 != 0, idx: p >> 1}
		}
		r.netEdges[ni] = edges
	}
	return nil
}
