package route

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestRouteResultRoundTrip: encode → decode reproduces a routed design
// completely enough that every downstream consumer — Capacity, WireRC,
// NetCap, AssignTracks — answers identically, and re-encoding is
// byte-stable (the stage cache restores routes from this wire form).
func TestRouteResultRoundTrip(t *testing.T) {
	prob := prepPlacement(t, src)
	orig, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}

	if back.Capacity() != orig.Capacity() {
		t.Fatalf("capacity %d, want %d", back.Capacity(), orig.Capacity())
	}
	for ni := range prob.Nets {
		if got, want := back.NetCap(ni), orig.NetCap(ni); got != want {
			t.Fatalf("net %d cap %v, want %v", ni, got, want)
		}
		for k := 0; k < len(orig.SinkDist[ni]); k++ {
			gd, gc := back.WireRC(ni, k)
			wd, wc := orig.WireRC(ni, k)
			if gd != wd || gc != wc {
				t.Fatalf("net %d sink %d RC (%v,%v), want (%v,%v)", ni, k, gd, gc, wd, wc)
			}
		}
	}
	if !reflect.DeepEqual(back.AssignTracks(), orig.AssignTracks()) {
		t.Fatal("track assignment diverged after round trip")
	}

	re, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("re-encoding not byte-identical")
	}
}

// TestRouteResultDecodeRejects: a newer schema is refused — an old
// binary must treat a future cache entry as a miss, not misread it.
func TestRouteResultDecodeRejects(t *testing.T) {
	prob := prepPlacement(t, src)
	orig, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(enc), `"schema":1`, `"schema":99`, 1)
	if bad == string(enc) {
		t.Fatal("schema mutation did not apply")
	}
	var back Result
	if err := json.Unmarshal([]byte(bad), &back); err == nil {
		t.Error("decode accepted a newer schema")
	}
}
