// Package route implements the ASIC-style global routing stage of the
// paper's flow: the VPGA routes on upper metal layers directly above
// the PLB array. The router is a PathFinder-style negotiated-congestion
// maze router over a uniform grid with per-edge capacities, building a
// routing tree per net and extracting wirelength and Elmore RC
// parasitics for post-layout timing.
package route

import (
	"context"
	"fmt"
	"math"

	"vpga/internal/obs"
	"vpga/internal/place"
)

// FaultModel describes fabric routing defects to the router without
// coupling it to a particular defect representation (defect.Map
// implements it). Coordinates are normalized to [0,1] over the die.
type FaultModel interface {
	// DeadTrack reports an open-circuit track bundle crossing the given
	// position in the given direction; such edges are unusable.
	DeadTrack(horizontal bool, xn, yn float64) bool
	// ViaFault reports unreliable via formation at the given position;
	// edges incident to it are penalized so routes prefer detours.
	ViaFault(xn, yn float64) bool
}

// Options tunes the router.
type Options struct {
	// CellsX/CellsY is the routing grid; zero derives it from the
	// placement (about one bin per PLB pitch).
	CellsX, CellsY int
	// Capacity is the track count per grid edge (default 24).
	Capacity int
	// MaxIters bounds rip-up-and-reroute rounds (default 12).
	MaxIters int
	// RPerUnit and CPerUnit are wire resistance (kΩ) and capacitance
	// (fF) per placement distance unit (defaults 0.08 kΩ, 0.20 fF: a
	// scaled mid-layer metal wire).
	RPerUnit, CPerUnit float64
	// RepeatedDelayPerUnit is the delay of an optimally repeated wire
	// in ps per unit (default 2.4, derived from the BUF cell: segment
	// length L* = sqrt(2·Rb·Cb/(r·c)) ≈ 17 units at ≈ 42 ps per
	// segment). Long-wire Elmore delay is capped at this linear model,
	// standing in for the repeater insertion the paper's physical
	// synthesis performs. Zero disables the cap.
	RepeatedDelayPerUnit float64
	// MaxLoadFF bounds the capacitance a driver sees (the repeater
	// nearest the driver isolates the rest of the tree); default 30 fF,
	// zero disables.
	MaxLoadFF float64
	// CapacityScale multiplies the (derived or explicit) per-edge
	// capacity; zero means 1.0. The repair ladder widens channels by
	// raising it.
	CapacityScale float64
	// CellsScale > 1 coarsens the routing grid by that factor: fewer,
	// physically wider channels. Under a fault model a coarser grid
	// samples dead tracks at different normalized coordinates, so the
	// repair ladder uses it to dissolve topological cuts that no
	// reroute can cross.
	CellsScale float64
	// Faults injects fabric routing defects: dead tracks are excluded
	// from the search graph, via-faulted cells penalize their incident
	// edges. Nil means a clean fabric.
	Faults FaultModel
	// Pool, when set, checks the router's working arrays out of a
	// shared pool instead of allocating them per run (see State).
	// Pooled and cold runs are bit-identical; nil allocates per run.
	Pool *Pool
	// Ctx cancels a running Route at negotiation-iteration boundaries;
	// nil never cancels. A run that completes without cancellation is
	// bit-identical to one routed without a context.
	Ctx context.Context
	// Trace, when set, records the per-iteration overflow trajectory
	// and the snapshotted best iteration. Observation only: it is never
	// consulted by the negotiation, and a nil trace costs one nil check
	// per iteration.
	Trace *obs.RouteTrace
}

// RouteError identifies the failing net when routing cannot complete,
// so repair loops can key off structured fields instead of parsing
// error strings.
type RouteError struct {
	// Net is the placement net index that could not be routed.
	Net int
	// Iteration is the 1-based negotiation iteration at failure.
	Iteration int
	// Overflow is the total edge-capacity overflow at failure time.
	Overflow int
	Err      error
}

func (e *RouteError) Error() string {
	return fmt.Sprintf("route: net %d unroutable at iteration %d (overflow %d): %v",
		e.Net, e.Iteration, e.Overflow, e.Err)
}

func (e *RouteError) Unwrap() error { return e.Err }

// Result is a routed design.
type Result struct {
	CellsX, CellsY int
	BinW, BinH     float64
	// Wirelength per net in placement units, and in total.
	NetLength []float64
	Total     float64
	// SinkDist[net][k] is the tree path length from the driver to sink
	// k (ordering matches place.Net.Objs[1:]).
	SinkDist [][]float64
	// Overflow is the number of edge-capacity violations remaining.
	Overflow int
	// MaxUtilization is the peak edge usage / capacity.
	MaxUtilization float64
	// Iterations actually run.
	Iterations int

	opts Options
	// Retained for detailed routing (track assignment).
	netEdges       [][]edgeRef
	hEdges, vEdges []int16
}

// Capacity returns the per-edge track capacity the router actually
// used (the derived or explicit channel width, after CapacityScale).
func (r *Result) Capacity() int {
	return r.opts.Capacity
}

// WireRC returns the wire delay (ps) and load capacitance (fF) seen by
// net n's driver toward sink k. Short wires follow the lumped Elmore
// model delay = r·L·(c·L/2); past the repeater crossover the delay is
// capped at the linear optimally-repeated-wire model (see
// Options.RepeatedDelayPerUnit).
func (r *Result) WireRC(net, sink int) (delayPS, capFF float64) {
	L := r.SinkDist[net][sink]
	elmore := r.opts.RPerUnit * L * (r.opts.CPerUnit * L / 2)
	if rep := r.opts.RepeatedDelayPerUnit; rep > 0 {
		if lin := rep * L; lin < elmore {
			elmore = lin
		}
	}
	return elmore, r.NetCap(net)
}

// NetCap returns the wire capacitance net n presents to its driver:
// the tree's total capacitance, bounded by MaxLoadFF when repeaters
// isolate the driver from the far tree.
func (r *Result) NetCap(net int) float64 {
	c := r.opts.CPerUnit * r.NetLength[net]
	if r.opts.MaxLoadFF > 0 && c > r.opts.MaxLoadFF {
		return r.opts.MaxLoadFF
	}
	return c
}

type point struct{ x, y int16 }

// Route routes every placement net.
func Route(prob *place.Problem, opts Options) (*Result, error) {
	if opts.MaxIters == 0 {
		opts.MaxIters = 12
	}
	if opts.RPerUnit == 0 {
		opts.RPerUnit = 0.08
	}
	if opts.CPerUnit == 0 {
		opts.CPerUnit = 0.20
	}
	if opts.RepeatedDelayPerUnit == 0 {
		opts.RepeatedDelayPerUnit = 2.4
	}
	if opts.MaxLoadFF == 0 {
		opts.MaxLoadFF = 30
	}
	if opts.CellsX == 0 {
		opts.CellsX = clampInt(int(math.Ceil(prob.W/4)), 4, 512)
	}
	if opts.CellsY == 0 {
		opts.CellsY = clampInt(int(math.Ceil(prob.H/4)), 4, 512)
	}
	if opts.CellsScale > 1 {
		opts.CellsX = clampInt(int(float64(opts.CellsX)/opts.CellsScale), 2, 512)
		opts.CellsY = clampInt(int(float64(opts.CellsY)/opts.CellsScale), 2, 512)
	}
	if opts.Capacity == 0 {
		// Track capacity scales with the bin span: roughly 20 tracks of
		// upper-layer metal per placement unit of bin width (the VPGA
		// routes ASIC-style across several metal layers above the
		// array).
		binW := prob.W / float64(opts.CellsX)
		opts.Capacity = clampInt(int(binW*20), 24, 4096)
	}
	if opts.CapacityScale > 0 {
		opts.Capacity = maxI(1, int(float64(opts.Capacity)*opts.CapacityScale))
	}
	r := &router{prob: prob, opts: opts}
	return r.run()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

type router struct {
	prob *place.Problem
	opts Options

	nx, ny int
	binW   float64
	binH   float64

	// st holds the working arrays (usage, history, incidence, A*
	// scratch, tree buffers), possibly checked out from a Pool. hUse
	// and vUse alias st's arrays for the hot paths: horizontal edges
	// (x,y)→(x+1,y) number (nx-1)*ny, vertical edges (x,y)→(x,y+1)
	// number nx*(ny-1).
	st         *State
	hUse, vUse []int16

	netEdges [][]edgeRef // edges per net for rip-up

	// totalOver mirrors the capacity overflow summed over all edges,
	// maintained incrementally by addEdge/removeEdge so the
	// negotiation loop never rescans the usage arrays. The
	// totalOverflow() scan remains as the test oracle.
	totalOver int

	// Fabric faults, precomputed per edge from opts.Faults: dead edges
	// are excluded from the search graph, penalized edges carry a fixed
	// detour surcharge (via faults). Nil slices mean a clean fabric.
	hDead, vDead []bool
	hPen, vPen   []float32

	// Current A* search window.
	winX0, winY0, winX1, winY1 int
}

type edgeRef struct {
	horizontal bool
	idx        int32
}

func (r *router) hIdx(x, y int) int { return y*(r.nx-1) + x }
func (r *router) vIdx(x, y int) int { return y*r.nx + x }

func (r *router) binOf(oi int32) point {
	o := &r.prob.Objs[oi]
	x := int16(clampInt(int(o.X/r.binW), 0, r.nx-1))
	y := int16(clampInt(int(o.Y/r.binH), 0, r.ny-1))
	return point{x, y}
}

func (r *router) run() (*Result, error) {
	r.nx, r.ny = r.opts.CellsX, r.opts.CellsY
	r.binW = r.prob.W / float64(r.nx)
	r.binH = r.prob.H / float64(r.ny)
	nets := r.prob.Nets
	r.st = r.opts.Pool.get()
	defer func() { r.opts.Pool.put(r.st) }()
	r.st.prepare(r.nx, r.ny, len(nets))
	r.hUse, r.vUse = r.st.hUse, r.st.vUse
	r.netEdges = make([][]edgeRef, len(nets))
	r.applyFaults()

	presentFactor := 0.5
	iters := 0
	// Negotiation can oscillate: a later rip-up round may end worse
	// than an earlier one. Keep the lowest-overflow iteration and
	// restore it at the end, so more iterations never hurt. Snapshots
	// are cheap: usage arrays are copied, per-net edge slices are
	// rebuilt (not mutated) on reroute, so their headers are safely
	// shared.
	bestOver := -1
	bestIter := 0
	var bestHUse, bestVUse []int16
	var bestNetEdges [][]edgeRef
	snapshot := func(over int) {
		bestOver = over
		bestIter = iters
		bestHUse = append(bestHUse[:0], r.hUse...)
		bestVUse = append(bestVUse[:0], r.vUse...)
		bestNetEdges = append(bestNetEdges[:0], r.netEdges...)
	}
	for iter := 0; iter < r.opts.MaxIters; iter++ {
		// Cancellation is honored only at iteration boundaries, so a run
		// that completes is bit-identical with or without a context.
		if r.opts.Ctx != nil {
			if err := r.opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("route: cancelled at iteration %d: %w", iter, err)
			}
		}
		iters = iter + 1
		rerouted := 0
		for ni := range nets {
			// The overflow check is deliberately lazy — evaluated when
			// the loop reaches the net, after earlier nets rerouted —
			// so a net pushed into overflow mid-iteration is rerouted
			// the same round. netOverCnt makes the check O(1).
			if iter > 0 && r.st.netOverCnt[ni] == 0 {
				continue
			}
			r.ripup(ni)
			if err := r.routeNet(ni, presentFactor); err != nil {
				return nil, &RouteError{Net: ni, Iteration: iters, Overflow: r.totalOver, Err: err}
			}
			rerouted++
		}
		if overflowAudit != nil {
			overflowAudit(r)
		}
		over := r.totalOver
		r.opts.Trace.Iteration(over)
		if bestOver < 0 || over < bestOver {
			snapshot(over)
		}
		if over == 0 {
			break
		}
		// Accumulate history on congested edges.
		for i, u := range r.hUse {
			if int(u) > r.opts.Capacity {
				r.st.hHist[i] += float32(int(u) - r.opts.Capacity)
			}
		}
		for i, u := range r.vUse {
			if int(u) > r.opts.Capacity {
				r.st.vHist[i] += float32(int(u) - r.opts.Capacity)
			}
		}
		presentFactor *= 1.6
		if rerouted == 0 {
			break
		}
	}
	if bestOver >= 0 && bestOver < r.totalOver {
		// The incidence lists and per-net overflow counters are not
		// restored: nothing reads them after the loop.
		copy(r.hUse, bestHUse)
		copy(r.vUse, bestVUse)
		copy(r.netEdges, bestNetEdges)
		r.totalOver = bestOver
	}
	r.opts.Trace.Best(bestIter)
	return r.finish(iters)
}

// overflowAudit, when set by a test, runs at every negotiation
// iteration boundary to cross-check the incrementally maintained
// overflow state against full scans. Never set outside tests.
var overflowAudit func(*router)

// totalOverflow recomputes the capacity overflow by scanning both
// usage arrays: the oracle the incrementally-maintained totalOver is
// tested against. The negotiation loop itself never calls it.
func (r *router) totalOverflow() int {
	over := 0
	for _, u := range r.hUse {
		if int(u) > r.opts.Capacity {
			over += int(u) - r.opts.Capacity
		}
	}
	for _, u := range r.vUse {
		if int(u) > r.opts.Capacity {
			over += int(u) - r.opts.Capacity
		}
	}
	return over
}

// addEdge commits one edge of net ni's tree: usage, the edge's net
// incidence list, the running total overflow, and — when the edge
// crosses the capacity boundary — the per-net overflowed-ref counters
// of every net holding it.
func (r *router) addEdge(ni int32, e edgeRef) {
	use, on := r.vUse, r.st.vOn
	if e.horizontal {
		use, on = r.hUse, r.st.hOn
	}
	on[e.idx] = append(on[e.idx], ni)
	u := use[e.idx] + 1
	use[e.idx] = u
	if int(u) > r.opts.Capacity {
		r.totalOver++
		if int(u) == r.opts.Capacity+1 {
			for _, nj := range on[e.idx] {
				r.st.netOverCnt[nj]++
			}
		} else {
			r.st.netOverCnt[ni]++
		}
	}
}

// removeEdge is addEdge's inverse, called from ripup.
func (r *router) removeEdge(ni int32, e edgeRef) {
	use, on := r.vUse, r.st.vOn
	if e.horizontal {
		use, on = r.hUse, r.st.hOn
	}
	u := use[e.idx]
	if int(u) > r.opts.Capacity {
		r.totalOver--
		if int(u) == r.opts.Capacity+1 {
			for _, nj := range on[e.idx] {
				r.st.netOverCnt[nj]--
			}
		} else {
			r.st.netOverCnt[ni]--
		}
	}
	use[e.idx] = u - 1
	// Unordered remove of ni from the incidence list; each edge holds
	// a net at most once, and list order only sequences counter
	// updates, never their values.
	list := on[e.idx]
	for k, nj := range list {
		if nj == ni {
			list[k] = list[len(list)-1]
			on[e.idx] = list[:len(list)-1]
			break
		}
	}
}

func (r *router) ripup(ni int) {
	for _, e := range r.netEdges[ni] {
		r.removeEdge(int32(ni), e)
	}
	r.netEdges[ni] = nil
}

// viaFaultPenalty is the surcharge on edges incident to a via-faulted
// tile: several times the unit edge cost, so routes detour around the
// tile whenever a modest detour exists, without making it unreachable.
const viaFaultPenalty = 8.0

// applyFaults precomputes per-edge fault state from opts.Faults. Each
// edge is sampled at its midpoint in normalized fabric coordinates;
// via faults are sampled at tile centers and charged to all incident
// edges.
func (r *router) applyFaults() {
	f := r.opts.Faults
	if f == nil {
		return
	}
	r.hDead = make([]bool, len(r.hUse))
	r.vDead = make([]bool, len(r.vUse))
	r.hPen = make([]float32, len(r.hUse))
	r.vPen = make([]float32, len(r.vUse))
	fx := 1 / float64(r.nx)
	fy := 1 / float64(r.ny)
	for y := 0; y < r.ny; y++ {
		for x := 0; x < r.nx-1; x++ {
			r.hDead[r.hIdx(x, y)] = f.DeadTrack(true, (float64(x)+1.0)*fx, (float64(y)+0.5)*fy)
		}
	}
	for y := 0; y < r.ny-1; y++ {
		for x := 0; x < r.nx; x++ {
			r.vDead[r.vIdx(x, y)] = f.DeadTrack(false, (float64(x)+0.5)*fx, (float64(y)+1.0)*fy)
		}
	}
	for y := 0; y < r.ny; y++ {
		for x := 0; x < r.nx; x++ {
			if !f.ViaFault((float64(x)+0.5)*fx, (float64(y)+0.5)*fy) {
				continue
			}
			if x > 0 {
				r.hPen[r.hIdx(x-1, y)] = viaFaultPenalty
			}
			if x < r.nx-1 {
				r.hPen[r.hIdx(x, y)] = viaFaultPenalty
			}
			if y > 0 {
				r.vPen[r.vIdx(x, y-1)] = viaFaultPenalty
			}
			if y < r.ny-1 {
				r.vPen[r.vIdx(x, y)] = viaFaultPenalty
			}
		}
	}
}

// deadEdge reports whether an edge is open-circuit under the fault
// model.
func (r *router) deadEdge(horizontal bool, idx int) bool {
	if horizontal {
		return r.hDead != nil && r.hDead[idx]
	}
	return r.vDead != nil && r.vDead[idx]
}

// edgeCost is the negotiated-congestion cost of taking an edge.
func (r *router) edgeCost(horizontal bool, idx int, presentFactor float64) float64 {
	var use int16
	var hist float32
	var pen float32
	if horizontal {
		use, hist = r.hUse[idx], r.st.hHist[idx]
		if r.hPen != nil {
			pen = r.hPen[idx]
		}
	} else {
		use, hist = r.vUse[idx], r.st.vHist[idx]
		if r.vPen != nil {
			pen = r.vPen[idx]
		}
	}
	cost := 1.0 + float64(hist)*0.5 + float64(pen)
	if int(use)+1 > r.opts.Capacity {
		cost += presentFactor * float64(int(use)+1-r.opts.Capacity) * 4
	}
	return cost
}

// pq is the A* frontier: a binary min-heap on f, specialized to
// pqItem. The sift algorithms mirror container/heap exactly (same
// comparisons, same swaps), so pop order — including tie-breaks — is
// bit-identical to the former heap.Interface implementation, but push
// and pop move concrete values instead of boxing every item through
// interface{}. The backing slice is owned by the router's scratch
// buffer and reused across nets, so steady-state routing allocates
// nothing per call.
type pqItem struct {
	pt   point
	g, f float64
}
type pq []pqItem

// init establishes the heap invariant over the current contents.
func (q *pq) init() {
	n := len(*q)
	for i := n/2 - 1; i >= 0; i-- {
		q.down(i, n)
	}
}

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *pq) pop() pqItem {
	s := *q
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	q.down(0, n)
	it := s[n]
	*q = s[:n]
	return it
}

func (q *pq) up(j int) {
	s := *q
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(s[j].f < s[i].f) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (q *pq) down(i0, n int) {
	s := *q
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && s[j2].f < s[j1].f {
			j = j2 // right child
		}
		if !(s[j].f < s[i].f) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
}

// routeNet builds the net's routing tree: sinks are connected one at a
// time (nearest first) by A* from the existing tree. Tree membership
// lives in an epoch-stamped cell array beside an insertion-ordered
// member list: astar seeds its frontier and picks its window anchor
// from the ordered list, so routing is deterministic, and no per-net
// maps are built (finish derives tree adjacency from the edge list).
func (r *router) routeNet(ni int, presentFactor float64) error {
	net := &r.prob.Nets[ni]
	st := r.st
	src := r.binOf(net.Objs[0])
	st.treeEpoch++
	te := st.treeEpoch
	st.inTree[r.cellOf(src)] = te
	treeList := st.treeList[:0]
	treeList = append(treeList, src)
	var edges []edgeRef
	grow := func(p point) {
		if c := r.cellOf(p); st.inTree[c] != te {
			st.inTree[c] = te
			treeList = append(treeList, p)
		}
	}

	sinks := st.sinks[:0]
	for _, oi := range net.Objs[1:] {
		sinks = append(sinks, r.binOf(oi))
	}
	// Route nearest sinks first for better trees.
	for i := range sinks {
		best := i
		for j := i + 1; j < len(sinks); j++ {
			if manhattan(src, sinks[j]) < manhattan(src, sinks[best]) {
				best = j
			}
		}
		sinks[i], sinks[best] = sinks[best], sinks[i]
	}
	for _, sink := range sinks {
		if st.inTree[r.cellOf(sink)] == te {
			continue
		}
		// Restrict the search to a margin around the sink and its
		// nearest tree node first; fall back to the whole grid only if
		// congestion walls off the window.
		path, err := r.astar(te, treeList, sink, presentFactor, 6)
		if err != nil {
			path, err = r.astar(te, treeList, sink, presentFactor, -1)
		}
		if err != nil {
			st.treeList, st.sinks = treeList[:0], sinks[:0]
			return err
		}
		for i := 0; i+1 < len(path); i++ {
			ref := r.edgeBetween(path[i], path[i+1])
			r.addEdge(int32(ni), ref)
			edges = append(edges, ref)
			grow(path[i])
			grow(path[i+1])
		}
		grow(sink)
	}
	st.treeList, st.sinks = treeList[:0], sinks[:0]
	r.netEdges[ni] = edges
	return nil
}

func (r *router) cellOf(p point) int32 {
	return int32(p.y)*int32(r.nx) + int32(p.x)
}

func manhattan(a, b point) float64 {
	return math.Abs(float64(a.x-b.x)) + math.Abs(float64(a.y-b.y))
}

func (r *router) edgeBetween(a, b point) edgeRef {
	switch {
	case a.y == b.y && b.x == a.x+1:
		return edgeRef{true, int32(r.hIdx(int(a.x), int(a.y)))}
	case a.y == b.y && b.x == a.x-1:
		return edgeRef{true, int32(r.hIdx(int(b.x), int(a.y)))}
	case a.x == b.x && b.y == a.y+1:
		return edgeRef{false, int32(r.vIdx(int(a.x), int(a.y)))}
	default:
		return edgeRef{false, int32(r.vIdx(int(a.x), int(b.y)))}
	}
}

// astar searches from the existing tree (all members seeded at cost 0,
// membership = inTree stamp equals te) to the sink. Scratch state
// lives in flat arrays indexed by grid cell and is invalidated
// wholesale by bumping an epoch counter, and the returned path reuses
// the state's scratch buffer (valid until the next astar call), so
// routing thousands of nets allocates nothing per call. treeList is
// the tree's membership in insertion order; iterating it keeps window
// anchoring and frontier seeding deterministic.
func (r *router) astar(te int32, treeList []point, sink point, presentFactor float64, margin int) ([]point, error) {
	st := r.st
	st.epoch++
	uncell := func(c int32) point { return point{int16(c % int32(r.nx)), int16(c / int32(r.nx))} }
	// Search window: the bounding box of the sink and its nearest tree
	// node, padded by margin bins (margin < 0 disables the window).
	r.winX0, r.winY0, r.winX1, r.winY1 = 0, 0, r.nx-1, r.ny-1
	if margin >= 0 {
		best, bestD := sink, math.Inf(1)
		for _, t := range treeList {
			if d := manhattan(t, sink); d < bestD {
				best, bestD = t, d
			}
		}
		r.winX0 = clampInt(minI(int(best.x), int(sink.x))-margin, 0, r.nx-1)
		r.winX1 = clampInt(maxI(int(best.x), int(sink.x))+margin, 0, r.nx-1)
		r.winY0 = clampInt(minI(int(best.y), int(sink.y))-margin, 0, r.ny-1)
		r.winY1 = clampInt(maxI(int(best.y), int(sink.y))+margin, 0, r.ny-1)
	}
	frontier := st.scratch[:0]
	for _, t := range treeList {
		if int(t.x) < r.winX0 || int(t.x) > r.winX1 || int(t.y) < r.winY0 || int(t.y) > r.winY1 {
			continue
		}
		c := r.cellOf(t)
		st.gScore[c] = 0
		st.gStamp[c] = st.epoch
		st.parent[c] = -1
		frontier = append(frontier, pqItem{t, 0, manhattan(t, sink)})
	}
	frontier.init()
	defer func() { st.scratch = frontier[:0] }()
	sinkC := r.cellOf(sink)
	for len(frontier) > 0 {
		cur := frontier.pop()
		curC := r.cellOf(cur.pt)
		if st.cStamp[curC] == st.epoch {
			continue
		}
		st.cStamp[curC] = st.epoch
		if curC == sinkC {
			// Reconstruct to the first tree node.
			path := st.pathBuf[:0]
			c := sinkC
			for {
				path = append(path, uncell(c))
				if st.inTree[c] == te {
					break
				}
				c = st.parent[c]
			}
			st.pathBuf = path
			return path, nil
		}
		x, y := int(cur.pt.x), int(cur.pt.y)
		r.relax(&frontier, cur, sink, x+1, y, x+1 < r.nx, true, r.hIdx(x, y), presentFactor)
		r.relax(&frontier, cur, sink, x-1, y, x-1 >= 0, true, r.hIdx(maxI(x-1, 0), y), presentFactor)
		r.relax(&frontier, cur, sink, x, y+1, y+1 < r.ny, false, r.vIdx(x, y), presentFactor)
		r.relax(&frontier, cur, sink, x, y-1, y-1 >= 0, false, r.vIdx(x, maxI(y-1, 0)), presentFactor)
	}
	return nil, fmt.Errorf("no path to sink (%d,%d)", sink.x, sink.y)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// relax pushes neighbor (nx,ny) if in bounds and improved.
func (r *router) relax(frontier *pq, cur pqItem, sink point, nxp, nyp int, ok, horizontal bool, edgeIdx int, presentFactor float64) {
	if !ok {
		return
	}
	if nxp < r.winX0 || nxp > r.winX1 || nyp < r.winY0 || nyp > r.winY1 {
		return
	}
	if r.deadEdge(horizontal, edgeIdx) {
		return
	}
	p := point{int16(nxp), int16(nyp)}
	st := r.st
	c := int32(nyp)*int32(r.nx) + int32(nxp)
	if st.cStamp[c] == st.epoch {
		return
	}
	g := cur.g + r.edgeCost(horizontal, edgeIdx, presentFactor)
	if st.gStamp[c] == st.epoch && st.gScore[c] <= g {
		return
	}
	st.gScore[c] = g
	st.gStamp[c] = st.epoch
	st.parent[c] = int32(cur.pt.y)*int32(r.nx) + int32(cur.pt.x)
	frontier.push(pqItem{p, g, g + manhattan(p, sink)})
}

// edgeEnds decodes an edge reference into its two grid cells.
func (r *router) edgeEnds(e edgeRef) (point, point) {
	if e.horizontal {
		y, x := int(e.idx)/(r.nx-1), int(e.idx)%(r.nx-1)
		return point{int16(x), int16(y)}, point{int16(x + 1), int16(y)}
	}
	y, x := int(e.idx)/r.nx, int(e.idx)%r.nx
	return point{int16(x), int16(y)}, point{int16(x), int16(y + 1)}
}

// finish extracts lengths, per-sink distances and congestion stats.
// The usage and per-net edge arrays transfer from the (possibly
// pooled) State into the Result here — detailed routing reads them
// after the run — and the State reallocates them on its next checkout.
func (r *router) finish(iters int) (*Result, error) {
	res := &Result{
		CellsX: r.nx, CellsY: r.ny,
		BinW: r.binW, BinH: r.binH,
		NetLength:  make([]float64, len(r.prob.Nets)),
		SinkDist:   make([][]float64, len(r.prob.Nets)),
		Iterations: iters,
		opts:       r.opts,
		netEdges:   r.netEdges,
		hEdges:     r.hUse,
		vEdges:     r.vUse,
	}
	r.st.hUse, r.st.vUse = nil, nil
	edgeLen := (r.binW + r.binH) / 2
	adj := map[point][]point{}
	for ni := range r.prob.Nets {
		res.NetLength[ni] = float64(len(r.netEdges[ni])) * edgeLen
		res.Total += res.NetLength[ni]
		// Per-sink tree distance by BFS over the tree adjacency,
		// derived from the net's edge list (each edge appears at most
		// once per net, so the adjacency needs no deduplication).
		net := &r.prob.Nets[ni]
		src := r.binOf(net.Objs[0])
		clear(adj)
		for _, e := range r.netEdges[ni] {
			a, b := r.edgeEnds(e)
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		dist := map[point]float64{src: 0}
		queue := []point{src}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, q := range adj[p] {
				if _, seen := dist[q]; !seen {
					dist[q] = dist[p] + edgeLen
					queue = append(queue, q)
				}
			}
		}
		res.SinkDist[ni] = make([]float64, len(net.Objs)-1)
		for k, oi := range net.Objs[1:] {
			res.SinkDist[ni][k] = dist[r.binOf(oi)]
		}
	}
	res.Overflow = r.totalOver
	for _, u := range res.hEdges {
		if f := float64(u) / float64(r.opts.Capacity); f > res.MaxUtilization {
			res.MaxUtilization = f
		}
	}
	for _, u := range res.vEdges {
		if f := float64(u) / float64(r.opts.Capacity); f > res.MaxUtilization {
			res.MaxUtilization = f
		}
	}
	return res, nil
}
