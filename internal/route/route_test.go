package route

import (
	"testing"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/logic"
	"vpga/internal/netlist"
	"vpga/internal/place"
	"vpga/internal/rtl"
	"vpga/internal/techmap"
)

func prepPlacement(t *testing.T, src string) *place.Problem {
	t.Helper()
	arch := cells.GranularPLB()
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(2)
	mapped, err := techmap.Map(d, arch, techmap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := compact.Run(mapped.Netlist, arch)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := place.Build(cres.Netlist, place.ArchArea(arch), place.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	prob.Anneal(place.Options{Seed: 21, MovesPerObj: 4})
	return prob
}

const src = `
module m(input clk, input [7:0] a, input [7:0] b, input s, output [7:0] y);
  wire [7:0] sum = a + b;
  wire [7:0] lg = a ^ b;
  reg [7:0] r;
  always r <= s ? sum : lg;
  assign y = r;
endmodule`

func TestRouteCompletes(t *testing.T) {
	prob := prepPlacement(t, src)
	res, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 {
		t.Fatal("zero total wirelength")
	}
	if res.Overflow != 0 {
		t.Errorf("overflow = %d after %d iterations", res.Overflow, res.Iterations)
	}
	if len(res.NetLength) != len(prob.Nets) {
		t.Fatalf("per-net lengths: %d, want %d", len(res.NetLength), len(prob.Nets))
	}
	t.Logf("wirelength %.1f, grid %dx%d, peak util %.2f, %d iterations",
		res.Total, res.CellsX, res.CellsY, res.MaxUtilization, res.Iterations)
}

func TestSinkDistances(t *testing.T) {
	prob := prepPlacement(t, src)
	res, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edgeLen := (res.BinW + res.BinH) / 2
	for ni, net := range prob.Nets {
		if len(res.SinkDist[ni]) != len(net.Objs)-1 {
			t.Fatalf("net %d: %d sink distances for %d sinks", ni, len(res.SinkDist[ni]), len(net.Objs)-1)
		}
		for k, d := range res.SinkDist[ni] {
			if d < 0 || d > res.NetLength[ni]+1e-9 {
				t.Fatalf("net %d sink %d: distance %v outside [0, %v]", ni, k, d, res.NetLength[ni])
			}
			// Tree distance is at least the Manhattan bound (same-bin
			// sinks are 0).
			src := prob.Objs[net.Objs[0]]
			dst := prob.Objs[net.Objs[k+1]]
			mx := abs(src.X-dst.X) + abs(src.Y-dst.Y)
			if d+2*edgeLen < mx-2*(res.BinW+res.BinH) {
				t.Fatalf("net %d sink %d: tree distance %v shorter than manhattan %v", ni, k, d, mx)
			}
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestWireRC(t *testing.T) {
	prob := prepPlacement(t, src)
	res, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ni := range prob.Nets {
		capTotal := res.NetCap(ni)
		if capTotal < 0 {
			t.Fatal("negative net cap")
		}
		for k := range res.SinkDist[ni] {
			d, c := res.WireRC(ni, k)
			if d < 0 || c < 0 {
				t.Fatal("negative RC")
			}
			if c != capTotal {
				t.Fatal("sink cap should equal net cap under the lumped model")
			}
		}
	}
}

func TestCongestionNegotiation(t *testing.T) {
	// Tiny capacity forces negotiation; router must still converge on
	// this small design.
	prob := prepPlacement(t, src)
	tight, err := Route(prob, Options{Capacity: 3, MaxIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Route(prob, Options{Capacity: 3, MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Overflow > oneShot.Overflow {
		t.Errorf("negotiation increased overflow: %d -> %d", oneShot.Overflow, tight.Overflow)
	}
	if tight.Iterations <= 1 && tight.Overflow > 0 {
		t.Error("overflow remains but router stopped after one iteration")
	}
	t.Logf("capacity-3 overflow: one-shot %d, negotiated %d (%d iterations)",
		oneShot.Overflow, tight.Overflow, tight.Iterations)
}

func TestGridOverride(t *testing.T) {
	prob := prepPlacement(t, src)
	res, err := Route(prob, Options{CellsX: 6, CellsY: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsX != 6 || res.CellsY != 7 {
		t.Fatalf("grid %dx%d, want 6x7", res.CellsX, res.CellsY)
	}
}

func TestRouteTinyDesign(t *testing.T) {
	nl := netlist.New("tiny")
	a := nl.AddInput("a")
	g := nl.AddGate("INV", logic.VarTT(1, 0).Not(), a)
	nl.AddOutput("y", g)
	prob, err := place.Build(nl, func(n *netlist.Node) float64 { return 1 }, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Route(prob, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignTracks(t *testing.T) {
	prob := prepPlacement(t, src)
	res, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ta := res.AssignTracks()
	if len(ta.NetTracks) != len(prob.Nets) {
		t.Fatalf("track vectors: %d, want %d", len(ta.NetTracks), len(prob.Nets))
	}
	if res.Overflow == 0 && ta.Unassigned != 0 {
		t.Fatalf("overflow-free routing left %d crossings unassigned", ta.Unassigned)
	}
	if ta.RoutingVias <= 0 {
		t.Fatal("no routing vias counted")
	}
	// Legality: no two nets share a track on the same edge.
	type slot struct {
		horizontal bool
		idx        int32
		track      int16
	}
	seen := map[slot]int{}
	for ni, tracks := range ta.NetTracks {
		for k, e := range res.netEdges[ni] {
			tr := tracks[k]
			if tr < 0 {
				continue
			}
			key := slot{e.horizontal, e.idx, tr}
			if owner, dup := seen[key]; dup && owner != ni {
				t.Fatalf("edge (%v,%d) track %d shared by nets %d and %d", e.horizontal, e.idx, tr, owner, ni)
			}
			seen[key] = ni
		}
	}
	t.Logf("routing vias %d, peak track %d", ta.RoutingVias, ta.PeakTrack)
}

func TestAssignTracksPrefersContinuity(t *testing.T) {
	prob := prepPlacement(t, src)
	res, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ta := res.AssignTracks()
	// A lower bound: every multi-edge straight run needs at most one
	// via more than its direction changes. Just sanity-check the via
	// count is below the total crossing count plus pin escapes.
	crossings := 0
	for _, tracks := range ta.NetTracks {
		crossings += len(tracks)
	}
	if ta.RoutingVias > crossings+len(ta.NetTracks) {
		t.Fatalf("vias %d exceed plausible bound (%d crossings)", ta.RoutingVias, crossings)
	}
}
