package route

import "sync"

// State is the router's working memory — usage/history/incidence
// arrays over the grid edges, A* scratch (scores, parents, stamp
// arrays, the frontier heap), and tree/path buffers — checked out for
// one Route call. Reusing a State across runs skips the allocation and
// most of the zeroing a cold router pays: the A* arrays are epoch-
// stamped, so carrying them over costs nothing (a monotonically
// increasing epoch never matches a stale stamp), and only the usage,
// history and incidence arrays are cleared per run.
//
// Reuse never changes results: every array is either cleared at
// checkout or guarded by an epoch, so a pooled run is bit-identical to
// a cold one. The usage and per-net edge arrays are handed off to the
// Result at the end of the run (detailed routing reads them later) and
// reallocated on the next checkout.
type State struct {
	nx, ny int

	// Handed off to the Result at finish (nil afterwards).
	hUse, vUse []int16

	hHist, vHist []float32
	hOn, vOn     [][]int32 // nets currently holding each edge

	netOverCnt []int32 // per net: its edge refs currently on over-capacity edges

	// A* scratch, epoch-stamped.
	gScore  []float64
	parent  []int32
	gStamp  []int32
	cStamp  []int32
	epoch   int32
	scratch pq

	// Routing-tree membership (epoch-stamped) and reusable buffers.
	inTree    []int32
	treeEpoch int32
	treeList  []point
	sinks     []point
	pathBuf   []point
}

// epochGuard bounds the stamp epochs: past it the stamp arrays are
// cleared and the epoch restarts, long before int32 wraparound could
// make a stale stamp match.
const epochGuard = 1 << 30

// prepare sizes the state for a grid and net count and clears what a
// fresh run must not see. Grid-shape changes reallocate; same-shape
// reuse clears usage/history/incidence and keeps the epoch-guarded
// scratch as is.
func (st *State) prepare(nx, ny, nets int) {
	hn, vn, cells := (nx-1)*ny, nx*(ny-1), nx*ny
	if st.nx != nx || st.ny != ny {
		st.nx, st.ny = nx, ny
		st.hUse = make([]int16, hn)
		st.vUse = make([]int16, vn)
		st.hHist = make([]float32, hn)
		st.vHist = make([]float32, vn)
		st.hOn = make([][]int32, hn)
		st.vOn = make([][]int32, vn)
		st.gScore = make([]float64, cells)
		st.parent = make([]int32, cells)
		st.gStamp = make([]int32, cells)
		st.cStamp = make([]int32, cells)
		st.inTree = make([]int32, cells)
		st.epoch, st.treeEpoch = 0, 0
	} else {
		if st.hUse == nil {
			st.hUse = make([]int16, hn)
			st.vUse = make([]int16, vn)
		} else {
			clear(st.hUse)
			clear(st.vUse)
		}
		clear(st.hHist)
		clear(st.vHist)
		for i := range st.hOn {
			st.hOn[i] = st.hOn[i][:0]
		}
		for i := range st.vOn {
			st.vOn[i] = st.vOn[i][:0]
		}
		if st.epoch > epochGuard {
			clear(st.gStamp)
			clear(st.cStamp)
			st.epoch = 0
		}
		if st.treeEpoch > epochGuard {
			clear(st.inTree)
			st.treeEpoch = 0
		}
	}
	if cap(st.netOverCnt) < nets {
		st.netOverCnt = make([]int32, nets)
	} else {
		st.netOverCnt = st.netOverCnt[:nets]
		clear(st.netOverCnt)
	}
}

// Pool hands out router States for reuse across runs. Matrix cells and
// sweeps routing many designs on similarly-shaped grids share one pool
// so each run stops paying allocation plus zeroing for the full
// scratch set. A nil *Pool is valid and simply allocates per run; all
// methods are safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free []*State
}

// NewPool returns an empty State pool.
func NewPool() *Pool { return &Pool{} }

func (p *Pool) get() *State {
	if p == nil {
		return &State{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		st := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return st
	}
	return &State{}
}

func (p *Pool) put(st *State) {
	if p == nil || st == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, st)
}
