package route

import (
	"reflect"
	"testing"
)

// tightOpts forces congestion so the negotiation actually iterates and
// the incremental overflow bookkeeping sees boundary crossings in both
// directions.
func tightOpts() Options {
	return Options{Capacity: 2, MaxIters: 6}
}

// TestIncrementalOverflowMatchesScan cross-checks, at every
// negotiation iteration, the running totalOver counter against the
// full usage-array scan, and every net's O(1) overflow flag against
// the edge-list scan it replaced.
func TestIncrementalOverflowMatchesScan(t *testing.T) {
	audits := 0
	overflowAudit = func(r *router) {
		audits++
		if got, want := r.totalOver, r.totalOverflow(); got != want {
			t.Errorf("iteration %d: incremental overflow %d, scan %d", audits, got, want)
		}
		for ni := range r.netEdges {
			scanned := false
			for _, e := range r.netEdges[ni] {
				use := r.vUse
				if e.horizontal {
					use = r.hUse
				}
				if int(use[e.idx]) > r.opts.Capacity {
					scanned = true
					break
				}
			}
			if got := r.st.netOverCnt[ni] > 0; got != scanned {
				t.Errorf("iteration %d: net %d overflow flag %v, edge scan %v", audits, ni, got, scanned)
			}
			if r.st.netOverCnt[ni] < 0 {
				t.Errorf("iteration %d: net %d overflow count went negative", audits, ni)
			}
		}
	}
	defer func() { overflowAudit = nil }()

	prob := prepPlacement(t, src)
	if _, err := Route(prob, tightOpts()); err != nil {
		t.Fatal(err)
	}
	if audits < 2 {
		t.Fatalf("audit ran %d times; want a congested multi-iteration run", audits)
	}
}

// resultKey flattens every externally visible field of a Result for
// bit-identity comparison.
type resultKey struct {
	CellsX, CellsY int
	NetLength      []float64
	Total          float64
	SinkDist       [][]float64
	Overflow       int
	MaxUtilization float64
	Iterations     int
	netEdges       [][]edgeRef
	hEdges, vEdges []int16
}

func keyOf(r *Result) resultKey {
	return resultKey{
		CellsX: r.CellsX, CellsY: r.CellsY,
		NetLength: r.NetLength, Total: r.Total,
		SinkDist: r.SinkDist, Overflow: r.Overflow,
		MaxUtilization: r.MaxUtilization, Iterations: r.Iterations,
		netEdges: r.netEdges, hEdges: r.hEdges, vEdges: r.vEdges,
	}
}

// TestPooledRoutingBitIdentical: runs sharing a State pool must be bit
// for bit the results of cold runs — including after the pool's state
// has been dirtied by a differently-shaped and a congested run.
func TestPooledRoutingBitIdentical(t *testing.T) {
	prob := prepPlacement(t, src)
	cold, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldTight, err := Route(prob, tightOpts())
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool()
	withPool := Options{Pool: pool}
	first, err := Route(prob, withPool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keyOf(first), keyOf(cold)) {
		t.Fatal("first pooled run differs from cold run")
	}
	// Dirty the pooled state: a congested run (history, incidence
	// lists, overflow counters all nonzero) and a different grid shape.
	if _, err := Route(prob, Options{Pool: pool, Capacity: 2, MaxIters: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := Route(prob, Options{Pool: pool, CellsX: 7, CellsY: 5}); err != nil {
		t.Fatal(err)
	}
	again, err := Route(prob, withPool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keyOf(again), keyOf(cold)) {
		t.Fatal("pooled run after reuse differs from cold run")
	}
	tightAgain, err := Route(prob, Options{Pool: pool, Capacity: 2, MaxIters: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keyOf(tightAgain), keyOf(coldTight)) {
		t.Fatal("pooled congested run differs from cold congested run")
	}
}

// TestStateEpochGuard: a state carried past the epoch guard must reset
// its stamp arrays and keep producing correct results.
func TestStateEpochGuard(t *testing.T) {
	prob := prepPlacement(t, src)
	cold, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool()
	if _, err := Route(prob, Options{Pool: pool}); err != nil {
		t.Fatal(err)
	}
	// Push the pooled state's epochs past the guard by hand.
	st := pool.get()
	if st.nx == 0 {
		t.Fatal("expected a used state back from the pool")
	}
	st.epoch = epochGuard + 1
	st.treeEpoch = epochGuard + 1
	pool.put(st)
	res, err := Route(prob, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keyOf(res), keyOf(cold)) {
		t.Fatal("post-guard pooled run differs from cold run")
	}
}
