package route

import (
	"testing"

	"vpga/internal/obs"
)

// Tracing must be pure observation: a traced route is bit-identical to
// an untraced one, and the recorded trajectory is consistent with the
// result.
func TestRouteTraceInvariance(t *testing.T) {
	prob := prepPlacement(t, src)
	plain, err := Route(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := &obs.RouteTrace{}
	traced, err := Route(prob, Options{Trace: rt})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total != traced.Total || plain.Overflow != traced.Overflow || plain.Iterations != traced.Iterations {
		t.Fatalf("traced result diverged: total %v/%v overflow %d/%d iters %d/%d",
			traced.Total, plain.Total, traced.Overflow, plain.Overflow, traced.Iterations, plain.Iterations)
	}

	overflows, best := rt.Snapshot()
	if len(overflows) != traced.Iterations {
		t.Fatalf("recorded %d overflow samples for %d iterations", len(overflows), traced.Iterations)
	}
	if best < 1 || best > traced.Iterations {
		t.Fatalf("best iteration %d outside [1,%d]", best, traced.Iterations)
	}
	// The best iteration holds the minimum of the trajectory, and the
	// final result carries exactly that overflow.
	min := overflows[0]
	for _, o := range overflows {
		if o < min {
			min = o
		}
	}
	if overflows[best-1] != min {
		t.Fatalf("best iteration %d has overflow %d, trajectory minimum is %d", best, overflows[best-1], min)
	}
	if traced.Overflow != min {
		t.Fatalf("result overflow %d != best recorded %d", traced.Overflow, min)
	}
}
