package route

// Track assignment: the detailed-routing stage. Global routing decides
// which grid edges each net crosses; track assignment binds every
// crossing to a physical track within the channel, reusing the same
// track across consecutive collinear edges where possible (each track
// change or direction change costs a via — these are the real,
// mask-defined vias of the VPGA's upper routing layers).

// TrackAssignment is the detailed-routing outcome.
type TrackAssignment struct {
	// NetTracks[n][k] is the track assigned to net n's k-th routed edge
	// (ordering matches the net's internal edge list); -1 when the
	// channel was over capacity and the crossing is left unassigned.
	NetTracks [][]int16
	// RoutingVias counts layer/track changes across the fabric.
	RoutingVias int
	// Unassigned counts crossings left without a legal track (nonzero
	// only when the global router finished with overflow).
	Unassigned int
	// PeakTrack is the highest track index used anywhere.
	PeakTrack int
}

// AssignTracks runs greedy track assignment over the routed design.
// Nets are processed in decreasing edge count (long nets get first
// pick); each net prefers to continue on its previous track and
// otherwise takes the lowest free track of the channel.
func (r *Result) AssignTracks() *TrackAssignment {
	capacity := r.opts.Capacity
	// Occupancy per edge: a bitset of capacity tracks.
	words := (capacity + 63) / 64
	hOcc := make([]uint64, len(r.hEdges)*words)
	vOcc := make([]uint64, len(r.vEdges)*words)

	ta := &TrackAssignment{NetTracks: make([][]int16, len(r.netEdges))}

	order := make([]int, len(r.netEdges))
	for i := range order {
		order[i] = i
	}
	// Longest nets first.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(r.netEdges[order[j]]) > len(r.netEdges[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	takeTrack := func(occ []uint64, edge int, prefer int16) int16 {
		base := edge * words
		if prefer >= 0 && occ[base+int(prefer)/64]>>(uint(prefer)%64)&1 == 0 {
			occ[base+int(prefer)/64] |= 1 << (uint(prefer) % 64)
			return prefer
		}
		for t := 0; t < capacity; t++ {
			if occ[base+t/64]>>(uint(t)%64)&1 == 0 {
				occ[base+t/64] |= 1 << (uint(t) % 64)
				return int16(t)
			}
		}
		return -1
	}

	for _, ni := range order {
		edges := r.netEdges[ni]
		tracks := make([]int16, len(edges))
		prev := int16(-1)
		prevHoriz := false
		for k, e := range edges {
			occ := vOcc
			if e.horizontal {
				occ = hOcc
			}
			prefer := int16(-1)
			if k > 0 && prevHoriz == e.horizontal {
				prefer = prev
			}
			t := takeTrack(occ, int(e.idx), prefer)
			tracks[k] = t
			switch {
			case t < 0:
				ta.Unassigned++
			case k == 0:
				ta.RoutingVias++ // pin escape via
			case prevHoriz != e.horizontal:
				ta.RoutingVias++ // layer change
			case t != prev:
				ta.RoutingVias++ // track jog
			}
			if int(t) > ta.PeakTrack {
				ta.PeakTrack = int(t)
			}
			prev, prevHoriz = t, e.horizontal
		}
		ta.NetTracks[ni] = tracks
	}
	return ta
}
