package rtl

// Module is a parsed RTL module.
type Module struct {
	Name  string
	Ports []Port
	Items []Item
}

// Port is one module port. Width is the bit count (1 for scalar).
type Port struct {
	Name   string
	Width  int
	Output bool
	Line   int
}

// Item is a module body item.
type Item interface{ item() }

// WireDecl declares a wire, optionally with an inline assignment.
type WireDecl struct {
	Name  string
	Width int
	Init  Expr // may be nil
	Line  int
}

// RegDecl declares a register.
type RegDecl struct {
	Name  string
	Width int
	Line  int
}

// Assign is a continuous assignment to a declared wire or output.
type Assign struct {
	Name string
	Expr Expr
	Line int
}

// AlwaysFF is a registered assignment `always name <= expr;` on the
// implicit clock.
type AlwaysFF struct {
	Name string
	Expr Expr
	Line int
}

func (WireDecl) item() {}
func (RegDecl) item()  {}
func (Assign) item()   {}
func (AlwaysFF) item() {}

// Expr is an RTL expression node.
type Expr interface{ exprLine() int }

// Ref names a signal, optionally indexed or sliced.
type Ref struct {
	Name     string
	HasIndex bool
	Hi, Lo   int // for x[i], Hi == Lo
	Line     int
}

// Literal is a constant with an optional explicit width (0 = unsized,
// adapts to context).
type Literal struct {
	Value uint64
	Width int
	Line  int
}

// Unary applies ~ (bitwise not) or the reductions &, |, ^.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary applies | ^ & == != << >> + -.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
	Line             int
}

// Concat is {a, b, ...}; operand 0 holds the most significant bits.
type Concat struct {
	Parts []Expr
	Line  int
}

// Repl is {N{x}}.
type Repl struct {
	Count int
	X     Expr
	Line  int
}

func (e Ref) exprLine() int     { return e.Line }
func (e Literal) exprLine() int { return e.Line }
func (e Unary) exprLine() int   { return e.Line }
func (e Binary) exprLine() int  { return e.Line }
func (e Ternary) exprLine() int { return e.Line }
func (e Concat) exprLine() int  { return e.Line }
func (e Repl) exprLine() int    { return e.Line }
