package rtl

import (
	"fmt"

	"vpga/internal/logic"
	"vpga/internal/netlist"
)

// signal is a bus value, least-significant bit first.
type signal []netlist.NodeID

// Compile parses and elaborates RTL source into a gate-level netlist of
// simple primitives (INV, AND2, OR2, XOR2, MUX2, DFF).
func Compile(src string) (*netlist.Netlist, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Elaborate(m)
}

type elaborator struct {
	m  *Module
	nl *netlist.Netlist

	widths  map[string]int
	signals map[string]signal
	isReg   map[string]bool
	isOut   map[string]bool
	driven  map[string]bool

	haveConst      [2]bool
	constID        [2]netlist.NodeID
	pendingWires   map[string]bool // declared, not yet driven
	pendingAlways  map[string]bool
	pendingOutputs map[string]bool
}

// Elaborate lowers a parsed module to a netlist.
func Elaborate(m *Module) (*netlist.Netlist, error) {
	e := &elaborator{
		m:  m,
		nl: netlist.New(m.Name),

		widths:         map[string]int{},
		signals:        map[string]signal{},
		isReg:          map[string]bool{},
		isOut:          map[string]bool{},
		driven:         map[string]bool{},
		pendingWires:   map[string]bool{},
		pendingAlways:  map[string]bool{},
		pendingOutputs: map[string]bool{},
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	if err := e.nl.Validate(); err != nil {
		return nil, fmt.Errorf("rtl: elaborated netlist invalid: %w", err)
	}
	return e.nl, nil
}

func (e *elaborator) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("rtl: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (e *elaborator) declare(name string, width, line int) error {
	if _, dup := e.widths[name]; dup {
		return e.errf(line, "duplicate declaration of %q", name)
	}
	if width <= 0 || width > 256 {
		return e.errf(line, "width %d of %q out of range", width, name)
	}
	e.widths[name] = width
	return nil
}

func bitName(name string, width, i int) string {
	if width == 1 {
		return name
	}
	return fmt.Sprintf("%s[%d]", name, i)
}

func (e *elaborator) run() error {
	// Ports first.
	for _, p := range e.m.Ports {
		if err := e.declare(p.Name, p.Width, p.Line); err != nil {
			return err
		}
		if p.Output {
			e.isOut[p.Name] = true
			e.pendingOutputs[p.Name] = true
			continue
		}
		bits := make(signal, p.Width)
		for i := range bits {
			bits[i] = e.nl.AddInput(bitName(p.Name, p.Width, i))
		}
		e.signals[p.Name] = bits
	}
	// Declarations, in order; expressions must only reference signals
	// already given a value (wires with inits, inputs) or registers.
	for _, item := range e.m.Items {
		switch it := item.(type) {
		case RegDecl:
			if err := e.declare(it.Name, it.Width, it.Line); err != nil {
				return err
			}
			e.isReg[it.Name] = true
			e.pendingAlways[it.Name] = true
			bits := make(signal, it.Width)
			for i := range bits {
				// D fanin patched by the always item; self-loop keeps
				// the node valid meanwhile.
				d := e.nl.AddDFF(bitName(it.Name, it.Width, i), 0)
				e.nl.SetFanin(d, 0, d)
				bits[i] = d
			}
			e.signals[it.Name] = bits
		case WireDecl:
			if err := e.declare(it.Name, it.Width, it.Line); err != nil {
				return err
			}
			if it.Init == nil {
				e.pendingWires[it.Name] = true
				continue
			}
			bits, err := e.evalWidth(it.Init, it.Width)
			if err != nil {
				return err
			}
			e.signals[it.Name] = bits
		case Assign:
			if err := e.elabAssign(it); err != nil {
				return err
			}
		case AlwaysFF:
			if err := e.elabAlways(it); err != nil {
				return err
			}
		}
	}
	for name := range e.pendingOutputs {
		return e.errf(0, "output %q is never assigned", name)
	}
	for name := range e.pendingWires {
		return e.errf(0, "wire %q is never assigned", name)
	}
	for name := range e.pendingAlways {
		return e.errf(0, "reg %q has no always assignment", name)
	}
	return nil
}

func (e *elaborator) elabAssign(it Assign) error {
	width, ok := e.widths[it.Name]
	if !ok {
		return e.errf(it.Line, "assign to undeclared %q", it.Name)
	}
	if e.isReg[it.Name] {
		return e.errf(it.Line, "assign to reg %q (use always)", it.Name)
	}
	if e.driven[it.Name] {
		return e.errf(it.Line, "multiple drivers for %q", it.Name)
	}
	bits, err := e.evalWidth(it.Expr, width)
	if err != nil {
		return err
	}
	e.driven[it.Name] = true
	if e.isOut[it.Name] {
		for i, b := range bits {
			e.nl.AddOutput(bitName(it.Name, width, i), b)
		}
		delete(e.pendingOutputs, it.Name)
		// Outputs may also be read internally.
		e.signals[it.Name] = bits
		return nil
	}
	if !e.pendingWires[it.Name] {
		return e.errf(it.Line, "%q already has an inline initializer", it.Name)
	}
	delete(e.pendingWires, it.Name)
	e.signals[it.Name] = bits
	return nil
}

func (e *elaborator) elabAlways(it AlwaysFF) error {
	if !e.isReg[it.Name] {
		return e.errf(it.Line, "always target %q is not a reg", it.Name)
	}
	if !e.pendingAlways[it.Name] {
		return e.errf(it.Line, "reg %q assigned by more than one always", it.Name)
	}
	width := e.widths[it.Name]
	bits, err := e.evalWidth(it.Expr, width)
	if err != nil {
		return err
	}
	regs := e.signals[it.Name]
	for i, d := range bits {
		e.nl.SetFanin(regs[i], 0, d)
	}
	delete(e.pendingAlways, it.Name)
	return nil
}

// ---- expression lowering ----

func (e *elaborator) constBit(v bool) netlist.NodeID {
	idx := 0
	if v {
		idx = 1
	}
	if !e.haveConst[idx] {
		e.constID[idx] = e.nl.AddConst(v)
		e.haveConst[idx] = true
	}
	return e.constID[idx]
}

// evalWidth evaluates expr and adapts it to exactly `width` bits:
// narrower results are zero-extended and wider ones truncated,
// Verilog-style (dropping an adder's natural carry-out, for example).
func (e *elaborator) evalWidth(expr Expr, width int) (signal, error) {
	bits, err := e.eval(expr, width)
	if err != nil {
		return nil, err
	}
	return e.fit(bits, width), nil
}

func (e *elaborator) fit(bits signal, width int) signal {
	for len(bits) < width {
		bits = append(bits, e.constBit(false))
	}
	return bits[:width]
}

// eval lowers expr; ctxWidth is a hint for unsized literals only.
func (e *elaborator) eval(expr Expr, ctxWidth int) (signal, error) {
	switch x := expr.(type) {
	case Literal:
		w := x.Width
		if w == 0 {
			w = ctxWidth
			if w == 0 {
				w = 64
			}
		}
		if x.Width == 0 && w < 64 && x.Value >= 1<<uint(w) {
			return nil, e.errf(x.Line, "literal %d does not fit context width %d", x.Value, w)
		}
		bits := make(signal, w)
		for i := range bits {
			bits[i] = e.constBit(x.Value>>uint(i)&1 == 1)
		}
		return bits, nil

	case Ref:
		sig, ok := e.signals[x.Name]
		if !ok {
			if _, declared := e.widths[x.Name]; declared {
				return nil, e.errf(x.Line, "%q used before it is assigned", x.Name)
			}
			return nil, e.errf(x.Line, "unknown signal %q", x.Name)
		}
		if !x.HasIndex {
			return append(signal(nil), sig...), nil
		}
		if x.Hi >= len(sig) || x.Lo < 0 {
			return nil, e.errf(x.Line, "index [%d:%d] out of range for %q (width %d)", x.Hi, x.Lo, x.Name, len(sig))
		}
		return append(signal(nil), sig[x.Lo:x.Hi+1]...), nil

	case Unary:
		in, err := e.eval(x.X, ctxWidth)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "~":
			out := make(signal, len(in))
			for i, b := range in {
				out[i] = e.mkNot(b)
			}
			return out, nil
		case "&", "|", "^":
			return signal{e.reduce(x.Op, in)}, nil
		}
		return nil, e.errf(x.Line, "unknown unary op %q", x.Op)

	case Binary:
		return e.evalBinary(x, ctxWidth)

	case Ternary:
		cond, err := e.eval(x.Cond, 1)
		if err != nil {
			return nil, err
		}
		if len(cond) != 1 {
			return nil, e.errf(x.Line, "ternary condition must be 1 bit, got %d", len(cond))
		}
		thenB, err := e.eval(x.Then, ctxWidth)
		if err != nil {
			return nil, err
		}
		elseB, err := e.eval(x.Else, ctxWidth)
		if err != nil {
			return nil, err
		}
		w := max(len(thenB), len(elseB))
		thenB, elseB = e.fit(thenB, w), e.fit(elseB, w)
		out := make(signal, w)
		for i := range out {
			out[i] = e.mkMux(cond[0], elseB[i], thenB[i])
		}
		return out, nil

	case Concat:
		var out signal
		// Parts are MSB-first; build LSB-first.
		for i := len(x.Parts) - 1; i >= 0; i-- {
			bits, err := e.eval(x.Parts[i], 0)
			if err != nil {
				return nil, err
			}
			out = append(out, bits...)
		}
		return out, nil

	case Repl:
		bits, err := e.eval(x.X, 0)
		if err != nil {
			return nil, err
		}
		var out signal
		for i := 0; i < x.Count; i++ {
			out = append(out, bits...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("rtl: unhandled expression %T", expr)
}

func (e *elaborator) evalBinary(x Binary, ctxWidth int) (signal, error) {
	a, err := e.eval(x.X, ctxWidth)
	if err != nil {
		return nil, err
	}
	// Shift amounts must be constant.
	if x.Op == "<<" || x.Op == ">>" {
		lit, ok := x.Y.(Literal)
		if !ok {
			return nil, e.errf(x.Line, "shift amount must be a constant literal")
		}
		n := int(lit.Value)
		out := make(signal, len(a))
		for i := range out {
			var src int
			if x.Op == "<<" {
				src = i - n
			} else {
				src = i + n
			}
			if src >= 0 && src < len(a) {
				out[i] = a[src]
			} else {
				out[i] = e.constBit(false)
			}
		}
		return out, nil
	}
	b, err := e.eval(x.Y, max(len(a), ctxWidth))
	if err != nil {
		return nil, err
	}
	w := max(len(a), len(b))
	a, b = e.fit(a, w), e.fit(b, w)
	switch x.Op {
	case "&", "|", "^":
		out := make(signal, w)
		for i := range out {
			out[i] = e.mkBin(x.Op, a[i], b[i])
		}
		return out, nil
	case "==", "!=":
		bitsEq := make(signal, w)
		for i := range bitsEq {
			bitsEq[i] = e.mkNot(e.mkBin("^", a[i], b[i]))
		}
		eq := e.reduce("&", bitsEq)
		if x.Op == "!=" {
			eq = e.mkNot(eq)
		}
		return signal{eq}, nil
	case "+":
		sum, _ := e.adder(a, b, e.constBit(false))
		return sum, nil
	case "-":
		nb := make(signal, w)
		for i := range nb {
			nb[i] = e.mkNot(b[i])
		}
		sum, _ := e.adder(a, nb, e.constBit(true))
		return sum, nil
	}
	return nil, e.errf(x.Line, "unknown binary op %q", x.Op)
}

// adder builds a ripple-carry adder and returns (sum, carryOut).
func (e *elaborator) adder(a, b signal, cin netlist.NodeID) (signal, netlist.NodeID) {
	sum := make(signal, len(a))
	c := cin
	for i := range a {
		axb := e.mkBin("^", a[i], b[i])
		sum[i] = e.mkBin("^", axb, c)
		// carry = a·b + c·(a⊕b)
		c = e.mkBin("|", e.mkBin("&", a[i], b[i]), e.mkBin("&", c, axb))
	}
	return sum, c
}

func (e *elaborator) reduce(op string, in signal) netlist.NodeID {
	if len(in) == 1 {
		return in[0]
	}
	mid := len(in) / 2
	return e.mkBin(op, e.reduce(op, in[:mid]), e.reduce(op, in[mid:]))
}

func (e *elaborator) mkNot(a netlist.NodeID) netlist.NodeID {
	return e.nl.AddGate("INV", logic.VarTT(1, 0).Not(), a)
}

func (e *elaborator) mkBin(op string, a, b netlist.NodeID) netlist.NodeID {
	switch op {
	case "&":
		return e.nl.AddGate("AND2", logic.TTAnd2, a, b)
	case "|":
		return e.nl.AddGate("OR2", logic.TTOr2, a, b)
	case "^":
		return e.nl.AddGate("XOR2", logic.TTXor2, a, b)
	}
	panic("rtl: bad binary op " + op)
}

// mkMux builds MUX(sel; d0, d1): d0 when sel=0.
func (e *elaborator) mkMux(sel, d0, d1 netlist.NodeID) netlist.NodeID {
	return e.nl.AddGate("MUX2", logic.TTMux3, d0, d1, sel)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
