package rtl

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCompileNeverPanics feeds the front end mutated and random
// sources: every input must produce either a netlist or an error,
// never a panic.
func TestCompileNeverPanics(t *testing.T) {
	seeds := []string{
		"module m(input a, output y); assign y = a; endmodule",
		"module m(input [7:0] a, output [7:0] y); wire [7:0] w = a + 8'hFF; assign y = w ^ {8{a[0]}}; endmodule",
		"module m(input clk, input d, output q); reg r; always r <= d; assign q = r; endmodule",
	}
	tokens := []string{"module", "endmodule", "input", "output", "wire", "reg",
		"assign", "always", "<=", "=", ";", ",", "(", ")", "[", "]", "{", "}",
		"?", ":", "+", "-", "&", "|", "^", "~", "<<", ">>", "==", "!=",
		"a", "y", "w", "8'hFF", "3'b101", "7", "0", "'", "\x00", "/*", "//"}
	rng := rand.New(rand.NewSource(99))
	run := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Compile panicked on %q: %v", src, r)
			}
		}()
		_, _ = Compile(src)
	}
	for _, seed := range seeds {
		run(seed)
		// Deletion mutations.
		for trial := 0; trial < 200; trial++ {
			b := []byte(seed)
			n := 1 + rng.Intn(8)
			for i := 0; i < n && len(b) > 0; i++ {
				p := rng.Intn(len(b))
				b = append(b[:p], b[p+1:]...)
			}
			run(string(b))
		}
		// Substitution mutations.
		for trial := 0; trial < 200; trial++ {
			b := []byte(seed)
			for i := 0; i < 4; i++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			}
			run(string(b))
		}
	}
	// Random token soup.
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		sb.WriteString("module m(")
		for i := 0; i < rng.Intn(40); i++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		run(sb.String())
	}
}

func TestDeepExpressionNesting(t *testing.T) {
	// Deeply parenthesized expressions must not blow the stack at sane
	// depths.
	depth := 300
	expr := strings.Repeat("~(", depth) + "a" + strings.Repeat(")", depth)
	src := "module m(input a, output y); assign y = " + expr + "; endmodule"
	nl, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if nl.ComputeStats().Gates != depth {
		t.Fatalf("gates = %d, want %d", nl.ComputeStats().Gates, depth)
	}
}

func TestWidthBoundary(t *testing.T) {
	// 256 is the widest legal signal; 257 errors cleanly.
	if _, err := Compile("module m(input [255:0] a, output [255:0] y); assign y = a; endmodule"); err != nil {
		t.Fatalf("width 256 rejected: %v", err)
	}
	if _, err := Compile("module m(input [256:0] a, output y); assign y = a[0]; endmodule"); err == nil {
		t.Fatal("width 257 accepted")
	}
}
