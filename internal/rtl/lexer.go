// Package rtl implements the flow's front end: a compact structural
// RTL dialect (a small Verilog subset) with buses, bitwise operators,
// ternary multiplexers, adders/subtractors, comparisons, constant
// shifts, concatenation, replication and implicitly clocked registers.
// Designs elaborate to the gate-level netlist IR; this stands in for
// the commercial synthesis front end of the paper's flow.
//
// Grammar sketch:
//
//	module NAME ( {(input|output) [ [H:L] ] NAME ,} ) ;
//	  wire [H:L] NAME = expr ;
//	  wire [H:L] NAME ;         assign NAME = expr ;
//	  reg  [H:L] NAME ;         always NAME <= expr ;
//	endmodule
//
// Expressions: ?:  |  ^  &  ==  !=  <<  >>  +  -  ~  &x |x ^x (reductions)
// indexing x[i], slicing x[h:l], concatenation {a,b}, replication
// {N{x}}, and literals 12, 8'hFF, 4'b1010.
package rtl

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber  // plain decimal
	tokSized   // sized literal: 8'hFF
	tokSymbol  // punctuation / operator
	tokKeyword // module, input, output, wire, reg, assign, always, endmodule
)

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"wire": true, "reg": true, "assign": true, "always": true,
}

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src, stripping // and /* */ comments.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("rtl: line %d: unterminated block comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			text := l.src[start:l.pos]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			l.emit(kind, text)
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexNumber() error {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	// Sized literal? e.g. 8'hFF, 4'b1010, 3'd5.
	if l.pos < len(l.src) && l.src[l.pos] == '\'' {
		l.pos++
		if l.pos >= len(l.src) {
			return fmt.Errorf("rtl: line %d: truncated sized literal", l.line)
		}
		base := l.src[l.pos]
		if base != 'h' && base != 'b' && base != 'd' && base != 'o' {
			return fmt.Errorf("rtl: line %d: bad literal base %q", l.line, base)
		}
		l.pos++
		digStart := l.pos
		for l.pos < len(l.src) && (isHexDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		if l.pos == digStart {
			return fmt.Errorf("rtl: line %d: sized literal without digits", l.line)
		}
		l.emit(tokSized, l.src[start:l.pos])
		return nil
	}
	l.emit(tokNumber, l.src[start:l.pos])
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// multi-character symbols, longest first.
var symbols = []string{"<<", ">>", "<=", "==", "!=", "?", ":", ",", ";",
	"(", ")", "[", "]", "{", "}", "=", "&", "|", "^", "~", "+", "-"}

func (l *lexer) lexSymbol() error {
	for _, s := range symbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.emit(tokSymbol, s)
			l.pos += len(s)
			return nil
		}
	}
	return fmt.Errorf("rtl: line %d: unexpected character %q", l.line, l.src[l.pos])
}
