package rtl

import (
	"fmt"
	"strconv"
	"strings"
)

type parser struct {
	toks []token
	pos  int
}

// Parse parses one module from RTL source text.
func Parse(src string) (*Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("trailing input after endmodule")
	}
	return m, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("rtl: line %d: %s (at %q)", p.cur().line, fmt.Sprintf(format, args...), p.cur().text)
}

func (p *parser) expectSymbol(s string) error {
	if p.cur().kind != tokSymbol || p.cur().text != s {
		return p.errorf("expected %q", s)
	}
	p.pos++
	return nil
}

func (p *parser) expectKeyword(s string) error {
	if p.cur().kind != tokKeyword || p.cur().text != s {
		return p.errorf("expected %q", s)
	}
	p.pos++
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errorf("expected identifier")
	}
	return p.next().text, nil
}

func (p *parser) atSymbol(s string) bool {
	return p.cur().kind == tokSymbol && p.cur().text == s
}

func (p *parser) atKeyword(s string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == s
}

func (p *parser) parseModule() (*Module, error) {
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for !p.atSymbol(")") {
		port, err := p.parsePort()
		if err != nil {
			return nil, err
		}
		m.Ports = append(m.Ports, port)
		if p.atSymbol(",") {
			p.pos++
		} else if !p.atSymbol(")") {
			return nil, p.errorf("expected ',' or ')' in port list")
		}
	}
	p.pos++ // ')'
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	for !p.atKeyword("endmodule") {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, item)
	}
	p.pos++ // endmodule
	return m, nil
}

func (p *parser) parsePort() (Port, error) {
	line := p.cur().line
	var output bool
	switch {
	case p.atKeyword("input"):
		output = false
	case p.atKeyword("output"):
		output = true
	default:
		return Port{}, p.errorf("expected input or output")
	}
	p.pos++
	width, err := p.parseOptWidth()
	if err != nil {
		return Port{}, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return Port{}, err
	}
	return Port{Name: name, Width: width, Output: output, Line: line}, nil
}

// parseOptWidth parses an optional [H:L] range and returns H-L+1, or 1.
func (p *parser) parseOptWidth() (int, error) {
	if !p.atSymbol("[") {
		return 1, nil
	}
	p.pos++
	hi, err := p.parseInt()
	if err != nil {
		return 0, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return 0, err
	}
	lo, err := p.parseInt()
	if err != nil {
		return 0, err
	}
	if err := p.expectSymbol("]"); err != nil {
		return 0, err
	}
	if lo != 0 {
		return 0, p.errorf("ranges must be [N:0]")
	}
	if hi < lo {
		return 0, p.errorf("descending range required, got [%d:%d]", hi, lo)
	}
	return hi - lo + 1, nil
}

func (p *parser) parseInt() (int, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errorf("expected number")
	}
	v, err := strconv.Atoi(p.next().text)
	if err != nil {
		return 0, err
	}
	return v, nil
}

func (p *parser) parseItem() (Item, error) {
	line := p.cur().line
	switch {
	case p.atKeyword("wire"):
		p.pos++
		width, err := p.parseOptWidth()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.atSymbol("=") {
			p.pos++
			init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		return WireDecl{Name: name, Width: width, Init: init, Line: line}, nil
	case p.atKeyword("reg"):
		p.pos++
		width, err := p.parseOptWidth()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		return RegDecl{Name: name, Width: width, Line: line}, nil
	case p.atKeyword("assign"):
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		return Assign{Name: name, Expr: e, Line: line}, nil
	case p.atKeyword("always"):
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("<="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		return AlwaysFF{Name: name, Expr: e, Line: line}, nil
	default:
		return nil, p.errorf("expected wire, reg, assign, always or endmodule")
	}
}

// Expression grammar, lowest precedence first:
//
//	ternary := or ('?' ternary ':' ternary)?
//	or      := xor ('|' xor)*
//	xor     := and ('^' and)*
//	and     := eq  ('&' eq)*
//	eq      := shift (('=='|'!=') shift)*
//	shift   := add (('<<'|'>>') add)*
//	add     := unary (('+'|'-') unary)*
//	unary   := ('~'|'&'|'|'|'^') unary | primary
//	primary := ref | literal | '(' ternary ')' | concat
func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	line := p.cur().line
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.atSymbol("?") {
		return cond, nil
	}
	p.pos++
	thenE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return nil, err
	}
	elseE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return Ternary{Cond: cond, Then: thenE, Else: elseE, Line: line}, nil
}

// binary operator precedence levels, loosest first.
var precLevels = [][]string{
	{"|"}, {"^"}, {"&"}, {"==", "!="}, {"<<", ">>"}, {"+", "-"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range precLevels[level] {
			if p.atSymbol(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return x, nil
		}
		line := p.cur().line
		p.pos++
		y, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		x = Binary{Op: matched, X: x, Y: y, Line: line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	for _, op := range []string{"~", "&", "|", "^"} {
		if p.atSymbol(op) {
			line := p.cur().line
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Unary{Op: op, X: x, Line: line}, nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	line := p.cur().line
	switch {
	case p.atSymbol("("):
		p.pos++
		e, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.atSymbol("{"):
		return p.parseConcat()
	case p.cur().kind == tokNumber:
		v, err := strconv.ParseUint(p.next().text, 10, 64)
		if err != nil {
			return nil, err
		}
		return Literal{Value: v, Width: 0, Line: line}, nil
	case p.cur().kind == tokSized:
		return p.parseSizedLiteral()
	case p.cur().kind == tokIdent:
		name := p.next().text
		ref := Ref{Name: name, Line: line}
		if p.atSymbol("[") {
			p.pos++
			hi, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			lo := hi
			if p.atSymbol(":") {
				p.pos++
				lo, err = p.parseInt()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, p.errorf("slice [%d:%d] must be descending", hi, lo)
			}
			ref.HasIndex, ref.Hi, ref.Lo = true, hi, lo
		}
		return ref, nil
	default:
		return nil, p.errorf("expected expression")
	}
}

func (p *parser) parseConcat() (Expr, error) {
	line := p.cur().line
	p.pos++ // '{'
	// Replication {N{x}}?
	if p.cur().kind == tokNumber && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "{" {
		count, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		p.pos++ // inner '{'
		x, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		if count <= 0 {
			return nil, p.errorf("replication count must be positive")
		}
		return Repl{Count: count, X: x, Line: line}, nil
	}
	var parts []Expr
	for {
		e, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
		if p.atSymbol(",") {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	return Concat{Parts: parts, Line: line}, nil
}

func (p *parser) parseSizedLiteral() (Expr, error) {
	line := p.cur().line
	text := p.next().text
	quote := strings.IndexByte(text, '\'')
	width, err := strconv.Atoi(text[:quote])
	if err != nil {
		return nil, fmt.Errorf("rtl: line %d: bad literal width in %q", line, text)
	}
	base := text[quote+1]
	digits := strings.ReplaceAll(text[quote+2:], "_", "")
	var radix int
	switch base {
	case 'h':
		radix = 16
	case 'b':
		radix = 2
	case 'd':
		radix = 10
	case 'o':
		radix = 8
	}
	v, err := strconv.ParseUint(digits, radix, 64)
	if err != nil {
		return nil, fmt.Errorf("rtl: line %d: bad literal %q: %v", line, text, err)
	}
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("rtl: line %d: literal width %d out of range", line, width)
	}
	if width < 64 && v >= 1<<uint(width) {
		return nil, fmt.Errorf("rtl: line %d: literal %q does not fit in %d bits", line, text, width)
	}
	return Literal{Value: v, Width: width, Line: line}, nil
}
