package rtl

import (
	"strings"
	"testing"

	"vpga/internal/netlist"
)

// compile is a test helper that fails the test on error.
func compile(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	nl, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return nl
}

// evalComb drives a compiled combinational design once.
func evalComb(t *testing.T, nl *netlist.Netlist, in map[string]bool) map[string]bool {
	t.Helper()
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Step(in)
}

// busIn expands value v into per-bit inputs "name[i]".
func busIn(in map[string]bool, name string, width int, v uint64) {
	for i := 0; i < width; i++ {
		key := name
		if width > 1 {
			key = name + "[" + itoa(i) + "]"
		}
		in[key] = v>>uint(i)&1 == 1
	}
}

// busOut collects per-bit outputs into a value.
func busOut(out map[string]bool, name string, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		key := name
		if width > 1 {
			key = name + "[" + itoa(i) + "]"
		}
		if out[key] {
			v |= 1 << uint(i)
		}
	}
	return v
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                            // empty
		"module m; endmodule",         // missing port list
		"module m(input a) endmodule", // missing semicolons
		"module m(input a); wire b = ; endmodule",                     // empty expr
		"module m(input a); bogus endmodule",                          // bad item
		"module m(input [0:7] a); endmodule",                          // ascending range
		"module m(input a); wire w = 2'b111; assign w = a; endmodule", // literal overflow
		"module m(input a, output y); assign y = a; assign y = a; endmodule",
		"module m(input a, output y); assign y = x; endmodule",               // unknown signal
		"module m(input a, output y); endmodule",                             // undriven output
		"module m(input a, output y); reg r; assign y = a; endmodule",        // reg without always
		"module m(input a, output y); assign y = a << a; endmodule",          // variable shift
		"module m(input a, input a, output y); assign y = a; endmodule",      // dup decl
		"module m(input [1:0] a, output y); assign y = a ? a : a; endmodule", // wide ternary cond
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCommentsAndLiterals(t *testing.T) {
	nl := compile(t, `
// line comment
module lits(input a, output [7:0] y);
  /* block
     comment */
  assign y = 8'hA5 ^ {8{a}};
endmodule`)
	in := map[string]bool{"a": false}
	out := evalComb(t, nl, in)
	if got := busOut(out, "y", 8); got != 0xA5 {
		t.Errorf("y = %#x, want 0xA5", got)
	}
	out = evalComb(t, nl, map[string]bool{"a": true})
	if got := busOut(out, "y", 8); got != 0x5A {
		t.Errorf("y = %#x, want 0x5A", got)
	}
}

func TestAdderExhaustive(t *testing.T) {
	nl := compile(t, `
module add4(input [3:0] a, input [3:0] b, output [4:0] s);
  assign s = {1'b0, a} + {1'b0, b};
endmodule`)
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := map[string]bool{}
			busIn(in, "a", 4, a)
			busIn(in, "b", 4, b)
			out := sim.Step(in)
			if got := busOut(out, "s", 5); got != a+b {
				t.Fatalf("%d+%d = %d, want %d", a, b, got, a+b)
			}
		}
	}
}

func TestSubtractorExhaustive(t *testing.T) {
	nl := compile(t, `
module sub4(input [3:0] a, input [3:0] b, output [3:0] d);
  assign d = a - b;
endmodule`)
	sim, _ := netlist.NewSimulator(nl)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := map[string]bool{}
			busIn(in, "a", 4, a)
			busIn(in, "b", 4, b)
			out := sim.Step(in)
			if got := busOut(out, "d", 4); got != (a-b)&0xF {
				t.Fatalf("%d-%d = %d, want %d", a, b, got, (a-b)&0xF)
			}
		}
	}
}

func TestBitwiseOpsAndPrecedence(t *testing.T) {
	// & binds tighter than ^ binds tighter than |.
	nl := compile(t, `
module ops(input [2:0] a, input [2:0] b, input [2:0] c, output [2:0] y);
  assign y = a | b ^ c & a;
endmodule`)
	sim, _ := netlist.NewSimulator(nl)
	for v := uint64(0); v < 512; v++ {
		a, b, c := v&7, v>>3&7, v>>6&7
		in := map[string]bool{}
		busIn(in, "a", 3, a)
		busIn(in, "b", 3, b)
		busIn(in, "c", 3, c)
		out := sim.Step(in)
		want := a | (b ^ (c & a))
		if got := busOut(out, "y", 3); got != want {
			t.Fatalf("v=%d: got %d, want %d", v, got, want)
		}
	}
}

func TestEqualityAndTernary(t *testing.T) {
	nl := compile(t, `
module eq(input [3:0] a, input [3:0] b, output [3:0] y, output ne);
  assign y = (a == b) ? a : b;
  assign ne = a != b;
endmodule`)
	sim, _ := netlist.NewSimulator(nl)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := map[string]bool{}
			busIn(in, "a", 4, a)
			busIn(in, "b", 4, b)
			out := sim.Step(in)
			want := b
			if a == b {
				want = a
			}
			if got := busOut(out, "y", 4); got != want {
				t.Fatalf("a=%d b=%d: y=%d want %d", a, b, got, want)
			}
			if out["ne"] != (a != b) {
				t.Fatalf("a=%d b=%d: ne=%v", a, b, out["ne"])
			}
		}
	}
}

func TestShiftsConcatSlice(t *testing.T) {
	nl := compile(t, `
module sh(input [7:0] a, output [7:0] l, output [7:0] r, output [7:0] mix);
  assign l = a << 2;
  assign r = a >> 3;
  assign mix = {a[3:0], a[7:4]};
endmodule`)
	sim, _ := netlist.NewSimulator(nl)
	for _, a := range []uint64{0x00, 0xFF, 0xA5, 0x3C, 0x81} {
		in := map[string]bool{}
		busIn(in, "a", 8, a)
		out := sim.Step(in)
		if got := busOut(out, "l", 8); got != (a<<2)&0xFF {
			t.Errorf("a=%#x: l=%#x", a, got)
		}
		if got := busOut(out, "r", 8); got != a>>3 {
			t.Errorf("a=%#x: r=%#x", a, got)
		}
		if got := busOut(out, "mix", 8); got != ((a&0xF)<<4 | a>>4) {
			t.Errorf("a=%#x: mix=%#x want %#x", a, got, (a&0xF)<<4|a>>4)
		}
	}
}

func TestReductions(t *testing.T) {
	nl := compile(t, `
module red(input [4:0] a, output andr, output orr, output xorr);
  assign andr = &a;
  assign orr = |a;
  assign xorr = ^a;
endmodule`)
	sim, _ := netlist.NewSimulator(nl)
	for a := uint64(0); a < 32; a++ {
		in := map[string]bool{}
		busIn(in, "a", 5, a)
		out := sim.Step(in)
		ones := 0
		for i := 0; i < 5; i++ {
			if a>>uint(i)&1 == 1 {
				ones++
			}
		}
		if out["andr"] != (ones == 5) || out["orr"] != (ones > 0) || out["xorr"] != (ones%2 == 1) {
			t.Fatalf("a=%#x: %v", a, out)
		}
	}
}

func TestRegisterPipeline(t *testing.T) {
	nl := compile(t, `
module pipe(input clk, input [3:0] d, output [3:0] q2);
  reg [3:0] s1;
  reg [3:0] s2;
  always s1 <= d;
  always s2 <= s1;
  assign q2 = s2;
endmodule`)
	sim, _ := netlist.NewSimulator(nl)
	vals := []uint64{3, 7, 12, 1, 9}
	var got []uint64
	for _, v := range vals {
		in := map[string]bool{"clk": false}
		busIn(in, "d", 4, v)
		out := sim.Step(in)
		got = append(got, busOut(out, "q2", 4))
	}
	// Two-stage pipe: outputs are 0, 0, then vals shifted by 2.
	want := []uint64{0, 0, 3, 7, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: q2 = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

func TestAccumulator(t *testing.T) {
	nl := compile(t, `
module acc(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] total;
  always total <= total + d;
  assign q = total;
endmodule`)
	sim, _ := netlist.NewSimulator(nl)
	sum := uint64(0)
	for _, v := range []uint64{5, 10, 200, 60, 1} {
		in := map[string]bool{"clk": false}
		busIn(in, "d", 8, v)
		out := sim.Step(in)
		if got := busOut(out, "q", 8); got != sum {
			t.Fatalf("q = %d, want %d", got, sum)
		}
		sum = (sum + v) & 0xFF
	}
}

func TestWireInitAndUseBeforeAssign(t *testing.T) {
	if _, err := Compile(`
module m(input a, output y);
  wire w = v & a;
  wire v = a;
  assign y = w;
endmodule`); err == nil || !strings.Contains(err.Error(), "unknown signal") {
		t.Errorf("use-before-decl not reported: %v", err)
	}
	if _, err := Compile(`
module m(input a, output y);
  wire v;
  wire w = v & a;
  assign v = a;
  assign y = w;
endmodule`); err == nil || !strings.Contains(err.Error(), "before it is assigned") {
		t.Errorf("use-before-assign not reported: %v", err)
	}
}

func TestOutputReadBack(t *testing.T) {
	nl := compile(t, `
module m(input a, input b, output y, output z);
  assign y = a & b;
  assign z = y ^ a;
endmodule`)
	out := evalComb(t, nl, map[string]bool{"a": true, "b": true})
	if out["y"] != true || out["z"] != false {
		t.Fatalf("out = %v", out)
	}
}

func TestStatsReasonable(t *testing.T) {
	nl := compile(t, `
module add8(input [7:0] a, input [7:0] b, output [7:0] s);
  assign s = a + b;
endmodule`)
	st := nl.ComputeStats()
	if st.Inputs != 16 || st.Outputs != 8 {
		t.Fatalf("IO = %d/%d", st.Inputs, st.Outputs)
	}
	// A ripple adder bit is 2 XOR + 2 AND + 1 OR = 5 gates.
	if st.Gates < 30 || st.Gates > 45 {
		t.Errorf("adder gate count = %d, expected ~40", st.Gates)
	}
}
