package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lru is a bounded least-recently-used cache from content address to
// result payload. Values are treated as immutable by the cache;
// callers that hand out mutable results (flow reports) clone on the
// way in and on the way out.
type lru struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	// evicted counts capacity evictions since startup (surfaced by
	// /metrics as vpgad_cache_evictions_total).
	evicted atomic.Int64
}

type lruEntry struct {
	key string
	val any
}

func newLRU(max int) *lru {
	if max < 1 {
		max = 1
	}
	return &lru{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached value and refreshes its recency.
func (c *lru) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting the least recently used
// entry when the cache is over capacity.
func (c *lru) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
		c.evicted.Add(1)
	}
}

// evictions reports capacity evictions since startup.
func (c *lru) evictions() int64 {
	return c.evicted.Load()
}

// len reports the live entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
