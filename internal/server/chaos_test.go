package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"vpga/internal/artifact"
	"vpga/internal/core"
	"vpga/internal/faultinject"
	"vpga/internal/qor"
)

// TestMain doubles the test binary as a chaos-test daemon: with
// VPGAD_CHAOS_CHILD=1 it serves a crash-safe Server instead of running
// tests, so the kill/restart test can SIGKILL a real process — the one
// failure mode no in-process test can model.
func TestMain(m *testing.M) {
	if os.Getenv("VPGAD_CHAOS_CHILD") == "1" {
		chaosChildMain()
		return
	}
	os.Exit(m.Run())
}

// drainableHandler is what the chaos child serves: a worker Server or
// a cluster Coordinator, both HTTP handlers with graceful shutdown.
type drainableHandler interface {
	http.Handler
	Shutdown(context.Context) error
}

// chaosChildMain is the daemon body of the re-exec'd test binary: a
// Server rooted at $VPGAD_CHAOS_DATA — or, with VPGAD_CHAOS_WORKERS
// set to a comma-separated URL list, a cluster Coordinator over those
// workers — its address announced on stdout, draining cleanly on
// SIGTERM. Fault injection comes from the usual VPGA_FAULTS
// environment variable.
func chaosChildMain() {
	if inj, err := faultinject.FromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos child:", err)
		os.Exit(1)
	} else if inj != nil {
		faultinject.Enable(inj)
	}
	var (
		s   drainableHandler
		err error
	)
	if ws := os.Getenv("VPGAD_CHAOS_WORKERS"); ws != "" {
		s, err = NewCoordinator(CoordinatorOptions{Workers: strings.Split(ws, ",")})
	} else {
		s, err = New(Options{Workers: 2, DataDir: os.Getenv("VPGAD_CHAOS_DATA")})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos child:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos child:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", ln.Addr())
	srv := &http.Server{Handler: s}
	go srv.Serve(ln)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
	<-ch
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "chaos child drain:", err)
		os.Exit(1)
	}
	srv.Shutdown(ctx)
	os.Exit(0)
}

// chaosDaemon is a running child daemon.
type chaosDaemon struct {
	cmd  *exec.Cmd
	base string // http://addr
}

func startChaosDaemon(t *testing.T, dataDir string, env ...string) *chaosDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "VPGAD_CHAOS_CHILD=1", "VPGAD_CHAOS_DATA="+dataDir)
	cmd.Env = append(cmd.Env, env...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(stdout)
	line, err := br.ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("chaos daemon produced no address: %v", err)
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "ADDR ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("chaos daemon greeting %q", line)
	}
	go io.Copy(io.Discard, br)
	return &chaosDaemon{cmd: cmd, base: "http://" + addr}
}

// rawResponse decodes a job envelope keeping the result's raw bytes,
// so byte-identity can be asserted rather than value-identity.
type rawResponse struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func httpJSON(t *testing.T, method, url, body string) (int, rawResponse) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr rawResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	return resp.StatusCode, jr
}

const chaosMatrixBody = `{"seed":7,"place_effort":3,"parallel":2}`

// TestChaosKillRestart is the tentpole's acceptance test: SIGKILL a
// real daemon process mid-matrix, restart it on the same data
// directory, and the replayed job — same ID — completes with a result
// byte-identical to an uninterrupted daemon's. The restarted daemon
// then drains cleanly on SIGTERM.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short")
	}
	// Reference: the same matrix on an uninterrupted daemon.
	refDaemon := startChaosDaemon(t, t.TempDir())
	refStatus, ref := httpJSON(t, "POST", refDaemon.base+"/v1/matrix?wait=1", chaosMatrixBody)
	if refStatus != http.StatusOK || ref.Status != "done" {
		t.Fatalf("reference matrix: status %d job %q (%s)", refStatus, ref.Status, ref.Error)
	}
	refDaemon.cmd.Process.Signal(syscall.SIGTERM)
	refDaemon.cmd.Wait()

	// Victim: submit, let it get underway, SIGKILL.
	dataDir := t.TempDir()
	victim := startChaosDaemon(t, dataDir)
	code, jr := httpJSON(t, "POST", victim.base+"/v1/matrix", chaosMatrixBody)
	if code != http.StatusAccepted || jr.ID == "" {
		t.Fatalf("submission: status %d %+v", code, jr)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st := httpJSON(t, "GET", victim.base+"/v1/runs/"+jr.ID, "")
		if st.Status == "running" {
			break
		}
		if st.Status == "done" || time.Now().After(deadline) {
			t.Fatalf("matrix finished before the kill window (status %q) — raise its size", st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.cmd.Process.Kill() // SIGKILL: no drain, no journal terminal entry
	victim.cmd.Wait()

	// Restart on the same directory: the journal replays the job under
	// its original ID and it runs to completion.
	revived := startChaosDaemon(t, dataDir)
	defer func() {
		revived.cmd.Process.Kill()
		revived.cmd.Wait()
	}()
	deadline = time.Now().Add(3 * time.Minute)
	var replayed rawResponse
	for {
		code, replayed = httpJSON(t, "GET", revived.base+"/v1/runs/"+jr.ID, "")
		if code == http.StatusOK && (replayed.Status == "done" || replayed.Status == "failed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job %s never finished: status %d %+v", jr.ID, code, replayed)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if replayed.Status != "done" {
		t.Fatalf("replayed job failed: %s", replayed.Error)
	}
	if !bytes.Equal(ref.Result, replayed.Result) {
		t.Fatalf("matrix after kill+restart is not byte-identical to the uninterrupted run:\nref   %d bytes\nredone %d bytes",
			len(ref.Result), len(replayed.Result))
	}
	// The restart observably replayed from the journal.
	hz, err := http.Get(revived.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Journal struct {
			ReplayedJobs int64 `json:"replayed_jobs"`
		} `json:"journal"`
	}
	json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if health.Journal.ReplayedJobs < 1 {
		t.Fatalf("healthz reports %d replayed jobs", health.Journal.ReplayedJobs)
	}
	// And the revived daemon exits 0 on SIGTERM.
	revived.cmd.Process.Signal(syscall.SIGTERM)
	if err := revived.cmd.Wait(); err != nil {
		t.Fatalf("revived daemon did not drain cleanly: %v", err)
	}
}

// TestChaosSoak drives the crash-safety layer through hundreds of
// seeded injected faults — torn writes and I/O errors across the
// journal, ledger, artifact store and flow stage boundaries — and
// asserts the service neither crashes nor ever serves a report that
// diverges from a clean run's.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	t.Cleanup(faultinject.Disable)
	var totalInjected int64

	// Phase 1 — component I/O under heavy fault pressure: every
	// operation either succeeds (possibly after bounded retry) or fails
	// cleanly; no partial state is ever visible afterwards.
	compInj := faultinject.New(99, 0.25,
		[]faultinject.Kind{faultinject.KindErrWrite, faultinject.KindTorn},
		"journal.append", "ledger.append", "artifact.write", "artifact.read")
	faultinject.Enable(compInj)

	dir := t.TempDir()
	jn, _, err := openJournal(filepath.Join(dir, "soak.wal"))
	if err != nil {
		t.Fatal(err)
	}
	store, err := artifact.Open(filepath.Join(dir, "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	ledgerPath := filepath.Join(dir, "soak.jsonl")
	key := func(i int) string { return fmt.Sprintf("%064d", i) }
	journaled, ledgered := 0, 0
	for i := 0; i < 150; i++ {
		if err := faultinject.Retry(8, 0, func() error {
			return jn.append(journalEntry{ID: fmt.Sprintf("j%06d", i), State: "accepted"}, false)
		}, nil); err == nil {
			journaled++
		}
		if err := faultinject.Retry(8, 0, func() error {
			return qor.Append(ledgerPath, qor.Record{Schema: 1, Bench: "alu", Arch: "soak", Flow: "b", Seed: int64(i)})
		}, nil); err == nil {
			ledgered++
		}
		payload := bytes.Repeat([]byte{byte(i)}, 64+i)
		if err := faultinject.Retry(8, 0, func() error {
			return store.Put(key(i), payload)
		}, nil); err == nil {
			var got []byte
			ok := false
			for attempt := 0; attempt < 8 && !ok; attempt++ {
				got, ok = store.Get(key(i))
			}
			if !ok {
				t.Fatalf("iteration %d: stored artifact unreadable after retries", i)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("iteration %d: artifact payload corrupted in flight", i)
			}
		}
	}
	jn.close()
	faultinject.Disable()
	totalInjected += compInj.Injected()

	// Everything that reported success is durably, cleanly on disk.
	jn2, entries, err := openJournal(filepath.Join(dir, "soak.wal"))
	if err != nil {
		t.Fatal(err)
	}
	jn2.close()
	if len(entries) != journaled || jn2.corruptFrames != 0 {
		t.Fatalf("journal after soak: %d entries (want %d), %d torn frames",
			len(entries), journaled, jn2.corruptFrames)
	}
	recs, st, err := qor.ReadStatsFile(ledgerPath)
	if err != nil {
		t.Fatalf("ledger after soak: %v", err)
	}
	if len(recs) != ledgered || st.TornTail {
		t.Fatalf("ledger after soak: %d records (want %d), torn=%v", len(recs), ledgered, st.TornTail)
	}

	// Phase 2 — whole-service soak: a fault-ridden daemon must produce
	// exactly the reports a clean daemon does. Bounded retries absorb
	// transient faults; a job that still fails is resubmitted (the
	// deterministic flow recomputes identically), never accepted as a
	// divergent result.
	bodies := make([]string, 6)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"design":"alu","arch":{"kind":"granular"},"flow":"b","seed":%d}`, 100+i)
	}
	_, cleanTS := newTestServer(t, Options{Workers: 2})
	cleanReports := make([]*rawResponse, len(bodies))
	for i, body := range bodies {
		code, jr := httpJSON(t, "POST", cleanTS.URL+"/v1/runs?wait=1", body)
		if code != http.StatusOK || jr.Status != "done" {
			t.Fatalf("clean run %d: status %d job %q (%s)", i, code, jr.Status, jr.Error)
		}
		cleanReports[i] = &jr
	}

	flowInj := faultinject.New(7, 0.04,
		[]faultinject.Kind{faultinject.KindErrWrite, faultinject.KindTorn},
		"stage.", "journal.append", "ledger.append", "artifact.write", "artifact.read")
	faultinject.Enable(flowInj)
	_, faultyTS := newTestServer(t, Options{
		Workers: 1, DataDir: t.TempDir(), LedgerPath: filepath.Join(dir, "faulty.jsonl"),
	})
	for i, body := range bodies {
		var jr rawResponse
		done := false
		for attempt := 0; attempt < 5 && !done; attempt++ {
			code, r := httpJSON(t, "POST", faultyTS.URL+"/v1/runs?wait=1", body)
			if code == http.StatusOK && r.Status == "done" {
				jr, done = r, true
			}
		}
		if !done {
			t.Fatalf("faulty run %d never completed", i)
		}
		cl, fl := decodeReport(t, cleanReports[i].Result), decodeReport(t, jr.Result)
		cl.StripMetrics()
		fl.StripMetrics()
		if !reflect.DeepEqual(cl, fl) {
			t.Fatalf("faulty run %d diverged from the clean run", i)
		}
	}
	faultinject.Disable()
	totalInjected += flowInj.Injected()

	if totalInjected < 200 {
		t.Fatalf("soak injected only %d faults, want >= 200", totalInjected)
	}
}

func decodeReport(t *testing.T, raw json.RawMessage) *core.Report {
	t.Helper()
	rep := &core.Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// coordHealth is the slice of the coordinator's /healthz the cluster
// chaos test asserts against.
type coordHealth struct {
	NodesUp int `json:"nodes_up"`
	Nodes   []struct {
		Node       string `json:"node"`
		Up         bool   `json:"up"`
		Dispatched int64  `json:"dispatched"`
	} `json:"nodes"`
	Cluster struct {
		Tickets  int64 `json:"tickets"`
		Reshards int64 `json:"reshards"`
		Steals   int64 `json:"steals"`
	} `json:"cluster"`
}

func getCoordHealth(t *testing.T, base string) coordHealth {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h coordHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestChaosClusterWorkerSIGKILL is the scale-out acceptance under real
// process death: a coordinator over three re-exec'd worker daemons
// runs the benchmark matrix; one worker is SIGKILLed mid-matrix; the
// in-flight and queued cells re-shard onto the survivors and the
// merged report is byte-identical to the committed single-node golden.
func TestChaosClusterWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short")
	}
	workers := make([]*chaosDaemon, 3)
	bases := make([]string, 3)
	for i := range workers {
		workers[i] = startChaosDaemon(t, t.TempDir())
		bases[i] = workers[i].base
	}
	t.Cleanup(func() {
		for _, w := range workers {
			w.cmd.Process.Kill()
			w.cmd.Wait()
		}
	})
	coord := startChaosDaemon(t, t.TempDir(), "VPGAD_CHAOS_WORKERS="+strings.Join(bases, ","))
	t.Cleanup(func() {
		coord.cmd.Process.Kill()
		coord.cmd.Wait()
	})

	code, jr := httpJSON(t, "POST", coord.base+"/v1/matrix", chaosMatrixBody)
	if code != http.StatusAccepted || jr.ID == "" {
		t.Fatalf("cluster matrix submission: status %d %+v", code, jr)
	}
	// Kill the first worker observed executing tickets, while the
	// matrix is still in flight.
	victim := -1
	deadline := time.Now().Add(30 * time.Second)
	for victim < 0 {
		h := getCoordHealth(t, coord.base)
		for _, n := range h.Nodes {
			for i, b := range bases {
				if n.Node == b && n.Dispatched > 0 {
					victim = i
				}
			}
		}
		if victim >= 0 {
			break
		}
		if _, st := httpJSON(t, "GET", coord.base+"/v1/runs/"+jr.ID, ""); st.Status == "done" || st.Status == "failed" {
			t.Fatalf("matrix reached %q before any ticket dispatch was observed", st.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("no ticket dispatched within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	workers[victim].cmd.Process.Kill() // SIGKILL: sockets die mid-request
	workers[victim].cmd.Wait()

	deadline = time.Now().Add(3 * time.Minute)
	var merged rawResponse
	for {
		var code int
		code, merged = httpJSON(t, "GET", coord.base+"/v1/runs/"+jr.ID, "")
		if code == http.StatusOK && (merged.Status == "done" || merged.Status == "failed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster matrix never finished after the kill: status %d %+v", code, merged)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if merged.Status != "done" {
		t.Fatalf("cluster matrix failed after the kill: %s", merged.Error)
	}
	checkMatrixGolden(t, merged.Result)

	h := getCoordHealth(t, coord.base)
	if h.Cluster.Reshards < 1 {
		t.Fatalf("reshards = %d after a SIGKILLed worker (healthz %+v)", h.Cluster.Reshards, h)
	}
	if h.NodesUp > 2 {
		t.Fatalf("nodes_up = %d after killing one of three workers", h.NodesUp)
	}
	// The coordinator itself drains cleanly.
	coord.cmd.Process.Signal(syscall.SIGTERM)
	if err := coord.cmd.Wait(); err != nil {
		t.Fatalf("coordinator did not drain cleanly: %v", err)
	}
}
