package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vpga/internal/core"
	"vpga/internal/faultinject"
)

// peerFetchPoint is the fault-injection point armed around every
// peer-cache HTTP fetch: an injected fault models the peer transport
// failing (connection reset, partial read), and the lookup degrades to
// a miss — local compute — never an error.
const peerFetchPoint = "peer.fetch"

// nodeClient is the coordinator's handle on one worker node: its base
// URL, an HTTP client, liveness, and per-node rollup counters.
type nodeClient struct {
	base string
	hc   *http.Client
	down atomic.Bool

	dispatched atomic.Int64 // tickets sent to this node
	errs       atomic.Int64 // transport/protocol failures talking to it

	mu     sync.Mutex
	health nodeHealth // last scraped /healthz snapshot
}

// nodeHealth is the slice of a worker's /healthz the coordinator rolls
// up into cluster metrics and GET /v1/cluster/status.
type nodeHealth struct {
	QueueDepth  int                  `json:"queue_depth"`
	JobsRunning int64                `json:"jobs_running"`
	StageCache  core.StageCacheStats `json:"stage_cache"`
}

func newNodeClient(base string) *nodeClient {
	return &nodeClient{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{}, // per-call deadlines come from contexts
	}
}

// rawEnvelope is a worker jobResponse with the result left raw: the
// coordinator forwards or merges result bytes without re-decoding
// what it does not need, which is also what keeps forwarded results
// byte-identical to the worker's own rendering.
type rawEnvelope struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	Status    string          `json:"status"`
	Cached    bool            `json:"cached"`
	Key       string          `json:"key"`
	Result    json.RawMessage `json:"result"`
	Error     string          `json:"error"`
	Stage     string          `json:"stage"`
	ErrorKind string          `json:"error_kind"`

	RetryAfter time.Duration `json:"-"` // from the Retry-After header on a 429
}

// post submits a job body to the node and decodes the response
// envelope. The returned error covers transport and decode failures
// only — an HTTP error status comes back as (envelope, status, nil)
// for the caller to classify (429 backs off, 503 marks the node
// draining, 4xx is the request's own fault).
// The trace argument, when non-empty, rides on the X-Vpga-Trace
// header so the worker threads the coordinator's trace context into
// its own tracer.
func (n *nodeClient) post(ctx context.Context, path string, body []byte, trace string) (*rawEnvelope, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(TraceHeader, trace)
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var env rawEnvelope
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&env); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		env.RetryAfter = time.Duration(secs) * time.Second
	}
	return &env, resp.StatusCode, nil
}

// cacheGet asks the node's lookup-only cache endpoint for a result's
// raw JSON. Every failure — transport, injected transport fault,
// non-200 — is a miss.
func (n *nodeClient) cacheGet(ctx context.Context, key string) ([]byte, bool) {
	if faultinject.Check(peerFetchPoint) != nil {
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/v1/cache/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false
	}
	return raw, true
}

// traceFragment fetches a worker job's Chrome trace-event fragment
// (GET /v1/runs/{id}/trace) for the merged cluster timeline. Every
// failure — transport, non-200, malformed JSON — yields (nil, false):
// a fragment is decoration on the coordinator-side ticket span, never
// load-bearing.
func (n *nodeClient) traceFragment(ctx context.Context, jobID string) ([]traceEvent, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/v1/runs/"+url.PathEscape(jobID)+"/trace", nil)
	if err != nil {
		return nil, false
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var frag []traceEvent
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&frag); err != nil {
		return nil, false
	}
	return frag, true
}

// healthy probes the node's /healthz and scrapes its queue snapshot;
// only a 200 counts as up (503 means draining — no new tickets).
func (n *nodeClient) healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var h nodeHealth
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) == nil {
		n.mu.Lock()
		n.health = h
		n.mu.Unlock()
	}
	return resp.StatusCode == http.StatusOK
}

func (n *nodeClient) lastHealth() nodeHealth {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.health
}

// NewPeerLookup builds the Options.PeerLookup for a worker node in a
// cluster: the ring over all nodes decides which peer owns a key, and
// a key owned elsewhere triggers one lookup against that owner's
// cache endpoint. Keys this node owns itself resolve locally (its own
// LRU and artifact store already ran before the peer tier), so the
// lookup never loops back to self and never cascades.
func NewPeerLookup(self string, nodes []string) func(ctx context.Context, kind, key string) ([]byte, bool) {
	self = strings.TrimRight(self, "/")
	r := newRing(nodes, 0)
	peers := make(map[string]*nodeClient, len(nodes))
	for _, n := range nodes {
		if c := newNodeClient(n); c.base != self {
			peers[c.base] = c
		}
	}
	return func(ctx context.Context, kind, key string) ([]byte, bool) {
		owner := strings.TrimRight(r.owner(key), "/")
		peer := peers[owner]
		if peer == nil {
			return nil, false // we own it (or the ring is empty): no peer to ask
		}
		ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		return peer.cacheGet(ctx, key)
	}
}
