package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vpga/internal/faultinject"
)

// newTestCoordinator starts a Coordinator over the worker base URLs
// with health probing off (tests flip liveness through traffic, not
// timers) and tears it down with the test.
func newTestCoordinator(t *testing.T, opts CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	if opts.HealthInterval == 0 {
		opts.HealthInterval = -1
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c, ts
}

// newWorkerFleet starts n in-process worker daemons and returns their
// base URLs.
func newWorkerFleet(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		_, ts := newTestServer(t, Options{Workers: 2})
		urls[i] = ts.URL
	}
	return urls
}

// reindent renders result bytes at canonical standalone indentation,
// so payloads captured at different envelope nesting depths compare
// byte-for-byte (and match the committed golden).
func reindent(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatalf("reindent: %v", err)
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

const matrixGoldenPath = "testdata/matrix-single-node.json"

// checkMatrixGolden compares a matrix result against the committed
// single-node golden (CI's chaos job curls the same file against a
// live cluster). VPGAD_UPDATE_GOLDEN=1 rewrites it.
func checkMatrixGolden(t *testing.T, result json.RawMessage) {
	t.Helper()
	got := reindent(t, result)
	if os.Getenv("VPGAD_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(matrixGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(matrixGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(matrixGoldenPath)
	if err != nil {
		t.Fatalf("missing matrix golden (rerun with VPGAD_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("matrix result diverged from %s (%d vs %d bytes); if the flow changed intentionally, rerun with VPGAD_UPDATE_GOLDEN=1",
			matrixGoldenPath, len(got), len(want))
	}
}

// TestRingDeterministicOwnership: every replica of the membership list
// derives the same ring, load spreads over all members, and a death
// remaps only the dead member's keys.
func TestRingDeterministicOwnership(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(members, 0)
	r2 := newRing([]string{members[2], members[0], members[1]}, 0)

	// Real ring keys are SHA-256 hex; hashed key strings stand in here
	// so the sample spreads like content addresses do.
	perNode := map[string]int{}
	owners := map[string]string{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("%x", sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
		o := r1.owner(key)
		if o2 := r2.owner(key); o2 != o {
			t.Fatalf("rings from reordered membership disagree on %q: %q vs %q", key, o, o2)
		}
		owners[key] = o
		perNode[o]++
	}
	for _, m := range members {
		if perNode[m] == 0 {
			t.Fatalf("member %s owns no keys: %v", m, perNode)
		}
	}
	if !r1.setLive(members[1], false) {
		t.Fatal("setLive reported no change taking a live member down")
	}
	moved := 0
	for key, was := range owners {
		now := r1.owner(key)
		if was == members[1] {
			if now == members[1] {
				t.Fatalf("dead member still owns %q", key)
			}
			moved++
		} else if now != was {
			t.Fatalf("key %q moved from surviving member %q to %q", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("no keys remapped off the dead member")
	}
	if r1.setLive("http://stranger:1", true) {
		t.Fatal("setLive accepted an unknown member")
	}
	if got := r1.liveMembers(); !reflect.DeepEqual(got, []string{members[0], members[2]}) {
		t.Fatalf("live members %v", got)
	}
}

// TestSchedulerPriorityFairnessAndStealing pins the queue discipline:
// priority first, then least-recently-served tenant, then FIFO — and
// an idle node's runner steals from another node's queue.
func TestSchedulerPriorityFairnessAndStealing(t *testing.T) {
	mk := func(priority int, tenant string) *ticket {
		return &ticket{priority: priority, tenant: tenant, home: "n1", res: make(chan ticketOutcome, 1)}
	}
	sc := newScheduler(1) // one runner lane per node
	a, b, c, d := mk(0, "ta"), mk(0, "ta"), mk(0, "tb"), mk(1, "ta")
	for _, tk := range []*ticket{a, b, c, d} {
		if !sc.enqueue(tk) {
			t.Fatal("enqueue refused on an open scheduler")
		}
	}
	up := func() bool { return false }
	var order []*ticket
	for i := 0; i < 4; i++ {
		tk, stolen := sc.next("n1", up)
		if stolen {
			t.Fatal("own-queue pop flagged as a steal")
		}
		order = append(order, tk)
	}
	// d: highest priority. c: tenant tb never served. a then b: FIFO.
	if want := []*ticket{d, c, a, b}; !reflect.DeepEqual(order, want) {
		name := func(tk *ticket) string { return fmt.Sprintf("p%d/%s/seq%d", tk.priority, tk.tenant, tk.seq) }
		var got []string
		for _, tk := range order {
			got = append(got, name(tk))
		}
		t.Fatalf("pop order %v, want priority desc, then least-recently-served tenant, then FIFO", got)
	}

	// Locality guard: a lone ticket on a live node with an idle lane is
	// not steal-eligible — its home runner picks it up, keeping the
	// cell's result on its ring owner.
	e := mk(0, "ta")
	e.home = "n2"
	sc.enqueue(e)
	tk, stolen := sc.next("n2", up)
	if tk != e || stolen {
		t.Fatalf("home runner pop: ticket %v, stolen %v", tk, stolen)
	}

	// n2's only lane is now busy with e, so a lone follow-up ticket on
	// n2 IS stolen by an idle n1 runner.
	f := mk(0, "ta")
	f.home = "n2"
	sc.enqueue(f)
	tk, stolen = sc.next("n1", up)
	if tk != f || !stolen {
		t.Fatalf("saturated-victim steal: ticket %v, stolen %v", tk, stolen)
	}
	sc.release("n2")

	// A backlog of >= 2 is steal-eligible even with idle victim lanes.
	g, h := mk(0, "ta"), mk(0, "tb")
	g.home, h.home = "n2", "n2"
	sc.enqueue(g)
	sc.enqueue(h)
	// Within the stolen queue the discipline still applies: tenant tb
	// was served less recently than ta, so h wins.
	if tk, stolen = sc.next("n1", up); tk != h || !stolen {
		t.Fatalf("backlog steal: ticket %v, stolen %v", tk, stolen)
	}

	// Re-homing a dead node's queue moves every ticket.
	if moved := sc.requeue("n2", func(*ticket) string { return "n3" }); moved != 1 {
		t.Fatalf("requeue moved %d tickets, want 1", moved)
	}
	if d := sc.depth("n3"); d != 1 {
		t.Fatalf("n3 queue depth %d after requeue", d)
	}
	sc.close()
	if sc.enqueue(mk(0, "ta")) {
		t.Fatal("enqueue accepted on a closed scheduler")
	}
}

// TestPeerTierServesWithoutDoubleStore is the three-tier read path
// regression: memory LRU miss, artifact store miss, peer hit — the
// result is served and promoted to the memory cache only, never
// written back to the artifact store, and the next identical request
// is a local LRU hit that consults no peer.
func TestPeerTierServesWithoutDoubleStore(t *testing.T) {
	_, src := newTestServer(t, Options{Workers: 2})
	_, origin := postJSON(t, src, "/v1/runs?wait=1", runBody)
	if origin.Status != "done" {
		t.Fatalf("origin run: %q (%s)", origin.Status, origin.Error)
	}
	resp, err := http.Get(src.URL + "/v1/cache/" + origin.Key)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("origin cache lookup: status %d err %v", resp.StatusCode, err)
	}

	var calls atomic.Int64
	s, ts := newTestServer(t, Options{
		Workers: 2, DataDir: t.TempDir(),
		PeerLookup: func(ctx context.Context, kind, key string) ([]byte, bool) {
			calls.Add(1)
			if kind != "run" || key != origin.Key {
				t.Errorf("peer lookup for %s/%s, want run/%s", kind, key, origin.Key)
			}
			return raw, true
		},
	})
	_, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if jr.Status != "done" || !jr.Cached {
		t.Fatalf("peer-backed request: status %q cached=%v (%s)", jr.Status, jr.Cached, jr.Error)
	}
	st := s.stats()
	if st.PeerHits != 1 || st.PeerMisses != 0 {
		t.Fatalf("peer counters hits=%d misses=%d", st.PeerHits, st.PeerMisses)
	}
	if st.StoreEntries != 0 {
		t.Fatalf("peer hit double-stored: %d artifact entries", st.StoreEntries)
	}
	// Promoted to the memory LRU: the repeat is local, no second call.
	_, again := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if !again.Cached {
		t.Fatal("repeat after peer hit missed the local cache")
	}
	if calls.Load() != 1 {
		t.Fatalf("peer consulted %d times, want 1", calls.Load())
	}
	if s.cacheHits.Load() != 1 {
		t.Fatalf("local cache hits = %d after promotion", s.cacheHits.Load())
	}
	// The served bytes match the origin's report.
	ro, rp := reportOf(t, origin), reportOf(t, jr)
	ro.StripMetrics()
	rp.StripMetrics()
	if !reflect.DeepEqual(ro, rp) {
		t.Fatal("peer-served report diverged from the origin")
	}
	if got := s.stats(); got.PeerHits != 1 {
		t.Fatalf("peer hits drifted to %d", got.PeerHits)
	}
}

// TestPeerTierCorruptResponseComputes: undecodable peer bytes are a
// silent miss — the node computes locally instead of failing the job.
func TestPeerTierCorruptResponseComputes(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers: 2,
		PeerLookup: func(ctx context.Context, kind, key string) ([]byte, bool) {
			return []byte(`{"this is": not json`), true
		},
	})
	_, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if jr.Status != "done" || jr.Cached {
		t.Fatalf("corrupt peer response: status %q cached=%v (%s)", jr.Status, jr.Cached, jr.Error)
	}
	st := s.stats()
	if st.PeerHits != 0 || st.PeerMisses != 1 {
		t.Fatalf("peer counters hits=%d misses=%d, want a counted miss", st.PeerHits, st.PeerMisses)
	}
}

// TestPeerFetchFaultInjectionDegrades drives the real peer transport
// (NewPeerLookup against a live node) through the faultinject point:
// an injected transport fault degrades the lookup to a miss and the
// worker computes locally.
func TestPeerFetchFaultInjectionDegrades(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, src := newTestServer(t, Options{Workers: 2})
	if _, jr := postJSON(t, src, "/v1/runs?wait=1", runBody); jr.Status != "done" {
		t.Fatalf("warm-up run: %q (%s)", jr.Status, jr.Error)
	}
	key := runKey(t)
	// Pick a self URL under which the live node owns the key, so the
	// lookup actually crosses the transport.
	self := ""
	for i := 0; i < 256 && self == ""; i++ {
		cand := fmt.Sprintf("http://self-%d.invalid", i)
		if newRing([]string{cand, src.URL}, 0).owner(key) == src.URL {
			self = cand
		}
	}
	if self == "" {
		t.Fatal("no self URL makes the peer own the key")
	}
	lookup := NewPeerLookup(self, []string{self, src.URL})
	if _, ok := lookup(context.Background(), "run", key); !ok {
		t.Fatal("peer lookup missed with a healthy transport")
	}
	faultinject.Enable(faultinject.New(1, 1.0, nil, peerFetchPoint))
	if _, ok := lookup(context.Background(), "run", key); ok {
		t.Fatal("injected transport fault did not degrade the lookup to a miss")
	}
	s, ts := newTestServer(t, Options{Workers: 2, PeerLookup: lookup})
	_, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if jr.Status != "done" || jr.Cached {
		t.Fatalf("run under peer faults: status %q cached=%v (%s)", jr.Status, jr.Cached, jr.Error)
	}
	if st := s.stats(); st.PeerMisses != 1 || st.PeerHits != 0 {
		t.Fatalf("peer counters under faults hits=%d misses=%d", st.PeerHits, st.PeerMisses)
	}
}

// TestCoordinatorForwardsRun: a single run through the coordinator
// lands on the ring owner, matches a direct worker run, and an
// identical resubmission resolves from the cluster's caches.
func TestCoordinatorForwardsRun(t *testing.T) {
	urls := newWorkerFleet(t, 2)
	c, cts := newTestCoordinator(t, CoordinatorOptions{Workers: urls})

	code, jr := httpJSON(t, "POST", cts.URL+"/v1/runs?wait=1", runBody)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("coordinator run: status %d job %q (%s)", code, jr.Status, jr.Error)
	}
	if !strings.HasPrefix(jr.ID, "c") {
		t.Fatalf("coordinator job id %q", jr.ID)
	}
	// Status endpoint serves the finished job.
	stCode, st := httpJSON(t, "GET", cts.URL+"/v1/runs/"+jr.ID, "")
	if stCode != http.StatusOK || st.Status != "done" {
		t.Fatalf("status: %d %q", stCode, st.Status)
	}
	// Same report as running directly on a worker.
	_, direct := httpJSON(t, "POST", urls[0]+"/v1/runs?wait=1", runBody)
	cd, cc := decodeReport(t, direct.Result), decodeReport(t, jr.Result)
	cd.StripMetrics()
	cc.StripMetrics()
	if !reflect.DeepEqual(cd, cc) {
		t.Fatal("coordinator-forwarded run diverged from a direct worker run")
	}
	// Resubmission: the cluster already has the result.
	_, again := httpJSON(t, "POST", cts.URL+"/v1/runs?wait=1", runBody)
	if again.Status != "done" || !again.Cached {
		t.Fatalf("resubmission: status %q cached=%v", again.Status, again.Cached)
	}
	if hits := c.peerHits.Load() + c.workerCacheHits.Load(); hits == 0 {
		t.Fatal("resubmission resolved without any cache hit")
	}
}

// TestCoordinatorMatrixByteIdentical is the tentpole acceptance
// property: a 3-worker coordinator matrix, split into per-cell tickets
// and merged, renders byte-identically to a single node's — and both
// match the committed golden CI verifies against a live cluster.
func TestCoordinatorMatrixByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	_, single := newTestServer(t, Options{Workers: 4})
	refCode, ref := httpJSON(t, "POST", single.URL+"/v1/matrix?wait=1", chaosMatrixBody)
	if refCode != http.StatusOK || ref.Status != "done" {
		t.Fatalf("single-node matrix: status %d job %q (%s)", refCode, ref.Status, ref.Error)
	}
	checkMatrixGolden(t, ref.Result)

	urls := newWorkerFleet(t, 3)
	c, cts := newTestCoordinator(t, CoordinatorOptions{Workers: urls})
	code, jr := httpJSON(t, "POST", cts.URL+"/v1/matrix?wait=1", chaosMatrixBody)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("coordinator matrix: status %d job %q (%s)", code, jr.Status, jr.Error)
	}
	if !bytes.Equal(ref.Result, jr.Result) {
		t.Fatalf("coordinator matrix is not byte-identical to the single node's:\nsingle %d bytes\nmerged %d bytes",
			len(ref.Result), len(jr.Result))
	}
	if got := c.tickets.Load(); got < 16 {
		t.Fatalf("matrix resolved %d tickets, want >= 16 (4 designs x 2 archs x 2 flows)", got)
	}
	// An identical resubmission hits the coordinator's composite cache.
	_, again := httpJSON(t, "POST", cts.URL+"/v1/matrix?wait=1", chaosMatrixBody)
	if !again.Cached || !bytes.Equal(ref.Result, again.Result) {
		t.Fatalf("matrix resubmission: cached=%v, identical=%v", again.Cached, bytes.Equal(ref.Result, again.Result))
	}
	if c.cacheHits.Load() != 1 {
		t.Fatalf("composite cache hits = %d", c.cacheHits.Load())
	}
}

// TestCoordinatorMatrixSurvivesWorkerDeath kills the first worker that
// starts executing a cell — listener closed, in-flight coordinator
// requests severed — and asserts its tickets re-shard onto the
// survivors and the merged matrix still matches the golden.
func TestCoordinatorMatrixSurvivesWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	var kill sync.Once
	servers := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range servers {
		i := i
		_, servers[i] = newTestServer(t, Options{
			Workers: 2,
			testJobStart: func(*job) {
				kill.Do(func() {
					servers[i].Listener.Close()         // refuse new connections
					servers[i].CloseClientConnections() // sever in-flight requests
				})
			},
		})
		urls[i] = servers[i].URL
	}
	c, cts := newTestCoordinator(t, CoordinatorOptions{Workers: urls})
	code, jr := httpJSON(t, "POST", cts.URL+"/v1/matrix?wait=1", chaosMatrixBody)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("matrix through worker death: status %d job %q (%s)", code, jr.Status, jr.Error)
	}
	checkMatrixGolden(t, jr.Result)
	if got := c.reshards.Load(); got < 1 {
		t.Fatalf("reshards = %d after a worker died mid-matrix", got)
	}
}

// TestCoordinatorSweepPeerHitRatio is the scale-out caching
// acceptance: re-running a cached sweep through a fresh coordinator
// resolves >= 90% of tickets from peer/worker caches, visible in the
// cluster rollup metrics, with a byte-identical merged result.
func TestCoordinatorSweepPeerHitRatio(t *testing.T) {
	urls := newWorkerFleet(t, 3)
	sweep := `{"design":"alu","seed":5,"archs":[{"kind":"lut"},{"kind":"granular"},{"kind":"custom","name":"coarse-lut2","nand":1,"lut":2,"ff":1}]}`

	// Reference: the same sweep on a single node.
	_, single := newTestServer(t, Options{Workers: 4})
	_, ref := httpJSON(t, "POST", single.URL+"/v1/sweeps/granularity?wait=1", sweep)
	if ref.Status != "done" {
		t.Fatalf("single-node sweep: %q (%s)", ref.Status, ref.Error)
	}

	_, cts1 := newTestCoordinator(t, CoordinatorOptions{Workers: urls})
	_, first := httpJSON(t, "POST", cts1.URL+"/v1/sweeps/granularity?wait=1", sweep)
	if first.Status != "done" {
		t.Fatalf("cluster sweep: %q (%s)", first.Status, first.Error)
	}
	if !bytes.Equal(ref.Result, first.Result) {
		t.Fatal("cluster sweep is not byte-identical to the single node's")
	}

	// A fresh coordinator has no composite cache — every ticket must
	// resolve through the peer tier against the warm workers.
	c2, cts2 := newTestCoordinator(t, CoordinatorOptions{Workers: urls})
	_, again := httpJSON(t, "POST", cts2.URL+"/v1/sweeps/granularity?wait=1", sweep)
	if again.Status != "done" {
		t.Fatalf("re-run sweep: %q (%s)", again.Status, again.Error)
	}
	if !bytes.Equal(ref.Result, again.Result) {
		t.Fatal("cached cluster sweep diverged")
	}
	if ratio := c2.peerHitRatio(); ratio < 0.9 {
		t.Fatalf("peer hit ratio %.3f on a cached sweep, want >= 0.9 (hits %d+%d over %d tickets)",
			ratio, c2.peerHits.Load(), c2.workerCacheHits.Load(), c2.tickets.Load())
	}
	text := metricsText(t, cts2)
	if v, ok := metricValue(text, "vpgad_cluster_peer_hit_ratio"); !ok || v < 0.9 {
		t.Fatalf("vpgad_cluster_peer_hit_ratio = %v (present %v), want >= 0.9", v, ok)
	}
	if v, ok := metricValue(text, "vpgad_cluster_nodes_up"); !ok || v != 3 {
		t.Fatalf("vpgad_cluster_nodes_up = %v (present %v), want 3", v, ok)
	}
}

// TestBatchSubmission: POST /v1/batch validates every item up front,
// launches them all with their priorities/tenants, and each job is
// pollable to completion; one bad item rejects the whole batch.
func TestBatchSubmission(t *testing.T) {
	urls := newWorkerFleet(t, 2)
	c, cts := newTestCoordinator(t, CoordinatorOptions{Workers: urls})

	// A bad item rejects the whole batch before anything launches.
	resp, err := http.Post(cts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"jobs":[{"kind":"run","request":`+runBody+`},{"kind":"nope","request":{}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: status %d, want 400", resp.StatusCode)
	}
	if got := c.tickets.Load(); got != 0 {
		t.Fatalf("rejected batch still ran %d tickets", got)
	}

	batch := fmt.Sprintf(`{"jobs":[
		{"kind":"run","priority":1,"tenant":"interactive","request":%s},
		{"kind":"run","tenant":"bulk","request":{"design":"alu","arch":{"kind":"lut"},"flow":"b","seed":7}}
	]}`, runBody)
	resp, err = http.Post(cts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(br.Jobs) != 2 {
		t.Fatalf("batch: status %d, %d jobs", resp.StatusCode, len(br.Jobs))
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, j := range br.Jobs {
		if j.ID == "" {
			t.Fatalf("batch job missing id: %+v", j)
		}
		for {
			code, st := httpJSON(t, "GET", cts.URL+"/v1/runs/"+j.ID, "")
			if code == http.StatusOK && st.Status == "done" {
				break
			}
			if st.Status == "failed" || time.Now().After(deadline) {
				t.Fatalf("batch job %s: status %q (%s)", j.ID, st.Status, st.Error)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if c.batches.Load() != 1 {
		t.Fatalf("batches counter = %d", c.batches.Load())
	}
}

// TestBackpressureBudgetOutlastsAttemptBound is the bugfix regression:
// a saturated worker answers 429 — with the Retry-After hint the
// coordinator must honor — far more times than the re-shard attempt
// bound, and the ticket has to wait the backlog out rather than fail.
// This is exactly the lone-survivor shape: one live node grinding
// through a re-sharded matrix keeps refusing work long past
// len(nodes)+4 polls.
func TestBackpressureBudgetOutlastsAttemptBound(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second backpressure wait in -short mode")
	}
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1,
		testJobStart: func(*job) { <-release },
	})
	c, cts := newTestCoordinator(t, CoordinatorOptions{Workers: []string{ts.URL}})

	// Three distinct runs: one runs (gated), one queues, the third
	// bounces on 429 until the gate opens.
	var wg sync.WaitGroup
	statuses := make([]string, 3)
	errs := make([]string, 3)
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"design":"alu","arch":{"kind":"granular"},"flow":"b","seed":%d}`, 40+i)
			resp, err := http.Post(cts.URL+"/v1/runs?wait=1", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			var jr jobResponse
			if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
				errs[i] = err.Error()
				return
			}
			statuses[i], errs[i] = jr.Status, jr.Error
		}(i)
	}
	// All retries land on the single bouncing ticket, so the global
	// counter is that ticket's attempt count. Outlast the old bound.
	bound := int64(c.maxTicketAttempts())
	deadline := time.Now().Add(30 * time.Second)
	for c.ticketRetries.Load() <= bound {
		if time.Now().After(deadline) {
			t.Fatalf("saw only %d backpressure retries (want > %d)", c.ticketRetries.Load(), bound)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, st := range statuses {
		if st != "done" {
			t.Fatalf("job %d: status %q (%s) — backpressure must be waited out, not fatal", i, st, errs[i])
		}
	}
}
