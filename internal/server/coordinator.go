package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vpga/internal/core"
	"vpga/internal/obs"
)

// Coordinator is vpgad's cluster mode: the same public API as a worker
// Server, served by scattering work over N worker nodes instead of a
// local pool. Single runs ship whole to the ring owner of their cache
// key; matrices and granularity sweeps split into per-cell tickets —
// each cell is a pure function of its canonical FlowRequest (see
// core.MatrixPlan / core.SweepPlan), so the merged result is
// byte-identical to a single node's. Tickets queue per home node with
// work stealing; a dead node's queued and in-flight tickets re-shard
// onto the survivors. POST /v1/batch adds job priorities and
// per-tenant fairness so a bulk sweep cannot starve interactive runs.
type Coordinator struct {
	opts  CoordinatorOptions
	mux   *http.ServeMux
	ring  *ring
	nodes map[string]*nodeClient
	order []string // node bases in Options order, for stable rollups
	sched *scheduler
	cache *lru // composite (merged) results; cells live in worker caches
	log   *slog.Logger

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*cjob
	doneOrder []string

	nextID atomic.Int64
	start  time.Time

	reqTotal, completed, failed atomic.Int64
	timeouts                    atomic.Int64
	cacheHits, cacheMisses      atomic.Int64
	tickets, ticketRetries      atomic.Int64
	peerHits, peerMisses        atomic.Int64
	workerCacheHits             atomic.Int64
	steals, reshards            atomic.Int64
	batches                     atomic.Int64
}

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Workers are the worker nodes' base URLs (required, >= 1).
	Workers []string
	// VNodes is the consistent-hash virtual-node count per worker
	// (0 = 64).
	VNodes int
	// NodeConcurrency is the number of tickets in flight per worker
	// node (0 = 4) — roughly the worker's own pool size.
	NodeConcurrency int
	// HealthInterval paces the node health probes (0 = 2s, < 0 = off).
	HealthInterval time.Duration
	// CacheSize bounds the merged-composite result cache (0 = 256).
	CacheSize int
	// JobsKeep bounds retained completed-job records (0 = 64).
	JobsKeep int
	// Logger receives the coordinator's structured log lines (job
	// lifecycle, node liveness, steals, reshards), with job_id /
	// trace_id / tenant attrs. Nil logs nothing.
	Logger *slog.Logger
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.NodeConcurrency <= 0 {
		o.NodeConcurrency = 4
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	if o.JobsKeep <= 0 {
		o.JobsKeep = 64
	}
	return o
}

// NewCoordinator starts a coordinator over the worker fleet; stop it
// with Shutdown.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, errors.New("coordinator needs at least one worker node")
	}
	ctx, cancel := context.WithCancel(context.Background())
	log := opts.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	c := &Coordinator{
		opts:    opts,
		mux:     http.NewServeMux(),
		nodes:   make(map[string]*nodeClient, len(opts.Workers)),
		cache:   newLRU(opts.CacheSize),
		log:     log,
		jobs:    make(map[string]*cjob),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
	}
	for _, w := range opts.Workers {
		n := newNodeClient(w)
		if _, dup := c.nodes[n.base]; dup {
			cancel()
			return nil, fmt.Errorf("duplicate worker node %q", n.base)
		}
		c.nodes[n.base] = n
		c.order = append(c.order, n.base)
	}
	c.ring = newRing(c.order, opts.VNodes)
	c.sched = newScheduler(opts.NodeConcurrency)

	c.mux.HandleFunc("POST /v1/runs", c.handleRun)
	c.mux.HandleFunc("POST /v1/matrix", c.handleMatrix)
	c.mux.HandleFunc("POST /v1/sweeps/granularity", c.handleGranularitySweep)
	c.mux.HandleFunc("POST /v1/sweeps/routing", c.handleRoutingSweep)
	c.mux.HandleFunc("POST /v1/batch", c.handleBatch)
	c.mux.HandleFunc("GET /v1/runs/{id}", c.handleStatus)
	c.mux.HandleFunc("GET /v1/runs/{id}/trace", c.handleJobTrace)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	c.mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleJobTrace)
	c.mux.HandleFunc("GET /v1/cluster/status", c.handleClusterStatus)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)

	for _, base := range c.order {
		n := c.nodes[base]
		for i := 0; i < opts.NodeConcurrency; i++ {
			c.wg.Add(1)
			go c.runner(n)
		}
	}
	if opts.HealthInterval > 0 {
		c.wg.Add(1)
		go c.healthLoop()
	}
	return c, nil
}

// ServeHTTP implements http.Handler. Every request gets an
// X-Request-ID (echoed from the client or minted) before dispatch, so
// error envelopes and log lines are correlatable with client retries.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.reqTotal.Add(1)
	rid := ensureRequestID(w, r)
	c.log.Debug("http request", "method", r.Method, "path", r.URL.Path, "request_id", rid)
	c.mux.ServeHTTP(w, r)
}

// Shutdown stops the coordinator: queued tickets fail fast, in-flight
// worker requests are cancelled, and the runner pool drains.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.cancel()
	c.sched.close()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Ticket scheduling: per-node queues, priority + tenant fairness,
// work stealing.

// ticket is one unit of shipped work: the canonical body POSTed to a
// worker endpoint, plus the scheduling coordinates (home node from the
// ring, priority and tenant from the originating job).
type ticket struct {
	seq      int64
	priority int
	tenant   string
	kind     string
	name     string // display label on the merged trace ("alu/lut-plb/flow b")
	path     string // worker endpoint ("/v1/runs", "/v1/sweeps/routing")
	key      string // content address; routes the ticket on the ring
	body     []byte
	home     string
	attempts int
	backoff  time.Duration // cumulative backpressure wait

	// Distributed-trace context: the owning job's trace ID rides the
	// X-Vpga-Trace header to the worker, and the jobTrace records the
	// ticket's dispatch window, steals and reshards. Both may be empty/
	// nil (trace-free tickets cost nothing).
	traceID string
	trace   *jobTrace
	stolen  bool

	once sync.Once
	res  chan ticketOutcome
}

// traceHeaderValue renders the X-Vpga-Trace header for this ticket's
// worker dispatch: the job's trace ID with the ticket name as the
// parent span ("" when the job is untraced).
func (t *ticket) traceHeaderValue() string {
	if t.traceID == "" {
		return ""
	}
	return t.traceID + ":" + t.name
}

type ticketOutcome struct {
	env *rawEnvelope
	err error
}

// deliver resolves the ticket exactly once.
func (t *ticket) deliver(out ticketOutcome) {
	t.once.Do(func() { t.res <- out })
}

// scheduler holds the per-node ticket queues. Queue discipline within
// a node: highest priority first; ties go to the tenant served least
// recently (so equal-priority tenants round-robin instead of one bulk
// submitter draining the node); final tie is FIFO. A runner whose own
// queue is empty steals from the longest queue — which is also how a
// dead node's leftover tickets drain after a re-shard.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]*ticket
	served  map[string]int64 // tenant -> serve sequence of its last pick
	active  map[string]int   // node -> tickets its runners are executing
	lanes   int              // runner lanes per node (steal threshold)
	serveSq int64
	nextSeq int64
	closed  bool
}

func newScheduler(lanes int) *scheduler {
	if lanes < 1 {
		lanes = 1
	}
	sc := &scheduler{
		queues: map[string][]*ticket{},
		served: map[string]int64{},
		active: map[string]int{},
		lanes:  lanes,
	}
	sc.cond = sync.NewCond(&sc.mu)
	return sc
}

// enqueue queues the ticket on its home node; false when the
// scheduler is closed (the caller fails the ticket).
func (sc *scheduler) enqueue(t *ticket) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return false
	}
	if t.seq == 0 {
		sc.nextSeq++
		t.seq = sc.nextSeq
	}
	sc.queues[t.home] = append(sc.queues[t.home], t)
	sc.cond.Broadcast()
	return true
}

func (sc *scheduler) close() {
	sc.mu.Lock()
	sc.closed = true
	// Fail everything still queued so composite jobs unwind instead of
	// waiting on tickets no runner will ever pick up.
	for node, q := range sc.queues {
		for _, t := range q {
			t.deliver(ticketOutcome{err: errors.New("coordinator shutting down")})
		}
		delete(sc.queues, node)
	}
	sc.mu.Unlock()
	sc.cond.Broadcast()
}

// next blocks until a ticket is available for the node's runner (own
// queue first, then stealing) or the scheduler closes (nil). A down
// node's runners park instead of pulling work.
func (sc *scheduler) next(node string, down func() bool) (t *ticket, stolen bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if sc.closed {
			return nil, false
		}
		if !down() {
			if t := sc.popBest(node); t != nil {
				sc.active[node]++
				return t, false
			}
			// Steal from the longest other queue — but only where it
			// helps: a backlog the victim can't serve promptly (≥ 2
			// queued, or every victim lane already busy). A lone ticket
			// on an idle live node is left to its home runner; stealing
			// it would trade shard/cache locality for nothing, and the
			// re-run of a cached sweep then recomputes cells whose
			// results live on the ring owner.
			victim, max := "", 0
			for other, q := range sc.queues {
				if other == node || len(q) == 0 {
					continue
				}
				if len(q) < 2 && sc.active[other] < sc.lanes {
					continue
				}
				if len(q) > max {
					victim, max = other, len(q)
				}
			}
			if victim != "" {
				sc.active[node]++
				return sc.popBest(victim), true
			}
		}
		sc.cond.Wait()
	}
}

// popBest removes and returns the node queue's best ticket per the
// queue discipline (nil when empty). Callers hold sc.mu.
func (sc *scheduler) popBest(node string) *ticket {
	q := sc.queues[node]
	if len(q) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(q); i++ {
		a, b := q[i], q[best]
		switch {
		case a.priority != b.priority:
			if a.priority > b.priority {
				best = i
			}
		case sc.served[a.tenant] != sc.served[b.tenant]:
			if sc.served[a.tenant] < sc.served[b.tenant] {
				best = i
			}
		case a.seq < b.seq:
			best = i
		}
	}
	t := q[best]
	sc.queues[node] = append(q[:best], q[best+1:]...)
	sc.serveSq++
	sc.served[t.tenant] = sc.serveSq
	return t
}

// requeue moves every ticket queued on a (dead) node to the home the
// rehome function assigns; tickets with no possible home fail. It
// returns how many tickets moved.
func (sc *scheduler) requeue(from string, rehome func(*ticket) string) int {
	sc.mu.Lock()
	q := sc.queues[from]
	delete(sc.queues, from)
	moved := 0
	for _, t := range q {
		home := rehome(t)
		if home == "" {
			t.deliver(ticketOutcome{err: errors.New("no live worker nodes")})
			continue
		}
		t.home = home
		sc.queues[home] = append(sc.queues[home], t)
		moved++
	}
	sc.mu.Unlock()
	sc.cond.Broadcast()
	return moved
}

func (sc *scheduler) depth(node string) int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.queues[node])
}

// inflight is the number of tickets the node's runners are executing
// right now.
func (sc *scheduler) inflight(node string) int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.active[node]
}

// runner is one ticket-execution lane against one worker node.
func (c *Coordinator) runner(n *nodeClient) {
	defer c.wg.Done()
	for {
		t, stolen := c.sched.next(n.base, n.down.Load)
		if t == nil {
			return
		}
		if stolen {
			c.steals.Add(1)
			t.stolen = true
			t.trace.instant("steal", map[string]any{"ticket": t.name, "to": n.base, "from": t.home})
			c.log.Debug("ticket stolen", "ticket_id", t.name, "from", t.home, "to", n.base, "trace_id", t.traceID)
		}
		c.execute(n, t)
		c.sched.release(n.base)
	}
}

// release marks one of the node's runner lanes idle again, re-opening
// the lone-ticket steal guard for queues homed there.
func (sc *scheduler) release(node string) {
	sc.mu.Lock()
	if sc.active[node] > 0 {
		sc.active[node]--
	}
	sc.mu.Unlock()
	sc.cond.Broadcast()
}

// maxTicketAttempts bounds re-shard cycles per ticket: a ticket gets a
// few tries beyond visiting every node once. Backpressure (429) does
// not count against it — that is budgeted by wall clock instead.
func (c *Coordinator) maxTicketAttempts() int { return len(c.nodes) + 4 }

// Backpressure budget: each 429 pauses for the worker's Retry-After
// hint clamped to [100ms, maxBackpressurePause]; a ticket fails only
// after maxBackpressureWait of cumulative waiting.
const (
	maxBackpressurePause = 5 * time.Second
	maxBackpressureWait  = 5 * time.Minute
)

// execute ships one ticket to the node and classifies the outcome. A
// transport failure presumes the node dead: it is marked down (its
// queue re-shards onto the survivors) and the in-flight ticket is
// resubmitted to its new ring owner — the recompute is safe because
// every ticket is a pure, deterministic function of its body.
func (c *Coordinator) execute(n *nodeClient, t *ticket) {
	n.dispatched.Add(1)
	dispatchAt := t.trace.since()
	// record stamps the attempt's window onto the job trace (no-op on
	// untraced tickets): which node ran it, the worker job ID holding
	// its trace fragment, and how the attempt ended.
	record := func(workerJob string, cached bool, errMsg string) {
		t.trace.ticket(ticketRecord{
			name: t.name, node: n.base, workerJob: workerJob,
			start: dispatchAt, end: t.trace.since(),
			cached: cached, stolen: t.stolen, attempts: t.attempts, err: errMsg,
		})
	}
	env, status, err := n.post(c.baseCtx, t.path+"?wait=1", t.body, t.traceHeaderValue())
	if err != nil {
		n.errs.Add(1)
		if c.baseCtx.Err() != nil {
			t.deliver(ticketOutcome{err: err})
			return
		}
		record("", false, err.Error())
		c.markDown(n)
		c.resubmit(t, err)
		return
	}
	switch status {
	case http.StatusTooManyRequests:
		// Worker backpressure: pause for the worker's Retry-After hint
		// (clamped so a deep-backlog hint cannot pin a steal-able ticket
		// for long), then back on the queue — any runner, including a
		// less loaded node's, may steal it. A 429 means the cluster is
		// busy, not broken, so it spends a wall-clock budget rather than
		// the attempt bound that node deaths share: a lone survivor
		// grinding through a re-sharded matrix keeps answering 429 far
		// longer than len(nodes)+4 polls.
		c.ticketRetries.Add(1)
		pause := 100 * time.Millisecond
		if env.RetryAfter > pause {
			pause = env.RetryAfter
		}
		if pause > maxBackpressurePause {
			pause = maxBackpressurePause
		}
		t.backoff += pause
		if t.backoff > maxBackpressureWait {
			t.deliver(ticketOutcome{err: fmt.Errorf("ticket rejected by backpressure for %s", t.backoff)})
			return
		}
		time.AfterFunc(pause, func() {
			if !c.sched.enqueue(t) {
				t.deliver(ticketOutcome{err: errors.New("coordinator shutting down")})
			}
		})
	case http.StatusServiceUnavailable:
		record("", false, "node draining")
		c.markDown(n)
		c.resubmit(t, errors.New("node draining"))
	case http.StatusOK, http.StatusAccepted:
		workerJob := env.ID
		env = c.awaitTerminal(n, t, env)
		if env == nil {
			record(workerJob, false, "attempt ended before a terminal status")
			return // resubmitted (or delivered a poll failure)
		}
		if env.ErrorKind == "timeout" {
			// Satellite of isTimeout: a timeout on a remote worker still
			// counts on the coordinator's vpgad_jobs_timeout_total.
			c.timeouts.Add(1)
		}
		if env.Cached {
			c.workerCacheHits.Add(1)
		}
		record(env.ID, env.Cached, env.Error)
		t.deliver(ticketOutcome{env: env})
	default:
		msg := env.Error
		if msg == "" {
			msg = fmt.Sprintf("worker answered HTTP %d", status)
		}
		record(env.ID, false, msg)
		t.deliver(ticketOutcome{env: env, err: errors.New(msg)})
	}
}

// awaitTerminal polls the worker's status endpoint when a ?wait=1
// submission still came back non-terminal (e.g. the worker bounded the
// wait). Returns nil after resubmitting on a mid-poll node death.
func (c *Coordinator) awaitTerminal(n *nodeClient, t *ticket, env *rawEnvelope) *rawEnvelope {
	for env.Status == "queued" || env.Status == "running" {
		select {
		case <-c.baseCtx.Done():
			t.deliver(ticketOutcome{err: c.baseCtx.Err()})
			return nil
		case <-time.After(50 * time.Millisecond):
		}
		req, err := http.NewRequestWithContext(c.baseCtx, http.MethodGet, n.base+"/v1/runs/"+env.ID, nil)
		if err != nil {
			t.deliver(ticketOutcome{err: err})
			return nil
		}
		resp, err := n.hc.Do(req)
		if err != nil {
			n.errs.Add(1)
			c.markDown(n)
			c.resubmit(t, err)
			return nil
		}
		var next rawEnvelope
		err = json.NewDecoder(resp.Body).Decode(&next)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.deliver(ticketOutcome{err: fmt.Errorf("polling %s on %s: HTTP %d, %v", env.ID, n.base, resp.StatusCode, err)})
			return nil
		}
		env = &next
	}
	return env
}

// resubmit re-homes a ticket after its node died (the re-shard path).
func (c *Coordinator) resubmit(t *ticket, cause error) {
	t.attempts++
	if t.attempts >= c.maxTicketAttempts() {
		t.deliver(ticketOutcome{err: fmt.Errorf("ticket failed after %d attempts: %w", t.attempts, cause)})
		return
	}
	home := c.ring.owner(t.routeKey())
	if home == "" {
		t.deliver(ticketOutcome{err: fmt.Errorf("no live worker nodes: %w", cause)})
		return
	}
	c.reshards.Add(1)
	t.trace.instant("reshard", map[string]any{"ticket": t.name, "to": home, "attempts": t.attempts})
	c.log.Info("ticket resharded", "ticket_id", t.name, "to", home, "attempts", t.attempts,
		"trace_id", t.traceID, "cause", cause.Error())
	t.home = home
	if !c.sched.enqueue(t) {
		t.deliver(ticketOutcome{err: errors.New("coordinator shutting down")})
	}
}

// routeKey is what places the ticket on the ring: its content address,
// or the body itself for the (never expected) uncacheable case.
func (t *ticket) routeKey() string {
	if t.key != "" {
		return t.key
	}
	return string(t.body)
}

// markDown takes a node out of the ring and re-shards its queued
// tickets onto the survivors. Idempotent; the health loop brings the
// node back when it answers again.
func (c *Coordinator) markDown(n *nodeClient) {
	if n.down.Swap(true) {
		return
	}
	c.ring.setLive(n.base, false)
	moved := c.sched.requeue(n.base, func(t *ticket) string {
		home := c.ring.owner(t.routeKey())
		if home != "" {
			t.trace.instant("reshard", map[string]any{"ticket": t.name, "from": n.base, "to": home})
		}
		return home
	})
	c.reshards.Add(int64(moved))
	c.log.Warn("node down", "node", n.base, "resharded_tickets", moved)
}

func (c *Coordinator) markUp(n *nodeClient) {
	if !n.down.Swap(false) {
		return
	}
	c.ring.setLive(n.base, true)
	c.sched.cond.Broadcast() // wake the node's parked runners
	c.log.Info("node up", "node", n.base)
}

// healthLoop probes every node and flips ring membership as nodes die
// and come back.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-tick.C:
		}
		for _, base := range c.order {
			n := c.nodes[base]
			ctx, cancel := context.WithTimeout(c.baseCtx, c.opts.HealthInterval)
			ok := n.healthy(ctx)
			cancel()
			if ok {
				c.markUp(n)
			} else if !n.down.Load() {
				c.markDown(n)
			}
		}
	}
}

// runTicket is the blocking ticket helper composite jobs use: peer
// cache lookup on the key's owner first — a result the cluster already
// computed is fetched, not recomputed — then enqueue and wait. The
// owning job supplies the scheduling coordinates (priority, tenant)
// and the trace context; name labels the ticket on the merged
// timeline.
func (c *Coordinator) runTicket(j *cjob, name, kind, path string, body any, key string) (*rawEnvelope, error) {
	enc, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	c.tickets.Add(1)
	if key != "" {
		if owner := c.ring.owner(key); owner != "" {
			if n := c.nodes[owner]; n != nil && !n.down.Load() {
				start := j.trace.since()
				ctx, cancel := context.WithTimeout(c.baseCtx, 5*time.Second)
				raw, ok := n.cacheGet(ctx, key)
				cancel()
				if ok {
					c.peerHits.Add(1)
					j.trace.ticket(ticketRecord{
						name: name, node: owner, start: start, end: j.trace.since(), cached: true,
					})
					return &rawEnvelope{Kind: kind, Status: "done", Cached: true, Key: key, Result: raw}, nil
				}
			}
		}
		c.peerMisses.Add(1)
	}
	t := &ticket{
		priority: j.priority, tenant: j.tenant, kind: kind, name: name, path: path,
		key: key, body: enc, traceID: j.traceID, trace: j.trace,
		res: make(chan ticketOutcome, 1),
	}
	t.home = c.ring.owner(t.routeKey())
	if t.home == "" {
		return nil, errors.New("no live worker nodes")
	}
	if !c.sched.enqueue(t) {
		return nil, errors.New("coordinator shutting down")
	}
	select {
	case out := <-t.res:
		return out.env, out.err
	case <-c.baseCtx.Done():
		return nil, c.baseCtx.Err()
	}
}

// ---------------------------------------------------------------------------
// Coordinator jobs (client-visible composites).

// cjob is one client-visible coordinator job: a forwarded run or a
// split composite, tracked under a coordinator-scoped ID.
type cjob struct {
	id       string
	kind     string
	key      string
	priority int
	tenant   string
	created  time.Time
	done     chan struct{}

	// Distributed trace: the coordinator-minted trace ID every ticket
	// of this job carries, and the recorder behind GET
	// /v1/jobs/{id}/trace.
	traceID string
	trace   *jobTrace

	mu      sync.Mutex
	status  string
	cached  bool
	result  any
	errMsg  string
	stage   string
	errKind string
}

func (j *cjob) response() jobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobResponse{
		ID: j.id, Kind: j.kind, Status: j.status, Cached: j.cached, Key: j.key,
		Result: j.result, Error: j.errMsg, Stage: j.stage, ErrorKind: j.errKind,
		TraceID: j.traceID,
	}
}

func (j *cjob) finish(result any, cached bool) {
	j.mu.Lock()
	j.status = "done"
	j.result = result
	j.cached = cached
	j.mu.Unlock()
	close(j.done)
}

func (j *cjob) fail(msg, stage, errKind string) {
	j.mu.Lock()
	j.status = "failed"
	j.errMsg = msg
	j.stage = stage
	j.errKind = errKind
	j.mu.Unlock()
	close(j.done)
}

// startJob registers a cjob — minting its distributed trace ID and
// recorder — and runs its composite on a goroutine.
func (c *Coordinator) startJob(kind, key string, priority int, tenant string, run func(j *cjob)) *cjob {
	traceID := newTraceID()
	j := &cjob{
		id: fmt.Sprintf("c%06d", c.nextID.Add(1)), kind: kind, key: key,
		priority: priority, tenant: tenant, created: time.Now(),
		traceID: traceID, trace: newJobTrace(traceID),
		done: make(chan struct{}), status: "queued",
	}
	c.mu.Lock()
	c.jobs[j.id] = j
	c.mu.Unlock()
	c.log.Info("job accepted", "job_id", j.id, "kind", kind, "trace_id", traceID,
		"tenant", tenant, "priority", priority)
	go func() {
		j.mu.Lock()
		j.status = "running"
		j.mu.Unlock()
		endJob := j.trace.span("job "+kind, map[string]any{"job_id": j.id})
		run(j)
		endJob()
		j.mu.Lock()
		failed := j.status == "failed"
		errMsg := j.errMsg
		j.mu.Unlock()
		if failed {
			c.failed.Add(1)
			c.log.Warn("job failed", "job_id", j.id, "kind", kind, "trace_id", traceID,
				"error", errMsg, "duration", time.Since(j.created))
		} else {
			c.completed.Add(1)
			c.log.Info("job done", "job_id", j.id, "kind", kind, "trace_id", traceID,
				"duration", time.Since(j.created))
		}
		c.retireJob(j)
	}()
	return j
}

func (c *Coordinator) retireJob(j *cjob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.doneOrder = append(c.doneOrder, j.id)
	for len(c.doneOrder) > c.opts.JobsKeep {
		old := c.doneOrder[0]
		c.doneOrder = c.doneOrder[1:]
		delete(c.jobs, old)
	}
}

// finishFromEnvelope resolves a forwarded job from a worker envelope.
func (j *cjob) finishFromEnvelope(env *rawEnvelope, err error) {
	if err != nil {
		j.fail(err.Error(), "", "")
		return
	}
	if env.Status == "failed" {
		j.fail(env.Error, env.Stage, env.ErrorKind)
		return
	}
	j.finish(env.Result, env.Cached)
}

// respondCJob mirrors respondJob for coordinator jobs (?wait=1 blocks).
func respondCJob(w http.ResponseWriter, r *http.Request, j *cjob) {
	if wantWait(r) {
		select {
		case <-j.done:
		case <-r.Context().Done():
		}
	}
	resp := j.response()
	status := http.StatusAccepted
	if resp.Status == "done" || resp.Status == "failed" {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

// ---------------------------------------------------------------------------
// Submission endpoints.

// handleRun forwards one flow run to the ring owner of its key.
func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	var req core.FlowRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.submitRun(w, r, req, 0, "")
}

func (c *Coordinator) submitRun(w http.ResponseWriter, r *http.Request, req core.FlowRequest, priority int, tenant string) *cjob {
	key, err := req.CacheKey()
	if err != nil {
		if w != nil {
			writeError(w, http.StatusBadRequest, err)
		}
		return nil
	}
	j := c.startJob("run", key, priority, tenant, func(j *cjob) {
		env, err := c.runTicket(j, req.TicketLabel(), "run", "/v1/runs", req, key)
		j.finishFromEnvelope(env, err)
	})
	if w != nil {
		respondCJob(w, r, j)
	}
	return j
}

// handleMatrix splits the matrix into per-cell tickets and merges a
// byte-identical MatrixResult.
func (c *Coordinator) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.submitMatrix(w, r, req, 0, "")
}

func (c *Coordinator) submitMatrix(w http.ResponseWriter, r *http.Request, req MatrixRequest, priority int, tenant string) *cjob {
	if err := req.validate(); err != nil {
		if w != nil {
			writeError(w, http.StatusBadRequest, err)
		}
		return nil
	}
	key, err := req.cacheKey()
	if err != nil {
		if w != nil {
			writeError(w, http.StatusBadRequest, err)
		}
		return nil
	}
	if v, ok := c.cache.get(key); ok {
		c.cacheHits.Add(1)
		j := c.startJob("matrix", key, priority, tenant, func(j *cjob) { j.finish(v, true) })
		if w != nil {
			respondCJob(w, r, j)
		}
		return j
	}
	c.cacheMisses.Add(1)
	j := c.startJob("matrix", key, priority, tenant, func(j *cjob) { c.runMatrixJob(j, req) })
	if w != nil {
		respondCJob(w, r, j)
	}
	return j
}

// cellFailure is one failed or skipped matrix cell, carried as the
// exact error string a single-node RunMatrix ledger would render.
type cellFailure struct {
	design, arch, flow, msg string
}

// runMatrixJob executes a matrix as 16 tickets — per design, the
// clock-pinning cell first, then its three dependents pinned to the
// derived clock — and merges the cells into the same MatrixResult a
// single node computes: identical report maps (pre-built like
// RunMatrix, reclocked pins, stripped metrics), the error ledger
// sorted by (design, arch, flow), and the rendered tables/claims when
// the matrix is complete.
func (c *Coordinator) runMatrixJob(j *cjob, req MatrixRequest) {
	n := req.normalize()
	suite := req.suite()
	designs := suite.All()
	designReqs := core.MatrixDesignNames()
	archNames := core.MatrixArchNames()
	plan := core.MatrixPlan{
		Scale: n.Scale, Seed: n.Seed, PlaceEffort: n.PlaceEffort,
		DefectRate: n.DefectRate, DefectSeed: n.DefectSeed, RepairBudget: n.RepairBudget,
	}

	reports := make(map[string]map[string]map[string]*core.Report, len(designs))
	for _, d := range designs {
		reports[d.Name] = map[string]map[string]*core.Report{}
		for _, arch := range archNames {
			reports[d.Name][arch] = map[string]*core.Report{}
		}
	}

	var (
		mu       sync.Mutex
		failures []cellFailure
		wg       sync.WaitGroup
	)
	fail := func(design, arch, flow, msg string) {
		mu.Lock()
		failures = append(failures, cellFailure{design, arch, flow, msg})
		mu.Unlock()
	}
	// cellReport resolves one ticket envelope into a stripped report.
	cellReport := func(env *rawEnvelope, err error) (*core.Report, string) {
		switch {
		case err != nil:
			return nil, err.Error()
		case env.Status == "failed":
			return nil, env.Error
		}
		rep := &core.Report{}
		if err := json.Unmarshal(env.Result, rep); err != nil {
			return nil, fmt.Sprintf("decoding cell report: %v", err)
		}
		rep.StripMetrics()
		return rep, ""
	}

	for di := range designs {
		wg.Add(1)
		go func(di int) {
			defer wg.Done()
			d := designs[di]
			pinReq := plan.PinTicket(designReqs[di])
			pin, msg := cellReport(c.runTicket(j, plan.PinLabel(d.Name), "run", "/v1/runs", pinReq, mustKey(pinReq)))
			if pin == nil {
				fail(d.Name, archNames[0], "flow a", msg)
				// The three dependents never run: ledger them exactly like
				// RunMatrix's skipDependents.
				for _, cell := range plan.DependentTickets(designReqs[di], 0) {
					fail(d.Name, cell.ArchName, cell.Flow,
						(&core.FlowError{Design: d.Name, Arch: cell.ArchName, Flow: cell.Flow,
							Stage: "skipped", Err: errors.New("clock-pinning run failed")}).Error())
				}
				return
			}
			clock := plan.PinnedClock(pin)
			pin.Reclock(clock)
			mu.Lock()
			reports[d.Name][archNames[0]]["flow a"] = pin
			mu.Unlock()

			var iwg sync.WaitGroup
			for _, cell := range plan.DependentTickets(designReqs[di], clock) {
				iwg.Add(1)
				go func(cell core.MatrixCell) {
					defer iwg.Done()
					rep, msg := cellReport(c.runTicket(j, cell.Label(d.Name), "run", "/v1/runs", cell.Req, mustKey(cell.Req)))
					if rep == nil {
						fail(d.Name, cell.ArchName, cell.Flow, msg)
						return
					}
					mu.Lock()
					reports[d.Name][cell.ArchName][cell.Flow] = rep
					mu.Unlock()
				}(cell)
			}
			iwg.Wait()
		}(di)
	}
	wg.Wait()

	endMerge := j.trace.span("merge", map[string]any{"cells": len(designs) * 4})
	defer endMerge()
	sort.Slice(failures, func(i, k int) bool {
		a, b := failures[i], failures[k]
		if a.design != b.design {
			return a.design < b.design
		}
		if a.arch != b.arch {
			return a.arch < b.arch
		}
		return a.flow < b.flow
	})
	if len(failures) > 0 && !n.ContinueOnError {
		j.fail(failures[0].msg, "", "")
		return
	}
	res := MatrixResult{Reports: reports}
	for _, f := range failures {
		res.Errors = append(res.Errors, f.msg)
	}
	if len(failures) == 0 {
		m := &core.Matrix{Designs: designs, Reports: reports}
		res.Table1 = m.Table1()
		res.Table2 = m.Table2()
		claims := m.DeriveClaims()
		res.Claims = &claims
		c.cache.put(j.key, res)
	}
	j.finish(res, false)
}

// mustKey content-addresses an already-normalized cell request; cells
// are canonical by construction, so this cannot fail at runtime.
func mustKey(req core.FlowRequest) string {
	key, err := req.CacheKey()
	if err != nil {
		panic(fmt.Sprintf("server: matrix cell has no content address: %v", err))
	}
	return key
}

// handleGranularitySweep splits the sweep into per-architecture
// tickets (first arch pins the clock) and merges the points.
func (c *Coordinator) handleGranularitySweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.submitGranularitySweep(w, r, req, 0, "")
}

func (c *Coordinator) submitGranularitySweep(w http.ResponseWriter, r *http.Request, req SweepRequest, priority int, tenant string) *cjob {
	bad := func(err error) *cjob {
		if w != nil {
			writeError(w, http.StatusBadRequest, err)
		}
		return nil
	}
	if _, err := req.resolveDesign(); err != nil {
		return bad(err)
	}
	n := req.normalize()
	specs := n.Archs
	if len(specs) == 0 {
		specs = core.DefaultSweepArchSpecs()
	}
	for _, spec := range specs {
		if _, err := spec.Resolve(); err != nil {
			return bad(err)
		}
	}
	key, err := req.cacheKey("sweep/granularity")
	if err != nil {
		return bad(err)
	}
	if v, ok := c.cache.get(key); ok {
		c.cacheHits.Add(1)
		j := c.startJob("sweep/granularity", key, priority, tenant, func(j *cjob) { j.finish(v, true) })
		if w != nil {
			respondCJob(w, r, j)
		}
		return j
	}
	c.cacheMisses.Add(1)
	plan := core.SweepPlan{
		Design: n.Design, Scale: n.Scale, RTL: n.RTL, Name: n.Name,
		Seed: n.Seed, Archs: specs,
	}
	j := c.startJob("sweep/granularity", key, priority, tenant, func(j *cjob) { c.runSweepJob(j, plan) })
	if w != nil {
		respondCJob(w, r, j)
	}
	return j
}

// runSweepJob executes a granularity sweep as tickets: the first
// architecture pins the clock (its report's ClockPeriod), the rest run
// pinned in parallel, and the merged points match RunGranularitySweep
// point for point.
func (c *Coordinator) runSweepJob(j *cjob, plan core.SweepPlan) {
	ticketReport := func(i int, clock float64) (*core.Report, error) {
		req := plan.Ticket(i, clock)
		env, err := c.runTicket(j, plan.TicketLabel(i), "run", "/v1/runs", req, mustKey(req))
		if err != nil {
			return nil, err
		}
		if env.Status == "failed" {
			return nil, errors.New(env.Error)
		}
		rep := &core.Report{}
		if err := json.Unmarshal(env.Result, rep); err != nil {
			return nil, fmt.Errorf("decoding sweep report: %w", err)
		}
		return rep, nil
	}
	first, err := ticketReport(0, 0)
	if err != nil {
		j.fail(err.Error(), "", "")
		return
	}
	clock := first.ClockPeriod
	pts := make([]core.SweepPoint, len(plan.Archs))
	if pts[0], err = core.SweepPointFrom(plan.Archs[0], first); err != nil {
		j.fail(err.Error(), "", "")
		return
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 1; i < len(plan.Archs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := ticketReport(i, clock)
			if err == nil {
				var pt core.SweepPoint
				if pt, err = core.SweepPointFrom(plan.Archs[i], rep); err == nil {
					pts[i] = pt
					return
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		j.fail(firstErr.Error(), "", "")
		return
	}
	c.cache.put(j.key, pts)
	j.finish(pts, false)
}

// handleRoutingSweep forwards the sweep whole: its capacity points
// share one placement, so it is not splittable into pure tickets.
func (c *Coordinator) handleRoutingSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.submitRoutingSweep(w, r, req, 0, "")
}

func (c *Coordinator) submitRoutingSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, priority int, tenant string) *cjob {
	if _, err := req.resolveDesign(); err != nil {
		if w != nil {
			writeError(w, http.StatusBadRequest, err)
		}
		return nil
	}
	key, err := req.cacheKey("sweep/routing")
	if err != nil {
		if w != nil {
			writeError(w, http.StatusBadRequest, err)
		}
		return nil
	}
	j := c.startJob("sweep/routing", key, priority, tenant, func(j *cjob) {
		name := "sweep/routing/" + req.normalize().Design + req.normalize().Name
		env, err := c.runTicket(j, name, "sweep/routing", "/v1/sweeps/routing", req, key)
		j.finishFromEnvelope(env, err)
	})
	if w != nil {
		respondCJob(w, r, j)
	}
	return j
}

// ---------------------------------------------------------------------------
// POST /v1/batch: bulk submission with priorities and tenant fairness.

// batchItem is one job in a batch: its kind-specific request plus the
// scheduling coordinates. Higher priority runs first; within a
// priority, tenants round-robin (least recently served tenant wins),
// so a 10k-item sweep from one tenant cannot starve another tenant's
// interactive runs.
type batchItem struct {
	Kind     string          `json:"kind"` // "run", "matrix", "sweep/granularity", "sweep/routing"
	Priority int             `json:"priority,omitempty"`
	Tenant   string          `json:"tenant,omitempty"`
	Request  json.RawMessage `json:"request"`
}

type batchRequest struct {
	Jobs []batchItem `json:"jobs"`
}

type batchResponse struct {
	Jobs []jobResponse `json:"jobs"`
}

// handleBatch validates every item, then launches them all (202). An
// invalid item rejects the whole batch before any job starts.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch has no jobs"))
		return
	}
	type launch func() *cjob
	launches := make([]launch, 0, len(req.Jobs))
	for i, item := range req.Jobs {
		item := item
		var (
			err error
			fn  launch
		)
		switch item.Kind {
		case "run":
			var rr core.FlowRequest
			if err = json.Unmarshal(item.Request, &rr); err == nil {
				if _, err = rr.CacheKey(); err == nil {
					fn = func() *cjob { return c.submitRun(nil, nil, rr, item.Priority, item.Tenant) }
				}
			}
		case "matrix":
			var mr MatrixRequest
			if err = json.Unmarshal(item.Request, &mr); err == nil {
				if err = mr.validate(); err == nil {
					fn = func() *cjob { return c.submitMatrix(nil, nil, mr, item.Priority, item.Tenant) }
				}
			}
		case "sweep/granularity":
			var sr SweepRequest
			if err = json.Unmarshal(item.Request, &sr); err == nil {
				if _, err = sr.resolveDesign(); err == nil {
					fn = func() *cjob { return c.submitGranularitySweep(nil, nil, sr, item.Priority, item.Tenant) }
				}
			}
		case "sweep/routing":
			var sr SweepRequest
			if err = json.Unmarshal(item.Request, &sr); err == nil {
				if _, err = sr.resolveDesign(); err == nil {
					fn = func() *cjob { return c.submitRoutingSweep(nil, nil, sr, item.Priority, item.Tenant) }
				}
			}
		default:
			err = fmt.Errorf("unknown job kind %q", item.Kind)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch job %d: %w", i, err))
			return
		}
		launches = append(launches, fn)
	}
	c.batches.Add(1)
	resp := batchResponse{Jobs: make([]jobResponse, 0, len(launches))}
	for i, fn := range launches {
		j := fn()
		if j == nil {
			// Validation re-ran inside submit and failed; report the slot.
			resp.Jobs = append(resp.Jobs, jobResponse{Status: "rejected",
				Error: fmt.Sprintf("batch job %d failed validation", i)})
			continue
		}
		resp.Jobs = append(resp.Jobs, j.response())
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleStatus serves GET /v1/runs/{id} (and its /v1/jobs/{id} alias)
// for coordinator jobs.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown or evicted job id"))
		return
	}
	writeJSON(w, http.StatusOK, j.response())
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the job's merged
// cluster-wide Chrome trace — coordinator control spans plus every
// worker node's tickets with their per-stage fragments fetched back
// from the workers that still answer.
func (c *Coordinator) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown or evicted job id"))
		return
	}
	events := c.mergedTrace(r.Context(), j)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(events)
}

// ---------------------------------------------------------------------------
// Cluster rollup observability.

// clusterNodeStat is one node's slice of the rollup.
type clusterNodeStat struct {
	Node             string `json:"node"`
	Up               bool   `json:"up"`
	TicketQueueDepth int    `json:"ticket_queue_depth"`
	InFlightTickets  int    `json:"in_flight_tickets"`
	WorkerQueueDepth int    `json:"worker_queue_depth"`
	WorkerJobs       int64  `json:"worker_jobs_running"`
	Dispatched       int64  `json:"dispatched"`
	Errors           int64  `json:"errors"`
	// StageCache is the worker's per-stage build-cache counters with
	// derived hit ratios, scraped from its /healthz (nil until the
	// first health probe lands or when the worker has no stage cache).
	StageCache map[string]stageCacheRatio `json:"stage_cache,omitempty"`
}

// stageCacheRatio is one stage's scraped cache counters plus the
// derived hit ratio.
type stageCacheRatio struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// stageRatios derives per-stage hit ratios from scraped counters.
func stageRatios(stats core.StageCacheStats) map[string]stageCacheRatio {
	if len(stats) == 0 {
		return nil
	}
	out := make(map[string]stageCacheRatio, len(stats))
	for stage, sc := range stats {
		r := stageCacheRatio{Hits: sc.Hits, Misses: sc.Misses}
		if total := sc.Hits + sc.Misses; total > 0 {
			r.HitRatio = float64(sc.Hits) / float64(total)
		}
		out[stage] = r
	}
	return out
}

func (c *Coordinator) nodeStats() []clusterNodeStat {
	stats := make([]clusterNodeStat, 0, len(c.order))
	for _, base := range c.order {
		n := c.nodes[base]
		h := n.lastHealth()
		stats = append(stats, clusterNodeStat{
			Node: base, Up: !n.down.Load(),
			TicketQueueDepth: c.sched.depth(base),
			InFlightTickets:  c.sched.inflight(base),
			WorkerQueueDepth: h.QueueDepth, WorkerJobs: h.JobsRunning,
			Dispatched: n.dispatched.Load(), Errors: n.errs.Load(),
			StageCache: stageRatios(h.StageCache),
		})
	}
	return stats
}

// peerHitRatio is served-from-cache tickets over all resolved lookups.
func (c *Coordinator) peerHitRatio() float64 {
	hits := c.peerHits.Load() + c.workerCacheHits.Load()
	total := c.tickets.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// handleHealthz serves the cluster rollup.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	nodes := c.nodeStats()
	up := 0
	for _, n := range nodes {
		if n.Up {
			up++
		}
	}
	status, code := "ok", http.StatusOK
	if up == 0 {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"role":           "coordinator",
		"uptime_seconds": time.Since(c.start).Seconds(),
		"nodes":          nodes,
		"nodes_up":       up,
		"cluster": map[string]any{
			"tickets":           c.tickets.Load(),
			"ticket_retries":    c.ticketRetries.Load(),
			"steals":            c.steals.Load(),
			"reshards":          c.reshards.Load(),
			"peer_hits":         c.peerHits.Load(),
			"peer_misses":       c.peerMisses.Load(),
			"worker_cache_hits": c.workerCacheHits.Load(),
			"peer_hit_ratio":    c.peerHitRatio(),
		},
	})
}

// handleClusterStatus serves GET /v1/cluster/status: the live
// scheduling picture `vpgaflow cluster top` renders — per-node queue
// depth, in-flight tickets, steal/reshard counters, and stage-cache
// hit ratios — as one JSON snapshot.
func (c *Coordinator) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	nodes := c.nodeStats()
	up := 0
	for _, n := range nodes {
		if n.Up {
			up++
		}
	}
	c.mu.Lock()
	jobsTracked := len(c.jobs)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"role":           "coordinator",
		"uptime_seconds": time.Since(c.start).Seconds(),
		"nodes":          nodes,
		"nodes_up":       up,
		"jobs_tracked":   jobsTracked,
		"cluster": map[string]any{
			"tickets":           c.tickets.Load(),
			"ticket_retries":    c.ticketRetries.Load(),
			"steals":            c.steals.Load(),
			"reshards":          c.reshards.Load(),
			"peer_hits":         c.peerHits.Load(),
			"peer_misses":       c.peerMisses.Load(),
			"worker_cache_hits": c.workerCacheHits.Load(),
			"peer_hit_ratio":    c.peerHitRatio(),
			"jobs_completed":    c.completed.Load(),
			"jobs_failed":       c.failed.Load(),
		},
	})
}

// handleMetrics serves the coordinator's Prometheus rollup: cluster
// counters, the peer-hit ratio, and one labeled series per node.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("vpgad_requests_total", "HTTP requests received", c.reqTotal.Load())
	counter("vpgad_jobs_completed_total", "coordinator jobs that finished successfully", c.completed.Load())
	counter("vpgad_jobs_failed_total", "coordinator jobs that finished in error", c.failed.Load())
	counter("vpgad_jobs_timeout_total", "jobs that failed on a wall-clock budget, local or on a remote worker", c.timeouts.Load())
	counter("vpgad_cache_hits_total", "composite results served from the coordinator cache", c.cacheHits.Load())
	counter("vpgad_cache_misses_total", "composite submissions that required ticket execution", c.cacheMisses.Load())
	counter("vpgad_batches_total", "batch submissions accepted", c.batches.Load())
	counter("vpgad_cluster_tickets_total", "tickets resolved (peer cache or worker execution)", c.tickets.Load())
	counter("vpgad_cluster_ticket_retries_total", "tickets re-queued on worker backpressure", c.ticketRetries.Load())
	counter("vpgad_cluster_steals_total", "tickets stolen by an idle node's runner", c.steals.Load())
	counter("vpgad_cluster_reshards_total", "tickets re-homed after a node died or drained", c.reshards.Load())
	counter("vpgad_cluster_peer_hits_total", "tickets served from a peer cache before scheduling", c.peerHits.Load())
	counter("vpgad_cluster_peer_misses_total", "peer cache lookups that missed", c.peerMisses.Load())
	counter("vpgad_cluster_worker_cache_hits_total", "tickets the executing worker served from its own cache", c.workerCacheHits.Load())
	nodes := c.nodeStats()
	up := 0
	for _, n := range nodes {
		if n.Up {
			up++
		}
	}
	gauge("vpgad_cluster_nodes", "worker nodes configured", int64(len(nodes)))
	gauge("vpgad_cluster_nodes_up", "worker nodes currently live", int64(up))
	fmt.Fprintf(w, "# HELP vpgad_cluster_peer_hit_ratio fraction of tickets served from peer or worker caches\n# TYPE vpgad_cluster_peer_hit_ratio gauge\nvpgad_cluster_peer_hit_ratio %s\n",
		strconv.FormatFloat(c.peerHitRatio(), 'f', 6, 64))
	fmt.Fprintf(w, "# HELP vpgad_cluster_node_up whether the node answers health probes\n# TYPE vpgad_cluster_node_up gauge\n")
	for _, n := range nodes {
		v := 0
		if n.Up {
			v = 1
		}
		fmt.Fprintf(w, "vpgad_cluster_node_up{node=%q} %d\n", n.Node, v)
	}
	fmt.Fprintf(w, "# HELP vpgad_cluster_node_dispatched_total tickets dispatched to the node\n# TYPE vpgad_cluster_node_dispatched_total counter\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "vpgad_cluster_node_dispatched_total{node=%q} %d\n", n.Node, n.Dispatched)
	}
	fmt.Fprintf(w, "# HELP vpgad_cluster_node_errors_total transport failures talking to the node\n# TYPE vpgad_cluster_node_errors_total counter\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "vpgad_cluster_node_errors_total{node=%q} %d\n", n.Node, n.Errors)
	}
	fmt.Fprintf(w, "# HELP vpgad_cluster_node_queue_depth tickets queued for the node on the coordinator\n# TYPE vpgad_cluster_node_queue_depth gauge\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "vpgad_cluster_node_queue_depth{node=%q} %d\n", n.Node, n.TicketQueueDepth)
	}
	fmt.Fprintf(w, "# HELP vpgad_cluster_node_inflight tickets currently executing on the node\n# TYPE vpgad_cluster_node_inflight gauge\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "vpgad_cluster_node_inflight{node=%q} %d\n", n.Node, n.InFlightTickets)
	}
	fmt.Fprintf(w, "# HELP vpgad_uptime_seconds seconds since the coordinator started\n# TYPE vpgad_uptime_seconds gauge\nvpgad_uptime_seconds %s\n",
		strconv.FormatFloat(time.Since(c.start).Seconds(), 'f', 3, 64))
}
