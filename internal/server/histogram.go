package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// histogram is a zero-dependency, log-bucketed Prometheus histogram:
// fixed powers-of-two bucket bounds (1ms .. ~524s, 20 buckets plus
// +Inf), atomic counters, lock-free observe. That span covers
// everything the daemon times — queue waits in microseconds up to
// paper-scale matrix jobs in minutes — with ~2x resolution, which is
// what a latency distribution needs and all a dependency-free emitter
// can afford.
type histogram struct {
	counts [len(histBounds) + 1]atomic.Int64
	// sum is the float64 bit pattern of the observed total, CAS-updated.
	sum   atomic.Uint64
	count atomic.Int64
}

// histBounds are the buckets' upper bounds in seconds: 0.001 * 2^k.
var histBounds = func() [20]float64 {
	var b [20]float64
	for i := range b {
		b[i] = 0.001 * math.Pow(2, float64(i))
	}
	return b
}()

// observe records one value in seconds.
func (h *histogram) observe(sec float64) {
	if sec < 0 || math.IsNaN(sec) {
		return
	}
	i := sort.SearchFloat64s(histBounds[:], sec) // first bound >= sec
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + sec)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot returns the cumulative bucket counts (le-ordered, +Inf
// last), the total count and the sum.
func (h *histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(histBounds)+1)
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	return cum, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// quantile estimates the q-quantile (0 < q <= 1) in seconds from the
// bucket counts: the upper bound of the first bucket whose cumulative
// count reaches q of the total. Log buckets make this a ~2x-resolution
// estimate — exactly enough for scheduling hints like Retry-After,
// which only need the right order of magnitude. An empty histogram
// returns 0; observations past the last bound return twice it.
func (h *histogram) quantile(q float64) float64 {
	cum, count, _ := h.snapshot()
	if count == 0 || q <= 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(count)))
	for i, bound := range histBounds {
		if cum[i] >= target {
			return bound
		}
	}
	return 2 * histBounds[len(histBounds)-1]
}

// formatLe renders a bucket bound the Prometheus way (shortest
// round-trip float).
func formatLe(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHist emits one labeled series of the family: _bucket lines
// (cumulative, le-sorted, +Inf last), _sum and _count. labels is the
// rendered label set without braces ("" for none).
func (h *histogram) writeSeries(w io.Writer, name, labels string) {
	sep := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	cum, count, sum := h.snapshot()
	for i, bound := range histBounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="`+formatLe(bound)+`"`), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="+Inf"`), cum[len(histBounds)])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, sep(""), strconv.FormatFloat(sum, 'f', 6, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sep(""), count)
}

// write emits the histogram as a complete single-series family with
// HELP/TYPE headers.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	h.writeSeries(w, name, "")
}

// histogramVec is a histogram family keyed by one label (the flow
// stage). Series are created on first observation.
type histogramVec struct {
	label string

	mu     sync.Mutex
	series map[string]*histogram
}

func newHistogramVec(label string) *histogramVec {
	return &histogramVec{label: label, series: make(map[string]*histogram)}
}

func (v *histogramVec) with(value string) *histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[value]
	if !ok {
		h = &histogram{}
		v.series[value] = h
	}
	return h
}

// write emits every series of the family under one HELP/TYPE header,
// label values sorted for deterministic exposition.
func (v *histogramVec) write(w io.Writer, name, help string) {
	v.mu.Lock()
	values := make([]string, 0, len(v.series))
	for val := range v.series {
		values = append(values, val)
	}
	sort.Strings(values)
	series := make([]*histogram, len(values))
	for i, val := range values {
		series[i] = v.series[val]
	}
	v.mu.Unlock()
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, val := range values {
		series[i].writeSeries(w, name, v.label+`="`+val+`"`)
	}
}
