package server

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket-assignment rule at its
// edges: zero lands in the first bucket, a value exactly on a bound
// lands in that bound's bucket (le is inclusive), a value past the
// last bound lands only in +Inf, and negative/NaN observations are
// dropped entirely.
func TestHistogramBucketBoundaries(t *testing.T) {
	cum := func(h *histogram) []int64 {
		c, _, _ := h.snapshot()
		return c
	}

	var h histogram
	h.observe(0)
	if c := cum(&h); c[0] != 1 {
		t.Fatalf("zero observation missed the first bucket: %v", c[:3])
	}

	h = histogram{}
	h.observe(histBounds[0]) // exactly 0.001: le="0.001" is inclusive
	if c := cum(&h); c[0] != 1 {
		t.Fatalf("observation on the first bound missed its bucket: %v", c[:3])
	}

	h = histogram{}
	h.observe(histBounds[0] + 1e-9) // just past the bound: next bucket
	if c := cum(&h); c[0] != 0 || c[1] != 1 {
		t.Fatalf("observation just past the first bound landed wrong: %v", c[:3])
	}

	h = histogram{}
	h.observe(histBounds[len(histBounds)-1]) // exactly the last bound
	if c := cum(&h); c[len(histBounds)-1] != 1 {
		t.Fatalf("observation on the last bound missed its bucket: %v", c)
	}

	h = histogram{}
	h.observe(1e9) // way past every bound: +Inf only
	c, count, sum := h.snapshot()
	for i := range histBounds {
		if c[i] != 0 {
			t.Fatalf("overflow observation leaked into finite bucket %d: %v", i, c)
		}
	}
	if c[len(histBounds)] != 1 || count != 1 || sum != 1e9 {
		t.Fatalf("overflow observation not in +Inf: cum=%v count=%d sum=%g", c, count, sum)
	}

	h = histogram{}
	h.observe(-1)
	h.observe(math.NaN())
	if _, count, sum := h.snapshot(); count != 0 || sum != 0 {
		t.Fatalf("negative/NaN observations were recorded: count=%d sum=%g", count, sum)
	}
}

// TestHistogramCumulativeAndQuantile: bucket counts are cumulative in
// le order and the quantile estimator answers with a bucket bound.
func TestHistogramCumulativeAndQuantile(t *testing.T) {
	var h histogram
	for _, v := range []float64{0.0005, 0.003, 0.003, 0.1, 2.0} {
		h.observe(v)
	}
	cum, count, _ := h.snapshot()
	if count != 5 || cum[len(histBounds)] != 5 {
		t.Fatalf("count=%d, +Inf cum=%d, want 5", count, cum[len(histBounds)])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, cum)
		}
	}
	// Median of the five: the third observation (0.003) lives in the
	// le=0.004 bucket, so the estimate is that bucket's bound.
	if q := h.quantile(0.5); q != 0.004 {
		t.Fatalf("median estimate = %g, want 0.004", q)
	}
	if q := (&histogram{}).quantile(0.5); q != 0 {
		t.Fatalf("empty-histogram quantile = %g, want 0", q)
	}
}

// promLine matches one Prometheus text-format sample:
// name{labels} value — the label block optional, the value a float.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)

// validatePromText is a minimal Prometheus text-exposition checker:
// every non-comment line parses as a sample, every sample's metric
// family has TYPE metadata, histogram buckets are cumulative with the
// +Inf bucket equal to _count. It returns the parsed samples.
func validatePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	typed := map[string]string{}
	samples := map[string]float64{}
	var (
		histFamily  string
		lastCum     float64
		seenBuckets bool
	)
	endHist := func() {
		histFamily, lastCum, seenBuckets = "", 0, false
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line is not a valid Prometheus sample: %q", line)
		}
		name, labels := m[1], m[2]
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		samples[name+labels] = v
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if typed[name] == "" && strings.HasSuffix(name, suffix) {
				family = strings.TrimSuffix(name, suffix)
			}
		}
		if typed[family] == "" {
			t.Fatalf("sample %q has no # TYPE metadata", name)
		}
		if typed[family] == "histogram" && strings.HasSuffix(name, "_bucket") {
			// A new family or a new label set (le aside) restarts the
			// cumulative check.
			series := family + stripLe(labels)
			if series != histFamily {
				endHist()
				histFamily = series
			}
			if seenBuckets && v < lastCum {
				t.Fatalf("histogram %s buckets not cumulative: %g after %g (%q)", family, v, lastCum, line)
			}
			lastCum, seenBuckets = v, true
			if strings.Contains(labels, `le="+Inf"`) {
				infCum := v
				endHist()
				// The +Inf bucket must equal the family's _count for the
				// same label set once it appears; record for the check below.
				samples["__inf__"+family+stripLe(labels)] = infCum
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning exposition: %v", err)
	}
	for key, inf := range samples {
		if !strings.HasPrefix(key, "__inf__") {
			continue
		}
		series := strings.TrimPrefix(key, "__inf__")
		fam := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			fam, labels = series[:i], series[i:]
		}
		if count, ok := samples[fam+"_count"+labels]; ok && count != inf {
			t.Fatalf("histogram %s: +Inf bucket %g != _count %g", series, inf, count)
		}
	}
	return samples
}

// stripLe removes the le label from a rendered label block so bucket
// lines of one series share a key.
var leRe = regexp.MustCompile(`le="[^"]*",?`)

func stripLe(labels string) string {
	s := leRe.ReplaceAllString(labels, "")
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	s = strings.Trim(s, ",")
	if s == "" {
		return ""
	}
	return "{" + s + "}"
}

func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestMetricsExpositionValid runs a real job through a worker and
// validates the whole /metrics payload as Prometheus text exposition —
// histograms included.
func TestMetricsExpositionValid(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	if _, jr := postJSON(t, ts, "/v1/runs?wait=1", `{"design":"alu","seed":3,"place_effort":2}`); jr.Status != "done" {
		t.Fatalf("run did not finish: %+v", jr)
	}
	samples := validatePromText(t, fetchText(t, ts.URL+"/metrics"))
	if samples["vpgad_jobs_completed_total"] < 1 {
		t.Fatalf("no completed jobs in exposition: %v", samples["vpgad_jobs_completed_total"])
	}
	if samples[`vpgad_job_duration_seconds_bucket{le="+Inf"}`] < 1 {
		t.Fatal("job duration histogram recorded nothing")
	}
}

// TestCoordinatorMetricsExpositionValid does the same for the
// coordinator's /metrics rollup.
func TestCoordinatorMetricsExpositionValid(t *testing.T) {
	workers := newWorkerFleet(t, 2)
	_, ts := newTestCoordinator(t, CoordinatorOptions{Workers: workers})
	if _, jr := postJSON(t, ts, "/v1/runs?wait=1", `{"design":"alu","seed":3,"place_effort":2}`); jr.Status != "done" {
		t.Fatalf("run did not finish: %+v", jr)
	}
	samples := validatePromText(t, fetchText(t, ts.URL+"/metrics"))
	if samples["vpgad_cluster_tickets_total"] < 1 {
		t.Fatal("coordinator exposition shows no tickets resolved")
	}
	if samples["vpgad_cluster_nodes"] != 2 {
		t.Fatalf("vpgad_cluster_nodes = %v, want 2", samples["vpgad_cluster_nodes"])
	}
}
