package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vpga/internal/faultinject"
	"vpga/internal/fsx"
)

// The job journal is the daemon's durable write-ahead log of job
// state transitions: every submission appends an "accepted" entry
// carrying the canonical request body, every outcome a "done" or
// "failed" entry. On restart the daemon replays the journal, rebuilds
// the jobs that never reached a terminal state, and re-enqueues them
// under their original IDs — so a SIGKILL mid-matrix costs wall time,
// never work or identity.
//
// Frame format, designed so a crash mid-append is detectable and
// recoverable: each entry is
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload (JSON)
//
// A torn tail — short header, length past EOF, or checksum mismatch —
// marks the clean end of replay: everything before it is intact
// (entries are only ever appended), everything from it on is the
// crash artifact and is truncated away.

// journalEntry is one logged state transition.
type journalEntry struct {
	Seq   int64  `json:"seq"`
	Time  string `json:"time,omitempty"`
	ID    string `json:"id"`
	State string `json:"state"` // "accepted", "running", "done", "failed"
	// Submission fields, populated on "accepted" only: everything
	// needed to rebuild the job after a crash.
	Kind string          `json:"kind,omitempty"`
	Key  string          `json:"key,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
	// Failure fields, populated on "failed" only.
	Error string `json:"error,omitempty"`
	Stage string `json:"stage,omitempty"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame frames one entry payload.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	copy(out[8:], payload)
	return out
}

// journal is the open WAL: a single append handle plus counters.
type journal struct {
	path string

	mu  sync.Mutex
	f   *os.File
	seq int64

	appends, errs atomic.Int64
	lastFsync     atomic.Int64 // unix nanoseconds; 0 = never
	corruptFrames int64        // torn frames discarded at open
}

// openJournal opens (creating if needed) the journal at path and
// replays it: the returned entries are every intact frame in append
// order. A torn tail is truncated away — its frame count is recorded
// on journal.corruptFrames — so appends resume from a clean boundary.
func openJournal(path string) (*journal, []journalEntry, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: journal dir: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("server: read journal: %w", err)
	}
	var (
		entries []journalEntry
		offset  int64 // end of the last intact frame
		torn    int64
		maxSeq  int64
	)
	for len(raw[offset:]) > 0 {
		rest := raw[offset:]
		if len(rest) < 8 {
			torn = 1
			break
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if int(n) > len(rest)-8 {
			torn = 1
			break
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			torn = 1
			break
		}
		var e journalEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			// A frame that passes its checksum but fails to parse is not
			// a crash artifact; still, replay salvages the intact prefix.
			torn = 1
			break
		}
		entries = append(entries, e)
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		offset += int64(8 + n)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	if offset < int64(len(raw)) {
		if err := f.Truncate(offset); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: seek journal: %w", err)
	}
	return &journal{path: path, f: f, seq: maxSeq, corruptFrames: torn}, entries, nil
}

// append logs one entry. fsync is requested on durability boundaries
// (accepted, done, failed) and skipped on progress notes (running). A
// failed append — injected or organic — truncates the file back to
// its pre-append length so the next append starts from a clean frame
// boundary (the daemon is the journal's only writer). The
// "journal.append" fault point fires here.
func (jn *journal) append(e journalEntry, fsync bool) error {
	if jn == nil {
		return nil
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	jn.seq++
	e.Seq = jn.seq
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	payload, err := json.Marshal(e)
	if err != nil {
		jn.errs.Add(1)
		return fmt.Errorf("server: encode journal entry: %w", err)
	}
	frame := encodeFrame(payload)
	pos, err := jn.f.Seek(0, io.SeekCurrent)
	if err != nil {
		jn.errs.Add(1)
		return fmt.Errorf("server: journal position: %w", err)
	}
	undo := func() {
		jn.f.Truncate(pos)
		jn.f.Seek(pos, io.SeekStart)
	}
	if flt := faultinject.Arm("journal.append"); flt != nil {
		if t := flt.TornBytes(frame); t != nil {
			jn.f.Write(t)
		}
		undo()
		jn.errs.Add(1)
		return fmt.Errorf("server: append journal: %w", flt.Err())
	}
	if _, err := jn.f.Write(frame); err != nil {
		undo()
		jn.errs.Add(1)
		return fmt.Errorf("server: append journal: %w", err)
	}
	if fsync {
		if err := jn.f.Sync(); err != nil {
			jn.errs.Add(1)
			return fmt.Errorf("server: sync journal: %w", err)
		}
		jn.lastFsync.Store(time.Now().UnixNano())
	}
	jn.appends.Add(1)
	return nil
}

// compact atomically rewrites the journal to hold only the given
// entries — the startup pass keeps just the accepted entries of jobs
// that never completed, so the file stays bounded by in-flight work
// instead of growing with history across restarts.
func (jn *journal) compact(entries []journalEntry) error {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	err := fsx.WriteFileAtomic(jn.path, 0o644, func(w io.Writer) error {
		for _, e := range entries {
			payload, err := json.Marshal(e)
			if err != nil {
				return fmt.Errorf("server: encode journal entry: %w", err)
			}
			if _, err := w.Write(encodeFrame(payload)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		jn.errs.Add(1)
		return err
	}
	// The append handle still points at the replaced inode; reopen onto
	// the published file, positioned at its end (append tracks the
	// write offset explicitly for truncate-back, so no O_APPEND).
	f, err := os.OpenFile(jn.path, os.O_WRONLY, 0o644)
	if err != nil {
		jn.errs.Add(1)
		return fmt.Errorf("server: reopen journal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		jn.errs.Add(1)
		return fmt.Errorf("server: seek journal: %w", err)
	}
	jn.f.Close()
	jn.f = f
	jn.lastFsync.Store(time.Now().UnixNano())
	return nil
}

func (jn *journal) close() {
	if jn == nil {
		return
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	jn.f.Sync()
	jn.f.Close()
}
