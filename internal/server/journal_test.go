package server

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vpga/internal/faultinject"
)

func openTestJournal(t *testing.T, path string) (*journal, []journalEntry) {
	t.Helper()
	jn, entries, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	t.Cleanup(jn.close)
	return jn, entries
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal", "journal.wal")
	jn, entries := openTestJournal(t, path)
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	body, _ := json.Marshal(map[string]string{"design": "alu"})
	appends := []journalEntry{
		{ID: "j000001", State: "accepted", Kind: "run", Key: "k1", Body: body},
		{ID: "j000001", State: "running"},
		{ID: "j000001", State: "done"},
		{ID: "j000002", State: "accepted", Kind: "matrix", Key: "k2", Body: body},
	}
	for _, e := range appends {
		if err := jn.append(e, e.State != "running"); err != nil {
			t.Fatalf("append %v: %v", e.State, err)
		}
	}
	jn.close()

	_, replayed := openTestJournal(t, path)
	if len(replayed) != len(appends) {
		t.Fatalf("replayed %d entries, want %d", len(replayed), len(appends))
	}
	for i, e := range replayed {
		if e.ID != appends[i].ID || e.State != appends[i].State || e.Kind != appends[i].Kind {
			t.Fatalf("entry %d: %+v", i, e)
		}
		if e.Seq != int64(i+1) {
			t.Fatalf("entry %d seq %d", i, e.Seq)
		}
	}
	if string(replayed[3].Body) != string(body) {
		t.Fatalf("body did not survive: %s", replayed[3].Body)
	}
}

// TestJournalTornTail: bytes chopped off the final frame — the crash
// artifact — cost exactly that frame; the intact prefix replays and the
// file is truncated back to it so appends resume cleanly.
func TestJournalTornTail(t *testing.T) {
	for _, chop := range []int{1, 5, 11} {
		path := filepath.Join(t.TempDir(), "journal.wal")
		jn, _ := openTestJournal(t, path)
		for i := 0; i < 3; i++ {
			if err := jn.append(journalEntry{ID: "j000001", State: "accepted"}, true); err != nil {
				t.Fatal(err)
			}
		}
		jn.close()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)-chop], 0o644); err != nil {
			t.Fatal(err)
		}

		jn2, entries := openTestJournal(t, path)
		if len(entries) != 2 {
			t.Fatalf("chop %d: replayed %d entries, want 2", chop, len(entries))
		}
		if jn2.corruptFrames == 0 {
			t.Fatalf("chop %d: torn tail not counted", chop)
		}
		// Appends resume from the clean boundary.
		if err := jn2.append(journalEntry{ID: "j000002", State: "accepted"}, true); err != nil {
			t.Fatal(err)
		}
		jn2.close()
		_, entries = openTestJournal(t, path)
		if len(entries) != 3 {
			t.Fatalf("chop %d: after resume replayed %d entries, want 3", chop, len(entries))
		}
	}
}

// TestJournalCorruptChecksum: a bit flip inside a frame's payload fails
// its CRC; replay keeps the intact prefix.
func TestJournalCorruptChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	jn, _ := openTestJournal(t, path)
	for i := 0; i < 2; i++ {
		if err := jn.append(journalEntry{ID: "j000001", State: "accepted"}, true); err != nil {
			t.Fatal(err)
		}
	}
	jn.close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff // payload byte of the second frame
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, entries := openTestJournal(t, path)
	if len(entries) != 1 {
		t.Fatalf("replayed %d entries, want 1", len(entries))
	}
}

// TestJournalAppendFaultTruncatesBack: an injected torn append leaves
// the file byte-identical to before the attempt, and the retried append
// lands cleanly.
func TestJournalAppendFaultTruncatesBack(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	path := filepath.Join(t.TempDir(), "journal.wal")
	jn, _ := openTestJournal(t, path)
	if err := jn.append(journalEntry{ID: "j000001", State: "accepted"}, true); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(faultinject.New(1, 1.0, []faultinject.Kind{faultinject.KindTorn}, "journal.append"))
	appendErr := jn.append(journalEntry{ID: "j000002", State: "accepted"}, true)
	if !errors.Is(appendErr, faultinject.ErrInjected) {
		t.Fatalf("injected append error: %v", appendErr)
	}
	faultinject.Disable()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("failed append mutated the journal: %d bytes -> %d", len(before), len(after))
	}
	if jn.errs.Load() != 1 {
		t.Fatalf("errs = %d", jn.errs.Load())
	}
	if err := jn.append(journalEntry{ID: "j000002", State: "accepted"}, true); err != nil {
		t.Fatal(err)
	}
	jn.close()
	_, entries := openTestJournal(t, path)
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries, want 2", len(entries))
	}
}

// TestJournalCompact: compaction rewrites the file to the given
// entries and the handle keeps appending past them.
func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	jn, _ := openTestJournal(t, path)
	for i := 0; i < 5; i++ {
		if err := jn.append(journalEntry{ID: "j000001", State: "accepted"}, false); err != nil {
			t.Fatal(err)
		}
	}
	keep := []journalEntry{{Seq: 1, ID: "j000004", State: "accepted", Kind: "run", Key: "k"}}
	if err := jn.compact(keep); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := jn.append(journalEntry{ID: "j000004", State: "running"}, false); err != nil {
		t.Fatal(err)
	}
	jn.close()
	_, entries := openTestJournal(t, path)
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries, want 2", len(entries))
	}
	if entries[0].ID != "j000004" || entries[0].State != "accepted" {
		t.Fatalf("compacted entry: %+v", entries[0])
	}
	if entries[1].State != "running" {
		t.Fatalf("post-compact append: %+v", entries[1])
	}
}

func TestJournalNilSafe(t *testing.T) {
	var jn *journal
	if err := jn.append(journalEntry{ID: "x", State: "accepted"}, true); err != nil {
		t.Fatal(err)
	}
	jn.close()
}
