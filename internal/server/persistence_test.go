package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vpga/internal/core"
)

// runKey computes the content address of the shared runBody request.
func runKey(t *testing.T) string {
	t.Helper()
	var req core.FlowRequest
	if err := json.Unmarshal([]byte(runBody), &req); err != nil {
		t.Fatal(err)
	}
	key, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestStoreSurvivesRestart: a completed result persists in the
// artifact store and a restarted daemon serves it as a cache hit, with
// a result identical to the original.
func TestStoreSurvivesRestart(t *testing.T) {
	dataDir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{Workers: 2, DataDir: dataDir})
	_, jr1 := postJSON(t, ts1, "/v1/runs?wait=1", runBody)
	if jr1.Status != "done" {
		t.Fatalf("first run: %q (%s)", jr1.Status, jr1.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, Options{Workers: 2, DataDir: dataDir})
	resp, jr2 := postJSON(t, ts2, "/v1/runs?wait=1", runBody)
	if resp.StatusCode != http.StatusOK || !jr2.Cached {
		t.Fatalf("restarted daemon recomputed: status %d cached=%v", resp.StatusCode, jr2.Cached)
	}
	r1, r2 := reportOf(t, jr1), reportOf(t, jr2)
	r1.StripMetrics()
	r2.StripMetrics()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("persisted result diverged from the original")
	}
	if s2.stats().StoreHits == 0 {
		t.Fatal("store hit not counted")
	}
}

// TestStoreCorruptEntryRecomputes: damage to a persisted result across
// a restart is a silent miss — the daemon recomputes the identical
// report and counts the eviction.
func TestStoreCorruptEntryRecomputes(t *testing.T) {
	dataDir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{Workers: 2, DataDir: dataDir})
	_, jr1 := postJSON(t, ts1, "/v1/runs?wait=1", runBody)
	if jr1.Status != "done" {
		t.Fatalf("first run: %q (%s)", jr1.Status, jr1.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s1.Shutdown(ctx)
	ts1.Close()

	p := filepath.Join(dataDir, "artifacts", runKey(t)+".art")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("persisted artifact missing: %v", err)
	}
	if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Options{Workers: 2, DataDir: dataDir})
	resp, jr2 := postJSON(t, ts2, "/v1/runs?wait=1", runBody)
	if resp.StatusCode != http.StatusOK || jr2.Status != "done" {
		t.Fatalf("recompute: status %d job %q (%s)", resp.StatusCode, jr2.Status, jr2.Error)
	}
	if jr2.Cached {
		t.Fatal("corrupt artifact served as a cache hit")
	}
	r1, r2 := reportOf(t, jr1), reportOf(t, jr2)
	r1.StripMetrics()
	r2.StripMetrics()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("recomputed result diverged from the original")
	}
	if s2.stats().StoreCorruptEvicted == 0 {
		t.Fatal("corrupt artifact not evicted")
	}
}

// TestJournalReplayReenqueues is the crash-recovery property at the
// unit level: an accepted entry with no terminal entry — the exact
// state a SIGKILL leaves — is rebuilt at startup, re-enqueued under
// its original ID, runs to completion, and the ID sequence resumes
// past it.
func TestJournalReplayReenqueues(t *testing.T) {
	dataDir := t.TempDir()
	key := runKey(t)
	jn, _, err := openJournal(filepath.Join(dataDir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.append(journalEntry{
		ID: "j000042", State: "accepted", Kind: "run", Key: key, Body: []byte(runBody),
	}, true); err != nil {
		t.Fatal(err)
	}
	jn.close()

	s, ts := newTestServer(t, Options{Workers: 2, DataDir: dataDir})
	deadline := time.Now().Add(60 * time.Second)
	var jr jobResponse
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/j000042")
		if err != nil {
			t.Fatal(err)
		}
		ok := resp.StatusCode == http.StatusOK
		jr = jobResponse{}
		json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if ok && (jr.Status == "done" || jr.Status == "failed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job never finished: status %d job %+v", resp.StatusCode, jr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if jr.Status != "done" {
		t.Fatalf("replayed job failed: %s", jr.Error)
	}
	if s.stats().JournalReplayedJobs != 1 {
		t.Fatalf("replayed jobs = %d", s.stats().JournalReplayedJobs)
	}
	// Fresh submissions continue past the replayed ID.
	_, fresh := postJSON(t, ts, "/v1/runs?wait=1", `{"design":"alu","seed":9}`)
	if n := jobIDNum(fresh.ID); n <= 42 {
		t.Fatalf("fresh job ID %q did not resume past the replayed sequence", fresh.ID)
	}
	// The replayed result matches a from-scratch reference run.
	_, ref := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if !ref.Cached {
		t.Fatal("replayed job's result not served from cache")
	}
	rr, rf := reportOf(t, jr), reportOf(t, ref)
	rr.StripMetrics()
	rf.StripMetrics()
	if !reflect.DeepEqual(rr, rf) {
		t.Fatal("replayed result diverged")
	}
}

// TestJournalReplaySkipsCompleted: a job whose terminal entry landed
// is history — replay must not re-enqueue it, and startup compaction
// leaves the journal holding only incomplete work.
func TestJournalReplaySkipsCompleted(t *testing.T) {
	dataDir := t.TempDir()
	path := filepath.Join(dataDir, "journal.wal")
	jn, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []journalEntry{
		{ID: "j000001", State: "accepted", Kind: "run", Key: "k1", Body: []byte(runBody)},
		{ID: "j000001", State: "running"},
		{ID: "j000001", State: "done"},
		{ID: "j000002", State: "accepted", Kind: "run", Key: runKey(t), Body: []byte(runBody)},
	} {
		if err := jn.append(e, true); err != nil {
			t.Fatal(err)
		}
	}
	jn.close()

	s, _ := newTestServer(t, Options{Workers: 1, DataDir: dataDir})
	deadline := time.Now().Add(60 * time.Second)
	for s.stats().Completed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replayed job never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := s.stats().JournalReplayedJobs; got != 1 {
		t.Fatalf("replayed %d jobs, want 1 (completed job must not replay)", got)
	}
}

// TestInflightDedupe: an identical submission racing a queued job
// attaches to it instead of running the flow twice.
func TestInflightDedupe(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers: 1,
		testJobStart: func(*job) {
			<-release
		},
	})
	resp1, jr1 := postJSON(t, ts, "/v1/runs", runBody)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: status %d", resp1.StatusCode)
	}
	resp2, jr2 := postJSON(t, ts, "/v1/runs", runBody)
	if resp2.StatusCode != http.StatusAccepted || jr2.ID != jr1.ID {
		t.Fatalf("duplicate submission got job %q (status %d), want attach to %q",
			jr2.ID, resp2.StatusCode, jr1.ID)
	}
	close(release)
	deadline := time.Now().Add(60 * time.Second)
	for s.stats().Completed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := s.stats().Completed; got != 1 {
		t.Fatalf("completed %d jobs, want 1", got)
	}
}

// TestDrainJournalsInFlight is the graceful-shutdown satellite: a
// SIGTERM-style drain lets the in-flight job finish and its terminal
// entry reach the journal, so the next startup replays nothing.
func TestDrainJournalsInFlight(t *testing.T) {
	dataDir := t.TempDir()
	s, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, jr := postJSON(t, ts, "/v1/runs", runBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission: status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The journal now holds the full accepted → running → done history.
	jn, entries, err := openJournal(filepath.Join(dataDir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	jn.close()
	var states []string
	for _, e := range entries {
		if e.ID == jr.ID {
			states = append(states, e.State)
		}
	}
	if strings.Join(states, ",") != "accepted,running,done" {
		t.Fatalf("journaled states %v, want accepted,running,done", states)
	}
	// A restart on the same directory replays nothing and serves the
	// drained job's result from the store.
	s2, ts2 := newTestServer(t, Options{Workers: 1, DataDir: dataDir})
	if got := s2.stats().JournalReplayedJobs; got != 0 {
		t.Fatalf("restart replayed %d jobs after a clean drain", got)
	}
	resp2, jr2 := postJSON(t, ts2, "/v1/runs?wait=1", runBody)
	if resp2.StatusCode != http.StatusOK || !jr2.Cached {
		t.Fatalf("post-drain restart: status %d cached=%v", resp2.StatusCode, jr2.Cached)
	}
}

// TestReplayedJobsServeStatusAndSSE is the restart-observability
// satellite: every journal-replayed job must be pollable AND must
// serve its SSE stream immediately after startup — including jobs the
// replay goroutine has not yet squeezed into the bounded run queue.
// (The regression: jobs were registered only as they were enqueued, so
// a deep replay backlog answered 404 for its tail.)
func TestReplayedJobsServeStatusAndSSE(t *testing.T) {
	dataDir := t.TempDir()
	jn, _, err := openJournal(filepath.Join(dataDir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 4)
	for i := range ids {
		ids[i] = fmt.Sprintf("j%06d", 201+i)
		body := fmt.Sprintf(`{"design":"alu","arch":{"kind":"granular"},"flow":"b","seed":%d}`, 301+i)
		var req core.FlowRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		key, err := req.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if err := jn.append(journalEntry{
			ID: ids[i], State: "accepted", Kind: "run", Key: key, Body: []byte(body),
		}, true); err != nil {
			t.Fatal(err)
		}
	}
	jn.close()

	// One worker, queue depth 1, first job gated: the replay goroutine
	// cannot have enqueued the tail when New returns.
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1, DataDir: dataDir,
		testJobStart: func(*job) { <-release },
	})
	// Every replayed ID answers immediately — status and SSE, no 404.
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replayed job %s: status %d immediately after restart, want 200", id, resp.StatusCode)
		}
	}
	last := ids[len(ids)-1]
	es, err := http.Get(ts.URL + "/v1/runs/" + last + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if es.StatusCode != http.StatusOK || !strings.HasPrefix(es.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("replayed job %s events: status %d content-type %q, want a live SSE stream",
			last, es.StatusCode, es.Header.Get("Content-Type"))
	}
	close(release)

	// The stream follows the replayed job through to its terminal
	// event, exactly like a fresh submission's.
	sawDone := false
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "event: done" {
			sawDone = true
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawDone {
		t.Fatalf("replayed job %s stream ended without a done event", last)
	}
	if got := s.stats().JournalReplayedJobs; got != int64(len(ids)) {
		t.Fatalf("replayed %d jobs, want %d", got, len(ids))
	}
}
