package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/core"
	"vpga/internal/defect"
	"vpga/internal/obs"
	"vpga/internal/qor"
)

// MatrixRequest is the serializable description of one Table 1/2
// matrix run (POST /v1/matrix). Like core.FlowRequest it carries only
// result-bearing knobs; Parallel is execution state and is excluded
// from the cache key because matrix reports are bit-identical at any
// worker count.
type MatrixRequest struct {
	// Scale sizes the benchmark suite: "test" (default) or "paper".
	Scale       string `json:"scale,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	PlaceEffort int    `json:"place_effort,omitempty"`
	Parallel    int    `json:"parallel,omitempty"`
	// ContinueOnError keeps the matrix going past failing cells; the
	// failures come back in MatrixResult.Errors.
	ContinueOnError bool `json:"continue_on_error,omitempty"`
	// DefectRate > 0 injects a seeded defect map into every cell and
	// runs defective cells through the repair ladder.
	DefectRate   float64 `json:"defect_rate,omitempty"`
	DefectSeed   int64   `json:"defect_seed,omitempty"`
	RepairBudget int     `json:"repair_budget,omitempty"`
}

func (r MatrixRequest) normalize() MatrixRequest {
	if r.Scale == "" {
		r.Scale = "test"
	}
	if r.DefectRate <= 0 {
		r.DefectRate, r.DefectSeed, r.RepairBudget = 0, 0, 0
	} else if r.RepairBudget == 0 {
		r.RepairBudget = core.DefaultRepairBudget
	}
	return r
}

func (r MatrixRequest) validate() error {
	if r.Scale != "" && r.Scale != "test" && r.Scale != "paper" {
		return fmt.Errorf("unknown scale %q (want test or paper)", r.Scale)
	}
	if r.DefectRate < 0 || r.DefectRate >= 1 {
		return fmt.Errorf("defect_rate %g outside [0,1)", r.DefectRate)
	}
	return nil
}

// cacheKey is the request's content address; the Parallel knob is
// zeroed first because it never changes the result.
func (r MatrixRequest) cacheKey() (string, error) {
	n := r.normalize()
	n.Parallel = 0
	return core.CanonicalKey("matrix", n)
}

func (r MatrixRequest) suite() bench.Suite {
	if r.normalize().Scale == "paper" {
		return bench.PaperSuite()
	}
	return bench.TestSuite()
}

// MatrixResult is the matrix job payload: every populated report
// (metrics stripped, so the payload is deterministic and cacheable),
// the rendered paper tables and derived claims when the matrix is
// complete, and the error ledger when it is not.
type MatrixResult struct {
	Reports map[string]map[string]map[string]*core.Report `json:"reports"`
	Errors  []string                                      `json:"errors,omitempty"`
	Table1  string                                        `json:"table1,omitempty"`
	Table2  string                                        `json:"table2,omitempty"`
	Claims  *core.Claims                                  `json:"claims,omitempty"`
}

// buildJob rebuilds a job of the given kind from its canonical JSON
// body. It is the one constructor both paths share: the HTTP handlers
// (which journal the body on acceptance) and journal replay (which
// reads it back after a crash) — so a replayed job is the submitted
// job, not an approximation of it.
func (s *Server) buildJob(kind string, body []byte) (*job, error) {
	switch kind {
	case "run":
		var req core.FlowRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("request body: %w", err)
		}
		return s.buildRunJob(req)
	case "matrix":
		var req MatrixRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("request body: %w", err)
		}
		return s.buildMatrixJob(req)
	case "sweep/granularity":
		var req SweepRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("request body: %w", err)
		}
		return s.buildGranularitySweepJob(req)
	case "sweep/routing":
		var req SweepRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("request body: %w", err)
		}
		return s.buildRoutingSweepJob(req)
	}
	return nil, fmt.Errorf("unknown job kind %q", kind)
}

// setBody stamps the job's canonical journal body; a failure leaves
// body nil, which simply makes the job non-journaled (and therefore
// lost to a crash — never wrong).
func (j *job) setBody(req any) {
	if enc, err := json.Marshal(req); err == nil {
		j.body = enc
	}
}

// buildRunJob validates a flow-run request and assembles its job.
func (s *Server) buildRunJob(req core.FlowRequest) (*job, error) {
	key, err := req.CacheKey()
	if err != nil {
		return nil, err
	}
	n := req.Normalize()
	label := n.Design + n.Name + "/" + n.Arch.Kind + "/flow " + n.Flow
	j := s.newJob("run", key, label, func(ctx context.Context, tr *obs.Tracer) (any, error) {
		run := tr.NewRun(label)
		defer run.Close()
		res, err := core.Run(ctx, req, core.ExecOptions{
			Trace: run, Stages: s.stages,
		})
		if err != nil {
			return nil, err
		}
		return res.Report, nil
	})
	// The stage-key chain is derivable from the request alone, so it is
	// available on the job from acceptance — even for cache hits that
	// never execute.
	if keys, err := req.StageKeys(); err == nil {
		j.stageKeys = keys
	}
	// Cache a metrics-stripped deep clone: wall-clock artifacts are
	// execution state, not content, and the cache must never alias a
	// report already handed to a response encoder.
	j.cachePrep = func(v any) any {
		rep := v.(*core.Report).Clone()
		rep.StripMetrics()
		return rep
	}
	j.ledger = func(v any) []qor.Record {
		rep, ok := v.(*core.Report)
		if !ok || rep == nil {
			return nil
		}
		return []qor.Record{qor.FromReport(rep, n.Seed, key)}
	}
	j.setBody(req)
	return j, nil
}

// buildMatrixJob validates a matrix request and assembles its job.
func (s *Server) buildMatrixJob(req MatrixRequest) (*job, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	key, err := req.cacheKey()
	if err != nil {
		return nil, err
	}
	n := req.normalize()
	j := s.newJob("matrix", key, "matrix/"+n.Scale, func(ctx context.Context, tr *obs.Tracer) (any, error) {
		opts := core.MatrixOptions{
			Seed: n.Seed, PlaceEffort: n.PlaceEffort, Parallel: req.Parallel,
			ContinueOnError: n.ContinueOnError, RepairBudget: n.RepairBudget,
			Trace: tr, Stages: s.stages,
		}
		if n.DefectRate > 0 {
			opts.Defects = defect.New(n.DefectSeed, n.DefectRate)
		}
		m, err := core.RunMatrix(ctx, req.suite(), opts)
		if err != nil {
			return nil, err
		}
		// Strip wall-clock metrics so the payload depends only on the
		// request: the fresh response and every later cache hit serve
		// byte-identical matrices.
		m.StripMetrics()
		res := MatrixResult{Reports: m.Reports}
		for _, fe := range m.Errors {
			res.Errors = append(res.Errors, fe.Error())
		}
		if len(m.Errors) == 0 {
			res.Table1 = m.Table1()
			res.Table2 = m.Table2()
			claims := m.DeriveClaims()
			res.Claims = &claims
		}
		return res, nil
	})
	// Matrix cells are not request-shaped (RunMatrix pins clocks across
	// flows), so their ledger records carry no cache key.
	j.ledger = func(v any) []qor.Record {
		res, ok := v.(MatrixResult)
		if !ok {
			return nil
		}
		var recs []qor.Record
		for _, archs := range res.Reports {
			for _, flows := range archs {
				for _, rep := range flows {
					if rep != nil {
						recs = append(recs, qor.FromReport(rep, n.Seed, ""))
					}
				}
			}
		}
		sort.Slice(recs, func(i, k int) bool { return recs[i].ID() < recs[k].ID() })
		return recs
	}
	j.setBody(req)
	return j, nil
}

// handleRun serves POST /v1/runs: one flow run described by a
// canonical core.FlowRequest.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req core.FlowRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.buildRunJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, j)
}

// handleMatrix serves POST /v1/matrix.
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.buildMatrixJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, j)
}

// SweepRequest is the serializable description of an exploration
// sweep (POST /v1/sweeps/granularity, POST /v1/sweeps/routing). The
// design block mirrors core.FlowRequest: a named benchmark at a scale,
// or inline RTL under a display name.
type SweepRequest struct {
	Design string `json:"design,omitempty"`
	Scale  string `json:"scale,omitempty"`
	RTL    string `json:"rtl,omitempty"`
	Name   string `json:"name,omitempty"`

	Seed     int64 `json:"seed,omitempty"`
	Parallel int   `json:"parallel,omitempty"`

	// Archs is the granularity sweep's architecture family (empty =
	// the standard DefaultSweepArchs family).
	Archs []core.ArchSpec `json:"archs,omitempty"`
	// Arch and Capacities belong to the routing sweep (defaults:
	// granular PLB; tracks 4, 8, 16, 32, 64).
	Arch       *core.ArchSpec `json:"arch,omitempty"`
	Capacities []int          `json:"capacities,omitempty"`
}

func (r SweepRequest) normalize() SweepRequest {
	if r.RTL != "" {
		r.Scale = ""
		if r.Name == "" {
			r.Name = "inline"
		}
	} else {
		r.Name = ""
		if r.Scale == "" {
			r.Scale = "test"
		}
	}
	if len(r.Archs) > 0 {
		// Copy before normalizing: the slice aliases the caller's request.
		archs := make([]core.ArchSpec, len(r.Archs))
		for i := range r.Archs {
			archs[i] = r.Archs[i].Normalize()
		}
		r.Archs = archs
	}
	if r.Arch != nil {
		a := r.Arch.Normalize()
		r.Arch = &a
	}
	return r
}

// cacheKey content-addresses the sweep under its endpoint's namespace;
// Parallel is execution state and excluded.
func (r SweepRequest) cacheKey(namespace string) (string, error) {
	n := r.normalize()
	n.Parallel = 0
	return core.CanonicalKey(namespace, n)
}

func (r SweepRequest) resolveDesign() (bench.Design, error) {
	n := r.normalize()
	return core.ResolveDesign(n.Design, n.Scale, n.RTL, n.Name)
}

// buildGranularitySweepJob validates a granularity-sweep request and
// assembles its job.
func (s *Server) buildGranularitySweepJob(req SweepRequest) (*job, error) {
	d, err := req.resolveDesign()
	if err != nil {
		return nil, err
	}
	archs := core.DefaultSweepArchs()
	if len(req.Archs) > 0 {
		archs = make([]*cells.PLBArch, len(req.Archs))
		for i, spec := range req.Archs {
			if archs[i], err = spec.Resolve(); err != nil {
				return nil, err
			}
		}
	}
	key, err := req.cacheKey("sweep/granularity")
	if err != nil {
		return nil, err
	}
	j := s.newJob("sweep/granularity", key, "sweep/"+d.Name, func(ctx context.Context, tr *obs.Tracer) (any, error) {
		return core.RunGranularitySweep(ctx, d, archs, core.SweepOptions{
			Seed: req.Seed, Parallel: req.Parallel, Trace: tr, Stages: s.stages,
		})
	})
	j.setBody(req)
	return j, nil
}

// buildRoutingSweepJob validates a routing-sweep request and
// assembles its job.
func (s *Server) buildRoutingSweepJob(req SweepRequest) (*job, error) {
	d, err := req.resolveDesign()
	if err != nil {
		return nil, err
	}
	spec := core.ArchSpec{}
	if req.Arch != nil {
		spec = *req.Arch
	}
	arch, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	capacities := req.Capacities
	if len(capacities) == 0 {
		capacities = []int{4, 8, 16, 32, 64}
	}
	for _, c := range capacities {
		if c < 1 {
			return nil, fmt.Errorf("capacity %d < 1", c)
		}
	}
	key, err := req.cacheKey("sweep/routing")
	if err != nil {
		return nil, err
	}
	j := s.newJob("sweep/routing", key, "routing/"+d.Name, func(ctx context.Context, tr *obs.Tracer) (any, error) {
		return core.RunRoutingSweep(ctx, d, arch, capacities, core.SweepOptions{
			Seed: req.Seed, Parallel: req.Parallel, Trace: tr, Stages: s.stages,
		})
	})
	j.setBody(req)
	return j, nil
}

// handleGranularitySweep serves POST /v1/sweeps/granularity.
func (s *Server) handleGranularitySweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.buildGranularitySweepJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, j)
}

// handleRoutingSweep serves POST /v1/sweeps/routing.
func (s *Server) handleRoutingSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.buildRoutingSweepJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, j)
}

// decodeStored revives a persisted result payload as the live value
// its kind serves — the inverse of the JSON encoding persistResult
// stored. Any decode failure is a miss (the store's contract: corrupt
// or unreadable entries are recomputed, never fatal).
func decodeStored(kind string, raw []byte) (any, bool) {
	var (
		v   any
		err error
	)
	switch kind {
	case "run":
		rep := &core.Report{}
		err = json.Unmarshal(raw, rep)
		v = rep
	case "matrix":
		var m MatrixResult
		err = json.Unmarshal(raw, &m)
		v = m
	case "sweep/granularity":
		var pts []core.SweepPoint
		err = json.Unmarshal(raw, &pts)
		v = pts
	case "sweep/routing":
		var pts []core.RoutingPoint
		err = json.Unmarshal(raw, &pts)
		v = pts
	default:
		return nil, false
	}
	if err != nil {
		return nil, false
	}
	return v, true
}
